package aickpt

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// stallStore blocks every WritePage until released, freezing the commit
// pipeline mid-epoch so tests can probe the runtime while an epoch is
// active.
type stallStore struct {
	once    sync.Once
	release chan struct{}
	started chan int
}

func newStallStore() *stallStore {
	return &stallStore{release: make(chan struct{}), started: make(chan int, 64)}
}

func (s *stallStore) WritePage(epoch uint64, page int, data []byte, size int) error {
	select {
	case s.started <- page:
	default:
	}
	<-s.release
	return nil
}

func (s *stallStore) EndEpoch(epoch uint64) error { return nil }

func (s *stallStore) open() { s.once.Do(func() { close(s.release) }) }

// sinkStore is the trivial backend for tests that only need a runtime.
type sinkStore struct{}

func (sinkStore) WritePage(epoch uint64, page int, data []byte, size int) error { return nil }
func (sinkStore) EndEpoch(epoch uint64) error                                   { return nil }

// TestScrapeNeverBlocksCheckpoint is the regression test for the
// zero-overhead contract: with an epoch frozen mid-commit, scraping every
// debug endpoint must succeed immediately — the scrape takes no runtime
// lock — and a concurrent Checkpoint request must not be delayed by
// scrapes beyond what the frozen committer already imposes.
func TestScrapeNeverBlocksCheckpoint(t *testing.T) {
	const pages = 8
	const pageSize = 4096
	store := newStallStore()
	rt, err := New(Options{
		PageSize:  pageSize,
		Store:     store,
		CowBuffer: pages * pageSize,
		DebugAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		store.open()
		rt.Close()
	}()
	addr := rt.DebugAddr()
	if addr == "" {
		t.Fatal("DebugAddr empty with a debug server requested")
	}

	r := rt.MallocProtected(pages * pageSize)
	buf := make([]byte, pageSize)
	for p := 0; p < pages; p++ {
		r.Write(p*pageSize, buf)
	}
	rt.Checkpoint()
	<-store.started // committer is now frozen inside WritePage

	get := func(path string) []byte {
		t.Helper()
		client := &http.Client{Timeout: 5 * time.Second}
		resp, err := client.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s with a frozen epoch: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	expo := string(get("/metrics"))
	for _, family := range []string{
		"aickpt_core_checkpoints_total",
		"aickpt_core_faults_total",
		"aickpt_ckpt_dedup_hits_total",
		"aickpt_multilevel_epochs_drained_total",
		"aickpt_compact_compactions_total",
	} {
		if !strings.Contains(expo, family) {
			t.Errorf("/metrics during an active epoch missing family %s", family)
		}
	}
	if !strings.Contains(expo, "aickpt_core_checkpoints_total 1") {
		t.Error("/metrics does not show the in-flight checkpoint")
	}

	var snap MetricsSnapshot
	if err := json.Unmarshal(get("/snapshot"), &snap); err != nil {
		t.Fatalf("/snapshot: %v", err)
	}
	if snap.Counters["aickpt_core_checkpoints_total"] != 1 {
		t.Errorf("snapshot checkpoints = %d, want 1", snap.Counters["aickpt_core_checkpoints_total"])
	}

	var trace []struct {
		Seq   uint64 `json:"seq"`
		Stage string `json:"stage"`
	}
	if err := json.Unmarshal(get("/trace"), &trace); err != nil {
		t.Fatalf("/trace: %v", err)
	}
	if len(trace) == 0 {
		t.Error("/trace empty during an active epoch")
	}

	// A burst of scrapes while the app requests the next checkpoint: the
	// Checkpoint call may block on the frozen committer (epoch rotation),
	// but it must complete promptly once the store opens — scrapes hold no
	// lock that could extend the stall.
	done := make(chan struct{})
	go func() {
		for p := 0; p < pages; p++ {
			r.Write(p*pageSize, buf)
		}
		rt.Checkpoint()
		close(done)
	}()
	for i := 0; i < 50; i++ {
		get("/metrics")
		get("/trace")
	}
	select {
	case <-done:
		// Fine: rotation did not need the frozen epoch to finish.
	default:
	}
	store.open()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Checkpoint still blocked after the store opened — a scrape is holding the pipeline")
	}
	rt.WaitIdle()
}

// TestRuntimeMetricsAccessors covers the snapshot/trace accessors and the
// DisableMetrics and TraceDepth options.
func TestRuntimeMetricsAccessors(t *testing.T) {
	rt, err := New(Options{PageSize: 4096, Store: sinkStore{}})
	if err != nil {
		t.Fatal(err)
	}
	r := rt.MallocProtected(4 * 4096)
	for p := 0; p < 4; p++ {
		r.Write(p*4096, make([]byte, 4096))
	}
	rt.Checkpoint()
	rt.WaitIdle()
	snap := rt.Metrics()
	if snap.Counters["aickpt_core_checkpoints_total"] != 1 {
		t.Errorf("checkpoints = %d, want 1", snap.Counters["aickpt_core_checkpoints_total"])
	}
	if snap.Counters["aickpt_core_commit_pages_total"] == 0 {
		t.Error("no committed pages counted")
	}
	if len(rt.Trace()) == 0 {
		t.Error("trace empty after a checkpoint")
	}
	if rt.DebugAddr() != "" {
		t.Error("DebugAddr nonempty without a debug server")
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	off, err := New(Options{PageSize: 4096, Store: sinkStore{}, DisableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	offSnap := off.Metrics()
	if len(offSnap.Counters) != 0 || off.Trace() != nil {
		t.Error("DisableMetrics still produced metrics or trace")
	}
	if err := off.Close(); err != nil {
		t.Fatal(err)
	}

	untraced, err := New(Options{PageSize: 4096, Store: sinkStore{}, TraceDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	ur := untraced.MallocProtected(4096)
	ur.Write(0, make([]byte, 4096))
	untraced.Checkpoint()
	untraced.WaitIdle()
	if untraced.Trace() != nil {
		t.Error("TraceDepth<0 still recorded trace events")
	}
	if untraced.Metrics().Counters["aickpt_core_checkpoints_total"] != 1 {
		t.Error("TraceDepth<0 must not disable metrics")
	}
	if err := untraced.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDebugServerLifecycle: the server answers while the runtime lives and
// the port is released by Close.
func TestDebugServerLifecycle(t *testing.T) {
	rt, err := New(Options{PageSize: 4096, Store: sinkStore{}, DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := rt.DebugAddr()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", addr)); err == nil {
		t.Fatal("debug server still answering after Close")
	}
}
