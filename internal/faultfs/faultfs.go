// Package faultfs wraps a ckpt.FS with deterministic fault injection: an
// operation counter over the mutating operations (Create, writer Close,
// Remove) and an injection plan that can crash-stop the filesystem after
// exactly k operations, tear the write in flight at the crash point, or
// fail individual operations transiently. Because the wrapped writers
// buffer their content and publish it in one shot at Close, "crash after
// op k" has a precise meaning — everything published by the first k-1
// operations is on the inner FS, nothing else is — which is what lets the
// crash-point sweep harness replay one workload crashing at every index
// and assert recovery invariants at each.
//
// Determinism is inherited, not created: under the virtual-time kernel
// (internal/sim) a workload issues the same operation sequence every run,
// so op index k names the same commit-protocol step every time. Under real
// goroutine scheduling the counter is still exact but the op→step mapping
// may vary between runs.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/ckpt"
)

// ErrCrashed is returned by every operation at and after the injected
// crash point: the process is dead, the medium is frozen.
var ErrCrashed = errors.New("faultfs: crashed")

// Plan is an injection plan. The zero Plan injects nothing.
type Plan struct {
	// CrashAtOp crash-stops the filesystem at the 1-based mutating
	// operation with this index: that operation fails with ErrCrashed and
	// publishes nothing (unless Torn is set and the operation is a Close),
	// and every later operation — reads included — fails with ErrCrashed.
	// 0 never crashes.
	CrashAtOp int64
	// Torn simulates a non-atomic medium at the crash point: when the
	// crashing operation is a writer Close, Torn(len) bytes of the staged
	// content (clamped to [0, len]) are published raw to the inner FS —
	// a torn file a recovery scan will actually see. Nil publishes
	// nothing, modeling an atomic-publish medium.
	Torn func(fullLen int) int
	// FailOps fails individual operations transiently: operation index →
	// error. The operation is consumed and performs nothing, but the
	// filesystem keeps running, so callers with retry loops recover.
	FailOps map[int64]error
}

// FS wraps an inner ckpt.FS with the injection plan. It implements
// ckpt.FS; its writers implement ckpt.Aborter.
type FS struct {
	inner ckpt.FS
	plan  Plan

	mu      sync.Mutex
	ops     int64
	crashed bool
}

// Wrap returns inner guarded by plan.
func Wrap(inner ckpt.FS, plan Plan) *FS {
	return &FS{inner: inner, plan: plan}
}

// Inner returns the wrapped FS — the durable state a post-crash reopen
// sees.
func (f *FS) Inner() ckpt.FS { return f.inner }

// Ops returns the number of mutating operations counted so far.
func (f *FS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the crash point was reached.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step accounts one mutating operation and applies the plan to it.
// crashing=true means this very operation is the crash point (its caller
// may still apply a torn publish before reporting ErrCrashed).
func (f *FS) step() (crashing bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return false, ErrCrashed
	}
	f.ops++
	if err, ok := f.plan.FailOps[f.ops]; ok {
		return false, err
	}
	if f.plan.CrashAtOp != 0 && f.ops == f.plan.CrashAtOp {
		f.crashed = true
		return true, ErrCrashed
	}
	return false, nil
}

// alive fails read operations once the filesystem has crashed.
func (f *FS) alive() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

type file struct {
	fs   *FS
	name string
	buf  []byte
	done bool
}

func (w *file) Write(p []byte) (int, error) {
	if w.done {
		return 0, fmt.Errorf("faultfs: write to closed file %q", w.name)
	}
	if err := w.fs.alive(); err != nil {
		return 0, err
	}
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// Close publishes the staged content to the inner FS in one shot — the
// whole file or, when the crash lands here with a torn plan, a raw prefix
// of it.
func (w *file) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	crashing, err := w.fs.step()
	if err != nil {
		if crashing && w.fs.plan.Torn != nil {
			n := w.fs.plan.Torn(len(w.buf))
			if n > len(w.buf) {
				n = len(w.buf)
			}
			if n >= 0 {
				publishRaw(w.fs.inner, w.name, w.buf[:n])
			}
		}
		return err
	}
	return publishRaw(w.fs.inner, w.name, w.buf)
}

// Abort implements ckpt.Aborter: nothing is published and no operation is
// consumed (an abort is the absence of a publish, not an I/O of its own).
func (w *file) Abort() error {
	w.done = true
	w.buf = nil
	return nil
}

func publishRaw(inner ckpt.FS, name string, data []byte) error {
	g, err := inner.Create(name)
	if err != nil {
		return err
	}
	if _, err := g.Write(data); err != nil {
		ckpt.Discard(g)
		return err
	}
	return g.Close()
}

// Create implements ckpt.FS. It counts as one mutating operation even
// though the inner FS is untouched until Close: crashing here models
// dying just before the file's content exists at all.
func (f *FS) Create(name string) (io.WriteCloser, error) {
	if _, err := f.step(); err != nil {
		return nil, err
	}
	return &file{fs: f, name: name}, nil
}

// Open implements ckpt.FS.
func (f *FS) Open(name string) (io.ReadCloser, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	return f.inner.Open(name)
}

// List implements ckpt.FS.
func (f *FS) List() ([]string, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	return f.inner.List()
}

// Remove implements ckpt.FS.
func (f *FS) Remove(name string) error {
	if _, err := f.step(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// ReadFile reads one file of any ckpt.FS in full.
func ReadFile(fs ckpt.FS, name string) ([]byte, error) {
	r, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

// FlipBit corrupts one bit of a file in place (bit counts from the file's
// first byte, LSB first), simulating silent media corruption. The rewrite
// goes through the FS's own Create/Close so it works on any
// implementation.
func FlipBit(fs ckpt.FS, name string, bit int) error {
	data, err := ReadFile(fs, name)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("faultfs: flip bit in empty file %q", name)
	}
	bit %= len(data) * 8
	if bit < 0 {
		bit += len(data) * 8
	}
	data[bit/8] ^= 1 << (bit % 8)
	return publishRaw(fs, name, data)
}

// TruncateFile cuts a file to its first n bytes, simulating a torn write
// discovered after a crash. n at or beyond the file length is a no-op.
func TruncateFile(fs ckpt.FS, name string, n int) error {
	data, err := ReadFile(fs, name)
	if err != nil {
		return err
	}
	if n < 0 {
		n = 0
	}
	if n >= len(data) {
		return nil
	}
	return publishRaw(fs, name, data[:n])
}
