package faultfs

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/ckpt"
)

func write(t *testing.T, fs ckpt.FS, name, content string) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	if _, err := f.Write([]byte(content)); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close %s: %v", name, err)
	}
}

func TestPublishOnClose(t *testing.T) {
	inner := &ckpt.MemFS{}
	fs := Wrap(inner, Plan{})
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("hello"))
	if _, err := inner.Open("a"); err == nil {
		t.Fatal("file visible on inner FS before Close")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(inner, "a")
	if err != nil || string(got) != "hello" {
		t.Fatalf("inner a = %q, %v", got, err)
	}
	if fs.Ops() != 2 { // Create + Close
		t.Fatalf("ops = %d, want 2", fs.Ops())
	}
}

func TestCrashStopsEverything(t *testing.T) {
	inner := &ckpt.MemFS{}
	fs := Wrap(inner, Plan{CrashAtOp: 4}) // a's Create+Close, b's Create, crash at b's Close
	write(t, fs, "a", "one")
	f, _ := fs.Create("b")
	f.Write([]byte("two"))
	if err := f.Close(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("close at crash point: %v, want ErrCrashed", err)
	}
	if !fs.Crashed() {
		t.Fatal("not crashed")
	}
	// The crashing publish never reached the inner FS (atomic medium).
	if _, err := inner.Open("b"); err == nil {
		t.Fatal("crashed publish is visible")
	}
	// Everything is dead now, reads included.
	if _, err := fs.Open("a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Open: %v", err)
	}
	if _, err := fs.List(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash List: %v", err)
	}
	if err := fs.Remove("a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Remove: %v", err)
	}
	if _, err := fs.Create("c"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Create: %v", err)
	}
	// But the pre-crash state survives on the inner FS.
	if got, _ := ReadFile(inner, "a"); string(got) != "one" {
		t.Fatalf("inner a = %q", got)
	}
}

func TestTornPublish(t *testing.T) {
	inner := &ckpt.MemFS{}
	fs := Wrap(inner, Plan{CrashAtOp: 2, Torn: func(n int) int { return n - 2 }})
	f, _ := fs.Create("a")
	f.Write([]byte("abcdef"))
	if err := f.Close(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("close: %v", err)
	}
	got, err := ReadFile(inner, "a")
	if err != nil || string(got) != "abcd" {
		t.Fatalf("torn file = %q, %v", got, err)
	}
}

func TestTransientFailure(t *testing.T) {
	inner := &ckpt.MemFS{}
	boom := fmt.Errorf("transient")
	fs := Wrap(inner, Plan{FailOps: map[int64]error{2: boom}})
	f, _ := fs.Create("a")
	f.Write([]byte("x"))
	if err := f.Close(); !errors.Is(err, boom) {
		t.Fatalf("close: %v, want transient", err)
	}
	// The op was consumed but the FS keeps running; a retry succeeds.
	write(t, fs, "a", "x")
	if got, _ := ReadFile(inner, "a"); string(got) != "x" {
		t.Fatalf("inner a = %q", got)
	}
}

func TestAbortConsumesNoOp(t *testing.T) {
	inner := &ckpt.MemFS{}
	fs := Wrap(inner, Plan{})
	f, _ := fs.Create("a")
	f.Write([]byte("x"))
	ckpt.Discard(f)
	if fs.Ops() != 1 { // only the Create counted
		t.Fatalf("ops = %d, want 1", fs.Ops())
	}
	if _, err := inner.Open("a"); err == nil {
		t.Fatal("aborted file was published")
	}
}

func TestFlipBitAndTruncate(t *testing.T) {
	fs := &ckpt.MemFS{}
	write(t, fs, "a", "\x00\x00")
	if err := FlipBit(fs, "a", 9); err != nil {
		t.Fatal(err)
	}
	if got, _ := ReadFile(fs, "a"); got[0] != 0 || got[1] != 2 {
		t.Fatalf("flipped = %v", got)
	}
	if err := TruncateFile(fs, "a", 1); err != nil {
		t.Fatal(err)
	}
	if got, _ := ReadFile(fs, "a"); len(got) != 1 {
		t.Fatalf("truncated = %v", got)
	}
	// Truncate past the end is a no-op.
	if err := TruncateFile(fs, "a", 99); err != nil {
		t.Fatal(err)
	}
	if got, _ := ReadFile(fs, "a"); len(got) != 1 {
		t.Fatalf("over-truncated = %v", got)
	}
}

// TestRepositoryThroughFaultFS drives the real repository over a crashing
// FS: the epoch sealed before the crash point survives, the epoch torn by
// it is invisible, and a reopen on the inner FS restores the sealed image.
func TestRepositoryThroughFaultFS(t *testing.T) {
	inner := &ckpt.MemFS{}
	// Epoch 1: segment Create (1), manifest Create+Close... count the ops
	// of a clean run first.
	probe := Wrap(&ckpt.MemFS{}, Plan{})
	seal := func(r *ckpt.Repository, epoch uint64, v byte) error {
		page := make([]byte, 32)
		for i := range page {
			page[i] = v
		}
		if err := r.WritePage(epoch, 0, page, 32); err != nil {
			return err
		}
		return r.EndEpoch(epoch)
	}
	pr := ckpt.NewRepository(probe, 32)
	if err := seal(pr, 1, 1); err != nil {
		t.Fatal(err)
	}
	opsPerEpoch := probe.Ops()
	if err := seal(pr, 2, 2); err != nil {
		t.Fatal(err)
	}
	opsSecond := probe.Ops() - opsPerEpoch
	// Crash on the last op of epoch 2 (its manifest publish).
	fs := Wrap(inner, Plan{CrashAtOp: opsPerEpoch + opsSecond})
	r := ckpt.NewRepository(fs, 32)
	if err := seal(r, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := seal(r, 2, 2); err == nil {
		t.Fatal("epoch 2 sealed through the crash")
	}
	im, err := ckpt.Restore(inner)
	if err != nil {
		t.Fatal(err)
	}
	if im.Epoch != 1 || im.Pages[0][0] != 1 {
		t.Fatalf("restored epoch %d page %v", im.Epoch, im.Pages[0][:4])
	}
}
