package cluster

import (
	"fmt"
	"time"

	"repro/internal/multilevel"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Testbed parameters measured in the paper (§4.1).
const (
	// GigabitBandwidth is the measured TCP throughput of the Gigabit
	// Ethernet interconnect on both testbeds (117.5 MB/s).
	GigabitBandwidth = 117.5 * 1e6
	// GigabitLatency is the measured round-trip-ish latency (~0.1 ms).
	GigabitLatency = 100 * time.Microsecond
	// RennesDiskBandwidth is the local SATA disk speed on the Grid'5000
	// Rennes nodes (~55 MB/s).
	RennesDiskBandwidth = 55 * 1e6
	// ShamrockDiskBandwidth approximates the Shamrock nodes' 1 TB HDD
	// streaming write speed.
	ShamrockDiskBandwidth = 110 * 1e6
)

// NodeSpec describes one compute node of a deployment.
type NodeSpec struct {
	// Procs is the number of application processes on the node.
	Procs int
	// NIC configures the node's network interface; zero BytesPerSec means
	// no NIC is modeled.
	NIC netsim.LinkConfig
	// Disk configures node-local storage; zero BytesPerSec means none.
	Disk netsim.LinkConfig
}

// Node is a simulated compute node.
type Node struct {
	Index int
	// NIC is shared by all processes of the node, for both application
	// communication and checkpoint traffic to remote storage.
	NIC *netsim.Link
	// Disk is the node-local disk, shared by all processes of the node.
	Disk *netsim.Link
}

// Deployment is a set of nodes plus an optional PVFS-like parallel file
// system shared by all of them.
type Deployment struct {
	Env   *sim.Kernel
	Nodes []*Node
	// PFSServers are the storage-server links of the parallel file
	// system; empty when the deployment uses node-local storage.
	PFSServers []*netsim.Link
}

// PFSSpec describes a parallel file system deployment.
type PFSSpec struct {
	// Servers is the number of storage nodes (the paper reserves 10).
	Servers int
	// ServerBandwidth is each server's sustained write bandwidth
	// (bottlenecked by its local disk).
	ServerBandwidth float64
	// PerRequest is the fixed server-side cost per page write; with 4 KB
	// pages this models the paper's small-write penalty on PVFS.
	PerRequest time.Duration
}

// NewDeployment builds nodes on the given kernel. All nodes share spec.
func NewDeployment(env *sim.Kernel, nodes int, spec NodeSpec, pfs *PFSSpec) *Deployment {
	d := &Deployment{Env: env}
	for i := 0; i < nodes; i++ {
		n := &Node{Index: i}
		if spec.NIC.BytesPerSec > 0 {
			cfg := spec.NIC
			cfg.Name = fmt.Sprintf("node%d-nic", i)
			n.NIC = netsim.NewLink(env, cfg)
		}
		if spec.Disk.BytesPerSec > 0 {
			cfg := spec.Disk
			cfg.Name = fmt.Sprintf("node%d-disk", i)
			n.Disk = netsim.NewLink(env, cfg)
		}
		d.Nodes = append(d.Nodes, n)
	}
	if pfs != nil {
		for s := 0; s < pfs.Servers; s++ {
			d.PFSServers = append(d.PFSServers, netsim.NewLink(env, netsim.LinkConfig{
				Name:        fmt.Sprintf("pfs%d", s),
				BytesPerSec: pfs.ServerBandwidth,
				PerMessage:  pfs.PerRequest,
			}))
		}
	}
	return d
}

// PFSBackend returns a checkpoint store for a process on node: pages cross
// the node NIC, then stripe over the PFS servers.
func (d *Deployment) PFSBackend(node int) storage.Backend {
	if len(d.PFSServers) == 0 {
		panic("cluster: deployment has no PFS")
	}
	return storage.NewSimPFS(d.Nodes[node].NIC, d.PFSServers)
}

// LocalBackend returns a checkpoint store writing to the node's local disk
// (the Shamrock configuration).
func (d *Deployment) LocalBackend(node int) storage.Backend {
	if d.Nodes[node].Disk == nil {
		panic("cluster: node has no local disk")
	}
	return storage.NewSimDisk(d.Nodes[node].Disk)
}

// PeerNodes returns multilevel peer-tier nodes for every deployment node
// except exclude (the checkpointing node itself): shard traffic to a peer
// contends on that peer's NIC with its own application and checkpoint
// traffic. Pass exclude < 0 to include all nodes.
func (d *Deployment) PeerNodes(exclude int) []*multilevel.PeerNode {
	var peers []*multilevel.PeerNode
	for i, n := range d.Nodes {
		if i == exclude {
			continue
		}
		peers = append(peers, multilevel.NewPeerNode(fmt.Sprintf("node%d", i), n.NIC))
	}
	return peers
}

// Exchange models one halo/boundary exchange for a process: bytes out over
// the node NIC (the matching receive is paid by the peer's own send).
func (d *Deployment) Exchange(node int, bytes int64) {
	if d.Nodes[node].NIC != nil {
		d.Nodes[node].NIC.Transfer(bytes)
	}
}
