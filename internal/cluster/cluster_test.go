package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestBarrierReleasesTogether(t *testing.T) {
	k := sim.NewKernel()
	const n = 5
	bar := NewBarrier(k, n)
	var releases []time.Duration
	for i := 0; i < n; i++ {
		i := i
		k.Go(fmt.Sprintf("p%d", i), func() {
			k.Sleep(time.Duration(i) * time.Millisecond)
			bar.Wait()
			releases = append(releases, k.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range releases {
		if r != 4*time.Millisecond {
			t.Errorf("release at %v, want 4ms (slowest arrival)", r)
		}
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	k := sim.NewKernel()
	const n, rounds = 3, 4
	bar := NewBarrier(k, n)
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		k.Go(fmt.Sprintf("p%d", i), func() {
			for r := 0; r < rounds; r++ {
				k.Sleep(time.Duration(i+1) * time.Millisecond)
				bar.Wait()
				counts[i]++
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != rounds {
			t.Errorf("proc %d completed %d rounds", i, c)
		}
	}
	if k.Now() != rounds*3*time.Millisecond {
		t.Errorf("total time %v, want %v", k.Now(), rounds*3*time.Millisecond)
	}
}

func TestDeploymentPFSStriping(t *testing.T) {
	k := sim.NewKernel()
	d := NewDeployment(k, 2, NodeSpec{
		Procs: 1,
		NIC:   netsim.LinkConfig{BytesPerSec: 1e9},
	}, &PFSSpec{Servers: 4, ServerBandwidth: 1e9})
	if len(d.PFSServers) != 4 || len(d.Nodes) != 2 {
		t.Fatalf("deployment shape: %d servers, %d nodes", len(d.PFSServers), len(d.Nodes))
	}
	be := d.PFSBackend(0)
	k.Go("writer", func() {
		for p := 0; p < 8; p++ {
			if err := be.WritePage(1, p, nil, 4096); err != nil {
				t.Errorf("WritePage: %v", err)
			}
		}
		if err := be.EndEpoch(1); err != nil {
			t.Errorf("EndEpoch: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 8 pages striped over 4 servers: 2 messages each.
	for i, srv := range d.PFSServers {
		if st := srv.Stats(); st.Messages != 2 {
			t.Errorf("server %d got %d messages, want 2", i, st.Messages)
		}
	}
	// All pages crossed the node NIC.
	if st := d.Nodes[0].NIC.Stats(); st.Messages != 8 {
		t.Errorf("NIC messages = %d, want 8", st.Messages)
	}
}

func TestDeploymentLocalDiskShared(t *testing.T) {
	k := sim.NewKernel()
	d := NewDeployment(k, 1, NodeSpec{
		Procs: 2,
		Disk:  netsim.LinkConfig{BytesPerSec: 4096}, // 1 page/s
	}, nil)
	aDone, bDone := time.Duration(0), time.Duration(0)
	k.Go("a", func() {
		d.LocalBackend(0).WritePage(1, 0, nil, 4096)
		aDone = k.Now()
	})
	k.Go("b", func() {
		d.LocalBackend(0).WritePage(1, 1, nil, 4096)
		bDone = k.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The two writes share the disk: 1s and 2s.
	if aDone != time.Second || bDone != 2*time.Second {
		t.Errorf("aDone=%v bDone=%v, want 1s and 2s", aDone, bDone)
	}
}

func TestDeploymentPanicsWithoutResources(t *testing.T) {
	k := sim.NewKernel()
	d := NewDeployment(k, 1, NodeSpec{Procs: 1}, nil)
	for _, f := range []func(){
		func() { d.PFSBackend(0) },
		func() { d.LocalBackend(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for missing resource")
				}
			}()
			f()
		}()
	}
	// Exchange without NIC is a harmless no-op.
	d.Exchange(0, 100)
}
