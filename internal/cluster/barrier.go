// Package cluster assembles simulated HPC deployments for the evaluation
// harness: compute nodes with per-node NICs and local disks, MPI-like
// process groups with barriers, and PVFS-like storage deployments — the
// Grid'5000 and Shamrock configurations of the paper's §4.1.
package cluster

import (
	"sync"

	"repro/internal/sim"
)

// Barrier synchronizes a fixed group of processes: Wait blocks until all n
// members arrive, then releases the generation together. Tightly coupled
// applications synchronize every iteration, which is how one slow process's
// checkpointing jitter delays everyone (the paper's §3.1 concern).
type Barrier struct {
	mu      sync.Locker
	cond    sim.Cond
	n       int
	arrived int
	gen     uint64
}

// NewBarrier returns a barrier for n processes.
func NewBarrier(env sim.Env, n int) *Barrier {
	if n <= 0 {
		panic("cluster: barrier needs at least one process")
	}
	mu := env.NewMutex()
	return &Barrier{mu: mu, cond: env.NewCond(mu), n: n}
}

// Wait blocks until all processes of the group have called Wait for the
// current generation.
func (b *Barrier) Wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for b.gen == gen {
		b.cond.Wait()
	}
}
