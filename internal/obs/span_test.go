package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSpanLogRecordAndSnapshot(t *testing.T) {
	l := NewSpanLog(16)
	l.record(SpanCommit, 1, 0, 0, 100)
	l.record(SpanSeal, 1, 0, 90, 100)
	l.record(SpanPromote, 1, 2, 100, 250)
	spans := l.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("snapshot holds %d spans, want 3", len(spans))
	}
	for i, s := range spans {
		if s.Seq != uint64(i) {
			t.Fatalf("span %d has seq %d, want in-order sequence", i, s.Seq)
		}
	}
	p := spans[2]
	if p.Kind != SpanPromote || p.Epoch != 1 || p.Tier != 2 || p.Start != 100 || p.End != 250 {
		t.Fatalf("promote span round-trip = %+v", p)
	}
	if p.Dur() != 150 {
		t.Fatalf("Dur = %v, want 150", p.Dur())
	}
}

func TestSpanLogWraparound(t *testing.T) {
	l := NewSpanLog(16)
	if l.Cap() != 16 {
		t.Fatalf("cap = %d, want 16", l.Cap())
	}
	for i := 0; i < 40; i++ {
		l.record(SpanCommit, uint64(i), 0, time.Duration(i), time.Duration(i+1))
	}
	spans := l.Snapshot()
	if len(spans) != 16 {
		t.Fatalf("snapshot holds %d spans, want the 16 newest", len(spans))
	}
	// The ring keeps the most recent 16: seqs 24..39 in order.
	for i, s := range spans {
		want := uint64(24 + i)
		if s.Seq != want || s.Epoch != want {
			t.Fatalf("span %d = seq %d epoch %d, want %d", i, s.Seq, s.Epoch, want)
		}
	}
}

func TestSpanLogDepthRounding(t *testing.T) {
	for _, tc := range []struct{ depth, want int }{
		{0, 16}, {1, 16}, {16, 16}, {17, 32}, {1000, 1024},
	} {
		if got := NewSpanLog(tc.depth).Cap(); got != tc.want {
			t.Errorf("NewSpanLog(%d).Cap() = %d, want %d", tc.depth, got, tc.want)
		}
	}
}

// TestSpanLogConcurrentSnapshot hammers the ring from several writers
// while snapshotting: under -race this proves the seqlock publication,
// and every span a snapshot returns must be internally consistent
// (End = Start+1 here, never a torn mix of two records).
func TestSpanLogConcurrentSnapshot(t *testing.T) {
	l := NewSpanLog(64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				at := time.Duration(i*4 + w)
				l.record(SpanPromote, uint64(at), int8(w), at, at+1)
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		for _, s := range l.Snapshot() {
			if s.End != s.Start+1 || s.Epoch != uint64(s.Start) {
				t.Fatalf("torn span: %+v", s)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestMetricsSpanNilSafety(t *testing.T) {
	var m *Metrics
	m.Span(SpanCommit, 1, 0, 0, 1) // nil receiver
	m2 := New(nil)
	m2.Span(SpanCommit, 1, 0, 0, 1) // no span log attached
}

func TestScoreHitRate(t *testing.T) {
	for _, tc := range []struct {
		waits, cows, avoided int
		want                 float64
	}{
		{0, 0, 0, 0},
		{0, 0, 5, 1},
		{5, 5, 0, 0},
		{1, 1, 2, 0.5},
	} {
		if got := ScoreHitRate(tc.waits, tc.cows, tc.avoided); got != tc.want {
			t.Errorf("ScoreHitRate(%d,%d,%d) = %v, want %v", tc.waits, tc.cows, tc.avoided, got, tc.want)
		}
	}
}

func TestScoreRankCorrelation(t *testing.T) {
	approx := func(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }
	// Identical orders: zero displacement.
	if got := ScoreRankCorrelation(0, 8, 8, 8); got != 1 {
		t.Errorf("identical orders = %v, want 1", got)
	}
	// Exactly reversed orders of n=4 on ranks 1..4: F = 2+0+0+2... compute
	// |1-4|+|2-3|+|3-2|+|4-1| = 8; corr = 1 - 3*8/(4*3) = -1 (clamped).
	if got := ScoreRankCorrelation(8, 4, 4, 4); got != -1 {
		t.Errorf("reversed orders = %v, want clamp to -1", got)
	}
	// Mid-range value with unequal lengths: scale = max(8, 4) = 8.
	if got := ScoreRankCorrelation(6, 4, 8, 4); !approx(got, 1-18.0/28.0) {
		t.Errorf("mixed = %v, want %v", got, 1-18.0/28.0)
	}
	// Degenerate inputs.
	if got := ScoreRankCorrelation(0, 0, 8, 8); got != 0 {
		t.Errorf("no pairs = %v, want 0", got)
	}
	if got := ScoreRankCorrelation(0, 1, 1, 1); got != 0 {
		t.Errorf("scale 1 = %v, want 0", got)
	}
}

func TestBuildEpochRecords(t *testing.T) {
	ms := time.Millisecond
	cards := []Scorecard{
		{Epoch: 1, PagesFlushed: 8, FaultArrivals: 4, Waits: 1, Cows: 1, Avoided: 1, HitRate: 1.0 / 3.0},
	}
	spans := []Span{
		{Seq: 0, Kind: SpanCommit, Epoch: 1, Start: 0, End: 800 * ms},
		{Seq: 1, Kind: SpanSeal, Epoch: 1, Start: 700 * ms, End: 800 * ms},
		{Seq: 2, Kind: SpanDrainWait, Epoch: 1, Tier: 1, Start: 800 * ms, End: 900 * ms},
		{Seq: 3, Kind: SpanPromote, Epoch: 1, Tier: 1, Start: 900 * ms, End: 2000 * ms},
		// A span-only epoch: no scorecard ever recorded for it.
		{Seq: 4, Kind: SpanRestore, Epoch: 2, Tier: 2, Start: 2000 * ms, End: 2500 * ms},
	}
	recs := BuildEpochRecords(cards, spans)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}

	r1 := recs[0]
	if r1.Epoch != 1 || r1.Scorecard == nil || r1.Scorecard.FaultArrivals != 4 {
		t.Fatalf("record 1 = %+v", r1)
	}
	if r1.TotalNs != int64(2000*ms) {
		t.Fatalf("record 1 total = %d, want 2s", r1.TotalNs)
	}
	// Tree shape: root(epoch) -> [commit -> [seal], drain-wait, promote].
	root := r1.Spans
	if root == nil || root.Kind != "epoch" || len(root.Children) != 3 {
		t.Fatalf("root = %+v", root)
	}
	commit := root.Children[0]
	if commit.Kind != "commit" || len(commit.Children) != 1 || commit.Children[0].Kind != "seal" {
		t.Fatalf("commit node = %+v", commit)
	}
	if root.Children[1].Kind != "drain-wait" || root.Children[2].Kind != "promote" {
		t.Fatalf("root children = %+v", root.Children)
	}
	// Critical path: promote 1100ms > flush (800-100=700ms) > seal 100ms =
	// drain-wait 100ms; bounding stage names the tier.
	if r1.Bounding != "promote[1]" {
		t.Fatalf("bounding = %q, want promote[1]", r1.Bounding)
	}
	if len(r1.Critical) != 4 {
		t.Fatalf("critical path has %d stages, want 4", len(r1.Critical))
	}
	if r1.Critical[0].Stage != "promote" || r1.Critical[0].DurNs != int64(1100*ms) {
		t.Fatalf("critical[0] = %+v", r1.Critical[0])
	}
	if r1.Critical[1].Stage != "flush" || r1.Critical[1].DurNs != int64(700*ms) {
		t.Fatalf("critical[1] = %+v (flush must exclude the seal)", r1.Critical[1])
	}
	if share := r1.Critical[0].Share; share != 0.55 {
		t.Fatalf("promote share = %v, want 0.55", share)
	}

	r2 := recs[1]
	if r2.Epoch != 2 || r2.Scorecard != nil || r2.Bounding != "restore[2]" {
		t.Fatalf("span-only record = %+v", r2)
	}
	if r2.TotalNs != int64(500*ms) {
		t.Fatalf("record 2 total = %d, want 500ms", r2.TotalNs)
	}

	// Scorecard-only epochs carry no tree; spans may be empty.
	only := BuildEpochRecords([]Scorecard{{Epoch: 7}}, nil)
	if len(only) != 1 || only[0].Spans != nil || only[0].Scorecard == nil {
		t.Fatalf("scorecard-only records = %+v", only)
	}
	if got := BuildEpochRecords(nil, nil); len(got) != 0 {
		t.Fatalf("empty inputs produced %d records", len(got))
	}
}
