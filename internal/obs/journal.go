package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Stage names one step of the checkpoint pipeline in the trace journal,
// covering the full epoch lifecycle: fault → COW → select → compress →
// write → seal → drain → promote → compact (plus wait, dedup and
// restore, which the pipeline emits on the corresponding paths).
type Stage uint8

const (
	// StageFault: a first write trapped by the page handler
	// (value = service latency ns).
	StageFault Stage = iota
	// StageCow: the fault was absorbed by a copy-on-write slot
	// (value = COW slots in use after the grab).
	StageCow
	// StageWait: the fault blocked on an in-flight page
	// (value = blocked ns).
	StageWait
	// StageCheckpoint: Checkpoint() rotated an epoch
	// (value = app-blocked ns inside the call).
	StageCheckpoint
	// StageSelect: the adaptive flush-order selector was built
	// (value = build ns).
	StageSelect
	// StageCompress: a page payload was codec-encoded
	// (value = encoded bytes).
	StageCompress
	// StageDedup: a page write was elided by content-addressed dedup
	// (value = raw bytes saved).
	StageDedup
	// StageWrite: a page was committed to the storage backend
	// (value = write ns).
	StageWrite
	// StageSeal: an epoch was sealed by EndEpoch (value = seal ns).
	StageSeal
	// StageDrain: a sealed epoch entered a tier's drain queue
	// (value = queue depth after enqueue).
	StageDrain
	// StagePromote: an epoch was stored on a lower tier
	// (value = promotion ns).
	StagePromote
	// StagePromoteFail: a tier exhausted its retry budget for an epoch.
	StagePromoteFail
	// StageCompact: a compaction pass committed a base
	// (value = bytes reclaimed).
	StageCompact
	// StageRestore: an epoch was read back during restore
	// (value = pages restored).
	StageRestore
	// StageScrub: a scrub pass verified the chain
	// (value = damaged entries found).
	StageScrub
	// StageRepair: a damaged chain entry was rebuilt from a lower tier
	// (value = pages rewritten; tier = the tier that supplied them).
	StageRepair
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageFault:
		return "fault"
	case StageCow:
		return "cow"
	case StageWait:
		return "wait"
	case StageCheckpoint:
		return "checkpoint"
	case StageSelect:
		return "select"
	case StageCompress:
		return "compress"
	case StageDedup:
		return "dedup"
	case StageWrite:
		return "write"
	case StageSeal:
		return "seal"
	case StageDrain:
		return "drain"
	case StagePromote:
		return "promote"
	case StagePromoteFail:
		return "promote-fail"
	case StageCompact:
		return "compact"
	case StageRestore:
		return "restore"
	case StageScrub:
		return "scrub"
	case StageRepair:
		return "repair"
	default:
		return "unknown"
	}
}

// Event is one traced pipeline step. At is the Metrics' time source at
// record time — wall-clock-relative for real runs, virtual time for
// simulations — so traces order identically in both worlds. Page is -1
// for events without a page, Tier is 0 for events outside the
// hierarchy (lower tiers are 1-based levels).
type Event struct {
	Seq   uint64        `json:"seq"`
	At    time.Duration `json:"at_ns"`
	Stage Stage         `json:"-"`
	Epoch uint64        `json:"epoch"`
	Page  int32         `json:"page"`
	Tier  int8          `json:"tier"`
	Value int64         `json:"value"`
}

// journalSlot is one ring entry. Every word is accessed atomically so
// record and Snapshot never race: seq is the seqlock (0 = empty or
// being written; n+1 = event n complete), and readers validate seq
// before and after reading the payload words.
type journalSlot struct {
	seq    atomic.Uint64
	at     atomic.Int64
	epoch  atomic.Uint64
	value  atomic.Int64
	packed atomic.Uint64 // page(32) | tier(8) | stage(8)
}

func packEvent(stage Stage, page int32, tier int8) uint64 {
	return uint64(uint32(page))<<32 | uint64(uint8(tier))<<8 | uint64(stage)
}

func unpackEvent(p uint64) (stage Stage, page int32, tier int8) {
	return Stage(p & 0xff), int32(uint32(p >> 32)), int8(uint8(p >> 8))
}

// Journal is a bounded, lock-free ring buffer of pipeline events. Writers
// claim a slot with one atomic fetch-add and publish it seqlock-style;
// when the ring wraps, the oldest events are overwritten — the journal
// is a flight recorder, not a log. Snapshot never blocks writers and
// writers never block each other, so tracing is safe on every hot path
// and a scrape can never stall a Checkpoint.
type Journal struct {
	mask  uint64
	next  atomic.Uint64
	slots []journalSlot
}

// DefaultJournalDepth is the default ring capacity.
const DefaultJournalDepth = 4096

// NewJournal returns a journal holding the most recent `depth` events
// (rounded up to a power of two, minimum 16).
func NewJournal(depth int) *Journal {
	n := 16
	for n < depth {
		n <<= 1
	}
	return &Journal{mask: uint64(n - 1), slots: make([]journalSlot, n)}
}

// Cap returns the ring capacity.
func (j *Journal) Cap() int { return len(j.slots) }

// record appends one event. Allocation-free: one fetch-add plus five
// atomic stores.
//
//aickpt:hotpath
func (j *Journal) record(at time.Duration, stage Stage, epoch uint64, page int32, tier int8, value int64) {
	seq := j.next.Add(1) - 1
	s := &j.slots[seq&j.mask]
	s.seq.Store(0) // invalidate for concurrent readers
	s.at.Store(int64(at))
	s.epoch.Store(epoch)
	s.value.Store(value)
	s.packed.Store(packEvent(stage, page, tier))
	s.seq.Store(seq + 1) // publish
}

// Len returns the number of events currently retained (at most Cap).
func (j *Journal) Len() int {
	n := j.next.Load()
	if n > uint64(len(j.slots)) {
		return len(j.slots)
	}
	return int(n)
}

// Snapshot returns the retained events ordered by sequence number. It
// takes no locks: slots caught mid-write (or overwritten while being
// read) are skipped, so a snapshot under heavy tracing is a consistent
// sample rather than a stall.
func (j *Journal) Snapshot() []Event {
	out := make([]Event, 0, len(j.slots))
	for i := range j.slots {
		s := &j.slots[i]
		for attempt := 0; attempt < 2; attempt++ {
			seq1 := s.seq.Load()
			if seq1 == 0 {
				break
			}
			at := s.at.Load()
			epoch := s.epoch.Load()
			value := s.value.Load()
			packed := s.packed.Load()
			if s.seq.Load() != seq1 {
				continue // overwritten mid-read; retry once
			}
			stage, page, tier := unpackEvent(packed)
			out = append(out, Event{
				Seq: seq1 - 1, At: time.Duration(at), Stage: stage,
				Epoch: epoch, Page: page, Tier: tier, Value: value,
			})
			break
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}
