package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// SpanKind names one stage of an epoch's lifecycle in the span log. A
// span is an interval [Start, End) on the Metrics' time source, where
// the point-in-time trace Journal records instants; together they form
// the flight recorder: the journal answers "what happened", the span
// log answers "what bounded the epoch's latency".
type SpanKind uint8

const (
	// SpanCommit: the epoch's local commit phase, from rotation until
	// the epoch is sealed on the first storage level. The seal span is
	// its final child.
	SpanCommit SpanKind = iota
	// SpanSeal: EndEpoch on the first storage level (manifest write,
	// fsync, drain-queue handoff).
	SpanSeal
	// SpanDrainWait: a sealed epoch sitting in a lower tier's drain
	// queue before the drainer picked it up.
	SpanDrainWait
	// SpanPromote: the store of a sealed epoch onto a lower tier.
	SpanPromote
	// SpanCompact: a compaction pass that folded the chain into a new
	// base (Epoch = the base's upper epoch).
	SpanCompact
	// SpanRestore: an epoch read back during tier-aware restore (Tier =
	// the level that served it: 0 local, 1.. lower tiers).
	SpanRestore
)

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	switch k {
	case SpanCommit:
		return "commit"
	case SpanSeal:
		return "seal"
	case SpanDrainWait:
		return "drain-wait"
	case SpanPromote:
		return "promote"
	case SpanCompact:
		return "compact"
	case SpanRestore:
		return "restore"
	default:
		return "unknown"
	}
}

// Span is one recorded lifecycle interval. Start and End are readings of
// the Metrics' time source — wall-clock-relative for real runs, virtual
// time for simulations — so span trees are deterministic under the
// simulation kernel. Tier is 0 for the local level, 1-based for lower
// tiers.
type Span struct {
	Seq   uint64        `json:"seq"`
	Kind  SpanKind      `json:"-"`
	Epoch uint64        `json:"epoch"`
	Tier  int8          `json:"tier"`
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
}

// Dur returns the span length.
func (s Span) Dur() time.Duration { return s.End - s.Start }

// spanSlot is one ring entry, seqlock-published exactly like
// journalSlot: seq 0 means empty or mid-write, n+1 means span n is
// complete, and readers validate seq around the payload loads.
type spanSlot struct {
	seq    atomic.Uint64
	start  atomic.Int64
	end    atomic.Int64
	epoch  atomic.Uint64
	packed atomic.Uint64 // tier(8) | kind(8)
}

func packSpan(kind SpanKind, tier int8) uint64 {
	return uint64(uint8(tier))<<8 | uint64(kind)
}

func unpackSpan(p uint64) (kind SpanKind, tier int8) {
	return SpanKind(p & 0xff), int8(uint8(p >> 8))
}

// SpanLog is a bounded, lock-free ring of lifecycle spans, the interval
// counterpart of the trace Journal: writers claim a slot with one
// fetch-add and publish seqlock-style, Snapshot never blocks writers,
// and when the ring wraps the oldest epochs fall off — it is a flight
// recorder, not a log.
type SpanLog struct {
	mask  uint64
	next  atomic.Uint64
	slots []spanSlot
}

// DefaultSpanDepth is the default span-ring capacity. Spans are recorded
// per epoch and per tier (not per page), so a modest ring covers
// hundreds of epochs.
const DefaultSpanDepth = 1024

// NewSpanLog returns a span log holding the most recent `depth` spans
// (rounded up to a power of two, minimum 16).
func NewSpanLog(depth int) *SpanLog {
	n := 16
	for n < depth {
		n <<= 1
	}
	return &SpanLog{mask: uint64(n - 1), slots: make([]spanSlot, n)}
}

// Cap returns the ring capacity.
func (l *SpanLog) Cap() int { return len(l.slots) }

// record appends one span. Allocation-free: one fetch-add plus five
// atomic stores.
func (l *SpanLog) record(kind SpanKind, epoch uint64, tier int8, start, end time.Duration) {
	seq := l.next.Add(1) - 1
	s := &l.slots[seq&l.mask]
	s.seq.Store(0) // invalidate for concurrent readers
	s.start.Store(int64(start))
	s.end.Store(int64(end))
	s.epoch.Store(epoch)
	s.packed.Store(packSpan(kind, tier))
	s.seq.Store(seq + 1) // publish
}

// Snapshot returns the retained spans ordered by sequence number,
// skipping slots caught mid-write, with the same non-blocking guarantees
// as Journal.Snapshot.
func (l *SpanLog) Snapshot() []Span {
	out := make([]Span, 0, len(l.slots))
	for i := range l.slots {
		s := &l.slots[i]
		for attempt := 0; attempt < 2; attempt++ {
			seq1 := s.seq.Load()
			if seq1 == 0 {
				break
			}
			start := s.start.Load()
			end := s.end.Load()
			epoch := s.epoch.Load()
			packed := s.packed.Load()
			if s.seq.Load() != seq1 {
				continue // overwritten mid-read; retry once
			}
			kind, tier := unpackSpan(packed)
			out = append(out, Span{
				Seq: seq1 - 1, Kind: kind, Epoch: epoch, Tier: tier,
				Start: time.Duration(start), End: time.Duration(end),
			})
			break
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Span records one lifecycle span with caller-supplied timestamps —
// instrumentation sites reuse the clock reads they already paid for a
// latency observation, per the reuse-the-clock-read discipline. It is a
// no-op on a nil receiver or without a span log, so call sites need no
// extra guard.
func (m *Metrics) Span(kind SpanKind, epoch uint64, tier int8, start, end time.Duration) {
	if m == nil || m.Spans == nil {
		return
	}
	m.Spans.record(kind, epoch, tier, start, end)
}
