package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// counterRef / gaugeRef / histRef are scrape-time descriptors: name is
// the full Prometheus family name, labels the rendered label set ("" or
// `{k="v"}`). They are built per scrape — scrapes are cold paths, the
// hot paths never touch them.
type counterRef struct {
	name, labels, help string
	c                  *Counter
}

type gaugeRef struct {
	name, labels, help string
	g                  *Gauge
}

type histRef struct {
	name, labels, help string
	h                  *Histogram
}

func (m *Metrics) counterRefs() []counterRef {
	refs := []counterRef{
		{"aickpt_core_checkpoints_total", "", "Checkpoint() calls", &m.CheckpointsTotal},
		{"aickpt_core_faults_total", `{type="cow"}`, "first writes by classification", &m.FaultsCow},
		{"aickpt_core_faults_total", `{type="wait"}`, "first writes by classification", &m.FaultsWait},
		{"aickpt_core_faults_total", `{type="avoided"}`, "first writes by classification", &m.FaultsAvoided},
		{"aickpt_core_faults_total", `{type="after"}`, "first writes by classification", &m.FaultsAfter},
		{"aickpt_core_commit_pages_total", "", "pages committed to the backend", &m.CommitPages},
		{"aickpt_core_commit_bytes_total", "", "bytes committed to the backend", &m.CommitBytes},
		{"aickpt_core_epochs_sealed_total", "", "epochs sealed by the committer", &m.EpochsSealed},
		{"aickpt_ckpt_raw_bytes_total", "", "raw page bytes entering the repository", &m.RecordRawBytes},
		{"aickpt_ckpt_encoded_bytes_total", "", "payload bytes after codec encoding", &m.RecordCodedBytes},
		{"aickpt_ckpt_dedup_hits_total", "", "page writes elided by dedup", &m.DedupHits},
		{"aickpt_ckpt_dedup_misses_total", "", "page writes stored physically", &m.DedupMisses},
		{"aickpt_ckpt_epochs_sealed_total", "", "repository epochs sealed", &m.EpochsSealedRepo},
		{"aickpt_multilevel_drain_retries_total", "", "failed tier stores that will retry", &m.DrainRetries},
		{"aickpt_multilevel_drain_failures_total", "", "epochs past a tier's retry budget", &m.DrainFailures},
		{"aickpt_multilevel_epochs_drained_total", "", "epochs retired from the drain pipeline", &m.EpochsDrained},
		{"aickpt_multilevel_restore_epochs_total", "", "epochs read during tier-aware restore", &m.RestoreEpochs},
		{"aickpt_multilevel_restore_pages_total", "", "pages read during tier-aware restore", &m.RestorePages},
		{"aickpt_scrub_segments_total", "", "chain entries verified by scrub passes", &m.ScrubSegments},
		{"aickpt_scrub_corrupt_total", "", "damaged chain entries found by scrub", &m.ScrubCorrupt},
		{"aickpt_scrub_repaired_total", "", "damaged entries rebuilt from a redundant tier", &m.ScrubRepaired},
		{"aickpt_scrub_unrepaired_total", "", "damaged entries no tier could rebuild", &m.ScrubUnrepaired},
		{"aickpt_multilevel_drain_requeues_total", "", "gave-up tier copies re-enqueued by scrub", &m.DrainRequeues},
		{"aickpt_compact_compactions_total", "", "compaction passes that committed a base", &m.Compactions},
		{"aickpt_compact_epochs_folded_total", "", "epochs folded into bases", &m.EpochsFolded},
		{"aickpt_compact_reclaimed_bytes_total", "", "garbage bytes collected", &m.ReclaimedBytes},
		{"aickpt_compact_skipped_passes_total", "", "passes that decided not to fold", &m.CompactSkips},
	}
	for w := range m.WorkerPages {
		if c := &m.WorkerPages[w]; w == 0 || c.Load() != 0 {
			refs = append(refs, counterRef{
				"aickpt_core_worker_pages_total",
				`{worker="` + strconv.Itoa(w) + `"}`,
				"pages committed per commit worker", c,
			})
		}
	}
	return refs
}

func (m *Metrics) gaugeRefs() []gaugeRef {
	refs := []gaugeRef{
		{"aickpt_core_cow_in_use", "", "COW slots currently held", &m.CowInUse},
		{"aickpt_ckpt_staging_depth", "", "records staged ahead of the segment writer", &m.StagingDepth},
		{"aickpt_multilevel_failed_tier_copies", "", "tier copies currently past their retry budget", &m.FailedTierCopies},
	}
	for t := range m.DrainQueueDepth {
		if g := &m.DrainQueueDepth[t]; t == 0 || g.Load() != 0 {
			refs = append(refs, gaugeRef{
				"aickpt_multilevel_drain_queue_depth",
				`{tier="` + strconv.Itoa(t+1) + `"}`,
				"epochs queued for promotion per lower tier", g,
			})
		}
	}
	return refs
}

func (m *Metrics) histRefs() []histRef {
	refs := []histRef{
		{"aickpt_core_checkpoint_blocked_ns", "", "app time blocked inside Checkpoint()", &m.CheckpointBlockedNs},
		{"aickpt_core_fault_ns", "", "fault-handler service latency", &m.FaultNs},
		{"aickpt_core_fault_wait_ns", "", "time blocked on in-flight pages", &m.FaultWaitNs},
		{"aickpt_core_commit_write_ns", "", "per-page backend write latency", &m.CommitWriteNs},
		{"aickpt_core_selector_build_ns", "", "adaptive flush-order build time", &m.SelectorBuildNs},
		{"aickpt_core_seal_ns", "", "EndEpoch latency", &m.SealNs},
		{"aickpt_core_selector_hit_rate_pm", "", "per-epoch flushed-before-faulted hit rate (per mille)", &m.SelectorHitRatePm},
		{"aickpt_core_selector_rank_corr_pm", "", "per-epoch footrule rank correlation (per mille, clamped at 0)", &m.SelectorRankCorrPm},
		{"aickpt_core_waited_queue_peak", "", "per-epoch peak waited-queue depth", &m.WaitedQueuePeak},
		{"aickpt_ckpt_record_write_ns", "", "repository WritePage latency", &m.RecordWriteNs},
		{"aickpt_ckpt_manifest_write_ns", "", "manifest write latency at seal", &m.ManifestWriteNs},
		{"aickpt_compact_fold_ns", "", "duration of compaction passes that folded", &m.FoldNs},
	}
	for t := range m.PromoteNs {
		if h := &m.PromoteNs[t]; t == 0 || h.Count() != 0 {
			refs = append(refs, histRef{
				"aickpt_multilevel_promote_ns",
				`{tier="` + strconv.Itoa(t+1) + `"}`,
				"per-tier promotion latency", h,
			})
		}
	}
	return refs
}

// WritePrometheus renders the metric set in the Prometheus text
// exposition format (version 0.0.4). Histograms use the fixed base-2
// bucket layout with cumulative counts and a trailing +Inf bucket.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	seen := map[string]bool{}
	header := func(name, help, typ string) {
		if !seen[name] {
			seen[name] = true
			fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		}
	}
	for _, r := range m.counterRefs() {
		header(r.name, r.help, "counter")
		fmt.Fprintf(bw, "%s%s %d\n", r.name, r.labels, r.c.Load())
	}
	for _, r := range m.gaugeRefs() {
		header(r.name, r.help, "gauge")
		fmt.Fprintf(bw, "%s%s %d\n", r.name, r.labels, r.g.Load())
	}
	for _, r := range m.histRefs() {
		header(r.name, r.help, "histogram")
		s := r.h.Snapshot()
		inner := r.labels
		if inner != "" {
			inner = "," + inner[1:len(inner)-1]
		}
		var cum uint64
		for _, b := range s.Buckets {
			cum += b.Count
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"%s} %d\n", r.name, b.Le, inner, cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"%s} %d\n", r.name, inner, s.Count)
		fmt.Fprintf(bw, "%s_sum%s %d\n", r.name, r.labels, s.Sum)
		fmt.Fprintf(bw, "%s_count%s %d\n", r.name, r.labels, s.Count)
	}
	return bw.Flush()
}

// Snapshot is a point-in-time copy of every metric, keyed by the full
// Prometheus family name (labels included for labeled families). It is
// the JSON payload of the debug server's /snapshot endpoint and the
// machine-readable form embedded into BENCH records.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// TakeSnapshot copies the metric set. Safe on a nil receiver (returns an
// empty snapshot) and never blocks writers: every read is one atomic
// load.
func (m *Metrics) TakeSnapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if m == nil {
		return s
	}
	for _, r := range m.counterRefs() {
		s.Counters[r.name+r.labels] = r.c.Load()
	}
	for _, r := range m.gaugeRefs() {
		s.Gauges[r.name+r.labels] = r.g.Load()
	}
	for _, r := range m.histRefs() {
		s.Histograms[r.name+r.labels] = r.h.Snapshot()
	}
	return s
}
