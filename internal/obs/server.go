package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// traceEvent is the wire form of an Event for the /trace endpoint: the
// stage is rendered by name so the JSON is self-describing.
type traceEvent struct {
	Seq   uint64 `json:"seq"`
	AtNs  int64  `json:"at_ns"`
	Stage string `json:"stage"`
	Epoch uint64 `json:"epoch"`
	Page  int32  `json:"page"`
	Tier  int8   `json:"tier"`
	Value int64  `json:"value"`
}

// Server is the opt-in debug HTTP server: Prometheus text exposition at
// /metrics, the trace journal at /trace, a machine-readable metric
// snapshot at /snapshot, the epoch flight recorder at /epochs, and the
// standard pprof handlers under /debug/pprof/. It reads the shared
// Metrics with atomic loads only, so a scrape can never block the
// checkpoint pipeline.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// getOnly rejects every method but GET with 405 so the read-only debug
// endpoints cannot be mistaken for mutation APIs.
func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// ScrubFunc runs an on-demand integrity scrub and returns its
// JSON-serializable report. The owner of the Metrics supplies it when the
// backing store supports scrubbing (the Runtime wires Runtime.Scrub here).
type ScrubFunc func() (any, error)

// Handler returns the debug mux for m, usable standalone (e.g. to mount
// under an existing server) or via StartServer. epochs optionally
// supplies the flight-recorder payload for /epochs — the owner of the
// Metrics (the Runtime, a bench harness) assembles scorecards and span
// trees into EpochRecords on demand; nil serves an empty list. scrub,
// when non-nil, backs the POST-only /scrub endpoint (scrubbing repairs
// files, so unlike the read-only endpoints it is a mutation API).
func Handler(m *Metrics, epochs func() []EpochRecord, scrub ScrubFunc) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", getOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
	}))
	mux.HandleFunc("/snapshot", getOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(m.TakeSnapshot())
	}))
	mux.HandleFunc("/trace", getOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		events := []traceEvent{}
		if m != nil && m.Journal != nil {
			for _, e := range m.Journal.Snapshot() {
				events = append(events, traceEvent{
					Seq: e.Seq, AtNs: int64(e.At), Stage: e.Stage.String(),
					Epoch: e.Epoch, Page: e.Page, Tier: e.Tier, Value: e.Value,
				})
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(events)
	}))
	mux.HandleFunc("/epochs", getOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		records := []EpochRecord{}
		if epochs != nil {
			if rs := epochs(); rs != nil {
				records = rs
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(records)
	}))
	mux.HandleFunc("/scrub", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "method not allowed (scrub mutates the store: POST)", http.StatusMethodNotAllowed)
			return
		}
		if scrub == nil {
			http.Error(w, "scrubbing not supported by this runtime's store", http.StatusNotImplemented)
			return
		}
		report, err := scrub()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(report)
	})
	// pprof must be registered explicitly: the mux above is not the
	// DefaultServeMux the pprof package self-registers on.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartServer listens on addr (e.g. "127.0.0.1:0") and serves the debug
// endpoints for m in a background goroutine. epochs feeds /epochs and
// scrub backs POST /scrub (see Handler); either may be nil.
func StartServer(addr string, m *Metrics, epochs func() []EpochRecord, scrub ScrubFunc) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(m, epochs, scrub), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the server's bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }
