package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one padded counter from many goroutines:
// the final value must be exact (atomic, no lost updates). Run under -race
// in CI, this also proves the counter is data-race-free.
func TestCounterConcurrent(t *testing.T) {
	const goroutines = 8
	const perG = 10000
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

// TestHistogramConcurrent checks that concurrent observers lose neither
// counts nor sum, and that max converges to the true maximum through the
// CAS loop.
func TestHistogramConcurrent(t *testing.T) {
	const goroutines = 8
	const perG = 5000
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*perG + i))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	if want := uint64(goroutines*perG - 1); s.Max != want {
		t.Fatalf("max = %d, want %d", s.Max, want)
	}
	var bucketTotal uint64
	for _, b := range s.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket counts sum to %d, count is %d", bucketTotal, s.Count)
	}
}

// TestHistogramQuantile pins the quantile estimator on a known
// distribution: estimates must stay within the bucket resolution (a
// factor of two) and be clamped by the observed max.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if m := s.Mean(); m < 499 || m > 502 {
		t.Fatalf("mean = %.1f, want ~500.5", m)
	}
	p50 := s.Quantile(0.5)
	if p50 < 250 || p50 > 1000 {
		t.Fatalf("p50 = %.0f, want within a factor of 2 of 500", p50)
	}
	if p100 := s.Quantile(1); p100 > float64(s.Max) {
		t.Fatalf("p100 = %.0f exceeds observed max %d", p100, s.Max)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %.0f, want 0", q)
	}
}

// TestJournalWraparound overfills a small ring: Len stays clamped at
// capacity, and Snapshot returns the newest events in sequence order.
func TestJournalWraparound(t *testing.T) {
	j := NewJournal(16)
	if j.Cap() != 16 {
		t.Fatalf("cap = %d, want 16", j.Cap())
	}
	const total = 100
	for i := 0; i < total; i++ {
		j.record(time.Duration(i), StageWrite, uint64(i), int32(i), 0, int64(i))
	}
	if j.Len() != 16 {
		t.Fatalf("len = %d, want 16 after wraparound", j.Len())
	}
	events := j.Snapshot()
	if len(events) != 16 {
		t.Fatalf("snapshot has %d events, want 16", len(events))
	}
	for i, e := range events {
		if i > 0 && e.Seq <= events[i-1].Seq {
			t.Fatalf("snapshot out of order at %d: seq %d after %d", i, e.Seq, events[i-1].Seq)
		}
		// Only the newest window survives a wrap.
		if e.Seq < total-16 {
			t.Fatalf("stale event seq %d survived a wrap of %d records", e.Seq, total)
		}
		if uint64(e.Epoch) != e.Seq || int64(e.Value) != int64(e.Seq) {
			t.Fatalf("event %d fields scrambled: %+v", i, e)
		}
	}
}

// TestJournalNonPowerOfTwoDepth: depth is rounded up to a power of two
// (the ring mask requires it).
func TestJournalNonPowerOfTwoDepth(t *testing.T) {
	if got := NewJournal(100).Cap(); got != 128 {
		t.Fatalf("cap = %d, want 128", got)
	}
	if got := NewJournal(0).Cap(); got != 16 {
		t.Fatalf("cap = %d, want the 16-slot minimum", got)
	}
}

// TestJournalConcurrentSnapshot scrapes the ring while writers hammer it:
// no torn events (the seqlock skips mid-write slots) and every returned
// event is internally consistent. The -race run is the real assertion.
func TestJournalConcurrentSnapshot(t *testing.T) {
	j := NewJournal(64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					j.record(time.Duration(i), StageFault, uint64(i), int32(i), 0, int64(i))
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		for _, e := range j.Snapshot() {
			if uint64(e.Epoch) != uint64(e.Value) {
				t.Errorf("torn event: epoch %d value %d", e.Epoch, e.Value)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestMetricsNilSafety: every method of a nil *Metrics must be a no-op —
// that is the entire disable mechanism.
func TestMetricsNilSafety(t *testing.T) {
	var m *Metrics
	if m.Now() != 0 {
		t.Fatal("nil Now() != 0")
	}
	m.Trace(StageWrite, 1, 2, 0, 3) // must not panic
	if err := m.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	s := m.TakeSnapshot()
	if s.Counters == nil || len(s.Counters) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
}

// TestWritePrometheus sanity-checks the exposition text: HELP/TYPE pairs,
// cumulative histogram buckets with a +Inf terminator, and families from
// all four subsystems.
func TestWritePrometheus(t *testing.T) {
	m := New(func() time.Duration { return 42 * time.Millisecond })
	m.CheckpointsTotal.Add(3)
	m.FaultsCow.Inc()
	m.CowInUse.Set(5)
	m.FaultNs.Observe(1500)
	m.FaultNs.Observe(3000)
	m.DedupHits.Add(7)
	m.EpochsDrained.Add(2)
	m.Compactions.Inc()
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE aickpt_core_checkpoints_total counter",
		"aickpt_core_checkpoints_total 3",
		`aickpt_core_faults_total{type="cow"} 1`,
		"aickpt_core_cow_in_use 5",
		"# TYPE aickpt_core_fault_ns histogram",
		"aickpt_core_fault_ns_count 2",
		"aickpt_core_fault_ns_sum 4500",
		`aickpt_core_fault_ns_bucket{le="+Inf"} 2`,
		"aickpt_ckpt_dedup_hits_total 7",
		"aickpt_multilevel_epochs_drained_total 2",
		"aickpt_compact_compactions_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Buckets must be cumulative: the +Inf bucket equals _count.
	if strings.Count(text, "# HELP") != strings.Count(text, "# TYPE") {
		t.Error("HELP/TYPE pairing broken")
	}
}

// TestTakeSnapshotMatchesCounters: the snapshot must agree with the live
// values at the moment of the copy.
func TestTakeSnapshotMatchesCounters(t *testing.T) {
	m := New(func() time.Duration { return 0 })
	m.CommitPages.Add(11)
	m.RecordWriteNs.Observe(100)
	s := m.TakeSnapshot()
	if s.Counters["aickpt_core_commit_pages_total"] != 11 {
		t.Fatalf("snapshot counter = %d, want 11", s.Counters["aickpt_core_commit_pages_total"])
	}
	h := s.Histograms["aickpt_ckpt_record_write_ns"]
	if h.Count != 1 || h.Sum != 100 {
		t.Fatalf("snapshot histogram = %+v, want count 1 sum 100", h)
	}
}

// TestTierAndWorkerIndex pins the label-index clamping.
func TestTierAndWorkerIndex(t *testing.T) {
	if TierIndex(1) != 0 || TierIndex(0) != 0 {
		t.Fatal("TierIndex must map level 1 (and below) to 0")
	}
	if TierIndex(MaxTiers+5) != MaxTiers-1 {
		t.Fatal("TierIndex must clamp to MaxTiers-1")
	}
	if WorkerIndex(3) != 3 || WorkerIndex(MaxWorkers+1) != 1 || WorkerIndex(-1) != 1 {
		t.Fatal("WorkerIndex must fold ids into [0,MaxWorkers)")
	}
}
