package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func testMetrics() *Metrics {
	m := New(nil)
	m.Journal = NewJournal(64)
	m.Spans = NewSpanLog(64)
	return m
}

func TestHandlerRejectsNonGet(t *testing.T) {
	h := Handler(testMetrics(), nil, nil)
	for _, route := range []string{"/metrics", "/snapshot", "/trace", "/epochs"} {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			req := httptest.NewRequest(method, route, strings.NewReader("x"))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s = %d, want 405", method, route, rec.Code)
			}
			if allow := rec.Header().Get("Allow"); allow != http.MethodGet {
				t.Errorf("%s %s Allow = %q, want GET", method, route, allow)
			}
		}
	}
}

func TestHandlerUnknownRoute(t *testing.T) {
	h := Handler(testMetrics(), nil, nil)
	req := httptest.NewRequest(http.MethodGet, "/nope", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("GET /nope = %d, want 404", rec.Code)
	}
}

func TestHandlerEpochs(t *testing.T) {
	m := testMetrics()
	// Without a provider the endpoint serves an empty list, not null.
	rec := httptest.NewRecorder()
	Handler(m, nil, nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/epochs", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /epochs = %d", rec.Code)
	}
	if body := strings.TrimSpace(rec.Body.String()); body != "[]" {
		t.Fatalf("nil provider body = %q, want []", body)
	}

	provider := func() []EpochRecord {
		return BuildEpochRecords(
			[]Scorecard{{Epoch: 3, Waits: 1, Avoided: 3, HitRate: 0.75}},
			[]Span{{Kind: SpanCommit, Epoch: 3, Start: 0, End: time.Second}},
		)
	}
	rec = httptest.NewRecorder()
	Handler(m, provider, nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/epochs", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var records []EpochRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &records); err != nil {
		t.Fatalf("/epochs is not valid JSON: %v", err)
	}
	if len(records) != 1 || records[0].Epoch != 3 {
		t.Fatalf("records = %+v", records)
	}
	if records[0].Scorecard == nil || records[0].Scorecard.HitRate != 0.75 {
		t.Fatalf("scorecard lost in transit: %+v", records[0].Scorecard)
	}
	if records[0].Spans == nil || records[0].Spans.Kind != "epoch" {
		t.Fatalf("span tree lost in transit: %+v", records[0].Spans)
	}
}

// TestHandlerSnapshotRace scrapes every endpoint while the journal, span
// log and counters are being written concurrently; under -race this
// proves a debug scrape can never trip over the hot path.
func TestHandlerSnapshotRace(t *testing.T) {
	m := testMetrics()
	epochs := func() []EpochRecord {
		return BuildEpochRecords(nil, m.Spans.Snapshot())
	}
	h := Handler(m, epochs, nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m.FaultsCow.Inc()
			m.CommitWriteNs.Observe(int64(i))
			m.Trace(StageWrite, uint64(i), int32(i), 0, 0)
			m.Span(SpanCommit, uint64(i), 0, time.Duration(i), time.Duration(i+1))
		}
	}()
	for i := 0; i < 50; i++ {
		for _, route := range []string{"/metrics", "/snapshot", "/trace", "/epochs"} {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, route, nil))
			if rec.Code != http.StatusOK {
				t.Fatalf("GET %s = %d during concurrent writes", route, rec.Code)
			}
		}
	}
	close(stop)
	wg.Wait()
}
