// Package obs is the runtime's observability core: allocation-free
// metrics (atomic counters, gauges and fixed-bucket exponential
// histograms, padded to avoid false sharing) plus a bounded ring-buffer
// trace journal of pipeline events. It is designed so every hot path of
// the checkpointing runtime — the fault handler, the committer workers,
// the repository write path, the tier drainer — can record what it does
// with a handful of uncontended atomic operations and zero heap
// allocations, keeping the paper's low-overhead argument intact while
// making contention, drain lag and tier failures observable on a live
// run.
//
// Time is injected: a Metrics carries a now-function so the same
// instrumentation works under the real clock (time.Since) and under the
// deterministic virtual-time kernel (internal/sim), and simulated runs
// produce traces in virtual time.
//
// Everything is nil-safe at the Metrics level: instrumentation sites
// guard on the *Metrics pointer, so a Manager or Repository built
// without observability pays a single predictable branch.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// cacheLinePad pads hot atomics to a cache line so independent
	// counters bumped by different workers never false-share.
	cacheLinePad = 64

	// HistBuckets is the number of exponential histogram buckets: bucket
	// i counts values v with bits.Len64(v) == i, i.e. v in
	// [2^(i-1), 2^i), with bucket 0 holding exact zeros. 40 buckets
	// cover 1ns..~9min latencies and 1B..~256GB sizes.
	HistBuckets = 40

	// MaxWorkers bounds the per-worker commit counters (worker w maps to
	// w % MaxWorkers).
	MaxWorkers = 16

	// MaxTiers bounds the per-tier drain gauges and promotion
	// histograms (lower tier level l maps to index l-1, clamped).
	MaxTiers = 8
)

// Counter is a monotonically increasing atomic counter padded to a cache
// line.
type Counter struct {
	v atomic.Uint64
	_ [cacheLinePad - 8]byte
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depths, slots in use)
// padded to a cache line.
type Gauge struct {
	v atomic.Int64
	_ [cacheLinePad - 8]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket base-2 exponential histogram. Observe is
// lock-free and allocation-free: one bits.Len64, three atomic adds and a
// bounded compare-and-swap loop for the max. The bucket layout is fixed
// (see HistBuckets), so scrapes read a consistent-enough snapshot
// without any coordination with writers.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [HistBuckets]atomic.Uint64
}

// Observe records v (clamped at zero).
//
//aickpt:hotpath
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	i := bits.Len64(u)
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(u)
	for {
		cur := h.max.Load()
		if u <= cur || h.max.CompareAndSwap(cur, u) {
			return
		}
	}
}

// ObserveSince records the elapsed time from start to now (both as
// returned by the Metrics' time source), in nanoseconds.
func (h *Histogram) ObserveSince(start, now time.Duration) {
	h.Observe(int64(now - start))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot copies the histogram into an immutable value.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{Le: bucketBound(i), Count: n})
		}
	}
	return s
}

// bucketBound returns the exclusive upper bound of bucket i (2^i; bucket
// 0 holds exact zeros, so its bound is 1).
func bucketBound(i int) uint64 {
	if i >= 63 {
		return 1 << 62 // clamp: the top bucket is effectively +Inf
	}
	return 1 << uint(i)
}

// HistogramBucket is one populated histogram bucket: Count observations
// with value < Le (and >= Le/2, except the zero bucket Le=1).
type HistogramBucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is an immutable copy of a Histogram, JSON-friendly
// for the /snapshot endpoint and BENCH records.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Max     uint64            `json:"max"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates quantile q (in [0,1]) by linear interpolation
// within the containing bucket. The estimate is bounded by the bucket
// resolution (a factor of 2).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum float64
	for _, b := range s.Buckets {
		next := cum + float64(b.Count)
		if next >= target {
			upper := float64(b.Le)
			lower := upper / 2
			if b.Le <= 1 {
				lower = 0
			}
			frac := 0.0
			if b.Count > 0 {
				frac = (target - cum) / float64(b.Count)
			}
			v := lower + (upper-lower)*frac
			if m := float64(s.Max); m > 0 && v > m {
				v = m
			}
			return v
		}
		cum = next
	}
	return float64(s.Max)
}

// Metrics is the runtime's metric set, grouped by subsystem. All fields
// are safe for concurrent use; the struct is meant to be created once
// per Runtime and shared by every instrumented layer. A nil *Metrics is
// the disabled state — instrumentation sites must guard on it.
type Metrics struct {
	now     func() time.Duration
	Journal *Journal // optional bounded trace journal (nil: tracing off)
	Spans   *SpanLog // optional lifecycle span log (nil: spans off)

	// Core page-manager metrics (internal/core).
	CheckpointsTotal    Counter             // Checkpoint() calls
	CheckpointBlockedNs Histogram           // app time blocked inside Checkpoint()
	FaultNs             Histogram           // fault-handler service latency
	FaultWaitNs         Histogram           // time blocked waiting on in-flight pages
	FaultsCow           Counter             // first writes absorbed by COW
	FaultsWait          Counter             // first writes that blocked
	FaultsAvoided       Counter             // first writes after the page committed
	FaultsAfter         Counter             // first writes after the whole checkpoint
	CowInUse            Gauge               // COW slots currently held (queue depth)
	CommitPages         Counter             // pages committed to the backend
	CommitBytes         Counter             // bytes committed to the backend
	CommitWriteNs       Histogram           // per-page backend write latency
	SelectorBuildNs     Histogram           // adaptive flush-order build time
	EpochsSealed        Counter             // epochs sealed by EndEpoch
	SealNs              Histogram           // EndEpoch latency
	WorkerPages         [MaxWorkers]Counter // per-worker committed pages

	// Selector prediction scorecard, observed once per sealed epoch at
	// rotation (cold relative to the per-page path).
	SelectorHitRatePm  Histogram // per-epoch flushed-before-faulted hit rate, per mille
	SelectorRankCorrPm Histogram // per-epoch footrule rank correlation, per mille (negative clamps to 0)
	WaitedQueuePeak    Histogram // per-epoch peak waited-queue depth

	// Repository metrics (internal/ckpt).
	RecordWriteNs    Histogram // WritePage latency (incl. hash+encode+stage), sampled 1-in-8
	RecordRawBytes   Counter   // raw page bytes entering the repository
	RecordCodedBytes Counter   // payload bytes after codec encoding
	DedupHits        Counter   // page writes elided by content-addressed dedup
	DedupMisses      Counter   // page writes stored physically
	StagingDepth     Gauge     // records staged ahead of the segment writer
	EpochsSealedRepo Counter   // repository epochs sealed
	ManifestWriteNs  Histogram // manifest encode+write latency at seal

	// Multi-level hierarchy metrics (internal/multilevel).
	DrainRetries    Counter             // failed Store attempts that will be retried
	DrainFailures   Counter             // epochs that exhausted a tier's retry budget
	EpochsDrained   Counter             // epochs fully retired from the drain pipeline
	RestoreEpochs   Counter             // epochs read back during tier-aware restore
	RestorePages    Counter             // pages read back during tier-aware restore
	DrainQueueDepth [MaxTiers]Gauge     // per-lower-tier drain queue depth
	PromoteNs       [MaxTiers]Histogram // per-lower-tier promotion latency

	// Scrub / self-heal metrics (internal/multilevel scrub passes).
	ScrubSegments    Counter // chain entries verified by scrub passes
	ScrubCorrupt     Counter // damaged entries found (manifest or segment)
	ScrubRepaired    Counter // damaged entries rebuilt from a redundant tier
	ScrubUnrepaired  Counter // damaged entries no tier could rebuild
	DrainRequeues    Counter // gave-up tier copies re-enqueued by scrub
	FailedTierCopies Gauge   // tier copies currently past their retry budget

	// Compaction metrics (internal/compact).
	FoldNs         Histogram // duration of compaction passes that folded
	Compactions    Counter   // passes that committed a new base
	EpochsFolded   Counter   // epochs absorbed into bases
	ReclaimedBytes Counter   // garbage bytes collected
	CompactSkips   Counter   // passes that decided not to fold
}

// New returns a Metrics whose time source is now (e.g. env.Now of the
// runtime's sim.Env). A nil now falls back to a process-start-relative
// real clock.
func New(now func() time.Duration) *Metrics {
	if now == nil {
		start := time.Now()                                     //aickpt:walltime documented real-clock fallback for nil now
		now = func() time.Duration { return time.Since(start) } //aickpt:walltime
	}
	return &Metrics{now: now}
}

// Now returns the current time from the Metrics' time source (virtual
// under a simulation kernel). Safe on a nil receiver (returns 0).
func (m *Metrics) Now() time.Duration {
	if m == nil {
		return 0
	}
	return m.now()
}

// Trace appends one event to the journal, stamped with the Metrics' time
// source. It is a no-op on a nil receiver or without a journal, so call
// sites need no extra guard beyond the one they already hold for
// counters.
//
//aickpt:hotpath
func (m *Metrics) Trace(stage Stage, epoch uint64, page int32, tier int8, value int64) {
	if m == nil || m.Journal == nil {
		return
	}
	m.Journal.record(m.now(), stage, epoch, page, tier, value)
}

// TraceAt is Trace with a caller-supplied timestamp: hot paths that just
// read the clock for a latency observation pass that reading instead of
// paying a second clock read.
//
//aickpt:hotpath
func (m *Metrics) TraceAt(at time.Duration, stage Stage, epoch uint64, page int32, tier int8, value int64) {
	if m == nil || m.Journal == nil {
		return
	}
	m.Journal.record(at, stage, epoch, page, tier, value)
}

// TierIndex clamps a 1-based lower-tier level into the fixed per-tier
// metric arrays.
func TierIndex(level int) int {
	i := level - 1
	if i < 0 {
		i = 0
	}
	if i >= MaxTiers {
		i = MaxTiers - 1
	}
	return i
}

// WorkerIndex clamps a worker id into the fixed per-worker counters.
func WorkerIndex(w int) int {
	if w < 0 {
		w = -w
	}
	return w % MaxWorkers
}
