package obs

import (
	"fmt"
	"sort"
)

// HeatBuckets is the fixed width of the per-epoch fault/COW heatmaps:
// the page space is divided into this many equal-size regions and each
// fault bumps one bucket, so the heatmap costs one shift and one add on
// the fault path and no allocation anywhere.
const HeatBuckets = 32

// Scorecard is the per-epoch selector prediction scorecard: how well
// the flush order predicted by the selector (counting-sort rank) agreed
// with the actual fault arrival order of the application. It is
// accumulated by the page manager at commit/fault sites and assembled
// into this wire form on the cold path (Runtime accessors, /epochs).
type Scorecard struct {
	Epoch uint64 `json:"epoch"`
	// PagesFlushed is the number of scheduled pages the committer
	// flushed this epoch (the length of the predicted order).
	PagesFlushed int `json:"pages_flushed"`
	// FaultArrivals is the number of first-write faults the application
	// took this epoch (the length of the actual order).
	FaultArrivals int `json:"fault_arrivals"`
	// Fault classification counts (the paper's WAIT/COW/AVOIDED/AFTER).
	Waits   int `json:"waits"`
	Cows    int `json:"cows"`
	Avoided int `json:"avoided"`
	After   int `json:"after"`
	// MaxWaitedDepth is the peak depth of the waited-page queue: how
	// many faulting application threads were stacked up behind in-flight
	// pages at the worst moment of the epoch.
	MaxWaitedDepth int `json:"max_waited_depth"`
	// RankPairs counts pages both flushed and faulted this epoch — the
	// pairs entering the footrule sum.
	RankPairs int `json:"rank_pairs"`
	// FootruleSum is sum(|flushRank - faultIndex|) over RankPairs.
	FootruleSum int64 `json:"footrule_sum"`
	// HitRate is avoided/(waits+cows+avoided): of the pages the
	// application touched while a checkpoint was live, the fraction the
	// committer had already flushed (vs absorbed by COW or blocked).
	HitRate float64 `json:"hit_rate"`
	// RankCorrelation is the footrule rank correlation between
	// predicted flush order and actual fault order (see
	// ScoreRankCorrelation): 1 = flushed exactly in fault order,
	// ~0 = no better than random, negative = anti-correlated.
	RankCorrelation float64 `json:"rank_correlation"`
	// FaultHeat / CowHeat split faults (all / COW-absorbed only) over
	// HeatBuckets equal regions of the page space.
	FaultHeat []uint32 `json:"fault_heat,omitempty"`
	CowHeat   []uint32 `json:"cow_heat,omitempty"`
}

// ScoreHitRate returns the flushed-before-faulted hit rate
// avoided/(waits+cows+avoided), or 0 when the epoch saw no overlapping
// access (no evidence either way). AFTER faults are excluded: they
// arrive once the checkpoint is already over, so no flush order could
// win or lose them.
func ScoreHitRate(waits, cows, avoided int) float64 {
	n := waits + cows + avoided
	if n == 0 {
		return 0
	}
	return float64(avoided) / float64(n)
}

// ScoreRankCorrelation converts an accumulated Spearman-footrule sum
// into a correlation using the Diaconis–Graham normalization
// 1 - 3F/(pairs*(scale-1)), where scale is the longer of the two rank
// sequences: 1 for identical orders, ~0 for independent random orders,
// down to -0.5 for exactly reversed orders (clamped to [-1, 1]). When
// the two sequences have different lengths (pages flushed vs faults
// taken) the ranks live on different scales, so the value is an
// approximation — still monotone in agreement, which is what the
// scorecard needs.
func ScoreRankCorrelation(footruleSum int64, pairs, flushed, arrivals int) float64 {
	scale := flushed
	if arrivals > scale {
		scale = arrivals
	}
	if pairs == 0 || scale <= 1 {
		return 0
	}
	c := 1 - 3*float64(footruleSum)/(float64(pairs)*float64(scale-1))
	if c < -1 {
		c = -1
	}
	if c > 1 {
		c = 1
	}
	return c
}

// SpanNode is one node of a per-epoch span tree, JSON-friendly for the
// /epochs endpoint: the root spans the whole epoch lifecycle, the
// commit node owns the seal as its final child, and drain/promote/
// compact/restore stages hang off the root in time order.
type SpanNode struct {
	Kind     string     `json:"kind"`
	Tier     int8       `json:"tier,omitempty"`
	StartNs  int64      `json:"start_ns"`
	EndNs    int64      `json:"end_ns"`
	DurNs    int64      `json:"dur_ns"`
	Children []SpanNode `json:"children,omitempty"`
}

// CriticalStage is one entry of an epoch's critical-path breakdown.
type CriticalStage struct {
	// Stage is the stage name: "flush" (commit excluding the seal),
	// "seal", "drain-wait", "promote", "compact" or "restore".
	Stage string `json:"stage"`
	Tier  int8   `json:"tier,omitempty"`
	DurNs int64  `json:"dur_ns"`
	// Share is DurNs over the epoch's total lifecycle span.
	Share float64 `json:"share"`
}

// EpochRecord is the flight recorder's per-epoch view: the selector
// prediction scorecard plus the lifecycle span tree with its
// critical-path breakdown (which stage bounded the epoch's latency and
// by how much).
type EpochRecord struct {
	Epoch     uint64     `json:"epoch"`
	Scorecard *Scorecard `json:"scorecard,omitempty"`
	Spans     *SpanNode  `json:"spans,omitempty"`
	// TotalNs is the wall span of the epoch's lifecycle, first span
	// start to last span end.
	TotalNs int64 `json:"total_ns"`
	// Critical lists the stages in decreasing duration; Bounding names
	// the first (the stage that bounded epoch latency).
	Critical []CriticalStage `json:"critical_path,omitempty"`
	Bounding string          `json:"bounding,omitempty"`
}

// stageName renders a critical-path stage label like "promote[2]".
func stageName(stage string, tier int8) string {
	if tier == 0 {
		return stage
	}
	return fmt.Sprintf("%s[%d]", stage, tier)
}

// BuildEpochRecords merges per-epoch scorecards with a span snapshot
// into one record per epoch, sorted by epoch. Either input may be
// empty: scorecard-only epochs carry no tree, span-only epochs (e.g. a
// compaction attributed to an epoch that already left the stats window)
// carry no scorecard. This is a cold path — it allocates freely.
func BuildEpochRecords(cards []Scorecard, spans []Span) []EpochRecord {
	byEpoch := map[uint64]*EpochRecord{}
	get := func(epoch uint64) *EpochRecord {
		r := byEpoch[epoch]
		if r == nil {
			r = &EpochRecord{Epoch: epoch}
			byEpoch[epoch] = r
		}
		return r
	}
	for i := range cards {
		c := cards[i]
		get(c.Epoch).Scorecard = &c
	}
	grouped := map[uint64][]Span{}
	for _, s := range spans {
		grouped[s.Epoch] = append(grouped[s.Epoch], s)
	}
	for epoch, ss := range grouped {
		r := get(epoch)
		r.Spans, r.TotalNs, r.Critical = buildSpanTree(ss)
		if len(r.Critical) > 0 {
			r.Bounding = stageName(r.Critical[0].Stage, r.Critical[0].Tier)
		}
	}
	out := make([]EpochRecord, 0, len(byEpoch))
	for _, r := range byEpoch {
		out = append(out, *r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Epoch < out[b].Epoch })
	return out
}

// buildSpanTree assembles one epoch's spans into a tree rooted at the
// full lifecycle interval, plus the critical-path breakdown.
func buildSpanTree(ss []Span) (*SpanNode, int64, []CriticalStage) {
	sort.Slice(ss, func(a, b int) bool {
		if ss[a].Start != ss[b].Start {
			return ss[a].Start < ss[b].Start
		}
		return ss[a].Seq < ss[b].Seq
	})
	root := &SpanNode{Kind: "epoch", StartNs: int64(ss[0].Start)}
	var sealDur int64
	var commit *SpanNode
	for _, s := range ss {
		if e := int64(s.End); e > root.EndNs {
			root.EndNs = e
		}
		n := SpanNode{
			Kind: s.Kind.String(), Tier: s.Tier,
			StartNs: int64(s.Start), EndNs: int64(s.End), DurNs: int64(s.Dur()),
		}
		switch s.Kind {
		case SpanCommit:
			root.Children = append(root.Children, n)
			commit = &root.Children[len(root.Children)-1]
		case SpanSeal:
			sealDur += n.DurNs
			if commit != nil {
				commit.Children = append(commit.Children, n)
			} else {
				root.Children = append(root.Children, n)
			}
		default:
			root.Children = append(root.Children, n)
		}
	}
	root.DurNs = root.EndNs - root.StartNs
	total := root.DurNs

	var crit []CriticalStage
	addStage := func(stage string, tier int8, dur int64) {
		share := 0.0
		if total > 0 {
			share = float64(dur) / float64(total)
		}
		crit = append(crit, CriticalStage{Stage: stage, Tier: tier, DurNs: dur, Share: share})
	}
	for _, s := range ss {
		switch s.Kind {
		case SpanCommit:
			// The commit span covers the whole local phase including the
			// seal; report the flush work exclusive of it.
			d := int64(s.Dur()) - sealDur
			if d < 0 {
				d = 0
			}
			addStage("flush", s.Tier, d)
		case SpanSeal:
			addStage("seal", s.Tier, int64(s.Dur()))
		default:
			addStage(s.Kind.String(), s.Tier, int64(s.Dur()))
		}
	}
	sort.SliceStable(crit, func(a, b int) bool { return crit[a].DurNs > crit[b].DurNs })
	return root, total, crit
}
