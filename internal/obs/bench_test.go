package obs

import (
	"sync/atomic"
	"testing"
	"time"
)

// The per-event instrumentation cost is the ground truth behind the <2%
// end-to-end overhead bar: a committed page triggers on the order of ten
// of these operations against a per-page commit cost in the microseconds
// (hash + DEFLATE + framing), so each must stay in the nanoseconds.

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkJournalRecord(b *testing.B) {
	j := NewJournal(DefaultJournalDepth)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.record(time.Duration(i), StageWrite, uint64(i), int32(i), 0, int64(i))
	}
}

// BenchmarkInstrumentedPageEvents measures the full per-page metric load
// of the commit path: the counters, latency observations and trace events
// one committed page generates across core and repository.
func BenchmarkInstrumentedPageEvents(b *testing.B) {
	m := New(func() time.Duration { return 0 })
	m.Journal = NewJournal(DefaultJournalDepth)
	b.ReportAllocs()
	b.ResetTimer()
	var tick atomic.Uint64
	for i := 0; i < b.N; i++ {
		// Core committer: exact per page.
		wstart := m.Now()
		wend := m.Now()
		d := int64(wend - wstart)
		m.CommitWriteNs.Observe(d)
		m.CommitPages.Inc()
		m.CommitBytes.Add(4096)
		m.WorkerPages[0].Inc()
		m.TraceAt(wend, StageWrite, uint64(i), int32(i), 0, d)
		// Repository: counters exact, timer+trace sampled 1-in-8 as in
		// ckpt.Repository.WritePage.
		sampled := tick.Add(1)%8 == 0
		var rstart time.Duration
		if sampled {
			rstart = m.Now()
		}
		m.DedupMisses.Inc()
		m.RecordRawBytes.Add(4096)
		m.RecordCodedBytes.Add(2048)
		if sampled {
			rend := m.Now()
			m.RecordWriteNs.Observe(int64(rend - rstart))
			m.TraceAt(rend, StageCompress, uint64(i), int32(i), 0, 2048)
		}
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	m := New(func() time.Duration { return 0 })
	m.CommitPages.Add(1 << 20)
	for i := 0; i < 1000; i++ {
		m.CommitWriteNs.Observe(int64(i) * 100)
		m.FaultNs.Observe(int64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.WritePrometheus(discard{})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
