package sim

import "sync"

// WaitGroup is a counting join primitive built purely on Env primitives, so
// the same code works in real and virtual time.
type WaitGroup struct {
	mu   sync.Locker
	cond Cond
	n    int
}

// NewWaitGroup returns an empty wait group bound to env.
func NewWaitGroup(env Env) *WaitGroup {
	mu := env.NewMutex()
	return &WaitGroup{mu: mu, cond: env.NewCond(mu)}
}

// Add adds delta (which may be negative) to the counter. It panics if the
// counter goes negative.
func (w *WaitGroup) Add(delta int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.n += delta
	if w.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.n == 0 {
		w.cond.Broadcast()
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks the calling process until the counter reaches zero.
func (w *WaitGroup) Wait() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.n > 0 {
		w.cond.Wait()
	}
}
