package sim

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kernel is a deterministic discrete-event scheduler implementing Env in
// virtual time. Processes are goroutines, but the kernel enforces strict
// handoff: exactly one process executes at any instant, and runnable
// processes are dispatched in (time, sequence) order, so a simulation is a
// pure function of its inputs.
//
// Typical use:
//
//	k := sim.NewKernel()
//	k.Go("driver", func() { ... k.Sleep(...) ... })
//	if err := k.Run(); err != nil { ... }
//
// Env methods other than Go and Now must only be called from inside a
// process started with Go (they suspend the caller).
type Kernel struct {
	now     time.Duration
	seq     uint64
	queue   eventHeap
	current *proc
	yield   chan struct{}
	live    map[*proc]struct{}
	failure *procPanic

	// maxEvents guards against runaway simulations; 0 means no limit.
	maxEvents  uint64
	dispatched uint64
}

type procPanic struct {
	proc  string
	value interface{}
}

type procState int

const (
	stateNew procState = iota
	stateReady
	stateRunning
	stateBlocked // suspended with no pending event (mutex/cond)
	stateDone
)

type proc struct {
	name   string
	resume chan struct{}
	state  procState
}

type event struct {
	at   time.Duration
	seq  uint64
	proc *proc
}

// NewKernel returns an empty kernel at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{
		yield: make(chan struct{}),
		live:  make(map[*proc]struct{}),
	}
}

// SetMaxEvents bounds the number of process dispatches Run will perform; it
// is a safety valve for tests. 0 (the default) means unbounded.
func (k *Kernel) SetMaxEvents(n uint64) { k.maxEvents = n }

// Now implements Env. It is safe to call from setup code and from processes.
func (k *Kernel) Now() time.Duration { return k.now }

// Go implements Env. It may be called from setup code (before Run) or from a
// running process; the new process becomes runnable at the current virtual
// time.
func (k *Kernel) Go(name string, fn func()) {
	p := &proc{name: name, resume: make(chan struct{}), state: stateReady}
	k.live[p] = struct{}{}
	k.schedule(p, k.now)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if k.failure == nil {
					k.failure = &procPanic{proc: p.name, value: r}
				}
			}
			p.state = stateDone
			delete(k.live, p)
			k.yield <- struct{}{}
		}()
		fn()
	}()
}

// Sleep implements Env. Sleep(0) yields to other processes runnable now.
func (k *Kernel) Sleep(d time.Duration) {
	p := k.mustCurrent("Sleep")
	if d < 0 {
		d = 0
	}
	k.schedule(p, k.now+d)
	p.state = stateReady
	k.park(p)
}

// NewMutex implements Env.
func (k *Kernel) NewMutex() sync.Locker { return &vmutex{k: k} }

// NewCond implements Env.
func (k *Kernel) NewCond(l sync.Locker) Cond {
	m, ok := l.(*vmutex)
	if !ok {
		panic("sim: Kernel.NewCond requires a Locker from Kernel.NewMutex")
	}
	return &vcond{k: k, m: m}
}

// Run dispatches events until no process is runnable. It returns nil when
// every process has finished, and a *DeadlockError when processes remain
// blocked with no pending events. Panics inside processes are re-raised
// here with the process name attached.
func (k *Kernel) Run() error {
	for len(k.queue) > 0 {
		if k.maxEvents > 0 && k.dispatched >= k.maxEvents {
			return fmt.Errorf("sim: event budget of %d exhausted at t=%v", k.maxEvents, k.now)
		}
		ev := k.pop()
		if ev.proc.state == stateDone {
			continue
		}
		k.dispatched++
		if ev.at < k.now {
			panic("sim: time went backwards")
		}
		k.now = ev.at
		k.current = ev.proc
		ev.proc.state = stateRunning
		ev.proc.resume <- struct{}{}
		<-k.yield
		k.current = nil
		if k.failure != nil {
			f := k.failure
			panic(fmt.Sprintf("sim: process %q panicked: %v", f.proc, f.value))
		}
	}
	if len(k.live) > 0 {
		names := make([]string, 0, len(k.live))
		for p := range k.live {
			names = append(names, p.name)
		}
		sort.Strings(names)
		return &DeadlockError{At: k.now, Blocked: names}
	}
	return nil
}

// DeadlockError reports processes left suspended with no runnable events.
type DeadlockError struct {
	At      time.Duration
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v: %d blocked process(es): %v", e.At, len(e.Blocked), e.Blocked)
}

// park suspends the calling process and hands control back to the kernel
// loop; it returns when the kernel dispatches the process again.
func (k *Kernel) park(p *proc) {
	k.yield <- struct{}{}
	<-p.resume
	p.state = stateRunning
}

// block suspends the current process with no pending event; some other
// process must call unblock to make it runnable again.
func (k *Kernel) block(p *proc) {
	p.state = stateBlocked
	k.park(p)
}

// unblock makes a blocked process runnable at the current virtual time.
func (k *Kernel) unblock(p *proc) {
	if p.state != stateBlocked {
		panic(fmt.Sprintf("sim: unblock of process %q in state %d", p.name, p.state))
	}
	p.state = stateReady
	k.schedule(p, k.now)
}

func (k *Kernel) mustCurrent(op string) *proc {
	if k.current == nil {
		panic(fmt.Sprintf("sim: %s called outside a kernel process", op))
	}
	return k.current
}

func (k *Kernel) schedule(p *proc, at time.Duration) {
	k.seq++
	k.push(&event{at: at, seq: k.seq, proc: p})
}

// eventHeap is a binary min-heap ordered by (at, seq).

type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (k *Kernel) push(ev *event) {
	h := append(k.queue, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.less(parent, i) {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	k.queue = h
}

func (k *Kernel) pop() *event {
	h := k.queue
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	k.queue = h
	return top
}

// vmutex is a FIFO mutex in virtual time with direct ownership handoff.
type vmutex struct {
	k     *Kernel
	owner *proc
	queue []*proc
}

// setupProc stands in for the caller when Env primitives are used from
// outside any kernel process (i.e. during simulation setup, before Run).
// Setup code runs alone, so it may take an uncontended lock but can never
// block.
var setupProc = &proc{name: "<setup>"}

// Lock implements sync.Locker.
func (m *vmutex) Lock() {
	p := m.k.current
	if p == nil {
		if m.owner == nil {
			m.owner = setupProc
			return
		}
		panic("sim: Mutex.Lock would block outside a kernel process")
	}
	if m.owner == nil {
		m.owner = p
		return
	}
	if m.owner == p {
		panic(fmt.Sprintf("sim: process %q recursively locking mutex", p.name))
	}
	m.queue = append(m.queue, p)
	m.k.block(p)
	// Ownership was handed to us by Unlock before we were resumed.
	if m.owner != p {
		panic("sim: mutex handoff corrupted")
	}
}

// Unlock implements sync.Locker.
func (m *vmutex) Unlock() {
	if m.owner == nil {
		panic("sim: unlock of unlocked mutex")
	}
	if len(m.queue) == 0 {
		m.owner = nil
		return
	}
	next := m.queue[0]
	copy(m.queue, m.queue[1:])
	m.queue = m.queue[:len(m.queue)-1]
	m.owner = next
	m.k.unblock(next)
}

// vcond is a FIFO condition variable in virtual time.
type vcond struct {
	k       *Kernel
	m       *vmutex
	waiters []*proc
}

// Wait implements Cond.
func (c *vcond) Wait() {
	p := c.k.mustCurrent("Cond.Wait")
	if c.m.owner != p {
		panic(fmt.Sprintf("sim: process %q waiting on cond without holding its mutex", p.name))
	}
	c.waiters = append(c.waiters, p)
	c.m.Unlock()
	c.k.block(p)
	c.m.Lock()
}

// Signal implements Cond. Unlike sync.Cond the caller conventionally holds
// the mutex, but the kernel does not require it.
func (c *vcond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	c.k.unblock(p)
}

// Broadcast implements Cond.
func (c *vcond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, p := range ws {
		c.k.unblock(p)
	}
}

var _ Env = (*Kernel)(nil)
