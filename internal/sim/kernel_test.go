package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestKernelSingleProcessAdvancesTime(t *testing.T) {
	k := NewKernel()
	var at []time.Duration
	k.Go("p", func() {
		at = append(at, k.Now())
		k.Sleep(5 * time.Millisecond)
		at = append(at, k.Now())
		k.Sleep(0)
		at = append(at, k.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{0, 5 * time.Millisecond, 5 * time.Millisecond}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("timestamp %d = %v, want %v", i, at[i], want[i])
		}
	}
}

func TestKernelInterleavingIsDeterministic(t *testing.T) {
	run := func() string {
		k := NewKernel()
		var sb strings.Builder
		for i := 0; i < 4; i++ {
			i := i
			k.Go(fmt.Sprintf("p%d", i), func() {
				for j := 0; j < 3; j++ {
					fmt.Fprintf(&sb, "p%d@%v ", i, k.Now())
					k.Sleep(time.Duration(i+1) * time.Millisecond)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}

func TestKernelSameTimeFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Go(fmt.Sprintf("p%d", i), func() {
			order = append(order, i)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("dispatch order %v, want ascending", order)
		}
	}
}

func TestKernelMutexExclusionAndFIFO(t *testing.T) {
	k := NewKernel()
	mu := k.NewMutex()
	inside := 0
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Go(name, func() {
			mu.Lock()
			inside++
			if inside != 1 {
				t.Errorf("mutual exclusion violated")
			}
			order = append(order, name)
			k.Sleep(time.Millisecond)
			inside--
			mu.Unlock()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "abc" {
		t.Errorf("lock order = %q, want abc (FIFO)", got)
	}
}

func TestKernelCondSignalWakesInOrder(t *testing.T) {
	k := NewKernel()
	mu := k.NewMutex()
	cond := k.NewCond(mu)
	ready := 0
	var woke []string
	for _, name := range []string{"w1", "w2"} {
		name := name
		k.Go(name, func() {
			mu.Lock()
			for ready == 0 {
				cond.Wait()
			}
			ready--
			woke = append(woke, name)
			mu.Unlock()
		})
	}
	k.Go("signaler", func() {
		k.Sleep(time.Millisecond)
		mu.Lock()
		ready++
		cond.Signal()
		mu.Unlock()
		k.Sleep(time.Millisecond)
		mu.Lock()
		ready++
		cond.Signal()
		mu.Unlock()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(woke, "") != "w1w2" {
		t.Errorf("wake order = %v", woke)
	}
}

func TestKernelBroadcast(t *testing.T) {
	k := NewKernel()
	mu := k.NewMutex()
	cond := k.NewCond(mu)
	released := false
	done := 0
	for i := 0; i < 5; i++ {
		k.Go(fmt.Sprintf("w%d", i), func() {
			mu.Lock()
			for !released {
				cond.Wait()
			}
			done++
			mu.Unlock()
		})
	}
	k.Go("b", func() {
		k.Sleep(time.Millisecond)
		mu.Lock()
		released = true
		cond.Broadcast()
		mu.Unlock()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 5 {
		t.Errorf("done = %d, want 5", done)
	}
}

func TestKernelDeadlockDetection(t *testing.T) {
	k := NewKernel()
	mu := k.NewMutex()
	cond := k.NewCond(mu)
	k.Go("stuck", func() {
		mu.Lock()
		cond.Wait() // no one will ever signal
		mu.Unlock()
	})
	err := k.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0] != "stuck" {
		t.Errorf("blocked = %v", dl.Blocked)
	}
}

func TestKernelPanicPropagation(t *testing.T) {
	k := NewKernel()
	k.Go("bad", func() { panic("boom") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected Run to re-panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "bad") || !strings.Contains(msg, "boom") {
			t.Errorf("panic message %q lacks context", msg)
		}
	}()
	_ = k.Run()
}

func TestKernelNestedSpawn(t *testing.T) {
	k := NewKernel()
	var got []string
	k.Go("parent", func() {
		k.Sleep(time.Millisecond)
		k.Go("child", func() {
			got = append(got, fmt.Sprintf("child@%v", k.Now()))
		})
		k.Sleep(time.Millisecond)
		got = append(got, fmt.Sprintf("parent@%v", k.Now()))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"child@1ms", "parent@2ms"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestKernelEventBudget(t *testing.T) {
	k := NewKernel()
	k.SetMaxEvents(10)
	k.Go("spin", func() {
		for {
			k.Sleep(time.Millisecond)
		}
	})
	if err := k.Run(); err == nil {
		t.Fatal("expected event-budget error")
	}
}

func TestKernelSleepOutsideProcessPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Sleep(time.Second)
}

// Property: for arbitrary sleep schedules, processes observe non-decreasing
// time, and total virtual elapsed equals the max of each process's sum.
func TestKernelTimeMonotonicQuick(t *testing.T) {
	f := func(delays [][]uint8) bool {
		if len(delays) > 6 {
			delays = delays[:6]
		}
		k := NewKernel()
		ok := true
		var maxSum time.Duration
		for i, ds := range delays {
			ds := ds
			if len(ds) > 20 {
				ds = ds[:20]
			}
			var sum time.Duration
			for _, d := range ds {
				sum += time.Duration(d) * time.Microsecond
			}
			if sum > maxSum {
				maxSum = sum
			}
			k.Go(fmt.Sprintf("p%d", i), func() {
				prev := k.Now()
				for _, d := range ds {
					k.Sleep(time.Duration(d) * time.Microsecond)
					now := k.Now()
					if now < prev {
						ok = false
					}
					prev = now
				}
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		return ok && k.Now() == maxSum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
