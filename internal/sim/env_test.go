package sim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRealEnvBasics(t *testing.T) {
	e := NewRealEnv()
	start := e.Now()
	e.Sleep(2 * time.Millisecond)
	if e.Now()-start < time.Millisecond {
		t.Error("RealEnv.Sleep returned too early")
	}
	e.Sleep(-1) // must not block or panic

	var ran atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	e.Go("worker", func() {
		ran.Store(true)
		wg.Done()
	})
	wg.Wait()
	if !ran.Load() {
		t.Error("Go did not run the function")
	}
}

func TestRealEnvCond(t *testing.T) {
	e := NewRealEnv()
	mu := e.NewMutex()
	cond := e.NewCond(mu)
	released := false
	done := make(chan struct{})
	e.Go("waiter", func() {
		mu.Lock()
		for !released {
			cond.Wait()
		}
		mu.Unlock()
		close(done)
	})
	time.Sleep(time.Millisecond)
	mu.Lock()
	released = true
	cond.Broadcast()
	mu.Unlock()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("cond wait never released")
	}
}

// The WaitGroup must behave identically under both environments.
func TestWaitGroupVirtual(t *testing.T) {
	k := NewKernel()
	wg := NewWaitGroup(k)
	const n = 8
	sum := 0
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		k.Go("worker", func() {
			k.Sleep(time.Duration(i) * time.Millisecond)
			sum += i
			wg.Done()
		})
	}
	joined := false
	k.Go("joiner", func() {
		wg.Wait()
		joined = true
		if k.Now() != 7*time.Millisecond {
			t.Errorf("join at %v, want 7ms", k.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !joined || sum != 28 {
		t.Errorf("joined=%v sum=%d", joined, sum)
	}
}

func TestWaitGroupReal(t *testing.T) {
	e := NewRealEnv()
	wg := NewWaitGroup(e)
	var count atomic.Int32
	const n = 16
	wg.Add(n)
	for i := 0; i < n; i++ {
		e.Go("w", func() {
			count.Add(1)
			wg.Done()
		})
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitGroup.Wait never returned")
	}
	if count.Load() != n {
		t.Errorf("count = %d", count.Load())
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	k := NewKernel()
	k.Go("p", func() {
		wg := NewWaitGroup(k)
		defer func() {
			if recover() == nil {
				t.Error("expected panic on negative counter")
			}
		}()
		wg.Done()
	})
	_ = k.Run()
}
