// Package sim provides the execution substrate for AI-Ckpt: an Env
// abstraction over time and synchronization with two implementations, a
// RealEnv backed by the wall clock and Go's sync package (used when the
// checkpointing runtime protects a real application), and a deterministic
// discrete-event Kernel in virtual time (used by the evaluation harness to
// model the paper's testbeds reproducibly).
//
// Code written against Env — in particular the page manager in
// internal/core — runs unchanged in both worlds.
package sim

import (
	"sync"
	"time"
)

// Cond is the subset of sync.Cond semantics used by the runtime. Virtual
// conds are strictly FIFO, which keeps simulations deterministic.
type Cond interface {
	// Wait atomically unlocks the associated Locker and suspends the
	// caller; on resume the Locker is re-acquired. As with sync.Cond,
	// callers must re-check their predicate in a loop.
	Wait()
	// Signal wakes one waiter, if any.
	Signal()
	// Broadcast wakes all current waiters.
	Broadcast()
}

// Env abstracts the execution environment: time, sleeping, spawning
// concurrent processes, and synchronization primitive construction.
type Env interface {
	// Now returns the time elapsed since the environment started.
	Now() time.Duration
	// Sleep suspends the calling process for d (d <= 0 yields).
	Sleep(d time.Duration)
	// Go starts fn as a new concurrent process. The name is used in
	// deadlock and panic diagnostics.
	Go(name string, fn func())
	// NewMutex returns a mutual-exclusion lock usable with NewCond.
	NewMutex() sync.Locker
	// NewCond returns a condition variable associated with l, which must
	// have been returned by NewMutex of the same Env.
	NewCond(l sync.Locker) Cond
}

// RealEnv implements Env with the wall clock and the sync package. The zero
// value is not usable; call NewRealEnv.
type RealEnv struct {
	start time.Time
}

// NewRealEnv returns an Env backed by real time.
func NewRealEnv() *RealEnv { return &RealEnv{start: time.Now()} } //aickpt:walltime RealEnv is the wall-clock Env

// Now implements Env.
func (e *RealEnv) Now() time.Duration { return time.Since(e.start) } //aickpt:walltime

// Sleep implements Env.
func (e *RealEnv) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d) //aickpt:walltime
	}
}

// Go implements Env.
func (e *RealEnv) Go(name string, fn func()) { go fn() }

// NewMutex implements Env.
func (e *RealEnv) NewMutex() sync.Locker { return &sync.Mutex{} }

// NewCond implements Env.
func (e *RealEnv) NewCond(l sync.Locker) Cond { return realCond{sync.NewCond(l)} }

type realCond struct{ c *sync.Cond }

func (c realCond) Wait()      { c.c.Wait() }
func (c realCond) Signal()    { c.c.Signal() }
func (c realCond) Broadcast() { c.c.Broadcast() }

var _ Env = (*RealEnv)(nil)
