// Package erasure implements systematic Reed-Solomon erasure coding over
// GF(2^8). The paper (§3.2) notes that checkpoints on node-local storage are
// unreliable and points to erasure-coded replication across nodes (ref [18],
// Gomez et al.) as the cost-effective remedy; this package provides that
// substrate for the local-storage configurations.
package erasure

// GF(2^8) arithmetic with the polynomial x^8+x^4+x^3+x^2+1 (0x11d), the
// conventional Reed-Solomon field in which 2 is a primitive element
// (unlike the AES polynomial 0x11b, where 2 generates only a subgroup of
// order 51). Log/antilog tables are built at init time.

var (
	gfExp [512]byte
	gfLog [256]int
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[gfLog[a]-gfLog[b]+255]
}

func gfInv(a byte) byte { return gfDiv(1, a) }

// mulAddSliceRef computes dst[i] ^= c * src[i] for all i, one gfMul-style
// log/antilog pair per byte. Encode and Decode now run the table-driven
// kernel in kernel.go; this reference survives as the oracle for the
// exhaustive equivalence sweep and the baseline for the GF(256) benchmark.
func mulAddSliceRef(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	logC := gfLog[c]
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[logC+gfLog[s]]
		}
	}
}

// invertMatrix inverts a k×k matrix over GF(256) in place using Gauss-Jordan
// elimination, returning false if the matrix is singular.
func invertMatrix(m [][]byte) bool {
	k := len(m)
	// Augment with identity.
	aug := make([][]byte, k)
	for i := range aug {
		aug[i] = make([]byte, 2*k)
		copy(aug[i], m[i])
		aug[i][k+i] = 1
	}
	for col := 0; col < k; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < k; r++ {
			if aug[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return false
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		// Scale pivot row.
		inv := gfInv(aug[col][col])
		for c := 0; c < 2*k; c++ {
			aug[col][c] = gfMul(aug[col][c], inv)
		}
		// Eliminate other rows.
		for r := 0; r < k; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			f := aug[r][col]
			for c := 0; c < 2*k; c++ {
				aug[r][c] ^= gfMul(f, aug[col][c])
			}
		}
	}
	for i := range m {
		copy(m[i], aug[i][k:])
	}
	return true
}
