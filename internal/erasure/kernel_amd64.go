//go:build amd64

package erasure

import "sync/atomic"

// SSSE3 nibble-table fast path. PSHUFB performs sixteen parallel 4-bit
// table lookups per instruction, so c*s is computed as
// tLo[s&0x0f] ^ tHi[s>>4] across a whole XMM register at once — the same
// decomposition the portable row kernel does one byte at a time. The two
// 16-entry tables are derived from the coefficient exactly like the
// 256-byte row and cached per Coder under the same lock-free discipline.

// nibTab packs the two 16-entry lookup tables: bytes 0..15 map the low
// nibble (c*n), bytes 16..31 the high nibble (c*(n<<4)).
type nibTab [32]byte

type accelState struct {
	nibs [256]atomic.Pointer[nibTab]
}

// hasSSSE3 is set at init from CPUID leaf 1 ECX bit 9. The Go amd64
// baseline (GOAMD64=v1) does not guarantee SSSE3, so the kernel is gated
// at runtime; in practice every x86-64 CPU since ~2006 has it.
var hasSSSE3 = cpuidFeatures()&(1<<9) != 0

// cpuidFeatures returns ECX of CPUID leaf 1 (implemented in kernel_amd64.s).
func cpuidFeatures() uint32

// AccelAvailable reports whether the vectorized GF(256) fast path is active
// on this CPU; benchmarks use it to decide whether the hard kernel-speedup
// gate applies or only the portable row kernel is in play.
func AccelAvailable() bool { return hasSSSE3 }

// mulAddNib runs the SSSE3 kernel over n bytes (n must be a multiple of
// 16) of dst ^= c*src (implemented in kernel_amd64.s).
//
//go:noescape
func mulAddNib(dst, src *byte, n int, tab *nibTab)

func (a *accelState) tab(c byte) *nibTab {
	if t := a.nibs[c].Load(); t != nil {
		return t
	}
	var t nibTab
	for n := 0; n < 16; n++ {
		t[n] = gfMul(c, byte(n))
		t[16+n] = gfMul(c, byte(n<<4))
	}
	a.nibs[c].Store(&t)
	return &t
}

// mulAddAccel applies dst ^= coef*src with the SSSE3 kernel, finishing any
// sub-16-byte tail with per-byte gfMul. It reports false when the CPU
// lacks SSSE3 or the slice is too short to cover one XMM register, leaving
// the work to the portable row kernel.
func mulAddAccel(c *Coder, dst, src []byte, coef byte) bool {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	if !hasSSSE3 || n < 16 {
		return false
	}
	n16 := n &^ 15
	mulAddNib(&dst[0], &src[0], n16, c.accel.tab(coef))
	for i := n16; i < n; i++ {
		dst[i] ^= gfMul(coef, src[i])
	}
	return true
}
