package erasure

import "sync/atomic"

// Table-driven GF(256) multiply-accumulate kernel. The historical inner
// loop (see mulAddSliceRef) pays a zero-test branch and two table lookups
// (log + antilog) per byte; reconstruction of a wide chain runs this loop
// over every byte of every rebuilt shard, so it dominates the restore
// critical path whenever erasure-coded peers are the fastest surviving
// tier. The kernel below folds the whole per-byte computation into one
// 256-byte multiplication row per coefficient: dst[i] ^= row[src[i]],
// branch-free, with a single L1-resident lookup table.

// mulRow is the full multiplication row of one coefficient c:
// mulRow[s] == c*s over GF(2^8). Indexing a *[256]byte by a byte needs no
// bounds check, which keeps the inner loop to a load, a lookup and an XOR.
type mulRow [256]byte

// buildMulRow materialises the multiplication row of c.
func buildMulRow(c byte) *mulRow {
	var r mulRow
	if c == 0 {
		return &r
	}
	logC := gfLog[c]
	for s := 1; s < 256; s++ {
		r[s] = gfExp[logC+gfLog[s]]
	}
	return &r
}

// mulAddRow computes dst[i] ^= row[src[i]] over the common prefix. The
// 8-way unroll amortises the loop bookkeeping; the row parameter is a
// fixed-size array pointer so every lookup is bounds-check free.
//
//aickpt:hotpath
func mulAddRow(dst, src []byte, row *mulRow) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	dst = dst[:n]
	src = src[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i+0] ^= row[src[i+0]]
		dst[i+1] ^= row[src[i+1]]
		dst[i+2] ^= row[src[i+2]]
		dst[i+3] ^= row[src[i+3]]
		dst[i+4] ^= row[src[i+4]]
		dst[i+5] ^= row[src[i+5]]
		dst[i+6] ^= row[src[i+6]]
		dst[i+7] ^= row[src[i+7]]
	}
	for ; i < n; i++ {
		dst[i] ^= row[src[i]]
	}
}

// rowCache lazily materialises multiplication rows, one per coefficient.
// Rows are published through atomic pointers so concurrent Decode calls
// (the peer tier reconstructs many pages from a worker pool) can share one
// Coder without locks: a duplicated build is idempotent and the last store
// wins with an identical table.
type rowCache [256]atomic.Pointer[mulRow]

func (rc *rowCache) row(c byte) *mulRow {
	if r := rc[c].Load(); r != nil {
		return r
	}
	r := buildMulRow(c)
	rc[c].Store(r)
	return r
}

// MulAdd computes dst[i] ^= coef*src[i] over the common prefix of dst and
// src using the Coder's cached multiplication tables. It is safe for
// concurrent use; benchmarks compare it against MulAddRef.
//
// On amd64 with SSSE3 the bulk of the slice goes through a 16-lane
// nibble-table kernel (kernel_amd64.s) built from the same row; elsewhere
// (and for short tails) the portable row kernel runs.
func (c *Coder) MulAdd(dst, src []byte, coef byte) {
	if coef == 0 {
		return
	}
	if mulAddAccel(c, dst, src, coef) {
		return
	}
	mulAddRow(dst, src, c.rows.row(coef))
}

// MulAddRef is the pre-table reference kernel: per byte, a zero test and a
// log/antilog lookup pair (gfMul inlined). It is retained as the ground
// truth for equivalence tests and as the baseline the GF(256) benchmark
// gate measures speedup against.
func MulAddRef(dst, src []byte, coef byte) {
	mulAddSliceRef(dst, src, coef)
}
