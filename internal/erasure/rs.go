package erasure

import "fmt"

// Coder is a systematic Reed-Solomon encoder/decoder with k data shards and
// m parity shards. Any k of the k+m shards reconstruct the original data.
type Coder struct {
	k, m   int
	matrix [][]byte // (k+m)×k encoding matrix; top k rows are identity
	// rows caches one 256-byte multiplication row per coefficient for the
	// table-driven kernel (kernel.go); lazily filled, safe for concurrent
	// Encode/Decode. accel holds the architecture-specific fast-path
	// tables (empty on platforms without one).
	rows  rowCache
	accel accelState
}

// New returns a Coder for k data and m parity shards. It panics unless
// 1 <= k, 0 <= m and k+m <= 256.
func New(k, m int) *Coder {
	if k < 1 || m < 0 || k+m > 256 {
		panic(fmt.Sprintf("erasure: invalid parameters k=%d m=%d", k, m))
	}
	c := &Coder{k: k, m: m}
	c.matrix = buildMatrix(k, m)
	return c
}

// buildMatrix constructs a (k+m)×k matrix whose every k-row subset is
// invertible: identity on top, followed by a Cauchy matrix
// parity[i][j] = 1/(x_i + y_j) with disjoint {x_i}, {y_j}.
func buildMatrix(k, m int) [][]byte {
	rows := make([][]byte, k+m)
	for i := 0; i < k; i++ {
		rows[i] = make([]byte, k)
		rows[i][i] = 1
	}
	for i := 0; i < m; i++ {
		rows[k+i] = make([]byte, k)
		for j := 0; j < k; j++ {
			x := byte(k + i) // x_i = k..k+m-1
			y := byte(j)     // y_j = 0..k-1, disjoint from x
			rows[k+i][j] = gfInv(x ^ y)
		}
	}
	return rows
}

// K returns the number of data shards.
func (c *Coder) K() int { return c.k }

// M returns the number of parity shards.
func (c *Coder) M() int { return c.m }

// Encode splits data into k equal shards (zero-padding the tail) and returns
// k+m shards. The original length must be tracked by the caller (the
// checkpoint manifest stores it).
func (c *Coder) Encode(data []byte) [][]byte {
	shardLen := (len(data) + c.k - 1) / c.k
	if shardLen == 0 {
		shardLen = 1
	}
	shards := make([][]byte, c.k+c.m)
	for i := 0; i < c.k; i++ {
		shards[i] = make([]byte, shardLen)
		lo := i * shardLen
		if lo < len(data) {
			hi := lo + shardLen
			if hi > len(data) {
				hi = len(data)
			}
			copy(shards[i], data[lo:hi])
		}
	}
	for i := 0; i < c.m; i++ {
		p := make([]byte, shardLen)
		row := c.matrix[c.k+i]
		for j := 0; j < c.k; j++ {
			c.MulAdd(p, shards[j], row[j])
		}
		shards[c.k+i] = p
	}
	return shards
}

// Decode reconstructs the original data (of length size) from shards, where
// shards[i] == nil marks shard i as lost. It fails if fewer than k shards
// survive.
func (c *Coder) Decode(shards [][]byte, size int) ([]byte, error) {
	if len(shards) != c.k+c.m {
		return nil, fmt.Errorf("erasure: got %d shards, want %d", len(shards), c.k+c.m)
	}
	present := 0
	shardLen := 0
	for _, s := range shards {
		if s != nil {
			present++
			if shardLen == 0 {
				shardLen = len(s)
			} else if len(s) != shardLen {
				return nil, fmt.Errorf("erasure: inconsistent shard sizes")
			}
		}
	}
	if present < c.k {
		return nil, fmt.Errorf("erasure: only %d shards survive, need %d", present, c.k)
	}
	if size < 0 || size > c.k*shardLen {
		return nil, fmt.Errorf("erasure: size %d outside capacity [0, %d]", size, c.k*shardLen)
	}

	// Fast path: all data shards present.
	dataIntact := true
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			dataIntact = false
			break
		}
	}
	data := make([]byte, 0, c.k*shardLen)
	if dataIntact {
		for i := 0; i < c.k; i++ {
			data = append(data, shards[i]...)
		}
		return data[:size], nil
	}

	// Build the decode matrix from the first k surviving shards.
	sub := make([][]byte, 0, c.k)
	rows := make([][]byte, 0, c.k)
	for i := 0; i < c.k+c.m && len(sub) < c.k; i++ {
		if shards[i] != nil {
			sub = append(sub, shards[i])
			row := make([]byte, c.k)
			copy(row, c.matrix[i])
			rows = append(rows, row)
		}
	}
	if !invertMatrix(rows) {
		return nil, fmt.Errorf("erasure: decode matrix is singular")
	}
	// Reconstruct each data shard i as rows[i] · sub.
	rebuilt := make([][]byte, c.k)
	for i := 0; i < c.k; i++ {
		if shards[i] != nil {
			rebuilt[i] = shards[i]
			continue
		}
		out := make([]byte, shardLen)
		for j := 0; j < c.k; j++ {
			c.MulAdd(out, sub[j], rows[i][j])
		}
		rebuilt[i] = out
	}
	for i := 0; i < c.k; i++ {
		data = append(data, rebuilt[i]...)
	}
	return data[:size], nil
}
