//go:build !amd64

package erasure

// accelState is empty on platforms without an assembly fast path; MulAdd
// always runs the portable table-driven row kernel.
type accelState struct{}

// AccelAvailable reports whether a vectorized GF(256) fast path is active:
// never, on platforms without one.
func AccelAvailable() bool { return false }

func mulAddAccel(c *Coder, dst, src []byte, coef byte) bool { return false }
