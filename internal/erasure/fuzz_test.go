package erasure

import (
	"bytes"
	"testing"
)

// FuzzReconstruct is the k-of-n property: encode fuzz-derived data with
// fuzz-derived (k, m), drop up to m shards chosen by a bitmask, and the
// decode must reproduce the data exactly.
func FuzzReconstruct(f *testing.F) {
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), uint8(4), uint8(2), uint16(0b10010))
	f.Add([]byte{}, uint8(1), uint8(1), uint16(1))
	f.Add(bytes.Repeat([]byte{0xff}, 100), uint8(8), uint8(3), uint16(0b111))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, mRaw uint8, dropMask uint16) {
		k := int(kRaw)%12 + 1 // 1..12
		m := int(mRaw) % 5    // 0..4
		c := New(k, m)
		shards := c.Encode(data)
		if len(shards) != k+m {
			t.Fatalf("Encode returned %d shards, want %d", len(shards), k+m)
		}
		dropped := 0
		for i := 0; i < k+m && dropped < m; i++ {
			if dropMask&(1<<i) != 0 {
				shards[i] = nil
				dropped++
			}
		}
		got, err := c.Decode(shards, len(data))
		if err != nil {
			t.Fatalf("Decode(k=%d m=%d dropped=%d): %v", k, m, dropped, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("k=%d m=%d dropped=%d: reconstruction mismatch", k, m, dropped)
		}
	})
}

// FuzzDecodeArbitrary throws arbitrary (possibly inconsistent) shard slices
// at Decode: it must return data or an error, never panic — lost-shard
// bookkeeping in the peer tier depends on that.
func FuzzDecodeArbitrary(f *testing.F) {
	f.Add([]byte("shardbytes"), uint8(3), uint8(2), 10, uint16(0))
	f.Add([]byte{}, uint8(1), uint8(0), 0, uint16(0xffff))
	f.Add([]byte("x"), uint8(2), uint8(2), 1<<20, uint16(0b1010))
	f.Fuzz(func(t *testing.T, blob []byte, kRaw, mRaw uint8, size int, nilMask uint16) {
		k := int(kRaw)%12 + 1
		m := int(mRaw) % 5
		c := New(k, m)
		n := k + m
		shardLen := len(blob) / n
		shards := make([][]byte, n)
		for i := range shards {
			if nilMask&(1<<i) != 0 {
				continue // lost shard
			}
			shards[i] = blob[i*shardLen : (i+1)*shardLen]
		}
		data, err := c.Decode(shards, size)
		if err == nil && len(data) != size {
			t.Fatalf("Decode returned %d bytes for size %d without error", len(data), size)
		}
		// Mismatched shard counts must also error, not panic.
		if n > 1 {
			if _, err := c.Decode(shards[:n-1], size); err == nil {
				t.Fatalf("Decode accepted %d shards for a %d-shard coder", n-1, n)
			}
		}
	})
}
