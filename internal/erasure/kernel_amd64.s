//go:build amd64

#include "textflag.h"

// func cpuidFeatures() uint32
// Returns ECX of CPUID leaf 1 (bit 9 = SSSE3).
TEXT ·cpuidFeatures(SB), NOSPLIT, $0-4
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, ret+0(FP)
	RET

// func mulAddNib(dst, src *byte, n int, tab *nibTab)
// dst[i] ^= tLo[src[i]&0x0f] ^ tHi[src[i]>>4] for i in [0, n); n must be a
// multiple of 16. PSHUFB does sixteen 4-bit lookups per instruction; the
// two tables live in X6/X7 for the whole loop.
TEXT ·mulAddNib(SB), NOSPLIT, $0-32
	MOVQ  dst+0(FP), DI
	MOVQ  src+8(FP), SI
	MOVQ  n+16(FP), CX
	MOVQ  tab+24(FP), AX
	MOVOU (AX), X6            // low-nibble table
	MOVOU 16(AX), X7          // high-nibble table
	MOVOU nibMask<>(SB), X5   // 0x0f in every lane

loop32:
	CMPQ  CX, $32
	JL    loop16
	MOVOU (SI), X0
	MOVOU 16(SI), X8
	MOVOU X0, X1
	MOVOU X8, X9
	PSRLQ $4, X1
	PSRLQ $4, X9
	PAND  X5, X0              // low nibbles
	PAND  X5, X1              // high nibbles
	PAND  X5, X8
	PAND  X5, X9
	MOVOU X6, X2
	MOVOU X7, X3
	MOVOU X6, X10
	MOVOU X7, X11
	PSHUFB X0, X2             // tLo[lo]
	PSHUFB X1, X3             // tHi[hi]
	PSHUFB X8, X10
	PSHUFB X9, X11
	PXOR  X3, X2              // c*src bytes
	PXOR  X11, X10
	MOVOU (DI), X0
	MOVOU 16(DI), X8
	PXOR  X2, X0              // accumulate into dst
	PXOR  X10, X8
	MOVOU X0, (DI)
	MOVOU X8, 16(DI)
	ADDQ  $32, SI
	ADDQ  $32, DI
	SUBQ  $32, CX
	JMP   loop32

loop16:
	CMPQ  CX, $16
	JL    done
	MOVOU (SI), X0
	MOVOU X0, X1
	PSRLQ $4, X1
	PAND  X5, X0
	PAND  X5, X1
	MOVOU X6, X2
	MOVOU X7, X3
	PSHUFB X0, X2
	PSHUFB X1, X3
	PXOR  X3, X2
	MOVOU (DI), X0
	PXOR  X2, X0
	MOVOU X0, (DI)

done:
	RET

DATA nibMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibMask<>(SB), RODATA, $16
