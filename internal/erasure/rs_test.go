package erasure

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/util"
)

func TestGFTablesConsistent(t *testing.T) {
	// 2 must be primitive: the first 255 powers enumerate every nonzero
	// element exactly once, and log is the inverse of exp.
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		v := gfExp[i]
		if v == 0 || seen[v] {
			t.Fatalf("exp table not a permutation at %d (v=%d)", i, v)
		}
		seen[v] = true
		if gfLog[v] != i {
			t.Fatalf("log(exp(%d)) = %d", i, gfLog[v])
		}
	}
}

func TestGFFieldAxioms(t *testing.T) {
	// Inverses exhaustively; distributivity and commutativity on a sample.
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a*inv(a) = %d for a=%d", got, a)
		}
	}
	r := util.NewRNG(1)
	for i := 0; i < 1000; i++ {
		a := byte(r.Intn(255) + 1)
		b := byte(r.Intn(256))
		c := byte(r.Intn(256))
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity failed for %d,%d,%d", a, b, c)
		}
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("commutativity failed for %d,%d", a, b)
		}
	}
	if gfMul(0, 7) != 0 || gfMul(7, 0) != 0 {
		t.Error("multiplication by zero")
	}
}

func TestInvertMatrixIdentity(t *testing.T) {
	m := [][]byte{{1, 0}, {0, 1}}
	if !invertMatrix(m) {
		t.Fatal("identity reported singular")
	}
	if m[0][0] != 1 || m[0][1] != 0 || m[1][0] != 0 || m[1][1] != 1 {
		t.Errorf("inverse of identity = %v", m)
	}
	singular := [][]byte{{1, 1}, {1, 1}}
	if invertMatrix(singular) {
		t.Error("singular matrix reported invertible")
	}
}

func TestEncodeDecodeNoLoss(t *testing.T) {
	c := New(4, 2)
	data := []byte("the quick brown fox jumps over the lazy dog")
	shards := c.Encode(data)
	if len(shards) != 6 {
		t.Fatalf("got %d shards", len(shards))
	}
	got, err := c.Decode(shards, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("round trip mismatch")
	}
}

func TestDecodeWithErasures(t *testing.T) {
	c := New(5, 3)
	r := util.NewRNG(42)
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(r.Uint64())
	}
	// Try every pattern of up to 3 erasures among 8 shards.
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			for d := b + 1; d < 8; d++ {
				shards := c.Encode(data)
				shards[a], shards[b], shards[d] = nil, nil, nil
				got, err := c.Decode(shards, len(data))
				if err != nil {
					t.Fatalf("erasures (%d,%d,%d): %v", a, b, d, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("erasures (%d,%d,%d): data mismatch", a, b, d)
				}
			}
		}
	}
}

func TestDecodeTooManyErasures(t *testing.T) {
	c := New(3, 2)
	shards := c.Encode([]byte("hello world"))
	shards[0], shards[1], shards[2] = nil, nil, nil
	if _, err := c.Decode(shards, 11); err == nil {
		t.Fatal("expected failure with k-1 shards")
	}
}

func TestEncodeEmptyAndTiny(t *testing.T) {
	c := New(4, 2)
	for _, data := range [][]byte{{}, {7}, {1, 2, 3}} {
		shards := c.Encode(data)
		got, err := c.Decode(shards, len(data))
		if err != nil {
			t.Fatalf("len=%d: %v", len(data), err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("len=%d: mismatch", len(data))
		}
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	for _, p := range [][2]int{{0, 1}, {-1, 2}, {2, -1}, {200, 100}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", p[0], p[1])
				}
			}()
			New(p[0], p[1])
		}()
	}
}

// Property: for random data and a random erasure pattern with at most m
// losses, decoding recovers the data exactly.
func TestRSQuickRecovery(t *testing.T) {
	f := func(seed uint64, raw []byte) bool {
		if len(raw) == 0 {
			raw = []byte{0}
		}
		r := util.NewRNG(seed)
		k := r.Intn(6) + 1
		m := r.Intn(4)
		c := New(k, m)
		shards := c.Encode(raw)
		losses := 0
		if m > 0 {
			losses = r.Intn(m + 1)
		}
		for _, idx := range r.Perm(k + m)[:losses] {
			shards[idx] = nil
		}
		got, err := c.Decode(shards, len(raw))
		if err != nil {
			return false
		}
		return bytes.Equal(got, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
