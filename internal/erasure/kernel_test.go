package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

// The table-driven kernel must agree with the per-byte gfMul reference for
// every coefficient, over a buffer that contains every source byte value.
func TestKernelMatchesReferenceExhaustive(t *testing.T) {
	c := New(4, 2)
	src := make([]byte, 1024)
	for i := range src {
		src[i] = byte(i) // every value 0..255, four times
	}
	for coef := 0; coef < 256; coef++ {
		want := make([]byte, len(src))
		got := make([]byte, len(src))
		// Non-zero starting dst so the XOR accumulate is exercised too.
		for i := range want {
			want[i] = byte(3 * i)
			got[i] = byte(3 * i)
		}
		MulAddRef(want, src, byte(coef))
		c.MulAdd(got, src, byte(coef))
		if !bytes.Equal(got, want) {
			t.Fatalf("kernel diverges from reference at coefficient %d", coef)
		}
	}
}

// The unrolled loop must handle every tail length, not just multiples of 8.
func TestKernelOddLengths(t *testing.T) {
	c := New(3, 1)
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= 33; n++ {
		src := make([]byte, n)
		rng.Read(src)
		want := make([]byte, n)
		got := make([]byte, n)
		MulAddRef(want, src, 0x8e)
		c.MulAdd(got, src, 0x8e)
		if !bytes.Equal(got, want) {
			t.Fatalf("kernel diverges at length %d", n)
		}
	}
}

// The row cache is shared by concurrent decoders; hammer it from many
// goroutines (meaningful under -race).
func TestKernelRowCacheConcurrent(t *testing.T) {
	c := New(4, 3)
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 31)
	}
	shards := c.Encode(data)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			in := make([][]byte, len(shards))
			copy(in, shards)
			in[g%4] = nil // drop one data shard: forces reconstruction
			out, err := c.Decode(in, len(data))
			if err == nil && !bytes.Equal(out, data) {
				err = errMismatch
			}
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = bytes.ErrTooLarge // sentinel reuse; only identity matters

// BenchmarkGFKernelTable measures the table-driven multiply-accumulate the
// decoder runs per reconstructed shard; BenchmarkGFKernelRef is the per-byte
// gfMul baseline. aickpt-bench -scenario restore gates their ratio at >= 4x.
func BenchmarkGFKernelTable(b *testing.B) {
	c := New(4, 2)
	src := make([]byte, 64<<10)
	dst := make([]byte, 64<<10)
	for i := range src {
		src[i] = byte(i*7 + 3)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MulAdd(dst, src, 0x8e)
	}
}

func BenchmarkGFKernelRef(b *testing.B) {
	src := make([]byte, 64<<10)
	dst := make([]byte, 64<<10)
	for i := range src {
		src[i] = byte(i*7 + 3)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddRef(dst, src, 0x8e)
	}
}

// BenchmarkDecodeReconstruct exercises the full reconstruction path (matrix
// inversion amortised across pages) the peer tier runs during restore.
func BenchmarkDecodeReconstruct(b *testing.B) {
	c := New(4, 2)
	data := make([]byte, 16<<10)
	for i := range data {
		data[i] = byte(i * 13)
	}
	shards := c.Encode(data)
	in := make([][]byte, len(shards))
	copy(in, shards)
	in[1] = nil
	in[3] = nil
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(in, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}
