package workload

import (
	"time"

	"repro/internal/pagemem"
	"repro/internal/sim"
	"repro/internal/util"
)

// MILC models one MPI process of the MIMD Lattice Computation benchmark
// (§4.5): a 4-D lattice QCD code whose dominant state is the per-direction
// gauge-link arrays plus conjugate-gradient work vectors. Configuration
// generation sweeps the lattice in even/odd (checkerboard) order — the
// classic staggered-fermion decomposition — several times per trajectory,
// and archives (checkpoints) after each trajectory. The even/odd temporal
// order is maximally unlike the address order, which is why access-pattern
// adaptation pays off even with no COW buffer (Figure 5).
type MILC struct {
	// Arrays is the number of large lattice arrays (gauge links per
	// direction, momenta, CG vectors); PagesPer their size in pages.
	Arrays   int
	PagesPer int
	// SweepsPerTrajectory is the number of update phases between
	// checkpoints. Each phase rewrites a rotating subset of the arrays
	// (gauge update, momentum refresh, CG solves touch different state),
	// so first writes spread across the whole trajectory rather than
	// bursting right after the checkpoint — the key difference from CM1's
	// access profile.
	SweepsPerTrajectory int
	// Trajectories is the number of trajectories (3 in the paper, one
	// checkpoint each).
	Trajectories int
	// PageCost, CostJitter, SpikeP, TouchBatch: see Synthetic.
	PageCost   time.Duration
	CostJitter float64
	SpikeP     float64
	SpikeRun   int
	TouchBatch int
	// HaloBytes is the nearest-neighbor exchange volume per sweep.
	HaloBytes int64
	// DeviationP is the fraction of pages touched out-of-order at the
	// start of each sweep (accept/reject and measurement phases vary
	// between trajectories).
	DeviationP float64
	// Seed drives cost jitter.
	Seed uint64
}

// TotalPages returns the process's allocated page count.
func (m MILC) TotalPages() int { return m.Arrays * m.PagesPer }

// MILCProc is an instantiated MILC process.
type MILCProc struct {
	cfg    MILC
	arrays []*pagemem.Region
	t      *toucher
	env    sim.Env

	Exchange   func(bytes int64)
	Barrier    func()
	Checkpoint func()
}

// NewMILCProc allocates the lattice arrays (transparent capture).
func NewMILCProc(env sim.Env, space *pagemem.Space, cfg MILC) *MILCProc {
	p := &MILCProc{cfg: cfg, env: env}
	for i := 0; i < cfg.Arrays; i++ {
		p.arrays = append(p.arrays, space.Alloc(cfg.PagesPer*space.PageSize(), true))
	}
	p.t = newToucher(env, cfg.PagesPer, cfg.PageCost, cfg.CostJitter, cfg.SpikeP, cfg.SpikeRun, cfg.TouchBatch, cfg.Seed)
	return p
}

// sweep runs one update phase: arrays whose index is congruent to the
// phase (mod SweepsPerTrajectory) are rewritten in even/odd checkerboard
// order. Over one trajectory every array is rewritten exactly once.
func (p *MILCProc) sweep(sweepID uint64, phase int) {
	if p.cfg.DeviationP > 0 {
		rng := util.NewRNG(p.cfg.Seed ^ (sweepID * 0x517cc1b7))
		n := int(p.cfg.DeviationP * float64(p.cfg.Arrays*p.cfg.PagesPer))
		for j := 0; j < n; j++ {
			p.t.touch(p.arrays[rng.Intn(len(p.arrays))], rng.Intn(p.cfg.PagesPer))
		}
	}
	for half := 0; half < 2; half++ {
		for a, r := range p.arrays {
			if a%p.cfg.SweepsPerTrajectory != phase {
				continue
			}
			for i := half; i < p.cfg.PagesPer; i += 2 {
				p.t.touch(r, i)
			}
		}
	}
	p.t.flush()
	if p.Exchange != nil && p.cfg.HaloBytes > 0 {
		p.Exchange(p.cfg.HaloBytes)
	}
	if p.Barrier != nil {
		p.Barrier()
	}
}

// Run executes all trajectories.
func (p *MILCProc) Run() {
	// Initial configuration: touch everything once.
	for _, r := range p.arrays {
		for i := 0; i < p.cfg.PagesPer; i++ {
			r.Touch(i)
		}
	}
	p.env.Sleep(p.cfg.PageCost * time.Duration(p.cfg.TotalPages()))
	for tr := 0; tr < p.cfg.Trajectories; tr++ {
		for s := 0; s < p.cfg.SweepsPerTrajectory; s++ {
			p.sweep(uint64(tr*p.cfg.SweepsPerTrajectory+s+1), s)
		}
		if p.Checkpoint != nil {
			p.Checkpoint()
			if p.Barrier != nil {
				p.Barrier()
			}
		}
	}
}
