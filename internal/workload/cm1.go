package workload

import (
	"time"

	"repro/internal/pagemem"
	"repro/internal/sim"
	"repro/internal/util"
)

// CM1 models one MPI process of the CM1 atmospheric simulation (§4.4): a
// stencil code over a fixed subdomain whose state lives in many allocatable
// field arrays. Each iteration recomputes the prognostic fields (touching
// them fully, array by array in a fixed physics-phase order that differs
// from allocation order), exchanges subdomain borders with neighbors and
// synchronizes. Diagnostic arrays are written only during initialization —
// they are the cold 328 MB of the paper's 400 MB / 728 MB split.
type CM1 struct {
	// WriteArrays is the number of prognostic arrays rewritten every
	// iteration; WritePages is the size of each in pages.
	WriteArrays int
	WritePages  int
	// ColdArrays/ColdPages describe the arrays only written at init.
	ColdArrays int
	ColdPages  int
	// Iterations and CheckpointEvery define the run length (the paper
	// fixes simulated time such that 3 checkpoints trigger).
	Iterations      int
	CheckpointEvery int
	// PageCost, CostJitter, SpikeP, TouchBatch: see Synthetic.
	PageCost   time.Duration
	CostJitter float64
	SpikeP     float64
	SpikeRun   int
	TouchBatch int
	// HaloBytes is the border volume sent per iteration.
	HaloBytes int64
	// DeviationP is the fraction of hot pages touched out-of-order at the
	// start of each iteration (boundary conditions, active microphysics
	// cells): it varies per iteration, so the previous epoch's access
	// history mispredicts it — real codes are not perfectly periodic.
	DeviationP float64
	// Seed drives phase order and jitter.
	Seed uint64
}

// TotalPages returns the process's allocated page count.
func (c CM1) TotalPages() int {
	return c.WriteArrays*c.WritePages + c.ColdArrays*c.ColdPages
}

// TouchedPages returns the pages dirtied per epoch once warmed up.
func (c CM1) TouchedPages() int { return c.WriteArrays * c.WritePages }

// CM1Proc is an instantiated CM1 process: its protected arrays plus hooks
// into the deployment (exchange, barrier, checkpoint).
type CM1Proc struct {
	cfg   CM1
	hot   []*pagemem.Region
	cold  []*pagemem.Region
	order []int // phase order over hot arrays
	t     *toucher
	env   sim.Env

	// Exchange sends the halo (nil to skip).
	Exchange func(bytes int64)
	// Barrier synchronizes with the other processes (nil to skip).
	Barrier func()
	// Checkpoint triggers a checkpoint (nil for baseline runs).
	Checkpoint func()
}

// NewCM1Proc allocates the process's arrays in space (transparent capture:
// all of them are protected). Allocation order is array 0..n-1 hot, then
// cold, mirroring Fortran allocatables registered at startup.
func NewCM1Proc(env sim.Env, space *pagemem.Space, cfg CM1) *CM1Proc {
	p := &CM1Proc{cfg: cfg, env: env}
	for i := 0; i < cfg.WriteArrays; i++ {
		p.hot = append(p.hot, space.Alloc(cfg.WritePages*space.PageSize(), true))
	}
	for i := 0; i < cfg.ColdArrays; i++ {
		p.cold = append(p.cold, space.Alloc(cfg.ColdPages*space.PageSize(), true))
	}
	// The physics phases update arrays in a fixed order that is not the
	// allocation order (advection, pressure, turbulence, microphysics...):
	// this is what an address-ordered flush cannot predict.
	p.order = util.NewRNG(cfg.Seed ^ 0xc31).Perm(cfg.WriteArrays)
	p.t = newToucher(env, cfg.WritePages, cfg.PageCost, cfg.CostJitter, cfg.SpikeP, cfg.SpikeRun, cfg.TouchBatch, cfg.Seed)
	return p
}

// Run executes the process until completion.
func (p *CM1Proc) Run() {
	// Initialization: write every array once (cold ones included).
	for _, r := range p.hot {
		for i := 0; i < p.cfg.WritePages; i++ {
			r.Touch(i)
		}
	}
	for _, r := range p.cold {
		for i := 0; i < p.cfg.ColdPages; i++ {
			r.Touch(i)
		}
	}
	p.env.Sleep(p.cfg.PageCost * time.Duration(p.cfg.TotalPages()))

	for it := 1; it <= p.cfg.Iterations; it++ {
		// Irregular pre-pass: iteration-dependent cells updated before
		// the regular sweeps.
		if p.cfg.DeviationP > 0 {
			rng := util.NewRNG(p.cfg.Seed ^ (uint64(it) * 0x9e3779b9))
			n := int(p.cfg.DeviationP * float64(p.cfg.WriteArrays*p.cfg.WritePages))
			for j := 0; j < n; j++ {
				p.t.touch(p.hot[rng.Intn(len(p.hot))], rng.Intn(p.cfg.WritePages))
			}
		}
		// Compute phase: rewrite each prognostic array, sweeping it in
		// ascending order, arrays in physics-phase order.
		for _, a := range p.order {
			r := p.hot[a]
			for i := 0; i < p.cfg.WritePages; i++ {
				p.t.touch(r, i)
			}
		}
		p.t.flush()
		// Border exchange and synchronization.
		if p.Exchange != nil && p.cfg.HaloBytes > 0 {
			p.Exchange(p.cfg.HaloBytes)
		}
		if p.Barrier != nil {
			p.Barrier()
		}
		if p.Checkpoint != nil && p.cfg.CheckpointEvery > 0 && it%p.cfg.CheckpointEvery == 0 {
			p.Checkpoint()
			if p.Barrier != nil {
				p.Barrier() // the paper: checkpoint, then barrier, then resume
			}
		}
	}
}
