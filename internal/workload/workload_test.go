package workload

import (
	"testing"
	"time"

	"repro/internal/pagemem"
	"repro/internal/sim"
)

func TestSyntheticOrders(t *testing.T) {
	s := Synthetic{Pages: 8, Pattern: Ascending, Seed: 1}
	asc := s.Order()
	for i, p := range asc {
		if p != i {
			t.Fatalf("ascending order[%d] = %d", i, p)
		}
	}
	s.Pattern = Descending
	desc := s.Order()
	for i, p := range desc {
		if p != 7-i {
			t.Fatalf("descending order[%d] = %d", i, p)
		}
	}
	s.Pattern = Random
	r1 := s.Order()
	r2 := s.Order()
	seen := make([]bool, 8)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("random order not stable across iterations")
		}
		if seen[r1[i]] {
			t.Fatal("random order not a permutation")
		}
		seen[r1[i]] = true
	}
}

func TestSyntheticRunTouchesEverythingEachIteration(t *testing.T) {
	k := sim.NewKernel()
	space := pagemem.NewSpace(4096)
	region := space.Alloc(16*4096, true)
	faults := 0
	space.SetFaultHandler(func(p int) {
		faults++
		space.Unprotect(p)
	})
	ckpts := 0
	s := Synthetic{
		Pages: 16, Iterations: 6, CheckpointEvery: 2, Pattern: Random,
		PageCost: time.Microsecond, TouchBatch: 4, Seed: 3,
	}
	var runtime time.Duration
	k.Go("bench", func() {
		s.Run(k, region, func() {
			ckpts++
			// Re-protect everything, as a manager's Checkpoint would.
			space.ForEachLivePage(space.Protect)
		})
		runtime = k.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ckpts != 3 {
		t.Errorf("checkpoints = %d, want 3", ckpts)
	}
	// Faults: 16 initial + 16 after each checkpoint that is followed by
	// more iterations (the ones after iterations 2 and 4) = 48.
	if faults != 48 {
		t.Errorf("faults = %d, want 48", faults)
	}
	if runtime <= 0 {
		t.Error("virtual time did not advance")
	}
}

func TestToucherCostsDeterministic(t *testing.T) {
	k := sim.NewKernel()
	a := newToucher(k, 128, time.Microsecond, 0.3, 0.1, 16, 8, 5)
	b := newToucher(k, 128, time.Microsecond, 0.3, 0.1, 16, 8, 5)
	for i := range a.costs {
		if a.costs[i] != b.costs[i] {
			t.Fatal("costs differ for identical seeds")
		}
	}
	c := newToucher(k, 128, time.Microsecond, 0.3, 0.1, 16, 8, 6)
	same := 0
	for i := range a.costs {
		if a.costs[i] == c.costs[i] {
			same++
		}
	}
	if same == len(a.costs) {
		t.Fatal("different seeds produced identical costs")
	}
}

func TestCM1ProcDirtiesHotArraysOnly(t *testing.T) {
	k := sim.NewKernel()
	space := pagemem.NewSpace(4096)
	cfg := CM1{
		WriteArrays: 3, WritePages: 4, ColdArrays: 2, ColdPages: 4,
		Iterations: 4, CheckpointEvery: 2,
		PageCost: time.Microsecond, TouchBatch: 4, Seed: 9,
	}
	proc := NewCM1Proc(k, space, cfg)
	if cfg.TotalPages() != 20 || cfg.TouchedPages() != 12 {
		t.Fatalf("TotalPages=%d TouchedPages=%d", cfg.TotalPages(), cfg.TouchedPages())
	}
	dirtyPerEpoch := []int{}
	dirty := map[int]bool{}
	space.SetFaultHandler(func(p int) {
		dirty[p] = true
		space.Unprotect(p)
	})
	proc.Checkpoint = func() {
		dirtyPerEpoch = append(dirtyPerEpoch, len(dirty))
		dirty = map[int]bool{}
		space.ForEachLivePage(space.Protect)
	}
	k.Go("cm1", proc.Run)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(dirtyPerEpoch) != 2 {
		t.Fatalf("checkpoints = %d", len(dirtyPerEpoch))
	}
	// First checkpoint: everything (init touched cold arrays too).
	if dirtyPerEpoch[0] != 20 {
		t.Errorf("first epoch dirty = %d, want 20", dirtyPerEpoch[0])
	}
	// Second: only the hot arrays.
	if dirtyPerEpoch[1] != 12 {
		t.Errorf("second epoch dirty = %d, want 12 (hot only)", dirtyPerEpoch[1])
	}
}

func TestMILCProcCoversAllArraysPerTrajectory(t *testing.T) {
	k := sim.NewKernel()
	space := pagemem.NewSpace(4096)
	cfg := MILC{
		Arrays: 5, PagesPer: 8, SweepsPerTrajectory: 3, Trajectories: 2,
		PageCost: time.Microsecond, TouchBatch: 4, Seed: 4,
	}
	proc := NewMILCProc(k, space, cfg)
	dirty := map[int]bool{}
	space.SetFaultHandler(func(p int) {
		dirty[p] = true
		space.Unprotect(p)
	})
	var perTrajectory []int
	proc.Checkpoint = func() {
		perTrajectory = append(perTrajectory, len(dirty))
		dirty = map[int]bool{}
		space.ForEachLivePage(space.Protect)
	}
	k.Go("milc", proc.Run)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(perTrajectory) != 2 {
		t.Fatalf("trajectories = %d", len(perTrajectory))
	}
	for i, n := range perTrajectory {
		if n != cfg.TotalPages() {
			t.Errorf("trajectory %d dirtied %d pages, want %d (full lattice)", i, n, cfg.TotalPages())
		}
	}
}

func TestMILCEvenOddOrder(t *testing.T) {
	k := sim.NewKernel()
	space := pagemem.NewSpace(4096)
	cfg := MILC{
		Arrays: 1, PagesPer: 8, SweepsPerTrajectory: 1, Trajectories: 1,
		PageCost: time.Microsecond, TouchBatch: 1, Seed: 4,
	}
	proc := NewMILCProc(k, space, cfg)
	var order []int
	space.SetFaultHandler(func(p int) {
		order = append(order, p)
		space.Unprotect(p)
	})
	k.Go("milc", func() {
		// Skip init faults by unprotecting first.
		for i := 0; i < 8; i++ {
			space.Unprotect(i)
		}
		space.ForEachLivePage(space.Protect)
		order = nil
		proc.sweep(1, 0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 4, 6, 1, 3, 5, 7}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("checkerboard order = %v, want %v", order, want)
		}
	}
}
