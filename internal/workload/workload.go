// Package workload models the applications of the paper's evaluation: the
// memory-intensive synthetic benchmark of §4.3, a CM1-like atmospheric
// stencil (§4.4) and a MILC-like lattice-QCD code (§4.5). The models
// preserve what matters to checkpointing — which pages are touched, in what
// order, how often, at what compute rate, and how much communication
// competes with checkpoint traffic — while the numerical content itself is
// irrelevant and elided (regions are phantom at simulation scale).
package workload

import (
	"time"

	"repro/internal/pagemem"
	"repro/internal/sim"
	"repro/internal/util"
)

// toucher walks pages of a region, charging per-page compute cost in
// batches so virtual time advances between groups of writes without paying
// one kernel event per page. Costs are indexed by traversal position (not
// page address): slow stretches are a property of where the sweep is in
// time, which is what lets the flusher overtake the application regardless
// of the visit order.
type toucher struct {
	env   sim.Env
	costs []time.Duration // by traversal position, cycled
	pos   int
	batch int
	acc   time.Duration
	cnt   int
}

// newToucher precomputes per-page costs: pageCost +- jitter (uniform in
// [1-jitter, 1+jitter]), plus slow stretches — runs of spikeRun consecutive
// pages costing 4x, covering a spikeP fraction of the region — which model
// the cache/TLB-unfriendly phases real sweeps exhibit. During a slow
// stretch the flusher overtakes the application, which is where AVOIDED
// accesses come from. Costs are deterministic in the seed.
func newToucher(env sim.Env, pages int, pageCost time.Duration, jitter, spikeP float64, spikeRun, batch int, seed uint64) *toucher {
	if batch <= 0 {
		batch = 32
	}
	if spikeRun <= 0 {
		spikeRun = 64
	}
	rng := util.NewRNG(seed)
	costs := make([]time.Duration, pages)
	for i := range costs {
		f := 1.0
		if jitter > 0 {
			f += jitter * (2*rng.Float64() - 1)
		}
		costs[i] = time.Duration(float64(pageCost) * f)
	}
	if spikeP > 0 {
		runs := int(spikeP * float64(pages) / float64(spikeRun))
		if runs < 1 {
			runs = 1
		}
		for r := 0; r < runs; r++ {
			start := rng.Intn(pages)
			for i := start; i < start+spikeRun && i < pages; i++ {
				costs[i] *= 4
			}
		}
	}
	return &toucher{env: env, costs: costs, batch: batch}
}

func (t *toucher) touch(r *pagemem.Region, page int) {
	r.Touch(page)
	t.acc += t.costs[t.pos]
	t.pos++
	if t.pos == len(t.costs) {
		t.pos = 0
	}
	t.cnt++
	if t.cnt >= t.batch {
		t.flush()
	}
}

func (t *toucher) flush() {
	if t.acc > 0 {
		t.env.Sleep(t.acc)
	}
	t.acc, t.cnt = 0, 0
}

// Pattern is the synthetic benchmark's page access order.
type Pattern int

const (
	// Ascending touches pages first to last.
	Ascending Pattern = iota
	// Random uses one fixed random permutation for all iterations.
	Random
	// Descending touches pages last to first.
	Descending
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case Ascending:
		return "Ascending"
	case Random:
		return "Random"
	case Descending:
		return "Descending"
	default:
		return "unknown"
	}
}

// Synthetic is the §4.3 memory-intensive benchmark: a region of Pages
// pages, each iteration touching the full region byte-by-byte in the
// configured order, with a checkpoint every CheckpointEvery iterations.
type Synthetic struct {
	// Pages is the region size in pages (65536 at paper scale: 256 MB of
	// 4 KB pages).
	Pages int
	// Iterations is the total iteration count (39 in the paper).
	Iterations int
	// CheckpointEvery triggers a checkpoint after every N-th iteration
	// (10 in the paper, for 3 checkpoints).
	CheckpointEvery int
	// Pattern is the access order.
	Pattern Pattern
	// PageCost is the mean compute time to transform one page.
	PageCost time.Duration
	// CostJitter is the relative spread of per-page cost (0.3 = +-30%).
	CostJitter float64
	// SpikeP is the probability a page costs 4x (slow stretches).
	SpikeP float64
	// SpikeRun is the length in pages of each slow stretch (default 64).
	SpikeRun int
	// TouchBatch groups page touches per simulated time advance.
	TouchBatch int
	// Seed drives the permutation and the cost jitter.
	Seed uint64
}

// Order returns the per-iteration page visit order.
func (s Synthetic) Order() []int {
	order := make([]int, s.Pages)
	switch s.Pattern {
	case Ascending:
		for i := range order {
			order[i] = i
		}
	case Descending:
		for i := range order {
			order[i] = s.Pages - 1 - i
		}
	case Random:
		copy(order, util.NewRNG(s.Seed^0x5eed).Perm(s.Pages))
	}
	return order
}

// Run executes the benchmark inside an env process. checkpoint is called at
// checkpoint boundaries and may be nil (baseline run without checkpointing).
func (s Synthetic) Run(env sim.Env, r *pagemem.Region, checkpoint func()) {
	order := s.Order()
	t := newToucher(env, s.Pages, s.PageCost, s.CostJitter, s.SpikeP, s.SpikeRun, s.TouchBatch, s.Seed)
	for it := 1; it <= s.Iterations; it++ {
		for _, p := range order {
			t.touch(r, p)
		}
		t.flush()
		if checkpoint != nil && s.CheckpointEvery > 0 && it%s.CheckpointEvery == 0 {
			checkpoint()
		}
	}
}
