package compress

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/util"
)

func roundTrip(t *testing.T, codec Codec, page []byte) []byte {
	t.Helper()
	blob := Encode(codec, page)
	got, err := Decode(blob, len(page))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got, page) {
		t.Fatalf("round trip mismatch for codec %d", codec)
	}
	return blob
}

func TestZeroPageShrinksToOneByte(t *testing.T) {
	page := make([]byte, 4096)
	for _, codec := range []Codec{Zero, Flate} {
		blob := roundTrip(t, codec, page)
		if len(blob) != 1 {
			t.Errorf("codec %d: zero page encoded to %d bytes", codec, len(blob))
		}
	}
}

func TestNoneIsVerbatim(t *testing.T) {
	page := []byte{1, 2, 3, 4}
	blob := roundTrip(t, None, page)
	if len(blob) != 5 {
		t.Errorf("raw blob length %d", len(blob))
	}
}

func TestFlateCompressesRepetitiveContent(t *testing.T) {
	page := bytes.Repeat([]byte("abcdefgh"), 512) // 4 KB, highly compressible
	blob := roundTrip(t, Flate, page)
	if len(blob) >= len(page)/2 {
		t.Errorf("flate blob %d bytes for compressible 4 KB page", len(blob))
	}
}

func TestFlateFallsBackOnIncompressible(t *testing.T) {
	r := util.NewRNG(3)
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(r.Uint64())
	}
	blob := roundTrip(t, Flate, page)
	if len(blob) > len(page)+1 {
		t.Errorf("blob grew to %d bytes (no fallback?)", len(blob))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil, 4096); err == nil {
		t.Error("empty blob accepted")
	}
	if _, err := Decode([]byte{99, 1, 2}, 4096); err == nil {
		t.Error("unknown codec accepted")
	}
	if _, err := Decode([]byte{byte(None), 1, 2}, 4096); err == nil {
		t.Error("truncated raw blob accepted")
	}
	if _, err := Decode([]byte{byte(Zero), 0}, 4096); err == nil {
		t.Error("malformed zero blob accepted")
	}
}

// Property: Decode(Encode(p)) == p for all codecs and arbitrary content.
func TestRoundTripQuick(t *testing.T) {
	f := func(page []byte, c uint8) bool {
		codec := Codec(c % 3)
		blob := Encode(codec, page)
		got, err := Decode(blob, len(page))
		return err == nil && bytes.Equal(got, page)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Into variants round-trip through recycled buffers exactly
// like the allocating entry points, for all codecs and arbitrary content.
func TestIntoRoundTripQuick(t *testing.T) {
	enc := make([]byte, 0, 64<<10)
	dec := make([]byte, 0, 64<<10)
	f := func(page []byte, c uint8) bool {
		codec := Codec(c % 3)
		blob := EncodeInto(codec, page, enc)
		if ref := Encode(codec, page); !bytes.Equal(blob, ref) {
			return false
		}
		got, err := DecodeInto(blob, dec, len(page))
		return err == nil && bytes.Equal(got, page)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeIntoScrubsRecycledBuffer: a zero page decoded into a dirty
// recycled buffer must come back all zero.
func TestDecodeIntoScrubsRecycledBuffer(t *testing.T) {
	dirty := bytes.Repeat([]byte{0xaa}, 4096)
	got, err := DecodeInto([]byte{byte(Zero)}, dirty, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %#x after zero-page decode into dirty buffer", i, b)
		}
	}
}

func TestDecodeRejectsTruncatedFlate(t *testing.T) {
	page := bytes.Repeat([]byte("abcdefgh"), 512)
	blob := Encode(Flate, page)
	if Codec(blob[0]) != Flate {
		t.Skip("content did not take the flate path")
	}
	if _, err := Decode(blob[:len(blob)/2], len(page)); err == nil {
		t.Error("truncated flate blob accepted")
	}
	// A blob inflating past the page size must be rejected too.
	if _, err := Decode(blob, len(page)/2); err == nil {
		t.Error("oversized inflate accepted")
	}
}

// Allocation gates for the steady-state encode/decode paths: with warm
// pools and caller-supplied buffers, zero and incompressible pages must
// encode and decode without allocating. (Compressible flate decode output
// is also covered: the pooled reader state dominates there.)
func TestAllocGateEncodeDecode(t *testing.T) {
	if util.RaceEnabled {
		t.Skip("race mode bypasses sync.Pool; allocation gates do not apply")
	}
	zero := make([]byte, 4096)
	r := util.NewRNG(3)
	incompressible := make([]byte, 4096)
	for i := range incompressible {
		incompressible[i] = byte(r.Uint64())
	}
	buf := make([]byte, 0, 4096+128)
	dec := make([]byte, 0, 4096)
	zeroBlob := Encode(Flate, zero)
	rawBlob := Encode(Flate, incompressible)

	// Warm the codec pools before measuring.
	EncodeInto(Flate, incompressible, buf)
	cases := []struct {
		name string
		f    func()
	}{
		{"encode-zero", func() { EncodeInto(Flate, zero, buf) }},
		{"encode-incompressible", func() { EncodeInto(Flate, incompressible, buf) }},
		{"decode-zero", func() {
			if _, err := DecodeInto(zeroBlob, dec, 4096); err != nil {
				t.Fatal(err)
			}
		}},
		{"decode-incompressible", func() {
			if _, err := DecodeInto(rawBlob, dec, 4096); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(100, tc.f); allocs != 0 {
			t.Errorf("%s: %.2f allocs/op, want 0", tc.name, allocs)
		}
	}
}
