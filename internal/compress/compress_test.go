package compress

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/util"
)

func roundTrip(t *testing.T, codec Codec, page []byte) []byte {
	t.Helper()
	blob := Encode(codec, page)
	got, err := Decode(blob, len(page))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got, page) {
		t.Fatalf("round trip mismatch for codec %d", codec)
	}
	return blob
}

func TestZeroPageShrinksToOneByte(t *testing.T) {
	page := make([]byte, 4096)
	for _, codec := range []Codec{Zero, Flate} {
		blob := roundTrip(t, codec, page)
		if len(blob) != 1 {
			t.Errorf("codec %d: zero page encoded to %d bytes", codec, len(blob))
		}
	}
}

func TestNoneIsVerbatim(t *testing.T) {
	page := []byte{1, 2, 3, 4}
	blob := roundTrip(t, None, page)
	if len(blob) != 5 {
		t.Errorf("raw blob length %d", len(blob))
	}
}

func TestFlateCompressesRepetitiveContent(t *testing.T) {
	page := bytes.Repeat([]byte("abcdefgh"), 512) // 4 KB, highly compressible
	blob := roundTrip(t, Flate, page)
	if len(blob) >= len(page)/2 {
		t.Errorf("flate blob %d bytes for compressible 4 KB page", len(blob))
	}
}

func TestFlateFallsBackOnIncompressible(t *testing.T) {
	r := util.NewRNG(3)
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(r.Uint64())
	}
	blob := roundTrip(t, Flate, page)
	if len(blob) > len(page)+1 {
		t.Errorf("blob grew to %d bytes (no fallback?)", len(blob))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil, 4096); err == nil {
		t.Error("empty blob accepted")
	}
	if _, err := Decode([]byte{99, 1, 2}, 4096); err == nil {
		t.Error("unknown codec accepted")
	}
	if _, err := Decode([]byte{byte(None), 1, 2}, 4096); err == nil {
		t.Error("truncated raw blob accepted")
	}
	if _, err := Decode([]byte{byte(Zero), 0}, 4096); err == nil {
		t.Error("malformed zero blob accepted")
	}
}

// Property: Decode(Encode(p)) == p for all codecs and arbitrary content.
func TestRoundTripQuick(t *testing.T) {
	f := func(page []byte, c uint8) bool {
		codec := Codec(c % 3)
		blob := Encode(codec, page)
		got, err := Decode(blob, len(page))
		return err == nil && bytes.Equal(got, page)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
