// Package compress provides page-image compression for checkpoint streams.
// The paper notes that incremental checkpointing composes with compression
// (ref [26]); this package supplies the two codecs relevant to HPC memory
// images: zero-page elimination (scientific arrays are sparse right after
// allocation) and DEFLATE for general content. Codecs are self-describing:
// the first output byte names the codec so Decode needs no side channel.
package compress

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// Codec identifies a compression algorithm.
type Codec byte

const (
	// None stores the page verbatim.
	None Codec = 0
	// Zero encodes an all-zero page in one byte.
	Zero Codec = 1
	// Flate applies DEFLATE (fastest level) and falls back to None when
	// compression does not help.
	Flate Codec = 2
)

// Encode compresses page with the requested codec and returns a
// self-describing blob. Encode never fails: codecs that cannot shrink the
// input fall back to a verbatim encoding.
func Encode(codec Codec, page []byte) []byte {
	switch codec {
	case None:
		return encodeRaw(page)
	case Zero, Flate:
		if isZero(page) {
			return []byte{byte(Zero)}
		}
		if codec == Zero {
			return encodeRaw(page)
		}
		var buf bytes.Buffer
		buf.WriteByte(byte(Flate))
		w, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return encodeRaw(page)
		}
		if _, err := w.Write(page); err != nil {
			return encodeRaw(page)
		}
		if err := w.Close(); err != nil {
			return encodeRaw(page)
		}
		if buf.Len() >= len(page)+1 {
			return encodeRaw(page)
		}
		return buf.Bytes()
	default:
		panic(fmt.Sprintf("compress: unknown codec %d", codec))
	}
}

func encodeRaw(page []byte) []byte {
	out := make([]byte, 1+len(page))
	out[0] = byte(None)
	copy(out[1:], page)
	return out
}

// Decode reverses Encode. pageSize is the expected decoded length and is
// validated.
func Decode(blob []byte, pageSize int) ([]byte, error) {
	if len(blob) == 0 {
		return nil, fmt.Errorf("compress: empty blob")
	}
	switch Codec(blob[0]) {
	case None:
		if len(blob)-1 != pageSize {
			return nil, fmt.Errorf("compress: raw blob is %d bytes, want %d", len(blob)-1, pageSize)
		}
		out := make([]byte, pageSize)
		copy(out, blob[1:])
		return out, nil
	case Zero:
		if len(blob) != 1 {
			return nil, fmt.Errorf("compress: malformed zero-page blob")
		}
		return make([]byte, pageSize), nil
	case Flate:
		r := flate.NewReader(bytes.NewReader(blob[1:]))
		defer r.Close()
		out := make([]byte, 0, pageSize)
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("compress: inflate: %w", err)
			}
			if len(out) > pageSize {
				return nil, fmt.Errorf("compress: inflated size exceeds page size %d", pageSize)
			}
		}
		if len(out) != pageSize {
			return nil, fmt.Errorf("compress: inflated to %d bytes, want %d", len(out), pageSize)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("compress: unknown codec byte %d", blob[0])
	}
}

func isZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}
