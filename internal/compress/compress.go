// Package compress provides page-image compression for checkpoint streams.
// The paper notes that incremental checkpointing composes with compression
// (ref [26]); this package supplies the two codecs relevant to HPC memory
// images: zero-page elimination (scientific arrays are sparse right after
// allocation) and DEFLATE for general content. Codecs are self-describing:
// the first output byte names the codec so Decode needs no side channel.
//
// The codecs are built for the asynchronous commit path, which encodes and
// decodes millions of short-lived pages: DEFLATE writer and reader state
// (hundreds of KB each) is pooled and Reset between pages, and the Into
// variants write into caller-supplied buffers, so the steady-state encode
// and decode paths allocate nothing.
package compress

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Codec identifies a compression algorithm.
type Codec byte

const (
	// None stores the page verbatim.
	None Codec = 0
	// Zero encodes an all-zero page in one byte.
	Zero Codec = 1
	// Flate applies DEFLATE (fastest level) and falls back to None when
	// compression does not help.
	Flate Codec = 2
)

// sliceWriter is an io.Writer appending to a byte slice; the pooled flate
// writers are Reset onto one so DEFLATE output lands directly in the
// caller's buffer.
type sliceWriter struct{ buf []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// flateEncoder bundles a reusable DEFLATE writer with its output sink. A
// flate.Writer holds ~600 KB of window and hash-chain state; constructing
// one per page dwarfed the cost of the compression itself.
type flateEncoder struct {
	sw sliceWriter
	w  *flate.Writer
}

var encPool = sync.Pool{New: func() any {
	e := &flateEncoder{}
	w, err := flate.NewWriter(&e.sw, flate.BestSpeed)
	if err != nil {
		panic(fmt.Sprintf("compress: flate.NewWriter: %v", err))
	}
	e.w = w
	return e
}}

// flateDecoder bundles a reusable DEFLATE reader with its input source.
type flateDecoder struct {
	br bytes.Reader
	r  io.ReadCloser
}

var decPool = sync.Pool{New: func() any {
	d := &flateDecoder{}
	d.br.Reset(nil)
	d.r = flate.NewReader(&d.br)
	return d
}}

// Encode compresses page with the requested codec and returns a
// self-describing blob in freshly allocated memory. Encode never fails:
// codecs that cannot shrink the input fall back to a verbatim encoding.
func Encode(codec Codec, page []byte) []byte {
	return EncodeInto(codec, page, nil)
}

// EncodeInto is Encode writing into dst's backing array (dst's length is
// ignored). The returned slice aliases dst when its capacity suffices —
// 1+len(page) bytes for the verbatim fallback, a few spare bytes more for
// DEFLATE's worst case — and is freshly grown otherwise, so a pooled buffer
// of cap >= len(page)+64 makes steady-state encoding allocation-free. The
// caller owns both dst and the result.
//
//aickpt:hotpath
func EncodeInto(codec Codec, page []byte, dst []byte) []byte {
	dst = dst[:0]
	switch codec {
	case None:
		return encodeRawInto(page, dst)
	case Zero, Flate:
		if isZero(page) {
			return append(dst, byte(Zero))
		}
		if codec == Zero {
			return encodeRawInto(page, dst)
		}
		e := encPool.Get().(*flateEncoder)
		e.sw.buf = append(dst, byte(Flate))
		e.w.Reset(&e.sw)
		_, err := e.w.Write(page)
		if err == nil {
			err = e.w.Close()
		}
		out := e.sw.buf
		e.sw.buf = nil
		encPool.Put(e)
		if err != nil || len(out) >= len(page)+1 {
			return encodeRawInto(page, out)
		}
		return out
	default:
		panic(fmt.Sprintf("compress: unknown codec %d", codec))
	}
}

func encodeRawInto(page, dst []byte) []byte {
	dst = append(dst[:0], byte(None))
	return append(dst, page...)
}

// Decode reverses Encode into freshly allocated memory. pageSize is the
// expected decoded length and is validated.
func Decode(blob []byte, pageSize int) ([]byte, error) {
	return DecodeInto(blob, nil, pageSize)
}

// DecodeInto is Decode writing into dst's backing array (dst's length is
// ignored). The returned slice aliases dst when cap(dst) >= pageSize and is
// freshly allocated otherwise; with a recycled buffer the steady-state
// decode path allocates nothing. The caller owns both dst and the result.
//
//aickpt:hotpath
func DecodeInto(blob []byte, dst []byte, pageSize int) ([]byte, error) {
	if len(blob) == 0 {
		return nil, fmt.Errorf("compress: empty blob")
	}
	switch Codec(blob[0]) {
	case None:
		if len(blob)-1 != pageSize {
			return nil, fmt.Errorf("compress: raw blob is %d bytes, want %d", len(blob)-1, pageSize)
		}
		return append(dst[:0], blob[1:]...), nil
	case Zero:
		if len(blob) != 1 {
			return nil, fmt.Errorf("compress: malformed zero-page blob")
		}
		out := grow(dst, pageSize)
		clear(out)
		return out, nil
	case Flate:
		out := grow(dst, pageSize)
		d := decPool.Get().(*flateDecoder)
		d.br.Reset(blob[1:])
		if err := d.r.(flate.Resetter).Reset(&d.br, nil); err != nil {
			decPool.Put(d)
			return nil, fmt.Errorf("compress: inflate: %w", err)
		}
		n, err := io.ReadFull(d.r, out)
		switch err {
		case nil:
			// Page filled; any further output means the blob inflates past
			// the page size.
			var spill [1]byte
			if k, _ := d.r.Read(spill[:]); k > 0 {
				decPool.Put(d)
				return nil, fmt.Errorf("compress: inflated size exceeds page size %d", pageSize)
			}
		case io.ErrUnexpectedEOF, io.EOF:
			decPool.Put(d)
			return nil, fmt.Errorf("compress: inflated to %d bytes, want %d", n, pageSize)
		default:
			decPool.Put(d)
			return nil, fmt.Errorf("compress: inflate: %w", err)
		}
		decPool.Put(d)
		return out, nil
	default:
		return nil, fmt.Errorf("compress: unknown codec byte %d", blob[0])
	}
}

// grow returns a slice of length n over dst's backing array, allocating
// only when dst's capacity is insufficient.
func grow(dst []byte, n int) []byte {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]byte, n)
}

func isZero(p []byte) bool {
	for len(p) >= 8 {
		if binary.LittleEndian.Uint64(p) != 0 {
			return false
		}
		p = p[8:]
	}
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}
