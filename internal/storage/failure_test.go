package storage

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
)

// failAfter fails every call once n successful calls have happened. The
// call counter is guarded so failure injection stays deterministic ("the
// first n calls succeed") under concurrent committer workers.
type failAfter struct {
	memSink
	ok   int
	fail error

	callMu sync.Mutex
	calls  int
}

func newFailAfter(ok int) *failAfter {
	return &failAfter{ok: ok, fail: errors.New("injected backend failure")}
}

func (f *failAfter) take() bool {
	f.callMu.Lock()
	defer f.callMu.Unlock()
	f.calls++
	return f.calls <= f.ok
}

func (f *failAfter) WritePage(epoch uint64, page int, data []byte, size int) error {
	if !f.take() {
		return f.fail
	}
	return f.memSink.WritePage(epoch, page, data, size)
}

func (f *failAfter) EndEpoch(epoch uint64) error {
	if !f.take() {
		return f.fail
	}
	return f.memSink.EndEpoch(epoch)
}

func TestErasureStoreShardWriteFailureIsAttributed(t *testing.T) {
	const k, m, pageSize = 2, 1, 64
	bad := newFailAfter(0)
	backends := []Backend{newMemSink(), bad, newMemSink()}
	es, err := NewErasureStore(k, m, pageSize, backends)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{5}, pageSize)
	err = es.WritePage(1, 0, data, pageSize)
	if err == nil {
		t.Fatal("failing shard backend not surfaced")
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Errorf("error %q does not name the failing shard", err)
	}
	if !errors.Is(err, bad.fail) {
		t.Errorf("error %q does not wrap the backend failure", err)
	}
	if err := es.EndEpoch(1); err == nil {
		t.Error("failing shard seal not surfaced")
	} else if !strings.Contains(err.Error(), "shard 1") {
		t.Errorf("seal error %q does not name the failing shard", err)
	}
}

func TestErasureStorePhantomShardWriteFailure(t *testing.T) {
	const k, m = 2, 1
	backends := []Backend{newMemSink(), newMemSink(), newFailAfter(0)}
	es, err := NewErasureStore(k, m, 4096, backends)
	if err != nil {
		t.Fatal(err)
	}
	if err := es.WritePage(1, 0, nil, 4096); err == nil {
		t.Error("phantom write to failing shard backend not surfaced")
	} else if !strings.Contains(err.Error(), "shard 2") {
		t.Errorf("error %q does not name the failing shard", err)
	}
}

func TestErasureStoreReconstructMissingDataAndParityMixes(t *testing.T) {
	const k, m, pageSize = 3, 2, 48
	sinks := make([]*memSink, k+m)
	backends := make([]Backend, k+m)
	for i := range sinks {
		sinks[i] = newMemSink()
		backends[i] = sinks[i]
	}
	es, err := NewErasureStore(k, m, pageSize, backends)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, pageSize)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	if err := es.WritePage(2, 9, data, pageSize); err != nil {
		t.Fatal(err)
	}
	// Every way of losing exactly m=2 shards must reconstruct.
	for a := 0; a < k+m; a++ {
		for b := a + 1; b < k+m; b++ {
			got, err := es.Reconstruct(func(i int) []byte {
				if i == a || i == b {
					return nil
				}
				return sinks[i].pages[[2]uint64{2, 9}]
			})
			if err != nil {
				t.Fatalf("lose shards %d,%d: %v", a, b, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("lose shards %d,%d: reconstruction mismatch", a, b)
			}
		}
	}
	// All shards missing is a hard failure.
	if _, err := es.Reconstruct(func(int) []byte { return nil }); err == nil {
		t.Error("expected failure with all shards lost")
	}
	// A truncated surviving shard (inconsistent sizes) must be rejected,
	// not silently decoded.
	if _, err := es.Reconstruct(func(i int) []byte {
		s := sinks[i].pages[[2]uint64{2, 9}]
		if i == 0 {
			return s[:len(s)-1]
		}
		return s
	}); err == nil {
		t.Error("expected failure with inconsistent shard sizes")
	}
}

func TestReplicatedStoreFailingReplicaIsAttributed(t *testing.T) {
	good := newMemSink()
	// The replica dies after absorbing one page and its seal.
	flaky := newFailAfter(2)
	rs := &ReplicatedStore{Replicas: []Backend{good, flaky}}
	data := []byte{1, 2, 3, 4}
	if err := rs.WritePage(1, 0, data, len(data)); err != nil {
		t.Fatal(err)
	}
	if err := rs.EndEpoch(1); err != nil {
		t.Fatal(err)
	}
	err := rs.WritePage(2, 0, data, len(data))
	if err == nil {
		t.Fatal("dead replica not surfaced")
	}
	if !strings.Contains(err.Error(), "replica 1") {
		t.Errorf("error %q does not name the failing replica", err)
	}
	if !errors.Is(err, flaky.fail) {
		t.Errorf("error %q does not wrap the replica failure", err)
	}
	if err := rs.EndEpoch(2); err == nil {
		t.Error("dead replica seal not surfaced")
	} else if !strings.Contains(err.Error(), "replica 1") {
		t.Errorf("seal error %q does not name the failing replica", err)
	}
	// The healthy replica keeps a complete epoch 1 either way.
	if !bytes.Equal(good.pages[[2]uint64{1, 0}], data) || len(good.sealed) == 0 || good.sealed[0] != 1 {
		t.Error("healthy replica lost epoch 1")
	}
}
