package storage

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/compress"
)

// The Backend concurrency contract: WritePage may be called concurrently
// for pages of one epoch. Drive a realistic decorator stack — tracing over
// compression over replication over erasure coding — with many goroutines
// and verify, under the race detector, that every page survives the trip.
func TestDecoratorStackConcurrentWriters(t *testing.T) {
	const k, m, pageSize, nPages, writers = 3, 2, 256, 128, 8
	sinks := make([]*memSink, k+m)
	backends := make([]Backend, k+m)
	for i := range sinks {
		sinks[i] = newMemSink()
		backends[i] = sinks[i]
	}
	es, err := NewErasureStore(k, m, pageSize+1, backends) // +1: codec header
	if err != nil {
		t.Fatal(err)
	}
	replicaSink := newMemSink()
	stack := &TracingStore{Next: &CompressingStore{
		Codec: compress.Zero,
		Next:  &ReplicatedStore{Replicas: []Backend{replicaSink, es}},
	}}

	content := func(p int) []byte {
		data := make([]byte, pageSize)
		for i := range data {
			data[i] = byte(p*17 + i%251)
		}
		return data
	}
	var wg sync.WaitGroup
	pagesCh := make(chan int)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range pagesCh {
				if err := stack.WritePage(1, p, content(p), pageSize); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for p := 0; p < nPages; p++ {
		pagesCh <- p
	}
	close(pagesCh)
	wg.Wait()
	if err := stack.EndEpoch(1); err != nil {
		t.Fatal(err)
	}

	if got := len(stack.Commits()); got != nPages {
		t.Fatalf("traced %d commits, want %d", got, nPages)
	}
	for p := 0; p < nPages; p++ {
		blob := replicaSink.page(1, p)
		got, err := compress.Decode(blob, pageSize)
		if err != nil {
			t.Fatalf("page %d: %v", p, err)
		}
		if !bytes.Equal(got, content(p)) {
			t.Fatalf("page %d: replicated content mismatch", p)
		}
		rec, err := es.Reconstruct(func(i int) []byte {
			if i == 0 || i == k+m-1 { // lose one data and one parity shard
				return nil
			}
			return sinks[i].page(1, p)
		})
		if err != nil {
			t.Fatalf("page %d: reconstruct: %v", p, err)
		}
		dec, err := compress.Decode(rec, pageSize)
		if err != nil {
			t.Fatalf("page %d: decode reconstructed: %v", p, err)
		}
		if !bytes.Equal(dec, content(p)) {
			t.Fatalf("page %d: reconstructed content mismatch", p)
		}
	}
}
