package storage

import (
	"repro/internal/netsim"
)

// SimDisk models a node-local disk: every page write serializes on the
// disk's link (bandwidth + per-request overhead). All processes of a node
// share the same SimDisk, so their checkpoint streams contend — this is the
// Shamrock/MILC configuration of the paper. Concurrent WritePage calls are
// safe: all mutable state (queueing and usage counters) lives in the Link,
// which guards it with its Env mutex.
type SimDisk struct {
	link *netsim.Link
	// Next optionally receives the page after its cost is modeled, so a
	// simulation can also persist real bytes (e.g. into a repository).
	Next Backend
}

// NewSimDisk returns a disk backed by the given link.
func NewSimDisk(link *netsim.Link) *SimDisk { return &SimDisk{link: link} }

// WritePage implements Backend.
func (d *SimDisk) WritePage(epoch uint64, page int, data []byte, size int) error {
	d.link.Transfer(int64(size))
	if d.Next != nil {
		return d.Next.WritePage(epoch, page, data, size)
	}
	return nil
}

// EndEpoch implements Backend.
func (d *SimDisk) EndEpoch(epoch uint64) error {
	if d.Next != nil {
		return d.Next.EndEpoch(epoch)
	}
	return nil
}

// ReadPage implements PageReader: reads occupy the disk link exactly like
// writes (the medium is symmetric at this model's granularity).
func (d *SimDisk) ReadPage(epoch uint64, page int, size int) error {
	d.link.Transfer(int64(size))
	return nil
}

// Link exposes the underlying link for stats.
func (d *SimDisk) Link() *netsim.Link { return d.link }

// SimPFS models a PVFS-like parallel file system: a page write first
// serializes on the writing node's NIC (shared with application traffic),
// then on one of the storage servers, selected by striping the page index.
// Per-request overhead on the servers reproduces the paper's small-write
// penalty: at 4 KB pages the request cost dominates, so server pressure
// grows with the process count — the effect behind the sharp sync curve in
// Figure 3(a). This is the Grid'5000/CM1 configuration.
//
// Striping is a pure function of the page index, so concurrent WritePage
// calls share no mutable state beyond the links, which serialize access
// internally — parallel committer workers writing different pages occupy
// different servers concurrently, which is exactly how a striped PFS
// aggregates bandwidth.
type SimPFS struct {
	nic     *netsim.Link // may be nil (no client-side NIC modeled)
	servers []*netsim.Link
}

// NewSimPFS returns a parallel file system client. nic may be nil; servers
// must be non-empty and are shared across all clients of the deployment.
func NewSimPFS(nic *netsim.Link, servers []*netsim.Link) *SimPFS {
	if len(servers) == 0 {
		panic("storage: SimPFS needs at least one server")
	}
	return &SimPFS{nic: nic, servers: servers}
}

// WritePage implements Backend.
func (p *SimPFS) WritePage(epoch uint64, page int, data []byte, size int) error {
	if p.nic != nil {
		p.nic.Transfer(int64(size))
	}
	srv := p.servers[page%len(p.servers)]
	srv.Transfer(int64(size))
	return nil
}

// EndEpoch implements Backend.
func (p *SimPFS) EndEpoch(epoch uint64) error { return nil }

// ReadPage implements PageReader: a read serializes on the client NIC and
// the page's stripe server just like a write, so concurrent restore
// readers touching different pages aggregate server bandwidth the same way
// parallel writers do.
func (p *SimPFS) ReadPage(epoch uint64, page int, size int) error {
	if p.nic != nil {
		p.nic.Transfer(int64(size))
	}
	p.servers[page%len(p.servers)].Transfer(int64(size))
	return nil
}
