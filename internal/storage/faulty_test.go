package storage

import (
	"errors"
	"fmt"
	"testing"
)

func TestFaultyStoreTransientAndDead(t *testing.T) {
	boom := fmt.Errorf("flaky")
	f := &FaultyStore{Next: NullStore{}, FailOps: map[int64]error{2: boom}, DeadAfterOp: 4}
	if err := f.WritePage(1, 0, nil, 8); err != nil { // op 1
		t.Fatal(err)
	}
	if err := f.WritePage(1, 1, nil, 8); !errors.Is(err, boom) { // op 2: transient
		t.Fatalf("op 2: %v, want flaky", err)
	}
	if err := f.EndEpoch(1); err != nil { // op 3: recovered
		t.Fatal(err)
	}
	if err := f.WritePage(2, 0, nil, 8); err != nil { // op 4: last live op
		t.Fatal(err)
	}
	if err := f.EndEpoch(2); !errors.Is(err, ErrStoreDead) { // op 5: dead
		t.Fatalf("op 5: %v, want dead", err)
	}
	if err := f.WritePage(3, 0, nil, 8); !errors.Is(err, ErrStoreDead) {
		t.Fatalf("op 6: %v, want dead", err)
	}
	if f.Ops() != 6 {
		t.Fatalf("ops = %d, want 6", f.Ops())
	}
}
