package storage

import (
	"fmt"
	"sync"

	"repro/internal/compress"
	"repro/internal/erasure"
)

// CompressingStore compresses page images before forwarding them. When the
// underlying backend only models timing (phantom data), the store forwards
// the original size, since no bytes exist to compress. It is stateless and
// therefore safe for concurrent WritePage calls whenever Next is.
type CompressingStore struct {
	Codec compress.Codec
	Next  Backend
}

// WritePage implements Backend.
func (c *CompressingStore) WritePage(epoch uint64, page int, data []byte, size int) error {
	if data == nil {
		return c.Next.WritePage(epoch, page, nil, size)
	}
	blob := compress.Encode(c.Codec, data)
	return c.Next.WritePage(epoch, page, blob, len(blob))
}

// EndEpoch implements Backend.
func (c *CompressingStore) EndEpoch(epoch uint64) error { return c.Next.EndEpoch(epoch) }

// ReplicatedStore writes every page to all replicas, the straightforward
// remedy the paper mentions for unreliable node-local storage. It holds no
// state of its own: concurrent WritePage calls are safe whenever every
// replica honors the Backend concurrency contract.
type ReplicatedStore struct {
	Replicas []Backend
}

// WritePage implements Backend.
func (r *ReplicatedStore) WritePage(epoch uint64, page int, data []byte, size int) error {
	for i, b := range r.Replicas {
		if err := b.WritePage(epoch, page, data, size); err != nil {
			return fmt.Errorf("storage: replica %d: %w", i, err)
		}
	}
	return nil
}

// EndEpoch implements Backend.
func (r *ReplicatedStore) EndEpoch(epoch uint64) error {
	for i, b := range r.Replicas {
		if err := b.EndEpoch(epoch); err != nil {
			return fmt.Errorf("storage: replica %d: %w", i, err)
		}
	}
	return nil
}

// ErasureStore splits each page into k data + m parity shards
// (Reed-Solomon) and spreads them over k+m backends, the cost-effective
// alternative to replication from the paper's §3.2 (ref [18]). Any k
// surviving backends can reconstruct every page. Its fields are immutable
// after construction (the coder's tables are read-only), so concurrent
// WritePage calls are safe whenever the shard backends honor the Backend
// concurrency contract.
type ErasureStore struct {
	coder    *erasure.Coder
	backends []Backend
	pageSize int
}

// NewErasureStore builds an erasure-coded store over len(backends) = k+m
// targets.
func NewErasureStore(k, m, pageSize int, backends []Backend) (*ErasureStore, error) {
	if len(backends) != k+m {
		return nil, fmt.Errorf("storage: erasure store needs %d backends, got %d", k+m, len(backends))
	}
	return &ErasureStore{coder: erasure.New(k, m), backends: backends, pageSize: pageSize}, nil
}

// WritePage implements Backend.
func (e *ErasureStore) WritePage(epoch uint64, page int, data []byte, size int) error {
	if data == nil {
		// Timing-only mode: each backend receives its shard-sized slice
		// of the write.
		shardSize := (size + e.coder.K() - 1) / e.coder.K()
		for i, b := range e.backends {
			if err := b.WritePage(epoch, page, nil, shardSize); err != nil {
				return fmt.Errorf("storage: shard %d: %w", i, err)
			}
		}
		return nil
	}
	shards := e.coder.Encode(data)
	for i, b := range e.backends {
		if err := b.WritePage(epoch, page, shards[i], len(shards[i])); err != nil {
			return fmt.Errorf("storage: shard %d: %w", i, err)
		}
	}
	return nil
}

// EndEpoch implements Backend.
func (e *ErasureStore) EndEpoch(epoch uint64) error {
	for i, b := range e.backends {
		if err := b.EndEpoch(epoch); err != nil {
			return fmt.Errorf("storage: shard %d: %w", i, err)
		}
	}
	return nil
}

// FaultyStore injects deterministic failures into a backend pipeline: a
// 1-based operation counter over WritePage/EndEpoch calls, with individual
// operations failing per plan and an optional hard-stop index after which
// every operation fails — the storage-decorator counterpart of
// internal/faultfs, for fault testing pipelines that do not bottom out in
// a ckpt.FS. Counting is mutex-serialized, so it composes with concurrent
// committer workers (the op→call mapping is deterministic only under the
// virtual-time kernel's scheduler).
type FaultyStore struct {
	Next Backend
	// FailOps fails individual operations transiently without forwarding.
	FailOps map[int64]error
	// DeadAfterOp fails every operation with an index greater than it
	// (0 = never): a crash-stopped or unreachable backend.
	DeadAfterOp int64

	mu  sync.Mutex
	ops int64
}

// ErrStoreDead is returned by every FaultyStore operation past DeadAfterOp.
var ErrStoreDead = fmt.Errorf("storage: backend dead (fault injection)")

func (f *FaultyStore) step() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if f.DeadAfterOp != 0 && f.ops > f.DeadAfterOp {
		return ErrStoreDead
	}
	if err, ok := f.FailOps[f.ops]; ok {
		return err
	}
	return nil
}

// Ops returns the number of operations counted so far.
func (f *FaultyStore) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// WritePage implements Backend.
func (f *FaultyStore) WritePage(epoch uint64, page int, data []byte, size int) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.Next.WritePage(epoch, page, data, size)
}

// EndEpoch implements Backend.
func (f *FaultyStore) EndEpoch(epoch uint64) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.Next.EndEpoch(epoch)
}

// Reconstruct reads one page's shards back from PageReader backends
// (shardAt(i) returning nil marks backend i as failed) and decodes the
// original image of length pageSize.
func (e *ErasureStore) Reconstruct(shardAt func(i int) []byte) ([]byte, error) {
	shards := make([][]byte, len(e.backends))
	for i := range shards {
		shards[i] = shardAt(i)
	}
	return e.coder.Decode(shards, e.pageSize)
}
