package storage

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/erasure"
)

// CompressingStore compresses page images before forwarding them. When the
// underlying backend only models timing (phantom data), the store forwards
// the original size, since no bytes exist to compress. It is stateless and
// therefore safe for concurrent WritePage calls whenever Next is.
type CompressingStore struct {
	Codec compress.Codec
	Next  Backend
}

// WritePage implements Backend.
func (c *CompressingStore) WritePage(epoch uint64, page int, data []byte, size int) error {
	if data == nil {
		return c.Next.WritePage(epoch, page, nil, size)
	}
	blob := compress.Encode(c.Codec, data)
	return c.Next.WritePage(epoch, page, blob, len(blob))
}

// EndEpoch implements Backend.
func (c *CompressingStore) EndEpoch(epoch uint64) error { return c.Next.EndEpoch(epoch) }

// ReplicatedStore writes every page to all replicas, the straightforward
// remedy the paper mentions for unreliable node-local storage. It holds no
// state of its own: concurrent WritePage calls are safe whenever every
// replica honors the Backend concurrency contract.
type ReplicatedStore struct {
	Replicas []Backend
}

// WritePage implements Backend.
func (r *ReplicatedStore) WritePage(epoch uint64, page int, data []byte, size int) error {
	for i, b := range r.Replicas {
		if err := b.WritePage(epoch, page, data, size); err != nil {
			return fmt.Errorf("storage: replica %d: %w", i, err)
		}
	}
	return nil
}

// EndEpoch implements Backend.
func (r *ReplicatedStore) EndEpoch(epoch uint64) error {
	for i, b := range r.Replicas {
		if err := b.EndEpoch(epoch); err != nil {
			return fmt.Errorf("storage: replica %d: %w", i, err)
		}
	}
	return nil
}

// ErasureStore splits each page into k data + m parity shards
// (Reed-Solomon) and spreads them over k+m backends, the cost-effective
// alternative to replication from the paper's §3.2 (ref [18]). Any k
// surviving backends can reconstruct every page. Its fields are immutable
// after construction (the coder's tables are read-only), so concurrent
// WritePage calls are safe whenever the shard backends honor the Backend
// concurrency contract.
type ErasureStore struct {
	coder    *erasure.Coder
	backends []Backend
	pageSize int
}

// NewErasureStore builds an erasure-coded store over len(backends) = k+m
// targets.
func NewErasureStore(k, m, pageSize int, backends []Backend) (*ErasureStore, error) {
	if len(backends) != k+m {
		return nil, fmt.Errorf("storage: erasure store needs %d backends, got %d", k+m, len(backends))
	}
	return &ErasureStore{coder: erasure.New(k, m), backends: backends, pageSize: pageSize}, nil
}

// WritePage implements Backend.
func (e *ErasureStore) WritePage(epoch uint64, page int, data []byte, size int) error {
	if data == nil {
		// Timing-only mode: each backend receives its shard-sized slice
		// of the write.
		shardSize := (size + e.coder.K() - 1) / e.coder.K()
		for i, b := range e.backends {
			if err := b.WritePage(epoch, page, nil, shardSize); err != nil {
				return fmt.Errorf("storage: shard %d: %w", i, err)
			}
		}
		return nil
	}
	shards := e.coder.Encode(data)
	for i, b := range e.backends {
		if err := b.WritePage(epoch, page, shards[i], len(shards[i])); err != nil {
			return fmt.Errorf("storage: shard %d: %w", i, err)
		}
	}
	return nil
}

// EndEpoch implements Backend.
func (e *ErasureStore) EndEpoch(epoch uint64) error {
	for i, b := range e.backends {
		if err := b.EndEpoch(epoch); err != nil {
			return fmt.Errorf("storage: shard %d: %w", i, err)
		}
	}
	return nil
}

// Reconstruct reads one page's shards back from PageReader backends
// (shardAt(i) returning nil marks backend i as failed) and decodes the
// original image of length pageSize.
func (e *ErasureStore) Reconstruct(shardAt func(i int) []byte) ([]byte, error) {
	shards := make([][]byte, len(e.backends))
	for i := range shards {
		shards[i] = shardAt(i)
	}
	return e.coder.Decode(shards, e.pageSize)
}
