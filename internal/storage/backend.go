// Package storage defines where checkpointed pages go. The page manager's
// committer writes through the Backend interface, which has persistent
// implementations (see internal/ckpt for the on-disk repository) and
// virtual-time implementations modeling the paper's testbeds: a local SATA
// disk (SimDisk) and a PVFS-like parallel file system striped over storage
// servers (SimPFS). Decorators add replication, erasure coding and
// compression on top of any Backend.
package storage

import "sync"

// Backend persists page images produced by checkpointing.
//
// Concurrency contract: WritePage may be called concurrently for pages of
// the same epoch — the page manager's parallel commit pipeline runs
// several committer workers against one Backend — so implementations must
// synchronize any shared mutable state. Each (epoch, page) pair is written
// at most once per epoch, EndEpoch(e) is never concurrent with
// WritePage(e, ...) (the pipeline's epoch-end barrier orders every page
// write before the seal), and epochs are sealed in order; implementations
// may reject interleaved writes for two different epochs. The data slice
// is only valid for the duration of the call: a backend that retains page
// content past its return must copy it. This is not theoretical — the
// page manager recycles COW page copies into a buffer pool as soon as
// WritePage returns, and the repository hands pooled encode buffers back
// the same way, so a retained slice WILL be overwritten.
//
// Every Backend in this package and internal/ckpt honors this contract;
// decorators require it of the backends they wrap.
type Backend interface {
	// WritePage persists one page image for the given epoch. size is the
	// logical page size in bytes; data holds the image and may be nil in
	// phantom simulations where only timing is modeled (in that case
	// implementations must still account for size bytes).
	WritePage(epoch uint64, page int, data []byte, size int) error
	// EndEpoch seals an epoch after its last page has been written.
	EndEpoch(epoch uint64) error
}

// PageReader models the read-side cost of a medium: ReadPage accounts for
// fetching size bytes of one page (occupying the same simulated links a
// write would). Timing backends implement it so restore paths can charge
// reads in virtual time; read charging is opt-in at the tier level to keep
// the virtual timelines of write-side simulations unchanged.
type PageReader interface {
	ReadPage(epoch uint64, page int, size int) error
}

// NullStore discards everything instantly. It isolates the page-manager
// algorithm from I/O in microbenchmarks.
type NullStore struct{}

// WritePage implements Backend.
func (NullStore) WritePage(epoch uint64, page int, data []byte, size int) error { return nil }

// EndEpoch implements Backend.
func (NullStore) EndEpoch(epoch uint64) error { return nil }

// Commit records one page write observed by a TracingStore.
type Commit struct {
	Epoch uint64
	Page  int
	Size  int
}

// TracingStore records the exact order of page commits; tests use it to
// assert flush-order policies. It optionally forwards to a next Backend.
// The trace is guarded, so concurrent committer workers may share one.
type TracingStore struct {
	Next Backend

	mu      sync.Mutex
	commits []Commit
	sealed  []uint64
}

// WritePage implements Backend.
func (t *TracingStore) WritePage(epoch uint64, page int, data []byte, size int) error {
	t.mu.Lock()
	t.commits = append(t.commits, Commit{Epoch: epoch, Page: page, Size: size})
	t.mu.Unlock()
	if t.Next != nil {
		return t.Next.WritePage(epoch, page, data, size)
	}
	return nil
}

// EndEpoch implements Backend.
func (t *TracingStore) EndEpoch(epoch uint64) error {
	t.mu.Lock()
	t.sealed = append(t.sealed, epoch)
	t.mu.Unlock()
	if t.Next != nil {
		return t.Next.EndEpoch(epoch)
	}
	return nil
}

// Commits returns a copy of the observed commit sequence.
func (t *TracingStore) Commits() []Commit {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Commit, len(t.commits))
	copy(out, t.commits)
	return out
}

// Sealed returns the epochs sealed so far, in order.
func (t *TracingStore) Sealed() []uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]uint64, len(t.sealed))
	copy(out, t.sealed)
	return out
}

// Reset clears recorded history.
func (t *TracingStore) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.commits = nil
	t.sealed = nil
}
