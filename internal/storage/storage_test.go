package storage

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/compress"
	"repro/internal/util"
)

// memSink records pages per backend for decorator tests. Like every real
// Backend it guards its state: decorators are exercised with concurrent
// committer workers.
type memSink struct {
	mu     sync.Mutex
	pages  map[[2]uint64][]byte // (epoch, page) -> data
	sizes  []int
	sealed []uint64
	err    error
}

func newMemSink() *memSink { return &memSink{pages: map[[2]uint64][]byte{}} }

func (m *memSink) WritePage(epoch uint64, page int, data []byte, size int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	if m.pages == nil {
		m.pages = map[[2]uint64][]byte{}
	}
	cp := append([]byte(nil), data...)
	m.pages[[2]uint64{epoch, uint64(page)}] = cp
	m.sizes = append(m.sizes, size)
	return nil
}

func (m *memSink) EndEpoch(epoch uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	m.sealed = append(m.sealed, epoch)
	return nil
}

// page returns the recorded content of (epoch, page).
func (m *memSink) page(epoch uint64, page int) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pages[[2]uint64{epoch, uint64(page)}]
}

func (m *memSink) setErr(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.err = err
}

func TestTracingStoreRecordsOrder(t *testing.T) {
	tr := &TracingStore{}
	tr.WritePage(1, 5, nil, 4096)
	tr.WritePage(1, 2, nil, 4096)
	tr.EndEpoch(1)
	commits := tr.Commits()
	if len(commits) != 2 || commits[0].Page != 5 || commits[1].Page != 2 {
		t.Errorf("commits = %+v", commits)
	}
	if sealed := tr.Sealed(); len(sealed) != 1 || sealed[0] != 1 {
		t.Errorf("sealed = %v", sealed)
	}
	tr.Reset()
	if len(tr.Commits()) != 0 || len(tr.Sealed()) != 0 {
		t.Error("reset did not clear")
	}
}

func TestTracingStoreForwards(t *testing.T) {
	sink := newMemSink()
	tr := &TracingStore{Next: sink}
	data := []byte{1, 2, 3}
	if err := tr.WritePage(2, 7, data, 3); err != nil {
		t.Fatal(err)
	}
	if err := tr.EndEpoch(2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.pages[[2]uint64{2, 7}], data) {
		t.Error("page not forwarded")
	}
	if len(sink.sealed) != 1 {
		t.Error("seal not forwarded")
	}
}

func TestCompressingStoreShrinksZeroPages(t *testing.T) {
	sink := newMemSink()
	cs := &CompressingStore{Codec: compress.Flate, Next: sink}
	zero := make([]byte, 4096)
	if err := cs.WritePage(1, 0, zero, 4096); err != nil {
		t.Fatal(err)
	}
	blob := sink.pages[[2]uint64{1, 0}]
	if len(blob) != 1 {
		t.Errorf("zero page compressed to %d bytes, want 1", len(blob))
	}
	got, err := compress.Decode(blob, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, zero) {
		t.Error("decode mismatch")
	}
	// Phantom writes pass through with the original size.
	if err := cs.WritePage(1, 1, nil, 4096); err != nil {
		t.Fatal(err)
	}
	if sink.sizes[len(sink.sizes)-1] != 4096 {
		t.Error("phantom write size altered")
	}
	if err := cs.EndEpoch(1); err != nil {
		t.Fatal(err)
	}
}

func TestReplicatedStoreWritesAll(t *testing.T) {
	a, b := newMemSink(), newMemSink()
	rs := &ReplicatedStore{Replicas: []Backend{a, b}}
	data := []byte{9, 9}
	if err := rs.WritePage(3, 1, data, 2); err != nil {
		t.Fatal(err)
	}
	if err := rs.EndEpoch(3); err != nil {
		t.Fatal(err)
	}
	for i, s := range []*memSink{a, b} {
		if !bytes.Equal(s.pages[[2]uint64{3, 1}], data) || len(s.sealed) != 1 {
			t.Errorf("replica %d missing data", i)
		}
	}
	b.setErr(errors.New("disk died"))
	if err := rs.WritePage(3, 2, data, 2); err == nil {
		t.Error("replica failure not surfaced")
	}
	if err := rs.EndEpoch(3); err == nil {
		t.Error("replica seal failure not surfaced")
	}
}

func TestErasureStoreReconstructs(t *testing.T) {
	const k, m, pageSize = 3, 2, 96
	sinks := make([]*memSink, k+m)
	backends := make([]Backend, k+m)
	for i := range sinks {
		sinks[i] = newMemSink()
		backends[i] = sinks[i]
	}
	es, err := NewErasureStore(k, m, pageSize, backends)
	if err != nil {
		t.Fatal(err)
	}
	rng := util.NewRNG(5)
	data := make([]byte, pageSize)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	if err := es.WritePage(1, 4, data, pageSize); err != nil {
		t.Fatal(err)
	}
	if err := es.EndEpoch(1); err != nil {
		t.Fatal(err)
	}
	// Lose two arbitrary shards; reconstruction must still succeed.
	got, err := es.Reconstruct(func(i int) []byte {
		if i == 1 || i == 3 {
			return nil
		}
		return sinks[i].pages[[2]uint64{1, 4}]
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("reconstruction mismatch")
	}
	// Losing m+1 shards must fail.
	_, err = es.Reconstruct(func(i int) []byte {
		if i <= 2 {
			return nil
		}
		return sinks[i].pages[[2]uint64{1, 4}]
	})
	if err == nil {
		t.Error("expected failure with too many losses")
	}
}

func TestErasureStorePhantomSplitsSize(t *testing.T) {
	const k, m = 4, 1
	sinks := make([]*memSink, k+m)
	backends := make([]Backend, k+m)
	for i := range sinks {
		sinks[i] = newMemSink()
		backends[i] = sinks[i]
	}
	es, err := NewErasureStore(k, m, 4096, backends)
	if err != nil {
		t.Fatal(err)
	}
	if err := es.WritePage(1, 0, nil, 4096); err != nil {
		t.Fatal(err)
	}
	for i, s := range sinks {
		if len(s.sizes) != 1 || s.sizes[0] != 1024 {
			t.Errorf("backend %d sizes = %v, want one 1024-byte shard", i, s.sizes)
		}
	}
	if _, err := NewErasureStore(2, 2, 4096, backends); err == nil {
		t.Error("backend count mismatch accepted")
	}
}

func TestNullStore(t *testing.T) {
	var n NullStore
	if err := n.WritePage(1, 0, nil, 4096); err != nil {
		t.Fatal(err)
	}
	if err := n.EndEpoch(1); err != nil {
		t.Fatal(err)
	}
}
