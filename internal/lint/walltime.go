package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Walltime forbids reading or acting on the wall clock in the module's
// internal packages: everything under <module>/internal/ is written against
// the injected clock (sim.Env / obs.Metrics.Now) so the evaluation harness
// replays bit-identically in virtual time, and a single stray time.Now
// silently breaks that determinism. The two places that legitimately touch
// the wall clock — sim.RealEnv and the obs real-clock constructor — carry
// //aickpt:walltime site annotations.
//
// cmd/, examples/ and the public root package are real-time territory and
// are not checked.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "no wall-clock access (time.Now/Since/Sleep/...) in sim-deterministic internal packages",
	Run:  runWalltime,
}

// walltimeForbidden is the set of time-package functions that read or act
// on the wall clock. Pure constructors and conversions (time.Duration,
// time.Unix, ParseDuration) are fine and absent.
var walltimeForbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

func runWalltime(pass *Pass) {
	if !strings.HasPrefix(pass.PkgPath, pass.ModPath+"/internal/") {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !walltimeForbidden[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s in sim-deterministic package %s: use the injected clock (sim.Env.Now / obs.Metrics.Now) or annotate the site //aickpt:walltime",
				fn.Name(), pass.PkgPath)
			return true
		})
	}
}
