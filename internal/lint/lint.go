// Package lint is the repository's static-analysis driver: a stdlib-only
// (go/ast, go/parser, go/types — no module dependencies) analyzer suite that
// machine-enforces the invariants the performance work rests on. The
// invariants themselves live next to the code as //aickpt:* directives and
// the established `// guarded by mu` / xxxLocked conventions; this package
// turns them from reviewer lore into diagnostics.
//
// Four analyzers ship today (see CONTRIBUTING.md for the directive
// reference):
//
//   - guardedby: fields annotated `//aickpt:guardedby <mu>` (or the legacy
//     trailing `guarded by <mu>` comment) may only be accessed by functions
//     that acquire that mutex or follow the xxxLocked naming convention.
//   - walltime: time.Now/Since/Sleep and friends are forbidden in the
//     sim-deterministic internal packages except at //aickpt:walltime sites.
//   - hotpath: functions annotated //aickpt:hotpath must not contain
//     allocating constructs (fmt.* off the terminating path, string↔[]byte
//     conversions, defer, closures, composite literals boxed into
//     interfaces, appends onto non-reused slices).
//   - poolpair: every sync.Pool Get (and //aickpt:acquire site) needs a
//     matching release before every return, a deferred release, or an
//     explicit //aickpt:owns handoff.
//
// New analyzers register by appending to All; the driver, the -json wire
// format and the testdata harness need no changes.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one analyzer finding, in the -json wire form.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	Package  string `json:"package"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one registered check. Run inspects a fully type-checked
// package and reports findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All is the analyzer registry, in reporting order. Future checks append
// here (~50 lines each: a Run func over a typed AST plus testdata).
var All = []*Analyzer{Guardedby, Walltime, Hotpath, Poolpair}

// Lookup returns the registered analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Pass is one (analyzer, package) run: the typed syntax plus the reporting
// sink. Suppression via //aickpt:allow (and //aickpt:walltime) is applied
// centrally in Reportf so analyzers stay oblivious to it.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the package's import path; ModPath the module path it
	// belongs to (analyzers that scope by tree position — walltime — use
	// the two together).
	PkgPath string
	ModPath string

	dirs  *directiveIndex
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless an //aickpt:allow directive
// (or the //aickpt:walltime alias) suppresses this analyzer on that line or
// the line directly above it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.dirs.suppresses(position.Filename, position.Line, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Package:  p.PkgPath,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the given analyzers over the loaded packages and returns all
// diagnostics sorted by file, line, column, analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs := indexDirectives(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				PkgPath:  pkg.Path,
				ModPath:  pkg.ModPath,
				dirs:     dirs,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
