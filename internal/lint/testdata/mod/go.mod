module lintmod

go 1.24
