// Package walltimetest exercises the walltime analyzer: forbidden wall-clock
// reads in a sim-deterministic (internal/) package, the //aickpt:walltime
// site exemption, and the //aickpt:allow spelling.
package walltimetest

import "time"

type env struct{ start time.Time }

func (e *env) now() time.Duration {
	return time.Since(e.start) // want `time.Since in sim-deterministic package`
}

func (e *env) sleep(d time.Duration) {
	time.Sleep(d) // want `time.Sleep in sim-deterministic package`
}

func stamp() time.Time {
	return time.Now() // want `time.Now in sim-deterministic package`
}

// realNow is the declared wall-clock boundary of this package.
func realNow() time.Time {
	return time.Now() //aickpt:walltime the one sanctioned clock read
}

// allowedNow uses the generic suppression spelling.
func allowedNow() time.Time {
	return time.Now() //aickpt:allow walltime boundary shim
}

// delta is pure arithmetic on time values: no clock read, nothing flagged.
func delta(a, b time.Time) time.Duration { return b.Sub(a) }
