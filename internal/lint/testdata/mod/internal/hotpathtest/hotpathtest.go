// Package hotpathtest exercises the hotpath analyzer: every flagged
// construct, the terminating-context fmt exemption, the append reuse idioms,
// and //aickpt:allow.
package hotpathtest

import "fmt"

type sink interface{ accept(any) }

type point struct{ x, y int }

// formats allocates per call in normal flow.
//
//aickpt:hotpath
func formats(n int) string {
	s := fmt.Sprintf("%d", n) // want `fmt.Sprintf on a //aickpt:hotpath function`
	return s
}

// coldError is the sanctioned failure shape: fmt only as a return operand.
//
//aickpt:hotpath
func coldError(n int) error {
	if n < 0 {
		return fmt.Errorf("hotpathtest: negative %d", n)
	}
	return nil
}

// coldPanic is the sanctioned invariant-violation shape.
//
//aickpt:hotpath
func coldPanic(n int) {
	if n < 0 {
		panic(fmt.Sprintf("hotpathtest: negative %d", n))
	}
}

// converts copies its operand both ways.
//
//aickpt:hotpath
func converts(s string, b []byte) (int, int) {
	x := []byte(s) // want `conversion on a //aickpt:hotpath function copies`
	y := string(b) // want `conversion on a //aickpt:hotpath function copies`
	return len(x), len(y)
}

// defers schedules a deferred call.
//
//aickpt:hotpath
func defers(f func()) {
	defer f() // want `defer on a //aickpt:hotpath function`
}

// closes builds a closure.
//
//aickpt:hotpath
func closes(n int) func() int {
	return func() int { return n } // want `closure literal on a //aickpt:hotpath function`
}

// growsFresh appends onto a local slice without the reuse idiom: the result
// lands in a different variable, so nothing is retained.
//
//aickpt:hotpath
func growsFresh(src []int) []int {
	var out []int
	grown := append(out, len(src)) // want `append onto a non-reused slice`
	return grown
}

// growsRetained is the pooled-container idiom: x = append(x, ...).
//
//aickpt:hotpath
func growsRetained(s *state, v int) {
	s.buf = append(s.buf, v)
	s.buf = append(s.buf[:0], v)
}

type state struct{ buf []int }

// fillsInto appends onto a caller-supplied buffer (Into-style API).
//
//aickpt:hotpath
func fillsInto(dst []byte, n int) []byte {
	for i := 0; i < n; i++ {
		dst = append(dst, byte(i))
	}
	return dst
}

// boxes sends a composite literal through an interface parameter.
//
//aickpt:hotpath
func boxes(s sink) {
	s.accept(point{1, 2}) // want `composite literal escapes into interface parameter`
}

// warmsUp allocates once on a cold branch and says so.
//
//aickpt:hotpath
func warmsUp(s *state) {
	if s.buf == nil {
		s.buf = append([]int(nil), 0) //aickpt:allow hotpath pool warm-up, once per process
	}
}
