// Package poolpairtest exercises the poolpair analyzer: leaked Gets, the
// defer and per-branch release shapes, //aickpt:owns handoffs, and functions
// annotated //aickpt:acquire / //aickpt:release.
package poolpairtest

import "sync"

var bufPool = sync.Pool{New: func() any { return new([]byte) }}

type holder struct{ buf *[]byte }

// leaks takes a buffer and never returns it.
func leaks() int {
	buf := bufPool.Get().(*[]byte) // want `bufPool acquire is not released`
	return len(*buf)
}

// balancedDefer releases on every path through one defer.
func balancedDefer() int {
	buf := bufPool.Get().(*[]byte)
	defer bufPool.Put(buf)
	return len(*buf)
}

// balancedBranches releases on each return path explicitly.
func balancedBranches(fail bool) int {
	buf := bufPool.Get().(*[]byte)
	if fail {
		bufPool.Put(buf)
		return 0
	}
	n := len(*buf)
	bufPool.Put(buf)
	return n
}

// handsOff stages the buffer into a struct released elsewhere.
func handsOff(h *holder) {
	h.buf = bufPool.Get().(*[]byte) //aickpt:owns released by (*holder).drop
}

// drop is the matching release of handsOff's buffer.
//
//aickpt:release bufPool
func drop(h *holder) {
	if h.buf != nil {
		bufPool.Put(h.buf)
		h.buf = nil
	}
}

// borrow is an annotated acquire wrapper: callers inherit the obligation.
//
//aickpt:acquire bufPool
func borrow() *[]byte {
	return bufPool.Get().(*[]byte) //aickpt:owns returned to the caller
}

// viaWrappers uses the annotated pair; balance holds through them.
func viaWrappers(h *holder) int {
	h.buf = borrow() // want `bufPool acquire is not released`
	return len(*h.buf)
}

// viaWrappersBalanced pairs the annotated acquire with the annotated release.
func viaWrappersBalanced(h *holder) int {
	h.buf = borrow()
	n := len(*h.buf)
	drop(h)
	return n
}
