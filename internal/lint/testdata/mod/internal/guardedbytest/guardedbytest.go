// Package guardedbytest exercises the guardedby analyzer: annotated and
// legacy-commented fields, the xxxLocked convention, lock acquisition
// through Lock and RLock, and //aickpt:allow exemptions.
package guardedbytest

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //aickpt:guardedby mu

	// hits is bumped on every probe, guarded by mu
	hits int

	free int // unguarded: accessible anywhere
}

type shared struct {
	rw   sync.RWMutex
	view []int //aickpt:guardedby rw
}

// inc locks, so the guarded accesses are fine.
func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.hits++
	c.mu.Unlock()
}

// bumpLocked follows the naming convention: the caller holds mu.
func (c *counter) bumpLocked() {
	c.n++
	c.hits++
}

// steal accesses both guarded fields without the mutex.
func (c *counter) steal() int {
	c.free++
	return c.n + c.hits // want "counter.n is guarded by mu" "counter.hits is guarded by mu"
}

// snapshot reads under the read lock.
func (s *shared) snapshot() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return len(s.view)
}

// peek reads without the lock but states why that is safe.
func (s *shared) peek() int {
	return len(s.view) //aickpt:allow guardedby len is monotone, racy read tolerated
}

// leak reads the slice header without the lock.
func (s *shared) leak() []int {
	return s.view // want "shared.view is guarded by rw"
}

// newCounter builds via composite literal: construction is not a selector
// access, so no lock is needed.
func newCounter() *counter {
	return &counter{n: 1, hits: 2}
}
