package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Guardedby enforces the repository's locking annotations: a struct field
// annotated //aickpt:guardedby <mu> (or with the legacy trailing comment
// "guarded by <mu>") may only be accessed from functions that either follow
// the xxxLocked naming convention (caller holds the lock) or contain an
// acquisition of that mutex (x.mu.Lock() / x.mu.RLock()).
//
// The check is deliberately flow-insensitive: it asks "does this function
// ever take the lock", not "is the lock held at this statement" — exactly
// the review question the off-lock commit pipeline (PR 3) and the
// off-critical-path selector build (PR 4) were audited against. Functions
// that drop the lock around blocking work keep passing; a function that
// touches guarded state without ever locking (the bug class the convention
// exists to stop) is flagged. Composite-literal construction is not a
// field access, so constructors that initialize and then publish stay
// clean. Intentional pre-publication writes outside the literal are
// annotated //aickpt:allow guardedby.
var Guardedby = &Analyzer{
	Name: "guardedby",
	Doc:  "guarded struct fields must be accessed under their mutex or from xxxLocked functions",
	Run:  runGuardedby,
}

// guardInfo describes one guarded field: the mutex object that must be
// acquired and display names for diagnostics.
type guardInfo struct {
	structName string
	fieldName  string
	mutexName  string
	mutex      types.Object
}

func runGuardedby(pass *Pass) {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedAccesses(pass, fd, guarded)
		}
	}
}

// collectGuardedFields finds every annotated field in the package's struct
// declarations and resolves its guarding mutex (a sibling field).
func collectGuardedFields(pass *Pass) map[types.Object]*guardInfo {
	guarded := map[types.Object]*guardInfo{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				muName, ok := guardMutexName(field.Doc, field.Comment)
				if !ok {
					continue
				}
				mu := findSiblingField(pass, st, muName)
				if mu == nil {
					pass.Reportf(field.Pos(), "field is marked guarded by %q, but struct %s has no such field", muName, ts.Name.Name)
					continue
				}
				if !isLockable(mu.Type()) {
					pass.Reportf(field.Pos(), "field is marked guarded by %q, but %s.%s is %s, not a mutex or sync.Locker",
						muName, ts.Name.Name, muName, mu.Type())
					continue
				}
				for _, name := range field.Names {
					obj := pass.Info.Defs[name]
					if obj == nil {
						continue
					}
					guarded[obj] = &guardInfo{
						structName: ts.Name.Name,
						fieldName:  name.Name,
						mutexName:  muName,
						mutex:      mu,
					}
				}
			}
			return true
		})
	}
	return guarded
}

func findSiblingField(pass *Pass, st *ast.StructType, name string) types.Object {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return pass.Info.Defs[n]
			}
		}
	}
	return nil
}

// isLockable reports whether t can plausibly guard state: sync.Mutex,
// sync.RWMutex, sync.Locker, or any other type carrying a Lock method
// (e.g. the sim package's virtual-time mutexes behind sync.Locker).
func isLockable(t types.Type) bool {
	for _, u := range []types.Type{t, types.NewPointer(t)} {
		if m, _, _ := types.LookupFieldOrMethod(u, true, nil, "Lock"); m != nil {
			if _, ok := m.(*types.Func); ok {
				return true
			}
		}
	}
	return false
}

// checkGuardedAccesses flags selector accesses to guarded fields inside fd
// unless fd is exempt by naming convention or acquires the guarding mutex
// somewhere in its body.
func checkGuardedAccesses(pass *Pass, fd *ast.FuncDecl, guarded map[types.Object]*guardInfo) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	acquired := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if obj := selectedObject(pass, sel.X); obj != nil {
			acquired[obj] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := selectedObject(pass, sel)
		info, ok := guarded[obj]
		if !ok {
			return true
		}
		if acquired[info.mutex] {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"%s.%s is guarded by %s, but %s neither acquires %s nor follows the xxxLocked convention",
			info.structName, info.fieldName, info.mutexName, fd.Name.Name, info.mutexName)
		return true
	})
}

// selectedObject resolves the object an expression selects: the field or
// method of a SelectorExpr (through Selections for implicit derefs), or the
// object behind a plain identifier.
func selectedObject(pass *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[e]; ok {
			return s.Obj()
		}
		return pass.Info.Uses[e.Sel]
	case *ast.Ident:
		return pass.Info.Uses[e]
	}
	return nil
}
