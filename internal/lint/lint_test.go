package lint

import (
	"path/filepath"
	"testing"
)

// testdataMod is the mini-module holding the analyzer testdata packages.
// Its own go.mod keeps the real module's ./... patterns away from it.
const testdataMod = "testdata/mod"

func TestGuardedbyTestdata(t *testing.T) {
	CheckTestdata(t, Guardedby, testdataMod, "./internal/guardedbytest")
}

func TestWalltimeTestdata(t *testing.T) {
	CheckTestdata(t, Walltime, testdataMod, "./internal/walltimetest")
}

func TestHotpathTestdata(t *testing.T) {
	CheckTestdata(t, Hotpath, testdataMod, "./internal/hotpathtest")
}

func TestPoolpairTestdata(t *testing.T) {
	CheckTestdata(t, Poolpair, testdataMod, "./internal/poolpairtest")
}

// TestTestdataWantCoverage pins the testdata's breadth: every analyzer must
// demonstrate at least one caught violation (a fulfilled want) and at least
// one annotated exemption (an //aickpt:allow, :walltime or :owns directive
// in its package).
func TestTestdataWantCoverage(t *testing.T) {
	cases := []struct {
		a       *Analyzer
		pattern string
	}{
		{Guardedby, "./internal/guardedbytest"},
		{Walltime, "./internal/walltimetest"},
		{Hotpath, "./internal/hotpathtest"},
		{Poolpair, "./internal/poolpairtest"},
	}
	for _, c := range cases {
		loader, err := NewLoader(testdataMod)
		if err != nil {
			t.Fatalf("%s: loader: %v", c.a.Name, err)
		}
		pkgs, err := loader.Load(c.pattern)
		if err != nil {
			t.Fatalf("%s: load: %v", c.a.Name, err)
		}
		if n := len(Run(pkgs, []*Analyzer{c.a})); n == 0 {
			t.Errorf("%s: testdata catches no violation", c.a.Name)
		}
		exempt := 0
		for _, pkg := range pkgs {
			dirs := indexDirectives(pkg.Fset, pkg.Files)
			for _, ds := range dirs.byLine {
				for _, d := range ds {
					if d.verb == "allow" || d.verb == "walltime" || d.verb == "owns" {
						exempt++
					}
				}
			}
		}
		if exempt == 0 {
			t.Errorf("%s: testdata demonstrates no annotated exemption", c.a.Name)
		}
	}
}

// TestLookup covers the registry.
func TestLookup(t *testing.T) {
	for _, a := range All {
		if Lookup(a.Name) != a {
			t.Errorf("Lookup(%q) did not return the registered analyzer", a.Name)
		}
	}
	if Lookup("nope") != nil {
		t.Errorf("Lookup of an unknown name returned an analyzer")
	}
}

// TestLoaderPatterns covers the module-relative pattern forms against the
// testdata module.
func TestLoaderPatterns(t *testing.T) {
	loader, err := NewLoader(testdataMod)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	if loader.ModPath() != "lintmod" {
		t.Fatalf("module path = %q, want lintmod", loader.ModPath())
	}
	all, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	if len(all) != 4 {
		t.Fatalf("./... loaded %d packages, want 4", len(all))
	}
	one, err := loader.Load("./internal/hotpathtest")
	if err != nil {
		t.Fatalf("load ./internal/hotpathtest: %v", err)
	}
	if len(one) != 1 || one[0].Path != "lintmod/internal/hotpathtest" {
		t.Fatalf("single-package load got %+v", one)
	}
	byPath, err := loader.Load("lintmod/internal/hotpathtest")
	if err != nil || len(byPath) != 1 {
		t.Fatalf("import-path load: %v (%d pkgs)", err, len(byPath))
	}
	if _, err := loader.Load("./internal/missing"); err == nil {
		t.Fatalf("load of a missing package succeeded")
	}
}

// TestBuildConstraints pins the loader's build-tag handling on the real
// module: util has race_on.go/race_off.go variants whose //go:build lines
// must not double-declare.
func TestBuildConstraints(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.Load("./internal/util")
	if err != nil {
		t.Fatalf("load ./internal/util: %v", err)
	}
	names := map[string]bool{}
	for _, f := range pkgs[0].Files {
		names[filepath.Base(pkgs[0].Fset.Position(f.Pos()).Filename)] = true
	}
	if names["race_on.go"] && names["race_off.go"] {
		t.Fatalf("both race variants loaded: build constraints ignored")
	}
	if !names["race_on.go"] && !names["race_off.go"] {
		t.Fatalf("neither race variant loaded")
	}
}
