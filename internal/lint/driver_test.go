package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestDriverJSONShape runs the driver over the dirty testdata module and
// pins the wire format: exit code 1, a JSON array of diagnostics whose
// fields are all populated, sorted by position.
func TestDriverJSONShape(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main([]string{"-json", "-C", testdataMod, "./..."}, &stdout, &stderr)
	if code != ExitDiags {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitDiags, stderr.String())
	}
	var diags []Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatalf("no diagnostics over the dirty testdata module")
	}
	seen := map[string]bool{}
	for _, d := range diags {
		if d.Analyzer == "" || d.Package == "" || d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Message == "" {
			t.Errorf("diagnostic with unpopulated fields: %+v", d)
		}
		seen[d.Analyzer] = true
	}
	for _, a := range All {
		if !seen[a.Name] {
			t.Errorf("analyzer %s produced no diagnostic over its testdata", a.Name)
		}
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("diagnostics not sorted: %s:%d before %s:%d", a.File, a.Line, b.File, b.Line)
		}
	}
}

// TestDriverRunFilter pins -run: only the named analyzer fires.
func TestDriverRunFilter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main([]string{"-json", "-run", "walltime", "-C", testdataMod, "./..."}, &stdout, &stderr)
	if code != ExitDiags {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitDiags, stderr.String())
	}
	var diags []Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	for _, d := range diags {
		if d.Analyzer != "walltime" {
			t.Errorf("-run walltime produced a %s diagnostic", d.Analyzer)
		}
	}
	if len(diags) == 0 {
		t.Fatalf("-run walltime produced no diagnostics")
	}
}

// TestDriverCleanPackage pins exit 0 and an empty (not null) JSON array on
// a clean package.
func TestDriverCleanPackage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main([]string{"-json", "-C", "../..", "./internal/util"}, &stdout, &stderr)
	if code != ExitClean {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitClean, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Fatalf("clean run printed %q, want []", got)
	}
}

// TestDriverErrors pins exit 2 on usage errors.
func TestDriverErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-run", "nope", "./..."}, &stdout, &stderr); code != ExitError {
		t.Fatalf("unknown analyzer: exit = %d, want %d", code, ExitError)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Fatalf("unknown analyzer not reported: %s", stderr.String())
	}
	stderr.Reset()
	if code := Main([]string{"-C", testdataMod, "./internal/missing"}, &stdout, &stderr); code != ExitError {
		t.Fatalf("missing package: exit = %d, want %d", code, ExitError)
	}
}

// TestDriverList pins -list.
func TestDriverList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-list"}, &stdout, &stderr); code != ExitClean {
		t.Fatalf("-list exit = %d, want %d", code, ExitClean)
	}
	for _, a := range All {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output misses %s", a.Name)
		}
	}
}
