package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one loaded, fully type-checked package of the module.
type Package struct {
	Path    string // import path, e.g. repro/internal/core
	ModPath string // module path, e.g. repro
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader type-checks module packages using only the standard library: module
// packages are parsed and checked from source recursively, standard-library
// imports resolve through go/importer's source importer. One Loader caches
// everything it checks, so loading ./... costs each package one check.
type Loader struct {
	fset    *token.FileSet
	ctx     build.Context
	modPath string
	modRoot string
	std     types.ImporterFrom
	cache   map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir (found by
// walking up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	// Type-checking needs no cgo preprocessing; disabling it makes the
	// build context select the pure-Go variants of stdlib packages (net's
	// Go resolver), so the source importer never shells out to the cgo
	// tool. build.Default is also what the source importer consults.
	build.Default.CgoEnabled = false
	ctx := build.Default
	fset := token.NewFileSet()
	l := &Loader{
		fset:    fset,
		ctx:     ctx,
		modPath: modPath,
		modRoot: root,
		cache:   map[string]*Package{},
		loading: map[string]bool{},
	}
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	l.std = std
	return l, nil
}

var moduleRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			m := moduleRE.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
			}
			return dir, string(m[1]), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// ModPath returns the loader's module path.
func (l *Loader) ModPath() string { return l.modPath }

// ModRoot returns the loader's module root directory.
func (l *Loader) ModRoot() string { return l.modRoot }

// Import implements go/types.Importer over the module + standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.modRoot, 0)
}

// ImportFrom implements go/types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, 0)
}

// load type-checks one module package by import path (cached).
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	dir := filepath.Join(l.modRoot, filepath.FromSlash(rel))
	pkg, err := l.check(path, dir)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// check parses and type-checks the non-test files of one directory. Build
// constraints (//go:build lines and filename suffixes) are honored via the
// loader's build context, so e.g. race-only files don't double-declare.
func (l *Loader) check(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		match, err := l.ctx.MatchFile(dir, n)
		if err != nil {
			return nil, fmt.Errorf("lint: %s/%s: %w", dir, n, err)
		}
		if match {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l, Error: func(error) {}}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	return &Package{
		Path:    path,
		ModPath: l.modPath,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// Load resolves the given patterns to packages and type-checks them.
// Patterns are module-root-relative: "./..." (every package), "./dir/..."
// (a subtree), "./dir" or a full import path (one package).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	all, err := l.packageDirs()
	if err != nil {
		return nil, err
	}
	want := map[string]bool{}
	for _, pat := range patterns {
		paths, err := l.match(pat, all)
		if err != nil {
			return nil, err
		}
		for _, p := range paths {
			want[p] = true
		}
	}
	var order []string
	for p := range want {
		order = append(order, p)
	}
	sort.Strings(order)
	pkgs := make([]*Package, 0, len(order))
	for _, p := range order {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// match expands one pattern against the module's package list.
func (l *Loader) match(pat string, all []string) ([]string, error) {
	norm := func(s string) string {
		s = strings.TrimPrefix(s, "./")
		s = strings.TrimSuffix(s, "/")
		if s == "" || s == "." {
			return l.modPath
		}
		if s == l.modPath || strings.HasPrefix(s, l.modPath+"/") {
			return s
		}
		return l.modPath + "/" + s
	}
	if rest, ok := strings.CutSuffix(pat, "..."); ok {
		prefix := norm(rest)
		var out []string
		for _, p := range all {
			if p == prefix || strings.HasPrefix(p, prefix+"/") || prefix == l.modPath {
				out = append(out, p)
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("lint: pattern %q matches no packages", pat)
		}
		return out, nil
	}
	p := norm(pat)
	for _, q := range all {
		if q == p {
			return []string{p}, nil
		}
	}
	return nil, fmt.Errorf("lint: pattern %q matches no package", pat)
}

// packageDirs enumerates every package directory of the module (directories
// holding at least one buildable non-test .go file), skipping testdata and
// hidden directories.
func (l *Loader) packageDirs() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.modRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if p != l.modRoot && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
				continue
			}
			rel, err := filepath.Rel(l.modRoot, p)
			if err != nil {
				return err
			}
			if rel == "." {
				paths = append(paths, l.modPath)
			} else {
				paths = append(paths, l.modPath+"/"+filepath.ToSlash(rel))
			}
			break
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
