package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Poolpair codifies the pooling ownership invariants of the zero-allocation
// commit path: every value taken from a sync.Pool (x.Get(), or a call to a
// function annotated //aickpt:acquire <pool>) must be returned to it before
// the function exits — a Put (or //aickpt:release <pool> call) preceding
// every return, or a deferred release — unless the acquire site is
// annotated //aickpt:owns, declaring that ownership is handed off (staged
// into a queue, stored in a struct released elsewhere).
//
// The analysis is per-function and source-order-based: at every return it
// compares acquires and releases of the same pool seen earlier in the body.
// That resolves the common shapes exactly — defer, early-error returns with
// a Put on each branch, loop-local Get/Put — and over-approximates branchy
// flows, for which //aickpt:owns or //aickpt:allow poolpair states the
// ownership argument explicitly (which is the point: a reader should find
// it stated).
var Poolpair = &Analyzer{
	Name: "poolpair",
	Doc:  "sync.Pool Get (and //aickpt:acquire) needs a release on every return path or an //aickpt:owns handoff",
	Run:  runPoolpair,
}

type poolEvent struct {
	pool    string
	pos     token.Pos
	acquire bool
	owns    bool
}

func runPoolpair(pass *Pass) {
	annotated := collectAnnotatedFuncs(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolBalance(pass, fd, annotated)
		}
	}
}

// collectAnnotatedFuncs maps package functions carrying //aickpt:acquire or
// //aickpt:release doc directives to their pool names, so calls to them
// count as pool events at the call site.
func collectAnnotatedFuncs(pass *Pass) map[types.Object]directive {
	out := map[types.Object]directive{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			for _, d := range funcDirectives(fd) {
				if (d.verb == "acquire" || d.verb == "release") && len(d.args) > 0 {
					if obj := pass.Info.Defs[fd.Name]; obj != nil {
						out[obj] = d
					}
				}
			}
		}
	}
	return out
}

func checkPoolBalance(pass *Pass, fd *ast.FuncDecl, annotated map[types.Object]directive) {
	var events []poolEvent
	deferred := map[string]bool{}
	var returns []token.Pos

	classify := func(call *ast.CallExpr) (poolEvent, bool) {
		// sync.Pool method calls: the pool's identity is the receiver
		// expression's source form.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Get" || sel.Sel.Name == "Put") {
			if tv, ok := pass.Info.Types[sel.X]; ok && isSyncPool(tv.Type) {
				return poolEvent{pool: types.ExprString(sel.X), pos: call.Pos(), acquire: sel.Sel.Name == "Get"}, true
			}
		}
		// Calls to functions annotated //aickpt:acquire / //aickpt:release.
		var callee types.Object
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			callee = pass.Info.Uses[fun]
		case *ast.SelectorExpr:
			callee = selectedObject(pass, fun)
		}
		if d, ok := annotated[callee]; ok {
			return poolEvent{pool: d.args[0], pos: call.Pos(), acquire: d.verb == "acquire"}, true
		}
		// Site-level //aickpt:acquire / //aickpt:release annotations.
		p := pass.Fset.Position(call.Pos())
		for _, verb := range [2]string{"acquire", "release"} {
			for _, d := range pass.dirs.at(p.Filename, p.Line, verb) {
				if len(d.args) > 0 {
					return poolEvent{pool: d.args[0], pos: call.Pos(), acquire: verb == "acquire"}, true
				}
			}
		}
		return poolEvent{}, false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if ev, ok := classify(n.Call); ok && !ev.acquire {
				deferred[ev.pool] = true
			}
			return true
		case *ast.ReturnStmt:
			returns = append(returns, n.End())
			return true
		case *ast.CallExpr:
			if ev, ok := classify(n); ok {
				if ev.acquire {
					p := pass.Fset.Position(ev.pos)
					ev.owns = len(pass.dirs.at(p.Filename, p.Line, "owns")) > 0
				}
				events = append(events, ev)
			}
			return true
		}
		return true
	})
	if len(events) == 0 {
		return
	}
	// The fall-off-the-end exit is a return path too.
	returns = append(returns, fd.Body.End())
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	reported := map[token.Pos]bool{}
	for _, ret := range returns {
		balance := map[string]int{}          // pool -> unreleased acquires before ret
		firstLeak := map[string]*poolEvent{} // pool -> earliest candidate site
		for i := range events {
			ev := &events[i]
			if ev.pos >= ret || ev.owns || deferred[ev.pool] {
				continue
			}
			if ev.acquire {
				balance[ev.pool]++
				if firstLeak[ev.pool] == nil {
					firstLeak[ev.pool] = ev
				}
			} else {
				balance[ev.pool]--
			}
		}
		for pool, n := range balance {
			if n <= 0 {
				continue
			}
			ev := firstLeak[pool]
			if reported[ev.pos] {
				continue
			}
			reported[ev.pos] = true
			retPos := pass.Fset.Position(ret)
			pass.Reportf(ev.pos,
				"%s acquire is not released on the return path ending at line %d (add a Put/release, defer it, or annotate the handoff //aickpt:owns)",
				pool, retPos.Line)
		}
	}
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}
