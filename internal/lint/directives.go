package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// A directive is one parsed //aickpt:<verb> [args...] comment. The verb set
// is open-ended; analyzers interpret the ones they know:
//
//	//aickpt:guardedby <mutex>      field: accesses require <mutex> held
//	//aickpt:hotpath                func: body must not allocate
//	//aickpt:walltime               site: exempt from the walltime check
//	//aickpt:acquire <pool>         func or call site: acquires from <pool>
//	//aickpt:release <pool>         func or call site: releases into <pool>
//	//aickpt:owns                   acquire site: ownership is handed off
//	//aickpt:allow <analyzer> [why] site: suppress one analyzer here
type directive struct {
	verb string
	args []string
	line int
	file string
}

// parseDirective parses a single comment's text (with the // or /* stripped)
// into a directive, or returns ok=false for ordinary prose.
func parseDirective(text string) (directive, bool) {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "aickpt:") {
		return directive{}, false
	}
	fields := strings.Fields(strings.TrimPrefix(text, "aickpt:"))
	if len(fields) == 0 {
		return directive{}, false
	}
	return directive{verb: fields[0], args: fields[1:]}, true
}

// commentText returns a comment's content without its marker.
func commentText(c *ast.Comment) string {
	t := c.Text
	switch {
	case strings.HasPrefix(t, "//"):
		return t[2:]
	case strings.HasPrefix(t, "/*"):
		return strings.TrimSuffix(t[2:], "*/")
	}
	return t
}

// directiveIndex locates directives by (file, line) so site-level semantics
// ("this line or the line above") resolve in O(1).
type directiveIndex struct {
	byLine map[fileLine][]directive
}

type fileLine struct {
	file string
	line int
}

func indexDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{byLine: map[fileLine][]directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(commentText(c))
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d.file, d.line = pos.Filename, pos.Line
				key := fileLine{pos.Filename, pos.Line}
				idx.byLine[key] = append(idx.byLine[key], d)
			}
		}
	}
	return idx
}

// at returns directives with the given verb on line or line-1 of file — the
// site-annotation convention: trailing on the same line, or a full-line
// comment directly above.
func (idx *directiveIndex) at(file string, line int, verb string) []directive {
	var out []directive
	for _, l := range [2]int{line, line - 1} {
		for _, d := range idx.byLine[fileLine{file, l}] {
			if d.verb == verb {
				out = append(out, d)
			}
		}
	}
	return out
}

// suppresses reports whether a diagnostic from analyzer at (file, line) is
// silenced by //aickpt:allow <analyzer> — or, for the walltime analyzer, by
// its dedicated //aickpt:walltime form.
func (idx *directiveIndex) suppresses(file string, line int, analyzer string) bool {
	for _, d := range idx.at(file, line, "allow") {
		if len(d.args) > 0 && d.args[0] == analyzer {
			return true
		}
	}
	if analyzer == "walltime" && len(idx.at(file, line, "walltime")) > 0 {
		return true
	}
	return false
}

// funcDirectives parses the //aickpt:* directives in a function's doc
// comment.
func funcDirectives(fd *ast.FuncDecl) []directive {
	if fd.Doc == nil {
		return nil
	}
	var out []directive
	for _, c := range fd.Doc.List {
		if d, ok := parseDirective(commentText(c)); ok {
			out = append(out, d)
		}
	}
	return out
}

// hasFuncDirective reports whether fd's doc carries the given verb.
func hasFuncDirective(fd *ast.FuncDecl, verb string) bool {
	for _, d := range funcDirectives(fd) {
		if d.verb == verb {
			return true
		}
	}
	return false
}

// legacyGuardRE recognizes the repository's established prose form for
// guarded fields — a comment line ending in "guarded by <field>" — so the
// annotations that predate the linter are enforced without rewriting them.
// The end-of-line anchor keeps it from latching onto prose that merely
// mentions guarding (e.g. "guarded by selReady/selBuilding" spanning two
// names matches nothing).
var legacyGuardRE = regexp.MustCompile(`guarded by ([A-Za-z_]\w*)\.?\s*$`)

// guardMutexName extracts the guarding mutex named by a field's comment
// groups: the //aickpt:guardedby directive or the legacy trailing prose.
func guardMutexName(groups ...*ast.CommentGroup) (string, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if d, ok := parseDirective(commentText(c)); ok && d.verb == "guardedby" && len(d.args) > 0 {
				return d.args[0], true
			}
			for _, line := range strings.Split(commentText(c), "\n") {
				if m := legacyGuardRE.FindStringSubmatch(strings.TrimSpace(line)); m != nil {
					return m[1], true
				}
			}
		}
	}
	return "", false
}
