package lint

import (
	"go/ast"
	"go/types"
)

// Hotpath is the static complement of the AllocsPerRun gates: functions
// annotated //aickpt:hotpath (the per-page commit, fault, selector and
// trace functions) must not contain allocating constructs. The dynamic
// gates only see the paths the tests drive; this check sees every branch.
//
// Flagged inside an annotated function:
//
//   - fmt.* calls — except as the immediate operand of a return or panic:
//     a `return fmt.Errorf(...)` failure exit runs at most once and ends
//     the hot loop, so it cannot add per-page allocation pressure, while a
//     fmt.Sprintf feeding normal flow allocates on every iteration;
//   - string ↔ []byte/[]rune conversions (they copy);
//   - defer statements;
//   - function literals (closure captures allocate);
//   - composite literals boxed into interface-typed parameters or
//     variables;
//   - append calls that are not a reuse idiom: allowed only as
//     x = append(x, ...) / x = append(x[:0], ...) (growing a retained,
//     pooled container, amortized to zero) or appending onto a
//     caller-supplied parameter (the Into-style APIs, where the caller
//     owns a pooled buffer).
//
// Genuinely cold exceptions inside a hot function (a once-per-epoch
// closure, a pool warm-up) are annotated //aickpt:allow hotpath (reason).
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "//aickpt:hotpath functions must not contain allocating constructs",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasFuncDirective(fd, "hotpath") {
				continue
			}
			h := &hotpathCheck{pass: pass, params: paramObjects(pass, fd), allowedAppends: map[*ast.CallExpr]bool{}}
			h.collectReuseAppends(fd.Body)
			h.walk(fd.Body, false)
		}
	}
}

type hotpathCheck struct {
	pass           *Pass
	params         map[types.Object]bool
	allowedAppends map[*ast.CallExpr]bool
}

// paramObjects collects the objects of fd's parameters and receiver:
// appending onto them targets caller-owned (pooled) backing storage.
func paramObjects(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	objs := map[types.Object]bool{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					objs[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return objs
}

// collectReuseAppends marks append calls in the x = append(x, ...) /
// x = append(x[:0], ...) form: the assignment back into the same expression
// is the pooled-container growth idiom the zero-allocation paths rely on.
func (h *hotpathCheck) collectReuseAppends(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltin(h.pass, call, "append") || len(call.Args) == 0 {
				continue
			}
			if types.ExprString(as.Lhs[i]) == types.ExprString(appendBase(call.Args[0])) {
				h.allowedAppends[call] = true
			}
		}
		return true
	})
}

// appendBase unwraps a reslice so append(x[:0], ...) compares as x.
func appendBase(e ast.Expr) ast.Expr {
	if s, ok := e.(*ast.SliceExpr); ok {
		return s.X
	}
	return e
}

func isBuiltin(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.Info.Uses[id].(*types.Builtin)
	return ok
}

// walk visits the hot function's body. terminating is true under a return
// statement or panic argument, where a fmt call is a cold failure exit.
func (h *hotpathCheck) walk(n ast.Node, terminating bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.DeferStmt:
		h.pass.Reportf(n.Pos(), "defer on a //aickpt:hotpath function")
		return
	case *ast.FuncLit:
		h.pass.Reportf(n.Pos(), "closure literal on a //aickpt:hotpath function (captures allocate)")
		return // the literal's body is the closure's problem, not this path's
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			h.walk(r, true)
		}
		return
	case *ast.CallExpr:
		h.checkCall(n, terminating)
		// panic's argument is a terminating context like a return's operand.
		term := terminating || isBuiltin(h.pass, n, "panic")
		h.walk(n.Fun, terminating)
		for _, a := range n.Args {
			h.walk(a, term)
		}
		return
	case *ast.AssignStmt:
		h.checkBoxingAssign(n)
	case *ast.BlockStmt:
		for _, s := range n.List {
			h.walk(s, terminating)
		}
		return
	}
	// Generic structural descent for everything else.
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n || c == nil {
			return c == n
		}
		h.walk(c, terminating)
		return false
	})
}

func (h *hotpathCheck) checkCall(call *ast.CallExpr, terminating bool) {
	// fmt.* off the terminating path.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := h.pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			if !terminating {
				h.pass.Reportf(call.Pos(), "fmt.%s on a //aickpt:hotpath function (allocates; only return/panic operands are exempt)", fn.Name())
			}
			return
		}
	}
	// string ↔ []byte/[]rune conversion.
	if tv, ok := h.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		if argTV, ok := h.pass.Info.Types[call.Args[0]]; ok {
			from := argTV.Type
			if (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from)) {
				h.pass.Reportf(call.Pos(), "%s ↔ %s conversion on a //aickpt:hotpath function copies its operand", from, to)
			}
		}
		return
	}
	// append outside the reuse idiom.
	if isBuiltin(h.pass, call, "append") && len(call.Args) > 0 && !h.allowedAppends[call] {
		if obj := h.baseObject(appendBase(call.Args[0])); obj == nil || !h.params[obj] {
			h.pass.Reportf(call.Pos(), "append onto a non-reused slice on a //aickpt:hotpath function (use x = append(x, ...) on a retained container or append into a caller-supplied buffer)")
		}
		return
	}
	// Composite literals boxed into interface-typed parameters.
	if sig := callSignature(h.pass, call); sig != nil {
		for i, arg := range call.Args {
			if !isCompositeLit(arg) {
				continue
			}
			if pt := paramTypeAt(sig, i); pt != nil && types.IsInterface(pt.Underlying()) {
				h.pass.Reportf(arg.Pos(), "composite literal escapes into interface parameter on a //aickpt:hotpath function (boxing allocates)")
			}
		}
	}
}

// checkBoxingAssign flags composite literals assigned to interface-typed
// destinations.
func (h *hotpathCheck) checkBoxingAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		if !isCompositeLit(rhs) {
			continue
		}
		if tv, ok := h.pass.Info.Types[as.Lhs[i]]; ok && tv.Type != nil && types.IsInterface(tv.Type.Underlying()) {
			h.pass.Reportf(rhs.Pos(), "composite literal escapes into interface variable on a //aickpt:hotpath function (boxing allocates)")
		}
	}
}

func (h *hotpathCheck) baseObject(e ast.Expr) types.Object {
	if id, ok := e.(*ast.Ident); ok {
		return h.pass.Info.Uses[id]
	}
	return nil
}

func isCompositeLit(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := e.X.(*ast.CompositeLit)
		return ok
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func callSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.IsType() || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func paramTypeAt(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if s, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}
