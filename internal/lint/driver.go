package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"
)

// Exit codes of the driver: clean, diagnostics found, usage/load failure.
const (
	ExitClean = 0
	ExitDiags = 1
	ExitError = 2
)

// Main is the aickpt-lint entry point, factored out of cmd/aickpt-lint so
// the driver's flag handling, JSON shape and exit codes are unit-testable.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aickpt-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	run := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	dir := fs.String("C", ".", "directory whose module to analyze")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: aickpt-lint [flags] [packages]\n\n"+
			"Packages are module-root-relative patterns: ./... (default), ./internal/core,\n"+
			"./internal/..., or full import paths.\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "\nAnalyzers:\n")
		for _, a := range All {
			fmt.Fprintf(stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}
	if *list {
		for _, a := range All {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return ExitClean
	}

	analyzers := All
	if *run != "" {
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			a := Lookup(name)
			if a == nil {
				fmt.Fprintf(stderr, "aickpt-lint: unknown analyzer %q\n", name)
				return ExitError
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := NewLoader(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "aickpt-lint: %v\n", err)
		return ExitError
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "aickpt-lint: %v\n", err)
		return ExitError
	}

	diags := Run(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "aickpt-lint: %v\n", err)
			return ExitError
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "aickpt-lint: %d diagnostic(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		return ExitDiags
	}
	return ExitClean
}
