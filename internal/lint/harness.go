package lint

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// This file is the testdata harness: a hand-rolled equivalent of
// golang.org/x/tools' analysistest, kept stdlib-only like the rest of the
// suite. Testdata packages live in a mini-module under testdata/mod (its own
// go.mod keeps the real module's ./... from picking them up), and each line
// that should trigger a diagnostic carries a trailing
//
//	// want "regexp"
//
// comment (several quoted regexps on one comment for several diagnostics on
// that line). CheckTestdata loads a package of that module, runs one
// analyzer, and fails on any unmatched diagnostic or unfulfilled want.

// expectation is one parsed want pattern.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// wantStringRE captures the quoted patterns of a want comment; both
// double-quoted and backquoted Go string forms are accepted.
var wantStringRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// collectWants parses the `// want` comments of the loaded files.
func collectWants(pkgs []*Package) ([]*expectation, error) {
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(commentText(c))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					quoted := wantStringRE.FindAllString(text, -1)
					if len(quoted) == 0 {
						return nil, fmt.Errorf("%s:%d: want comment without a quoted pattern", pos.Filename, pos.Line)
					}
					for _, q := range quoted {
						pat, err := strconv.Unquote(q)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants, nil
}

// TB is the subset of *testing.T the harness needs (keeps this file free of
// a testing import, so the package builds identically in and out of tests).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// CheckTestdata loads pattern (module-root-relative, e.g.
// "./internal/guardedby") from the testdata module rooted at dir, runs one
// analyzer, and asserts the diagnostics are exactly the ones the `// want`
// comments announce.
func CheckTestdata(t TB, a *Analyzer, dir, pattern string) {
	t.Helper()
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.Load(pattern)
	if err != nil {
		t.Fatalf("load %s: %v", pattern, err)
	}
	wants, err := collectWants(pkgs)
	if err != nil {
		t.Fatalf("%v", err)
	}
	diags := Run(pkgs, []*Analyzer{a})
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: want %q: no diagnostic matched", w.file, w.line, w.re)
		}
	}
}
