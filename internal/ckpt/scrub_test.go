package ckpt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// sealEpochs writes n sealed epochs (epoch e touches pages 0..e-1 with
// content derived from both) and returns the repository.
func sealEpochs(t *testing.T, fs FS, n int, pageSize int) *Repository {
	t.Helper()
	r := NewRepository(fs, pageSize)
	buf := make([]byte, pageSize)
	for e := 1; e <= n; e++ {
		for p := 0; p < e; p++ {
			for i := range buf {
				buf[i] = byte(p*31 + e*7 + i)
			}
			if err := r.WritePage(uint64(e), p, buf, pageSize); err != nil {
				t.Fatalf("WritePage(%d,%d): %v", e, p, err)
			}
		}
		if err := r.EndEpoch(uint64(e)); err != nil {
			t.Fatalf("EndEpoch(%d): %v", e, err)
		}
	}
	return r
}

// healthByStatus indexes a VerifyChain result by status.
func healthByStatus(hs []SegmentHealth) map[string][]SegmentHealth {
	out := map[string][]SegmentHealth{}
	for _, h := range hs {
		out[h.Status] = append(out[h.Status], h)
	}
	return out
}

func TestVerifyChainCleanChain(t *testing.T) {
	fs := &MemFS{}
	sealEpochs(t, fs, 3, 16)
	hs, err := VerifyChain(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 3 {
		t.Fatalf("got %d entries, want 3", len(hs))
	}
	for _, h := range hs {
		if h.Status != StatusOK || h.Damaged() {
			t.Errorf("%s: status %q damaged=%v, want ok", h.Manifest, h.Status, h.Damaged())
		}
		if h.PageCount != int(h.Epoch) {
			t.Errorf("%s: PageCount = %d, want %d", h.Manifest, h.PageCount, h.Epoch)
		}
		if h.Segment == "" {
			t.Errorf("%s: missing segment name", h.Manifest)
		}
	}
}

func TestVerifyChainTruncatedSegmentTail(t *testing.T) {
	fs := &MemFS{}
	sealEpochs(t, fs, 2, 16)
	name := segmentName(2)
	fs.Truncate(name, len(fs.files[name])-5)
	hs, err := VerifyChain(fs)
	if err != nil {
		t.Fatal(err)
	}
	by := healthByStatus(hs)
	if len(by[StatusSegmentCorrupt]) != 1 || by[StatusSegmentCorrupt][0].Epoch != 2 {
		t.Fatalf("want epoch 2 segment-corrupt, got %+v", hs)
	}
	if !by[StatusSegmentCorrupt][0].Damaged() {
		t.Error("truncated tail must count as damage")
	}
	if len(by[StatusOK]) != 1 || by[StatusOK][0].Epoch != 1 {
		t.Errorf("epoch 1 should stay ok: %+v", hs)
	}
}

func TestVerifyChainBitFlippedRecord(t *testing.T) {
	fs := &MemFS{}
	sealEpochs(t, fs, 2, 16)
	fs.files[segmentName(1)][24] ^= 0x01 // payload byte under the record hash
	hs, err := VerifyChain(fs)
	if err != nil {
		t.Fatal(err)
	}
	by := healthByStatus(hs)
	if len(by[StatusSegmentCorrupt]) != 1 || by[StatusSegmentCorrupt][0].Epoch != 1 {
		t.Fatalf("want epoch 1 segment-corrupt, got %+v", hs)
	}
	if d := by[StatusSegmentCorrupt][0].Detail; d == "" {
		t.Error("corrupt entry should carry the verification error")
	}
}

func TestVerifyChainMissingSegment(t *testing.T) {
	fs := &MemFS{}
	sealEpochs(t, fs, 2, 16)
	if err := fs.Remove(segmentName(2)); err != nil {
		t.Fatal(err)
	}
	hs, err := VerifyChain(fs)
	if err != nil {
		t.Fatal(err)
	}
	by := healthByStatus(hs)
	if len(by[StatusSegmentMissing]) != 1 || by[StatusSegmentMissing][0].Epoch != 2 {
		t.Fatalf("want epoch 2 segment-missing, got %+v", hs)
	}
}

// TestVerifyChainTornTailManifest: a corrupt manifest NEWER than every
// intact entry is the in-flight write of a crash — the epoch never sealed,
// so it is reported torn-tail (not damage) and the strict loader still
// accepts the chain.
func TestVerifyChainTornTailManifest(t *testing.T) {
	fs := &MemFS{}
	sealEpochs(t, fs, 3, 16)
	fs.Truncate(manifestName(3), 9)
	hs, err := VerifyChain(fs)
	if err != nil {
		t.Fatal(err)
	}
	by := healthByStatus(hs)
	torn := by[StatusTornTail]
	if len(torn) != 1 || torn[0].Epoch != 3 || torn[0].Damaged() {
		t.Fatalf("want epoch 3 torn-tail (not damaged), got %+v", hs)
	}
	if len(by[StatusOK]) != 2 {
		t.Errorf("epochs 1,2 should stay ok: %+v", hs)
	}
	if _, err := LoadChain(fs); err != nil {
		t.Errorf("strict loader must accept a torn tail: %v", err)
	}
	im, err := Restore(fs)
	if err != nil {
		t.Fatal(err)
	}
	if im.Epoch != 2 {
		t.Errorf("restore reached epoch %d, want 2 (torn epoch ignored)", im.Epoch)
	}
}

// TestVerifyChainInteriorCorruptManifest: a corrupt manifest BELOW the
// chain's reach was provably sealed once — real damage that strict loading
// refuses and lenient loading classifies as manifest-corrupt.
func TestVerifyChainInteriorCorruptManifest(t *testing.T) {
	fs := &MemFS{}
	sealEpochs(t, fs, 3, 16)
	fs.files[manifestName(1)] = []byte(`{"epoch":`)
	hs, err := VerifyChain(fs)
	if err != nil {
		t.Fatal(err)
	}
	by := healthByStatus(hs)
	bad := by[StatusManifestCorrupt]
	if len(bad) != 1 || bad[0].Epoch != 1 || !bad[0].Damaged() {
		t.Fatalf("want epoch 1 manifest-corrupt (damaged), got %+v", hs)
	}
	if _, err := LoadChain(fs); err == nil {
		t.Fatal("strict loader must reject interior manifest corruption")
	} else if !strings.Contains(err.Error(), "interior") || !strings.Contains(err.Error(), "scrub") {
		t.Errorf("error should name the damage and the repair path: %v", err)
	}
}

// TestVerifyChainCorruptBaseManifest: an unreadable base manifest is an
// uncommitted compaction artifact — the epochs it would cover are still
// live, so the chain remains intact and the issue is not damage.
func TestVerifyChainCorruptBaseManifest(t *testing.T) {
	fs := &MemFS{}
	sealEpochs(t, fs, 3, 16)
	pages := map[int][]byte{0: bytes.Repeat([]byte{0xab}, 16)}
	if _, err := WriteBase(fs, 1, 2, 16, pages, 0); err != nil {
		t.Fatal(err)
	}
	fs.Truncate(baseManifestName(1, 2), 4)
	hs, err := VerifyChain(fs)
	if err != nil {
		t.Fatal(err)
	}
	by := healthByStatus(hs)
	torn := by[StatusTornTail]
	if len(torn) != 1 || !torn[0].IsBase || torn[0].Damaged() {
		t.Fatalf("corrupt base manifest should be a torn (base) artifact, got %+v", hs)
	}
	if len(by[StatusOK]) != 3 {
		t.Errorf("all 3 epochs should stay live and ok: %+v", hs)
	}
	im, err := Restore(fs)
	if err != nil || im.Epoch != 3 {
		t.Errorf("restore = epoch %d, %v; want epoch 3 from the intact epochs", im.Epoch, err)
	}
}

// TestVerifyChainTornManifestV1 exercises the classification over a
// hand-built format-v1 repository (manifests without a format field).
func TestVerifyChainTornManifestV1(t *testing.T) {
	const pageSize = 16
	v1 := func(epoch uint64, pages []int) []byte {
		man, err := json.Marshal(map[string]any{
			"epoch":       epoch,
			"page_size":   pageSize,
			"page_count":  len(pages),
			"pages":       pages,
			"total_bytes": len(pages) * (20 + pageSize),
		})
		if err != nil {
			t.Fatal(err)
		}
		return man
	}
	build := func() *MemFS {
		fs := &MemFS{}
		putFile(t, fs, segmentName(1), append(
			buildRecord(0, bytes.Repeat([]byte{0x11}, pageSize)),
			buildRecord(1, bytes.Repeat([]byte{0x22}, pageSize))...))
		putFile(t, fs, manifestName(1), v1(1, []int{0, 1}))
		putFile(t, fs, segmentName(2), buildRecord(0, bytes.Repeat([]byte{0x33}, pageSize)))
		putFile(t, fs, manifestName(2), v1(2, []int{0}))
		return fs
	}

	// Intact v1 chain verifies clean.
	fs := build()
	hs, err := VerifyChain(fs)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hs {
		if h.Status != StatusOK {
			t.Fatalf("v1 chain entry %s = %q: %s", h.Manifest, h.Status, h.Detail)
		}
	}

	// Torn newest v1 manifest: crash artifact.
	fs = build()
	fs.Truncate(manifestName(2), 11)
	hs, _ = VerifyChain(fs)
	by := healthByStatus(hs)
	if len(by[StatusTornTail]) != 1 || by[StatusTornTail][0].Epoch != 2 {
		t.Fatalf("want torn-tail epoch 2, got %+v", hs)
	}

	// Torn interior v1 manifest: real damage.
	fs = build()
	fs.Truncate(manifestName(1), 11)
	hs, _ = VerifyChain(fs)
	by = healthByStatus(hs)
	if len(by[StatusManifestCorrupt]) != 1 || by[StatusManifestCorrupt][0].Epoch != 1 {
		t.Fatalf("want manifest-corrupt epoch 1, got %+v", hs)
	}
}

func TestQuarantineRemovesFromChainNamespace(t *testing.T) {
	fs := &MemFS{}
	sealEpochs(t, fs, 3, 16)
	orig := append([]byte(nil), fs.files[manifestName(1)]...)
	fs.files[manifestName(1)] = []byte("garbage")
	if err := Quarantine(fs, manifestName(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.files[manifestName(1)]; ok {
		t.Fatal("original file should be gone after quarantine")
	}
	q := fs.files[QuarantinePrefix+manifestName(1)]
	if string(q) != "garbage" {
		t.Errorf("quarantined bytes = %q, want the corrupt original preserved", q)
	}
	// The loaders no longer see the corrupt file at all.
	_, issues, err := LoadChainLenient(fs)
	if err != nil {
		t.Fatal(err)
	}
	for _, is := range issues {
		if is.Name == manifestName(1) {
			t.Errorf("quarantined manifest still reported: %+v", is)
		}
	}
	_ = orig
}

// TestRewriteEpochRepairsCorruptSegment is the ckpt-level repair loop:
// corrupt a sealed segment, quarantine it, rewrite the epoch from page
// content held elsewhere, and end with a clean, bit-identical chain.
func TestRewriteEpochRepairsCorruptSegment(t *testing.T) {
	const pageSize = 16
	fs := &MemFS{}
	sealEpochs(t, fs, 2, 16)
	want, err := Restore(fs)
	if err != nil {
		t.Fatal(err)
	}
	// A redundant copy of epoch 1's physical pages, as a lower tier holds.
	oldMan, copy1, err := EpochPages(fs, 1)
	if err != nil {
		t.Fatal(err)
	}

	fs.files[segmentName(1)][24] ^= 0xff
	if err := Quarantine(fs, segmentName(1)); err != nil {
		t.Fatal(err)
	}
	man, err := RewriteEpoch(fs, 1, pageSize, copy1, oldMan.Refs)
	if err != nil {
		t.Fatal(err)
	}
	if man.Epoch != 1 || man.PageCount != len(copy1) {
		t.Fatalf("rewritten manifest = %+v", man)
	}
	hs, err := VerifyChain(fs)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hs {
		if h.Damaged() {
			t.Errorf("%s still %q after rewrite: %s", h.Manifest, h.Status, h.Detail)
		}
	}
	got, err := Restore(fs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != want.Epoch || len(got.Pages) != len(want.Pages) {
		t.Fatalf("restored epoch %d / %d pages, want %d / %d", got.Epoch, len(got.Pages), want.Epoch, len(want.Pages))
	}
	for p, data := range want.Pages {
		if !bytes.Equal(got.Pages[p], data) {
			t.Errorf("page %d differs after repair", p)
		}
	}
}

// FuzzVerifyChain throws arbitrary manifest and segment bytes at the
// scrubber. Whatever the files hold, VerifyChain must classify without
// panicking, every status must be a known constant, and a chain the strict
// loader accepts must never be reported with interior manifest corruption.
func FuzzVerifyChain(f *testing.F) {
	goodSeg := buildRecord(0, bytes.Repeat([]byte{0x5a}, 16))
	goodMan := func(epoch uint64) []byte {
		b, _ := json.Marshal(Manifest{Epoch: epoch, PageSize: 16, PageCount: 1, Pages: []int{0},
			TotalBytes: int64(len(goodSeg)), Format: FormatV2})
		return b
	}
	f.Add(goodMan(1), goodMan(2), goodSeg)
	f.Add(goodMan(1)[:9], goodMan(2), goodSeg)  // interior torn manifest
	f.Add(goodMan(1), goodMan(2)[:9], goodSeg)  // torn tail
	f.Add(goodMan(1), goodMan(2), goodSeg[:19]) // truncated segment
	f.Add(goodMan(1), goodMan(2), []byte{})     // empty segment file
	corrupt := append([]byte(nil), goodSeg...)
	corrupt[25] ^= 0xff
	f.Add(goodMan(1), goodMan(2), corrupt) // bit flip under the hash
	f.Fuzz(func(t *testing.T, man1, man2, seg1 []byte) {
		fs := &MemFS{}
		putFile(t, fs, manifestName(1), man1)
		putFile(t, fs, manifestName(2), man2)
		putFile(t, fs, segmentName(1), seg1)
		putFile(t, fs, segmentName(2), buildRecord(0, bytes.Repeat([]byte{0x5a}, 16)))
		hs, err := VerifyChain(fs)
		if err != nil {
			return // e.g. mixed page sizes: rejected, not classified
		}
		known := map[string]bool{StatusOK: true, StatusTornTail: true,
			StatusManifestCorrupt: true, StatusSegmentMissing: true, StatusSegmentCorrupt: true}
		interior := 0
		for _, h := range hs {
			if !known[h.Status] {
				t.Fatalf("unknown status %q", h.Status)
			}
			if h.Status != StatusOK && h.Status != StatusSegmentMissing && h.Detail == "" &&
				h.Status != StatusTornTail && h.Status != StatusManifestCorrupt {
				t.Fatalf("%s: non-ok status %q without detail", h.Manifest, h.Status)
			}
			if h.Status == StatusManifestCorrupt {
				interior++
			}
		}
		if _, err := LoadChain(fs); err == nil && interior > 0 {
			t.Fatalf("strict loader accepted a chain VerifyChain calls interior-corrupt: %+v", hs)
		}
		_, _ = Restore(fs) // must not panic either way
		_ = fmt.Sprintf("%v", hs)
	})
}
