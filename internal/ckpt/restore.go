package ckpt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"

	"repro/internal/compress"
)

// Image is a restored memory image: the newest committed content of every
// page that was ever checkpointed. Pages absent from the map were never
// dirtied before the last sealed epoch and therefore hold their initial
// (zero) content, matching a freshly allocated protected region.
type Image struct {
	PageSize int
	Epoch    uint64 // newest sealed epoch folded into the image
	Pages    map[int][]byte
}

// PageOr returns the image content of page, or a zero page if it was never
// checkpointed.
func (im *Image) PageOr(page int) []byte {
	if d, ok := im.Pages[page]; ok {
		return d
	}
	return make([]byte, im.PageSize)
}

// EpochInfo summarizes a sealed epoch for inspection tools.
type EpochInfo struct {
	Manifest
	SegmentOK bool   // segment parsed and all hashes verified
	Err       string // parse/verification failure, if any
}

// sealedEpochs returns the manifests present on fs, sorted by epoch.
func sealedEpochs(fs FS) ([]Manifest, error) {
	names, err := fs.List()
	if err != nil {
		return nil, fmt.Errorf("ckpt: list: %w", err)
	}
	var ms []Manifest
	for _, n := range names {
		if !strings.HasPrefix(n, "epoch-") || !strings.HasSuffix(n, ".json") {
			continue
		}
		f, err := fs.Open(n)
		if err != nil {
			return nil, fmt.Errorf("ckpt: open %s: %w", n, err)
		}
		var m Manifest
		err = json.NewDecoder(f).Decode(&m)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("ckpt: manifest %s corrupt: %w", n, err)
		}
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Epoch < ms[j].Epoch })
	return ms, nil
}

// readSegment parses one epoch's segment and calls visit for every record.
func readSegment(fs FS, m Manifest, visit func(page int, data []byte)) error {
	if m.PageCount == 0 {
		return nil
	}
	f, err := fs.Open(segmentName(m.Epoch))
	if err != nil {
		return fmt.Errorf("ckpt: epoch %d sealed but segment missing: %w", m.Epoch, err)
	}
	defer f.Close()
	var hdr [20]byte
	count := 0
	for {
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("ckpt: epoch %d: truncated record header: %w", m.Epoch, err)
		}
		if binary.LittleEndian.Uint32(hdr[0:]) != recordMagic {
			return fmt.Errorf("ckpt: epoch %d: bad record magic", m.Epoch)
		}
		page := int(binary.LittleEndian.Uint32(hdr[4:]))
		size := int(binary.LittleEndian.Uint32(hdr[8:]))
		want := binary.LittleEndian.Uint64(hdr[12:])
		// Compressed payloads may exceed the page size by the one-byte
		// codec header (the verbatim-fallback encoding).
		maxSize := m.PageSize
		if m.Codec != 0 {
			maxSize = m.PageSize + 1
		}
		if size < 0 || size > maxSize {
			return fmt.Errorf("ckpt: epoch %d page %d: invalid size %d", m.Epoch, page, size)
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(f, data); err != nil {
			return fmt.Errorf("ckpt: epoch %d page %d: truncated payload: %w", m.Epoch, page, err)
		}
		h := fnv.New64a()
		h.Write(data)
		if h.Sum64() != want {
			return fmt.Errorf("ckpt: epoch %d page %d: hash mismatch", m.Epoch, page)
		}
		if m.Codec != 0 {
			decoded, err := compress.Decode(data, m.PageSize)
			if err != nil {
				return fmt.Errorf("ckpt: epoch %d page %d: %w", m.Epoch, page, err)
			}
			data = decoded
		}
		visit(page, data)
		count++
	}
	if count != m.PageCount {
		return fmt.Errorf("ckpt: epoch %d: segment has %d records, manifest says %d", m.Epoch, count, m.PageCount)
	}
	return nil
}

// Restore folds all sealed epochs (oldest to newest, newest content wins)
// into a memory image. Unsealed segments — a checkpoint interrupted by a
// crash — are ignored, which is exactly the recovery semantics of
// asynchronous checkpointing: the restart point is the last *completed*
// checkpoint.
func Restore(fs FS) (*Image, error) {
	ms, err := sealedEpochs(fs)
	if err != nil {
		return nil, err
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("ckpt: no sealed epochs to restore from")
	}
	im := &Image{PageSize: ms[0].PageSize, Pages: map[int][]byte{}}
	for _, m := range ms {
		if m.PageSize != im.PageSize {
			return nil, fmt.Errorf("ckpt: epoch %d page size %d != %d", m.Epoch, m.PageSize, im.PageSize)
		}
		err := readSegment(fs, m, func(page int, data []byte) {
			im.Pages[page] = data
		})
		if err != nil {
			return nil, err
		}
		im.Epoch = m.Epoch
	}
	return im, nil
}

// ListSealed returns the manifests of all sealed epochs on fs, sorted by
// epoch. Multi-level tier drains use it to enumerate what a tier holds.
func ListSealed(fs FS) ([]Manifest, error) { return sealedEpochs(fs) }

// ReadManifest returns the manifest of one sealed epoch, or an error when
// the epoch is not sealed on fs.
func ReadManifest(fs FS, epoch uint64) (Manifest, error) {
	f, err := fs.Open(manifestName(epoch))
	if err != nil {
		return Manifest{}, fmt.Errorf("ckpt: epoch %d not sealed: %w", epoch, err)
	}
	defer f.Close()
	var m Manifest
	if err := json.NewDecoder(f).Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("ckpt: manifest for epoch %d corrupt: %w", epoch, err)
	}
	return m, nil
}

// EpochPages reads one sealed epoch back in full, verifying record
// integrity, and returns its manifest plus a page→content map. The
// multi-level drainer uses it to promote a sealed epoch from the fast tier
// to slower, more resilient tiers.
func EpochPages(fs FS, epoch uint64) (Manifest, map[int][]byte, error) {
	m, err := ReadManifest(fs, epoch)
	if err != nil {
		return Manifest{}, nil, err
	}
	pages := make(map[int][]byte, m.PageCount)
	if err := readSegment(fs, m, func(page int, data []byte) {
		pages[page] = data
	}); err != nil {
		return Manifest{}, nil, err
	}
	return m, pages, nil
}

// LastSealedEpoch returns the newest sealed epoch number, or ok=false when
// the repository holds no sealed epochs. Restarted runtimes use it to
// continue epoch numbering.
func LastSealedEpoch(fs FS) (epoch uint64, ok bool, err error) {
	ms, err := sealedEpochs(fs)
	if err != nil {
		return 0, false, err
	}
	if len(ms) == 0 {
		return 0, false, nil
	}
	return ms[len(ms)-1].Epoch, true, nil
}

// Inspect verifies every sealed epoch and reports per-epoch health; it is
// the engine behind cmd/ckpt-inspect.
func Inspect(fs FS) ([]EpochInfo, error) {
	ms, err := sealedEpochs(fs)
	if err != nil {
		return nil, err
	}
	infos := make([]EpochInfo, 0, len(ms))
	for _, m := range ms {
		info := EpochInfo{Manifest: m, SegmentOK: true}
		if err := readSegment(fs, m, func(int, []byte) {}); err != nil {
			info.SegmentOK = false
			info.Err = err.Error()
		}
		infos = append(infos, info)
	}
	return infos, nil
}
