package ckpt

import (
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"

	"repro/internal/compress"
	"repro/internal/util"
)

// Image is a restored memory image: the newest committed content of every
// page that was ever checkpointed. Pages absent from the map were never
// dirtied before the last sealed epoch and therefore hold their initial
// (zero) content, matching a freshly allocated protected region.
type Image struct {
	PageSize int
	Epoch    uint64 // newest sealed epoch folded into the image
	Pages    map[int][]byte
	// SegmentsRead counts the segments the restore actually parsed; with a
	// compacted chain it is bounded by the compaction depth rather than the
	// run length.
	SegmentsRead int
}

// sharedZero returns a read-only all-zero slice of at least n bytes,
// grown (and republished) on demand. Callers must never write to it.
var sharedZero atomic.Pointer[[]byte]

func zeroPage(n int) []byte {
	if p := sharedZero.Load(); p != nil && len(*p) >= n {
		return (*p)[:n:n]
	}
	b := make([]byte, n)
	sharedZero.Store(&b)
	return b
}

// PageOr returns the image content of page, or a shared read-only zero
// page if it was never checkpointed. The zero page is shared by every
// caller and every Image: treat the returned slice as immutable (copy it
// before writing). Misses are allocation-free, so sweeping a sparse image
// page by page costs nothing beyond the map lookups.
func (im *Image) PageOr(page int) []byte {
	if d, ok := im.Pages[page]; ok {
		return d
	}
	return zeroPage(im.PageSize)
}

// EpochInfo summarizes a sealed epoch or base for inspection tools.
type EpochInfo struct {
	Manifest
	SegmentOK bool   // segment parsed and all hashes verified
	Err       string // parse/verification failure, if any
	// Superseded marks entries covered by a newer committed base: they are
	// ignored by restore and reclaimable by garbage collection.
	Superseded bool
}

// sealedEpochs returns the epoch manifests present on fs, sorted by epoch.
// A corrupt manifest newer than every decodable one is the torn tail of a
// mid-crash write — the epoch never sealed, so it is skipped; a corrupt
// manifest older than an intact one was provably sealed once, which is
// interior damage and an error (scrub repairs it). A chain whose manifests
// disagree on page size is rejected, naming the epoch that diverged —
// folding mixed-granularity epochs would silently misplace every page of
// the divergent epochs.
func sealedEpochs(fs FS) ([]Manifest, error) {
	names, err := fs.List()
	if err != nil {
		return nil, fmt.Errorf("ckpt: list: %w", err)
	}
	var ms []Manifest
	var bad []ChainIssue
	for _, n := range names {
		if !strings.HasPrefix(n, "epoch-") || !strings.HasSuffix(n, ".json") {
			continue
		}
		epoch, isBase, isChain := parseManifestEpoch(n)
		if !isChain || isBase {
			continue
		}
		m, err := decodeManifestFile(fs, n)
		if err != nil {
			bad = append(bad, ChainIssue{Name: n, Epoch: epoch, Err: err})
			continue
		}
		ms = append(ms, m)
	}
	sortManifests(ms)
	for _, b := range bad {
		if len(ms) == 0 || b.Epoch > ms[len(ms)-1].Epoch {
			continue // torn tail: never sealed
		}
		return nil, fmt.Errorf("ckpt: manifest %s corrupt (interior epoch %d; run scrub to repair it from a redundant tier): %w",
			b.Name, b.Epoch, b.Err)
	}
	for _, m := range ms {
		if m.PageSize != ms[0].PageSize {
			return nil, fmt.Errorf("ckpt: epoch %d has page size %d, chain uses %d: mixed-granularity chain is not restorable",
				m.Epoch, m.PageSize, ms[0].PageSize)
		}
	}
	return ms, nil
}

// readSegment parses one manifest's segment (epoch or base) and calls visit
// for every record.
func readSegment(fs FS, m Manifest, visit func(page int, data []byte)) error {
	if m.PageCount == 0 {
		return nil
	}
	f, err := fs.Open(segmentFile(m))
	if err != nil {
		return fmt.Errorf("ckpt: epoch %d sealed but segment missing: %w", m.Epoch, err)
	}
	defer f.Close()
	var hdr [20]byte
	// With a codec, the encoded payload is scratch (only the decoded copy
	// reaches visit), so one recycled buffer serves every record; without
	// one, the payload itself is handed to visit, which may retain it, so
	// it must be freshly allocated per record.
	var scratch []byte
	count := 0
	for {
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("ckpt: epoch %d: truncated record header: %w", m.Epoch, err)
		}
		if binary.LittleEndian.Uint32(hdr[0:]) != recordMagic {
			return fmt.Errorf("ckpt: epoch %d: bad record magic", m.Epoch)
		}
		page := int(binary.LittleEndian.Uint32(hdr[4:]))
		size := int(binary.LittleEndian.Uint32(hdr[8:]))
		want := binary.LittleEndian.Uint64(hdr[12:])
		// Without a codec a record payload is exactly one page; compressed
		// payloads vary but may exceed the page size only by the one-byte
		// codec header (the verbatim-fallback encoding). The codec decoder
		// enforces its exact output size below.
		if m.Codec == 0 && size != m.PageSize {
			return fmt.Errorf("ckpt: epoch %d page %d: record size %d != page size %d", m.Epoch, page, size, m.PageSize)
		}
		if size < 0 || size > m.PageSize+1 {
			return fmt.Errorf("ckpt: epoch %d page %d: invalid size %d", m.Epoch, page, size)
		}
		var data []byte
		if m.Codec != 0 {
			if cap(scratch) < size {
				scratch = make([]byte, m.PageSize+1)
			}
			data = scratch[:size]
		} else {
			data = make([]byte, size)
		}
		if _, err := io.ReadFull(f, data); err != nil {
			return fmt.Errorf("ckpt: epoch %d page %d: truncated payload: %w", m.Epoch, page, err)
		}
		if util.Fnv64a(data) != want {
			return fmt.Errorf("ckpt: epoch %d page %d: hash mismatch", m.Epoch, page)
		}
		if m.Codec != 0 {
			decoded, err := compress.Decode(data, m.PageSize)
			if err != nil {
				return fmt.Errorf("ckpt: epoch %d page %d: %w", m.Epoch, page, err)
			}
			data = decoded
		}
		visit(page, data)
		count++
	}
	if count != m.PageCount {
		return fmt.Errorf("ckpt: epoch %d: segment has %d records, manifest says %d", m.Epoch, count, m.PageCount)
	}
	return nil
}

// VisitSegment parses one manifest's segment (epoch or base), verifying
// record integrity and decoding transparently, and calls visit for every
// record. The compactor uses it to fold epoch ranges.
func VisitSegment(fs FS, m Manifest, visit func(page int, data []byte)) error {
	return readSegment(fs, m, visit)
}

// RestoreOptions tunes Restore.
type RestoreOptions struct {
	// Workers is the number of concurrent segment readers: each worker
	// parses, hash-verifies and codec-decodes whole segments (the chain's
	// base and epochs) while the caller folds finished segments into the
	// image in strict chain order, so the result is bit-identical to a
	// serial restore for any worker count. 1 restores serially on the
	// calling goroutine (the historical behavior); 0 picks
	// min(GOMAXPROCS, 8).
	Workers int
}

// restoreWorkers resolves the worker-count option against the chain width:
// no more workers than segments, and min(GOMAXPROCS, 8) by default.
func restoreWorkers(opt RestoreOptions, segments int) int {
	w := opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if w > 8 {
			w = 8
		}
	}
	if w > segments {
		w = segments
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Restore folds the chain (newest committed base, then every live sealed
// epoch, oldest to newest, newest content wins) into a memory image.
// Unsealed segments — a checkpoint or compaction interrupted by a crash —
// are ignored, which is exactly the recovery semantics of asynchronous
// checkpointing: the restart point is the last *completed* checkpoint. With
// a compacted chain the fold reads at most depth segments (the base plus
// the epochs after it) instead of the whole history. Segments are read by
// a small worker pool (see RestoreOptions.Workers); use RestoreWith to
// control the width.
func Restore(fs FS) (*Image, error) {
	return RestoreWith(fs, RestoreOptions{})
}

// RestoreWith is Restore with explicit options.
func RestoreWith(fs FS, opt RestoreOptions) (*Image, error) {
	ch, err := LoadChain(fs)
	if err != nil {
		return nil, err
	}
	if ch.Base == nil && len(ch.Epochs) == 0 {
		return nil, fmt.Errorf("ckpt: no sealed epochs to restore from")
	}
	entries := make([]Manifest, 0, 1+len(ch.Epochs))
	if ch.Base != nil {
		entries = append(entries, *ch.Base)
	}
	entries = append(entries, ch.Epochs...)

	im := &Image{PageSize: ch.PageSize, Pages: map[int][]byte{}}
	fold := func(m Manifest, pages map[int][]byte) {
		if m.PageCount > 0 {
			im.SegmentsRead++
		}
		for page, data := range pages {
			im.Pages[page] = data
		}
		if m.Base != nil {
			im.Epoch = m.Base.To
		} else {
			im.Epoch = m.Epoch
		}
	}

	if restoreWorkers(opt, len(entries)) == 1 {
		for _, m := range entries {
			pages := make(map[int][]byte, m.PageCount)
			if err := readSegment(fs, m, func(page int, data []byte) {
				pages[page] = data
			}); err != nil {
				return nil, err
			}
			fold(m, pages)
		}
		return im, nil
	}
	return restoreParallel(fs, entries, im, fold, restoreWorkers(opt, len(entries)))
}

// restoreParallel fans segment reads out across workers. Workers claim
// entries in chain order from an atomic cursor and deliver each parsed
// segment through its own buffered slot, so no worker ever blocks on the
// folder; the folder consumes slots in chain order, which reproduces the
// serial newest-epoch-wins fold (and the serial error: the first failing
// entry in chain order wins, later reads are cancelled via the stop flag).
func restoreParallel(fs FS, entries []Manifest, im *Image, fold func(Manifest, map[int][]byte), workers int) (*Image, error) {
	type segResult struct {
		pages map[int][]byte
		err   error
	}
	results := make([]chan segResult, len(entries))
	for i := range results {
		results[i] = make(chan segResult, 1)
	}
	var cursor atomic.Int64
	var stop atomic.Bool
	for w := 0; w < workers; w++ {
		go func() {
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(entries) || stop.Load() {
					return
				}
				m := entries[i]
				pages := make(map[int][]byte, m.PageCount)
				err := readSegment(fs, m, func(page int, data []byte) {
					pages[page] = data
				})
				if err != nil {
					pages = nil
				}
				results[i] <- segResult{pages: pages, err: err}
			}
		}()
	}
	for i, m := range entries {
		r := <-results[i]
		if r.err != nil {
			stop.Store(true)
			return nil, r.err
		}
		fold(m, r.pages)
	}
	return im, nil
}

// ListSealed returns the manifests of all sealed epochs on fs, sorted by
// epoch. Multi-level tier drains use it to enumerate what a tier holds.
// Epochs already folded into a base (and garbage-collected) are absent.
func ListSealed(fs FS) ([]Manifest, error) { return sealedEpochs(fs) }

// ReadManifest returns the manifest of one sealed epoch, or an error when
// the epoch is not sealed on fs.
func ReadManifest(fs FS, epoch uint64) (Manifest, error) {
	m, err := decodeManifestFile(fs, manifestName(epoch))
	if err != nil {
		return Manifest{}, fmt.Errorf("ckpt: epoch %d not sealed: %w", epoch, err)
	}
	return m, nil
}

// EpochPages reads one sealed epoch back in full, verifying record
// integrity, and returns its manifest plus a page→content map of its
// *physical* records (deduplicated pages are listed in the manifest's Refs
// but carry no data — the content they reference is already in the chain).
// The multi-level drainer uses it to promote a sealed epoch from the fast
// tier to slower, more resilient tiers.
func EpochPages(fs FS, epoch uint64) (Manifest, map[int][]byte, error) {
	m, err := ReadManifest(fs, epoch)
	if err != nil {
		return Manifest{}, nil, err
	}
	pages := make(map[int][]byte, m.PageCount)
	if err := readSegment(fs, m, func(page int, data []byte) {
		pages[page] = data
	}); err != nil {
		return Manifest{}, nil, err
	}
	return m, pages, nil
}

// LastSealedEpoch returns the newest sealed epoch number — through live
// epochs or a committed base — or ok=false when the repository holds no
// sealed state. Restarted runtimes use it to continue epoch numbering; it
// must account for bases because a fully compacted chain has no epoch
// files left, and restarting the numbering below the base would corrupt
// the chain.
func LastSealedEpoch(fs FS) (epoch uint64, ok bool, err error) {
	ch, err := LoadChain(fs)
	if err != nil {
		return 0, false, err
	}
	epoch, ok = ch.LastEpoch()
	return epoch, ok, nil
}

// Inspect verifies every chain entry — live epochs, the committed base, and
// not-yet-collected superseded entries — and reports per-entry health; it
// is the engine behind cmd/ckpt-inspect.
func Inspect(fs FS) ([]EpochInfo, error) {
	ch, err := LoadChain(fs)
	if err != nil {
		return nil, err
	}
	var infos []EpochInfo
	add := func(m Manifest, superseded bool) {
		info := EpochInfo{Manifest: m, SegmentOK: true, Superseded: superseded}
		if err := readSegment(fs, m, func(int, []byte) {}); err != nil {
			info.SegmentOK = false
			info.Err = err.Error()
		}
		infos = append(infos, info)
	}
	for _, m := range ch.StaleBases {
		add(m, true)
	}
	for _, m := range ch.Superseded {
		add(m, true)
	}
	if ch.Base != nil {
		add(*ch.Base, false)
	}
	for _, m := range ch.Epochs {
		add(m, false)
	}
	return infos, nil
}
