package ckpt

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
)

// Segment health statuses reported by VerifyChain.
const (
	// StatusOK: manifest decoded and every segment record verified.
	StatusOK = "ok"
	// StatusTornTail: a manifest torn by a mid-crash write, newer than
	// every intact chain entry — the epoch never sealed; harmless, no
	// repair needed (the file is still a quarantine candidate).
	StatusTornTail = "torn-tail"
	// StatusManifestCorrupt: an interior manifest failed to decode — the
	// epoch was provably sealed once, so this is real damage.
	StatusManifestCorrupt = "manifest-corrupt"
	// StatusSegmentMissing: a sealed manifest whose segment file is gone.
	StatusSegmentMissing = "segment-missing"
	// StatusSegmentCorrupt: a segment whose records fail verification
	// (bad magic, truncated tail, payload hash mismatch, record count).
	StatusSegmentCorrupt = "segment-corrupt"
)

// SegmentHealth is one VerifyChain finding: the health of one live chain
// entry (or one unloadable manifest).
type SegmentHealth struct {
	// Manifest is the manifest file name.
	Manifest string `json:"manifest"`
	// Segment is the segment file name ("" for epochs with no physical
	// records).
	Segment string `json:"segment,omitempty"`
	// Epoch is the entry's epoch (a base's To).
	Epoch uint64 `json:"epoch"`
	// IsBase marks a consolidated base entry.
	IsBase bool `json:"is_base,omitempty"`
	// Status is one of the Status* constants.
	Status string `json:"status"`
	// Detail carries the verification error for non-ok statuses.
	Detail string `json:"detail,omitempty"`
	// PageCount is the entry's physical record count (0 when the manifest
	// is unreadable).
	PageCount int `json:"page_count"`
}

// Damaged reports whether the entry needs repair (torn tails do not: they
// were never sealed).
func (h SegmentHealth) Damaged() bool {
	return h.Status != StatusOK && h.Status != StatusTornTail
}

// VerifyChain is a read-only scrub of the live chain: it loads whatever
// manifests decode, classifies the ones that do not (torn tail vs interior
// corruption), and re-reads every live segment — base plus live epochs —
// verifying record magic, sizes, payload hashes and record counts against
// the manifest. It mutates nothing; Scrub layers quarantine and repair on
// top of its findings.
func VerifyChain(fs FS) ([]SegmentHealth, error) {
	ch, issues, err := LoadChainLenient(fs)
	if err != nil {
		return nil, err
	}
	var out []SegmentHealth
	for _, is := range issues {
		h := SegmentHealth{Manifest: is.Name, Epoch: is.Epoch, IsBase: is.IsBase}
		if is.TornTail {
			h.Status = StatusTornTail
		} else {
			h.Status = StatusManifestCorrupt
		}
		if is.Err != nil {
			h.Detail = is.Err.Error()
		}
		out = append(out, h)
	}
	check := func(m Manifest) {
		h := SegmentHealth{
			Manifest:  manifestFile(m),
			Epoch:     m.Epoch,
			IsBase:    m.Base != nil,
			Status:    StatusOK,
			PageCount: m.PageCount,
		}
		if m.PageCount > 0 {
			h.Segment = segmentFile(m)
		}
		if err := readSegment(fs, m, func(int, []byte) {}); err != nil {
			if errors.Is(err, iofs.ErrNotExist) {
				h.Status = StatusSegmentMissing
			} else {
				h.Status = StatusSegmentCorrupt
			}
			h.Detail = err.Error()
		}
		out = append(out, h)
	}
	if ch.Base != nil {
		check(*ch.Base)
	}
	for _, m := range ch.Epochs {
		check(m)
	}
	return out, nil
}

// QuarantinePrefix is prepended to a quarantined file's name. The prefix
// removes the file from the chain's namespace — the loaders only consider
// epoch-*/base-* names — while preserving its bytes for post-mortems.
const QuarantinePrefix = "quarantine-"

// Quarantine moves a damaged chain file out of the chain's namespace:
// its bytes are copied under QuarantinePrefix and the original removed,
// so a subsequent repair can publish a clean replacement without the
// corrupt bytes shadowing it (or lingering as a plausible-looking file if
// the repair is interrupted).
func Quarantine(fs FS, name string) error {
	src, err := fs.Open(name)
	if err != nil {
		return fmt.Errorf("ckpt: quarantine %s: %w", name, err)
	}
	dst, err := fs.Create(QuarantinePrefix + name)
	if err != nil {
		src.Close()
		return fmt.Errorf("ckpt: quarantine %s: %w", name, err)
	}
	_, err = io.Copy(dst, src)
	src.Close()
	if err != nil {
		Discard(dst)
		return fmt.Errorf("ckpt: quarantine %s: %w", name, err)
	}
	if err := dst.Close(); err != nil {
		return fmt.Errorf("ckpt: quarantine %s: %w", name, err)
	}
	if err := fs.Remove(name); err != nil {
		return fmt.Errorf("ckpt: quarantine %s: %w", name, err)
	}
	return nil
}

// RewriteEpoch rebuilds one sealed epoch from raw page content fetched
// from a redundant tier (peer shards or the PFS mirror): the segment is
// written first, the manifest — the commit point — last, exactly like the
// original seal, so a crash mid-repair leaves the epoch unsealed rather
// than half-repaired and the repair simply reruns. pages maps page ID to
// raw content (the rewritten records are stored uncompressed); refs
// preserves the epoch's dedup annotations when the old manifest was still
// decodable, or nil to drop them (refs are never needed for restore).
func RewriteEpoch(fs FS, epoch uint64, pageSize int, pages map[int][]byte, refs []PageRef) (Manifest, error) {
	man := Manifest{Epoch: epoch, PageSize: pageSize, Format: FormatV2, Refs: refs}
	if len(pages) > 0 {
		w := &segmentWriter{pageSize: pageSize}
		f, err := fs.Create(segmentName(epoch))
		if err != nil {
			return Manifest{}, fmt.Errorf("ckpt: rewrite epoch %d: %w", epoch, err)
		}
		if err := w.begin(f); err != nil {
			Discard(f)
			return Manifest{}, err
		}
		for _, id := range sortedPageIDs(pages) {
			if err := w.writeRecord(&man, id, pages[id], contentHash(pages[id])); err != nil {
				Discard(f)
				return Manifest{}, fmt.Errorf("ckpt: rewrite epoch %d page %d: %w", epoch, id, err)
			}
		}
		if err := w.finish(); err != nil {
			return Manifest{}, fmt.Errorf("ckpt: rewrite epoch %d: %w", epoch, err)
		}
	}
	if err := writeManifestFile(fs, manifestName(epoch), &man); err != nil {
		return Manifest{}, err
	}
	return man, nil
}
