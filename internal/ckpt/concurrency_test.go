package ckpt

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/compress"
)

// The staged write path: many goroutines write pages of one epoch
// concurrently, the single segment-writer goroutine appends them, and the
// sealed epoch reads back intact — physical records, dedup refs and
// manifest bookkeeping all consistent. Run with -race.
func TestRepositoryConcurrentWritePage(t *testing.T) {
	for _, codec := range []compress.Codec{compress.None, compress.Flate} {
		codec := codec
		t.Run(fmt.Sprintf("codec%d", codec), func(t *testing.T) {
			const pageSize, nPages, writers = 128, 96, 8
			fs := &MemFS{}
			repo := NewRepository(fs, pageSize)
			repo.SetCodec(codec)

			content := func(p int, stamp byte) []byte {
				data := make([]byte, pageSize)
				for i := range data {
					data[i] = byte(p)*5 + stamp + byte(i%11)
				}
				return data
			}
			writeEpoch := func(epoch uint64, stampFor func(p int) byte) {
				var wg sync.WaitGroup
				work := make(chan int)
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for p := range work {
							// Write through a scratch buffer the caller
							// mutates afterwards: the repository must not
							// retain it.
							scratch := content(p, stampFor(p))
							if err := repo.WritePage(epoch, p, scratch, pageSize); err != nil {
								t.Error(err)
								return
							}
							for i := range scratch {
								scratch[i] = 0xFF
							}
						}
					}()
				}
				for p := 0; p < nPages; p++ {
					work <- p
				}
				close(work)
				wg.Wait()
				if err := repo.EndEpoch(epoch); err != nil {
					t.Fatal(err)
				}
			}

			writeEpoch(1, func(p int) byte { return 1 })
			// Epoch 2 rewrites even pages identically (dedup refs) and odd
			// pages with fresh content (physical records).
			writeEpoch(2, func(p int) byte {
				if p%2 == 0 {
					return 1
				}
				return 2
			})

			m1, pages1, err := EpochPages(fs, 1)
			if err != nil {
				t.Fatal(err)
			}
			if m1.PageCount != nPages || len(m1.Refs) != 0 {
				t.Fatalf("epoch 1: %d records, %d refs, want %d records", m1.PageCount, len(m1.Refs), nPages)
			}
			for p := 0; p < nPages; p++ {
				if !bytes.Equal(pages1[p], content(p, 1)) {
					t.Fatalf("epoch 1 page %d content mismatch", p)
				}
			}
			m2, pages2, err := EpochPages(fs, 2)
			if err != nil {
				t.Fatal(err)
			}
			if m2.PageCount != nPages/2 || len(m2.Refs) != nPages/2 {
				t.Fatalf("epoch 2: %d records, %d refs, want %d each", m2.PageCount, len(m2.Refs), nPages/2)
			}
			for p := 1; p < nPages; p += 2 {
				if !bytes.Equal(pages2[p], content(p, 2)) {
					t.Fatalf("epoch 2 page %d content mismatch", p)
				}
			}

			im, err := Restore(fs)
			if err != nil {
				t.Fatal(err)
			}
			for p := 0; p < nPages; p++ {
				stamp := byte(1)
				if p%2 == 1 {
					stamp = 2
				}
				if !bytes.Equal(im.Pages[p], content(p, stamp)) {
					t.Fatalf("restored page %d content mismatch", p)
				}
			}
			stats := repo.DedupStats()
			if stats.PagesStored != nPages+nPages/2 || stats.PagesDeduped != nPages/2 {
				t.Errorf("dedup stats = %+v", stats)
			}
		})
	}
}

// A failing FS surfaces the staged writer's error at the seal, and the
// epoch stays unsealed (invisible to restore) — the crash-consistency
// contract under the concurrent write path.
func TestRepositoryStagedWriteErrorFailsSeal(t *testing.T) {
	const pageSize = 64
	fs := &MemFS{}
	repo := NewRepository(fs, pageSize)
	data := bytes.Repeat([]byte{7}, pageSize)
	if err := repo.WritePage(1, 0, data, pageSize); err != nil {
		t.Fatal(err)
	}
	if err := repo.EndEpoch(1); err != nil {
		t.Fatal(err)
	}
	bad := &failingCreateFS{FS: fs, failOn: segmentName(2)}
	repo2 := NewRepository(bad, pageSize)
	if err := repo2.WritePage(2, 0, bytes.Repeat([]byte{8}, pageSize), pageSize); err == nil {
		t.Fatal("segment create failure not surfaced")
	}
	// The chain still restores to epoch 1.
	im, err := Restore(fs)
	if err != nil {
		t.Fatal(err)
	}
	if im.Epoch != 1 {
		t.Fatalf("restored epoch %d, want 1", im.Epoch)
	}
}

// A staged record that never reaches the segment discards the whole epoch
// at the seal — and the epoch's dedup/storage counters go with it, so
// DedupStats only ever describes bytes a restore can read.
func TestRepositoryFailedEpochDropsStats(t *testing.T) {
	const pageSize = 8192 // larger than the bufio buffer: writes hit the FS
	fs := &brokenSegmentFS{FS: &MemFS{}}
	repo := NewRepository(fs, pageSize)
	data := bytes.Repeat([]byte{9}, pageSize)
	writeErr := repo.WritePage(1, 0, data, pageSize)
	sealErr := repo.EndEpoch(1)
	if writeErr == nil && sealErr == nil {
		t.Fatal("broken segment writes surfaced neither at WritePage nor at EndEpoch")
	}
	if st := repo.DedupStats(); st.PagesStored != 0 || st.BytesStored != 0 {
		t.Errorf("stats charged for a discarded epoch: %+v", st)
	}
}

// brokenSegmentFS serves segment files whose writes always fail.
type brokenSegmentFS struct {
	FS
}

type brokenFile struct{ io.WriteCloser }

func (brokenFile) Write([]byte) (int, error) {
	return 0, fmt.Errorf("injected write failure")
}

func (f *brokenSegmentFS) Create(name string) (io.WriteCloser, error) {
	wc, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(name, ".pages") {
		return brokenFile{wc}, nil
	}
	return wc, nil
}

// failingCreateFS fails Create for one specific name.
type failingCreateFS struct {
	FS
	failOn string
}

func (f *failingCreateFS) Create(name string) (io.WriteCloser, error) {
	if name == f.failOn {
		return nil, fmt.Errorf("injected create failure for %s", name)
	}
	return f.FS.Create(name)
}
