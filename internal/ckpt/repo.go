package ckpt

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sync"

	"repro/internal/compress"
)

// Record format inside epoch-%08d.pages:
//
//	magic   uint32  'AICP'
//	page    uint32
//	size    uint32  (payload bytes)
//	hash    uint64  (FNV-64a of payload)
//	payload [size]byte
//
// The manifest epoch-%08d.json is written when the epoch is sealed and is
// the commit point: epochs without a manifest are ignored on restore.

const recordMagic = 0x41494350 // "AICP"

func segmentName(epoch uint64) string  { return fmt.Sprintf("epoch-%08d.pages", epoch) }
func manifestName(epoch uint64) string { return fmt.Sprintf("epoch-%08d.json", epoch) }

// Manifest describes one sealed epoch.
type Manifest struct {
	Epoch      uint64 `json:"epoch"`
	PageSize   int    `json:"page_size"`
	PageCount  int    `json:"page_count"`
	TotalBytes int64  `json:"total_bytes"`
	// Codec names the compression codec applied to every record payload
	// of the epoch (0 = none); restore decodes transparently.
	Codec uint8 `json:"codec,omitempty"`
	Pages []int `json:"pages"`
}

// Repository stores checkpoint epochs on an FS. It implements
// storage.Backend so the page manager can commit straight into it.
type Repository struct {
	fs       FS
	pageSize int
	codec    compress.Codec

	mu      sync.Mutex
	cur     io.WriteCloser
	curBuf  *bufio.Writer
	curMan  Manifest
	curOpen bool
}

// NewRepository returns a repository writing pageSize-sized pages to fs.
func NewRepository(fs FS, pageSize int) *Repository {
	if pageSize <= 0 {
		panic("ckpt: non-positive page size")
	}
	return &Repository{fs: fs, pageSize: pageSize}
}

// SetCodec enables payload compression for all subsequently written epochs
// (compress.Zero for zero-page elimination, compress.Flate for DEFLATE).
// Restore decodes transparently via the manifest's codec field. Must not be
// called while an epoch is open.
func (r *Repository) SetCodec(c compress.Codec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.curOpen {
		panic("ckpt: SetCodec with an open epoch")
	}
	r.codec = c
}

// PageSize returns the page size the repository was created with.
func (r *Repository) PageSize() int { return r.pageSize }

// WritePage implements storage.Backend. Pages of an epoch may arrive in any
// order; the first page of a new epoch opens its segment. data must be
// non-nil (the repository stores real content; phantom simulations use the
// timing backends instead).
func (r *Repository) WritePage(epoch uint64, page int, data []byte, size int) error {
	if data == nil {
		return fmt.Errorf("ckpt: nil page data for page %d (phantom writes not storable)", page)
	}
	if len(data) != size {
		return fmt.Errorf("ckpt: page %d: data length %d != size %d", page, len(data), size)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.curOpen && r.curMan.Epoch != epoch {
		return fmt.Errorf("ckpt: page for epoch %d while epoch %d is open", epoch, r.curMan.Epoch)
	}
	if !r.curOpen {
		f, err := r.fs.Create(segmentName(epoch))
		if err != nil {
			return fmt.Errorf("ckpt: create segment: %w", err)
		}
		r.cur = f
		r.curBuf = bufio.NewWriter(f)
		r.curMan = Manifest{Epoch: epoch, PageSize: r.pageSize, Codec: uint8(r.codec)}
		r.curOpen = true
	}
	if r.codec != compress.None {
		data = compress.Encode(r.codec, data)
		size = len(data)
	}
	h := fnv.New64a()
	h.Write(data)
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], recordMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(page))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(size))
	binary.LittleEndian.PutUint64(hdr[12:], h.Sum64())
	if _, err := r.curBuf.Write(hdr[:]); err != nil {
		return fmt.Errorf("ckpt: write header: %w", err)
	}
	if _, err := r.curBuf.Write(data); err != nil {
		return fmt.Errorf("ckpt: write payload: %w", err)
	}
	r.curMan.PageCount++
	r.curMan.TotalBytes += int64(len(hdr)) + int64(size)
	r.curMan.Pages = append(r.curMan.Pages, page)
	return nil
}

// EndEpoch implements storage.Backend: it flushes the segment and writes the
// manifest, sealing the epoch.
func (r *Repository) EndEpoch(epoch uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.curOpen {
		// An epoch with zero dirty pages still seals (empty manifest) so
		// restore knows the checkpoint completed.
		r.curMan = Manifest{Epoch: epoch, PageSize: r.pageSize}
	} else if r.curMan.Epoch != epoch {
		return fmt.Errorf("ckpt: sealing epoch %d while epoch %d is open", epoch, r.curMan.Epoch)
	}
	if r.curOpen {
		if err := r.curBuf.Flush(); err != nil {
			return fmt.Errorf("ckpt: flush segment: %w", err)
		}
		if err := r.cur.Close(); err != nil {
			return fmt.Errorf("ckpt: close segment: %w", err)
		}
	}
	mf, err := r.fs.Create(manifestName(epoch))
	if err != nil {
		return fmt.Errorf("ckpt: create manifest: %w", err)
	}
	enc := json.NewEncoder(mf)
	if err := enc.Encode(&r.curMan); err != nil {
		mf.Close()
		return fmt.Errorf("ckpt: encode manifest: %w", err)
	}
	if err := mf.Close(); err != nil {
		return fmt.Errorf("ckpt: close manifest: %w", err)
	}
	r.curOpen = false
	r.cur, r.curBuf = nil, nil
	return nil
}

// Abort discards any open, unsealed epoch (used on shutdown after failure).
func (r *Repository) Abort() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.curOpen {
		r.cur.Close()
		r.curOpen = false
		r.cur, r.curBuf = nil, nil
	}
}
