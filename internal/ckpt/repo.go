package ckpt

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compress"
	"repro/internal/obs"
	"repro/internal/util"
)

// Record format inside epoch-%08d.pages (and base-%08d-%08d.pages):
//
//	magic   uint32  'AICP'
//	page    uint32
//	size    uint32  (payload bytes)
//	hash    uint64  (FNV-64a of payload)
//	payload [size]byte
//
// The manifest epoch-%08d.json is written when the epoch is sealed and is
// the commit point: epochs without a manifest are ignored on restore.

const recordMagic = 0x41494350 // "AICP"

// recordSampleEvery is the WritePage latency-sampling interval: one page in
// every recordSampleEvery pays the two clock reads and the journal record
// for RecordWriteNs / StageCompress / StageDedup. The repository sits
// inside the core committer's CommitWriteNs measurement, which stays exact
// per page, so sampling here loses no end-to-end latency fidelity — it
// only thins the duplicated inner timer to keep the per-page metric load
// within the <2% commit-overhead budget.
const recordSampleEvery = 8

func segmentName(epoch uint64) string  { return fmt.Sprintf("epoch-%08d.pages", epoch) }
func manifestName(epoch uint64) string { return fmt.Sprintf("epoch-%08d.json", epoch) }

// Manifest describes one sealed epoch (or, with Base set, one consolidated
// base segment).
type Manifest struct {
	Epoch      uint64 `json:"epoch"`
	PageSize   int    `json:"page_size"`
	PageCount  int    `json:"page_count"`
	TotalBytes int64  `json:"total_bytes"`
	// Codec names the compression codec applied to every record payload
	// of the epoch (0 = none); restore decodes transparently.
	Codec uint8 `json:"codec,omitempty"`
	Pages []int `json:"pages"`
	// Format is the manifest format version: 0 (absent) is the v1 format,
	// FormatV2 adds Hashes, Refs and Base.
	Format int `json:"format,omitempty"`
	// Hashes holds the FNV-64a hash of the raw (uncompressed) content of
	// Pages[i]; the dedup index is rebuilt from it after a restart.
	Hashes []uint64 `json:"hashes,omitempty"`
	// Refs lists the pages of the epoch elided by content-addressed dedup:
	// their content is bit-identical to an earlier physical record.
	Refs []PageRef `json:"refs,omitempty"`
	// Base marks a consolidated base segment covering an epoch range.
	Base *BaseRange `json:"base,omitempty"`
}

// DedupCount returns the number of pages the epoch elided via dedup.
func (m *Manifest) DedupCount() int { return len(m.Refs) }

// DedupRatio returns the fraction of the epoch's dirty pages that were
// elided via dedup (0 when the epoch wrote nothing).
func (m *Manifest) DedupRatio() float64 {
	total := m.PageCount + len(m.Refs)
	if total == 0 {
		return 0
	}
	return float64(len(m.Refs)) / float64(total)
}

// segmentWriter streams self-checking records into a segment file and
// accumulates the manifest bookkeeping. It is shared by the repository's
// streaming epoch path and the compactor's base writer.
type segmentWriter struct {
	pageSize int
	codec    uint8
	f        io.WriteCloser
	buf      *bufio.Writer
	hdr      [20]byte // record-header scratch: a stack header escapes into
	// the underlying writer interface on bufio pass-through, costing one
	// heap allocation per record
}

func (w *segmentWriter) begin(f io.WriteCloser) error {
	w.f = f
	w.buf = bufio.NewWriter(f)
	return nil
}

// writeRecord encodes one page record (applying the codec) and updates the
// manifest. rawHash is the FNV-64a hash of data before encoding.
func (w *segmentWriter) writeRecord(man *Manifest, page int, data []byte, rawHash uint64) error {
	if compress.Codec(w.codec) != compress.None {
		data = compress.Encode(compress.Codec(w.codec), data)
	}
	return w.writeEncoded(man, page, data, rawHash)
}

// writeEncoded appends one record whose payload is already codec-encoded
// (or verbatim for codec None) and updates the manifest bookkeeping.
func (w *segmentWriter) writeEncoded(man *Manifest, page int, payload []byte, rawHash uint64) error {
	hdr := w.hdr[:]
	binary.LittleEndian.PutUint32(hdr[0:], recordMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(page))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[12:], util.Fnv64a(payload))
	if _, err := w.buf.Write(hdr[:]); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	if _, err := w.buf.Write(payload); err != nil {
		return fmt.Errorf("write payload: %w", err)
	}
	man.PageCount++
	man.TotalBytes += int64(len(hdr)) + int64(len(payload))
	man.Pages = append(man.Pages, page)
	man.Hashes = append(man.Hashes, rawHash)
	return nil
}

// payloadPool recycles encode-output and staging-copy buffers across pages
// and epochs: every page flushed used to allocate a fresh buffer that died
// milliseconds later. Buffers are returned once their record reaches the
// segment writer (or the epoch fails).
var payloadPool = sync.Pool{New: func() any { return new([]byte) }}

// recordJob is one encoded page record staged for the segment writer.
type recordJob struct {
	page    int
	payload []byte // codec-encoded, owned by the job
	rawHash uint64
	buf     *[]byte // pooled backing buffer to release after the write, or nil
}

// release returns the job's pooled buffer, if any, once the payload is no
// longer referenced.
//
//aickpt:release payloadPool
func (j *recordJob) release() {
	if j.buf != nil {
		*j.buf = j.payload[:0]
		payloadPool.Put(j.buf)
		j.buf = nil
	}
}

// epochStage is the staging buffer between concurrent page committers and
// the epoch's single segment-writer goroutine: WritePage hands encoded
// records to the stage (cheap, under the stage's own lock) and the writer
// drains them in batches, appending to the segment and folding the
// per-record bookkeeping into the manifest in arrival order. This keeps the
// on-disk format and the manifest's Pages/Hashes pairing exactly as in the
// serial path while letting the expensive steps — content hashing, codec
// encoding, the page copy — run concurrently outside every repository lock.
//
// When no records are staged ahead and the writer is idle, submit appends
// synchronously instead (zero-copy: the caller's buffer is still valid),
// so a single committer worker pays neither the page copy nor the
// goroutine handoff — the hot path is the old serial one.
type epochStage struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []recordJob
	closed bool
	err    error // first segment-write error, guarded by mu

	writeMu sync.Mutex // serializes segment appends (writer batches and sync path)
	w       *segmentWriter
	man     *Manifest
	obs     *obs.Metrics // nil: observability disabled

	spare []recordJob // drained batch array recycled into the next queue

	done chan struct{} // closed when the writer has drained and exited
}

// newEpochStage starts the segment-writer goroutine for one open epoch.
// w and man are owned by the stage until close returns.
func newEpochStage(w *segmentWriter, man *Manifest, m *obs.Metrics) *epochStage {
	s := &epochStage{w: w, man: man, obs: m, done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.run()
	return s
}

// submit appends one encoded record: synchronously when the segment writer
// is idle and nothing is staged ahead (no copy, error surfaced directly),
// otherwise by staging it for the writer goroutine. borrowed marks a
// payload that aliases caller memory and must be copied if staged.
func (s *epochStage) submit(j recordJob, borrowed bool) error {
	s.mu.Lock()
	if len(s.queue) == 0 && s.err == nil && s.writeMu.TryLock() {
		s.mu.Unlock()
		err := s.w.writeEncoded(s.man, j.page, j.payload, j.rawHash)
		s.writeMu.Unlock()
		j.release()
		if err != nil {
			s.fail(err)
		}
		return err
	}
	if borrowed {
		// Copy the caller-owned payload into a pooled buffer; the writer
		// goroutine releases it after the record lands in the segment.
		buf := payloadPool.Get().(*[]byte) //aickpt:owns released by recordJob.release after the drain
		j.payload = append((*buf)[:0], j.payload...)
		j.buf = buf
	}
	if s.queue == nil && s.spare != nil {
		s.queue, s.spare = s.spare, nil
	}
	s.queue = append(s.queue, j)
	if s.obs != nil {
		s.obs.StagingDepth.Set(int64(len(s.queue)))
	}
	s.cond.Signal()
	s.mu.Unlock()
	return nil
}

// fail records the stage's first error.
func (s *epochStage) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

func (s *epochStage) run() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		batch := s.queue
		s.queue = nil
		closed := s.closed
		failed := s.err != nil
		if s.obs != nil {
			s.obs.StagingDepth.Set(0)
		}
		s.mu.Unlock()
		if len(batch) == 0 && closed {
			return
		}
		s.writeMu.Lock()
		for i := range batch {
			j := &batch[i]
			if !failed { // keep draining past an error; it decides the epoch
				if err := s.w.writeEncoded(s.man, j.page, j.payload, j.rawHash); err != nil {
					s.fail(err)
					failed = true
				}
			}
			j.release()
		}
		s.writeMu.Unlock()
		if len(batch) > 0 {
			// Recycle the drained batch array into the next queue (stale
			// payload pointers cleared so the pool owns them exclusively).
			clear(batch)
			s.mu.Lock()
			if s.spare == nil || cap(batch) > cap(s.spare) {
				s.spare = batch[:0]
			}
			s.mu.Unlock()
		}
	}
}

// close waits for every staged record to reach the segment writer, stops
// the writer goroutine and returns the first write error.
func (s *epochStage) close() error {
	s.mu.Lock()
	s.closed = true
	s.cond.Signal()
	s.mu.Unlock()
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// finish flushes and closes the segment file; under the FS contract the
// Close is what publishes the segment. A flush failure discards the file
// unpublished — a half-flushed segment must never become visible.
func (w *segmentWriter) finish() error {
	if err := w.buf.Flush(); err != nil {
		Discard(w.f)
		return fmt.Errorf("flush: %w", err)
	}
	return w.f.Close()
}

func (w *segmentWriter) abort() {
	if w.f != nil {
		Discard(w.f)
	}
}

// writeManifestFile encodes a manifest to name; closing the file is the
// commit point of the epoch or base it describes.
func writeManifestFile(fs FS, name string, m *Manifest) error {
	f, err := fs.Create(name)
	if err != nil {
		return fmt.Errorf("ckpt: create manifest: %w", err)
	}
	if err := json.NewEncoder(f).Encode(m); err != nil {
		Discard(f)
		return fmt.Errorf("ckpt: encode manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ckpt: close manifest: %w", err)
	}
	return nil
}

func decodeManifestFile(fs FS, name string) (Manifest, error) {
	f, err := fs.Open(name)
	if err != nil {
		return Manifest{}, fmt.Errorf("ckpt: open %s: %w", name, err)
	}
	defer f.Close()
	var m Manifest
	if err := json.NewDecoder(f).Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("ckpt: manifest %s corrupt: %w", name, err)
	}
	return m, nil
}

func sortManifests(ms []Manifest) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].Epoch < ms[j].Epoch })
}

func sortedPageIDs(pages map[int][]byte) []int {
	ids := make([]int, 0, len(pages))
	for id := range pages {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// pageIdx is one dedup-index entry: the newest committed content of a page.
type pageIdx struct {
	hash    uint64 // FNV-64a of the raw content
	epoch   uint64 // epoch whose segment physically holds it
	hasHash bool   // false for content recorded by v1 manifests (no hash)
}

// DedupStats counts the repository's content-addressed dedup activity since
// it was opened. Counters cover sealed epochs only: an epoch's activity
// becomes visible when EndEpoch commits it and is dropped if the epoch is
// discarded, so the totals always describe bytes a restore can actually
// read.
type DedupStats struct {
	// PagesStored / BytesStored count physical segment records written.
	PagesStored int
	BytesStored int64
	// PagesDeduped / BytesDeduped count page writes elided because the
	// content matched the newest chain entry (recorded as Refs).
	PagesDeduped int
	BytesDeduped int64
}

// Repository stores checkpoint epochs on an FS. It implements
// storage.Backend so the page manager can commit straight into it, and its
// write path is concurrency-safe: any number of committer workers may call
// WritePage for the open epoch simultaneously (hashing and encoding happen
// outside the repository lock, and a single segment-writer goroutine
// appends the staged records in arrival order), with EndEpoch acting as the
// epoch's barrier.
//
// Repositories write format-v2 manifests: every stored page carries a
// content hash, and pages whose content is bit-identical to the newest
// chain entry are deduplicated — recorded as a manifest Ref instead of a
// segment record. The dedup index is rebuilt from the chain's manifests on
// first use, so a restarted process keeps deduplicating against the
// existing chain. Dedup trusts the 64-bit FNV-1a content hash (as in
// hash-based differential checkpointing); a collision between two distinct
// page images is vanishingly unlikely (~2^-64 per pair) but not impossible.
type Repository struct {
	fs       FS
	pageSize int
	codec    compress.Codec
	dedup    bool
	obs      *obs.Metrics // nil: observability disabled

	// recordTick drives 1-in-recordSampleEvery sampling of the WritePage
	// latency timer and per-page trace events. Byte and dedup counters
	// stay exact on every page; only the clock reads and journal records
	// are sampled, keeping the repository's share of the per-page metric
	// load to one atomic increment on most pages.
	recordTick atomic.Uint64

	mu      sync.Mutex
	w       *segmentWriter //aickpt:guardedby mu (nil until the epoch's first physical record)
	stage   *epochStage    //aickpt:guardedby mu (segment-writer stage; lifecycle follows w)
	curMan  Manifest       //aickpt:guardedby mu
	curOpen bool           //aickpt:guardedby mu

	index       map[int]pageIdx //aickpt:guardedby mu (newest sealed content per page)
	pending     map[int]pageIdx //aickpt:guardedby mu (current open epoch; merged into index at seal)
	indexLoaded bool            //aickpt:guardedby mu
	sizeChecked bool            //aickpt:guardedby mu (existing chain's page size validated against ours)
	stats       DedupStats      //aickpt:guardedby mu (sealed epochs only)
	curStats    DedupStats      //aickpt:guardedby mu (open epoch; folded into stats at seal, dropped on abort)

	// Per-epoch bookkeeping recycled across epochs: the manifest's slices
	// and the pending map are dropped by value at each seal, but their
	// backing storage is reclaimed here after the manifest is on disk, so
	// steady-state epochs append and insert without growing the heap.
	pagesScratch   []int           //aickpt:guardedby mu
	hashesScratch  []uint64        //aickpt:guardedby mu
	refsScratch    []PageRef       //aickpt:guardedby mu
	pendingScratch map[int]pageIdx //aickpt:guardedby mu
}

// reclaimEpochScratchLocked takes the closed epoch's manifest slices and
// pending map back as scratch for the next epoch. Only call once the
// manifest is durably encoded (or discarded): the recycled arrays will be
// overwritten.
func (r *Repository) reclaimEpochScratchLocked() {
	if r.curMan.Pages != nil {
		r.pagesScratch = r.curMan.Pages[:0]
	}
	if r.curMan.Hashes != nil {
		r.hashesScratch = r.curMan.Hashes[:0]
	}
	if r.curMan.Refs != nil {
		r.refsScratch = r.curMan.Refs[:0]
	}
	if r.pending != nil {
		clear(r.pending)
		r.pendingScratch = r.pending
	}
}

// NewRepository returns a repository writing pageSize-sized pages to fs,
// with content-addressed dedup enabled.
func NewRepository(fs FS, pageSize int) *Repository {
	if pageSize <= 0 {
		panic("ckpt: non-positive page size")
	}
	return &Repository{fs: fs, pageSize: pageSize, dedup: true}
}

// SetCodec enables payload compression for all subsequently written epochs
// (compress.Zero for zero-page elimination, compress.Flate for DEFLATE).
// Restore decodes transparently via the manifest's codec field. Must not be
// called while an epoch is open.
func (r *Repository) SetCodec(c compress.Codec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.curOpen {
		panic("ckpt: SetCodec with an open epoch")
	}
	r.codec = c
}

// SetDedup enables or disables content-addressed dedup for subsequently
// written epochs (enabled by default). Must not be called while an epoch is
// open.
func (r *Repository) SetDedup(enabled bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.curOpen {
		panic("ckpt: SetDedup with an open epoch")
	}
	r.dedup = enabled
}

// SetMetrics attaches an observability metric set to the repository's
// write path (record latency, compression ratio, dedup hit rate, staging
// depth). Nil detaches. Must not be called while an epoch is open.
func (r *Repository) SetMetrics(m *obs.Metrics) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.curOpen {
		panic("ckpt: SetMetrics with an open epoch")
	}
	r.obs = m
}

// PageSize returns the page size the repository was created with.
func (r *Repository) PageSize() int { return r.pageSize }

// DedupStats returns the dedup counters accumulated since the repository
// was opened.
func (r *Repository) DedupStats() DedupStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// loadIndexLocked rebuilds the dedup index from the chain's manifests (no
// segment reads: v2 manifests carry content hashes). Pages recorded by v1
// manifests enter the index without a hash and are never deduplicated
// against — their first rewrite stores physically and upgrades them.
func (r *Repository) loadIndexLocked() error {
	ch, err := LoadChain(r.fs)
	if err != nil {
		return err
	}
	if ch.PageSize != 0 && ch.PageSize != r.pageSize {
		return fmt.Errorf("ckpt: repository chain has page size %d, repository opened with %d", ch.PageSize, r.pageSize)
	}
	r.index = make(map[int]pageIdx)
	fold := func(m Manifest) {
		hasHashes := m.Format >= FormatV2 && len(m.Hashes) == len(m.Pages)
		for i, p := range m.Pages {
			e := pageIdx{epoch: m.Epoch}
			if hasHashes {
				e.hash, e.hasHash = m.Hashes[i], true
			}
			r.index[p] = e
		}
		for _, ref := range m.Refs {
			r.index[ref.Page] = pageIdx{hash: ref.Hash, epoch: ref.Epoch, hasHash: true}
		}
	}
	if ch.Base != nil {
		fold(*ch.Base)
	}
	for _, m := range ch.Epochs {
		fold(m)
	}
	r.indexLoaded = true
	r.sizeChecked = true
	return nil
}

// checkChainPageSizeLocked is the dedup-off counterpart of the index
// load's validation: one manifest decode (the newest chain entry) instead
// of the whole chain, so a repository opened at the wrong granularity
// still refuses to extend the chain.
func (r *Repository) checkChainPageSizeLocked() error {
	if r.sizeChecked {
		return nil
	}
	names, err := r.fs.List()
	if err != nil {
		return fmt.Errorf("ckpt: list: %w", err)
	}
	var picks []string
	for _, n := range names {
		// Sorted names put base-* before epoch-*, so the newest epoch
		// manifest wins whenever one exists.
		if (strings.HasPrefix(n, "epoch-") || strings.HasPrefix(n, "base-")) && strings.HasSuffix(n, ".json") {
			picks = append(picks, n)
		}
	}
	// Walk newest to oldest: the newest *decodable* manifest carries the
	// chain's page size. Torn manifests (crash artifacts at the tail) are
	// skipped here; the strict chain loader decides whether a decode
	// failure is fatal when the chain is actually read.
	for i := len(picks) - 1; i >= 0; i-- {
		m, err := decodeManifestFile(r.fs, picks[i])
		if err != nil {
			continue
		}
		if m.PageSize != r.pageSize {
			return fmt.Errorf("ckpt: repository chain has page size %d, repository opened with %d", m.PageSize, r.pageSize)
		}
		break
	}
	r.sizeChecked = true
	return nil
}

// WritePage implements storage.Backend. Pages of an epoch may arrive in any
// order; the first page of a new epoch opens its segment. data must be
// non-nil (the repository stores real content; phantom simulations use the
// timing backends instead). A page whose content hash matches the newest
// chain entry is deduplicated: no segment record is written, only a
// manifest Ref.
//
// WritePage is safe for concurrent use within one epoch (the parallel
// commit pipeline's workers). Content hashing and codec encoding run
// outside the repository lock; the dedup decision and manifest bookkeeping
// are taken under it; and the encoded record is handed to a per-epoch
// staging buffer drained by a single segment-writer goroutine, so the
// on-disk format is byte-for-byte the serial one. data is only read before
// WritePage returns — callers may reuse or mutate the buffer afterwards.
// Interleaving pages of two different epochs remains an error.
//
//aickpt:hotpath
func (r *Repository) WritePage(epoch uint64, page int, data []byte, size int) error {
	if data == nil {
		return fmt.Errorf("ckpt: nil page data for page %d (phantom writes not storable)", page)
	}
	if len(data) != size {
		return fmt.Errorf("ckpt: page %d: data length %d != size %d", page, len(data), size)
	}
	sampled := false
	var wstart time.Duration
	if r.obs != nil && r.recordTick.Add(1)%recordSampleEvery == 0 {
		sampled = true
		wstart = r.obs.Now()
	}
	// Hash off-lock: with several committer workers this is the hottest
	// per-page step after the codec.
	rawHash := contentHash(data)
	r.mu.Lock()
	if r.curOpen && r.curMan.Epoch != epoch {
		r.mu.Unlock()
		return fmt.Errorf("ckpt: page for epoch %d while epoch %d is open", epoch, r.curMan.Epoch)
	}
	if !r.curOpen {
		if r.dedup && !r.indexLoaded {
			if err := r.loadIndexLocked(); err != nil {
				r.mu.Unlock()
				return err
			}
		} else if err := r.checkChainPageSizeLocked(); err != nil {
			r.mu.Unlock()
			return err
		}
		r.curMan = Manifest{
			Epoch: epoch, PageSize: r.pageSize, Codec: uint8(r.codec), Format: FormatV2,
			// Recycled backing arrays; empty until this epoch appends.
			Pages: r.pagesScratch, Hashes: r.hashesScratch, Refs: r.refsScratch,
		}
		r.pagesScratch, r.hashesScratch, r.refsScratch = nil, nil, nil
		if r.dedup {
			if r.pendingScratch != nil {
				r.pending, r.pendingScratch = r.pendingScratch, nil
			} else {
				r.pending = make(map[int]pageIdx)
			}
		}
		r.curOpen = true
	}
	if r.dedup {
		prev, ok := r.pending[page]
		if !ok {
			prev, ok = r.index[page]
		}
		if ok && prev.hasHash && prev.hash == rawHash {
			r.curMan.Refs = append(r.curMan.Refs, PageRef{Page: page, Epoch: prev.epoch, Hash: rawHash})
			r.pending[page] = prev
			r.curStats.PagesDeduped++
			r.curStats.BytesDeduped += int64(size)
			r.mu.Unlock()
			if r.obs != nil {
				r.obs.DedupHits.Inc()
				r.obs.RecordRawBytes.Add(uint64(size))
				if sampled {
					wend := r.obs.Now()
					r.obs.RecordWriteNs.Observe(int64(wend - wstart))
					r.obs.TraceAt(wend, obs.StageDedup, epoch, int32(page), 0, int64(size))
				} else {
					r.obs.Trace(obs.StageDedup, epoch, int32(page), 0, int64(size))
				}
			}
			return nil
		}
	}
	if r.w == nil {
		f, err := r.fs.Create(segmentName(epoch))
		if err != nil {
			r.mu.Unlock()
			return fmt.Errorf("ckpt: create segment: %w", err)
		}
		r.w = &segmentWriter{pageSize: r.pageSize, codec: uint8(r.codec)}
		if err := r.w.begin(f); err != nil {
			r.mu.Unlock()
			return err
		}
		r.stage = newEpochStage(r.w, &r.curMan, r.obs)
	}
	if r.pending != nil {
		r.pending[page] = pageIdx{hash: rawHash, epoch: epoch, hasHash: true}
	}
	r.curStats.PagesStored++
	r.curStats.BytesStored += int64(size)
	stage, codec := r.stage, compress.Codec(r.codec)
	r.mu.Unlock()
	// Encode off-lock. A payload that still aliases the caller's buffer
	// (codec None) is marked borrowed: if it must be staged for the writer
	// goroutine — the record then outlives this call, while the caller's
	// page becomes writable again the moment the committer marks it done —
	// the stage copies it; the synchronous fast path writes it copy-free.
	// Codec output goes into a pooled buffer released once the record
	// reaches the segment, so steady-state encoding allocates nothing.
	job := recordJob{page: page, payload: data, rawHash: rawHash}
	borrowed := true
	if codec != compress.None {
		buf := payloadPool.Get().(*[]byte) //aickpt:owns handed to the staged job; recordJob.release returns it
		job.payload = compress.EncodeInto(codec, data, *buf)
		job.buf = buf
		borrowed = false
	}
	coded := len(job.payload)
	if err := stage.submit(job, borrowed); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if r.obs != nil {
		r.obs.DedupMisses.Inc()
		r.obs.RecordRawBytes.Add(uint64(size))
		r.obs.RecordCodedBytes.Add(uint64(coded))
		if sampled {
			wend := r.obs.Now()
			r.obs.RecordWriteNs.Observe(int64(wend - wstart))
			if codec != compress.None {
				r.obs.TraceAt(wend, obs.StageCompress, epoch, int32(page), 0, int64(coded))
			}
		}
	}
	return nil
}

// EndEpoch implements storage.Backend: it drains the staged records,
// flushes the segment and writes the manifest, sealing the epoch. Dedup
// index updates commit here — an aborted epoch leaves the index untouched,
// so later dedup decisions only ever reference sealed content. EndEpoch
// must not run concurrently with WritePage calls for the same epoch; the
// committer's epoch-end barrier provides exactly that ordering.
func (r *Repository) EndEpoch(epoch uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.curOpen {
		// An epoch with zero dirty pages still seals (empty manifest) so
		// restore knows the checkpoint completed.
		r.curMan = Manifest{Epoch: epoch, PageSize: r.pageSize, Format: FormatV2}
	} else if r.curMan.Epoch != epoch {
		return fmt.Errorf("ckpt: sealing epoch %d while epoch %d is open", epoch, r.curMan.Epoch)
	}
	if r.stage != nil {
		err := r.stage.close()
		r.stage = nil
		if err != nil {
			// A record never reached the segment: the epoch cannot seal.
			// Discard it entirely — an unsealed epoch is invisible to
			// restore, which is the crash-consistency contract — and drop
			// its staged stats with it (the bookkeeping storage is still
			// reclaimed: the discarded manifest is never read again).
			r.w.abort()
			r.w = nil
			r.curOpen = false
			r.reclaimEpochScratchLocked()
			r.pending = nil
			r.curStats = DedupStats{}
			return fmt.Errorf("ckpt: %w", err)
		}
	}
	if r.w != nil {
		if err := r.w.finish(); err != nil {
			return fmt.Errorf("ckpt: segment: %w", err)
		}
	}
	mstart := r.obs.Now()
	if err := writeManifestFile(r.fs, manifestName(epoch), &r.curMan); err != nil {
		return err
	}
	if r.obs != nil {
		r.obs.ManifestWriteNs.Observe(int64(r.obs.Now() - mstart))
		r.obs.EpochsSealedRepo.Inc()
	}
	if r.indexLoaded {
		for p, e := range r.pending {
			r.index[p] = e
		}
	}
	// The epoch is durable: its dedup counters become visible.
	r.stats.PagesStored += r.curStats.PagesStored
	r.stats.BytesStored += r.curStats.BytesStored
	r.stats.PagesDeduped += r.curStats.PagesDeduped
	r.stats.BytesDeduped += r.curStats.BytesDeduped
	r.curStats = DedupStats{}
	r.curOpen = false
	r.w = nil
	// The manifest is on disk and the index merged: the epoch's slices and
	// pending map become the next epoch's pre-grown scratch.
	r.reclaimEpochScratchLocked()
	r.pending = nil
	return nil
}

// Abort discards any open, unsealed epoch (used on shutdown after failure).
func (r *Repository) Abort() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.curOpen {
		if r.stage != nil {
			// Join the segment writer before tearing down the state it
			// appends to; its outcome no longer matters.
			_ = r.stage.close()
			r.stage = nil
		}
		if r.w != nil {
			r.w.abort()
		}
		r.curOpen = false
		r.w = nil
		r.reclaimEpochScratchLocked()
		r.pending = nil
		r.curStats = DedupStats{}
	}
}
