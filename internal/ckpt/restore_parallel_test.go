package ckpt

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/compress"
	"repro/internal/util"
)

// buildTestChain seals epochs 1..epochs with overlapping dirty sets —
// repeated content (dedup refs when enabled), page overwrites (newest-wins
// folding), and fresh pages — returning the FS holding the chain.
func buildTestChain(t *testing.T, epochs, pageSize int, codec compress.Codec, dedup bool) *MemFS {
	t.Helper()
	fs := &MemFS{}
	r := NewRepository(fs, pageSize)
	r.SetCodec(codec)
	r.SetDedup(dedup)
	for e := uint64(1); e <= uint64(epochs); e++ {
		for p := 0; p < 8; p++ {
			data := make([]byte, pageSize)
			switch {
			case p%3 == 0:
				// Same content every epoch: dedup elides it as a ref.
				for i := range data {
					data[i] = byte(p + 1)
				}
			default:
				for i := range data {
					data[i] = byte(int(e)*31 + p + i)
				}
			}
			if err := r.WritePage(e, int(e)%4*8+p, data, pageSize); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.EndEpoch(e); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

// compactPrefix folds epochs [1, to] into a committed base so the chain
// exercises the base-first fold order.
func compactPrefix(t *testing.T, fs FS, to uint64, pageSize int, codec uint8) {
	t.Helper()
	ch, err := LoadChain(fs)
	if err != nil {
		t.Fatal(err)
	}
	pages := map[int][]byte{}
	for _, m := range ch.Epochs {
		if m.Epoch > to {
			break
		}
		if err := VisitSegment(fs, m, func(page int, data []byte) {
			pages[page] = append([]byte(nil), data...)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := WriteBase(fs, 1, to, pageSize, pages, codec); err != nil {
		t.Fatal(err)
	}
	ch, err = LoadChain(fs)
	if err != nil {
		t.Fatal(err)
	}
	GCSuperseded(fs, ch)
}

func imagesEqual(a, b *Image) error {
	if a.Epoch != b.Epoch {
		return fmt.Errorf("epoch %d != %d", a.Epoch, b.Epoch)
	}
	if a.SegmentsRead != b.SegmentsRead {
		return fmt.Errorf("segments read %d != %d", a.SegmentsRead, b.SegmentsRead)
	}
	if len(a.Pages) != len(b.Pages) {
		return fmt.Errorf("page count %d != %d", len(a.Pages), len(b.Pages))
	}
	for p, d := range a.Pages {
		if !bytes.Equal(d, b.Pages[p]) {
			return fmt.Errorf("page %d content differs", p)
		}
	}
	return nil
}

// Parallel restore must be bit-identical to the serial fold for every
// worker count, across dedup refs, compacted bases and codec on/off.
func TestRestoreParallelBitIdentity(t *testing.T) {
	const pageSize = 128
	for _, tc := range []struct {
		name  string
		codec compress.Codec
		dedup bool
		base  bool
	}{
		{"plain", compress.None, false, false},
		{"dedup", compress.None, true, false},
		{"flate", compress.Flate, false, false},
		{"flate-dedup-base", compress.Flate, true, true},
		{"dedup-base", compress.None, true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fs := buildTestChain(t, 12, pageSize, tc.codec, tc.dedup)
			if tc.base {
				compactPrefix(t, fs, 6, pageSize, uint8(tc.codec))
			}
			want, err := RestoreWith(fs, RestoreOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for workers := 1; workers <= 8; workers++ {
				got, err := RestoreWith(fs, RestoreOptions{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if err := imagesEqual(want, got); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
			}
		})
	}
}

// A corrupt interior segment must surface the same error (the first
// failing entry in chain order) at every worker count.
func TestRestoreParallelErrorMatchesSerial(t *testing.T) {
	const pageSize = 128
	fs := buildTestChain(t, 8, pageSize, compress.None, false)
	// Corrupt epoch 4's segment payload (flip a byte past the header).
	name := segmentName(4)
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	data[30] ^= 0xff
	w, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, serialErr := RestoreWith(fs, RestoreOptions{Workers: 1})
	if serialErr == nil {
		t.Fatal("serial restore of corrupt chain succeeded")
	}
	for workers := 2; workers <= 8; workers += 2 {
		_, err := RestoreWith(fs, RestoreOptions{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: restore of corrupt chain succeeded", workers)
		}
		if err.Error() != serialErr.Error() {
			t.Fatalf("workers=%d: error %q, serial %q", workers, err, serialErr)
		}
	}
}

// PageOr misses must return the shared zero page without allocating.
func TestAllocGatePageOrMiss(t *testing.T) {
	if util.RaceEnabled {
		t.Skip("race instrumentation allocates; gate runs in non-race CI step")
	}
	im := &Image{PageSize: 4096, Pages: map[int][]byte{}}
	im.PageOr(1) // warm the shared zero page
	allocs := testing.AllocsPerRun(100, func() {
		if len(im.PageOr(2)) != 4096 {
			t.Fatal("short zero page")
		}
	})
	if allocs != 0 {
		t.Fatalf("PageOr miss allocates %v times per call, want 0", allocs)
	}
}

// The zero page is shared: both misses see the same backing array and it
// must stay all-zero.
func TestPageOrSharedZero(t *testing.T) {
	im := &Image{PageSize: 64, Pages: map[int][]byte{}}
	a := im.PageOr(1)
	b := im.PageOr(2)
	if &a[0] != &b[0] {
		t.Error("PageOr misses should share one zero page")
	}
	for i, v := range a {
		if v != 0 {
			t.Fatalf("zero page dirty at %d: %d", i, v)
		}
	}
}
