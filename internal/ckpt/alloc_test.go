package ckpt

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/util"
)

// TestAllocGateWritePageDedupFastPath gates the repository's steady-state
// dedup path at zero allocations: once the per-epoch bookkeeping (manifest
// Refs, pending map) has been grown by earlier epochs and recycled, a page
// write whose content matches the newest chain entry must not touch the
// heap — it hashes inline, consults the index and appends a Ref into
// pre-grown storage.
func TestAllocGateWritePageDedupFastPath(t *testing.T) {
	if util.RaceEnabled {
		t.Skip("race mode bypasses sync.Pool; allocation gates do not apply")
	}
	const n = 2048
	const pageSize = 4096
	fs := &MemFS{}
	repo := NewRepository(fs, pageSize)
	// The gate holds with the write path fully instrumented — the dedup
	// fast path records counters, a latency sample and a trace event, none
	// of which may touch the heap.
	start := time.Now()
	met := obs.New(func() time.Duration { return time.Since(start) })
	met.Journal = obs.NewJournal(obs.DefaultJournalDepth)
	repo.SetMetrics(met)
	page := bytes.Repeat([]byte{7}, pageSize)
	write := func(epoch uint64, p int) {
		t.Helper()
		if err := repo.WritePage(epoch, p, page, pageSize); err != nil {
			t.Fatal(err)
		}
	}
	// Epoch 1 stores page 0 physically; every later identical write
	// dedups against it. Epoch 2 is pure dedup and grows the Ref/pending
	// storage that epoch 3 then reuses.
	for e := uint64(1); e <= 2; e++ {
		for p := 0; p < n; p++ {
			write(e, p)
		}
		if err := repo.EndEpoch(e); err != nil {
			t.Fatal(err)
		}
	}
	p := 0
	allocs := testing.AllocsPerRun(n/2, func() {
		write(3, p)
		p++
	})
	if err := repo.EndEpoch(3); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("dedup fast path allocated %.2f times per run, want 0", allocs)
	}
	// Epoch 1 stores every page physically (dedup is per page against that
	// page's newest chain entry); epochs 2 and 3 must be pure dedup.
	st := repo.DedupStats()
	if want := n + n/2 + 1; st.PagesDeduped != want {
		t.Fatalf("%d pages deduped, want %d (test drove the wrong path)", st.PagesDeduped, want)
	}
	if got := met.DedupHits.Load(); got != uint64(st.PagesDeduped) {
		t.Fatalf("metrics counted %d dedup hits, repository counted %d", got, st.PagesDeduped)
	}
}

// TestEpochScratchRecyclingKeepsChainsCorrect: recycling the manifest
// slices and pending map across epochs must not leak one epoch's
// bookkeeping into the next — distinct content per epoch restores bit for
// bit.
func TestEpochScratchRecyclingKeepsChainsCorrect(t *testing.T) {
	const pages = 16
	const pageSize = 64
	fs := &MemFS{}
	repo := NewRepository(fs, pageSize)
	for e := uint64(1); e <= 5; e++ {
		for p := 0; p < pages; p++ {
			content := bytes.Repeat([]byte{byte(e), byte(p)}, pageSize/2)
			if p%3 == 0 {
				content = bytes.Repeat([]byte{0xee}, pageSize) // dedups after epoch 1
			}
			if err := repo.WritePage(e, p, content, pageSize); err != nil {
				t.Fatal(err)
			}
		}
		if err := repo.EndEpoch(e); err != nil {
			t.Fatal(err)
		}
	}
	im, err := Restore(fs)
	if err != nil {
		t.Fatal(err)
	}
	if im.Epoch != 5 {
		t.Fatalf("restored epoch %d, want 5", im.Epoch)
	}
	for p := 0; p < pages; p++ {
		want := bytes.Repeat([]byte{5, byte(p)}, pageSize/2)
		if p%3 == 0 {
			want = bytes.Repeat([]byte{0xee}, pageSize)
		}
		if !bytes.Equal(im.Pages[p], want) {
			t.Errorf("page %d: restored %x, want %x", p, im.Pages[p][:4], want[:4])
		}
	}
}
