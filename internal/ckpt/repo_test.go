package ckpt

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/compress"
	"repro/internal/util"
)

func page(b byte, size int) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestRepositoryRoundTrip(t *testing.T) {
	fs := &MemFS{}
	r := NewRepository(fs, 64)
	if err := r.WritePage(1, 0, page(0xaa, 64), 64); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePage(1, 3, page(0xbb, 64), 64); err != nil {
		t.Fatal(err)
	}
	if err := r.EndEpoch(1); err != nil {
		t.Fatal(err)
	}
	im, err := Restore(fs)
	if err != nil {
		t.Fatal(err)
	}
	if im.Epoch != 1 || len(im.Pages) != 2 {
		t.Fatalf("image = %+v", im)
	}
	if !bytes.Equal(im.Pages[0], page(0xaa, 64)) || !bytes.Equal(im.Pages[3], page(0xbb, 64)) {
		t.Error("page content mismatch")
	}
	// Untouched page restores as zeros.
	if !bytes.Equal(im.PageOr(7), make([]byte, 64)) {
		t.Error("PageOr for untouched page should be zero")
	}
}

func TestRepositoryNewestWins(t *testing.T) {
	fs := &MemFS{}
	r := NewRepository(fs, 16)
	mustWrite := func(epoch uint64, pg int, b byte) {
		t.Helper()
		if err := r.WritePage(epoch, pg, page(b, 16), 16); err != nil {
			t.Fatal(err)
		}
	}
	mustWrite(1, 0, 1)
	mustWrite(1, 1, 2)
	if err := r.EndEpoch(1); err != nil {
		t.Fatal(err)
	}
	mustWrite(2, 1, 3) // page 1 updated in epoch 2
	if err := r.EndEpoch(2); err != nil {
		t.Fatal(err)
	}
	im, err := Restore(fs)
	if err != nil {
		t.Fatal(err)
	}
	if im.Epoch != 2 {
		t.Errorf("epoch = %d", im.Epoch)
	}
	if im.Pages[0][0] != 1 || im.Pages[1][0] != 3 {
		t.Errorf("pages = %v %v", im.Pages[0][0], im.Pages[1][0])
	}
}

func TestUnsealedEpochIgnored(t *testing.T) {
	fs := &MemFS{}
	r := NewRepository(fs, 16)
	if err := r.WritePage(1, 0, page(1, 16), 16); err != nil {
		t.Fatal(err)
	}
	if err := r.EndEpoch(1); err != nil {
		t.Fatal(err)
	}
	// Epoch 2 crashes before sealing.
	if err := r.WritePage(2, 0, page(9, 16), 16); err != nil {
		t.Fatal(err)
	}
	r.Abort()
	im, err := Restore(fs)
	if err != nil {
		t.Fatal(err)
	}
	if im.Epoch != 1 || im.Pages[0][0] != 1 {
		t.Errorf("restore picked up unsealed data: %+v", im)
	}
}

func TestEmptyEpochSeals(t *testing.T) {
	fs := &MemFS{}
	r := NewRepository(fs, 16)
	if err := r.EndEpoch(5); err != nil {
		t.Fatal(err)
	}
	im, err := Restore(fs)
	if err != nil {
		t.Fatal(err)
	}
	if im.Epoch != 5 || len(im.Pages) != 0 {
		t.Errorf("image = %+v", im)
	}
}

func TestRestoreDetectsCorruption(t *testing.T) {
	fs := &MemFS{}
	r := NewRepository(fs, 32)
	if err := r.WritePage(1, 0, page(7, 32), 32); err != nil {
		t.Fatal(err)
	}
	if err := r.EndEpoch(1); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte.
	name := segmentName(1)
	fs.mu.Lock()
	fs.files[name][25] ^= 0xff
	fs.mu.Unlock()
	if _, err := Restore(fs); err == nil {
		t.Fatal("corrupted segment restored without error")
	}
	infos, err := Inspect(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].SegmentOK {
		t.Errorf("Inspect missed corruption: %+v", infos)
	}
}

func TestRestoreDetectsTruncation(t *testing.T) {
	fs := &MemFS{}
	r := NewRepository(fs, 32)
	for i := 0; i < 4; i++ {
		if err := r.WritePage(1, i, page(byte(i), 32), 32); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.EndEpoch(1); err != nil {
		t.Fatal(err)
	}
	fs.Truncate(segmentName(1), 70) // mid-record
	if _, err := Restore(fs); err == nil {
		t.Fatal("truncated segment restored without error")
	}
}

func TestRepositoryRejectsMisuse(t *testing.T) {
	r := NewRepository(&MemFS{}, 16)
	if err := r.WritePage(1, 0, nil, 16); err == nil {
		t.Error("nil data accepted")
	}
	if err := r.WritePage(1, 0, page(1, 16), 8); err == nil {
		t.Error("mismatched size accepted")
	}
	if err := r.WritePage(1, 0, page(1, 16), 16); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePage(2, 0, page(1, 16), 16); err == nil {
		t.Error("cross-epoch write accepted while epoch open")
	}
	if err := r.EndEpoch(9); err == nil {
		t.Error("sealing wrong epoch accepted")
	}
}

func TestRestoreEmptyRepo(t *testing.T) {
	if _, err := Restore(&MemFS{}); err == nil {
		t.Fatal("restore from empty repo should fail")
	}
}

// Property: for arbitrary sequences of epochs writing arbitrary subsets of
// pages, Restore returns exactly the newest write of every page.
func TestRestoreQuickNewestWins(t *testing.T) {
	f := func(seed uint64) bool {
		rng := util.NewRNG(seed)
		const pageSize, nPages = 8, 16
		fs := &MemFS{}
		r := NewRepository(fs, pageSize)
		want := map[int][]byte{}
		epochs := rng.Intn(5) + 1
		for e := 1; e <= epochs; e++ {
			for _, pg := range rng.Perm(nPages)[:rng.Intn(nPages+1)] {
				data := make([]byte, pageSize)
				for i := range data {
					data[i] = byte(rng.Uint64())
				}
				if r.WritePage(uint64(e), pg, data, pageSize) != nil {
					return false
				}
				want[pg] = data
			}
			if r.EndEpoch(uint64(e)) != nil {
				return false
			}
		}
		im, err := Restore(fs)
		if err != nil {
			return false
		}
		if len(im.Pages) != len(want) {
			return false
		}
		for pg, data := range want {
			if !bytes.Equal(im.Pages[pg], data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewOSFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRepository(fs, 128)
	if err := r.WritePage(1, 2, page(0x5c, 128), 128); err != nil {
		t.Fatal(err)
	}
	if err := r.EndEpoch(1); err != nil {
		t.Fatal(err)
	}
	im, err := Restore(fs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(im.Pages[2], page(0x5c, 128)) {
		t.Error("OSFS round trip mismatch")
	}
	names, err := fs.List()
	if err != nil || len(names) != 2 {
		t.Errorf("names = %v, err = %v", names, err)
	}
	if err := fs.Remove(names[0]); err != nil {
		t.Errorf("remove: %v", err)
	}
}

func TestCompressedRepositoryRoundTrip(t *testing.T) {
	for _, codec := range []compress.Codec{compress.Zero, compress.Flate} {
		fs := &MemFS{}
		r := NewRepository(fs, 256)
		r.SetCodec(codec)
		zero := make([]byte, 256)
		repetitive := bytes.Repeat([]byte{7, 8}, 128)
		if err := r.WritePage(1, 0, zero, 256); err != nil {
			t.Fatal(err)
		}
		if err := r.WritePage(1, 1, repetitive, 256); err != nil {
			t.Fatal(err)
		}
		if err := r.EndEpoch(1); err != nil {
			t.Fatal(err)
		}
		im, err := Restore(fs)
		if err != nil {
			t.Fatalf("codec %d: %v", codec, err)
		}
		if !bytes.Equal(im.Pages[0], zero) || !bytes.Equal(im.Pages[1], repetitive) {
			t.Errorf("codec %d: decoded pages differ", codec)
		}
		// The stored segment must actually be smaller than raw.
		fs.mu.Lock()
		segLen := len(fs.files[segmentName(1)])
		fs.mu.Unlock()
		if segLen >= 2*(20+256) {
			t.Errorf("codec %d: segment %d bytes, no compression happened", codec, segLen)
		}
		// Inspect must verify compressed epochs too.
		infos, err := Inspect(fs)
		if err != nil || len(infos) != 1 || !infos[0].SegmentOK {
			t.Errorf("codec %d: inspect failed: %v %+v", codec, err, infos)
		}
	}
}

func TestCompressedRepositoryDetectsCorruption(t *testing.T) {
	fs := &MemFS{}
	r := NewRepository(fs, 128)
	r.SetCodec(compress.Flate)
	if err := r.WritePage(1, 0, bytes.Repeat([]byte{3}, 128), 128); err != nil {
		t.Fatal(err)
	}
	if err := r.EndEpoch(1); err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	fs.files[segmentName(1)][22] ^= 0xff
	fs.mu.Unlock()
	if _, err := Restore(fs); err == nil {
		t.Fatal("corrupted compressed segment restored")
	}
}

func TestSetCodecWhileOpenPanics(t *testing.T) {
	r := NewRepository(&MemFS{}, 64)
	if err := r.WritePage(1, 0, make([]byte, 64), 64); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.SetCodec(compress.Flate)
}
