package ckpt

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"testing"

	"repro/internal/compress"
)

// sealEpoch writes pages (id -> fill byte) into one epoch and seals it.
func sealEpoch(t *testing.T, r *Repository, epoch uint64, size int, fills map[int]byte) {
	t.Helper()
	for id, b := range fills {
		if err := r.WritePage(epoch, id, page(b, size), size); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.EndEpoch(epoch); err != nil {
		t.Fatal(err)
	}
}

func TestDedupElidesIdenticalRewrites(t *testing.T) {
	fs := &MemFS{}
	r := NewRepository(fs, 32)
	sealEpoch(t, r, 1, 32, map[int]byte{0: 0xaa, 1: 0xbb})
	// Epoch 2 rewrites page 0 with identical content and page 1 with new
	// content.
	sealEpoch(t, r, 2, 32, map[int]byte{0: 0xaa, 1: 0xcc})

	m2, err := ReadManifest(fs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.PageCount != 1 || len(m2.Refs) != 1 {
		t.Fatalf("manifest = %+v", m2)
	}
	if m2.Refs[0].Page != 0 || m2.Refs[0].Epoch != 1 {
		t.Fatalf("ref = %+v", m2.Refs[0])
	}
	if m2.Format != FormatV2 || len(m2.Hashes) != len(m2.Pages) {
		t.Fatalf("v2 fields missing: %+v", m2)
	}
	st := r.DedupStats()
	if st.PagesDeduped != 1 || st.BytesDeduped != 32 || st.PagesStored != 3 {
		t.Fatalf("stats = %+v", st)
	}
	im, err := Restore(fs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(im.Pages[0], page(0xaa, 32)) || !bytes.Equal(im.Pages[1], page(0xcc, 32)) {
		t.Fatal("restored content wrong after dedup")
	}
}

func TestDedupIndexSurvivesRestart(t *testing.T) {
	fs := &MemFS{}
	r := NewRepository(fs, 16)
	sealEpoch(t, r, 1, 16, map[int]byte{3: 0x77})
	// A fresh repository over the same FS (a restarted process) rebuilds
	// the index from the chain's manifests and keeps deduplicating.
	r2 := NewRepository(fs, 16)
	sealEpoch(t, r2, 2, 16, map[int]byte{3: 0x77})
	m2, err := ReadManifest(fs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.PageCount != 0 || len(m2.Refs) != 1 || m2.Refs[0].Epoch != 1 {
		t.Fatalf("restarted repo did not dedup: %+v", m2)
	}
	// The refs-only epoch has no segment file.
	if _, err := fs.Open(segmentName(2)); err == nil {
		t.Fatal("refs-only epoch wrote a segment")
	}
	im, err := Restore(fs)
	if err != nil {
		t.Fatal(err)
	}
	if im.Epoch != 2 || !bytes.Equal(im.Pages[3], page(0x77, 16)) {
		t.Fatalf("image = %+v", im)
	}
}

func TestDedupIgnoresAbortedEpochs(t *testing.T) {
	fs := &MemFS{}
	r := NewRepository(fs, 16)
	sealEpoch(t, r, 1, 16, map[int]byte{0: 0x11})
	// Epoch 2 writes new content but crashes before sealing: the dedup
	// index must not absorb it, or epoch 3's identical rewrite would be
	// elided against unsealed (invisible) content.
	if err := r.WritePage(2, 0, page(0x22, 16), 16); err != nil {
		t.Fatal(err)
	}
	r.Abort()
	sealEpoch(t, r, 3, 16, map[int]byte{0: 0x22})
	m3, err := ReadManifest(fs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m3.PageCount != 1 || len(m3.Refs) != 0 {
		t.Fatalf("epoch 3 deduped against aborted content: %+v", m3)
	}
	im, err := Restore(fs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(im.Pages[0], page(0x22, 16)) {
		t.Fatal("restored content wrong")
	}
}

func TestDedupDisabled(t *testing.T) {
	fs := &MemFS{}
	r := NewRepository(fs, 16)
	r.SetDedup(false)
	sealEpoch(t, r, 1, 16, map[int]byte{0: 0x55})
	sealEpoch(t, r, 2, 16, map[int]byte{0: 0x55})
	m2, err := ReadManifest(fs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.PageCount != 1 || len(m2.Refs) != 0 {
		t.Fatalf("dedup ran while disabled: %+v", m2)
	}
}

func TestMixedPageSizeChainRejected(t *testing.T) {
	fs := &MemFS{}
	sealEpoch(t, NewRepository(fs, 16), 1, 16, map[int]byte{0: 1})
	// A divergent epoch written by a misconfigured process (hand-crafted:
	// the repository itself now refuses to extend a chain at another
	// granularity).
	divergent := Manifest{Epoch: 2, PageSize: 32, Format: FormatV2}
	if err := writeManifestFile(fs, manifestName(2), &divergent); err != nil {
		t.Fatal(err)
	}
	for name, call := range map[string]func() error{
		"Restore":    func() error { _, err := Restore(fs); return err },
		"ListSealed": func() error { _, err := ListSealed(fs); return err },
		"LoadChain":  func() error { _, err := LoadChain(fs); return err },
		"Inspect":    func() error { _, err := Inspect(fs); return err },
	} {
		err := call()
		if err == nil {
			t.Fatalf("%s accepted a mixed-granularity chain", name)
		}
		if !bytes.Contains([]byte(err.Error()), []byte("epoch 2")) {
			t.Errorf("%s error does not name the diverging epoch: %v", name, err)
		}
	}
	// A repository reopened with a diverging page size refuses to extend
	// the chain (the silent path that used to create mixed chains).
	seedFS := &MemFS{}
	sealEpoch(t, NewRepository(seedFS, 16), 1, 16, map[int]byte{0: 1})
	r := NewRepository(seedFS, 64)
	if err := r.WritePage(2, 0, page(9, 64), 64); err == nil {
		t.Fatal("repository extended a chain written at another page size")
	}
	// The guard holds with dedup disabled too (the index load is skipped,
	// a single-manifest check runs instead).
	r = NewRepository(seedFS, 64)
	r.SetDedup(false)
	if err := r.WritePage(2, 0, page(9, 64), 64); err == nil {
		t.Fatal("dedup-off repository extended a chain written at another page size")
	}
}

func TestBaseRoundTripAndChainAssembly(t *testing.T) {
	fs := &MemFS{}
	r := NewRepository(fs, 16)
	sealEpoch(t, r, 1, 16, map[int]byte{0: 1, 1: 2})
	sealEpoch(t, r, 2, 16, map[int]byte{1: 3})
	sealEpoch(t, r, 3, 16, map[int]byte{2: 4})
	man, err := WriteBase(fs, 1, 2, 16, map[int][]byte{0: page(1, 16), 1: page(3, 16)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if man.Base == nil || man.Base.From != 1 || man.Base.To != 2 || man.PageCount != 2 {
		t.Fatalf("base manifest = %+v", man)
	}
	pages, err := ReadBasePages(fs, man)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pages[1], page(3, 16)) {
		t.Fatal("base content wrong")
	}
	ch, err := LoadChain(fs)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Base == nil || ch.Base.Base.To != 2 {
		t.Fatalf("chain base = %+v", ch.Base)
	}
	if len(ch.Epochs) != 1 || ch.Epochs[0].Epoch != 3 {
		t.Fatalf("live epochs = %+v", ch.Epochs)
	}
	if len(ch.Superseded) != 2 {
		t.Fatalf("superseded = %+v", ch.Superseded)
	}
	if ch.ReclaimableBytes() == 0 {
		t.Fatal("superseded bytes not counted")
	}
	// Restore prefers the base and skips superseded epochs.
	im, err := Restore(fs)
	if err != nil {
		t.Fatal(err)
	}
	if im.Epoch != 3 || im.SegmentsRead != 2 {
		t.Fatalf("image = epoch %d, segments %d", im.Epoch, im.SegmentsRead)
	}
	if !bytes.Equal(im.Pages[1], page(3, 16)) || !bytes.Equal(im.Pages[2], page(4, 16)) {
		t.Fatal("restored content wrong")
	}
	// GC reclaims the superseded files; restore is unchanged.
	reclaimed, removed := GCSuperseded(fs, ch)
	if reclaimed == 0 || len(removed) == 0 {
		t.Fatalf("GC removed nothing: %d %v", reclaimed, removed)
	}
	im2, err := Restore(fs)
	if err != nil {
		t.Fatal(err)
	}
	if im2.Epoch != 3 || !bytes.Equal(im2.Pages[1], page(3, 16)) {
		t.Fatal("restore changed after GC")
	}
}

// TestCrashArtifactsIgnoredOnOpen covers the mid-compaction kill matrix: a
// base segment without its manifest (killed before commit), a torn base
// manifest (killed during commit), and superseded epochs still on disk
// (killed before GC) must all leave a chain that restores bit-identically.
func TestCrashArtifactsIgnoredOnOpen(t *testing.T) {
	build := func() (*MemFS, *Image) {
		fs := &MemFS{}
		r := NewRepository(fs, 16)
		sealEpoch(t, r, 1, 16, map[int]byte{0: 1, 1: 2})
		sealEpoch(t, r, 2, 16, map[int]byte{1: 3})
		sealEpoch(t, r, 3, 16, map[int]byte{0: 4})
		im, err := Restore(fs)
		if err != nil {
			t.Fatal(err)
		}
		return fs, im
	}
	same := func(t *testing.T, fs *MemFS, want *Image) {
		t.Helper()
		im, err := Restore(fs)
		if err != nil {
			t.Fatal(err)
		}
		if im.Epoch != want.Epoch || len(im.Pages) != len(want.Pages) {
			t.Fatalf("image = %+v, want %+v", im, want)
		}
		for p, d := range want.Pages {
			if !bytes.Equal(im.Pages[p], d) {
				t.Fatalf("page %d differs", p)
			}
		}
	}

	t.Run("unsealed base segment", func(t *testing.T) {
		fs, want := build()
		// Killed after writing the consolidated segment, before the
		// manifest: the base is invisible.
		f, err := fs.Create(baseSegmentName(1, 2))
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("partial garbage"))
		f.Close()
		same(t, fs, want)
	})

	t.Run("torn base manifest", func(t *testing.T) {
		fs, want := build()
		if _, err := WriteBase(fs, 1, 2, 16, map[int][]byte{0: page(1, 16), 1: page(3, 16)}, 0); err != nil {
			t.Fatal(err)
		}
		// Killed mid-manifest-write: the JSON is truncated. The base must
		// be skipped and the (still present) epochs used instead.
		fs.Truncate(baseManifestName(1, 2), 10)
		same(t, fs, want)
	})

	t.Run("killed before GC", func(t *testing.T) {
		fs, want := build()
		if _, err := WriteBase(fs, 1, 2, 16, map[int][]byte{0: page(1, 16), 1: page(3, 16)}, 0); err != nil {
			t.Fatal(err)
		}
		// Base committed, folded epochs not collected yet: restore uses
		// the base, ignores the superseded epochs.
		same(t, fs, want)
		// And a later pass can finish the GC.
		ch, err := LoadChain(fs)
		if err != nil {
			t.Fatal(err)
		}
		GCSuperseded(fs, ch)
		same(t, fs, want)
	})

	t.Run("stale base replaced", func(t *testing.T) {
		fs, want := build()
		if _, err := WriteBase(fs, 1, 2, 16, map[int][]byte{0: page(1, 16), 1: page(3, 16)}, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := WriteBase(fs, 1, 3, 16, map[int][]byte{0: page(4, 16), 1: page(3, 16)}, 0); err != nil {
			t.Fatal(err)
		}
		ch, err := LoadChain(fs)
		if err != nil {
			t.Fatal(err)
		}
		if ch.Base == nil || ch.Base.Base.To != 3 || len(ch.StaleBases) != 1 {
			t.Fatalf("chain = base %+v stale %d", ch.Base, len(ch.StaleBases))
		}
		same(t, fs, want)
	})
}

func TestEpochPagesErrorPaths(t *testing.T) {
	fs := &MemFS{}
	r := NewRepository(fs, 32)
	sealEpoch(t, r, 1, 32, map[int]byte{0: 0x42, 1: 0x43})

	// Missing segment: the manifest promises records the FS lost.
	fs.Drop(segmentName(1))
	if _, _, err := EpochPages(fs, 1); err == nil {
		t.Fatal("EpochPages read a dropped segment")
	}

	// Unsealed epoch.
	if _, _, err := EpochPages(fs, 9); err == nil {
		t.Fatal("EpochPages read an unsealed epoch")
	}
}

func TestLastSealedEpochErrorPaths(t *testing.T) {
	fs := &MemFS{}
	r := NewRepository(fs, 32)
	sealEpoch(t, r, 1, 32, map[int]byte{0: 0x42})
	// Truncated *newest* manifest: a torn tail from a mid-crash write —
	// the epoch never sealed, so the chain is simply empty again.
	fs.Truncate(manifestName(1), 5)
	if _, ok, err := LastSealedEpoch(fs); err != nil || ok {
		t.Fatalf("torn tail: ok=%v err=%v, want unsealed and no error", ok, err)
	}
	// Truncated *interior* manifest: a newer intact epoch proves epoch 1
	// was once sealed, so its corruption is real damage and must surface
	// (a restarted runtime must not silently renumber over lost state).
	sealEpoch(t, r, 2, 32, map[int]byte{0: 0x43})
	if _, _, err := LastSealedEpoch(fs); err == nil {
		t.Fatal("LastSealedEpoch ignored an interior corrupt manifest")
	}
	// Empty repository: no error, ok=false.
	if _, ok, err := LastSealedEpoch(&MemFS{}); err != nil || ok {
		t.Fatalf("empty repo: ok=%v err=%v", ok, err)
	}
}

func TestInspectErrorPaths(t *testing.T) {
	t.Run("missing segment", func(t *testing.T) {
		fs := &MemFS{}
		r := NewRepository(fs, 32)
		sealEpoch(t, r, 1, 32, map[int]byte{0: 0x42})
		fs.Drop(segmentName(1))
		infos, err := Inspect(fs)
		if err != nil || len(infos) != 1 || infos[0].SegmentOK {
			t.Fatalf("infos = %+v err = %v", infos, err)
		}
	})
	t.Run("truncated manifest", func(t *testing.T) {
		fs := &MemFS{}
		r := NewRepository(fs, 32)
		sealEpoch(t, r, 1, 32, map[int]byte{0: 0x42})
		// Torn tail (no newer intact epoch): the epoch never sealed, so
		// Inspect sees an empty chain rather than an error.
		fs.Truncate(manifestName(1), 7)
		infos, err := Inspect(fs)
		if err != nil || len(infos) != 0 {
			t.Fatalf("torn tail: infos = %+v err = %v, want empty chain", infos, err)
		}
		// Interior corruption (epoch 2 proves epoch 1 was sealed): error.
		sealEpoch(t, r, 2, 32, map[int]byte{0: 0x43})
		if _, err := Inspect(fs); err == nil {
			t.Fatal("Inspect accepted an interior corrupt manifest")
		}
	})
	t.Run("corrupt codec byte", func(t *testing.T) {
		fs := &MemFS{}
		r := NewRepository(fs, 32)
		r.SetCodec(compress.Flate)
		sealEpoch(t, r, 1, 32, map[int]byte{0: 0x42})
		// Overwrite the payload's codec byte with an unknown codec and
		// re-sign the record, so the corruption is only detectable at
		// decode time.
		fs.mu.Lock()
		seg := fs.files[segmentName(1)]
		payload := seg[20:]
		payload[0] = 0xEE
		h := fnv.New64a()
		h.Write(payload)
		binary.LittleEndian.PutUint64(seg[12:20], h.Sum64())
		fs.mu.Unlock()
		infos, err := Inspect(fs)
		if err != nil || len(infos) != 1 || infos[0].SegmentOK {
			t.Fatalf("infos = %+v err = %v", infos, err)
		}
		if _, err := Restore(fs); err == nil {
			t.Fatal("Restore decoded an unknown codec byte")
		}
	})
}
