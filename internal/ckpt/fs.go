// Package ckpt implements the durable checkpoint repository: the on-disk
// (or in-memory) format that the page manager's committer writes and that
// restart reads back. An epoch's pages are appended to a segment file as
// self-checking records; the epoch is sealed by writing its manifest last,
// so a crash mid-checkpoint leaves an unsealed epoch that restore ignores —
// restart always sees a consistent image, which is the correctness contract
// of checkpoint-restart.
package ckpt

import (
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FS is the minimal filesystem surface the repository needs; it has a real
// directory-backed implementation (OSFS) and an in-memory one (MemFS) for
// tests and simulations.
type FS interface {
	// Create opens name for writing, truncating any previous content.
	Create(name string) (io.WriteCloser, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// List returns all file names, sorted.
	List() ([]string, error)
	// Remove deletes name.
	Remove(name string) error
}

// MemFS is an in-memory FS. The zero value is ready to use.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

type memFile struct {
	fs   *MemFS
	name string
	buf  []byte
	done bool
}

func (f *memFile) Write(p []byte) (int, error) {
	if f.done {
		return 0, fmt.Errorf("ckpt: write to closed file %q", f.name)
	}
	f.buf = append(f.buf, p...)
	return len(p), nil
}

func (f *memFile) Close() error {
	if f.done {
		return nil
	}
	f.done = true
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.files[f.name] = f.buf
	return nil
}

// Create implements FS.
func (m *MemFS) Create(name string) (io.WriteCloser, error) {
	m.mu.Lock()
	if m.files == nil {
		m.files = map[string][]byte{}
	}
	m.mu.Unlock()
	return &memFile{fs: m, name: name}, nil
}

// Open implements FS. A missing file wraps fs.ErrNotExist, matching OSFS,
// so callers can distinguish "vanished" from real I/O failures.
func (m *MemFS) Open(name string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("ckpt: file %q does not exist: %w", name, iofs.ErrNotExist)
	}
	return io.NopCloser(strings.NewReader(string(data))), nil
}

// List implements FS.
func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("ckpt: file %q does not exist", name)
	}
	delete(m.files, name)
	return nil
}

// Drop removes a file without error checking; tests use it to simulate
// partial loss.
func (m *MemFS) Drop(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
}

// Truncate cuts a file to n bytes, simulating a torn write after a crash.
func (m *MemFS) Truncate(name string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if data, ok := m.files[name]; ok && n < len(data) {
		m.files[name] = data[:n]
	}
}

// OSFS stores files in a real directory.
type OSFS struct {
	Dir string
}

// NewOSFS creates (if necessary) and wraps dir.
func NewOSFS(dir string) (*OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return &OSFS{Dir: dir}, nil
}

// Create implements FS.
func (o *OSFS) Create(name string) (io.WriteCloser, error) {
	return os.Create(filepath.Join(o.Dir, name))
}

// Open implements FS.
func (o *OSFS) Open(name string) (io.ReadCloser, error) {
	return os.Open(filepath.Join(o.Dir, name))
}

// List implements FS.
func (o *OSFS) List() ([]string, error) {
	entries, err := os.ReadDir(o.Dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (o *OSFS) Remove(name string) error {
	return os.Remove(filepath.Join(o.Dir, name))
}
