// Package ckpt implements the durable checkpoint repository: the on-disk
// (or in-memory) format that the page manager's committer writes and that
// restart reads back. An epoch's pages are appended to a segment file as
// self-checking records; the epoch is sealed by writing its manifest last,
// so a crash mid-checkpoint leaves an unsealed epoch that restore ignores —
// restart always sees a consistent image, which is the correctness contract
// of checkpoint-restart.
//
// That contract rests on two FS properties, both part of the FS interface's
// publish-on-close semantics: a file created through Create is invisible
// until its writer's Close returns (atomicity — a reader never sees a
// half-written manifest), and once Close returns the content is durable
// (OSFS fsyncs the file and its directory around the rename that publishes
// it). Write ordering alone — segment before manifest — is therefore a real
// persist barrier, not an accident of append order.
package ckpt

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
)

// FS is the minimal filesystem surface the repository needs; it has a real
// directory-backed implementation (OSFS) and an in-memory one (MemFS) for
// tests and simulations.
//
// Create follows publish-on-close semantics: the returned writer stages the
// file's content, and only a successful Close makes the file visible to
// Open/List — atomically replacing any previous content under the same
// name, and durably where the medium supports it (OSFS: temp file → fsync →
// rename → directory fsync). A writer abandoned without Close (or discarded
// via Discard) publishes nothing. Every repository commit point — epoch
// manifests, base manifests, segment files, tier-manifest mirrors — relies
// on this contract.
type FS interface {
	// Create opens name for writing; the file is published atomically (and
	// durably, medium permitting) when the returned writer is closed.
	Create(name string) (io.WriteCloser, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// List returns all file names, sorted.
	List() ([]string, error)
	// Remove deletes name.
	Remove(name string) error
}

// Aborter is implemented by FS writers that can abandon a file mid-write:
// Abort discards everything staged without publishing, leaving any previous
// content under the name untouched.
type Aborter interface {
	Abort() error
}

// Discard abandons a writer without publishing its content when the writer
// supports it (all FS implementations in this module do); otherwise it falls
// back to Close. Error paths use it so a failed segment or manifest write
// never publishes a partial file over a good one.
func Discard(w io.WriteCloser) {
	if w == nil {
		return
	}
	if a, ok := w.(Aborter); ok {
		_ = a.Abort()
		return
	}
	_ = w.Close()
}

// MemFS is an in-memory FS. The zero value is ready to use. Files are
// published on Close, atomically, matching the FS contract (durability is
// moot in memory).
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

type memFile struct {
	fs   *MemFS
	name string
	buf  []byte
	done bool
}

func (f *memFile) Write(p []byte) (int, error) {
	if f.done {
		return 0, fmt.Errorf("ckpt: write to closed file %q", f.name)
	}
	f.buf = append(f.buf, p...)
	return len(p), nil
}

func (f *memFile) Close() error {
	if f.done {
		return nil
	}
	f.done = true
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.files[f.name] = f.buf
	return nil
}

// Abort implements Aborter: the staged content is dropped unpublished.
func (f *memFile) Abort() error {
	f.done = true
	f.buf = nil
	return nil
}

// Create implements FS.
func (m *MemFS) Create(name string) (io.WriteCloser, error) {
	m.mu.Lock()
	if m.files == nil {
		m.files = map[string][]byte{}
	}
	m.mu.Unlock()
	return &memFile{fs: m, name: name}, nil
}

// Open implements FS. A missing file wraps fs.ErrNotExist, matching OSFS,
// so callers can distinguish "vanished" from real I/O failures.
func (m *MemFS) Open(name string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("ckpt: file %q does not exist: %w", name, iofs.ErrNotExist)
	}
	return io.NopCloser(strings.NewReader(string(data))), nil
}

// List implements FS.
func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("ckpt: file %q does not exist", name)
	}
	delete(m.files, name)
	return nil
}

// Drop removes a file without error checking; tests use it to simulate
// partial loss.
func (m *MemFS) Drop(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
}

// Truncate cuts a file to n bytes, simulating a torn write after a crash
// on a medium without atomic publish.
func (m *MemFS) Truncate(name string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if data, ok := m.files[name]; ok && n < len(data) {
		m.files[name] = data[:n]
	}
}

// tmpPrefix marks not-yet-published staging files in an OSFS directory.
// List hides them and NewOSFS sweeps orphans left by a crash mid-write.
const tmpPrefix = ".tmp-"

// tmpSeq disambiguates concurrent staging files for the same target name.
var tmpSeq atomic.Uint64

// OSFS stores files in a real directory with publish-on-close semantics:
// Create writes to a hidden temp file, and Close fsyncs it, renames it over
// the final name and fsyncs the directory — the POSIX atomic-durable-publish
// protocol. A crash at any point leaves either the old content or the new,
// never a torn mix, and a published file survives power loss.
type OSFS struct {
	Dir string
}

// NewOSFS creates (if necessary) and wraps dir, sweeping any staging files
// orphaned by an earlier crash mid-publish.
func NewOSFS(dir string) (*OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if !e.IsDir() && strings.HasPrefix(e.Name(), tmpPrefix) {
				_ = os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	return &OSFS{Dir: dir}, nil
}

type osFile struct {
	dir  string
	name string // final file name
	tmp  string // absolute staging path
	f    *os.File
	done bool
}

func (f *osFile) Write(p []byte) (int, error) {
	if f.done {
		return 0, fmt.Errorf("ckpt: write to closed file %q", f.name)
	}
	return f.f.Write(p)
}

// Close publishes the staged content: fsync the temp file, rename it over
// the final name, fsync the directory so the rename itself is durable.
func (f *osFile) Close() error {
	if f.done {
		return nil
	}
	f.done = true
	if err := f.f.Sync(); err != nil {
		f.f.Close()
		os.Remove(f.tmp)
		return fmt.Errorf("ckpt: sync %s: %w", f.name, err)
	}
	if err := f.f.Close(); err != nil {
		os.Remove(f.tmp)
		return fmt.Errorf("ckpt: close %s: %w", f.name, err)
	}
	if err := os.Rename(f.tmp, filepath.Join(f.dir, f.name)); err != nil {
		os.Remove(f.tmp)
		return fmt.Errorf("ckpt: publish %s: %w", f.name, err)
	}
	return syncDir(f.dir)
}

// Abort implements Aborter: the staging file is removed unpublished.
func (f *osFile) Abort() error {
	if f.done {
		return nil
	}
	f.done = true
	f.f.Close()
	return os.Remove(f.tmp)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Filesystems that cannot sync directories (returning EINVAL/ENOTSUP) are
// tolerated: the rename is still atomic there, just not durably ordered.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ckpt: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("ckpt: sync dir: %w", err)
	}
	return nil
}

// Create implements FS: content is staged in a hidden temp file and
// published atomically and durably by Close.
func (o *OSFS) Create(name string) (io.WriteCloser, error) {
	tmp := filepath.Join(o.Dir, fmt.Sprintf("%s%d-%s", tmpPrefix, tmpSeq.Add(1), name))
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	return &osFile{dir: o.Dir, name: name, tmp: tmp, f: f}, nil
}

// Open implements FS.
func (o *OSFS) Open(name string) (io.ReadCloser, error) {
	return os.Open(filepath.Join(o.Dir, name))
}

// List implements FS. Unpublished staging files are hidden: until Close
// renames them into place they are not part of the repository.
func (o *OSFS) List() ([]string, error) {
	entries, err := os.ReadDir(o.Dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && !strings.HasPrefix(e.Name(), tmpPrefix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (o *OSFS) Remove(name string) error {
	return os.Remove(filepath.Join(o.Dir, name))
}
