package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"

	"repro/internal/compress"
	"repro/internal/util"
)

// putFile drops raw bytes into a MemFS under name.
func putFile(t testing.TB, fs *MemFS, name string, data []byte) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close %s: %v", name, err)
	}
}

// buildRecord encodes one wire record (header + payload) for seeds and for
// the segment fuzzer's hand-built inputs.
func buildRecord(page int, payload []byte) []byte {
	rec := make([]byte, 20+len(payload))
	binary.LittleEndian.PutUint32(rec[0:], recordMagic)
	binary.LittleEndian.PutUint32(rec[4:], uint32(page))
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(rec[12:], util.Fnv64a(payload))
	copy(rec[20:], payload)
	return rec
}

// FuzzVisitSegment feeds arbitrary segment bytes (with a manifest claiming
// pageCount records of pageSize bytes) to the record parser. It must reject
// or accept them without panicking, and every accepted record must be
// self-consistent with the declared page size.
func FuzzVisitSegment(f *testing.F) {
	valid := append(buildRecord(0, bytes.Repeat([]byte{0xaa}, 16)), buildRecord(3, bytes.Repeat([]byte{0xbb}, 16))...)
	f.Add(valid, 16, 2)
	f.Add([]byte{}, 16, 0)
	f.Add(buildRecord(1, []byte("0123456789abcdef"))[:19], 16, 1) // truncated header
	corrupt := buildRecord(2, bytes.Repeat([]byte{0xcc}, 16))
	corrupt[25] ^= 0xff // flip a payload byte under the hash
	f.Add(corrupt, 16, 1)
	f.Fuzz(func(t *testing.T, seg []byte, pageSize, pageCount int) {
		if pageSize < 1 || pageSize > 1<<16 || pageCount < 0 || pageCount > 1<<12 {
			t.Skip()
		}
		fs := &MemFS{}
		man := Manifest{Epoch: 1, PageSize: pageSize, PageCount: pageCount, TotalBytes: int64(len(seg))}
		putFile(t, fs, segmentName(1), seg)
		err := VisitSegment(fs, man, func(page int, data []byte) {
			if len(data) != pageSize {
				t.Fatalf("visited record of %d bytes, page size %d", len(data), pageSize)
			}
			if page < 0 {
				t.Fatalf("visited negative page %d", page)
			}
		})
		_ = err // malformed segments must error, not panic
	})
}

// FuzzManifestDecode feeds arbitrary manifest JSON through the chain loader
// and the full restore path. Whatever the bytes say, nothing may panic, and
// a chain that loads must restore or fail cleanly.
func FuzzManifestDecode(f *testing.F) {
	good, _ := json.Marshal(Manifest{Epoch: 1, PageSize: 16, PageCount: 1, Pages: []int{0}, Hashes: []uint64{util.Fnv64a(bytes.Repeat([]byte{1}, 16))}, Format: FormatV2})
	f.Add(good)
	f.Add([]byte(`{"epoch":2,"page_size":16,"page_count":0,"pages":[]}`))
	f.Add([]byte(`{"epoch":1,"page_size":-3,"pages":null,"refs":[{"page":1,"epoch":0}]}`))
	f.Add([]byte(`{"epoch":1,"base":{"from":5,"to":2}}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, manJSON []byte) {
		fs := &MemFS{}
		putFile(t, fs, manifestName(1), manJSON)
		// A 1-record segment so manifests claiming content find some bytes.
		putFile(t, fs, segmentName(1), buildRecord(0, bytes.Repeat([]byte{1}, 16)))
		ch, err := LoadChain(fs)
		if err != nil {
			return
		}
		_, _ = Restore(fs)
		if _, err := Inspect(fs); err != nil {
			t.Fatalf("Inspect errored on a loadable chain: %v", err)
		}
		for _, m := range ch.Epochs {
			_, _, _ = EpochPages(fs, m.Epoch)
		}
	})
}

// FuzzRepositoryRoundTrip drives the real write path with fuzz-derived page
// content and checks the restored image is bit-identical — across codecs and
// with dedup on, which exercises the manifest Refs machinery.
func FuzzRepositoryRoundTrip(f *testing.F) {
	f.Add([]byte("0123456789abcdef0123456789abcdef"), uint8(0), true)
	f.Add(bytes.Repeat([]byte{0}, 64), uint8(1), true)
	f.Add([]byte("same same same same "), uint8(2), false)
	f.Fuzz(func(t *testing.T, blob []byte, codec uint8, dedup bool) {
		const pageSize = 16
		if len(blob) == 0 {
			t.Skip()
		}
		fs := &MemFS{}
		r := NewRepository(fs, pageSize)
		r.SetCodec(compress.Codec(codec % 3))
		r.SetDedup(dedup)
		want := map[int][]byte{}
		page := make([]byte, pageSize)
		for i := 0; i+pageSize <= len(blob) && i/pageSize < 64; i += pageSize {
			copy(page, blob[i:i+pageSize])
			pg := i / pageSize
			if err := r.WritePage(1, pg, page, pageSize); err != nil {
				t.Fatalf("WritePage(%d): %v", pg, err)
			}
			want[pg] = append([]byte(nil), page...)
		}
		if len(want) == 0 {
			t.Skip()
		}
		if err := r.EndEpoch(1); err != nil {
			t.Fatalf("EndEpoch: %v", err)
		}
		im, err := Restore(fs)
		if err != nil {
			t.Fatalf("Restore: %v", err)
		}
		if len(im.Pages) != len(want) {
			t.Fatalf("restored %d pages, wrote %d", len(im.Pages), len(want))
		}
		for pg, data := range want {
			if !bytes.Equal(im.Pages[pg], data) {
				t.Fatalf("page %d corrupted: got %x want %x", pg, im.Pages[pg], data)
			}
		}
	})
}
