package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	iofs "io/fs"
	"strings"

	"repro/internal/util"
)

// Format v2 extends the v1 manifest with per-page content hashes (enabling
// content-addressed dedup: a page whose content matches the newest chain
// entry is recorded as a cheap Ref instead of a segment record) and with
// consolidated base segments written by the background compactor. v1
// repositories remain fully readable: a manifest without a format field is
// treated as v1 and restored exactly as before.
const FormatV2 = 2

// PageRef records one deduplicated page of an epoch: the page's content is
// bit-identical to the physical record it references, so no segment record
// was written. Refs are pure annotations — restore semantics ("newest write
// wins, absent pages keep their older content") already produce the right
// image without reading them — kept for accounting, inspection and for
// rebuilding the dedup index after a restart.
type PageRef struct {
	// Page is the global page ID.
	Page int `json:"page"`
	// Epoch is the epoch whose segment physically holds the content.
	Epoch uint64 `json:"epoch"`
	// Hash is the FNV-64a hash of the raw (uncompressed) page content.
	Hash uint64 `json:"hash"`
}

// BaseRange marks a manifest as a consolidated base segment covering the
// inclusive epoch range [From, To]: the segment holds the newest content as
// of To of every page written in the range, so restore reads it instead of
// the individual epochs.
type BaseRange struct {
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
}

func baseSegmentName(from, to uint64) string {
	return fmt.Sprintf("base-%08d-%08d.pages", from, to)
}

func baseManifestName(from, to uint64) string {
	return fmt.Sprintf("base-%08d-%08d.json", from, to)
}

// segmentFile returns the segment file backing a manifest (epoch segment or
// base segment).
func segmentFile(m Manifest) string {
	if m.Base != nil {
		return baseSegmentName(m.Base.From, m.Base.To)
	}
	return segmentName(m.Epoch)
}

// manifestFile returns the manifest file name of a manifest.
func manifestFile(m Manifest) string {
	if m.Base != nil {
		return baseManifestName(m.Base.From, m.Base.To)
	}
	return manifestName(m.Epoch)
}

// contentHash is the FNV-64a hash of raw page content, computed inline:
// the commit path hashes every page and must not allocate a hasher per
// page. Bit-identical to the hash/fnv-based implementation it replaces.
func contentHash(data []byte) uint64 { return util.Fnv64a(data) }

// Chain is the logical state of a repository: the newest committed base (if
// any), the live epochs after it, and the garbage left behind by earlier
// compactions (superseded epochs and stale bases, removable at any time).
type Chain struct {
	// PageSize is the page granularity shared by every chain entry (0 for
	// an empty chain).
	PageSize int
	// Base is the newest committed base manifest, or nil.
	Base *Manifest
	// Epochs are the sealed epochs newer than Base (all sealed epochs when
	// Base is nil), ascending.
	Epochs []Manifest
	// Superseded are sealed epochs covered by Base that have not been
	// garbage-collected yet (a crash between commit and GC leaves them).
	Superseded []Manifest
	// StaleBases are older bases superseded by Base, pending GC.
	StaleBases []Manifest
}

// LastEpoch returns the newest epoch the chain reaches (through live epochs
// or the base), and ok=false for an empty chain.
func (c *Chain) LastEpoch() (uint64, bool) {
	if n := len(c.Epochs); n > 0 {
		return c.Epochs[n-1].Epoch, true
	}
	if c.Base != nil {
		return c.Base.Base.To, true
	}
	return 0, false
}

// LiveSegments counts the segments a restore must read: the base plus every
// live epoch with at least one physical record.
func (c *Chain) LiveSegments() int {
	n := 0
	if c.Base != nil {
		n++
	}
	for _, m := range c.Epochs {
		if m.PageCount > 0 {
			n++
		}
	}
	return n
}

// ReclaimableBytes sums the segment bytes of superseded epochs and stale
// bases: storage a garbage-collection pass would free.
func (c *Chain) ReclaimableBytes() int64 {
	var n int64
	for _, m := range c.Superseded {
		n += m.TotalBytes
	}
	for _, m := range c.StaleBases {
		n += m.TotalBytes
	}
	return n
}

// ChainIssue describes one manifest file that failed to load. TornTail
// marks the benign case: the corrupt manifest's epoch is newer than every
// intact chain entry, so it can only be the in-flight write of a crash —
// the epoch was never durably sealed and restore correctly ignores it.
// Everything else is interior corruption: the chain proves the epoch *was*
// sealed (a newer intact entry exists), so its loss is real damage that
// scrub/repair must fix from a redundant tier.
type ChainIssue struct {
	// Name is the corrupt manifest's file name.
	Name string
	// Epoch is parsed from the file name (a base's To for base manifests).
	Epoch uint64
	// IsBase marks a base manifest (always a torn compaction artifact:
	// an uncommitted base leaves the epochs it would cover intact).
	IsBase bool
	// TornTail marks crash artifacts safe to treat as unsealed.
	TornTail bool
	// Err is the decode failure.
	Err error
}

// parseManifestEpoch extracts the epoch from a chain manifest file name
// (epoch-NNNNNNNN.json, or base-NNNNNNNN-NNNNNNNN.json whose To is the
// epoch). ok=false means the name is not a chain manifest at all.
func parseManifestEpoch(name string) (epoch uint64, isBase bool, ok bool) {
	if n, err := fmt.Sscanf(name, "epoch-%d.json", &epoch); err == nil && n == 1 {
		return epoch, false, true
	}
	var from uint64
	if n, err := fmt.Sscanf(name, "base-%d-%d.json", &from, &epoch); err == nil && n == 2 {
		return epoch, true, true
	}
	return 0, false, false
}

// LoadChain assembles the repository's chain from fs. Crash-recovery
// semantics: a base segment without a manifest (compaction interrupted
// before its commit point) is invisible, a base manifest that fails to
// decode is skipped (the epochs it would have covered are still present,
// so the chain remains restorable), and a corrupt epoch manifest *newer
// than every intact entry* is a torn tail from a mid-crash — ignored as
// unsealed. A corrupt interior epoch manifest is an error naming the
// repair path: the chain proves that epoch was once sealed, so its loss
// cannot be explained away as an unfinished write. A manifest that
// vanishes between List and Open (a concurrent garbage-collection pass
// collected it) is skipped. Manifests that disagree on page size are
// rejected, naming the diverging entry.
func LoadChain(fs FS) (*Chain, error) {
	c, _, err := loadChain(fs, false)
	return c, err
}

// LoadChainLenient is LoadChain without the interior-corruption error: it
// assembles the best chain the intact manifests allow and reports every
// unloadable manifest as a ChainIssue, classified torn-tail or not. Scrub
// and the verify tool use it to inspect a damaged repository that the
// strict loader would refuse.
func LoadChainLenient(fs FS) (*Chain, []ChainIssue, error) {
	return loadChain(fs, true)
}

func loadChain(fs FS, lenient bool) (*Chain, []ChainIssue, error) {
	names, err := fs.List()
	if err != nil {
		return nil, nil, fmt.Errorf("ckpt: list: %w", err)
	}
	c := &Chain{}
	var bases []Manifest
	var issues []ChainIssue
	for _, n := range names {
		if !strings.HasSuffix(n, ".json") {
			continue
		}
		epoch, isBase, isChain := parseManifestEpoch(n)
		if !isChain {
			continue
		}
		f, err := fs.Open(n)
		if err != nil {
			if errors.Is(err, iofs.ErrNotExist) {
				continue // vanished since List: concurrently collected
			}
			return nil, nil, fmt.Errorf("ckpt: open %s: %w", n, err)
		}
		var m Manifest
		err = json.NewDecoder(f).Decode(&m)
		f.Close()
		if err != nil {
			issues = append(issues, ChainIssue{Name: n, Epoch: epoch, IsBase: isBase, Err: err})
			continue
		}
		if isBase {
			if m.Base == nil {
				continue // not a valid base manifest
			}
			bases = append(bases, m)
		} else {
			c.Epochs = append(c.Epochs, m)
		}
	}
	sortManifests(c.Epochs)
	sortManifests(bases)
	// The newest base (largest To, then largest From) wins; the rest are
	// garbage from earlier compactions.
	for i, b := range bases {
		bc := b
		if c.Base == nil || bc.Base.To > c.Base.Base.To ||
			(bc.Base.To == c.Base.Base.To && bc.Base.From > c.Base.Base.From) {
			if c.Base != nil {
				c.StaleBases = append(c.StaleBases, *c.Base)
			}
			c.Base = &bases[i]
		} else {
			c.StaleBases = append(c.StaleBases, bc)
		}
	}
	if c.Base != nil {
		live := c.Epochs[:0:0]
		for _, m := range c.Epochs {
			if m.Epoch <= c.Base.Base.To {
				c.Superseded = append(c.Superseded, m)
			} else {
				live = append(live, m)
			}
		}
		c.Epochs = live
	}
	// Classify the unloadable manifests now that the intact chain's reach
	// is known. A corrupt base manifest is always an uncommitted compaction
	// artifact (the epochs it would cover are still live). A corrupt epoch
	// manifest newer than every intact entry cannot be proven sealed — it
	// is the torn tail of a crash and restore rightly ignores it. A corrupt
	// epoch manifest at or below the chain's reach was once sealed: real
	// interior damage.
	maxIntact, haveIntact := c.LastEpoch()
	for i := range issues {
		is := &issues[i]
		switch {
		case is.IsBase:
			is.TornTail = true
		case !haveIntact || is.Epoch > maxIntact:
			is.TornTail = true
		case c.Base != nil && is.Epoch <= c.Base.Base.To:
			// Superseded garbage awaiting GC: restore never reads it.
			is.TornTail = true
		default:
			if !lenient {
				return nil, issues, fmt.Errorf(
					"ckpt: manifest %s corrupt (interior epoch %d, chain reaches %d; run scrub to quarantine and repair it from a redundant tier): %w",
					is.Name, is.Epoch, maxIntact, is.Err)
			}
		}
	}
	if err := c.validatePageSize(); err != nil {
		return nil, issues, err
	}
	return c, issues, nil
}

// validatePageSize rejects a chain whose manifests disagree on page size,
// naming the entry that diverged. Folding mixed-granularity epochs would
// silently interleave pages tracked at different offsets.
func (c *Chain) validatePageSize() error {
	check := func(m Manifest, kind string) error {
		if c.PageSize == 0 {
			c.PageSize = m.PageSize
		}
		if m.PageSize != c.PageSize {
			return fmt.Errorf("ckpt: %s %d has page size %d, chain uses %d: mixed-granularity chain is not restorable",
				kind, m.Epoch, m.PageSize, c.PageSize)
		}
		return nil
	}
	if c.Base != nil {
		if err := check(*c.Base, "base ending at epoch"); err != nil {
			return err
		}
	}
	for _, m := range c.Epochs {
		if err := check(m, "epoch"); err != nil {
			return err
		}
	}
	for _, m := range c.Superseded {
		if err := check(m, "superseded epoch"); err != nil {
			return err
		}
	}
	return nil
}

// ReadBasePages reads a committed base segment back in full, verifying
// record integrity, and returns its page→content map.
func ReadBasePages(fs FS, m Manifest) (map[int][]byte, error) {
	if m.Base == nil {
		return nil, fmt.Errorf("ckpt: manifest for epoch %d is not a base", m.Epoch)
	}
	pages := make(map[int][]byte, m.PageCount)
	if err := readSegment(fs, m, func(page int, data []byte) {
		pages[page] = data
	}); err != nil {
		return nil, err
	}
	return pages, nil
}

// WriteBase consolidates a folded image into a committed base segment
// covering [from, to]. The write is crash-safe: the segment is written
// first (an unsealed base segment is invisible to LoadChain), and the
// manifest — the commit point — last. pages holds the newest raw content of
// every page as of epoch to; codec compresses the stored records.
// WriteBase does not garbage-collect what the base supersedes; see
// GCSuperseded.
func WriteBase(fs FS, from, to uint64, pageSize int, pages map[int][]byte, codec uint8) (Manifest, error) {
	w := &segmentWriter{pageSize: pageSize, codec: codec}
	man := Manifest{
		Epoch:    to,
		PageSize: pageSize,
		Format:   FormatV2,
		Codec:    codec,
		Base:     &BaseRange{From: from, To: to},
	}
	f, err := fs.Create(baseSegmentName(from, to))
	if err != nil {
		return Manifest{}, fmt.Errorf("ckpt: create base segment: %w", err)
	}
	if err := w.begin(f); err != nil {
		Discard(f)
		return Manifest{}, err
	}
	for _, id := range sortedPageIDs(pages) {
		if err := w.writeRecord(&man, id, pages[id], contentHash(pages[id])); err != nil {
			Discard(f)
			return Manifest{}, fmt.Errorf("ckpt: base page %d: %w", id, err)
		}
	}
	if err := w.finish(); err != nil {
		return Manifest{}, fmt.Errorf("ckpt: base segment: %w", err)
	}
	if err := writeManifestFile(fs, baseManifestName(from, to), &man); err != nil {
		return Manifest{}, err
	}
	return man, nil
}

// GCSuperseded removes the files made obsolete by the chain's committed
// base: superseded epoch segments and manifests, and stale base files. It
// returns the segment bytes reclaimed and the file names removed. Removal
// failures are ignored (a vanished file is the goal; anything else is
// retried by the next pass).
func GCSuperseded(fs FS, c *Chain) (reclaimed int64, removed []string) {
	drop := func(m Manifest) {
		if m.PageCount > 0 || m.Base != nil {
			if fs.Remove(segmentFile(m)) == nil {
				reclaimed += m.TotalBytes
				removed = append(removed, segmentFile(m))
			}
		}
		if fs.Remove(manifestFile(m)) == nil {
			removed = append(removed, manifestFile(m))
		}
	}
	for _, m := range c.Superseded {
		drop(m)
	}
	for _, m := range c.StaleBases {
		drop(m)
	}
	return reclaimed, removed
}
