package util

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int{1, 2, 3, 17, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 0.45 || mean > 0.55 {
		t.Errorf("mean of uniform draws = %v, want ~0.5", mean)
	}
}

// Property: Perm always returns a permutation of [0, n).
func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(1)
	f1 := parent.Fork()
	f2 := parent.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Error("sibling forks produced identical first draws")
	}
}
