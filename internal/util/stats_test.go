package util

import (
	"math"
	"testing"
	"time"
)

func TestWelford(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d", w.N())
	}
	if got := w.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", got)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := w.Stddev(); math.Abs(got-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", got, want)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Stddev() != 0 {
		t.Error("empty accumulator should be zero-valued")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Stddev() != 0 || w.Min() != 3 || w.Max() != 3 {
		t.Error("single-sample accumulator wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	// Must not reorder the input.
	if xs[0] != 15 || xs[4] != 50 {
		t.Error("Percentile mutated its input")
	}
}

func TestMeanDuration(t *testing.T) {
	ds := []time.Duration{time.Second, 3 * time.Second}
	if got := MeanDuration(ds); got != 2*time.Second {
		t.Errorf("mean = %v", got)
	}
	if got := MeanDuration(nil); got != 0 {
		t.Errorf("empty mean = %v", got)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.0 KB"},
		{16 * 1024 * 1024, "16.0 MB"},
		{3 * 1024 * 1024 * 1024, "3.0 GB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
