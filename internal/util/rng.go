package util

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). Every stochastic choice in the simulator flows through an
// RNG seeded from the experiment configuration, which makes whole-system
// runs bit-reproducible.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("util: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection-free bound is overkill here; a
	// simple modulo is fine because n is tiny relative to 2^64 in all our
	// uses, but we still debias for correctness.
	max := uint64(n)
	limit := ^uint64(0) - ^uint64(0)%max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork returns a new RNG derived from this one; the parent stream advances
// by one draw. Forked streams are independent for practical purposes.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}
