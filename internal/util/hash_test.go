package util

import (
	"hash/fnv"
	"testing"
)

// TestFnv64aMatchesStdlib pins the inline hasher to hash/fnv bit for bit:
// the on-disk record hashes and the dedup index depend on the two never
// diverging.
func TestFnv64aMatchesStdlib(t *testing.T) {
	rng := NewRNG(7)
	inputs := [][]byte{nil, {}, {0}, {0xff}, []byte("aickpt")}
	for _, n := range []int{1, 63, 64, 65, 4096} {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(rng.Uint64())
		}
		inputs = append(inputs, buf)
	}
	for _, in := range inputs {
		h := fnv.New64a()
		h.Write(in)
		if got, want := Fnv64a(in), h.Sum64(); got != want {
			t.Fatalf("Fnv64a(%d bytes) = %#x, stdlib %#x", len(in), got, want)
		}
	}
}

// TestAllocGateFnv64a gates the steady-state hash at zero allocations.
func TestAllocGateFnv64a(t *testing.T) {
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(i * 31)
	}
	var sink uint64
	allocs := testing.AllocsPerRun(200, func() {
		sink += Fnv64a(page)
	})
	if allocs != 0 {
		t.Fatalf("Fnv64a allocated %.2f times per run, want 0", allocs)
	}
	_ = sink
}

func BenchmarkFnv64a(b *testing.B) {
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(i)
	}
	b.SetBytes(4096)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Fnv64a(page)
	}
	_ = sink
}
