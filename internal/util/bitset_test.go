package util

import (
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Count() != 0 {
		t.Fatalf("new bitset count = %d, want 0", b.Count())
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(129)
	if got := b.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !b.Test(i) {
			t.Errorf("Test(%d) = false, want true", i)
		}
	}
	if b.Test(1) || b.Test(128) {
		t.Error("unexpected bits set")
	}
	b.Clear(63)
	if b.Test(63) {
		t.Error("Clear(63) did not clear")
	}
	if got := b.Count(); got != 3 {
		t.Fatalf("count after clear = %d, want 3", got)
	}
}

func TestBitsetNextSet(t *testing.T) {
	b := NewBitset(200)
	for _, i := range []int{5, 70, 199} {
		b.Set(i)
	}
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 70}, {70, 70}, {71, 199}, {199, 199}, {-3, 5},
	}
	for _, c := range cases {
		if got := b.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	b.Clear(199)
	if got := b.NextSet(71); got != -1 {
		t.Errorf("NextSet(71) = %d, want -1", got)
	}
	if got := b.NextSet(500); got != -1 {
		t.Errorf("NextSet past end = %d, want -1", got)
	}
}

func TestBitsetFillAndReset(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 300} {
		b := NewBitset(n)
		b.Fill()
		if got := b.Count(); got != n {
			t.Errorf("n=%d: fill count = %d", n, got)
		}
		b.Reset()
		if got := b.Count(); got != 0 {
			t.Errorf("n=%d: reset count = %d", n, got)
		}
	}
}

func TestBitsetCloneIndependent(t *testing.T) {
	b := NewBitset(64)
	b.Set(10)
	c := b.Clone()
	c.Set(20)
	if b.Test(20) {
		t.Error("clone mutation leaked into original")
	}
	if !c.Test(10) {
		t.Error("clone missing original bit")
	}
	d := NewBitset(64)
	d.CopyFrom(b)
	if !d.Test(10) || d.Count() != 1 {
		t.Error("CopyFrom mismatch")
	}
}

func TestBitsetOutOfRangePanics(t *testing.T) {
	b := NewBitset(10)
	for _, f := range []func(){
		func() { b.Set(10) },
		func() { b.Set(-1) },
		func() { b.Test(11) },
		func() { b.Clear(-2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range access")
				}
			}()
			f()
		}()
	}
}

// Property: the set of indices reported via Test matches what was inserted,
// and Count agrees, for arbitrary insert/delete sequences.
func TestBitsetQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 512
		b := NewBitset(n)
		ref := map[int]bool{}
		for _, op := range ops {
			idx := int(op) % n
			if op&0x8000 != 0 {
				b.Clear(idx)
				delete(ref, idx)
			} else {
				b.Set(idx)
				ref[idx] = true
			}
		}
		if b.Count() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if b.Test(i) != ref[i] {
				return false
			}
		}
		// NextSet walk must enumerate exactly the reference set.
		seen := 0
		for i := b.NextSet(0); i != -1; i = b.NextSet(i + 1) {
			if !ref[i] {
				return false
			}
			seen++
		}
		return seen == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
