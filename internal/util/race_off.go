//go:build !race

package util

// RaceEnabled reports whether the binary was built with the race detector.
// Allocation-regression tests skip under it: the runtime deliberately
// bypasses sync.Pool caches in race mode, so pooled paths re-allocate.
const RaceEnabled = false
