// Package util provides small allocation-free building blocks shared by the
// AI-Ckpt runtime and its simulation substrates: fixed-size bitsets, a
// deterministic random number generator, online statistics and formatting
// helpers.
package util

import (
	"fmt"
	"math/bits"
)

// Bitset is a fixed-capacity set of small non-negative integers. The zero
// value is an empty set of capacity zero; use NewBitset to size it.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty bitset able to hold values in [0, n).
func NewBitset(n int) *Bitset {
	if n < 0 {
		panic(fmt.Sprintf("util: negative bitset size %d", n))
	}
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the bitset (the n given to NewBitset).
func (b *Bitset) Len() int { return b.n }

func (b *Bitset) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("util: bitset index %d out of range [0,%d)", i, b.n))
	}
}

// Set adds i to the set.
func (b *Bitset) Set(i int) {
	b.check(i)
	b.words[i>>6] |= 1 << uint(i&63)
}

// Clear removes i from the set.
func (b *Bitset) Clear(i int) {
	b.check(i)
	b.words[i>>6] &^= 1 << uint(i&63)
}

// Test reports whether i is in the set.
func (b *Bitset) Test(i int) bool {
	b.check(i)
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Count returns the number of elements in the set.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset removes all elements.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Fill adds every value in [0, Len()).
func (b *Bitset) Fill() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	// Mask off bits past n.
	if extra := b.n & 63; extra != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (1 << uint(extra)) - 1
	}
	if b.n == 0 && len(b.words) > 0 {
		b.words[0] = 0
	}
}

// NextSet returns the smallest element >= from, or -1 if none exists.
func (b *Bitset) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= b.n {
		return -1
	}
	wi := from >> 6
	w := b.words[wi] >> uint(from&63)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi<<6 + bits.TrailingZeros64(b.words[wi])
		}
	}
	return -1
}

// Grow extends the bitset's capacity to n, preserving existing bits. It is
// a no-op if n <= Len().
func (b *Bitset) Grow(n int) {
	if n <= b.n {
		return
	}
	words := make([]uint64, (n+63)/64)
	copy(words, b.words)
	b.words = words
	b.n = n
}

// CopyFrom makes b an exact copy of src. The two bitsets must have the same
// capacity.
func (b *Bitset) CopyFrom(src *Bitset) {
	if b.n != src.n {
		panic(fmt.Sprintf("util: bitset size mismatch %d != %d", b.n, src.n))
	}
	copy(b.words, src.words)
}

// Clone returns an independent copy of b.
func (b *Bitset) Clone() *Bitset {
	c := NewBitset(b.n)
	copy(c.words, b.words)
	return c
}
