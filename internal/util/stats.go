package util

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Welford accumulates a running mean and variance without storing samples.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one sample.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples recorded.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest sample (0 if empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample (0 if empty).
func (w *Welford) Max() float64 { return w.max }

// Stddev returns the sample standard deviation (0 for fewer than 2 samples).
func (w *Welford) Stddev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MeanDuration returns the arithmetic mean of ds (0 if empty).
func MeanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// FormatBytes renders a byte count with a binary-prefix unit (KiB-style
// multiples but printed in the paper's MB/GB convention).
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %cB", float64(n)/float64(div), "KMGTPE"[exp])
}
