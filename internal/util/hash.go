package util

// FNV-64a constants (FNV-1a, 64-bit variant).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Fnv64a returns the FNV-1a 64-bit hash of data. It is bit-identical to
// hashing data through hash/fnv's New64a, but runs inline with zero heap
// allocations — the checkpoint commit path hashes every page image and the
// heap hasher object was pure garbage at that rate.
//
//aickpt:hotpath
func Fnv64a(data []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}
