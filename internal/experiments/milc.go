package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/pagemem"
	"repro/internal/sim"
	"repro/internal/workload"
)

// MILCConfig parameterizes the §4.5 MILC study on the Shamrock deployment:
// 10 processes per node, checkpoints to the node-local disk shared by all
// ten. Per process, ~830 MB change per trajectory out of 868 MB (scale 1).
type MILCConfig struct {
	Scale    int
	Procs    int
	PerNode  int
	CowSlots int

	Workload workload.MILC
	NIC      netsim.LinkConfig
	Disk     netsim.LinkConfig

	FaultCost   time.Duration
	CowCopyCost time.Duration
}

// NewMILCConfig returns the paper's MILC configuration shrunk by scale.
// The COW buffer is deactivated by default, as in §4.5.1.
func NewMILCConfig(scale, procs int) MILCConfig {
	if scale < 1 {
		scale = 1
	}
	// ~830 MB hot lattice state over 10 arrays (gauge links x4, momenta,
	// CG vectors...). 212k pages at scale 1.
	pagesPer := 212480 / scale / 10
	return MILCConfig{
		Scale:   scale,
		Procs:   procs,
		PerNode: 10,
		Workload: workload.MILC{
			Arrays:              10,
			PagesPer:            pagesPer,
			SweepsPerTrajectory: 4,
			Trajectories:        3,
			PageCost:            1300 * time.Microsecond,
			CostJitter:          0.3,
			SpikeP:              0.08,
			SpikeRun:            64 / min(scale, 16),
			TouchBatch:          32,
			HaloBytes:           2 << 20,
			DeviationP:          0.02,
			Seed:                11,
		},
		NIC: netsim.LinkConfig{
			BytesPerSec: cluster.GigabitBandwidth,
			Latency:     cluster.GigabitLatency,
		},
		Disk: netsim.LinkConfig{
			// Effective streaming write bandwidth of the Shamrock HDDs
			// under 10 concurrent writers.
			BytesPerSec: 40e6,
			PerMessage:  10 * time.Microsecond,
		},
		FaultCost:   4 * time.Microsecond,
		CowCopyCost: 1 * time.Microsecond,
	}
}

// RunMILC simulates the deployment under one strategy; withCkpt=false gives
// the baseline.
func RunMILC(cfg MILCConfig, strategy core.Strategy, withCkpt bool) Run {
	if cfg.Procs%cfg.PerNode != 0 {
		panic("experiments: MILC process count must be a multiple of procs/node")
	}
	nodes := cfg.Procs / cfg.PerNode
	k := sim.NewKernel()
	d := cluster.NewDeployment(k, nodes, cluster.NodeSpec{
		Procs: cfg.PerNode,
		NIC:   cfg.NIC,
		Disk:  cfg.Disk,
	}, nil)
	bar := cluster.NewBarrier(k, cfg.Procs)
	wg := sim.NewWaitGroup(k)
	managers := make([]*core.Manager, cfg.Procs)

	for i := 0; i < cfg.Procs; i++ {
		i := i
		node := i / cfg.PerNode
		space := pagemem.NewSpace(PageSize)
		wl := cfg.Workload
		wl.Seed = cfg.Workload.Seed + uint64(i)*131
		proc := workload.NewMILCProc(k, space, wl)
		proc.Exchange = func(b int64) { d.Exchange(node, b) }
		proc.Barrier = bar.Wait
		if withCkpt {
			managers[i] = core.NewManager(core.Config{
				Env:         k,
				Space:       space,
				Store:       d.LocalBackend(node),
				Strategy:    strategy,
				CowSlots:    cfg.CowSlots,
				FaultCost:   cfg.FaultCost,
				CowCopyCost: cfg.CowCopyCost,
				Name:        fmt.Sprintf("milc-%d", i),
			})
			proc.Checkpoint = managers[i].Checkpoint
		}
		wg.Add(1)
		k.Go(fmt.Sprintf("milc-proc%d", i), func() {
			proc.Run()
			if managers[i] != nil {
				managers[i].WaitIdle()
			}
			wg.Done()
		})
	}
	var makespan time.Duration
	k.Go("driver", func() {
		wg.Wait()
		makespan = k.Now()
		for _, m := range managers {
			if m != nil {
				m.Close()
			}
		}
	})
	if err := k.Run(); err != nil {
		panic("experiments: MILC run failed: " + err.Error())
	}
	run := Run{Strategy: strategy, Runtime: makespan}
	if withCkpt {
		all := make([][]core.EpochStats, 0, cfg.Procs)
		for _, m := range managers {
			all = append(all, m.Stats())
		}
		foldStats(&run, all)
	}
	return run
}

// Fig5Row is one process-count datapoint of Figure 5.
type Fig5Row struct {
	Procs    int
	Strategy core.Strategy
	// OverheadSec is the increase in execution time vs baseline.
	OverheadSec float64
	// AvgCkptTimeSec should stay roughly constant (~210 s at scale 1).
	AvgCkptTimeSec float64
}

// Fig5 regenerates Figure 5: MILC weak scalability with the COW buffer
// deactivated (the paper sweeps 10..280 processes, 10 per node).
func Fig5(scale int, procCounts []int) []Fig5Row {
	var rows []Fig5Row
	for _, procs := range procCounts {
		cfg := NewMILCConfig(scale, procs)
		base := RunMILC(cfg, core.Sync, false).Runtime
		for _, strategy := range Strategies {
			run := RunMILC(cfg, strategy, true)
			run.Baseline = base
			rows = append(rows, Fig5Row{
				Procs:          procs,
				Strategy:       strategy,
				OverheadSec:    run.Overhead().Seconds(),
				AvgCkptTimeSec: run.AvgCkptTime.Seconds(),
			})
		}
	}
	return rows
}

// Fig4b regenerates Figure 4(b): MILC at the maximum process count with the
// COW buffer swept from 0 to 256 MB.
func Fig4b(scale int, procs int, cowMBs []int) []Fig4Row {
	var rows []Fig4Row
	cfg := NewMILCConfig(scale, procs)
	base := RunMILC(cfg, core.Sync, false).Runtime
	syncRun := RunMILC(cfg, core.Sync, true)
	syncRun.Baseline = base
	for _, mb := range cowMBs {
		cfg.CowSlots = mb << 20 / PageSize / cfg.Scale
		for _, strategy := range []core.Strategy{core.Adaptive, core.NoPattern} {
			run := RunMILC(cfg, strategy, true)
			run.Baseline = base
			rows = append(rows, Fig4Row{
				CowBufferMB:  mb,
				Strategy:     strategy,
				ReductionPct: ReductionVsSync(run, syncRun),
			})
		}
	}
	return rows
}
