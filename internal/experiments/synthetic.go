package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/pagemem"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// SyntheticConfig parameterizes the §4.3 benchmark on one Grid'5000 node.
// Defaults (via NewSyntheticConfig) follow the paper: a 256 MB region of
// 4 KB pages touched fully per iteration, 39 iterations, a checkpoint every
// 10, a 16 MB COW buffer, checkpoints on the node-local ~55 MB/s disk.
type SyntheticConfig struct {
	Scale      int
	Pattern    workload.Pattern
	Pages      int
	Iterations int
	CkptEvery  int
	CowSlots   int
	// PageCost is the byte-by-byte transformation cost per 4 KB page.
	PageCost   time.Duration
	CostJitter float64
	SpikeP     float64
	TouchBatch int
	// DiskBandwidth / DiskPerPage model the local SATA disk.
	DiskBandwidth float64
	DiskPerPage   time.Duration
	FaultCost     time.Duration
	CowCopyCost   time.Duration
	Seed          uint64
	// Ablation switches forwarded to the page manager (see core.Config).
	NoWaitedHint      bool
	NoLiveCowPriority bool
}

// NewSyntheticConfig returns the paper's configuration shrunk by scale.
func NewSyntheticConfig(scale int, pattern workload.Pattern) SyntheticConfig {
	if scale < 1 {
		scale = 1
	}
	return SyntheticConfig{
		Scale:      scale,
		Pattern:    pattern,
		Pages:      65536 / scale, // 256 MB at scale 1
		Iterations: 39,
		CkptEvery:  10,
		CowSlots:   4096 / scale, // 16 MB COW buffer at scale 1
		// ~55 MB/s byte-by-byte increment loop: 75 us per 4 KB page,
		// comparable to the disk's per-page flush time.
		PageCost:   45 * time.Microsecond,
		CostJitter: 0.3,
		SpikeP:     0.08,
		TouchBatch: 32,
		// Local SATA disk, ~55 MB/s (4 KB page ~= 73 us) and a small
		// per-request cost.
		DiskBandwidth: 55e6,
		DiskPerPage:   5 * time.Microsecond,
		// mprotect fault + SIGSEGV handler round trip.
		FaultCost:   4 * time.Microsecond,
		CowCopyCost: 1 * time.Microsecond,
		Seed:        42,
	}
}

func (c SyntheticConfig) workload() workload.Synthetic {
	return workload.Synthetic{
		Pages:           c.Pages,
		Iterations:      c.Iterations,
		CheckpointEvery: c.CkptEvery,
		Pattern:         c.Pattern,
		PageCost:        c.PageCost,
		CostJitter:      c.CostJitter,
		SpikeP:          c.SpikeP,
		TouchBatch:      c.TouchBatch,
		Seed:            c.Seed,
	}
}

// RunSynthetic executes the benchmark under one strategy and returns its
// Run (Baseline is filled by the caller via SyntheticBaseline).
func RunSynthetic(cfg SyntheticConfig, strategy core.Strategy) Run {
	k := sim.NewKernel()
	space := pagemem.NewSpace(PageSize)
	disk := storage.NewSimDisk(netsim.NewLink(k, netsim.LinkConfig{
		Name:        "local-disk",
		BytesPerSec: cfg.DiskBandwidth,
		PerMessage:  cfg.DiskPerPage,
	}))
	mgr := core.NewManager(core.Config{
		Env:               k,
		Space:             space,
		Store:             disk,
		Strategy:          strategy,
		CowSlots:          cfg.CowSlots,
		FaultCost:         cfg.FaultCost,
		CowCopyCost:       cfg.CowCopyCost,
		Name:              "synthetic",
		NoWaitedHint:      cfg.NoWaitedHint,
		NoLiveCowPriority: cfg.NoLiveCowPriority,
	})
	region := space.Alloc(cfg.Pages*PageSize, true)
	var runtime time.Duration
	k.Go("bench", func() {
		cfg.workload().Run(k, region, mgr.Checkpoint)
		mgr.WaitIdle()
		runtime = k.Now()
		mgr.Close()
	})
	if err := k.Run(); err != nil {
		panic("experiments: synthetic run failed: " + err.Error())
	}
	run := Run{Strategy: strategy, Runtime: runtime}
	foldStats(&run, [][]core.EpochStats{mgr.Stats()})
	return run
}

// SyntheticBaseline measures the benchmark with checkpointing disabled.
func SyntheticBaseline(cfg SyntheticConfig) time.Duration {
	k := sim.NewKernel()
	space := pagemem.NewSpace(PageSize)
	region := space.Alloc(cfg.Pages*PageSize, true)
	var runtime time.Duration
	k.Go("bench", func() {
		cfg.workload().Run(k, region, nil)
		runtime = k.Now()
	})
	if err := k.Run(); err != nil {
		panic("experiments: synthetic baseline failed: " + err.Error())
	}
	return runtime
}

// Fig2Row is one (pattern, approach) cell of Figures 2(a)-(c).
type Fig2Row struct {
	Pattern  workload.Pattern
	Strategy core.Strategy
	// OverheadSec: Figure 2(a), increase in execution time vs baseline.
	OverheadSec float64
	// Waits: Figure 2(b), pages that triggered WAIT (mean per ckpt).
	Waits float64
	// Avoided: Figure 2(c), pages that triggered AVOIDED (mean per ckpt).
	Avoided float64
	// Cows and After complete the access-type breakdown.
	Cows  float64
	After float64
}

// Fig2 regenerates Figures 2(a), 2(b) and 2(c): the three approaches under
// the three access patterns.
func Fig2(scale int) []Fig2Row {
	var rows []Fig2Row
	for _, pattern := range []workload.Pattern{workload.Ascending, workload.Random, workload.Descending} {
		cfg := NewSyntheticConfig(scale, pattern)
		base := SyntheticBaseline(cfg)
		for _, strategy := range Strategies {
			run := RunSynthetic(cfg, strategy)
			run.Baseline = base
			rows = append(rows, Fig2Row{
				Pattern:     pattern,
				Strategy:    strategy,
				OverheadSec: run.Overhead().Seconds(),
				Waits:       run.AvgWaits,
				Avoided:     run.AvgAvoided,
				Cows:        run.AvgCows,
				After:       run.AvgAfter,
			})
		}
	}
	return rows
}
