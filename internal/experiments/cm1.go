package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/pagemem"
	"repro/internal/sim"
	"repro/internal/workload"
)

// CM1Config parameterizes the §4.4 CM1 study on the Grid'5000 deployment:
// one process per node, checkpoints to a PVFS deployment on 10 storage
// nodes, Gigabit Ethernet everywhere. Per process, 400 MB change per epoch
// out of 728 MB allocated (at scale 1).
type CM1Config struct {
	Scale    int
	Procs    int
	CowSlots int

	Workload workload.CM1
	PFS      cluster.PFSSpec
	NIC      netsim.LinkConfig

	FaultCost   time.Duration
	CowCopyCost time.Duration

	// Metrics, when non-nil, is called with the run's virtual clock and
	// must return the obs.Metrics to attach to process 0's page manager —
	// instrumenting one representative process keeps the flight
	// recorder's epoch attribution unambiguous. Run.Epochs then carries
	// that process's scorecards and lifecycle span trees.
	Metrics func(now func() time.Duration) *obs.Metrics
}

// NewCM1Config returns the paper's CM1 configuration shrunk by scale.
func NewCM1Config(scale, procs int) CM1Config {
	if scale < 1 {
		scale = 1
	}
	// 400 MB hot state split over 16 prognostic arrays; 328 MB cold.
	hotPages := 102400 / scale / 16
	coldPages := 83968 / scale / 8
	return CM1Config{
		Scale:    scale,
		Procs:    procs,
		CowSlots: 4096 / scale, // 16 MB COW buffer
		Workload: workload.CM1{
			WriteArrays:     16,
			WritePages:      hotPages,
			ColdArrays:      8,
			ColdPages:       coldPages,
			Iterations:      33,
			CheckpointEvery: 10, // 3 checkpoints, like the 50 s cadence
			PageCost:        100 * time.Microsecond,
			CostJitter:      0.3,
			SpikeP:          0.08,
			SpikeRun:        64 / min(scale, 16),
			TouchBatch:      32,
			HaloBytes:       1 << 20, // ~1 MB of borders per iteration
			DeviationP:      0.01,
			Seed:            7,
		},
		PFS: cluster.PFSSpec{
			Servers:         10,
			ServerBandwidth: cluster.RennesDiskBandwidth,
			PerRequest:      80 * time.Microsecond, // PVFS small-write cost
		},
		NIC: netsim.LinkConfig{
			BytesPerSec: cluster.GigabitBandwidth,
			Latency:     cluster.GigabitLatency,
		},
		FaultCost:   4 * time.Microsecond,
		CowCopyCost: 1 * time.Microsecond,
	}
}

// RunCM1 simulates the full deployment under one strategy. withCkpt=false
// gives the baseline.
func RunCM1(cfg CM1Config, strategy core.Strategy, withCkpt bool) Run {
	k := sim.NewKernel()
	d := cluster.NewDeployment(k, cfg.Procs, cluster.NodeSpec{Procs: 1, NIC: cfg.NIC}, &cfg.PFS)
	bar := cluster.NewBarrier(k, cfg.Procs)
	wg := sim.NewWaitGroup(k)
	managers := make([]*core.Manager, cfg.Procs)
	var met *obs.Metrics
	if cfg.Metrics != nil && withCkpt {
		met = cfg.Metrics(k.Now)
	}

	for i := 0; i < cfg.Procs; i++ {
		i := i
		space := pagemem.NewSpace(PageSize)
		wl := cfg.Workload
		wl.Seed = cfg.Workload.Seed + uint64(i)*101
		proc := workload.NewCM1Proc(k, space, wl)
		proc.Exchange = func(b int64) { d.Exchange(i, b) }
		proc.Barrier = bar.Wait
		if withCkpt {
			var procMet *obs.Metrics
			if i == 0 {
				procMet = met
			}
			managers[i] = core.NewManager(core.Config{
				Env:         k,
				Space:       space,
				Store:       d.PFSBackend(i),
				Strategy:    strategy,
				CowSlots:    cfg.CowSlots,
				FaultCost:   cfg.FaultCost,
				CowCopyCost: cfg.CowCopyCost,
				Name:        fmt.Sprintf("cm1-%d", i),
				Metrics:     procMet,
			})
			proc.Checkpoint = managers[i].Checkpoint
		}
		wg.Add(1)
		k.Go(fmt.Sprintf("cm1-proc%d", i), func() {
			proc.Run()
			if managers[i] != nil {
				managers[i].WaitIdle()
			}
			wg.Done()
		})
	}
	var makespan time.Duration
	k.Go("driver", func() {
		wg.Wait()
		makespan = k.Now()
		for _, m := range managers {
			if m != nil {
				m.Close()
			}
		}
	})
	if err := k.Run(); err != nil {
		panic("experiments: CM1 run failed: " + err.Error())
	}
	run := Run{Strategy: strategy, Runtime: makespan}
	if withCkpt {
		all := make([][]core.EpochStats, 0, cfg.Procs)
		for _, m := range managers {
			all = append(all, m.Stats())
		}
		foldStats(&run, all)
		if met != nil {
			var spans []obs.Span
			if met.Spans != nil {
				spans = met.Spans.Snapshot()
			}
			run.Epochs = obs.BuildEpochRecords(managers[0].Scorecards(), spans)
		}
	}
	return run
}

// Fig3Row is one process-count datapoint of Figures 3(a) and 3(b).
type Fig3Row struct {
	Procs    int
	Strategy core.Strategy
	// AvgCkptTimeSec: Figure 3(a).
	AvgCkptTimeSec float64
	// OverheadSec: Figure 3(b), increase vs baseline.
	OverheadSec float64
	Waits       float64
}

// Fig3 regenerates Figures 3(a) and 3(b): CM1 weak scalability over the
// given process counts (the paper sweeps 1..32).
func Fig3(scale int, procCounts []int) []Fig3Row {
	var rows []Fig3Row
	for _, procs := range procCounts {
		cfg := NewCM1Config(scale, procs)
		base := RunCM1(cfg, core.Sync, false).Runtime
		for _, strategy := range Strategies {
			run := RunCM1(cfg, strategy, true)
			run.Baseline = base
			rows = append(rows, Fig3Row{
				Procs:          procs,
				Strategy:       strategy,
				AvgCkptTimeSec: run.AvgCkptTime.Seconds(),
				OverheadSec:    run.Overhead().Seconds(),
				Waits:          run.AvgWaits,
			})
		}
	}
	return rows
}

// Fig4Row is one COW-buffer-size datapoint of Figure 4.
type Fig4Row struct {
	CowBufferMB int
	Strategy    core.Strategy
	// ReductionPct is the reduction in checkpointing overhead vs sync.
	ReductionPct float64
}

// Fig4a regenerates Figure 4(a): CM1 at the maximum process count with the
// COW buffer swept from 0 to 256 MB.
func Fig4a(scale int, procs int, cowMBs []int) []Fig4Row {
	var rows []Fig4Row
	cfg := NewCM1Config(scale, procs)
	base := RunCM1(cfg, core.Sync, false).Runtime
	syncRun := RunCM1(cfg, core.Sync, true)
	syncRun.Baseline = base
	for _, mb := range cowMBs {
		cfg.CowSlots = mb << 20 / PageSize / scale
		for _, strategy := range []core.Strategy{core.Adaptive, core.NoPattern} {
			run := RunCM1(cfg, strategy, true)
			run.Baseline = base
			rows = append(rows, Fig4Row{
				CowBufferMB:  mb,
				Strategy:     strategy,
				ReductionPct: ReductionVsSync(run, syncRun),
			})
		}
	}
	return rows
}
