package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// The experiment tests run at tiny scale and assert the orderings the paper
// reports, not absolute values.

func find2(rows []Fig2Row, p workload.Pattern, s core.Strategy) Fig2Row {
	for _, r := range rows {
		if r.Pattern == p && r.Strategy == s {
			return r
		}
	}
	panic("row not found")
}

func TestFig2Orderings(t *testing.T) {
	rows := Fig2(16)
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, p := range []workload.Pattern{workload.Ascending, workload.Random, workload.Descending} {
		ours := find2(rows, p, core.Adaptive)
		np := find2(rows, p, core.NoPattern)
		sync := find2(rows, p, core.Sync)
		// Sync is the worst for every pattern.
		if !(sync.OverheadSec > ours.OverheadSec && sync.OverheadSec > np.OverheadSec) {
			t.Errorf("%v: sync (%.3f) not worst (ours %.3f, np %.3f)",
				p, sync.OverheadSec, ours.OverheadSec, np.OverheadSec)
		}
		if ours.OverheadSec > np.OverheadSec*1.05 {
			t.Errorf("%v: ours (%.3f) worse than no-pattern (%.3f)", p, ours.OverheadSec, np.OverheadSec)
		}
	}
	// Pattern adaptation pays off for Random and Descending.
	for _, p := range []workload.Pattern{workload.Random, workload.Descending} {
		ours := find2(rows, p, core.Adaptive)
		np := find2(rows, p, core.NoPattern)
		if ours.OverheadSec >= np.OverheadSec {
			t.Errorf("%v: ours (%.3f) should beat no-pattern (%.3f)", p, ours.OverheadSec, np.OverheadSec)
		}
		if ours.Waits >= np.Waits {
			t.Errorf("%v: ours waits (%.0f) should be below no-pattern (%.0f)", p, ours.Waits, np.Waits)
		}
		if ours.Avoided <= np.Avoided {
			t.Errorf("%v: ours avoided (%.0f) should exceed no-pattern (%.0f)", p, ours.Avoided, np.Avoided)
		}
	}
	// Sync's overhead must be pattern-independent.
	sa := find2(rows, workload.Ascending, core.Sync).OverheadSec
	sd := find2(rows, workload.Descending, core.Sync).OverheadSec
	if diff := sa - sd; diff > 0.05*sa || diff < -0.05*sa {
		t.Errorf("sync overhead pattern-dependent: %.3f vs %.3f", sa, sd)
	}
}

func TestFig2Deterministic(t *testing.T) {
	a := Fig2(ScaleTiny)
	b := Fig2(ScaleTiny)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs between identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFig3Orderings(t *testing.T) {
	rows := Fig3(128, []int{1, 4})
	byProc := map[int]map[core.Strategy]Fig3Row{}
	for _, r := range rows {
		if byProc[r.Procs] == nil {
			byProc[r.Procs] = map[core.Strategy]Fig3Row{}
		}
		byProc[r.Procs][r.Strategy] = r
	}
	for procs, m := range byProc {
		if m[core.Sync].OverheadSec <= m[core.Adaptive].OverheadSec {
			t.Errorf("procs=%d: sync (%.2f) should exceed ours (%.2f)",
				procs, m[core.Sync].OverheadSec, m[core.Adaptive].OverheadSec)
		}
		if m[core.NoPattern].OverheadSec < m[core.Adaptive].OverheadSec*0.95 {
			t.Errorf("procs=%d: no-pattern (%.2f) should not beat ours (%.2f)",
				procs, m[core.NoPattern].OverheadSec, m[core.Adaptive].OverheadSec)
		}
	}
}

func TestFig5AndFig4bOrderings(t *testing.T) {
	rows := Fig5(1024, []int{10})
	var ours, np, sync Fig5Row
	for _, r := range rows {
		switch r.Strategy {
		case core.Adaptive:
			ours = r
		case core.NoPattern:
			np = r
		case core.Sync:
			sync = r
		}
	}
	if !(ours.OverheadSec <= np.OverheadSec && np.OverheadSec < sync.OverheadSec) {
		t.Errorf("fig5 ordering violated: ours %.2f, np %.2f, sync %.2f",
			ours.OverheadSec, np.OverheadSec, sync.OverheadSec)
	}
	rows4 := Fig4b(1024, 10, []int{0, 256})
	// The reduction must grow (or at least not shrink) with the buffer.
	var oursSmall, oursBig float64
	for _, r := range rows4 {
		if r.Strategy == core.Adaptive && r.CowBufferMB == 0 {
			oursSmall = r.ReductionPct
		}
		if r.Strategy == core.Adaptive && r.CowBufferMB == 256 {
			oursBig = r.ReductionPct
		}
	}
	if oursBig < oursSmall-5 {
		t.Errorf("fig4b: reduction shrank with bigger COW buffer: %.1f -> %.1f", oursSmall, oursBig)
	}
}

func TestRenderers(t *testing.T) {
	var sb strings.Builder
	RenderFig2(&sb, []Fig2Row{{Pattern: workload.Random, Strategy: core.Adaptive, OverheadSec: 1.5}})
	RenderFig3(&sb, []Fig3Row{{Procs: 4, Strategy: core.Sync, AvgCkptTimeSec: 2}})
	RenderFig4(&sb, "Figure 4(a)", []Fig4Row{{CowBufferMB: 16, Strategy: core.NoPattern, ReductionPct: 40}})
	RenderFig5(&sb, []Fig5Row{{Procs: 10, Strategy: core.Adaptive, OverheadSec: 3}})
	out := sb.String()
	for _, want := range []string{"Random", "our-approach", "sync", "async-no-pattern", "Figure 4(a)", "Figure 5"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

// TestScorecardDistinguishesStrategies asserts that the selector
// prediction scorecard separates the adaptive selector from the
// ascending (no-pattern) flush order. On a descending workload the
// ascending order is maximally wrong: the adaptive selector must win on
// hit rate (more faults landing on already-flushed pages) and show a
// strongly positive rank correlation where ascending goes negative.
func TestScorecardDistinguishesStrategies(t *testing.T) {
	cfg := NewSyntheticConfig(ScaleBench, workload.Descending)
	ours := RunSynthetic(cfg, core.Adaptive)
	np := RunSynthetic(cfg, core.NoPattern)
	if ours.HitRate <= np.HitRate {
		t.Errorf("descending: adaptive hit rate %.3f should exceed ascending %.3f", ours.HitRate, np.HitRate)
	}
	if ours.RankCorrelation < 0.8 {
		t.Errorf("adaptive rank correlation = %.3f, want strongly positive (selector predicts fault order)", ours.RankCorrelation)
	}
	if np.RankCorrelation > 0.2 {
		t.Errorf("ascending-on-descending rank correlation = %.3f, want near zero or negative", np.RankCorrelation)
	}
}

// TestCM1ScorecardSelectorSignal runs the CM1 study with the flight
// recorder attached: the adaptive selector's rank correlation must beat
// the ascending order's (it flushes in predicted fault order), both
// strategies must see a live scorecard (nonzero overlapping faults), and
// the instrumented run must yield per-epoch records with both a
// scorecard and a well-formed span tree.
func TestCM1ScorecardSelectorSignal(t *testing.T) {
	cfg := NewCM1Config(ScaleTiny, 2)
	cfg.Metrics = func(now func() time.Duration) *obs.Metrics {
		m := obs.New(now)
		m.Spans = obs.NewSpanLog(64)
		return m
	}
	ours := RunCM1(cfg, core.Adaptive, true)
	np := RunCM1(cfg, core.NoPattern, true)
	if ours.RankCorrelation <= np.RankCorrelation {
		t.Errorf("adaptive rank correlation %.3f should exceed ascending %.3f",
			ours.RankCorrelation, np.RankCorrelation)
	}
	if ours.HitRate <= 0 || np.HitRate <= 0 {
		t.Errorf("hit rates must be nonzero with overlapping faults: ours %.3f, np %.3f",
			ours.HitRate, np.HitRate)
	}
	if len(ours.Epochs) == 0 {
		t.Fatal("instrumented run produced no epoch records")
	}
	for _, r := range ours.Epochs {
		if r.Scorecard == nil {
			t.Errorf("epoch %d record has no scorecard", r.Epoch)
			continue
		}
		if r.Spans == nil || r.Spans.Kind != "epoch" || len(r.Spans.Children) == 0 {
			t.Errorf("epoch %d record has a malformed span tree: %+v", r.Epoch, r.Spans)
		}
		if r.Bounding == "" || r.TotalNs <= 0 {
			t.Errorf("epoch %d record lacks a critical path: %+v", r.Epoch, r)
		}
	}
}

func TestReductionVsSync(t *testing.T) {
	sync := Run{Runtime: 20e9, Baseline: 10e9} // overhead 10s
	async := Run{Runtime: 14e9, Baseline: 10e9}
	if got := ReductionVsSync(async, sync); got != 60 {
		t.Errorf("reduction = %v, want 60", got)
	}
	if got := ReductionVsSync(async, Run{Runtime: 10e9, Baseline: 10e9}); got != 0 {
		t.Errorf("degenerate sync overhead: got %v", got)
	}
}
