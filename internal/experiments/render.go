package experiments

import (
	"fmt"
	"io"
)

// RenderFig2 prints the Figure 2 family as aligned text tables.
func RenderFig2(w io.Writer, rows []Fig2Row) {
	fmt.Fprintln(w, "Figure 2(a): increase in execution time vs baseline (s, lower is better)")
	fmt.Fprintln(w, "Figure 2(b): pages that triggered WAIT per checkpoint (lower is better)")
	fmt.Fprintln(w, "Figure 2(c): pages that triggered AVOIDED per checkpoint (higher is better)")
	fmt.Fprintf(w, "%-12s %-18s %12s %10s %10s %10s\n",
		"pattern", "approach", "overhead(s)", "WAIT", "AVOIDED", "COW")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-18s %12.3f %10.1f %10.1f %10.1f\n",
			r.Pattern, r.Strategy, r.OverheadSec, r.Waits, r.Avoided, r.Cows)
	}
}

// RenderFig3 prints the Figure 3 table.
func RenderFig3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintln(w, "Figure 3(a): avg checkpointing time (s, lower is better)")
	fmt.Fprintln(w, "Figure 3(b): increase in execution time vs baseline (s, lower is better)")
	fmt.Fprintf(w, "%-8s %-18s %12s %14s %10s\n", "procs", "approach", "ckpt(s)", "overhead(s)", "WAIT")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %-18s %12.2f %14.2f %10.1f\n",
			r.Procs, r.Strategy, r.AvgCkptTimeSec, r.OverheadSec, r.Waits)
	}
}

// RenderFig4 prints a COW-sweep table (Figures 4(a) and 4(b)).
func RenderFig4(w io.Writer, title string, rows []Fig4Row) {
	fmt.Fprintf(w, "%s: reduction in checkpointing overhead vs sync (%%, higher is better)\n", title)
	fmt.Fprintf(w, "%-10s %-18s %14s\n", "COW(MB)", "approach", "reduction(%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %-18s %14.1f\n", r.CowBufferMB, r.Strategy, r.ReductionPct)
	}
}

// RenderFig5 prints the Figure 5 table.
func RenderFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "Figure 5: increase in execution time vs baseline (s, lower is better)")
	fmt.Fprintf(w, "%-8s %-18s %14s %12s\n", "procs", "approach", "overhead(s)", "ckpt(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %-18s %14.2f %12.2f\n",
			r.Procs, r.Strategy, r.OverheadSec, r.AvgCkptTimeSec)
	}
}
