// Package experiments regenerates every figure of the paper's evaluation
// (§4): the synthetic-benchmark family (Figure 2a/2b/2c), CM1 weak
// scalability and COW sweep (Figures 3a/3b/4a) and MILC weak scalability
// and COW sweep (Figures 5/4b). Each experiment runs the same page-manager
// code as the real-time library, inside the deterministic virtual-time
// kernel, against storage and network models calibrated to the paper's
// testbeds.
//
// Experiments accept a memory-division factor ("scale"): Scale=1 is the
// paper's sizes (slow: tens of millions of simulated events), larger
// factors shrink every memory quantity proportionally — including the COW
// buffer — preserving the ratios that drive the checkpointing dynamics.
// EXPERIMENTS.md records the shape comparison against the paper.
package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Scale presets.
const (
	// ScalePaper runs the paper's exact memory sizes.
	ScalePaper = 1
	// ScaleBench is the default for benchmarks and the experiments tool.
	ScaleBench = 16
	// ScaleTiny keeps unit tests fast.
	ScaleTiny = 256
)

// PageSize is fixed at the operating-system page size used throughout the
// paper's evaluation.
const PageSize = 4096

// Strategies lists the three approaches compared throughout §4.
var Strategies = []core.Strategy{core.Adaptive, core.NoPattern, core.Sync}

// Run captures one simulated execution of a workload under one strategy.
type Run struct {
	Strategy core.Strategy
	// Runtime is the application makespan (all processes finished and
	// the final checkpoint drained).
	Runtime time.Duration
	// Baseline is the makespan with checkpointing disabled.
	Baseline time.Duration
	// AvgCkptTime is the paper's checkpointing-time metric: mean over
	// processes of the mean checkpoint duration, skipping the first
	// (full) checkpoint as in §4.4.1.
	AvgCkptTime time.Duration
	// Access-type counts, averaged per checkpoint across processes.
	AvgWaits   float64
	AvgCows    float64
	AvgAvoided float64
	AvgAfter   float64
	// Selector prediction scorecard, aggregated over every process and
	// epoch: HitRate is avoided/(waits+cows+avoided) — of the pages the
	// application touched while a checkpoint was live, the fraction the
	// selector had already flushed. RankCorrelation is the pair-weighted
	// footrule correlation between predicted flush order and actual
	// fault arrivals (1 = flushed exactly in fault order).
	HitRate         float64
	RankCorrelation float64
	// Epochs carries the instrumented process's flight-recorder records
	// (scorecards + lifecycle span trees) when the run was wired with a
	// Metrics hook; nil otherwise.
	Epochs []obs.EpochRecord
}

// Overhead is the increase in execution time versus baseline.
func (r Run) Overhead() time.Duration { return r.Runtime - r.Baseline }

// ReductionVsSync computes a COW-sweep datapoint of Figure 4: the
// percentage reduction in checkpointing overhead of an asynchronous run
// versus the sync run of the same configuration.
func ReductionVsSync(async, sync Run) float64 {
	syncOv := sync.Overhead().Seconds()
	if syncOv <= 0 {
		return 0
	}
	return (1 - async.Overhead().Seconds()/syncOv) * 100
}

// foldStats folds per-epoch manager statistics into a Run, skipping the
// first (full) checkpoint for the checkpointing-time metric, and
// aggregates the selector scorecard across every process and epoch.
func foldStats(run *Run, all [][]core.EpochStats) {
	var ckptSum time.Duration
	var ckptN int
	var wSum, cSum, aSum, fSum, n float64
	var waits, cows, avoided, pairs int
	var corrWeighted float64
	for _, stats := range all {
		for i, ep := range stats {
			if i > 0 { // skip the full checkpoint, as the paper does
				ckptSum += ep.Duration
				ckptN++
			}
			wSum += float64(ep.Waits)
			cSum += float64(ep.Cows)
			aSum += float64(ep.Avoided)
			fSum += float64(ep.After)
			waits += ep.Waits
			cows += ep.Cows
			avoided += ep.Avoided
			if ep.RankPairs > 0 {
				corrWeighted += ep.RankCorrelation() * float64(ep.RankPairs)
				pairs += ep.RankPairs
			}
			n++
		}
	}
	if ckptN > 0 {
		run.AvgCkptTime = ckptSum / time.Duration(ckptN)
	}
	if n > 0 {
		run.AvgWaits, run.AvgCows, run.AvgAvoided, run.AvgAfter = wSum/n, cSum/n, aSum/n, fSum/n
	}
	run.HitRate = obs.ScoreHitRate(waits, cows, avoided)
	if pairs > 0 {
		run.RankCorrelation = corrWeighted / float64(pairs)
	}
}
