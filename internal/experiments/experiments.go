// Package experiments regenerates every figure of the paper's evaluation
// (§4): the synthetic-benchmark family (Figure 2a/2b/2c), CM1 weak
// scalability and COW sweep (Figures 3a/3b/4a) and MILC weak scalability
// and COW sweep (Figures 5/4b). Each experiment runs the same page-manager
// code as the real-time library, inside the deterministic virtual-time
// kernel, against storage and network models calibrated to the paper's
// testbeds.
//
// Experiments accept a memory-division factor ("scale"): Scale=1 is the
// paper's sizes (slow: tens of millions of simulated events), larger
// factors shrink every memory quantity proportionally — including the COW
// buffer — preserving the ratios that drive the checkpointing dynamics.
// EXPERIMENTS.md records the shape comparison against the paper.
package experiments

import (
	"time"

	"repro/internal/core"
)

// Scale presets.
const (
	// ScalePaper runs the paper's exact memory sizes.
	ScalePaper = 1
	// ScaleBench is the default for benchmarks and the experiments tool.
	ScaleBench = 16
	// ScaleTiny keeps unit tests fast.
	ScaleTiny = 256
)

// PageSize is fixed at the operating-system page size used throughout the
// paper's evaluation.
const PageSize = 4096

// Strategies lists the three approaches compared throughout §4.
var Strategies = []core.Strategy{core.Adaptive, core.NoPattern, core.Sync}

// Run captures one simulated execution of a workload under one strategy.
type Run struct {
	Strategy core.Strategy
	// Runtime is the application makespan (all processes finished and
	// the final checkpoint drained).
	Runtime time.Duration
	// Baseline is the makespan with checkpointing disabled.
	Baseline time.Duration
	// AvgCkptTime is the paper's checkpointing-time metric: mean over
	// processes of the mean checkpoint duration, skipping the first
	// (full) checkpoint as in §4.4.1.
	AvgCkptTime time.Duration
	// Access-type counts, averaged per checkpoint across processes.
	AvgWaits   float64
	AvgCows    float64
	AvgAvoided float64
	AvgAfter   float64
}

// Overhead is the increase in execution time versus baseline.
func (r Run) Overhead() time.Duration { return r.Runtime - r.Baseline }

// ReductionVsSync computes a COW-sweep datapoint of Figure 4: the
// percentage reduction in checkpointing overhead of an asynchronous run
// versus the sync run of the same configuration.
func ReductionVsSync(async, sync Run) float64 {
	syncOv := sync.Overhead().Seconds()
	if syncOv <= 0 {
		return 0
	}
	return (1 - async.Overhead().Seconds()/syncOv) * 100
}

// averageStats folds per-epoch manager statistics into a Run, skipping the
// first (full) checkpoint for the checkpointing-time metric.
func averageStats(runs []Run, all [][]core.EpochStats) (avgCkpt time.Duration, w, c, a, f float64) {
	var ckptSum time.Duration
	var ckptN int
	var wSum, cSum, aSum, fSum, n float64
	for _, stats := range all {
		for i, ep := range stats {
			if i > 0 { // skip the full checkpoint, as the paper does
				ckptSum += ep.Duration
				ckptN++
			}
			wSum += float64(ep.Waits)
			cSum += float64(ep.Cows)
			aSum += float64(ep.Avoided)
			fSum += float64(ep.After)
			n++
		}
	}
	_ = runs
	if ckptN > 0 {
		avgCkpt = ckptSum / time.Duration(ckptN)
	}
	if n > 0 {
		w, c, a, f = wSum/n, cSum/n, aSum/n, fSum/n
	}
	return avgCkpt, w, c, a, f
}
