package crashsweep

import "testing"

const pageSize = 256

// tornVariants covers the publish media models: atomic (nil), almost-full
// prefix (classic torn tail), and half.
var tornVariants = []struct {
	name string
	torn func(int) int
}{
	{"atomic", nil},
	{"torn-1", func(n int) int { return n - 1 }},
	{"torn-half", func(n int) int { return n / 2 }},
	{"torn-empty", func(int) int { return 0 }},
}

func TestRepoSweep(t *testing.T) {
	for _, v := range tornVariants {
		t.Run(v.name, func(t *testing.T) {
			rep, err := RepoSweep(pageSize, v.torn)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Ops < 10 {
				t.Fatalf("workload too small to sweep: %d ops", rep.Ops)
			}
			if int64(len(rep.Points)) != rep.Ops {
				t.Fatalf("verified %d crash points, want %d", len(rep.Points), rep.Ops)
			}
			// The sweep must reach every seal state, from nothing durable
			// up to the whole workload.
			if first := rep.Points[0].Sealed; first != 0 {
				t.Errorf("crash at op 1 left epoch %d sealed", first)
			}
			if last := rep.Points[len(rep.Points)-1]; last.MinSealed < 3 {
				t.Errorf("crash at final op should have >= 3 durable epochs, floor %d", last.MinSealed)
			}
		})
	}
}

func TestRepoSweepIsDeterministic(t *testing.T) {
	a, err := RepoSweep(pageSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RepoSweep(pageSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ops != b.Ops || len(a.Points) != len(b.Points) {
		t.Fatalf("sweep shape differs across runs: %d/%d vs %d/%d ops/points",
			a.Ops, len(a.Points), b.Ops, len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("crash point %d differs across runs: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestHierarchySweep(t *testing.T) {
	for _, v := range tornVariants {
		t.Run(v.name, func(t *testing.T) {
			rep, err := HierarchySweep(pageSize, v.torn)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Ops < 6 {
				t.Fatalf("workload too small to sweep: %d ops", rep.Ops)
			}
			if int64(len(rep.Points)) != rep.Ops {
				t.Fatalf("verified %d crash points, want %d", len(rep.Points), rep.Ops)
			}
			if last := rep.Points[len(rep.Points)-1]; last.MinSealed < 2 {
				t.Errorf("crash at final op should have >= 2 durable epochs, floor %d", last.MinSealed)
			}
		})
	}
}
