// Package crashsweep exhaustively validates crash consistency: it replays a
// deterministic checkpoint workload — commits with dedup, seals, compaction
// with garbage collection, multi-tier draining — once per mutating
// filesystem operation, crash-stopping at every op index in turn, and after
// each crash "reboots" over the surviving files and asserts the three
// durability invariants of the commit protocol:
//
//  1. the chain loads strictly (a crash never manufactures interior
//     corruption — at most a torn tail, which is classified as unsealed),
//  2. restore yields bit-identically the image of the newest epoch whose
//     seal completed before the crash point (never a half-sealed epoch,
//     never a rollback past a completed seal), and
//  3. a new process can reopen the chain and continue sealing.
//
// Sweeps run on the in-memory FS under fault injection, so the whole
// crash-point space (tens of runs per workload) executes in milliseconds;
// the hierarchy variant runs under the virtual-time kernel so drain-worker
// interleavings — and therefore op indices — are deterministic across runs.
package crashsweep

import (
	"bytes"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/compact"
	"repro/internal/faultfs"
	"repro/internal/multilevel"
	"repro/internal/sim"
)

// Point is the verified outcome of one crash index.
type Point struct {
	// Op is the 1-based mutating-op index the run crashed at.
	Op int64
	// Sealed is the newest durably sealed epoch found after reboot.
	Sealed uint64
	// MinSealed is the newest epoch whose seal had fully completed before
	// the crash (the floor Sealed was checked against).
	MinSealed uint64
}

// Report summarizes one sweep.
type Report struct {
	// Ops is the total number of mutating ops in the clean run (= number
	// of crash points swept).
	Ops int64
	// Points holds one verified entry per crash index.
	Points []Point
}

// sealMark records the op index at which an epoch's seal completed in the
// clean probe run, plus the restore image it is expected to produce.
type sealMark struct {
	epoch uint64
	ops   int64
	image map[int][]byte
}

func fill(pageSize, p, v int) []byte {
	buf := make([]byte, pageSize)
	for i := range buf {
		buf[i] = byte(p*37 + v*11 + i)
	}
	return buf
}

// minSealed returns the newest epoch whose seal completed strictly before
// crash op k (op k itself never takes effect).
func minSealed(marks []sealMark, k int64) uint64 {
	var e uint64
	for _, m := range marks {
		if m.ops <= k-1 && m.epoch > e {
			e = m.epoch
		}
	}
	return e
}

func imageFor(marks []sealMark, epoch uint64) map[int][]byte {
	for _, m := range marks {
		if m.epoch == epoch {
			return m.image
		}
	}
	return map[int][]byte{}
}

func compareImage(got *ckpt.Image, want map[int][]byte) error {
	if len(got.Pages) != len(want) {
		return fmt.Errorf("restored %d pages, want %d", len(got.Pages), len(want))
	}
	for p, data := range want {
		if !bytes.Equal(got.Pages[p], data) {
			return fmt.Errorf("page %d content differs", p)
		}
	}
	return nil
}

// runRepoWorkload drives the repository workload on fs: four epochs with
// overlapping writes (epoch 2 rewrites page 1 with identical content, so
// dedup elides it), a compaction folding epochs 1-2 (with garbage
// collection), then a final epoch. onSeal fires after every completed seal.
// The first error — the injected crash — aborts the remaining steps.
func runRepoWorkload(fs ckpt.FS, pageSize int, onSeal func(epoch uint64)) error {
	repo := ckpt.NewRepository(fs, pageSize)
	write := func(epoch uint64, p, v int) error {
		data := fill(pageSize, p, v)
		return repo.WritePage(epoch, p, data, len(data))
	}
	seal := func(epoch uint64) error {
		if err := repo.EndEpoch(epoch); err != nil {
			return err
		}
		onSeal(epoch)
		return nil
	}
	for p := 0; p < 4; p++ {
		if err := write(1, p, 1); err != nil {
			return err
		}
	}
	if err := seal(1); err != nil {
		return err
	}
	if err := write(2, 0, 2); err != nil {
		return err
	}
	if err := write(2, 1, 1); err != nil { // identical to epoch 1: dedup ref
		return err
	}
	if err := seal(2); err != nil {
		return err
	}
	if err := write(3, 2, 3); err != nil {
		return err
	}
	if err := seal(3); err != nil {
		return err
	}
	if _, err := compact.RunOnce(compact.Config{
		FS: fs, PageSize: pageSize,
		Policy: compact.Policy{MaxDepth: 2, KeepRecent: 1},
	}, false); err != nil {
		return err
	}
	if err := write(4, 0, 4); err != nil {
		return err
	}
	return seal(4)
}

// probeRepo runs the workload cleanly through a counting faultfs and
// returns the op total plus the seal marks with their expected images.
func probeRepo(pageSize int) (int64, []sealMark, error) {
	probe := faultfs.Wrap(&ckpt.MemFS{}, faultfs.Plan{})
	var marks []sealMark
	var ierr error
	err := runRepoWorkload(probe, pageSize, func(e uint64) {
		im, err := ckpt.Restore(probe)
		if err != nil {
			ierr = fmt.Errorf("crashsweep: probe restore after epoch %d: %w", e, err)
			return
		}
		marks = append(marks, sealMark{epoch: e, ops: probe.Ops(), image: im.Pages})
	})
	if err == nil {
		err = ierr
	}
	return probe.Ops(), marks, err
}

// verifyReboot checks the durability invariants on the surviving inner FS
// after a crash at op k, and that the chain accepts further seals.
func verifyReboot(inner ckpt.FS, pageSize int, marks []sealMark, k int64) (Point, error) {
	pt := Point{Op: k, MinSealed: minSealed(marks, k)}
	if _, err := ckpt.LoadChain(inner); err != nil {
		return pt, fmt.Errorf("crash at op %d: chain corrupt after reboot: %w", k, err)
	}
	sealed, _, err := ckpt.LastSealedEpoch(inner)
	if err != nil {
		return pt, fmt.Errorf("crash at op %d: %w", k, err)
	}
	pt.Sealed = sealed
	if sealed < pt.MinSealed {
		return pt, fmt.Errorf("crash at op %d rolled back to epoch %d, sealed floor %d", k, sealed, pt.MinSealed)
	}
	if sealed > 0 { // an empty chain has nothing to restore — that is correct
		im, err := ckpt.Restore(inner)
		if err != nil {
			return pt, fmt.Errorf("crash at op %d: restore: %w", k, err)
		}
		if err := compareImage(im, imageFor(marks, sealed)); err != nil {
			return pt, fmt.Errorf("crash at op %d: restored image of epoch %d wrong: %w", k, sealed, err)
		}
	}
	// The survivor must accept new seals: reopen and continue the chain.
	repo := ckpt.NewRepository(inner, pageSize)
	next := sealed + 1
	data := fill(pageSize, 0, 99)
	if err := repo.WritePage(next, 0, data, len(data)); err != nil {
		return pt, fmt.Errorf("crash at op %d: continue write: %w", k, err)
	}
	if err := repo.EndEpoch(next); err != nil {
		return pt, fmt.Errorf("crash at op %d: continue seal: %w", k, err)
	}
	if after, _, err := ckpt.LastSealedEpoch(inner); err != nil || after != next {
		return pt, fmt.Errorf("crash at op %d: chain did not advance to %d (%d, %v)", k, next, after, err)
	}
	return pt, nil
}

// RepoSweep crash-stops the repository workload at every mutating-op index
// and verifies the durability invariants after each reboot. torn (nil for
// an atomic medium) maps a crashed publish's full length to the prefix that
// survives, exercising torn manifests and segments.
func RepoSweep(pageSize int, torn func(fullLen int) int) (Report, error) {
	total, marks, err := probeRepo(pageSize)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Ops: total}
	for k := int64(1); k <= total; k++ {
		inner := &ckpt.MemFS{}
		ffs := faultfs.Wrap(inner, faultfs.Plan{CrashAtOp: k, Torn: torn})
		if err := runRepoWorkload(ffs, pageSize, func(uint64) {}); err == nil {
			return rep, fmt.Errorf("crash at op %d did not surface an error", k)
		}
		pt, err := verifyReboot(inner, pageSize, marks, k)
		if err != nil {
			return rep, err
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// runHierarchyWorkload seals three epochs through a two-tier hierarchy
// whose L1 sits on fs, draining each to a lower tier on pfsFS, then drains
// and closes. Drain-worker scheduling runs under the virtual-time kernel,
// so the L1 op sequence (seals interleaved with tier-manifest mirrors) is
// identical across runs. The injected crash surfaces as an error from a
// write or seal; drain failures after the crash are tolerated (the drainer
// records them and retires the epochs).
func runHierarchyWorkload(k *sim.Kernel, fs, pfsFS ckpt.FS, pageSize int, onSeal func(epoch uint64)) error {
	local := multilevel.NewLocalTier(k, "local", fs, pageSize, nil)
	pfs := multilevel.NewLocalTier(k, "pfs", pfsFS, pageSize, nil)
	h, err := multilevel.New(multilevel.Config{
		Env: k, PageSize: pageSize, Local: local, Lower: []multilevel.Tier{pfs},
	})
	if err != nil {
		return err
	}
	var werr error
	k.Go("app", func() {
		defer func() {
			h.WaitDrained()
			_ = h.Close() // post-crash drain errors are expected
		}()
		for epoch := uint64(1); epoch <= 3; epoch++ {
			for p := 0; p <= int(epoch); p++ {
				data := fill(pageSize, p, int(epoch))
				if err := h.WritePage(epoch, p, data, len(data)); err != nil {
					werr = err
					return
				}
			}
			if err := h.EndEpoch(epoch); err != nil {
				werr = err
				return
			}
			onSeal(epoch)
		}
	})
	if err := k.Run(); err != nil {
		return fmt.Errorf("crashsweep: kernel: %w", err)
	}
	return werr
}

// HierarchySweep crash-stops the two-tier hierarchy workload at every
// mutating L1 op and verifies that a rebooted hierarchy — fresh processes
// over the surviving L1 files and the untouched lower tier — restores the
// image of the newest completed seal. The lower tier survives the crash
// (its FS is separate), so the reboot also exercises the recovery re-drain
// over a tier that already holds a prefix of the chain.
func HierarchySweep(pageSize int, torn func(fullLen int) int) (Report, error) {
	// Clean probe run.
	probe := faultfs.Wrap(&ckpt.MemFS{}, faultfs.Plan{})
	var marks []sealMark
	var ierr error
	err := runHierarchyWorkload(sim.NewKernel(), probe, &ckpt.MemFS{}, pageSize, func(e uint64) {
		im, err := ckpt.Restore(probe)
		if err != nil {
			ierr = fmt.Errorf("crashsweep: probe restore after epoch %d: %w", e, err)
			return
		}
		marks = append(marks, sealMark{epoch: e, ops: probe.Ops(), image: im.Pages})
	})
	if err == nil {
		err = ierr
	}
	if err != nil {
		return Report{}, err
	}
	total := probe.Ops()
	rep := Report{Ops: total}
	for ki := int64(1); ki <= total; ki++ {
		inner, pfsFS := &ckpt.MemFS{}, &ckpt.MemFS{}
		ffs := faultfs.Wrap(inner, faultfs.Plan{CrashAtOp: ki, Torn: torn})
		if err := runHierarchyWorkload(sim.NewKernel(), ffs, pfsFS, pageSize, func(uint64) {}); err == nil {
			// Mirrors are best-effort writes: a crash landing on one is
			// swallowed by design, so the workload itself may complete.
			if !ffs.Crashed() {
				return rep, fmt.Errorf("crash at op %d never fired", ki)
			}
		}
		pt := Point{Op: ki, MinSealed: minSealed(marks, ki)}
		// Reboot: fresh hierarchy over the surviving L1 files plus the
		// untouched lower tier.
		env := sim.NewRealEnv()
		h, err := multilevel.New(multilevel.Config{
			Env: env, PageSize: pageSize,
			Local: multilevel.NewLocalTier(env, "local", inner, pageSize, nil),
			Lower: []multilevel.Tier{multilevel.NewLocalTier(env, "pfs", pfsFS, pageSize, nil)},
		})
		if err != nil {
			return rep, fmt.Errorf("crash at op %d: reboot: %w", ki, err)
		}
		h.WaitDrained()
		sealed, _, err := ckpt.LastSealedEpoch(inner)
		if err != nil {
			return rep, fmt.Errorf("crash at op %d: %w", ki, err)
		}
		pt.Sealed = sealed
		if sealed < pt.MinSealed {
			return rep, fmt.Errorf("crash at op %d rolled back to epoch %d, sealed floor %d", ki, sealed, pt.MinSealed)
		}
		if sealed > 0 { // an empty chain has nothing to restore — that is correct
			im, _, err := h.Restore()
			if err != nil {
				return rep, fmt.Errorf("crash at op %d: hierarchy restore: %w", ki, err)
			}
			if err := compareImage(im, imageFor(marks, sealed)); err != nil {
				return rep, fmt.Errorf("crash at op %d: restored image of epoch %d wrong: %w", ki, sealed, err)
			}
		}
		if err := h.Close(); err != nil {
			return rep, fmt.Errorf("crash at op %d: reboot close: %w", ki, err)
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}
