package multilevel

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/obs"
	"repro/internal/sim"
)

// sealChain writes epochs 1..n straight through the hierarchy's streaming
// L1 path: each epoch dirties an overlapping window of pages so the fold
// order matters (newest epoch must win on every overlap).
func sealChain(t *testing.T, h *Hierarchy, n int) {
	t.Helper()
	for e := 1; e <= n; e++ {
		base := (e % 4) * 4
		for p := base; p < base+8; p++ {
			data := pageFill(p, e)
			if err := h.WritePage(uint64(e), p, data, len(data)); err != nil {
				t.Fatalf("write epoch %d page %d: %v", e, p, err)
			}
		}
		if err := h.EndEpoch(uint64(e)); err != nil {
			t.Fatalf("seal epoch %d: %v", e, err)
		}
	}
}

// compareRestores asserts a serial and a pipelined restore agreed bit for
// bit: same pages, same restart epoch, same segment count, same per-epoch
// steps, same error text.
func compareRestores(t *testing.T, label string,
	serIm *ckpt.Image, serSteps []RestoreStep, serErr error,
	parIm *ckpt.Image, parSteps []RestoreStep, parErr error) {
	t.Helper()
	if (serErr == nil) != (parErr == nil) || (serErr != nil && serErr.Error() != parErr.Error()) {
		t.Fatalf("%s: error mismatch: serial=%v parallel=%v", label, serErr, parErr)
	}
	if !reflect.DeepEqual(serSteps, parSteps) {
		t.Fatalf("%s: steps mismatch:\nserial:   %+v\nparallel: %+v", label, serSteps, parSteps)
	}
	if serErr != nil {
		return
	}
	if serIm.Epoch != parIm.Epoch || serIm.SegmentsRead != parIm.SegmentsRead {
		t.Fatalf("%s: epoch/segments mismatch: serial epoch=%d segs=%d, parallel epoch=%d segs=%d",
			label, serIm.Epoch, serIm.SegmentsRead, parIm.Epoch, parIm.SegmentsRead)
	}
	if len(serIm.Pages) != len(parIm.Pages) {
		t.Fatalf("%s: page count mismatch: serial=%d parallel=%d", label, len(serIm.Pages), len(parIm.Pages))
	}
	for id, want := range serIm.Pages {
		if got, ok := parIm.Pages[id]; !ok || !bytes.Equal(got, want) {
			t.Fatalf("%s: page %d differs between serial and parallel restore", label, id)
		}
	}
}

// TestRestorePipelinedMatchesSerial seals a wide chain under the
// virtual-time kernel and compares a serial restore against pipelined
// restores at several worker counts, in three damage states: intact
// (everything served by L1), L1 wiped (erasure reconstruction from the
// peers), and L1 wiped plus one failed peer node (degraded
// reconstruction). Every variant must produce a bit-identical image and
// identical per-epoch steps. The hierarchy carries no Metrics, so this is
// also the nil-obs regression test for the pipelined path: loaders and
// folder must run with h.obs == nil without touching it.
func TestRestorePipelinedMatchesSerial(t *testing.T) {
	const epochs = 10
	k := sim.NewKernel()
	h, peer, _ := testHierarchy(t, k, 3)
	k.Go("app", func() {
		sealChain(t, h, epochs)
		h.WaitDrained()
		if err := h.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		check := func(label string) {
			serIm, serSteps, serErr := h.RestoreWith(RestoreOptions{Workers: 1})
			for _, workers := range []int{2, 4, 8} {
				parIm, parSteps, parErr := h.RestoreWith(RestoreOptions{Workers: workers})
				compareRestores(t, fmt.Sprintf("%s/workers=%d", label, workers),
					serIm, serSteps, serErr, parIm, parSteps, parErr)
			}
			if serErr == nil && serIm.Epoch != epochs {
				t.Fatalf("%s: restart epoch = %d, want %d", label, serIm.Epoch, epochs)
			}
		}

		check("intact")
		if err := h.Local().Wipe(); err != nil {
			t.Fatal(err)
		}
		check("l1-wiped")
		peer.Nodes()[1].Fail()
		check("l1-wiped+peer-degraded")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRestorePipelinedSpansMatchSerial runs the pipelined restore with a
// flight recorder attached: it must emit exactly one restore span per
// epoch with the same epoch→tier attribution as the serial restore's
// steps. Span *timestamps* may interleave (loads overlap by design), but
// attribution is part of the restore contract and must not change.
func TestRestorePipelinedSpansMatchSerial(t *testing.T) {
	k := sim.NewKernel()
	met := obs.New(k.Now)
	met.Spans = obs.NewSpanLog(128)
	h, _, _ := metricsHierarchy(t, k, 2, met)
	k.Go("app", func() {
		sealChain(t, h, 8)
		h.WaitDrained()
		if err := h.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := h.Local().Wipe(); err != nil {
			t.Fatal(err)
		}
		_, steps, err := h.RestoreWith(RestoreOptions{Workers: 1})
		if err != nil {
			t.Fatalf("serial restore: %v", err)
		}
		before := len(met.Spans.Snapshot())
		im, psteps, err := h.RestoreWith(RestoreOptions{Workers: 4})
		if err != nil {
			t.Fatalf("pipelined restore: %v", err)
		}
		if !reflect.DeepEqual(steps, psteps) {
			t.Fatalf("steps mismatch:\nserial:    %+v\npipelined: %+v", steps, psteps)
		}
		byEpoch := map[uint64]obs.Span{}
		for _, s := range met.Spans.Snapshot()[before:] {
			if s.Kind == obs.SpanRestore {
				byEpoch[s.Epoch] = s
			}
		}
		if len(byEpoch) != len(steps) {
			t.Fatalf("got %d restore spans, want one per step (%d)", len(byEpoch), len(steps))
		}
		for _, st := range steps {
			s, ok := byEpoch[st.Epoch]
			if !ok {
				t.Fatalf("no restore span for epoch %d", st.Epoch)
			}
			if s.Tier != 1 {
				t.Errorf("epoch %d span attributed to tier %d, want 1 (peer)", st.Epoch, s.Tier)
			}
			if s.Dur() < 0 {
				t.Errorf("epoch %d span has negative duration", st.Epoch)
			}
		}
		if im.Epoch != 8 {
			t.Fatalf("restart epoch = %d, want 8", im.Epoch)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// cutoffTier serves only epochs below cutoff, simulating a lower tier
// that lost the tail of the chain.
type cutoffTier struct {
	Tier
	cutoff uint64
}

func (c *cutoffTier) Load(epoch uint64) (*EpochData, error) {
	if epoch >= c.cutoff {
		return nil, errors.New("cutoff: epoch lost")
	}
	return c.Tier.Load(epoch)
}

// TestRestorePipelinedStopsAtIntactPrefix breaks the chain mid-way (L1
// wiped, the only lower tier lost epochs >= 5): serial and pipelined
// restores must both fold exactly the intact prefix 1..4, report the same
// unrecoverable step for epoch 5, and discard in-flight loads past the
// break without folding them.
func TestRestorePipelinedStopsAtIntactPrefix(t *testing.T) {
	env := sim.NewRealEnv()
	local := NewLocalTier(env, "local", &ckpt.MemFS{}, pageSize, nil)
	backing := NewLocalTier(env, "lower", &ckpt.MemFS{}, pageSize, nil)
	h, err := New(Config{
		Env: env, PageSize: pageSize, Local: local,
		Lower: []Tier{&cutoffTier{Tier: backing, cutoff: 5}},
		Drain: DrainPolicy{RetryBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	sealChain(t, h, 8)
	h.WaitDrained()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := local.Wipe(); err != nil {
		t.Fatal(err)
	}
	serIm, serSteps, serErr := h.RestoreWith(RestoreOptions{Workers: 1})
	if serErr != nil {
		t.Fatalf("serial restore: %v", serErr)
	}
	if serIm.Epoch != 4 {
		t.Fatalf("serial restart epoch = %d, want 4 (intact prefix)", serIm.Epoch)
	}
	last := serSteps[len(serSteps)-1]
	if last.Tier != "" || last.Epoch != 5 {
		t.Fatalf("last serial step = %+v, want unrecoverable epoch 5", last)
	}
	for _, workers := range []int{2, 4, 8} {
		parIm, parSteps, parErr := h.RestoreWith(RestoreOptions{Workers: workers})
		compareRestores(t, fmt.Sprintf("prefix/workers=%d", workers),
			serIm, serSteps, serErr, parIm, parSteps, parErr)
	}
}

// realEnvHierarchy builds a timing-free 2-tier hierarchy under the real
// clock for race tests.
func realEnvHierarchy(t *testing.T) (*Hierarchy, *LocalTier) {
	t.Helper()
	env := sim.NewRealEnv()
	local := NewLocalTier(env, "local", &ckpt.MemFS{}, pageSize, nil)
	nodes := make([]*PeerNode, 3)
	for i := range nodes {
		nodes[i] = NewPeerNode(fmt.Sprintf("peer%d", i), nil)
	}
	peer, err := NewPeerTier("peer", 2, 1, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(Config{
		Env: env, PageSize: pageSize, Local: local, Lower: []Tier{peer},
		Drain: DrainPolicy{Workers: 2, RetryBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, local
}

// TestRestoreConcurrentWithDrain starts pipelined restores while the
// background drainer is still promoting epochs to the peer tier. Restores
// read the sealed chain off L1 while the drainer loads the same epochs
// and stores shards — the race detector checks the shared structures
// (MemFS, repository, peer stores, manifests) stay properly guarded.
func TestRestoreConcurrentWithDrain(t *testing.T) {
	h, _ := realEnvHierarchy(t)
	sealChain(t, h, 8)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			im, _, err := h.RestoreWith(RestoreOptions{Workers: 4})
			if err != nil {
				t.Errorf("restore during drain: %v", err)
				return
			}
			if im.Epoch != 8 {
				t.Errorf("restore during drain folded to epoch %d, want 8", im.Epoch)
			}
		}()
	}
	wg.Wait()
	h.WaitDrained()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreConcurrentWithScrub runs a pipelined restore concurrently
// with a scrub pass over the same chain: scrub verification is read-only
// and repairs publish atomically, so both must succeed and the restored
// image must be complete.
func TestRestoreConcurrentWithScrub(t *testing.T) {
	h, _ := realEnvHierarchy(t)
	sealChain(t, h, 8)
	h.WaitDrained()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		rep, err := h.Scrub()
		if err != nil {
			t.Errorf("scrub during restore: %v", err)
			return
		}
		if rep.Corrupt != 0 {
			t.Errorf("scrub found %d corrupt entries on a healthy chain", rep.Corrupt)
		}
	}()
	go func() {
		defer wg.Done()
		im, _, err := h.RestoreWith(RestoreOptions{Workers: 4})
		if err != nil {
			t.Errorf("restore during scrub: %v", err)
			return
		}
		for e := 1; e <= 8; e++ {
			base := (e % 4) * 4
			for p := base; p < base+8; p++ {
				// Later epochs overwrite overlapping windows; only check
				// pages whose newest writer is epoch e.
				if newestWriter(p, 8) == e && !bytes.Equal(im.PageOr(p), pageFill(p, e)) {
					t.Errorf("page %d differs after restore concurrent with scrub", p)
				}
			}
		}
	}()
	wg.Wait()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

// newestWriter returns the highest epoch <= n whose sealChain window
// covers page p (0 if none).
func newestWriter(p, n int) int {
	for e := n; e >= 1; e-- {
		base := (e % 4) * 4
		if p >= base && p < base+8 {
			return e
		}
	}
	return 0
}
