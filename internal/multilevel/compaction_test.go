package multilevel

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/compact"
	"repro/internal/sim"
)

// compactionCfg wires a compaction pass to a hierarchy the way the runtime
// does: only settled epochs fold, and superseding is reflected in the tier
// manifests.
func compactionCfg(h *Hierarchy, policy compact.Policy) compact.Config {
	return compact.Config{
		FS:          h.Local().FS(),
		PageSize:    h.PageSize(),
		Policy:      policy,
		CanFold:     h.Settled,
		OnCompacted: func(base ckpt.Manifest, _ []uint64) { h.MarkSuperseded(base) },
	}
}

func TestCompactionSupersedesDrainedEpochs(t *testing.T) {
	env := sim.NewRealEnv()
	localFS, pfsFS := &ckpt.MemFS{}, &ckpt.MemFS{}
	h, err := New(Config{
		Env: env, PageSize: pageSize,
		Local: NewLocalTier(env, "local", localFS, pageSize, nil),
		Lower: []Tier{NewLocalTier(env, "pfs", pfsFS, pageSize, nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for epoch := uint64(1); epoch <= 6; epoch++ {
		if err := h.WritePage(epoch, int(epoch%3), pageFill(int(epoch%3), int(epoch)), pageSize); err != nil {
			t.Fatal(err)
		}
		if err := h.EndEpoch(epoch); err != nil {
			t.Fatal(err)
		}
	}
	h.WaitDrained()
	before, _, err := h.Restore()
	if err != nil {
		t.Fatal(err)
	}

	res, err := compact.RunOnce(compactionCfg(h, compact.Policy{MaxDepth: 2, KeepRecent: 2}), false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted || res.BaseTo != 4 {
		t.Fatalf("result = %+v", res)
	}

	// Tier manifests reflect the superseding.
	superseded := 0
	for _, m := range h.Manifests() {
		if m.Base != nil {
			continue
		}
		if m.Epoch <= 4 {
			if m.Tiers[0].State != StateSuperseded {
				t.Errorf("epoch %d L1 state = %s, want superseded", m.Epoch, m.Tiers[0].State)
			}
			superseded++
		} else if m.Tiers[0].State == StateSuperseded {
			t.Errorf("live epoch %d marked superseded", m.Epoch)
		}
	}
	if superseded != 4 {
		t.Fatalf("superseded manifests = %d, want 4", superseded)
	}

	// Restore with all tiers healthy folds the base first.
	im, steps, err := h.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 || !strings.Contains(steps[0].Detail, "base [1,4]") {
		t.Fatalf("steps = %+v", steps)
	}
	if im.SegmentsRead != 3 { // base + epochs 5, 6
		t.Errorf("segments read = %d, want 3", im.SegmentsRead)
	}
	if im.Epoch != before.Epoch || len(im.Pages) != len(before.Pages) {
		t.Fatalf("image = %+v, want %+v", im, before)
	}
	for p, d := range before.Pages {
		if !bytes.Equal(im.Pages[p], d) {
			t.Fatalf("page %d differs after compaction", p)
		}
	}

	// Local tier lost: the per-epoch copies on the lower tier still
	// reproduce the full image (they were drained before folding).
	if err := h.Local().Wipe(); err != nil {
		t.Fatal(err)
	}
	im2, steps2, err := h.Restore()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range steps2 {
		if s.Tier != "pfs" {
			t.Errorf("epoch %d restored from %q, want pfs", s.Epoch, s.Tier)
		}
	}
	for p, d := range before.Pages {
		if !bytes.Equal(im2.Pages[p], d) {
			t.Fatalf("page %d differs after L1 loss", p)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRestartDrainsBaseToFreshLowerTier restarts a fully compacted local
// tier over a fresh (empty, non-durable) lower tier: the recovery scan
// must promote the base itself, or content existing only inside the base
// would be unrecoverable after a later L1 loss.
func TestRestartDrainsBaseToFreshLowerTier(t *testing.T) {
	env := sim.NewRealEnv()
	localFS := &ckpt.MemFS{}

	// First life: 4 epochs, drained, then fully compacted and collected.
	h1, err := New(Config{
		Env: env, PageSize: pageSize,
		Local: NewLocalTier(env, "local", localFS, pageSize, nil),
		Lower: []Tier{NewLocalTier(env, "pfs", &ckpt.MemFS{}, pageSize, nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for epoch := uint64(1); epoch <= 4; epoch++ {
		if err := h1.WritePage(epoch, int(epoch), pageFill(int(epoch), 7), pageSize); err != nil {
			t.Fatal(err)
		}
		if err := h1.EndEpoch(epoch); err != nil {
			t.Fatal(err)
		}
	}
	h1.WaitDrained()
	if _, err := compact.RunOnce(compactionCfg(h1, compact.Policy{}), true); err != nil {
		t.Fatal(err)
	}
	if err := h1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: same local FS (holding only the base), brand-new lower
	// tier with no history.
	freshPFS := NewLocalTier(env, "pfs", &ckpt.MemFS{}, pageSize, nil)
	h2, err := New(Config{
		Env: env, PageSize: pageSize,
		Local: NewLocalTier(env, "local", localFS, pageSize, nil),
		Lower: []Tier{freshPFS},
	})
	if err != nil {
		t.Fatal(err)
	}
	if last, ok := h2.LastEpoch(); !ok || last != 4 {
		t.Fatalf("LastEpoch = %d,%v, want 4,true", last, ok)
	}
	// The restarted process seals one more epoch.
	if err := h2.WritePage(5, 9, pageFill(9, 5), pageSize); err != nil {
		t.Fatal(err)
	}
	if err := h2.EndEpoch(5); err != nil {
		t.Fatal(err)
	}
	h2.WaitDrained()
	if es, err := freshPFS.Epochs(); err != nil || len(es) != 2 {
		t.Fatalf("fresh pfs holds %v (%v), want the promoted base (as epoch 4) and epoch 5", es, err)
	}

	// L1 dies: the promoted base on the lower tier must reproduce every
	// page of the compacted history.
	if err := h2.Local().Wipe(); err != nil {
		t.Fatal(err)
	}
	im, _, err := h2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if im.Epoch != 5 {
		t.Fatalf("restart point = %d, want 5", im.Epoch)
	}
	for epoch := 1; epoch <= 4; epoch++ {
		if !bytes.Equal(im.PageOr(epoch), pageFill(epoch, 7)) {
			t.Errorf("page %d (folded into the base) lost after L1 wipe", epoch)
		}
	}
	if !bytes.Equal(im.PageOr(9), pageFill(9, 5)) {
		t.Error("post-restart epoch lost")
	}
	if err := h2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRestartSkipsSupersededEpochs restarts over a local tier where a
// compaction committed its base but was killed before garbage collection:
// the leftover superseded epochs must not be re-drained, and their tier
// manifests must say why.
func TestRestartSkipsSupersededEpochs(t *testing.T) {
	env := sim.NewRealEnv()
	localFS := &ckpt.MemFS{}
	repo := ckpt.NewRepository(localFS, pageSize)
	for epoch := uint64(1); epoch <= 3; epoch++ {
		if err := repo.WritePage(epoch, int(epoch), pageFill(int(epoch), int(epoch)), pageSize); err != nil {
			t.Fatal(err)
		}
		if err := repo.EndEpoch(epoch); err != nil {
			t.Fatal(err)
		}
	}
	// A committed base covering [1,2]; the folded epochs escape GC.
	if _, err := ckpt.WriteBase(localFS, 1, 2, pageSize, map[int][]byte{
		1: pageFill(1, 1),
		2: pageFill(2, 2),
	}, 0); err != nil {
		t.Fatal(err)
	}

	pfs := &countingTier{Tier: NewLocalTier(env, "pfs", &ckpt.MemFS{}, pageSize, nil)}
	h, err := New(Config{
		Env: env, PageSize: pageSize,
		Local: NewLocalTier(env, "local", localFS, pageSize, nil),
		Lower: []Tier{pfs},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.WaitDrained()
	// Only the base (as epoch 2) and live epoch 3 are shipped — not the
	// superseded epochs 1 and 2.
	if pfs.stores != 2 {
		t.Errorf("lower tier stores = %d, want 2 (base + live epoch)", pfs.stores)
	}
	for _, m := range h.Manifests() {
		if m.Base == nil && m.Epoch <= 2 {
			for _, tc := range m.Tiers {
				if tc.State != StateSuperseded {
					t.Errorf("superseded epoch %d tier %s state = %s", m.Epoch, tc.Tier, tc.State)
				}
			}
		}
	}

	if err := h.Local().Wipe(); err != nil {
		t.Fatal(err)
	}
	im, _, err := h.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if im.Epoch != 3 {
		t.Fatalf("restart point = %d, want 3", im.Epoch)
	}
	for p := 1; p <= 3; p++ {
		if !bytes.Equal(im.PageOr(p), pageFill(p, p)) {
			t.Errorf("page %d lost", p)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}
