package multilevel

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ckpt"
)

// RestoreStep records where one epoch was read from during a tier-aware
// restore.
type RestoreStep struct {
	Epoch uint64
	// Tier is the tier that served the epoch; empty when the epoch was
	// unrecoverable on every tier.
	Tier string
	// Detail explains fallbacks: why faster tiers were skipped, or why the
	// epoch was unrecoverable.
	Detail string
}

// Restore folds the checkpoint chain back into a memory image, reading
// each epoch from the fastest tier that can still deliver it: L1 if its
// files survive, otherwise reconstruction from any k of k+m erasure shards
// on the peers, otherwise the parallel-file-system copy. Because epochs
// are incremental, the chain is folded oldest to newest and stops at the
// first epoch no tier can recover — the restart point is the last epoch of
// the intact prefix. The returned steps document the per-epoch source.
func (h *Hierarchy) Restore() (*ckpt.Image, []RestoreStep, error) {
	tiers := h.Tiers()
	seen := map[uint64]bool{}
	var epochs []uint64
	for _, t := range tiers {
		es, err := t.Epochs()
		if err != nil {
			continue // tier unreadable: its epochs may exist elsewhere
		}
		for _, e := range es {
			if !seen[e] {
				seen[e] = true
				epochs = append(epochs, e)
			}
		}
	}
	if len(epochs) == 0 {
		return nil, nil, fmt.Errorf("multilevel: no sealed epochs on any tier")
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })

	im := &ckpt.Image{PageSize: h.pageSize, Pages: map[int][]byte{}}
	var steps []RestoreStep
	folded := 0
	for _, epoch := range epochs {
		var fallbacks []string
		var ep *EpochData
		var from string
		for _, t := range tiers {
			loaded, err := t.Load(epoch)
			if err != nil {
				fallbacks = append(fallbacks, fmt.Sprintf("%s: %v", t.Name(), err))
				continue
			}
			ep, from = loaded, t.Name()
			break
		}
		if ep == nil {
			steps = append(steps, RestoreStep{Epoch: epoch, Detail: "unrecoverable: " + strings.Join(fallbacks, "; ")})
			break // incremental chain broken; restart point is the previous epoch
		}
		for id, data := range ep.Pages {
			im.Pages[id] = data
		}
		im.Epoch = epoch
		folded++
		steps = append(steps, RestoreStep{Epoch: epoch, Tier: from, Detail: strings.Join(fallbacks, "; ")})
	}
	if folded == 0 {
		return nil, steps, fmt.Errorf("multilevel: epoch %d unrecoverable on every tier", epochs[0])
	}
	return im, steps, nil
}
