package multilevel

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/ckpt"
	"repro/internal/obs"
)

// RestoreStep records where one epoch was read from during a tier-aware
// restore.
type RestoreStep struct {
	Epoch uint64
	// Tier is the tier that served the epoch; empty when the epoch was
	// unrecoverable on every tier.
	Tier string
	// Detail explains fallbacks: why faster tiers were skipped, or why the
	// epoch was unrecoverable.
	Detail string
}

// RestoreOptions tunes RestoreWith.
type RestoreOptions struct {
	// Workers is the number of concurrent epoch loaders. Each loader
	// probes the tiers fastest-first for one epoch (exactly the serial
	// probe order), so tier loads for *different* epochs overlap — epoch
	// N+1's probe/load runs while epoch N folds — while the fold itself
	// stays in strict chain order. The image, the per-epoch RestoreSteps
	// and the SpanRestore sources are identical to a serial restore; only
	// the wall (or virtual) time shrinks. 0 or 1 restores serially.
	Workers int
}

// epochLoad is one loader's result for one epoch, handed to the folder.
type epochLoad struct {
	done       bool
	ep         *EpochData
	from       string
	level      int8
	fallbacks  []string
	start, end time.Duration
}

// Restore folds the checkpoint chain back into a memory image, reading
// each epoch from the fastest tier that can still deliver it: L1 if its
// files survive, otherwise reconstruction from any k of k+m erasure shards
// on the peers, otherwise the parallel-file-system copy. A committed base
// on the local tier is folded first and the epochs it covers are skipped
// entirely, so a compacted hierarchy restores by reading the base plus the
// few live epochs instead of the whole history; when the base is lost with
// the local tier, restore falls back to the per-epoch copies on the lower
// tiers. Because epochs are incremental, the chain is folded oldest to
// newest and stops at the first epoch no tier can recover — the restart
// point is the last epoch of the intact prefix. The returned steps
// document the per-epoch source.
//
// Restore is serial (one epoch in flight at a time); RestoreWith overlaps
// tier loads across epochs.
func (h *Hierarchy) Restore() (*ckpt.Image, []RestoreStep, error) {
	return h.RestoreWith(RestoreOptions{})
}

// RestoreWith is Restore with explicit options.
func (h *Hierarchy) RestoreWith(opt RestoreOptions) (*ckpt.Image, []RestoreStep, error) {
	im := &ckpt.Image{PageSize: h.pageSize, Pages: map[int][]byte{}}
	var steps []RestoreStep
	folded := 0

	// Try the local tier's compacted base first.
	var skipTo uint64
	if ch, err := ckpt.LoadChain(h.local.FS()); err == nil && ch.Base != nil {
		var bstart time.Duration
		if h.obs != nil {
			bstart = h.obs.Now()
		}
		if pages, err := ckpt.ReadBasePages(h.local.FS(), *ch.Base); err == nil {
			for id, data := range pages {
				im.Pages[id] = data
			}
			skipTo = ch.Base.Base.To
			im.Epoch = skipTo
			im.SegmentsRead++
			folded++
			if h.obs != nil {
				bend := h.obs.Now()
				h.obs.RestoreEpochs.Inc()
				h.obs.RestorePages.Add(uint64(len(pages)))
				h.obs.TraceAt(bend, obs.StageRestore, skipTo, -1, 0, int64(len(pages)))
				h.obs.Span(obs.SpanRestore, skipTo, 0, bstart, bend)
			}
			steps = append(steps, RestoreStep{
				Epoch: skipTo,
				Tier:  h.local.Name(),
				Detail: fmt.Sprintf("base [%d,%d]: %d epochs folded",
					ch.Base.Base.From, ch.Base.Base.To, ch.Base.Base.To-ch.Base.Base.From+1),
			})
		} else {
			steps = append(steps, RestoreStep{
				Epoch:  ch.Base.Base.To,
				Detail: fmt.Sprintf("base [%d,%d] unreadable, falling back to per-epoch tiers: %v", ch.Base.Base.From, ch.Base.Base.To, err),
			})
		}
	}

	tiers := h.Tiers()
	seen := map[uint64]bool{}
	var epochs []uint64
	for _, t := range tiers {
		es, err := t.Epochs()
		if err != nil {
			continue // tier unreadable: its epochs may exist elsewhere
		}
		for _, e := range es {
			if e <= skipTo {
				continue // covered by the folded base
			}
			if !seen[e] {
				seen[e] = true
				epochs = append(epochs, e)
			}
		}
	}
	if len(epochs) == 0 && folded == 0 {
		return nil, nil, fmt.Errorf("multilevel: no sealed epochs on any tier")
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })

	workers := opt.Workers
	if workers > len(epochs) {
		workers = len(epochs)
	}
	if workers > 1 {
		steps, folded = h.restorePipelined(im, tiers, epochs, steps, folded, workers)
	} else {
		steps, folded = h.restoreSerial(im, tiers, epochs, steps, folded)
	}
	if folded == 0 {
		return nil, steps, fmt.Errorf("multilevel: epoch %d unrecoverable on every tier", epochs[0])
	}
	return im, steps, nil
}

// loadEpoch probes the tiers fastest-first for one epoch, timing the whole
// probe sequence: a failed probe of a faster tier is real restore latency
// and belongs to the epoch's span.
func (h *Hierarchy) loadEpoch(tiers []Tier, epoch uint64) epochLoad {
	var r epochLoad
	if h.obs != nil {
		r.start = h.obs.Now()
	}
	for li, t := range tiers {
		loaded, err := t.Load(epoch)
		if err != nil {
			r.fallbacks = append(r.fallbacks, fmt.Sprintf("%s: %v", t.Name(), err))
			continue
		}
		r.ep, r.from, r.level = loaded, t.Name(), int8(li)
		break
	}
	if h.obs != nil {
		r.end = h.obs.Now()
	}
	return r
}

// foldEpoch merges one loaded epoch into the image and records its step,
// span and counters. Returns false when the epoch was unrecoverable: the
// incremental chain is broken and the restart point is the previous epoch.
func (h *Hierarchy) foldEpoch(im *ckpt.Image, epoch uint64, r epochLoad, steps *[]RestoreStep) bool {
	if r.ep == nil {
		*steps = append(*steps, RestoreStep{Epoch: epoch, Detail: "unrecoverable: " + strings.Join(r.fallbacks, "; ")})
		return false
	}
	for id, data := range r.ep.Pages {
		im.Pages[id] = data
	}
	im.Epoch = epoch
	im.SegmentsRead++
	if h.obs != nil {
		h.obs.RestoreEpochs.Inc()
		h.obs.RestorePages.Add(uint64(len(r.ep.Pages)))
		h.obs.TraceAt(r.end, obs.StageRestore, epoch, -1, r.level, int64(len(r.ep.Pages)))
		// The restore span's tier is the level that finally served the
		// epoch; its duration includes the failed probes of the faster
		// tiers above it — that lost time is real restore latency and
		// belongs to this epoch.
		h.obs.Span(obs.SpanRestore, epoch, r.level, r.start, r.end)
	}
	*steps = append(*steps, RestoreStep{Epoch: epoch, Tier: r.from, Detail: strings.Join(r.fallbacks, "; ")})
	return true
}

// restoreSerial loads and folds one epoch at a time — the historical
// restore: span N+1 starts exactly where span N ended.
func (h *Hierarchy) restoreSerial(im *ckpt.Image, tiers []Tier, epochs []uint64, steps []RestoreStep, folded int) ([]RestoreStep, int) {
	for _, epoch := range epochs {
		if !h.foldEpoch(im, epoch, h.loadEpoch(tiers, epoch), &steps) {
			break
		}
		folded++
	}
	return steps, folded
}

// restorePipelined overlaps tier probe/loads across epochs: a pool of
// loader processes claims epochs in chain order and loads them
// concurrently (each with the serial fastest-tier-first probe order) while
// this process folds finished epochs strictly in chain order. Loaders run
// on h.env processes, so under the virtual-time kernel concurrent tier
// transfers contend for the same simulated links a real parallel restore
// would. On an unrecoverable epoch the fold stops at the intact prefix,
// in-flight loads beyond it are discarded, and the loaders drain before
// returning.
func (h *Hierarchy) restorePipelined(im *ckpt.Image, tiers []Tier, epochs []uint64, steps []RestoreStep, folded int, workers int) ([]RestoreStep, int) {
	mu := h.env.NewMutex()
	cond := h.env.NewCond(mu)
	loads := make([]epochLoad, len(epochs))
	next := 0
	active := workers
	worker := func() {
		for {
			mu.Lock()
			i := next
			if i >= len(epochs) {
				active--
				cond.Broadcast()
				mu.Unlock()
				return
			}
			next++
			mu.Unlock()
			r := h.loadEpoch(tiers, epochs[i])
			mu.Lock()
			r.done = true
			loads[i] = r
			cond.Broadcast()
			mu.Unlock()
		}
	}
	for w := 0; w < workers; w++ {
		h.env.Go(fmt.Sprintf("restore-%d", w), worker)
	}
	for i, epoch := range epochs {
		mu.Lock()
		for !loads[i].done {
			cond.Wait()
		}
		r := loads[i]
		mu.Unlock()
		if !h.foldEpoch(im, epoch, r, &steps) {
			mu.Lock()
			next = len(epochs) // cancel unclaimed epochs past the break
			mu.Unlock()
			break
		}
		folded++
	}
	mu.Lock()
	for active > 0 {
		cond.Wait()
	}
	mu.Unlock()
	return steps, folded
}
