package multilevel

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ckpt"
	"repro/internal/obs"
)

// RestoreStep records where one epoch was read from during a tier-aware
// restore.
type RestoreStep struct {
	Epoch uint64
	// Tier is the tier that served the epoch; empty when the epoch was
	// unrecoverable on every tier.
	Tier string
	// Detail explains fallbacks: why faster tiers were skipped, or why the
	// epoch was unrecoverable.
	Detail string
}

// Restore folds the checkpoint chain back into a memory image, reading
// each epoch from the fastest tier that can still deliver it: L1 if its
// files survive, otherwise reconstruction from any k of k+m erasure shards
// on the peers, otherwise the parallel-file-system copy. A committed base
// on the local tier is folded first and the epochs it covers are skipped
// entirely, so a compacted hierarchy restores by reading the base plus the
// few live epochs instead of the whole history; when the base is lost with
// the local tier, restore falls back to the per-epoch copies on the lower
// tiers. Because epochs are incremental, the chain is folded oldest to
// newest and stops at the first epoch no tier can recover — the restart
// point is the last epoch of the intact prefix. The returned steps
// document the per-epoch source.
func (h *Hierarchy) Restore() (*ckpt.Image, []RestoreStep, error) {
	im := &ckpt.Image{PageSize: h.pageSize, Pages: map[int][]byte{}}
	var steps []RestoreStep
	folded := 0

	// Try the local tier's compacted base first.
	var skipTo uint64
	if ch, err := ckpt.LoadChain(h.local.FS()); err == nil && ch.Base != nil {
		bstart := h.obs.Now()
		if pages, err := ckpt.ReadBasePages(h.local.FS(), *ch.Base); err == nil {
			for id, data := range pages {
				im.Pages[id] = data
			}
			skipTo = ch.Base.Base.To
			im.Epoch = skipTo
			im.SegmentsRead++
			folded++
			if h.obs != nil {
				bend := h.obs.Now()
				h.obs.RestoreEpochs.Inc()
				h.obs.RestorePages.Add(uint64(len(pages)))
				h.obs.TraceAt(bend, obs.StageRestore, skipTo, -1, 0, int64(len(pages)))
				h.obs.Span(obs.SpanRestore, skipTo, 0, bstart, bend)
			}
			steps = append(steps, RestoreStep{
				Epoch: skipTo,
				Tier:  h.local.Name(),
				Detail: fmt.Sprintf("base [%d,%d]: %d epochs folded",
					ch.Base.Base.From, ch.Base.Base.To, ch.Base.Base.To-ch.Base.Base.From+1),
			})
		} else {
			steps = append(steps, RestoreStep{
				Epoch:  ch.Base.Base.To,
				Detail: fmt.Sprintf("base [%d,%d] unreadable, falling back to per-epoch tiers: %v", ch.Base.Base.From, ch.Base.Base.To, err),
			})
		}
	}

	tiers := h.Tiers()
	seen := map[uint64]bool{}
	var epochs []uint64
	for _, t := range tiers {
		es, err := t.Epochs()
		if err != nil {
			continue // tier unreadable: its epochs may exist elsewhere
		}
		for _, e := range es {
			if e <= skipTo {
				continue // covered by the folded base
			}
			if !seen[e] {
				seen[e] = true
				epochs = append(epochs, e)
			}
		}
	}
	if len(epochs) == 0 && folded == 0 {
		return nil, nil, fmt.Errorf("multilevel: no sealed epochs on any tier")
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })

	for _, epoch := range epochs {
		var fallbacks []string
		var ep *EpochData
		var from string
		var level int8
		rstart := h.obs.Now()
		for li, t := range tiers {
			loaded, err := t.Load(epoch)
			if err != nil {
				fallbacks = append(fallbacks, fmt.Sprintf("%s: %v", t.Name(), err))
				continue
			}
			ep, from, level = loaded, t.Name(), int8(li)
			break
		}
		if ep == nil {
			steps = append(steps, RestoreStep{Epoch: epoch, Detail: "unrecoverable: " + strings.Join(fallbacks, "; ")})
			break // incremental chain broken; restart point is the previous epoch
		}
		for id, data := range ep.Pages {
			im.Pages[id] = data
		}
		im.Epoch = epoch
		im.SegmentsRead++
		folded++
		if h.obs != nil {
			rend := h.obs.Now()
			h.obs.RestoreEpochs.Inc()
			h.obs.RestorePages.Add(uint64(len(ep.Pages)))
			h.obs.TraceAt(rend, obs.StageRestore, epoch, -1, level, int64(len(ep.Pages)))
			// The restore span's tier is the level that finally served
			// the epoch; its duration includes the failed probes of the
			// faster tiers above it — that lost time is real restore
			// latency and belongs to this epoch.
			h.obs.Span(obs.SpanRestore, epoch, level, rstart, rend)
		}
		steps = append(steps, RestoreStep{Epoch: epoch, Tier: from, Detail: strings.Join(fallbacks, "; ")})
	}
	if folded == 0 {
		return nil, steps, fmt.Errorf("multilevel: epoch %d unrecoverable on every tier", epochs[0])
	}
	return im, steps, nil
}
