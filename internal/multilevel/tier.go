// Package multilevel implements a multi-level checkpoint hierarchy in the
// style of VELOC: committed pages land in a fast local tier first (L1) and
// are acknowledged immediately, then a background drainer promotes sealed
// epochs to progressively more resilient tiers — an erasure-coded peer tier
// striping Reed-Solomon shards across cluster nodes (L2) and a parallel
// file system (L3). A per-epoch tier manifest records where each epoch
// lives, and restore is tier-aware: it reads each epoch from the fastest
// tier that still holds it, reconstructing from any k of k+m erasure shards
// when faster copies are lost.
//
// The hierarchy runs unchanged under the real clock and under the
// deterministic virtual-time kernel (internal/sim), so tier draining, link
// contention and failure injection can be evaluated reproducibly.
package multilevel

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ckpt"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/storage"
)

// EpochData is one sealed epoch in transit between tiers: the content of
// every page the epoch committed.
type EpochData struct {
	Epoch    uint64
	PageSize int
	// PageIDs lists the pages in ascending order; Pages maps each to its
	// committed content.
	PageIDs []int
	Pages   map[int][]byte
}

// newEpochData builds an EpochData from a page map.
func newEpochData(epoch uint64, pageSize int, pages map[int][]byte) *EpochData {
	ids := make([]int, 0, len(pages))
	for id := range pages {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return &EpochData{Epoch: epoch, PageSize: pageSize, PageIDs: ids, Pages: pages}
}

// Tier is one level of the checkpoint hierarchy. Store persists a complete
// sealed epoch; Load reads one back (verifying integrity); Epochs lists the
// sealed epochs the tier currently holds. Implementations must tolerate
// concurrent Store calls for different epochs (the drainer may run several
// workers per tier).
type Tier interface {
	Name() string
	Store(ep *EpochData) error
	Load(epoch uint64) (*EpochData, error)
	Epochs() ([]uint64, error)
}

// ShardLayout describes how an epoch's erasure shards are spread over peer
// nodes; tiers that shard expose it through the Layouter interface and the
// hierarchy records it in the epoch's tier manifest.
type ShardLayout struct {
	// Data and Parity are the Reed-Solomon parameters k and m.
	Data   int `json:"data"`
	Parity int `json:"parity"`
	// Start is the tier-wide index of the node holding shard 0 (the
	// rotation offset for this epoch).
	Start int `json:"start"`
	// Nodes names the target nodes in shard order: shard i lives on
	// Nodes[i]; the first Data entries hold data shards, the rest parity.
	Nodes []string `json:"nodes"`
}

// Layouter is implemented by tiers that stripe shards across nodes.
type Layouter interface {
	Layout(epoch uint64) *ShardLayout
}

// EpochHolder is implemented by tiers that can cheaply report whether they
// already hold a complete, healthy copy of an epoch. The drainer skips
// promoting such epochs — restart recovery would otherwise rewrite durable
// copies in place (non-atomically) and re-ship the whole chain on every
// restart. A degraded or absent copy reports false and is (re)stored.
type EpochHolder interface {
	Has(epoch uint64) bool
}

// DegradedReporter is implemented by tiers whose Store can succeed while
// losing some redundancy (e.g. shards destined for down nodes dropped);
// the drainer records such epochs as StateDegraded in the tier manifest.
type DegradedReporter interface {
	Degraded(epoch uint64) bool
}

// LocalTier is an FS-backed tier: epochs are stored through a checkpoint
// repository (real bytes, self-checking records) with an optional timing
// backend modeling the I/O cost of the medium — a SimDisk for node-local
// storage, a SimPFS for a parallel file system. It doubles as the streaming
// L1 target: the hierarchy forwards committer pages straight into it.
type LocalTier struct {
	name     string
	fs       ckpt.FS
	repo     *ckpt.Repository
	timing   storage.Backend // optional; models transfer cost only
	pageSize int
	// chargeReads bills Load's page reads to the timing backend (when it
	// models reads). Off by default: write-side simulations pinned their
	// virtual timelines before read modeling existed, and the drainer
	// loads every epoch from L1 — charging those reads would shift every
	// established drain timestamp. Restore benchmarks opt in.
	chargeReads bool

	// storeMu serializes whole-epoch Store calls: the repository keeps one
	// epoch open at a time. It is an Env mutex so holding it across
	// virtual-time transfers is legal under the simulation kernel.
	storeMu sync.Locker
}

// NewLocalTier returns an FS-backed tier. timing may be nil (no cost
// modeling, e.g. under the real clock where the FS itself is the cost).
func NewLocalTier(env sim.Env, name string, fs ckpt.FS, pageSize int, timing storage.Backend) *LocalTier {
	return &LocalTier{
		name:     name,
		fs:       fs,
		repo:     ckpt.NewRepository(fs, pageSize),
		timing:   timing,
		pageSize: pageSize,
		storeMu:  env.NewMutex(),
	}
}

// Name implements Tier.
func (t *LocalTier) Name() string { return t.name }

// SetDedup enables or disables content-addressed dedup in the tier's
// repository (enabled by default). Must be called before any epoch is
// streamed or stored.
func (t *LocalTier) SetDedup(enabled bool) { t.repo.SetDedup(enabled) }

// SetMetrics attaches observability to the tier's repository write path.
// Only the L1 tier should be instrumented — lower-tier stores re-write the
// same records and would double-count the repository families. Must be
// called before any epoch is streamed or stored.
func (t *LocalTier) SetMetrics(m *obs.Metrics) { t.repo.SetMetrics(m) }

// DedupStats returns the tier repository's dedup counters.
func (t *LocalTier) DedupStats() ckpt.DedupStats { return t.repo.DedupStats() }

// FS exposes the tier's filesystem (inspection and tests).
func (t *LocalTier) FS() ckpt.FS { return t.fs }

// WritePage implements storage.Backend for the streaming L1 path: the
// committer's pages are charged to the timing model, then persisted.
func (t *LocalTier) WritePage(epoch uint64, page int, data []byte, size int) error {
	if t.timing != nil {
		if err := t.timing.WritePage(epoch, page, nil, size); err != nil {
			return err
		}
	}
	return t.repo.WritePage(epoch, page, data, size)
}

// EndEpoch implements storage.Backend, sealing the streamed epoch.
func (t *LocalTier) EndEpoch(epoch uint64) error {
	if t.timing != nil {
		if err := t.timing.EndEpoch(epoch); err != nil {
			return err
		}
	}
	return t.repo.EndEpoch(epoch)
}

// Store implements Tier: it writes a complete epoch through the repository.
func (t *LocalTier) Store(ep *EpochData) error {
	t.storeMu.Lock()
	defer t.storeMu.Unlock()
	for _, id := range ep.PageIDs {
		data := ep.Pages[id]
		if err := t.WritePage(ep.Epoch, id, data, len(data)); err != nil {
			return fmt.Errorf("multilevel: tier %s epoch %d page %d: %w", t.name, ep.Epoch, id, err)
		}
	}
	if err := t.EndEpoch(ep.Epoch); err != nil {
		return fmt.Errorf("multilevel: tier %s seal epoch %d: %w", t.name, ep.Epoch, err)
	}
	return nil
}

// SetChargeReads makes Load bill each page it reads to the timing backend
// (which must implement storage.PageReader; a no-op otherwise or with no
// timing model). Call it before restoring, from the process that owns the
// tier — it must not race with in-flight loads.
func (t *LocalTier) SetChargeReads(enabled bool) { t.chargeReads = enabled }

// Load implements Tier, verifying record hashes on the way back. With
// SetChargeReads the pages read are charged to the timing model in a
// deterministic (ascending page) order.
func (t *LocalTier) Load(epoch uint64) (*EpochData, error) {
	m, pages, err := ckpt.EpochPages(t.fs, epoch)
	if err != nil {
		return nil, err
	}
	ep := newEpochData(epoch, m.PageSize, pages)
	if t.chargeReads {
		if r, ok := t.timing.(storage.PageReader); ok {
			for _, id := range ep.PageIDs {
				if err := r.ReadPage(epoch, id, len(ep.Pages[id])); err != nil {
					return nil, fmt.Errorf("multilevel: tier %s epoch %d page %d read: %w", t.name, epoch, id, err)
				}
			}
		}
	}
	return ep, nil
}

// Has implements EpochHolder: a sealed manifest implies a complete copy
// (the repository writes the manifest last, as its commit point).
func (t *LocalTier) Has(epoch uint64) bool {
	_, err := ckpt.ReadManifest(t.fs, epoch)
	return err == nil
}

// Epochs implements Tier.
func (t *LocalTier) Epochs() ([]uint64, error) {
	ms, err := ckpt.ListSealed(t.fs)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(ms))
	for i, m := range ms {
		out[i] = m.Epoch
	}
	return out, nil
}

// Wipe deletes every file of the tier, simulating total loss of the fast
// local storage (node crash with ramdisk/SSD gone). Restore must then fall
// back to lower tiers.
func (t *LocalTier) Wipe() error {
	names, err := t.fs.List()
	if err != nil {
		return err
	}
	for _, n := range names {
		if err := t.fs.Remove(n); err != nil {
			return err
		}
	}
	return nil
}
