package multilevel

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/pagemem"
	"repro/internal/sim"
	"repro/internal/storage"
)

const pageSize = 256

// pageFill returns the deterministic content of page p at version v.
func pageFill(p, v int) []byte {
	buf := make([]byte, pageSize)
	for i := range buf {
		buf[i] = byte(p*31 + v*7 + i)
	}
	return buf
}

// testHierarchy builds a 3-tier hierarchy on kernel-backed links: L1 = the
// checkpointing node's local disk, L2 = erasure shards (k=2, m=1) over
// three peer nodes' NICs, L3 = a PFS striped over two storage servers.
func testHierarchy(t *testing.T, k *sim.Kernel, tiers int) (*Hierarchy, *PeerTier, *LocalTier) {
	t.Helper()
	link := func(name string, bps float64, per time.Duration) *netsim.Link {
		return netsim.NewLink(k, netsim.LinkConfig{Name: name, BytesPerSec: bps, PerMessage: per})
	}
	disk := link("node0-disk", 55e6, 0)
	nic := link("node0-nic", 117.5e6, 0)

	local := NewLocalTier(k, "local", &ckpt.MemFS{}, pageSize, storage.NewSimDisk(disk))
	var lower []Tier
	var peer *PeerTier
	var pfs *LocalTier
	if tiers >= 2 {
		peers := make([]*PeerNode, 3)
		for i := range peers {
			peers[i] = NewPeerNode(fmt.Sprintf("node%d", i+1), link(fmt.Sprintf("node%d-nic", i+1), 117.5e6, 0))
		}
		var err error
		peer, err = NewPeerTier("peer", 2, 1, peers, nic)
		if err != nil {
			t.Fatal(err)
		}
		lower = append(lower, peer)
	}
	if tiers >= 3 {
		servers := []*netsim.Link{link("pfs0", 100e6, 10*time.Microsecond), link("pfs1", 100e6, 10*time.Microsecond)}
		pfs = NewLocalTier(k, "pfs", &ckpt.MemFS{}, pageSize, storage.NewSimPFS(nic, servers))
		lower = append(lower, pfs)
	}
	h, err := New(Config{Env: k, PageSize: pageSize, Local: local, Lower: lower})
	if err != nil {
		t.Fatal(err)
	}
	return h, peer, pfs
}

// runWorkload drives a page manager over the hierarchy: three checkpoints
// with shrinking dirty sets (all pages, half, a quarter), then returns a
// snapshot of the final region content.
func runWorkload(t *testing.T, k *sim.Kernel, h *Hierarchy, after func(snapshot []byte)) {
	t.Helper()
	space := pagemem.NewSpace(pageSize)
	mgr := core.NewManager(core.Config{
		Env:      k,
		Space:    space,
		Store:    h,
		Strategy: core.Adaptive,
		CowSlots: 4,
		Name:     "app",
	})
	const pages = 16
	region := space.Alloc(pages*pageSize, false)
	k.Go("app", func() {
		for epoch, frac := range []int{1, 2, 4} {
			for p := 0; p < pages/frac; p++ {
				region.Write(p*pageSize, pageFill(p, epoch+1))
			}
			mgr.Checkpoint()
		}
		mgr.WaitIdle()
		h.WaitDrained()
		snapshot := append([]byte(nil), region.Bytes()...)
		mgr.Close()
		if err := h.Close(); err != nil {
			t.Errorf("hierarchy close: %v", err)
		}
		after(snapshot)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Err(); err != nil {
		t.Fatal(err)
	}
}

func verifyImage(t *testing.T, im *ckpt.Image, snapshot []byte) {
	t.Helper()
	for p := 0; p*pageSize < len(snapshot); p++ {
		want := snapshot[p*pageSize : (p+1)*pageSize]
		if got := im.PageOr(p); !bytes.Equal(got, want) {
			t.Fatalf("page %d differs after restore", p)
		}
	}
}

func TestDrainReachesAllTiers(t *testing.T) {
	k := sim.NewKernel()
	h, peer, pfs := testHierarchy(t, k, 3)
	runWorkload(t, k, h, func(snapshot []byte) {
		for _, tier := range []Tier{h.Local(), peer, pfs} {
			es, err := tier.Epochs()
			if err != nil {
				t.Fatalf("%s epochs: %v", tier.Name(), err)
			}
			if len(es) != 3 {
				t.Errorf("tier %s holds %d epochs, want 3", tier.Name(), len(es))
			}
		}
		mans := h.Manifests()
		if len(mans) != 3 {
			t.Fatalf("got %d manifests, want 3", len(mans))
		}
		for _, m := range mans {
			if len(m.Tiers) != 3 {
				t.Fatalf("epoch %d manifest lists %d tiers", m.Epoch, len(m.Tiers))
			}
			for _, tc := range m.Tiers {
				if tc.State != StateStored {
					t.Errorf("epoch %d tier %s state %q", m.Epoch, tc.Tier, tc.State)
				}
			}
			if sl := m.Tiers[1].Shards; sl == nil || sl.Data != 2 || sl.Parity != 1 || len(sl.Nodes) != 3 {
				t.Errorf("epoch %d peer shard layout %+v", m.Epoch, m.Tiers[1].Shards)
			}
		}
		// The mirrored manifests are readable from the L1 filesystem.
		disk, err := ReadTierManifests(h.Local().FS())
		if err != nil {
			t.Fatal(err)
		}
		if len(disk) != 3 {
			t.Errorf("mirrored manifests: got %d, want 3", len(disk))
		}
	})
}

// TestRestoreAfterL1WipeAndPeerFailure is the acceptance scenario: total
// loss of the fast local tier plus one failed peer node, restored
// bit-identically from the surviving k-of-n erasure shards.
func TestRestoreAfterL1WipeAndPeerFailure(t *testing.T) {
	k := sim.NewKernel()
	h, peer, _ := testHierarchy(t, k, 2)
	runWorkload(t, k, h, func(snapshot []byte) {
		if err := h.Local().Wipe(); err != nil {
			t.Fatal(err)
		}
		peer.Nodes()[0].Fail()
		im, steps, err := h.Restore()
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		if im.Epoch != 3 {
			t.Errorf("restart point epoch %d, want 3", im.Epoch)
		}
		for _, s := range steps {
			if s.Tier != "peer" {
				t.Errorf("epoch %d restored from %q, want peer", s.Epoch, s.Tier)
			}
		}
		verifyImage(t, im, snapshot)
	})
}

func TestRestorePrefersFastestTier(t *testing.T) {
	k := sim.NewKernel()
	h, _, _ := testHierarchy(t, k, 3)
	runWorkload(t, k, h, func(snapshot []byte) {
		im, steps, err := h.Restore()
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range steps {
			if s.Tier != "local" {
				t.Errorf("epoch %d restored from %q, want local", s.Epoch, s.Tier)
			}
		}
		verifyImage(t, im, snapshot)
	})
}

func TestRestoreFallsToPFSWhenPeerLosesTooManyNodes(t *testing.T) {
	k := sim.NewKernel()
	h, peer, _ := testHierarchy(t, k, 3)
	runWorkload(t, k, h, func(snapshot []byte) {
		if err := h.Local().Wipe(); err != nil {
			t.Fatal(err)
		}
		// m=1 tolerates one failure; two exceed the parity budget.
		peer.Nodes()[0].Fail()
		peer.Nodes()[1].Fail()
		im, steps, err := h.Restore()
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range steps {
			if s.Tier != "pfs" {
				t.Errorf("epoch %d restored from %q, want pfs", s.Epoch, s.Tier)
			}
		}
		verifyImage(t, im, snapshot)
	})
}

// flakyTier fails its first failures Store calls, then delegates. The call
// counter is guarded: the drainer may run several workers per tier.
type flakyTier struct {
	Tier
	failures int

	mu    sync.Mutex
	calls int
}

func (f *flakyTier) Store(ep *EpochData) error {
	f.mu.Lock()
	f.calls++
	fail := f.calls <= f.failures
	f.mu.Unlock()
	if fail {
		return errors.New("transient store failure")
	}
	return f.Tier.Store(ep)
}

func (f *flakyTier) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func TestDrainRetriesWithBackoff(t *testing.T) {
	k := sim.NewKernel()
	local := NewLocalTier(k, "local", &ckpt.MemFS{}, pageSize, nil)
	flaky := &flakyTier{Tier: NewLocalTier(k, "l2", &ckpt.MemFS{}, pageSize, nil), failures: 2}
	h, err := New(Config{
		Env: k, PageSize: pageSize, Local: local, Lower: []Tier{flaky},
		Drain: DrainPolicy{MaxAttempts: 4, RetryBackoff: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Go("app", func() {
		data := pageFill(0, 1)
		if err := h.WritePage(1, 0, data, len(data)); err != nil {
			t.Error(err)
		}
		if err := h.EndEpoch(1); err != nil {
			t.Error(err)
		}
		h.WaitDrained()
		if got := k.Now(); got < 30*time.Millisecond {
			t.Errorf("drain finished at %v, want >= 30ms (two backoffs of 10ms+20ms)", got)
		}
		if h.Err() != nil {
			t.Errorf("unexpected drain error: %v", h.Err())
		}
		if m := h.Manifests()[0]; m.Tiers[1].State != StateStored {
			t.Errorf("tier state %q after retries", m.Tiers[1].State)
		}
		if err := h.Close(); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if flaky.Calls() != 3 {
		t.Errorf("store attempts = %d, want 3", flaky.Calls())
	}
}

// The retry delay doubles only up to MaxRetryBackoff: a large attempt
// budget against a persistently failing tier must retry at a steady capped
// cadence, not sleep for exponentially growing (effectively unbounded)
// intervals.
func TestDrainBackoffIsCapped(t *testing.T) {
	k := sim.NewKernel()
	local := NewLocalTier(k, "local", &ckpt.MemFS{}, pageSize, nil)
	flaky := &flakyTier{Tier: NewLocalTier(k, "l2", &ckpt.MemFS{}, pageSize, nil), failures: 9}
	h, err := New(Config{
		Env: k, PageSize: pageSize, Local: local, Lower: []Tier{flaky},
		Drain: DrainPolicy{
			MaxAttempts:     10,
			RetryBackoff:    10 * time.Millisecond,
			MaxRetryBackoff: 40 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Go("app", func() {
		data := pageFill(0, 1)
		if err := h.WritePage(1, 0, data, len(data)); err != nil {
			t.Error(err)
		}
		if err := h.EndEpoch(1); err != nil {
			t.Error(err)
		}
		h.WaitDrained()
		// 9 failed attempts sleep 10+20+40+40+... = 310ms total; uncapped
		// doubling would have slept 5.11s.
		if got, want := k.Now(), 310*time.Millisecond; got != want {
			t.Errorf("drain finished at %v, want exactly %v (capped backoff)", got, want)
		}
		if h.Err() != nil {
			t.Errorf("unexpected drain error: %v", h.Err())
		}
		if err := h.Close(); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if flaky.Calls() != 10 {
		t.Errorf("store attempts = %d, want 10", flaky.Calls())
	}
}

// brokenTier always fails.
type brokenTier struct{ Tier }

func (b *brokenTier) Store(ep *EpochData) error { return errors.New("tier permanently down") }

func TestDrainFailureIsRecordedAndForwarded(t *testing.T) {
	k := sim.NewKernel()
	local := NewLocalTier(k, "local", &ckpt.MemFS{}, pageSize, nil)
	broken := &brokenTier{Tier: NewLocalTier(k, "l2", &ckpt.MemFS{}, pageSize, nil)}
	l3 := NewLocalTier(k, "l3", &ckpt.MemFS{}, pageSize, nil)
	h, err := New(Config{
		Env: k, PageSize: pageSize, Local: local, Lower: []Tier{broken, l3},
		Drain: DrainPolicy{MaxAttempts: 2, RetryBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Go("app", func() {
		data := pageFill(3, 9)
		if err := h.WritePage(1, 3, data, len(data)); err != nil {
			t.Error(err)
		}
		if err := h.EndEpoch(1); err != nil {
			t.Error(err)
		}
		h.WaitDrained()
		m := h.Manifests()[0]
		if m.Tiers[1].State != StateFailed || m.Tiers[1].Err == "" {
			t.Errorf("broken tier copy = %+v, want failed with error", m.Tiers[1])
		}
		// The epoch still reached the tier below the broken one.
		if m.Tiers[2].State != StateStored {
			t.Errorf("l3 state %q, want stored past the broken tier", m.Tiers[2].State)
		}
		if h.Err() == nil {
			t.Error("Err() should surface the failed drain")
		}
		if err := h.Close(); err == nil {
			t.Error("Close should return the drain error")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRestartRedrainsExistingChain restarts a hierarchy over a surviving
// local tier with fresh (empty) lower tiers: the pre-existing epochs must
// be promoted again, so that losing the local tier after the restart still
// restores the WHOLE chain — including pages only written before the
// restart — and epoch numbering continues where it left off.
func TestRestartRedrainsExistingChain(t *testing.T) {
	env := sim.NewRealEnv()
	fs := &ckpt.MemFS{} // the durable local tier, shared across "processes"
	newPeer := func() *PeerTier {
		nodes := make([]*PeerNode, 3)
		for i := range nodes {
			nodes[i] = NewPeerNode(fmt.Sprintf("peer%d", i), nil)
		}
		p, err := NewPeerTier("peer", 2, 1, nodes, nil)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	// First process: two epochs, page 0 only ever written here.
	h1, err := New(Config{Env: env, PageSize: pageSize, Local: NewLocalTier(env, "local", fs, pageSize, nil), Lower: []Tier{newPeer()}})
	if err != nil {
		t.Fatal(err)
	}
	oldContent := pageFill(0, 1)
	for epoch := uint64(1); epoch <= 2; epoch++ {
		if err := h1.WritePage(epoch, 0, oldContent, len(oldContent)); err != nil {
			t.Fatal(err)
		}
		if err := h1.EndEpoch(epoch); err != nil {
			t.Fatal(err)
		}
	}
	if err := h1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: same local FS, fresh empty peer tier.
	peer2 := newPeer()
	h2, err := New(Config{Env: env, PageSize: pageSize, Local: NewLocalTier(env, "local", fs, pageSize, nil), Lower: []Tier{peer2}})
	if err != nil {
		t.Fatal(err)
	}
	if last, ok := h2.LastEpoch(); !ok || last != 2 {
		t.Fatalf("LastEpoch = %d,%v, want 2,true", last, ok)
	}
	// The restarted process writes only page 1 — an incremental epoch that
	// does not cover page 0.
	newContent := pageFill(1, 9)
	if err := h2.WritePage(3, 1, newContent, len(newContent)); err != nil {
		t.Fatal(err)
	}
	if err := h2.EndEpoch(3); err != nil {
		t.Fatal(err)
	}
	h2.WaitDrained()
	if err := h2.Close(); err != nil {
		t.Fatal(err)
	}
	if es, err := peer2.Epochs(); err != nil || len(es) != 3 {
		t.Fatalf("fresh peer tier holds %v (%v), want the re-drained chain 1..3", es, err)
	}

	// Local tier dies: the peers alone must reproduce the full chain.
	if err := h2.Local().Wipe(); err != nil {
		t.Fatal(err)
	}
	im, _, err := h2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if im.Epoch != 3 {
		t.Errorf("restart point %d, want 3", im.Epoch)
	}
	if !bytes.Equal(im.PageOr(0), oldContent) {
		t.Error("page 0 (written only before the restart) lost after L1 wipe")
	}
	if !bytes.Equal(im.PageOr(1), newContent) {
		t.Error("page 1 (written after the restart) lost after L1 wipe")
	}
}

// countingTier counts Store calls and preserves the inner tier's
// EpochHolder behavior, to observe what the drainer actually rewrites.
type countingTier struct {
	Tier
	stores int
}

func (c *countingTier) Store(ep *EpochData) error {
	c.stores++
	return c.Tier.Store(ep)
}

func (c *countingTier) Has(epoch uint64) bool {
	h, ok := c.Tier.(EpochHolder)
	return ok && h.Has(epoch)
}

// TestRestartSkipsEpochsHeldByDurableLowerTier restarts over a durable
// (FS-backed) lower tier: epochs it already holds must not be rewritten —
// re-storing would truncate a good copy in place — while the chain remains
// restorable from that tier after L1 loss.
func TestRestartSkipsEpochsHeldByDurableLowerTier(t *testing.T) {
	env := sim.NewRealEnv()
	localFS, pfsFS := &ckpt.MemFS{}, &ckpt.MemFS{} // both survive the "restart"
	build := func() (*Hierarchy, *countingTier) {
		pfs := &countingTier{Tier: NewLocalTier(env, "pfs", pfsFS, pageSize, nil)}
		h, err := New(Config{Env: env, PageSize: pageSize, Local: NewLocalTier(env, "local", localFS, pageSize, nil), Lower: []Tier{pfs}})
		if err != nil {
			t.Fatal(err)
		}
		return h, pfs
	}

	h1, pfs1 := build()
	data := pageFill(0, 1)
	for epoch := uint64(1); epoch <= 2; epoch++ {
		if err := h1.WritePage(epoch, 0, data, len(data)); err != nil {
			t.Fatal(err)
		}
		if err := h1.EndEpoch(epoch); err != nil {
			t.Fatal(err)
		}
	}
	if err := h1.Close(); err != nil {
		t.Fatal(err)
	}
	if pfs1.stores != 2 {
		t.Fatalf("first process stored %d epochs on pfs, want 2", pfs1.stores)
	}

	h2, pfs2 := build()
	h2.WaitDrained()
	if err := h2.Close(); err != nil {
		t.Fatal(err)
	}
	if pfs2.stores != 0 {
		t.Errorf("restart rewrote %d epochs the pfs tier already held", pfs2.stores)
	}
	for _, m := range h2.Manifests() {
		if m.Tiers[1].State != StateStored {
			t.Errorf("epoch %d pfs state %q after recovery", m.Epoch, m.Tiers[1].State)
		}
	}
	if err := h2.Local().Wipe(); err != nil {
		t.Fatal(err)
	}
	im, _, err := h2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(im.PageOr(0), data) {
		t.Error("chain not restorable from the durable lower tier")
	}
}

// TestDegradedPeerStoreRecordedInManifest drains to a peer tier with one
// target node already down: the copy is still recoverable (m=1 budget
// spent) but the manifest must say "degraded", not "stored".
func TestDegradedPeerStoreRecordedInManifest(t *testing.T) {
	env := sim.NewRealEnv()
	nodes := make([]*PeerNode, 3)
	for i := range nodes {
		nodes[i] = NewPeerNode(fmt.Sprintf("peer%d", i), nil)
	}
	peer, err := NewPeerTier("peer", 2, 1, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(Config{Env: env, PageSize: pageSize, Local: NewLocalTier(env, "local", &ckpt.MemFS{}, pageSize, nil), Lower: []Tier{peer}})
	if err != nil {
		t.Fatal(err)
	}
	nodes[1].Fail()
	data := pageFill(0, 4)
	if err := h.WritePage(1, 0, data, len(data)); err != nil {
		t.Fatal(err)
	}
	if err := h.EndEpoch(1); err != nil {
		t.Fatal(err)
	}
	h.WaitDrained()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if st := h.Manifests()[0].Tiers[1].State; st != StateDegraded {
		t.Errorf("peer state %q, want %q", st, StateDegraded)
	}
	if peer.Has(1) {
		t.Error("degraded epoch reported as held (would never be repaired)")
	}
	if err := h.Local().Wipe(); err != nil {
		t.Fatal(err)
	}
	im, _, err := h.Restore()
	if err != nil {
		t.Fatalf("degraded copy should still restore: %v", err)
	}
	if !bytes.Equal(im.PageOr(0), data) {
		t.Error("degraded restore corrupt")
	}
}

func TestHierarchyUnderRealClock(t *testing.T) {
	env := sim.NewRealEnv()
	local := NewLocalTier(env, "local", &ckpt.MemFS{}, pageSize, nil)
	peerNodes := make([]*PeerNode, 4)
	for i := range peerNodes {
		peerNodes[i] = NewPeerNode(fmt.Sprintf("peer%d", i), nil)
	}
	peer, err := NewPeerTier("peer", 3, 1, peerNodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(Config{
		Env: env, PageSize: pageSize, Local: local, Lower: []Tier{peer},
		Drain: DrainPolicy{Workers: 2, RetryBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int][]byte{}
	for epoch := uint64(1); epoch <= 4; epoch++ {
		for p := 0; p < 8; p++ {
			data := pageFill(p, int(epoch))
			want[p] = data
			if err := h.WritePage(epoch, p, data, len(data)); err != nil {
				t.Fatal(err)
			}
		}
		if err := h.EndEpoch(epoch); err != nil {
			t.Fatal(err)
		}
	}
	h.WaitDrained()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := local.Wipe(); err != nil {
		t.Fatal(err)
	}
	peerNodes[2].Fail()
	im, _, err := h.Restore()
	if err != nil {
		t.Fatal(err)
	}
	for p, data := range want {
		if !bytes.Equal(im.PageOr(p), data) {
			t.Errorf("page %d differs", p)
		}
	}
}
