package multilevel

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/compact"
	"repro/internal/faultfs"
	"repro/internal/sim"
)

// scrubHierarchy builds a two-tier hierarchy (local + pfs, both MemFS) under
// the real clock, seals three epochs with distinct content and drains them.
func scrubHierarchy(t *testing.T) (*Hierarchy, *ckpt.MemFS, *ckpt.MemFS) {
	t.Helper()
	env := sim.NewRealEnv()
	localFS, pfsFS := &ckpt.MemFS{}, &ckpt.MemFS{}
	h, err := New(Config{
		Env: env, PageSize: pageSize,
		Local: NewLocalTier(env, "local", localFS, pageSize, nil),
		Lower: []Tier{NewLocalTier(env, "pfs", pfsFS, pageSize, nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for epoch := uint64(1); epoch <= 3; epoch++ {
		for p := 0; p <= int(epoch); p++ {
			data := pageFill(p, int(epoch))
			if err := h.WritePage(epoch, p, data, len(data)); err != nil {
				t.Fatal(err)
			}
		}
		if err := h.EndEpoch(epoch); err != nil {
			t.Fatal(err)
		}
	}
	h.WaitDrained()
	return h, localFS, pfsFS
}

func restoreSnapshot(t *testing.T, h *Hierarchy) map[int][]byte {
	t.Helper()
	im, _, err := h.Restore()
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	out := map[int][]byte{}
	for p := range im.Pages {
		out[p] = append([]byte(nil), im.Pages[p]...)
	}
	return out
}

func TestScrubRepairsBitFlippedSegmentFromLowerTier(t *testing.T) {
	h, localFS, _ := scrubHierarchy(t)
	want := restoreSnapshot(t, h)
	// Flip a payload bit of epoch 2's segment: silent media corruption.
	if err := faultfs.FlipBit(localFS, "epoch-00000002.pages", (20+17)*8); err != nil {
		t.Fatal(err)
	}
	rep, err := h.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 1 || rep.Repaired != 1 || rep.Unrepaired != 0 {
		t.Fatalf("report = %+v, want 1 corrupt / 1 repaired", rep)
	}
	found := false
	for _, e := range rep.Entries {
		if e.Epoch == 2 && e.Status == ckpt.StatusSegmentCorrupt {
			found = true
			if !strings.Contains(e.Action, "repaired from pfs") {
				t.Errorf("entry action = %q, want repaired from pfs", e.Action)
			}
		}
	}
	if !found {
		t.Fatalf("no segment-corrupt entry for epoch 2 in %+v", rep.Entries)
	}
	// The damaged bytes were preserved for post-mortem.
	names, err := localFS.List()
	if err != nil {
		t.Fatal(err)
	}
	quarantined := false
	for _, n := range names {
		if strings.HasPrefix(n, ckpt.QuarantinePrefix) {
			quarantined = true
		}
	}
	if !quarantined {
		t.Error("corrupt segment was not quarantined")
	}
	// The chain is healthy again and restores bit-identically from L1.
	health, err := ckpt.VerifyChain(localFS)
	if err != nil {
		t.Fatal(err)
	}
	for _, hs := range health {
		if hs.Status != ckpt.StatusOK {
			t.Errorf("post-repair entry %s status %q", hs.Manifest, hs.Status)
		}
	}
	im, steps, err := h.Restore()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range steps {
		if s.Tier != "local" {
			t.Errorf("epoch %d restored from %q after repair, want local", s.Epoch, s.Tier)
		}
	}
	for p, data := range want {
		if !bytes.Equal(im.PageOr(p), data) {
			t.Errorf("page %d differs after repair", p)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestScrubRepairsInteriorManifest(t *testing.T) {
	h, localFS, _ := scrubHierarchy(t)
	want := restoreSnapshot(t, h)
	// Epoch 1's manifest is interior damage: epochs 2 and 3 are intact
	// above it, so it cannot be a torn tail.
	if err := faultfs.TruncateFile(localFS, "epoch-00000001.json", 7); err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.LoadChain(localFS); err == nil {
		t.Fatal("strict chain load should reject an interior corrupt manifest")
	}
	rep, err := h.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 1 {
		t.Fatalf("report = %+v, want 1 repaired", rep)
	}
	if _, err := ckpt.ReadManifest(localFS, 1); err != nil {
		t.Fatalf("epoch 1 manifest unreadable after repair: %v", err)
	}
	im, _, err := h.Restore()
	if err != nil {
		t.Fatal(err)
	}
	for p, data := range want {
		if !bytes.Equal(im.PageOr(p), data) {
			t.Errorf("page %d differs after repair", p)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestScrubReportsTornTailWithoutRepair(t *testing.T) {
	h, localFS, _ := scrubHierarchy(t)
	// The newest manifest torn: indistinguishable from a crash mid-seal, so
	// scrub reports it but repairs nothing.
	if err := faultfs.TruncateFile(localFS, "epoch-00000003.json", 5); err != nil {
		t.Fatal(err)
	}
	rep, err := h.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 0 || rep.Repaired != 0 {
		t.Fatalf("report = %+v, want no corruption (torn tail only)", rep)
	}
	torn := false
	for _, e := range rep.Entries {
		if e.Status == ckpt.StatusTornTail && e.Epoch == 3 {
			torn = true
		}
	}
	if !torn {
		t.Fatalf("torn tail not reported: %+v", rep.Entries)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestScrubUnrepairedWithoutRedundantTier(t *testing.T) {
	env := sim.NewRealEnv()
	localFS := &ckpt.MemFS{}
	h, err := New(Config{
		Env: env, PageSize: pageSize,
		Local: NewLocalTier(env, "local", localFS, pageSize, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	for epoch := uint64(1); epoch <= 2; epoch++ {
		data := pageFill(0, int(epoch))
		if err := h.WritePage(epoch, 0, data, len(data)); err != nil {
			t.Fatal(err)
		}
		if err := h.EndEpoch(epoch); err != nil {
			t.Fatal(err)
		}
	}
	if err := faultfs.FlipBit(localFS, "epoch-00000001.pages", 333); err != nil {
		t.Fatal(err)
	}
	rep, err := h.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 1 || rep.Unrepaired != 1 || rep.Repaired != 0 {
		t.Fatalf("report = %+v, want 1 corrupt / 1 unrepaired", rep)
	}
	if len(rep.Entries) == 0 || !strings.Contains(rep.Entries[0].Action, "unrepaired") {
		t.Fatalf("entries = %+v, want an unrepaired action", rep.Entries)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

// gatedTier fails every Store while down, then heals.
type gatedTier struct {
	Tier
	mu   sync.Mutex
	down bool
}

func (g *gatedTier) setDown(d bool) {
	g.mu.Lock()
	g.down = d
	g.mu.Unlock()
}

func (g *gatedTier) Store(ep *EpochData) error {
	g.mu.Lock()
	down := g.down
	g.mu.Unlock()
	if down {
		return errTierDown
	}
	return g.Tier.Store(ep)
}

var errTierDown = &tierDownError{}

type tierDownError struct{}

func (*tierDownError) Error() string { return "tier down" }

func TestScrubRequeuesFailedDrain(t *testing.T) {
	env := sim.NewRealEnv()
	localFS := &ckpt.MemFS{}
	gate := &gatedTier{Tier: NewLocalTier(env, "l2", &ckpt.MemFS{}, pageSize, nil)}
	gate.setDown(true)
	h, err := New(Config{
		Env: env, PageSize: pageSize,
		Local: NewLocalTier(env, "local", localFS, pageSize, nil),
		Lower: []Tier{gate},
		Drain: DrainPolicy{MaxAttempts: 2, RetryBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	data := pageFill(0, 1)
	if err := h.WritePage(1, 0, data, len(data)); err != nil {
		t.Fatal(err)
	}
	if err := h.EndEpoch(1); err != nil {
		t.Fatal(err)
	}
	h.WaitDrained()
	if st := h.Manifests()[0].Tiers[1].State; st != StateFailed {
		t.Fatalf("tier state %q before scrub, want failed", st)
	}
	// The tier recovers; scrub turns the gave-up copy back into drain work.
	gate.setDown(false)
	rep, err := h.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requeued != 1 {
		t.Fatalf("report = %+v, want 1 requeued copy", rep)
	}
	h.WaitDrained()
	if st := h.Manifests()[0].Tiers[1].State; st != StateStored {
		t.Fatalf("tier state %q after requeue, want stored", st)
	}
	if es, err := gate.Epochs(); err != nil || len(es) != 1 {
		t.Fatalf("recovered tier holds %v (%v), want epoch 1", es, err)
	}
	if err := h.Close(); err == nil {
		t.Error("Close should still surface the original drain error")
	}
}

func TestScrubRebuildsBaseByRefolding(t *testing.T) {
	env := sim.NewRealEnv()
	localFS, pfsFS := &ckpt.MemFS{}, &ckpt.MemFS{}
	h, err := New(Config{
		Env: env, PageSize: pageSize,
		Local: NewLocalTier(env, "local", localFS, pageSize, nil),
		Lower: []Tier{NewLocalTier(env, "pfs", pfsFS, pageSize, nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Overlapping writes so the folded base actually merges versions.
	for epoch := uint64(1); epoch <= 6; epoch++ {
		for _, p := range []int{0, int(epoch % 3)} {
			data := pageFill(p, int(epoch))
			if err := h.WritePage(epoch, p, data, len(data)); err != nil {
				t.Fatal(err)
			}
		}
		if err := h.EndEpoch(epoch); err != nil {
			t.Fatal(err)
		}
	}
	h.WaitDrained()
	res, err := compact.RunOnce(compactionCfg(h, compact.Policy{MaxDepth: 2, KeepRecent: 2}), false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted || res.BaseTo != 4 {
		t.Fatalf("compaction result = %+v", res)
	}
	want := restoreSnapshot(t, h)

	if err := faultfs.FlipBit(localFS, "base-00000001-00000004.pages", 4321); err != nil {
		t.Fatal(err)
	}
	rep, err := h.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 1 {
		t.Fatalf("report = %+v, want the base repaired", rep)
	}
	baseFixed := false
	for _, e := range rep.Entries {
		if e.IsBase && strings.Contains(e.Action, "re-folding") {
			baseFixed = true
		}
	}
	if !baseFixed {
		t.Fatalf("no base repair entry in %+v", rep.Entries)
	}
	health, err := ckpt.VerifyChain(localFS)
	if err != nil {
		t.Fatal(err)
	}
	for _, hs := range health {
		if hs.Status != ckpt.StatusOK {
			t.Errorf("post-repair entry %s status %q", hs.Manifest, hs.Status)
		}
	}
	im, _, err := h.Restore()
	if err != nil {
		t.Fatal(err)
	}
	for p, data := range want {
		if !bytes.Equal(im.PageOr(p), data) {
			t.Errorf("page %d differs after base re-fold", p)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestScrubConcurrentWithDrain races scrub passes against an active seal +
// drain pipeline under the real clock; run with -race it proves the scrub
// path takes the hierarchy lock where it must.
func TestScrubConcurrentWithDrain(t *testing.T) {
	env := sim.NewRealEnv()
	localFS := &ckpt.MemFS{}
	h, err := New(Config{
		Env: env, PageSize: pageSize,
		Local: NewLocalTier(env, "local", localFS, pageSize, nil),
		Lower: []Tier{NewLocalTier(env, "pfs", &ckpt.MemFS{}, pageSize, nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := h.Scrub(); err != nil {
				t.Errorf("concurrent scrub: %v", err)
				return
			}
		}
	}()
	for epoch := uint64(1); epoch <= 20; epoch++ {
		for p := 0; p < 4; p++ {
			data := pageFill(p, int(epoch))
			if err := h.WritePage(epoch, p, data, len(data)); err != nil {
				t.Fatal(err)
			}
		}
		if err := h.EndEpoch(epoch); err != nil {
			t.Fatal(err)
		}
	}
	h.WaitDrained()
	close(stop)
	wg.Wait()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	im, _, err := h.Restore()
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		if !bytes.Equal(im.PageOr(p), pageFill(p, 20)) {
			t.Errorf("page %d differs after concurrent scrubbing", p)
		}
	}
}
