package multilevel

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/obs"
	"repro/internal/sim"
)

// DrainPolicy bounds the background promotion of sealed epochs to lower
// tiers.
type DrainPolicy struct {
	// QueueDepth bounds each tier's drain queue; a seal that finds the
	// first queue full blocks until a slot frees (back-pressure toward the
	// application, as in VELOC). Default 4.
	QueueDepth int
	// Workers is the per-tier drain concurrency. Default 1.
	Workers int
	// MaxAttempts is the number of Store attempts per epoch per tier
	// before the copy is marked failed. Default 4.
	MaxAttempts int
	// RetryBackoff is the delay before the first retry; it doubles after
	// every failed attempt, up to MaxRetryBackoff. Default 10ms.
	RetryBackoff time.Duration
	// MaxRetryBackoff caps the exponential retry delay so a large
	// MaxAttempts budget against a persistently failing tier retries at a
	// steady cadence instead of sleeping for unbounded doubling intervals.
	// Default 1s (and never below RetryBackoff).
	MaxRetryBackoff time.Duration
}

func (p DrainPolicy) withDefaults() DrainPolicy {
	if p.QueueDepth <= 0 {
		p.QueueDepth = 4
	}
	if p.Workers <= 0 {
		p.Workers = 1
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.RetryBackoff <= 0 {
		p.RetryBackoff = 10 * time.Millisecond
	}
	if p.MaxRetryBackoff <= 0 {
		p.MaxRetryBackoff = time.Second
	}
	if p.MaxRetryBackoff < p.RetryBackoff {
		p.MaxRetryBackoff = p.RetryBackoff
	}
	return p
}

// Config assembles a hierarchy.
type Config struct {
	// Env supplies time, processes and synchronization; sim.NewRealEnv()
	// for real applications, a *sim.Kernel for virtual-time experiments.
	Env sim.Env
	// PageSize is the page granularity of everything stored.
	PageSize int
	// Local is the L1 tier: the committer streams pages into it and a
	// checkpoint is acknowledged as soon as it is sealed there.
	Local *LocalTier
	// Lower are the slower, more resilient tiers in drain order (e.g.
	// erasure-coded peer tier, then parallel file system).
	Lower []Tier
	// Drain bounds the background promotion pipeline.
	Drain DrainPolicy
	// Metrics receives drain-pipeline observability (queue depths, retry
	// and failure counts, per-tier promotion latency, restore counters).
	// Nil disables instrumentation.
	Metrics *obs.Metrics
}

// Hierarchy is a multi-level checkpoint store implementing storage.Backend.
// WritePage and EndEpoch target the fast local tier only; sealing an epoch
// additionally hands it to the background drainer, which promotes it tier
// by tier, retrying with exponential backoff, and maintains the per-epoch
// tier manifest.
//
// Under a virtual-time kernel every method except construction must be
// called from a kernel process, and Close must run before the simulation
// ends (the drain workers are kernel processes that would otherwise be
// reported as deadlocked).
type Hierarchy struct {
	env      sim.Env
	pageSize int
	local    *LocalTier
	lower    []Tier
	policy   DrainPolicy
	obs      *obs.Metrics // nil: observability disabled

	mu         sync.Locker
	notEmpty   []sim.Cond   // per lower tier: queue went non-empty / closing
	notFull    []sim.Cond   // per lower tier: queue has a free slot
	queues     [][]drainJob //aickpt:guardedby mu
	pending    int          //aickpt:guardedby mu (epochs sealed but not yet through the whole pipeline)
	idle       sim.Cond
	closing    bool //aickpt:guardedby mu
	workers    int  //aickpt:guardedby mu
	workerExit sim.Cond
	firstErr   error                     //aickpt:guardedby mu
	manifests  map[uint64]*EpochManifest //aickpt:guardedby mu
	epochs     []uint64                  //aickpt:guardedby mu (sealed epochs in seal order, superseded ones included)
	superseded map[uint64]bool           //aickpt:guardedby mu
	baseMan    *EpochManifest            //aickpt:guardedby mu (tier manifest of the compacted base, if any)
	hasBase    bool                      //aickpt:guardedby mu
	baseFrom   uint64                    //aickpt:guardedby mu
	baseTo     uint64                    //aickpt:guardedby mu
	onSettled  func(epoch uint64)        // called (unlocked) when an epoch retires from the pipeline
}

// drainJob is one epoch moving through the promotion pipeline. data caches
// the epoch content loaded from L1 so a multi-tier pipeline reads (and
// hash-verifies) each epoch once, not once per tier. A base job ships a
// compacted base segment (as the full image at epoch base.To) to lower
// tiers that never received the folded epochs.
type drainJob struct {
	epoch uint64
	data  *EpochData
	base  *ckpt.Manifest // non-nil for base jobs
	// man pins the tier manifest a base job updates: h.baseMan may be
	// replaced by a newer compaction while the job is in flight, and the
	// replacement's Tiers slice need not cover every level this job visits.
	man *EpochManifest
	// enqueuedAt stamps when the job entered the current tier's queue
	// (the Metrics' time source; zero when observability is off or the
	// job came from the recovery scan), feeding the drain-wait span.
	enqueuedAt time.Duration
}

// New builds a hierarchy and starts its drain workers. Epochs already
// sealed on the local tier — a restarted process resuming an existing
// chain — are re-queued for draining: the lower tiers of a fresh hierarchy
// start empty, so the whole chain must be promoted again before it is
// resilient to local-tier loss.
func New(cfg Config) (*Hierarchy, error) {
	if cfg.Env == nil || cfg.Local == nil {
		return nil, fmt.Errorf("multilevel: Config needs Env and Local")
	}
	if cfg.PageSize <= 0 {
		return nil, fmt.Errorf("multilevel: non-positive page size")
	}
	h := &Hierarchy{
		env:        cfg.Env,
		pageSize:   cfg.PageSize,
		local:      cfg.Local,
		lower:      cfg.Lower,
		policy:     cfg.Drain.withDefaults(),
		obs:        cfg.Metrics,
		manifests:  map[uint64]*EpochManifest{},
		superseded: map[uint64]bool{},
	}
	h.mu = h.env.NewMutex()
	h.idle = h.env.NewCond(h.mu)
	h.workerExit = h.env.NewCond(h.mu)
	h.queues = make([][]drainJob, len(h.lower)) //aickpt:allow guardedby pre-publication init
	h.notEmpty = make([]sim.Cond, len(h.lower))
	h.notFull = make([]sim.Cond, len(h.lower))
	for i := range h.lower {
		h.notEmpty[i] = h.env.NewCond(h.mu)
		h.notFull[i] = h.env.NewCond(h.mu)
	}
	// Recovery scan, before any worker exists (single-threaded here). The
	// initial enqueue bypasses the queue-depth bound: back-pressure is a
	// steady-state concern, not a recovery one.
	ch, err := ckpt.LoadChain(h.local.FS())
	if err != nil {
		return nil, fmt.Errorf("multilevel: scan local tier: %w", err)
	}
	if ch.PageSize != 0 && ch.PageSize != h.pageSize {
		return nil, fmt.Errorf("multilevel: local tier chain page size %d != %d", ch.PageSize, h.pageSize)
	}
	h.recoverChainLocked(ch)
	for i := range h.lower {
		for w := 0; w < h.policy.Workers; w++ {
			h.workers++ //aickpt:allow guardedby pre-publication init, no worker observes it before Go
			ti := i
			h.env.Go(fmt.Sprintf("drain-%s-%d", h.lower[i].Name(), w), func() { h.worker(ti) })
		}
	}
	return h, nil
}

// recoverChainLocked re-queues the sealed epochs (and base) of an existing
// chain for draining. It runs pre-publication, from New only: no drain
// worker exists yet, so the single constructing goroutine holds exclusive
// access — the Locked contract — without touching h.mu.
func (h *Hierarchy) recoverChainLocked(ch *ckpt.Chain) {
	if ch.Base != nil {
		h.hasBase = true
		h.baseFrom, h.baseTo = ch.Base.Base.From, ch.Base.Base.To
		for e := h.baseFrom; e <= h.baseTo; e++ {
			h.superseded[e] = true
		}
		// Epochs the base folded that escaped garbage collection (a crash
		// between commit and GC): tracked as superseded, never drained.
		for _, man := range ch.Superseded {
			m := h.newManifest(man)
			h.markSupersededLocked(m)
			h.manifests[man.Epoch] = m
			h.epochs = append(h.epochs, man.Epoch)
			h.mirror(m)
		}
		// Promote the base itself so lower tiers that never saw the folded
		// epochs (a fresh, non-durable tier after restart) still end up
		// holding the full chain content. Tiers that already drained the
		// folded epochs report Has(base.To) and skip the store.
		if len(h.lower) > 0 {
			bm := *ch.Base
			h.baseMan = h.newBaseManifest(bm)
			h.pending++
			h.queues[0] = append(h.queues[0], drainJob{epoch: bm.Epoch, base: &bm, man: h.baseMan})
			h.mirror(h.baseMan)
		}
	}
	for _, man := range ch.Epochs {
		m := h.newManifest(man)
		h.manifests[man.Epoch] = m
		h.epochs = append(h.epochs, man.Epoch)
		if len(h.lower) > 0 {
			h.pending++
			h.queues[0] = append(h.queues[0], drainJob{epoch: man.Epoch})
		}
		h.mirror(m)
	}
	if len(h.lower) > 0 {
		// The recovery scan appended to the first queue directly, bypassing
		// enqueueLocked; bring the gauge in line before workers start.
		h.noteQueueLocked(0)
	}
}

// noteQueueLocked mirrors tier ti's drain-queue length into its gauge.
// Callers hold h.mu.
func (h *Hierarchy) noteQueueLocked(ti int) {
	if h.obs != nil {
		h.obs.DrainQueueDepth[obs.TierIndex(ti+1)].Set(int64(len(h.queues[ti])))
	}
}

// newManifest builds the initial tier manifest for a sealed epoch: present
// on L1, draining toward every lower tier.
func (h *Hierarchy) newManifest(man ckpt.Manifest) *EpochManifest {
	m := &EpochManifest{
		Epoch:     man.Epoch,
		PageSize:  man.PageSize,
		PageCount: man.PageCount,
		Tiers:     []TierCopy{{Tier: h.local.Name(), Level: 0, State: StateStored}},
	}
	for i, t := range h.lower {
		m.Tiers = append(m.Tiers, TierCopy{Tier: t.Name(), Level: i + 1, State: StateDraining})
	}
	return m
}

// newBaseManifest builds the tier manifest for a compacted base promoted
// through the hierarchy.
func (h *Hierarchy) newBaseManifest(man ckpt.Manifest) *EpochManifest {
	m := h.newManifest(man)
	if man.Base != nil {
		b := *man.Base
		m.Base = &b
	}
	return m
}

// markSupersededLocked flips every tier copy of a manifest to superseded:
// the epoch's content now travels with the compacted base. A copy that was
// sitting in the failed state stops being repair debt (scrub would requeue
// it), so the failed-copies gauge drops with it.
func (h *Hierarchy) markSupersededLocked(m *EpochManifest) {
	h.superseded[m.Epoch] = true
	for i := range m.Tiers {
		if m.Tiers[i].State == StateFailed && h.obs != nil {
			h.obs.FailedTierCopies.Add(-1)
		}
		m.Tiers[i].State = StateSuperseded
		m.Tiers[i].Err = ""
	}
}

// LastEpoch returns the newest sealed epoch the hierarchy knows of —
// through live epochs or a compacted base recovered from a pre-existing
// local tier — or ok=false when none exist. Restarted runtimes use it to
// continue epoch numbering.
func (h *Hierarchy) LastEpoch() (epoch uint64, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if n := len(h.epochs); n > 0 {
		return h.epochs[n-1], true
	}
	if h.hasBase {
		return h.baseTo, true
	}
	return 0, false
}

// Settled reports whether an epoch has fully retired from the drain
// pipeline: every lower tier holds it, or has definitively failed to (the
// drainer gave up after its retry budget; the failure is surfaced through
// Err and the tier manifest). The compactor folds only settled epochs, so
// a compacted base never strands content that exists nowhere below L1.
func (h *Hierarchy) Settled(epoch uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.manifests[epoch]
	if !ok {
		return false
	}
	for _, tc := range m.Tiers[1:] {
		if tc.State == StateDraining {
			return false
		}
	}
	return true
}

// SetOnSettled registers a callback invoked (outside the hierarchy lock)
// whenever an epoch retires from the drain pipeline; the runtime uses it to
// kick the compactor, whose fold gate is Settled.
func (h *Hierarchy) SetOnSettled(fn func(epoch uint64)) {
	h.mu.Lock()
	h.onSettled = fn
	h.mu.Unlock()
}

// MarkSuperseded records that a committed base now covers the epochs in
// its range: their tier manifests flip to superseded (and are re-mirrored
// for offline inspection), the drainer stops shipping them, and the base
// gains its own tier manifest. The compactor calls it between base commit
// and garbage collection.
func (h *Hierarchy) MarkSuperseded(base ckpt.Manifest) {
	if base.Base == nil {
		return
	}
	from, to := base.Base.From, base.Base.To
	h.mu.Lock()
	if !h.hasBase || to > h.baseTo {
		h.hasBase = true
		h.baseFrom, h.baseTo = from, to
	}
	for _, e := range h.epochs {
		if e < from || e > to {
			continue
		}
		if m, ok := h.manifests[e]; ok && m.Tiers[0].State != StateSuperseded {
			h.markSupersededLocked(m)
			h.mirror(m)
		}
	}
	for e := from; e <= to; e++ {
		h.superseded[e] = true
	}
	// The base lives on L1 only: the lower tiers keep the per-epoch copies
	// they drained before the fold (the fold gate), so it is not promoted
	// here. A later restart over a fresh lower tier promotes it.
	if h.baseMan != nil {
		h.dropMirror(h.baseMan)
	}
	h.baseMan = &EpochManifest{
		Epoch:     to,
		PageSize:  base.PageSize,
		PageCount: base.PageCount,
		Base:      &ckpt.BaseRange{From: from, To: to},
		Tiers:     []TierCopy{{Tier: h.local.Name(), Level: 0, State: StateStored}},
	}
	h.mirror(h.baseMan)
	h.mu.Unlock()
}

// PageSize returns the hierarchy's page granularity.
func (h *Hierarchy) PageSize() int { return h.pageSize }

// Local returns the L1 tier.
func (h *Hierarchy) Local() *LocalTier { return h.local }

// Tiers returns all tiers, fastest first.
func (h *Hierarchy) Tiers() []Tier {
	out := make([]Tier, 0, 1+len(h.lower))
	out = append(out, h.local)
	return append(out, h.lower...)
}

// WritePage implements storage.Backend: the page goes to L1 only, so the
// committer is acknowledged at local-storage speed.
func (h *Hierarchy) WritePage(epoch uint64, page int, data []byte, size int) error {
	return h.local.WritePage(epoch, page, data, size)
}

// EndEpoch implements storage.Backend: it seals the epoch on L1, records
// the tier manifest, and enqueues the epoch for background promotion. It
// blocks only when the first drain queue is full (back-pressure).
func (h *Hierarchy) EndEpoch(epoch uint64) error {
	if err := h.local.EndEpoch(epoch); err != nil {
		return err
	}
	man, err := ckpt.ReadManifest(h.local.FS(), epoch)
	if err != nil {
		return fmt.Errorf("multilevel: reread sealed epoch %d: %w", epoch, err)
	}
	m := h.newManifest(man)
	h.mu.Lock()
	h.manifests[epoch] = m
	h.epochs = append(h.epochs, epoch)
	if len(h.lower) > 0 {
		h.pending++
		h.enqueueLocked(0, drainJob{epoch: epoch})
	}
	h.mirror(m)
	h.mu.Unlock()
	return nil
}

// enqueueLocked appends a job to tier ti's queue, blocking while it is at
// capacity. Callers hold h.mu.
func (h *Hierarchy) enqueueLocked(ti int, job drainJob) {
	for len(h.queues[ti]) >= h.policy.QueueDepth {
		h.notFull[ti].Wait()
	}
	// One clock read serves both the drain-wait span (via the job stamp)
	// and the trace event.
	job.enqueuedAt = h.obs.Now()
	h.queues[ti] = append(h.queues[ti], job)
	h.noteQueueLocked(ti)
	if h.obs != nil {
		h.obs.TraceAt(job.enqueuedAt, obs.StageDrain, job.epoch, -1, int8(ti+1), int64(len(h.queues[ti])))
	}
	h.notEmpty[ti].Signal()
}

// mirror best-effort persists a tier manifest next to the L1 epoch files;
// the in-memory manifest is authoritative while the hierarchy lives.
// Callers hold h.mu, which both keeps the snapshot consistent and
// serializes writers of the same file (a stale-snapshot overwrite would
// otherwise leave the offline mirror permanently behind).
func (h *Hierarchy) mirror(m *EpochManifest) {
	_ = writeTierManifest(h.local.FS(), m)
}

// dropMirror removes a manifest's on-FS mirror (used when a newer base
// replaces an older one). Callers hold h.mu.
func (h *Hierarchy) dropMirror(m *EpochManifest) {
	_ = h.local.FS().Remove(mirrorName(m))
}

// worker is one drain process for lower tier ti.
func (h *Hierarchy) worker(ti int) {
	for {
		h.mu.Lock()
		for len(h.queues[ti]) == 0 && !h.closing {
			h.notEmpty[ti].Wait()
		}
		if len(h.queues[ti]) == 0 {
			h.workers--
			if h.workers == 0 {
				h.workerExit.Broadcast()
			}
			h.mu.Unlock()
			return
		}
		job := h.queues[ti][0]
		h.queues[ti] = h.queues[ti][1:]
		h.noteQueueLocked(ti)
		h.notFull[ti].Signal()
		h.mu.Unlock()
		h.drainOne(ti, job)
	}
}

// drainOne promotes one epoch to lower tier ti: load it from L1 (unless a
// previous tier already did — the loaded content rides along in the job),
// store it with bounded retries, record the outcome in the tier manifest,
// and hand the epoch to the next tier (or retire it from the pipeline).
// Epochs superseded by a compacted base while queued are skipped — their
// content travels with the base — and base jobs ship the consolidated
// image under the epoch number the base ends at.
func (h *Hierarchy) drainOne(ti int, job drainJob) {
	tier := h.lower[ti]
	h.mu.Lock()
	skip := job.base == nil && h.superseded[job.epoch]
	h.mu.Unlock()
	var err error
	// A tier that already holds a healthy copy (restart recovery over a
	// durable tier) is left untouched: re-storing would truncate-and-
	// rewrite a good copy in place.
	held := false
	if holder, ok := tier.(EpochHolder); ok && holder.Has(job.epoch) {
		held = true
	}
	pstart := h.obs.Now()
	if !held && !skip {
		ep := job.data
		if ep == nil {
			if job.base != nil {
				var pages map[int][]byte
				pages, err = ckpt.ReadBasePages(h.local.FS(), *job.base)
				if err == nil {
					ep = newEpochData(job.epoch, h.pageSize, pages)
				}
			} else {
				ep, err = h.local.Load(job.epoch)
			}
		}
		if err == nil {
			job.data = ep
			backoff := h.policy.RetryBackoff
			for attempt := 1; ; attempt++ {
				if err = tier.Store(ep); err == nil || attempt >= h.policy.MaxAttempts {
					break
				}
				if h.obs != nil {
					h.obs.DrainRetries.Inc()
				}
				h.env.Sleep(backoff)
				backoff *= 2
				if backoff > h.policy.MaxRetryBackoff {
					backoff = h.policy.MaxRetryBackoff
				}
			}
		}
	}
	h.mu.Lock()
	m := job.man
	if m == nil {
		m = h.manifests[job.epoch]
	}
	tc := &m.Tiers[ti+1]
	switch {
	case skip:
		tc.State = StateSuperseded
		tc.Err = ""
	case err != nil:
		tc.State = StateFailed
		tc.Err = err.Error()
		if h.firstErr == nil {
			h.firstErr = fmt.Errorf("multilevel: drain epoch %d to %s: %w", job.epoch, tier.Name(), err)
		}
		if h.obs != nil {
			h.obs.DrainFailures.Inc()
			h.obs.FailedTierCopies.Add(1)
			h.obs.Trace(obs.StagePromoteFail, job.epoch, -1, int8(ti+1), 0)
		}
	default:
		tc.State = StateStored
		if dr, ok := tier.(DegradedReporter); ok && dr.Degraded(job.epoch) {
			tc.State = StateDegraded
		}
		if l, ok := tier.(Layouter); ok {
			tc.Shards = l.Layout(job.epoch)
		}
		if h.obs != nil {
			pend := h.obs.Now()
			d := int64(pend - pstart)
			h.obs.PromoteNs[obs.TierIndex(ti+1)].Observe(d)
			h.obs.TraceAt(pend, obs.StagePromote, job.epoch, -1, int8(ti+1), d)
			// Lifecycle spans from the clock reads already taken: time
			// queued behind earlier epochs, then the store itself.
			h.obs.Span(obs.SpanDrainWait, job.epoch, int8(ti+1), job.enqueuedAt, pstart)
			h.obs.Span(obs.SpanPromote, job.epoch, int8(ti+1), pstart, pend)
		}
	}
	h.mirror(m)
	retired := false
	if ti+1 < len(h.lower) {
		h.enqueueLocked(ti+1, job)
	} else {
		h.pending--
		retired = true
		if h.obs != nil {
			h.obs.EpochsDrained.Inc()
		}
		if h.pending == 0 {
			h.idle.Broadcast()
		}
	}
	settled := h.onSettled
	h.mu.Unlock()
	if retired && settled != nil {
		settled(job.epoch)
	}
}

// WaitDrained blocks until every sealed epoch has moved through the whole
// pipeline (stored or failed on every tier).
func (h *Hierarchy) WaitDrained() {
	h.mu.Lock()
	for h.pending > 0 {
		h.idle.Wait()
	}
	h.mu.Unlock()
}

// Err returns the first drain error, if any. Failed tier copies do not stop
// the pipeline — the epoch still reaches the remaining tiers — but they are
// surfaced here and in the manifest.
func (h *Hierarchy) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.firstErr
}

// Close drains all in-flight promotions, stops the drain workers and
// returns the first drain error. Under a virtual-time kernel it must be
// called from a kernel process.
func (h *Hierarchy) Close() error {
	h.WaitDrained()
	h.mu.Lock()
	if !h.closing {
		h.closing = true
		for _, c := range h.notEmpty {
			c.Broadcast()
		}
	}
	for h.workers > 0 {
		h.workerExit.Wait()
	}
	err := h.firstErr
	h.mu.Unlock()
	return err
}

// Manifests returns a copy of every epoch's tier manifest in seal order,
// with the compacted base's manifest (when one exists) inserted between
// the epochs it supersedes and the live epochs after it.
func (h *Hierarchy) Manifests() []EpochManifest {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]EpochManifest, 0, len(h.epochs)+1)
	baseAdded := h.baseMan == nil
	for _, e := range h.epochs {
		if !baseAdded && e > h.baseMan.Base.To {
			out = append(out, h.baseMan.Copy())
			baseAdded = true
		}
		out = append(out, h.manifests[e].Copy())
	}
	if !baseAdded {
		out = append(out, h.baseMan.Copy())
	}
	return out
}
