package multilevel

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ckpt"
	"repro/internal/obs"
)

// ScrubEntry is one scrub finding: a damaged (or torn) chain entry and
// what the pass did about it.
type ScrubEntry struct {
	Epoch  uint64 `json:"epoch"`
	IsBase bool   `json:"is_base,omitempty"`
	// Status is the ckpt segment-health status that triggered the entry
	// (or "drain-failed" for requeued tier copies).
	Status string `json:"status"`
	// Action records the outcome: "repaired from <tier>", "requeued",
	// "unrepaired: <reason>", or "" for torn tails (nothing to do).
	Action string `json:"action,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	// Checked counts the live chain entries verified on L1.
	Checked int `json:"checked"`
	// Corrupt counts the damaged entries found (torn tails excluded:
	// they were never sealed).
	Corrupt int `json:"corrupt"`
	// Repaired / Unrepaired split Corrupt by outcome.
	Repaired   int `json:"repaired"`
	Unrepaired int `json:"unrepaired"`
	// Requeued counts gave-up tier copies re-enqueued for draining.
	Requeued int          `json:"requeued"`
	Entries  []ScrubEntry `json:"entries,omitempty"`
}

// Scrub verifies every live chain entry on the local tier — manifest
// decode, record magic, payload hashes, record counts — and self-heals
// what it can: damaged epochs are quarantined and rebuilt from the
// fastest lower tier still holding them (peer erasure shards, then PFS),
// a damaged base is re-folded from the per-epoch copies the lower tiers
// kept, and tier copies abandoned after their retry budget (drain
// failures) are re-enqueued for promotion so a recovered tier catches
// back up. It is safe to run concurrently with active drains and seals:
// verification is read-only, repairs publish atomically, and requeueing
// takes the hierarchy lock. Under a virtual-time kernel it must be called
// from a kernel process.
func (h *Hierarchy) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	fs := h.local.FS()
	health, err := ckpt.VerifyChain(fs)
	if err != nil {
		return rep, fmt.Errorf("multilevel: scrub: %w", err)
	}
	rep.Checked = len(health)
	if h.obs != nil {
		h.obs.ScrubSegments.Add(uint64(len(health)))
	}
	for _, hs := range health {
		if !hs.Damaged() {
			if hs.Status == ckpt.StatusTornTail {
				rep.Entries = append(rep.Entries, ScrubEntry{
					Epoch: hs.Epoch, IsBase: hs.IsBase, Status: hs.Status, Detail: hs.Detail,
				})
			}
			continue
		}
		rep.Corrupt++
		if h.obs != nil {
			h.obs.ScrubCorrupt.Inc()
		}
		entry := ScrubEntry{Epoch: hs.Epoch, IsBase: hs.IsBase, Status: hs.Status, Detail: hs.Detail}
		var rerr error
		if hs.IsBase {
			rerr = h.repairBase(&entry, hs)
		} else {
			rerr = h.repairEpoch(&entry, hs)
		}
		if rerr == nil {
			rep.Repaired++
			if h.obs != nil {
				h.obs.ScrubRepaired.Inc()
			}
		} else {
			rep.Unrepaired++
			entry.Action = "unrepaired: " + rerr.Error()
			if h.obs != nil {
				h.obs.ScrubUnrepaired.Inc()
			}
		}
		rep.Entries = append(rep.Entries, entry)
	}
	// Re-enqueue gave-up tier copies. The base job (if one is needed)
	// ships the base image, so its manifest is loaded before the lock.
	var baseMan *ckpt.Manifest
	if ch, _, err := ckpt.LoadChainLenient(fs); err == nil && ch.Base != nil {
		baseMan = ch.Base
	}
	h.requeueFailed(&rep, baseMan)
	if h.obs != nil {
		h.obs.Trace(obs.StageScrub, 0, -1, 0, int64(rep.Corrupt))
	}
	return rep, nil
}

// repairEpoch rebuilds one damaged epoch on L1 from the fastest lower
// tier that still holds its pages: the damaged files are quarantined and
// the epoch's segment and manifest rewritten through the normal
// segment-then-manifest commit protocol, so a crash mid-repair leaves the
// epoch unsealed (and the repair reruns) rather than half-healed.
func (h *Hierarchy) repairEpoch(entry *ScrubEntry, hs ckpt.SegmentHealth) error {
	fs := h.local.FS()
	var ep *EpochData
	var from string
	var level int8
	var probes []string
	for li, t := range h.lower {
		loaded, err := t.Load(hs.Epoch)
		if err != nil {
			probes = append(probes, fmt.Sprintf("%s: %v", t.Name(), err))
			continue
		}
		ep, from, level = loaded, t.Name(), int8(li+1)
		break
	}
	if ep == nil {
		return fmt.Errorf("no lower tier holds epoch %d (%s)", hs.Epoch, strings.Join(probes, "; "))
	}
	// Preserve the dedup annotations when the old manifest still decodes;
	// refs are pure accounting, so dropping them on a lost manifest is
	// safe.
	var refs []ckpt.PageRef
	if hs.Status != ckpt.StatusManifestCorrupt {
		if old, err := ckpt.ReadManifest(fs, hs.Epoch); err == nil {
			refs = old.Refs
		}
	}
	// Quarantine the damaged bytes (best effort: the rewrite publishes
	// atomically over whatever remains, but preserving the evidence and
	// clearing stale siblings keeps the directory honest).
	if hs.Manifest != "" && hs.Status == ckpt.StatusManifestCorrupt {
		_ = ckpt.Quarantine(fs, hs.Manifest)
	}
	if hs.Segment != "" && hs.Status == ckpt.StatusSegmentCorrupt {
		_ = ckpt.Quarantine(fs, hs.Segment)
	}
	if _, err := ckpt.RewriteEpoch(fs, hs.Epoch, h.pageSize, ep.Pages, refs); err != nil {
		return err
	}
	if h.obs != nil {
		h.obs.Trace(obs.StageRepair, hs.Epoch, -1, level, int64(len(ep.Pages)))
	}
	entry.Action = "repaired from " + from
	return nil
}

// repairBase re-folds a damaged compacted base from the per-epoch copies
// the lower tiers kept (the compactor's fold gate guarantees every folded
// epoch settled below before the fold, and lower tiers never collect).
// Folding the physical records of every tier epoch up to the base's To,
// oldest to newest, reproduces the base image exactly: a page whose
// newest write was deduplicated is bit-identical to its newest physical
// record by definition. Epochs absent from every lower tier are simply
// unknown here; an epoch that is listed but unloadable aborts the repair
// rather than publishing a base with a hole.
func (h *Hierarchy) repairBase(entry *ScrubEntry, hs ckpt.SegmentHealth) error {
	fs := h.local.FS()
	var from, to uint64
	if n, err := fmt.Sscanf(hs.Manifest, "base-%d-%d.json", &from, &to); err != nil || n != 2 {
		return fmt.Errorf("unparseable base manifest name %q", hs.Manifest)
	}
	seen := map[uint64]bool{}
	var epochs []uint64
	for _, t := range h.lower {
		es, err := t.Epochs()
		if err != nil {
			continue
		}
		for _, e := range es {
			if e <= to && !seen[e] {
				seen[e] = true
				epochs = append(epochs, e)
			}
		}
	}
	if len(epochs) == 0 {
		return fmt.Errorf("no lower tier holds any epoch of base [%d,%d]", from, to)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	pages := map[int][]byte{}
	var level int8
	for _, e := range epochs {
		var ep *EpochData
		var probes []string
		for li, t := range h.lower {
			loaded, err := t.Load(e)
			if err != nil {
				probes = append(probes, fmt.Sprintf("%s: %v", t.Name(), err))
				continue
			}
			ep, level = loaded, int8(li+1)
			break
		}
		if ep == nil {
			return fmt.Errorf("epoch %d of base [%d,%d] unloadable on every tier (%s)",
				e, from, to, strings.Join(probes, "; "))
		}
		for id, data := range ep.Pages {
			pages[id] = data
		}
	}
	if hs.Status == ckpt.StatusManifestCorrupt {
		_ = ckpt.Quarantine(fs, hs.Manifest)
	}
	if hs.Segment != "" && hs.Status == ckpt.StatusSegmentCorrupt {
		_ = ckpt.Quarantine(fs, hs.Segment)
	}
	if _, err := ckpt.WriteBase(fs, from, to, h.pageSize, pages, 0); err != nil {
		return err
	}
	if h.obs != nil {
		h.obs.Trace(obs.StageRepair, to, -1, level, int64(len(pages)))
	}
	entry.Action = "repaired by re-folding lower-tier epochs"
	return nil
}

// requeueFailed flips every gave-up tier copy back to draining and
// re-enqueues its epoch at the lowest failed tier; the job cascades from
// there, and tiers that already hold the epoch skip the store via their
// holder check. baseMan (the committed base's ckpt manifest, may be nil)
// lets a failed base promotion re-ship the base image.
func (h *Hierarchy) requeueFailed(rep *ScrubReport, baseMan *ckpt.Manifest) {
	h.mu.Lock()
	defer h.mu.Unlock()
	requeue := func(m *EpochManifest, job drainJob) {
		lowest := -1
		copies := 0
		for i := 1; i < len(m.Tiers); i++ {
			tc := &m.Tiers[i]
			if tc.State != StateFailed {
				continue
			}
			tc.State = StateDraining
			tc.Err = ""
			copies++
			if lowest == -1 {
				lowest = i - 1
			}
			if h.obs != nil {
				h.obs.FailedTierCopies.Add(-1)
				h.obs.DrainRequeues.Inc()
			}
		}
		if lowest == -1 {
			return
		}
		h.pending++
		h.enqueueLocked(lowest, job)
		h.mirror(m)
		rep.Requeued += copies
		rep.Entries = append(rep.Entries, ScrubEntry{
			Epoch:  m.Epoch,
			IsBase: m.Base != nil,
			Status: "drain-failed",
			Action: "requeued",
			Detail: fmt.Sprintf("tier copies re-enqueued: %d", copies),
		})
	}
	for _, e := range h.epochs {
		if h.superseded[e] {
			continue
		}
		if m, ok := h.manifests[e]; ok {
			requeue(m, drainJob{epoch: e})
		}
	}
	if h.baseMan != nil && baseMan != nil && baseMan.Base != nil &&
		h.baseMan.Base != nil && baseMan.Base.To == h.baseMan.Base.To {
		requeue(h.baseMan, drainJob{epoch: baseMan.Epoch, base: baseMan, man: h.baseMan})
	}
}
