package multilevel

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ckpt"
)

// Tier copy states recorded in the per-epoch tier manifest.
const (
	// StateStored: the tier holds a complete, verified copy of the epoch.
	StateStored = "stored"
	// StateDraining: the epoch is queued or in flight toward the tier.
	StateDraining = "draining"
	// StateDegraded: the tier accepted the epoch but lost part of its
	// redundancy doing so (e.g. shards destined for down peer nodes were
	// dropped); the copy is still recoverable but its failure budget is
	// partly spent.
	StateDegraded = "degraded"
	// StateFailed: draining to the tier failed after all retries.
	StateFailed = "failed"
	// StateSuperseded: the epoch was folded into a compacted base; its own
	// files are reclaimable and the drainer no longer ships it — the base
	// carries its content.
	StateSuperseded = "superseded"
)

// TierCopy records one tier's relationship to an epoch.
type TierCopy struct {
	Tier  string `json:"tier"`
	Level int    `json:"level"`
	State string `json:"state"`
	// Shards is set for sharding tiers and records the erasure layout.
	Shards *ShardLayout `json:"shards,omitempty"`
	// Err holds the final error message when State is StateFailed.
	Err string `json:"err,omitempty"`
}

// EpochManifest is the per-epoch record of where a checkpoint lives in the
// hierarchy. It is kept in memory by the hierarchy and mirrored as a
// tiers-%08d.json file next to the L1 epoch files so inspection tools can
// read it offline.
type EpochManifest struct {
	Epoch     uint64     `json:"epoch"`
	PageSize  int        `json:"page_size"`
	PageCount int        `json:"page_count"`
	Tiers     []TierCopy `json:"tiers"`
	// Base marks the manifest of a compacted base segment promoted through
	// the hierarchy in place of the epochs it folded.
	Base *ckpt.BaseRange `json:"base,omitempty"`
}

// Copy returns a deep copy (callers may retain it across manifest updates).
func (m *EpochManifest) Copy() EpochManifest {
	out := *m
	out.Tiers = make([]TierCopy, len(m.Tiers))
	copy(out.Tiers, m.Tiers)
	for i, tc := range m.Tiers {
		if tc.Shards != nil {
			s := *tc.Shards
			s.Nodes = append([]string(nil), tc.Shards.Nodes...)
			out.Tiers[i].Shards = &s
		}
	}
	if m.Base != nil {
		b := *m.Base
		out.Base = &b
	}
	return out
}

// tierManifestName is the on-FS mirror of an epoch's tier manifest.
func tierManifestName(epoch uint64) string { return fmt.Sprintf("tiers-%08d.json", epoch) }

// mirrorName returns the on-FS mirror file of a tier manifest; base
// manifests get their own name so they never collide with the manifest of
// the epoch their range ends at.
func mirrorName(m *EpochManifest) string {
	if m.Base != nil {
		return fmt.Sprintf("tiers-base-%08d-%08d.json", m.Base.From, m.Base.To)
	}
	return tierManifestName(m.Epoch)
}

// writeTierManifest mirrors a manifest onto fs (best effort: the in-memory
// copy is authoritative while the hierarchy lives).
func writeTierManifest(fs ckpt.FS, m *EpochManifest) error {
	f, err := fs.Create(mirrorName(m))
	if err != nil {
		return err
	}
	if err := json.NewEncoder(f).Encode(m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTierManifests loads all tier manifests mirrored on fs, sorted by
// epoch; ckpt-inspect uses it to report where each epoch lives.
func ReadTierManifests(fs ckpt.FS) ([]EpochManifest, error) {
	names, err := fs.List()
	if err != nil {
		return nil, err
	}
	var out []EpochManifest
	for _, n := range names {
		if !strings.HasPrefix(n, "tiers-") || !strings.HasSuffix(n, ".json") {
			continue
		}
		f, err := fs.Open(n)
		if err != nil {
			return nil, err
		}
		var m EpochManifest
		err = json.NewDecoder(f).Decode(&m)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("multilevel: tier manifest %s corrupt: %w", n, err)
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out, nil
}
