package multilevel

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/erasure"
	"repro/internal/netsim"
)

// decodeWorkers sizes the reconstruction pool: one worker per core up to
// the page count, and no pool at all for narrow loads where goroutine
// startup would cost more than the decode.
func decodeWorkers(pages int) int {
	w := runtime.GOMAXPROCS(0)
	if w > pages {
		w = pages
	}
	if pages < 8 {
		return 1
	}
	return w
}

// PeerNode is one remote node of the peer tier. It holds erasure shards in
// its memory (modeling a partner node's ramdisk) and may be backed by a
// netsim link so shard traffic contends with the node's other traffic in
// virtual time.
type PeerNode struct {
	name string
	nic  *netsim.Link // optional receive link

	mu     sync.Mutex
	down   bool                      //aickpt:guardedby mu
	shards map[uint64]map[int][]byte //aickpt:guardedby mu (epoch -> page -> shard)
}

// NewPeerNode returns a node named name; nic may be nil (no cost modeling).
func NewPeerNode(name string, nic *netsim.Link) *PeerNode {
	return &PeerNode{name: name, nic: nic, shards: map[uint64]map[int][]byte{}}
}

// Name returns the node's name.
func (n *PeerNode) Name() string { return n.name }

// Fail marks the node as failed: subsequent stores to it are dropped and
// loads from it return no shards.
func (n *PeerNode) Fail() {
	n.mu.Lock()
	n.down = true
	n.mu.Unlock()
}

// Recover brings a failed node back empty (its shard memory is gone).
func (n *PeerNode) Recover() {
	n.mu.Lock()
	n.down = false
	n.shards = map[uint64]map[int][]byte{}
	n.mu.Unlock()
}

// Down reports whether the node is failed.
func (n *PeerNode) Down() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

// put stores one shard; it reports false when the node is down.
func (n *PeerNode) put(epoch uint64, page int, shard []byte) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return false
	}
	eps, ok := n.shards[epoch]
	if !ok {
		eps = map[int][]byte{}
		n.shards[epoch] = eps
	}
	eps[page] = shard
	return true
}

// get reads one shard back, or nil when the node is down or never got it.
func (n *PeerNode) get(epoch uint64, page int) []byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return nil
	}
	return n.shards[epoch][page]
}

// peerEpochMeta is the tier's record of one stored epoch: the shard
// rotation start and each page's original length (needed to trim the
// zero-padded reconstruction). It models metadata replicated on the peers
// themselves, so it survives loss of the local tier.
type peerEpochMeta struct {
	start    int
	sizes    map[int]int
	degraded bool // some target nodes never received their shards
}

// PeerTier erasure-codes each page into k data + m parity shards and
// spreads them over k+m peer nodes, rotating the starting node per epoch
// for balance. Any k surviving shards reconstruct every page, so the tier
// tolerates up to m simultaneous node failures — the cost-effective
// alternative to replication (paper §3.2 ref [18], VELOC's partner tier).
type PeerTier struct {
	name   string
	coder  *erasure.Coder
	nodes  []*PeerNode
	sender *netsim.Link // optional: the checkpointing node's NIC

	mu   sync.Mutex
	meta map[uint64]*peerEpochMeta //aickpt:guardedby mu
}

// NewPeerTier builds a peer tier over len(nodes) >= k+m nodes. sender, the
// outbound link of the checkpointing node, may be nil.
func NewPeerTier(name string, k, m int, nodes []*PeerNode, sender *netsim.Link) (*PeerTier, error) {
	if len(nodes) < k+m {
		return nil, fmt.Errorf("multilevel: peer tier needs at least %d nodes, got %d", k+m, len(nodes))
	}
	return &PeerTier{
		name:   name,
		coder:  erasure.New(k, m),
		nodes:  nodes,
		sender: sender,
		meta:   map[uint64]*peerEpochMeta{},
	}, nil
}

// Name implements Tier.
func (t *PeerTier) Name() string { return t.name }

// Nodes returns the tier's nodes (failure injection, inspection).
func (t *PeerTier) Nodes() []*PeerNode { return t.nodes }

// width is the number of nodes an epoch's shards span.
func (t *PeerTier) width() int { return t.coder.K() + t.coder.M() }

// node returns the target of shard i for an epoch starting at start.
func (t *PeerTier) node(start, i int) *PeerNode {
	return t.nodes[(start+i)%len(t.nodes)]
}

// Store implements Tier. Shards destined for failed nodes are dropped; the
// store still succeeds (degraded) as long as at most m of the epoch's
// target nodes end up without a complete shard set, since any k shards
// reconstruct the data. Nodes that fail mid-store count against that
// budget too — a shard set with holes is as lost as a dead node.
func (t *PeerTier) Store(ep *EpochData) error {
	start := int(ep.Epoch) % len(t.nodes)
	failed := map[int]bool{} // shard slot -> node lost at least one shard
	for i := 0; i < t.width(); i++ {
		if t.node(start, i).Down() {
			failed[i] = true
		}
	}
	if len(failed) > t.coder.M() {
		return fmt.Errorf("multilevel: peer tier %s: %d of %d target nodes down, epoch %d would be unrecoverable",
			t.name, len(failed), t.width(), ep.Epoch)
	}
	sizes := make(map[int]int, len(ep.PageIDs))
	for _, id := range ep.PageIDs {
		data := ep.Pages[id]
		shards := t.coder.Encode(data)
		for i, shard := range shards {
			n := t.node(start, i)
			if failed[i] || n.Down() {
				failed[i] = true
				continue
			}
			// The sender link is the checkpointing node's own NIC: with it
			// down no shard can leave the node, so the whole store fails
			// (retryably) rather than degrading.
			if t.sender != nil && !t.sender.TryTransfer(int64(len(shard))) {
				return fmt.Errorf("multilevel: peer tier %s: local NIC down storing epoch %d", t.name, ep.Epoch)
			}
			// A partitioned receive link loses just this node's shards;
			// the erasure budget absorbs it like a down node.
			if n.nic != nil && !n.nic.TryTransfer(int64(len(shard))) {
				failed[i] = true
				continue
			}
			if !n.put(ep.Epoch, id, shard) {
				failed[i] = true
			}
		}
		sizes[id] = len(data)
	}
	if len(failed) > t.coder.M() {
		return fmt.Errorf("multilevel: peer tier %s: %d of %d target nodes lost shards mid-store, epoch %d unrecoverable",
			t.name, len(failed), t.width(), ep.Epoch)
	}
	t.mu.Lock()
	t.meta[ep.Epoch] = &peerEpochMeta{start: start, sizes: sizes, degraded: len(failed) > 0}
	t.mu.Unlock()
	return nil
}

// Has implements EpochHolder: only a complete (non-degraded) shard set
// counts, so a degraded epoch is re-stored — and thereby repaired — when
// the drainer sees it again.
func (t *PeerTier) Has(epoch uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	meta, ok := t.meta[epoch]
	return ok && !meta.degraded
}

// Degraded implements DegradedReporter.
func (t *PeerTier) Degraded(epoch uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	meta, ok := t.meta[epoch]
	return ok && meta.degraded
}

// Load implements Tier: it gathers whatever shards survive on the peers and
// reconstructs every page, succeeding as long as k shards per page remain.
// Shard gathering is serial — each fetch is a link transfer whose (virtual)
// time is the real cost being modeled — but the k-of-n reconstruction of
// the gathered pages is pure CPU, so it fans out across a worker pool
// sized to GOMAXPROCS. The workers are plain goroutines, not env
// processes: they touch no links, clocks or env primitives, so they are
// safe under the deterministic kernel (which they cost no virtual time).
func (t *PeerTier) Load(epoch uint64) (*EpochData, error) {
	t.mu.Lock()
	meta, ok := t.meta[epoch]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("multilevel: peer tier %s does not hold epoch %d", t.name, epoch)
	}
	ids := make([]int, 0, len(meta.sizes))
	for id := range meta.sizes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	sets := make([][][]byte, len(ids))
	for j, id := range ids {
		shards := make([][]byte, t.width())
		for i := range shards {
			n := t.node(meta.start, i)
			shards[i] = n.get(epoch, id)
			if shards[i] != nil && n.nic != nil && !n.nic.TryTransfer(int64(len(shards[i]))) {
				shards[i] = nil // partitioned link: the shard is unreachable
			}
		}
		sets[j] = shards
	}
	out := make([][]byte, len(ids))
	errs := make([]error, len(ids))
	decode := func(j int) {
		out[j], errs[j] = t.coder.Decode(sets[j], meta.sizes[ids[j]])
	}
	if workers := decodeWorkers(len(ids)); workers <= 1 {
		for j := range ids {
			decode(j)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					j := int(cursor.Add(1)) - 1
					if j >= len(ids) {
						return
					}
					decode(j)
				}
			}()
		}
		wg.Wait()
	}
	pages := make(map[int][]byte, len(ids))
	for j, id := range ids {
		if errs[j] != nil {
			// Lowest page wins so the surfaced error is deterministic
			// regardless of worker interleaving.
			return nil, fmt.Errorf("multilevel: peer tier %s epoch %d page %d: %w", t.name, epoch, id, errs[j])
		}
		pages[id] = out[j]
	}
	// Page size is not stored per epoch on the peers; infer it from the
	// largest page (pages are full-sized except possibly compressed ones,
	// which the hierarchy never sends here).
	pageSize := 0
	for _, size := range meta.sizes {
		if size > pageSize {
			pageSize = size
		}
	}
	return newEpochData(epoch, pageSize, pages), nil
}

// Epochs implements Tier.
func (t *PeerTier) Epochs() ([]uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]uint64, 0, len(t.meta))
	for e := range t.meta {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Layout implements Layouter for the tier manifest.
func (t *PeerTier) Layout(epoch uint64) *ShardLayout {
	t.mu.Lock()
	meta, ok := t.meta[epoch]
	t.mu.Unlock()
	if !ok {
		return nil
	}
	names := make([]string, t.width())
	for i := range names {
		names[i] = t.node(meta.start, i).Name()
	}
	return &ShardLayout{Data: t.coder.K(), Parity: t.coder.M(), Start: meta.start, Nodes: names}
}
