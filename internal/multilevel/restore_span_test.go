package multilevel

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/compact"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/storage"
)

// metricsHierarchy is testHierarchy with a flight recorder attached.
func metricsHierarchy(t *testing.T, k *sim.Kernel, tiers int, met *obs.Metrics) (*Hierarchy, *PeerTier, *LocalTier) {
	t.Helper()
	link := func(name string, bps float64, per time.Duration) *netsim.Link {
		return netsim.NewLink(k, netsim.LinkConfig{Name: name, BytesPerSec: bps, PerMessage: per})
	}
	disk := link("node0-disk", 55e6, 0)
	nic := link("node0-nic", 117.5e6, 0)

	local := NewLocalTier(k, "local", &ckpt.MemFS{}, pageSize, storage.NewSimDisk(disk))
	var lower []Tier
	var peer *PeerTier
	var pfs *LocalTier
	if tiers >= 2 {
		peers := make([]*PeerNode, 3)
		for i := range peers {
			peers[i] = NewPeerNode(fmt.Sprintf("node%d", i+1), link(fmt.Sprintf("node%d-nic", i+1), 117.5e6, 0))
		}
		var err error
		peer, err = NewPeerTier("peer", 2, 1, peers, nic)
		if err != nil {
			t.Fatal(err)
		}
		lower = append(lower, peer)
	}
	if tiers >= 3 {
		servers := []*netsim.Link{link("pfs0", 100e6, 10*time.Microsecond), link("pfs1", 100e6, 10*time.Microsecond)}
		pfs = NewLocalTier(k, "pfs", &ckpt.MemFS{}, pageSize, storage.NewSimPFS(nic, servers))
		lower = append(lower, pfs)
	}
	h, err := New(Config{Env: k, PageSize: pageSize, Local: local, Lower: lower, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	return h, peer, pfs
}

// TestRestoreSpansAttributeTierLatency wipes L1 and fails one peer, then
// restores from the erasure tier: each epoch must carry a restore span
// attributed to tier 1 whose virtual timestamps tile the restore
// interval exactly — span i+1 starts the instant span i ends, because
// folding pages into the image costs no virtual time, so any gap or
// overlap would mean a wrong clock read. The spans roll up into epoch
// records whose bounding stage is restore[1].
func TestRestoreSpansAttributeTierLatency(t *testing.T) {
	k := sim.NewKernel()
	met := obs.New(k.Now)
	met.Spans = obs.NewSpanLog(64)
	h, peer, _ := metricsHierarchy(t, k, 2, met)
	runWorkload(t, k, h, func(snapshot []byte) {
		if err := h.Local().Wipe(); err != nil {
			t.Fatal(err)
		}
		peer.Nodes()[0].Fail()
		start := k.Now()
		im, _, err := h.Restore()
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		end := k.Now()
		if end <= start {
			t.Fatal("restore consumed no virtual time")
		}
		verifyImage(t, im, snapshot)

		var restores []obs.Span
		for _, s := range met.Spans.Snapshot() {
			if s.Kind == obs.SpanRestore {
				restores = append(restores, s)
			}
		}
		if len(restores) != 3 {
			t.Fatalf("got %d restore spans, want one per epoch: %+v", len(restores), restores)
		}
		for i, s := range restores {
			if s.Epoch != uint64(i+1) {
				t.Errorf("restore span %d is epoch %d, want %d", i, s.Epoch, i+1)
			}
			if s.Tier != 1 {
				t.Errorf("epoch %d restored span attributed to tier %d, want 1 (peer)", s.Epoch, s.Tier)
			}
			if s.Dur() <= 0 {
				t.Errorf("epoch %d restore span has non-positive duration %v", s.Epoch, s.Dur())
			}
		}
		// Exact virtual-time tiling: the spans cover [start, end] with no
		// gaps — the probe of the wiped local tier is instant, the erasure
		// read is the only time cost, and the next epoch begins where the
		// previous one ended.
		if restores[0].Start != start {
			t.Errorf("first restore span starts at %v, want %v", restores[0].Start, start)
		}
		if last := restores[len(restores)-1].End; last != end {
			t.Errorf("last restore span ends at %v, want %v", last, end)
		}
		for i := 1; i < len(restores); i++ {
			if restores[i].Start != restores[i-1].End {
				t.Errorf("restore spans not contiguous: span %d starts %v, span %d ended %v",
					i, restores[i].Start, i-1, restores[i-1].End)
			}
		}

		// The spans roll up into per-epoch records bounded by restore[1].
		recs := obs.BuildEpochRecords(nil, restores)
		if len(recs) != 3 {
			t.Fatalf("got %d epoch records, want 3", len(recs))
		}
		for _, r := range recs {
			if r.Bounding != "restore[1]" {
				t.Errorf("epoch %d bounding = %q, want restore[1]", r.Epoch, r.Bounding)
			}
			if r.TotalNs <= 0 || r.Spans == nil {
				t.Errorf("epoch %d record incomplete: %+v", r.Epoch, r)
			}
		}
	})
}

// TestRestoreSpanBaseFromCompactedChain restores a hierarchy whose local
// chain was compacted: the folded base restore must appear as one
// restore span on tier 0 attributed to the base's upper epoch.
func TestRestoreSpanBaseFromCompactedChain(t *testing.T) {
	k := sim.NewKernel()
	met := obs.New(k.Now)
	met.Spans = obs.NewSpanLog(64)
	h, _, _ := metricsHierarchy(t, k, 2, met)
	runWorkload(t, k, h, func(snapshot []byte) {
		cfg := compactionCfg(h, compact.Policy{MaxDepth: 1})
		cfg.Metrics = met
		if _, err := compact.RunOnce(cfg, true); err != nil {
			t.Fatalf("compact: %v", err)
		}
		im, _, err := h.Restore()
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		verifyImage(t, im, snapshot)
		var base *obs.Span
		for _, s := range met.Spans.Snapshot() {
			if s.Kind == obs.SpanRestore && s.Tier == 0 {
				s := s
				base = &s
			}
		}
		if base == nil {
			t.Fatal("no tier-0 restore span for the folded base")
		}
		if base.Epoch != 3 {
			t.Errorf("base restore span epoch = %d, want 3 (the base's upper bound)", base.Epoch)
		}
		// The base is read straight off the local FS with no simulated
		// link, so its virtual duration may legitimately be zero — it must
		// only never be negative.
		if base.Dur() < 0 {
			t.Errorf("base restore span duration = %v, want >= 0", base.Dur())
		}
	})
}
