package compact

import (
	"sync"

	"repro/internal/sim"
)

// Stats accumulates a compactor's lifetime activity.
type Stats struct {
	// Runs counts compaction passes executed (kicks coalesce: a burst of
	// seals can be served by one pass).
	Runs int
	// Compactions counts passes that committed a new base.
	Compactions int
	// EpochsFolded is the total number of epochs folded into bases.
	EpochsFolded int
	// BytesWritten is the total size of base segments written.
	BytesWritten int64
	// BytesReclaimed / FilesRemoved count garbage collected.
	BytesReclaimed int64
	FilesRemoved   int
	// LiveSegments is the chain length after the last pass.
	LiveSegments int
	// LastErr is the message of the most recent failed pass ("" when the
	// last pass succeeded). A failed pass is retried on the next kick.
	LastErr string
}

// Compactor runs compaction passes in a background process driven through
// sim.Env, like the page manager's committer: under the real clock it is a
// goroutine, under the virtual-time kernel a deterministic process. Seals
// kick it; CompactNow runs a forced synchronous pass. Passes never overlap.
type Compactor struct {
	env sim.Env
	cfg Config

	mu      sync.Locker
	wake    sim.Cond
	done    sim.Cond
	kicked  bool  //aickpt:guardedby mu
	closing bool  //aickpt:guardedby mu
	exited  bool  //aickpt:guardedby mu
	running bool  //aickpt:guardedby mu
	stats   Stats //aickpt:guardedby mu
}

// NewCompactor starts the background compaction process. Close it before a
// virtual-time kernel run ends.
func NewCompactor(env sim.Env, cfg Config) *Compactor {
	c := &Compactor{env: env, cfg: cfg}
	c.mu = env.NewMutex()
	c.wake = env.NewCond(c.mu)
	c.done = env.NewCond(c.mu)
	env.Go("compactor", c.loop)
	return c
}

// Kick nudges the background process to evaluate the policy (called after
// every epoch seal and whenever an epoch finishes draining). Kicks arriving
// during a pass coalesce into one follow-up pass.
func (c *Compactor) Kick() {
	c.mu.Lock()
	if !c.closing {
		c.kicked = true
		c.wake.Signal()
	}
	c.mu.Unlock()
}

// CompactNow runs one forced pass synchronously: it folds every foldable
// epoch regardless of policy thresholds and collects the garbage, then
// returns the pass result. It serializes with the background process.
func (c *Compactor) CompactNow() (Result, error) {
	return c.runPass(true)
}

// Stats returns the compactor's lifetime counters.
func (c *Compactor) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close stops the background process after any in-flight pass completes.
func (c *Compactor) Close() {
	c.mu.Lock()
	c.closing = true
	c.wake.Broadcast()
	for !c.exited {
		c.done.Wait()
	}
	c.mu.Unlock()
}

func (c *Compactor) loop() {
	for {
		c.mu.Lock()
		for !c.kicked && !c.closing {
			c.wake.Wait()
		}
		// A kick pending at close time is still served (one bounded final
		// pass), so every seal is eventually evaluated.
		if !c.kicked {
			c.exited = true
			c.done.Broadcast()
			c.mu.Unlock()
			return
		}
		c.kicked = false
		c.mu.Unlock()
		c.runPass(false)
	}
}

// runPass executes one pass, serializing against concurrent passes via the
// running flag.
func (c *Compactor) runPass(force bool) (Result, error) {
	c.mu.Lock()
	for c.running {
		c.done.Wait()
	}
	c.running = true
	c.mu.Unlock()

	res, err := RunOnce(c.cfg, force)

	c.mu.Lock()
	c.running = false
	c.stats.Runs++
	if err != nil {
		c.stats.LastErr = err.Error()
	} else {
		c.stats.LastErr = ""
		if res.Compacted {
			c.stats.Compactions++
			c.stats.EpochsFolded += res.EpochsFolded
			c.stats.BytesWritten += res.BytesWritten
		}
		c.stats.BytesReclaimed += res.BytesReclaimed
		c.stats.FilesRemoved += res.FilesRemoved
		c.stats.LiveSegments = res.LiveSegments
	}
	c.done.Broadcast()
	c.mu.Unlock()
	return res, err
}
