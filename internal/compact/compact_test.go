package compact

import (
	"bytes"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/sim"
)

func fillPage(b byte, size int) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = b
	}
	return p
}

// writeChain seals epochs 1..n, each dirtying a rolling window of pages so
// later epochs shadow earlier content.
func writeChain(t *testing.T, fs ckpt.FS, pageSize, n int) {
	t.Helper()
	r := ckpt.NewRepository(fs, pageSize)
	for e := 1; e <= n; e++ {
		for p := e % 4; p < e%4+3; p++ {
			if err := r.WritePage(uint64(e), p, fillPage(byte(e*16+p), pageSize), pageSize); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.EndEpoch(uint64(e)); err != nil {
			t.Fatal(err)
		}
	}
}

func imagesEqual(a, b *ckpt.Image) bool {
	if a.Epoch != b.Epoch || len(a.Pages) != len(b.Pages) {
		return false
	}
	for p, d := range a.Pages {
		if !bytes.Equal(b.Pages[p], d) {
			return false
		}
	}
	return true
}

func TestRunOnceFoldsAndBoundsRestore(t *testing.T) {
	fs := &ckpt.MemFS{}
	const pageSize = 32
	writeChain(t, fs, pageSize, 12)
	before, err := ckpt.Restore(fs)
	if err != nil {
		t.Fatal(err)
	}
	if before.SegmentsRead != 12 {
		t.Fatalf("uncompacted restore read %d segments", before.SegmentsRead)
	}

	cfg := Config{FS: fs, PageSize: pageSize, Policy: Policy{MaxDepth: 4}}
	res, err := RunOnce(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted || res.EpochsFolded != 10 || res.BaseFrom != 1 || res.BaseTo != 10 {
		t.Fatalf("result = %+v", res)
	}
	if res.LiveSegments > 4 {
		t.Fatalf("live segments = %d, want <= 4", res.LiveSegments)
	}

	after, err := ckpt.Restore(fs)
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(before, after) {
		t.Fatal("compacted restore is not bit-identical")
	}
	if after.SegmentsRead > 4 {
		t.Fatalf("compacted restore read %d segments", after.SegmentsRead)
	}
	// The folded epoch files are gone.
	if _, _, err := ckpt.EpochPages(fs, 1); err == nil {
		t.Fatal("folded epoch 1 still present after GC")
	}
	// The restart point survives compaction.
	if last, ok, err := ckpt.LastSealedEpoch(fs); err != nil || !ok || last != 12 {
		t.Fatalf("LastSealedEpoch = %d %v %v", last, ok, err)
	}
}

func TestRunOnceRespectsPolicyAndCanFold(t *testing.T) {
	fs := &ckpt.MemFS{}
	const pageSize = 16
	writeChain(t, fs, pageSize, 4)
	// Depth not exceeded: nothing happens.
	res, err := RunOnce(Config{FS: fs, PageSize: pageSize, Policy: Policy{MaxDepth: 8}}, false)
	if err != nil || res.Compacted {
		t.Fatalf("res = %+v err = %v", res, err)
	}
	// CanFold holds back everything past epoch 2: only [1,2] folds.
	res, err = RunOnce(Config{
		FS: fs, PageSize: pageSize,
		Policy:  Policy{MaxDepth: 2},
		CanFold: func(e uint64) bool { return e <= 2 },
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted || res.BaseTo != 2 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunOnceForceFoldsEverything(t *testing.T) {
	fs := &ckpt.MemFS{}
	const pageSize = 16
	writeChain(t, fs, pageSize, 7)
	before, _ := ckpt.Restore(fs)
	res, err := RunOnce(Config{FS: fs, PageSize: pageSize}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted || res.BaseTo != 7 || res.LiveSegments != 1 {
		t.Fatalf("res = %+v", res)
	}
	after, err := ckpt.Restore(fs)
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(before, after) {
		t.Fatal("forced compaction changed the image")
	}
	// Repeated compaction over an existing base keeps folding.
	r := ckpt.NewRepository(fs, pageSize)
	for e := 8; e <= 9; e++ {
		if err := r.WritePage(uint64(e), 0, fillPage(byte(e), pageSize), pageSize); err != nil {
			t.Fatal(err)
		}
		if err := r.EndEpoch(uint64(e)); err != nil {
			t.Fatal(err)
		}
	}
	res, err = RunOnce(Config{FS: fs, PageSize: pageSize}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted || res.BaseFrom != 1 || res.BaseTo != 9 || res.LiveSegments != 1 {
		t.Fatalf("re-fold res = %+v", res)
	}
}

func TestCompactorBackgroundLoop(t *testing.T) {
	fs := &ckpt.MemFS{}
	const pageSize = 32
	c := NewCompactor(sim.NewRealEnv(), Config{FS: fs, PageSize: pageSize, Policy: Policy{MaxDepth: 3}})
	defer c.Close()
	r := ckpt.NewRepository(fs, pageSize)
	for e := 1; e <= 10; e++ {
		for p := 0; p < 4; p++ {
			if err := r.WritePage(uint64(e), p, fillPage(byte(e+p), pageSize), pageSize); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.EndEpoch(uint64(e)); err != nil {
			t.Fatal(err)
		}
		c.Kick()
	}
	// A forced pass both flushes any backlog and proves CompactNow.
	res, err := c.CompactNow()
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveSegments != 1 {
		t.Fatalf("live segments = %d", res.LiveSegments)
	}
	st := c.Stats()
	if st.Runs == 0 || st.Compactions == 0 || st.EpochsFolded == 0 {
		t.Fatalf("stats = %+v", st)
	}
	im, err := ckpt.Restore(fs)
	if err != nil {
		t.Fatal(err)
	}
	if im.Epoch != 10 || im.SegmentsRead != 1 {
		t.Fatalf("image epoch %d, segments %d", im.Epoch, im.SegmentsRead)
	}
}

func TestCompactorUnderVirtualKernel(t *testing.T) {
	k := sim.NewKernel()
	fs := &ckpt.MemFS{}
	const pageSize = 16
	var imEpoch uint64
	k.Go("app", func() {
		c := NewCompactor(k, Config{FS: fs, PageSize: pageSize, Policy: Policy{MaxDepth: 2}})
		r := ckpt.NewRepository(fs, pageSize)
		for e := 1; e <= 6; e++ {
			if err := r.WritePage(uint64(e), 0, fillPage(byte(e), pageSize), pageSize); err != nil {
				panic(err)
			}
			if err := r.EndEpoch(uint64(e)); err != nil {
				panic(err)
			}
			c.Kick()
			k.Sleep(0) // let the compactor process run
		}
		if _, err := c.CompactNow(); err != nil {
			panic(err)
		}
		c.Close()
		im, err := ckpt.Restore(fs)
		if err != nil {
			panic(err)
		}
		imEpoch = im.Epoch
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if imEpoch != 6 {
		t.Fatalf("restored epoch = %d", imEpoch)
	}
}

func TestAmplificationTrigger(t *testing.T) {
	fs := &ckpt.MemFS{}
	const pageSize = 64
	r := ckpt.NewRepository(fs, pageSize)
	r.SetDedup(false) // every epoch rewrites the same page: pure amplification
	for e := 1; e <= 6; e++ {
		if err := r.WritePage(uint64(e), 0, fillPage(7, pageSize), pageSize); err != nil {
			t.Fatal(err)
		}
		if err := r.EndEpoch(uint64(e)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := RunOnce(Config{FS: fs, PageSize: pageSize, Policy: Policy{MaxAmplification: 2, KeepRecent: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted {
		t.Fatalf("amplified chain not compacted: %+v", res)
	}
	if res.BytesReclaimed == 0 {
		t.Fatal("no bytes reclaimed")
	}
}
