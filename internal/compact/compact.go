// Package compact keeps an incremental checkpoint chain bounded: a
// background compactor folds sealed epoch ranges into consolidated base
// segments and garbage-collects the folded files, so restore latency, drain
// bandwidth and disk footprint stay flat as the run grows — the chain-side
// counterpart of the paper's "low overhead regardless of run length" goal,
// in the spirit of VELOC's background consolidation.
//
// The protocol is crash-safe: a base segment is written first (invisible to
// the chain until its manifest exists), the base manifest is the atomic
// commit point, and garbage collection of the superseded files runs only
// after the commit. A crash at any point leaves a chain that restores
// bit-identically — either the old chain (base invisible or manifest torn)
// or the new one (superseded files are ignored and collected later).
package compact

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/obs"
)

// Policy decides when the chain is compacted and how much of it stays
// un-folded.
type Policy struct {
	// MaxDepth triggers compaction when the live chain (base + epochs
	// after it) exceeds this many entries; restore then never reads more
	// than MaxDepth segments for long. <= 0 disables the depth trigger.
	MaxDepth int
	// MaxAmplification triggers compaction when the chain's on-disk bytes
	// exceed this multiple of the live image size (the classic
	// size-amplification signal of log-structured stores). <= 0 disables.
	// Each evaluation scans the live chain's manifests, so an
	// amplification-only policy whose threshold is never crossed pays a
	// per-seal scan that grows with the chain; combine it with MaxDepth to
	// keep both the chain and the scan bounded.
	MaxAmplification float64
	// KeepRecent is the number of newest epochs never folded, so the base
	// is rewritten every ~KeepRecent checkpoints instead of on every seal.
	// Defaults to max(1, MaxDepth/2).
	KeepRecent int
}

// Enabled reports whether the policy can ever trigger a compaction.
func (p Policy) Enabled() bool { return p.MaxDepth > 0 || p.MaxAmplification > 0 }

func (p Policy) keepRecent() int {
	if p.KeepRecent > 0 {
		return p.KeepRecent
	}
	if p.MaxDepth/2 > 1 {
		return p.MaxDepth / 2
	}
	return 1
}

// Config assembles a compaction pass or a background Compactor.
type Config struct {
	// FS is the repository to compact.
	FS ckpt.FS
	// PageSize is the repository's page granularity.
	PageSize int
	// Codec compresses base segment records (a compress.Codec value; 0 =
	// none).
	Codec uint8
	// Policy decides when and how much to fold.
	Policy Policy
	// CanFold, when non-nil, gates which epochs may be folded; only a
	// contiguous prefix of foldable epochs is compacted. The multi-level
	// hierarchy uses it to hold back epochs still draining to lower tiers.
	CanFold func(epoch uint64) bool
	// OnCompacted, when non-nil, runs after a base commits and before its
	// superseded files are collected (the hierarchy updates tier manifests
	// here). base is the committed base manifest; folded lists the live
	// epochs absorbed this pass.
	OnCompacted func(base ckpt.Manifest, folded []uint64)
	// Metrics receives compaction observability (fold duration, reclaimed
	// bytes, pass outcomes). Nil disables instrumentation.
	Metrics *obs.Metrics
}

// Result describes one compaction pass.
type Result struct {
	// Compacted is true when a new base was written.
	Compacted bool
	// BaseFrom / BaseTo is the committed base's epoch range.
	BaseFrom, BaseTo uint64
	// EpochsFolded counts the live epochs folded into the base.
	EpochsFolded int
	// PagesWritten / BytesWritten size the new base segment.
	PagesWritten int
	BytesWritten int64
	// BytesReclaimed / FilesRemoved count the garbage collected (including
	// leftovers from earlier interrupted passes).
	BytesReclaimed int64
	FilesRemoved   int
	// LiveSegments is the chain length a restore reads after the pass.
	LiveSegments int
}

// RunOnce performs one compaction pass: garbage-collect leftovers, decide
// per Policy (or unconditionally when force is set) whether to fold, write
// and commit the new base, and collect the files it supersedes. It is safe
// to run concurrently with an open epoch being streamed — only sealed
// epochs are touched — but passes themselves must not overlap (the
// Compactor serializes them).
func RunOnce(cfg Config, force bool) (Result, error) {
	start := cfg.Metrics.Now()
	res, err := runOnce(cfg, force)
	if m := cfg.Metrics; m != nil && err == nil {
		m.ReclaimedBytes.Add(uint64(res.BytesReclaimed))
		if res.Compacted {
			end := m.Now()
			d := int64(end - start)
			m.FoldNs.Observe(d)
			m.Compactions.Inc()
			m.EpochsFolded.Add(uint64(res.EpochsFolded))
			m.TraceAt(end, obs.StageCompact, res.BaseTo, -1, 0, res.BytesReclaimed)
			// The fold is attributed to the epoch the base ends at.
			m.Span(obs.SpanCompact, res.BaseTo, 0, start, end)
		} else {
			m.CompactSkips.Inc()
		}
	}
	return res, err
}

func runOnce(cfg Config, force bool) (Result, error) {
	var res Result
	ch, err := ckpt.LoadChain(cfg.FS)
	if err != nil {
		return res, err
	}
	// Collect leftovers from an earlier pass that crashed between commit
	// and GC, whether or not this pass folds anything new.
	reclaimed, removed := ckpt.GCSuperseded(cfg.FS, ch)
	res.BytesReclaimed += reclaimed
	res.FilesRemoved += len(removed)
	res.LiveSegments = ch.LiveSegments()

	foldable := foldablePrefix(ch, cfg.CanFold, force, cfg.Policy)
	if len(foldable) == 0 || !(force || triggered(ch, cfg.Policy)) {
		return res, nil
	}
	// A fold must shrink the chain: folding a single epoch with no
	// existing base just renames it.
	if ch.Base == nil && len(foldable) < 2 {
		return res, nil
	}

	// Fold the base and the foldable prefix into a consolidated image.
	pages := map[int][]byte{}
	fold := func(m ckpt.Manifest) error {
		return ckpt.VisitSegment(cfg.FS, m, func(page int, data []byte) {
			pages[page] = data
		})
	}
	from := foldable[0].Epoch
	if ch.Base != nil {
		from = ch.Base.Base.From
		if err := fold(*ch.Base); err != nil {
			return res, fmt.Errorf("compact: read base: %w", err)
		}
	}
	var folded []uint64
	for _, m := range foldable {
		if err := fold(m); err != nil {
			return res, fmt.Errorf("compact: read epoch %d: %w", m.Epoch, err)
		}
		folded = append(folded, m.Epoch)
	}
	to := foldable[len(foldable)-1].Epoch

	man, err := ckpt.WriteBase(cfg.FS, from, to, cfg.PageSize, pages, cfg.Codec)
	if err != nil {
		return res, fmt.Errorf("compact: write base [%d,%d]: %w", from, to, err)
	}
	res.Compacted = true
	res.BaseFrom, res.BaseTo = from, to
	res.EpochsFolded = len(folded)
	res.PagesWritten = man.PageCount
	res.BytesWritten = man.TotalBytes
	if cfg.OnCompacted != nil {
		cfg.OnCompacted(man, folded)
	}

	// The base is committed; everything it covers is garbage now.
	ch, err = ckpt.LoadChain(cfg.FS)
	if err != nil {
		return res, err
	}
	reclaimed, removed = ckpt.GCSuperseded(cfg.FS, ch)
	res.BytesReclaimed += reclaimed
	res.FilesRemoved += len(removed)
	res.LiveSegments = ch.LiveSegments()
	return res, nil
}

// triggered evaluates the policy against the chain.
func triggered(ch *ckpt.Chain, p Policy) bool {
	if p.MaxDepth > 0 && ch.LiveSegments() > p.MaxDepth {
		return true
	}
	if p.MaxAmplification > 0 {
		if amp, ok := amplification(ch); ok && amp > p.MaxAmplification {
			return true
		}
	}
	return false
}

// amplification estimates on-disk bytes relative to the live image size,
// from manifests alone: the live image is approximated as the distinct
// pages across the chain at one page each.
func amplification(ch *ckpt.Chain) (float64, bool) {
	var onDisk int64
	distinct := map[int]struct{}{}
	count := func(m ckpt.Manifest) {
		onDisk += m.TotalBytes
		for _, p := range m.Pages {
			distinct[p] = struct{}{}
		}
		for _, r := range m.Refs {
			distinct[r.Page] = struct{}{}
		}
	}
	if ch.Base != nil {
		count(*ch.Base)
	}
	for _, m := range ch.Epochs {
		count(m)
	}
	live := int64(len(distinct)) * int64(ch.PageSize)
	if live == 0 {
		return 0, false
	}
	return float64(onDisk) / float64(live), true
}

// foldablePrefix selects the live epochs a pass may fold: the contiguous
// prefix allowed by canFold, minus the KeepRecent newest epochs of the
// chain (force folds everything foldable, keeping nothing back).
func foldablePrefix(ch *ckpt.Chain, canFold func(uint64) bool, force bool, p Policy) []ckpt.Manifest {
	keep := p.keepRecent()
	if force {
		keep = 0
	}
	n := len(ch.Epochs) - keep
	if n < 0 {
		n = 0
	}
	prefix := ch.Epochs[:n]
	if canFold == nil {
		return prefix
	}
	for i, m := range prefix {
		if !canFold(m.Epoch) {
			return prefix[:i]
		}
	}
	return prefix
}
