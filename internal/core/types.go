// Package core implements the AI-Ckpt page manager: asynchronous
// incremental checkpointing that adapts the order in which dirty pages are
// flushed to the application's current and past memory access patterns
// (Nicolae & Cappello, HPDC'13, Algorithms 1-4).
//
// A Manager owns the protected pages of one application process. On
// Checkpoint it write-protects every page and hands the previous epoch's
// dirty set to a background committer; first writes during the epoch are
// trapped and classified (COW / WAIT / AVOIDED / AFTER), and the recorded
// classification drives the next epoch's flush order.
package core

import (
	"time"

	"repro/internal/obs"
	"repro/internal/pagemem"
	"repro/internal/sim"
	"repro/internal/storage"
)

// AccessType classifies the first write to a page within an epoch
// (Section 3.3 of the paper).
type AccessType uint8

const (
	// Untouched: the page has not been written since the last checkpoint.
	Untouched AccessType = iota
	// COW: the write hit a still-scheduled page and a copy-on-write slot
	// absorbed it.
	Cow
	// Wait: the write had to block until the page was committed (page in
	// flight, or no COW slots left).
	Wait
	// Avoided: the page was already committed when written, while the
	// checkpoint was still in progress — the ideal outcome.
	Avoided
	// After: the page was written after the whole checkpoint completed.
	After
)

// String implements fmt.Stringer.
func (a AccessType) String() string {
	switch a {
	case Untouched:
		return "UNTOUCHED"
	case Cow:
		return "COW"
	case Wait:
		return "WAIT"
	case Avoided:
		return "AVOIDED"
	case After:
		return "AFTER"
	default:
		return "UNKNOWN"
	}
}

// PageState tracks a page's progress through the in-flight checkpoint.
type PageState uint8

const (
	// Processed: committed already, or not part of this checkpoint.
	Processed PageState = iota
	// Scheduled: dirty and awaiting commit.
	Scheduled
	// InProgress: locked by the committer, being written to storage.
	InProgress
)

// Strategy selects the checkpointing approach compared in the paper's
// evaluation (§4.2).
type Strategy int

const (
	// Adaptive is the paper's contribution: asynchronous incremental
	// checkpointing with access-pattern-ordered flushing (Algorithm 4).
	Adaptive Strategy = iota
	// NoPattern is asynchronous incremental checkpointing that flushes in
	// ascending page order, ignoring the access pattern.
	NoPattern
	// Sync blocks the application inside Checkpoint until all dirty
	// pages are committed.
	Sync
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Adaptive:
		return "our-approach"
	case NoPattern:
		return "async-no-pattern"
	case Sync:
		return "sync"
	default:
		return "unknown"
	}
}

// Config parameterizes a Manager.
type Config struct {
	// Env supplies time and synchronization; sim.NewRealEnv() for real
	// applications, a *sim.Kernel for simulated experiments.
	Env sim.Env
	// Space holds the protected regions the manager owns.
	Space *pagemem.Space
	// Store receives committed pages.
	Store storage.Backend
	// Strategy chooses the checkpointing approach.
	Strategy Strategy
	// CowSlots bounds the number of concurrent copy-on-write copies (the
	// COW buffer size divided by the page size). Zero disables COW.
	CowSlots int
	// CommitWorkers is the number of concurrent committer workers in the
	// parallel commit pipeline. Workers pull pages from the flush-order
	// selector under the manager lock and perform the storage writes
	// off-lock, concurrently; an epoch-end barrier orders every write
	// before the seal. 0 defaults to 1 — the serial committer, which keeps
	// virtual-time simulations bit-for-bit reproducible with earlier
	// revisions. Values > 1 require a Store that tolerates concurrent
	// WritePage calls for the same epoch (see storage.Backend). Ignored by
	// the Sync strategy, which flushes inline.
	CommitWorkers int
	// CowCopyCost models the time to copy one page into the COW buffer
	// (virtual-time experiments only; leave zero in real mode, where the
	// actual memcpy is the cost).
	CowCopyCost time.Duration
	// FaultCost models the fixed overhead of trapping one first write
	// (mprotect fault + handler); virtual-time experiments only.
	FaultCost time.Duration
	// FirstEpoch offsets checkpoint numbering; a restarted process sets
	// it to the last sealed epoch so new checkpoints extend the existing
	// repository instead of overwriting it.
	FirstEpoch uint64
	// Metrics receives per-stage observability: fault classification
	// counters, blocked-time and write-latency histograms, and pipeline
	// trace events. Nil disables instrumentation; every hot-path site
	// guards on it with a single branch and records with atomics only,
	// so enabling it costs no allocations.
	Metrics *obs.Metrics
	// Name identifies the manager's processes in diagnostics.
	Name string

	// Ablation switches (benchmarking the contribution of each priority
	// tier of Algorithm 4; production code leaves them false).

	// NoWaitedHint disables the waited-page priority: a blocked writer
	// waits until the background order reaches its page.
	NoWaitedHint bool
	// NoLiveCowPriority disables the preference for committing
	// current-epoch COW pages early (slot recycling).
	NoLiveCowPriority bool
}

// EpochStats aggregates one checkpoint's behavior: how its flush proceeded
// and how the application's first writes were classified until the next
// checkpoint request. These are the quantities behind Figures 2(b), 2(c)
// and the checkpointing-time curves.
type EpochStats struct {
	// Epoch is the checkpoint sequence number (1-based).
	Epoch uint64
	// PagesCommitted is the size of the dirty set this checkpoint wrote.
	PagesCommitted int
	// BytesCommitted is PagesCommitted times the page size.
	BytesCommitted int64
	// Waits/Cows/Avoided/After count the access types triggered by first
	// writes between this checkpoint request and the next.
	Waits   int
	Cows    int
	Avoided int
	After   int
	// WaitTime is the total application time spent blocked on page waits
	// during the epoch.
	WaitTime time.Duration
	// BlockedInCheckpoint is how long the application was blocked inside
	// the Checkpoint call itself (the full flush for Sync; the wait for
	// the previous checkpoint to finish for the asynchronous strategies).
	BlockedInCheckpoint time.Duration
	// Duration is the checkpointing time metric of the paper: from the
	// Checkpoint call until the last dirty page reached storage.
	Duration time.Duration
	// Start is the virtual time of the checkpoint request.
	Start time.Duration

	// Selector prediction scorecard, accumulated at the commit/fault
	// sites (see obs.Scorecard for the derived wire form).

	// FaultArrivals is the number of first-write faults taken during the
	// epoch — the length of the actual access order the selector tried
	// to predict.
	FaultArrivals int
	// RankPairs counts pages both flushed and faulted this epoch;
	// FootruleSum accumulates |flushRank - faultIndex| over them — the
	// Spearman footrule between predicted flush order and actual fault
	// arrival order.
	RankPairs   int
	FootruleSum int64
	// MaxWaitedDepth is the peak depth of the waited-page queue during
	// the epoch (how many first writes were stacked up blocked at the
	// worst moment).
	MaxWaitedDepth int
	// FaultHeat and CowHeat split fault locations (all faults /
	// COW-absorbed only) over obs.HeatBuckets equal regions of the page
	// space.
	FaultHeat [obs.HeatBuckets]uint32
	CowHeat   [obs.HeatBuckets]uint32
}

// HitRate is the flushed-before-faulted hit rate of the epoch:
// AVOIDED / (WAIT + COW + AVOIDED), 0 when no overlapping access
// happened.
func (e EpochStats) HitRate() float64 {
	return obs.ScoreHitRate(e.Waits, e.Cows, e.Avoided)
}

// RankCorrelation is the footrule rank correlation between the
// selector's flush order and the actual fault arrival order (1 =
// identical orders, ~0 = random, negative = anti-correlated).
func (e EpochStats) RankCorrelation() float64 {
	return obs.ScoreRankCorrelation(e.FootruleSum, e.RankPairs, e.PagesCommitted, e.FaultArrivals)
}

// Scorecard renders the epoch's selector prediction scorecard in the
// observability wire form. Cold path: allocates the heatmap slices.
func (e EpochStats) Scorecard() obs.Scorecard {
	return obs.Scorecard{
		Epoch:           e.Epoch,
		PagesFlushed:    e.PagesCommitted,
		FaultArrivals:   e.FaultArrivals,
		Waits:           e.Waits,
		Cows:            e.Cows,
		Avoided:         e.Avoided,
		After:           e.After,
		MaxWaitedDepth:  e.MaxWaitedDepth,
		RankPairs:       e.RankPairs,
		FootruleSum:     e.FootruleSum,
		HitRate:         e.HitRate(),
		RankCorrelation: e.RankCorrelation(),
		FaultHeat:       append([]uint32(nil), e.FaultHeat[:]...),
		CowHeat:         append([]uint32(nil), e.CowHeat[:]...),
	}
}
