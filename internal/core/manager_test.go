package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/netsim"
	"repro/internal/pagemem"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/util"
)

const testPageSize = 64

// newRealManager builds a real-time manager over a MemFS repository.
func newRealManager(t *testing.T, strategy Strategy, cowSlots int) (*Manager, *pagemem.Space, *ckpt.MemFS) {
	t.Helper()
	fs := &ckpt.MemFS{}
	space := pagemem.NewSpace(testPageSize)
	m := NewManager(Config{
		Env:      sim.NewRealEnv(),
		Space:    space,
		Store:    ckpt.NewRepository(fs, testPageSize),
		Strategy: strategy,
		CowSlots: cowSlots,
		Name:     "test",
	})
	t.Cleanup(m.Close)
	return m, space, fs
}

func fill(r *pagemem.Region, b byte) {
	buf := make([]byte, r.Size())
	for i := range buf {
		buf[i] = b
	}
	r.Write(0, buf)
}

func restoreAndCompare(t *testing.T, fs *ckpt.MemFS, r *pagemem.Region, want []byte, label string) {
	t.Helper()
	im, err := ckpt.Restore(fs)
	if err != nil {
		t.Fatalf("%s: restore: %v", label, err)
	}
	first, count := r.Pages()
	got := make([]byte, 0, count*testPageSize)
	for p := first; p < first+count; p++ {
		got = append(got, im.PageOr(p)...)
	}
	got = got[:len(want)]
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: restored image differs from memory at checkpoint time", label)
	}
}

func TestCheckpointRestoreMatchesMemoryAtRequestTime(t *testing.T) {
	for _, strategy := range []Strategy{Adaptive, NoPattern, Sync} {
		for _, slots := range []int{0, 2, 1 << 20} {
			t.Run(fmt.Sprintf("%v-slots%d", strategy, slots), func(t *testing.T) {
				m, space, fs := newRealManager(t, strategy, slots)
				r := space.Alloc(8*testPageSize, false)
				fill(r, 0xA1)
				snapshotA := append([]byte(nil), r.Bytes()...)
				m.Checkpoint()
				// Overwrite everything while the flush may still be running:
				// the restore of epoch 1 must still see snapshot A.
				fill(r, 0xB2)
				m.WaitIdle()
				if err := m.Err(); err != nil {
					t.Fatal(err)
				}
				restoreAndCompare(t, fs, r, snapshotA, "epoch1")

				snapshotB := append([]byte(nil), r.Bytes()...)
				m.Checkpoint()
				fill(r, 0xC3)
				m.WaitIdle()
				restoreAndCompare(t, fs, r, snapshotB, "epoch2")
			})
		}
	}
}

func TestIncrementalOnlyDirtyPagesCommitted(t *testing.T) {
	m, space, _ := newRealManager(t, Adaptive, 4)
	r := space.Alloc(16*testPageSize, false)
	fill(r, 1)
	m.Checkpoint()
	m.WaitIdle()
	// Touch only pages 3 and 9.
	r.StoreByte(3*testPageSize, 7)
	r.StoreByte(9*testPageSize+5, 7)
	m.Checkpoint()
	m.WaitIdle()
	stats := m.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats len = %d", len(stats))
	}
	if stats[0].PagesCommitted != 16 {
		t.Errorf("epoch1 committed %d pages, want 16 (full)", stats[0].PagesCommitted)
	}
	if stats[1].PagesCommitted != 2 {
		t.Errorf("epoch2 committed %d pages, want 2 (incremental)", stats[1].PagesCommitted)
	}
}

func TestUntouchedEpochCommitsNothing(t *testing.T) {
	m, space, fs := newRealManager(t, Adaptive, 4)
	r := space.Alloc(4*testPageSize, false)
	fill(r, 9)
	m.Checkpoint()
	m.WaitIdle()
	m.Checkpoint() // nothing dirtied in between
	m.WaitIdle()
	stats := m.Stats()
	if stats[1].PagesCommitted != 0 {
		t.Errorf("empty epoch committed %d pages", stats[1].PagesCommitted)
	}
	// Both epochs sealed; restore still works.
	restoreAndCompare(t, fs, r, r.Bytes(), "after empty epoch")
}

func TestAccessTypesVirtualDeterministic(t *testing.T) {
	// Virtual-time scenario with a 1-page-per-100ms disk and 8 dirty pages.
	k := sim.NewKernel()
	space := pagemem.NewSpace(testPageSize)
	link := netsim.NewLink(k, netsim.LinkConfig{
		Name:        "disk",
		BytesPerSec: 10 * testPageSize, // 100ms per page
	})
	trace := &storage.TracingStore{Next: storage.NewSimDisk(link)}
	m := NewManager(Config{
		Env: k, Space: space, Store: trace,
		Strategy: Adaptive, CowSlots: 1, Name: "vt",
	})
	r := space.Alloc(8*testPageSize, true)
	var waits, cows, avoided, after int
	k.Go("app", func() {
		for i := 0; i < 8; i++ {
			r.Touch(i)
		}
		m.Checkpoint() // all 8 pages scheduled; flush takes 800ms
		// t=0: page 7 is scheduled, slot free -> COW.
		r.Touch(7)
		// t=0: page 6 scheduled, no slots left -> WAIT (committed fast
		// thanks to the waited-page priority).
		r.Touch(6)
		// Flush order: 6 (waited), 7 (live COW), then history order.
		// Wait until page 0's commit must have happened (top of class
		// order: all pages were AFTER in epoch 0, index order 0,1,2,...).
		k.Sleep(350 * time.Millisecond) // t≈550ms
		r.Touch(0)                      // committed at 300ms -> AVOIDED
		m.WaitIdle()                    // flush done at 800ms
		r.Touch(5)                      // -> AFTER
		stats := m.Stats()
		cur := stats[len(stats)-1]
		waits, cows, avoided, after = cur.Waits, cur.Cows, cur.Avoided, cur.After
		m.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if waits != 1 || cows != 1 || avoided != 1 || after != 1 {
		t.Errorf("access types = W%d C%d A%d F%d, want 1 each", waits, cows, avoided, after)
	}
	// Verify the adaptive flush order: waited page 6 first, then COW page 7.
	var epoch1 []int
	for _, c := range trace.Commits() {
		if c.Epoch == 1 {
			epoch1 = append(epoch1, c.Page)
		}
	}
	if len(epoch1) != 8 || epoch1[0] != 6 || epoch1[1] != 7 {
		t.Errorf("epoch1 commit order = %v, want [6 7 ...]", epoch1)
	}
}

func TestNoPatternCommitsAscending(t *testing.T) {
	k := sim.NewKernel()
	space := pagemem.NewSpace(testPageSize)
	link := netsim.NewLink(k, netsim.LinkConfig{Name: "disk", BytesPerSec: 10 * testPageSize})
	trace := &storage.TracingStore{Next: storage.NewSimDisk(link)}
	m := NewManager(Config{Env: k, Space: space, Store: trace, Strategy: NoPattern, Name: "np"})
	r := space.Alloc(6*testPageSize, true)
	k.Go("app", func() {
		// Touch in descending order; no-pattern must still flush ascending.
		for i := 5; i >= 0; i-- {
			r.Touch(i)
		}
		m.Checkpoint()
		m.WaitIdle()
		m.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var pages []int
	for _, c := range trace.Commits() {
		pages = append(pages, c.Page)
	}
	want := []int{0, 1, 2, 3, 4, 5}
	if fmt.Sprint(pages) != fmt.Sprint(want) {
		t.Errorf("commit order = %v, want %v", pages, want)
	}
}

func TestAdaptiveUsesHistoryOrder(t *testing.T) {
	// Epoch 1: pages are touched in a specific order with specific
	// interference; epoch 2's flush must follow WAIT > COW > AVOIDED >
	// AFTER, each by earliest access.
	k := sim.NewKernel()
	space := pagemem.NewSpace(testPageSize)
	link := netsim.NewLink(k, netsim.LinkConfig{Name: "disk", BytesPerSec: 10 * testPageSize})
	trace := &storage.TracingStore{Next: storage.NewSimDisk(link)}
	m := NewManager(Config{Env: k, Space: space, Store: trace, Strategy: Adaptive, CowSlots: 1, Name: "hist"})
	r := space.Alloc(6*testPageSize, true)
	k.Go("app", func() {
		for i := 0; i < 6; i++ {
			r.Touch(i)
		}
		m.Checkpoint() // epoch 1 flushes all 6 (100ms each, 600ms total)
		// Interference pattern during epoch 1's flush:
		r.Touch(4) // scheduled, slot free -> COW
		r.Touch(2) // scheduled, no slot -> WAIT
		k.Sleep(450 * time.Millisecond)
		// Commit order so far: 2 (waited), 4 (cow), 0, 1 (history: none,
		// ascending) => by t=450ms pages 2,4,0,1 committed; 3,5 remain.
		r.Touch(0) // processed, in progress -> AVOIDED
		m.WaitIdle()
		r.Touch(3) // -> AFTER
		r.Touch(1) // -> AFTER (later index)
		// All six pages are dirty again? Only 4,2,0,3,1 were touched.
		r.Touch(5)     // -> AFTER (last)
		m.Checkpoint() // epoch 2
		m.WaitIdle()
		m.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var epoch2 []int
	for _, c := range trace.Commits() {
		if c.Epoch == 2 {
			epoch2 = append(epoch2, c.Page)
		}
	}
	// Expected: WAIT class: page 2; COW class: page 4; AVOIDED: page 0;
	// AFTER by index: 3, 1, 5.
	want := []int{2, 4, 0, 3, 1, 5}
	if fmt.Sprint(epoch2) != fmt.Sprint(want) {
		t.Errorf("epoch2 commit order = %v, want %v", epoch2, want)
	}
}

func TestWaitedPageJumpsQueue(t *testing.T) {
	k := sim.NewKernel()
	space := pagemem.NewSpace(testPageSize)
	link := netsim.NewLink(k, netsim.LinkConfig{Name: "disk", BytesPerSec: 10 * testPageSize})
	trace := &storage.TracingStore{Next: storage.NewSimDisk(link)}
	m := NewManager(Config{Env: k, Space: space, Store: trace, Strategy: Adaptive, CowSlots: 0, Name: "wp"})
	r := space.Alloc(8*testPageSize, true)
	var waitTime time.Duration
	k.Go("app", func() {
		for i := 0; i < 8; i++ {
			r.Touch(i)
		}
		m.Checkpoint()
		start := k.Now()
		r.Touch(5) // no COW slots: must wait, but jumps to front
		waitTime = k.Now() - start
		m.WaitIdle()
		m.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var pages []int
	for _, c := range trace.Commits() {
		pages = append(pages, c.Page)
	}
	if pages[0] != 5 {
		t.Errorf("first committed page = %d, want the waited page 5 (order %v)", pages[0], pages)
	}
	// The wait should last ~one page commit (100ms), not the whole flush.
	if waitTime > 150*time.Millisecond {
		t.Errorf("wait took %v, want ~100ms", waitTime)
	}
}

func TestSyncBlocksForWholeFlush(t *testing.T) {
	k := sim.NewKernel()
	space := pagemem.NewSpace(testPageSize)
	link := netsim.NewLink(k, netsim.LinkConfig{Name: "disk", BytesPerSec: 10 * testPageSize})
	m := NewManager(Config{Env: k, Space: space, Store: storage.NewSimDisk(link), Strategy: Sync, Name: "sync"})
	r := space.Alloc(10*testPageSize, true)
	var blocked time.Duration
	k.Go("app", func() {
		for i := 0; i < 10; i++ {
			r.Touch(i)
		}
		start := k.Now()
		m.Checkpoint()
		blocked = k.Now() - start
		m.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if blocked != time.Second {
		t.Errorf("sync checkpoint blocked %v, want 1s (10 pages x 100ms)", blocked)
	}
	stats := m.Stats()
	if stats[0].Duration != time.Second || stats[0].BlockedInCheckpoint != time.Second {
		t.Errorf("stats = %+v", stats[0])
	}
}

func TestSecondCheckpointWaitsForFirst(t *testing.T) {
	k := sim.NewKernel()
	space := pagemem.NewSpace(testPageSize)
	link := netsim.NewLink(k, netsim.LinkConfig{Name: "disk", BytesPerSec: 10 * testPageSize})
	m := NewManager(Config{Env: k, Space: space, Store: storage.NewSimDisk(link), Strategy: Adaptive, Name: "bp"})
	r := space.Alloc(10*testPageSize, true)
	var blocked time.Duration
	k.Go("app", func() {
		for i := 0; i < 10; i++ {
			r.Touch(i)
		}
		m.Checkpoint() // flush takes 1s
		k.Sleep(200 * time.Millisecond)
		r.Touch(0)     // will wait (in some state) or cow... slots=0 -> wait
		m.Checkpoint() // must block until first flush completes
		m.WaitIdle()
		m.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	stats := m.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats = %d", len(stats))
	}
	blocked = stats[1].BlockedInCheckpoint
	if blocked <= 0 {
		t.Errorf("second checkpoint did not block (blocked=%v)", blocked)
	}
	if stats[1].PagesCommitted != 1 {
		t.Errorf("epoch2 pages = %d, want 1", stats[1].PagesCommitted)
	}
}

func TestCowBufferBounded(t *testing.T) {
	k := sim.NewKernel()
	space := pagemem.NewSpace(testPageSize)
	link := netsim.NewLink(k, netsim.LinkConfig{Name: "disk", BytesPerSec: 10 * testPageSize})
	m := NewManager(Config{Env: k, Space: space, Store: storage.NewSimDisk(link), Strategy: Adaptive, CowSlots: 2, Name: "bounded"})
	r := space.Alloc(10*testPageSize, true)
	var cows, waits int
	k.Go("app", func() {
		for i := 0; i < 10; i++ {
			r.Touch(i)
		}
		m.Checkpoint()
		// Touch all 10 immediately: with 2 slots, some COW, some WAIT —
		// never more than 2 outstanding copies.
		for i := 0; i < 10; i++ {
			r.Touch(i)
		}
		m.WaitIdle()
		st := m.Stats()
		cows, waits = st[0].Cows, st[0].Waits
		m.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if cows+waits != 10 {
		t.Errorf("cows+waits = %d+%d, want 10 total", cows, waits)
	}
	if cows < 2 {
		t.Errorf("cows = %d, expected at least the 2 slots to be used", cows)
	}
}

func TestFreeDuringEpoch(t *testing.T) {
	m, space, _ := newRealManager(t, Adaptive, 4)
	a := space.Alloc(4*testPageSize, false)
	b := space.Alloc(4*testPageSize, false)
	fill(a, 1)
	fill(b, 2)
	m.Checkpoint()
	m.WaitIdle()
	fill(a, 3)
	fill(b, 4)
	m.Free(a) // a's dirty pages must not be committed next epoch
	m.Checkpoint()
	m.WaitIdle()
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	stats := m.Stats()
	if stats[1].PagesCommitted != 4 {
		t.Errorf("epoch2 committed %d pages, want 4 (only region b)", stats[1].PagesCommitted)
	}
}

type failingStore struct{ err error }

func (f failingStore) WritePage(uint64, int, []byte, int) error { return f.err }
func (f failingStore) EndEpoch(uint64) error                    { return nil }

func TestStoreErrorSurfaces(t *testing.T) {
	space := pagemem.NewSpace(testPageSize)
	wantErr := errors.New("disk full")
	m := NewManager(Config{
		Env: sim.NewRealEnv(), Space: space,
		Store: failingStore{wantErr}, Strategy: Adaptive, Name: "err",
	})
	defer m.Close()
	r := space.Alloc(2*testPageSize, false)
	fill(r, 1)
	m.Checkpoint()
	m.WaitIdle()
	if !errors.Is(m.Err(), wantErr) {
		t.Errorf("Err() = %v, want %v", m.Err(), wantErr)
	}
}

// Property-style test: a random workload in virtual time, checkpointed at
// random moments; after every sealed epoch the restored image must equal
// the memory snapshot taken at that checkpoint's request time.
func TestRestoreInvariantRandomWorkloads(t *testing.T) {
	for _, strategy := range []Strategy{Adaptive, NoPattern, Sync} {
		for seed := uint64(1); seed <= 8; seed++ {
			strategy, seed := strategy, seed
			t.Run(fmt.Sprintf("%v-seed%d", strategy, seed), func(t *testing.T) {
				rng := util.NewRNG(seed)
				k := sim.NewKernel()
				fs := &ckpt.MemFS{}
				space := pagemem.NewSpace(testPageSize)
				link := netsim.NewLink(k, netsim.LinkConfig{Name: "disk", BytesPerSec: 40 * testPageSize})
				disk := storage.NewSimDisk(link)
				disk.Next = ckpt.NewRepository(fs, testPageSize)
				m := NewManager(Config{
					Env: k, Space: space, Store: disk,
					Strategy: strategy, CowSlots: rng.Intn(4), Name: "rand",
				})
				const nPages = 24
				r := space.Alloc(nPages*testPageSize, false)
				snapshots := map[uint64][]byte{}
				k.Go("app", func() {
					ckptCount := 0
					for step := 0; step < 300; step++ {
						switch rng.Intn(10) {
						case 0:
							if ckptCount < 5 {
								snap := append([]byte(nil), r.Bytes()...)
								m.Checkpoint()
								snapshots[m.Epoch()] = snap
								ckptCount++
							}
						case 1:
							k.Sleep(time.Duration(rng.Intn(40)) * time.Millisecond)
						default:
							off := rng.Intn(nPages * testPageSize)
							n := rng.Intn(3*testPageSize) + 1
							if off+n > nPages*testPageSize {
								n = nPages*testPageSize - off
							}
							data := make([]byte, n)
							for i := range data {
								data[i] = byte(rng.Uint64())
							}
							r.Write(off, data)
						}
					}
					m.WaitIdle()
					m.Close()
				})
				if err := k.Run(); err != nil {
					t.Fatal(err)
				}
				if err := m.Err(); err != nil {
					t.Fatal(err)
				}
				if len(snapshots) == 0 {
					t.Skip("no checkpoints drawn")
				}
				im, err := ckpt.Restore(fs)
				if err != nil {
					t.Fatal(err)
				}
				want, ok := snapshots[im.Epoch]
				if !ok {
					t.Fatalf("no snapshot for restored epoch %d", im.Epoch)
				}
				got := make([]byte, 0, nPages*testPageSize)
				for p := 0; p < nPages; p++ {
					got = append(got, im.PageOr(p)...)
				}
				if !bytes.Equal(got, want) {
					t.Fatal("restored image differs from snapshot at checkpoint request")
				}
			})
		}
	}
}

// Property: every page dirtied in an epoch is committed exactly once for
// that epoch, no matter how the application interferes mid-flush.
func TestEveryDirtyPageCommittedExactlyOnce(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		for _, strategy := range []Strategy{Adaptive, NoPattern} {
			rng := util.NewRNG(seed)
			k := sim.NewKernel()
			space := pagemem.NewSpace(testPageSize)
			link := netsim.NewLink(k, netsim.LinkConfig{Name: "disk", BytesPerSec: 30 * testPageSize})
			trace := &storage.TracingStore{Next: storage.NewSimDisk(link)}
			m := NewManager(Config{
				Env: k, Space: space, Store: trace,
				Strategy: strategy, CowSlots: rng.Intn(5), Name: "inv",
			})
			const nPages = 32
			r := space.Alloc(nPages*testPageSize, true)
			dirtyPerEpoch := map[uint64]map[int]bool{}
			k.Go("app", func() {
				for e := uint64(1); e <= 3; e++ {
					dirty := map[int]bool{}
					for i := 0; i < 60; i++ {
						p := rng.Intn(nPages)
						r.Touch(p)
						dirty[p] = true
						if rng.Intn(4) == 0 {
							k.Sleep(time.Duration(rng.Intn(30)) * time.Millisecond)
						}
					}
					m.Checkpoint()
					dirtyPerEpoch[m.Epoch()] = dirty
					// Interfere with the flush: more touches mid-epoch.
					for i := 0; i < 10; i++ {
						r.Touch(rng.Intn(nPages))
					}
				}
				m.WaitIdle()
				m.Close()
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			got := map[uint64]map[int]int{}
			for _, c := range trace.Commits() {
				if got[c.Epoch] == nil {
					got[c.Epoch] = map[int]int{}
				}
				got[c.Epoch][c.Page]++
			}
			for e := uint64(1); e <= 3; e++ {
				want := dirtyPerEpoch[e]
				// Epoch e's flush covers pages dirtied before checkpoint e;
				// for e > 1 that includes mid-flush interference touches of
				// the previous round, so check superset + exactly-once.
				for p, n := range got[e] {
					if n != 1 {
						t.Fatalf("seed %d %v: epoch %d page %d committed %d times", seed, strategy, e, p, n)
					}
				}
				for p := range want {
					if got[e][p] != 1 {
						t.Fatalf("seed %d %v: epoch %d page %d not committed", seed, strategy, e, p)
					}
				}
			}
		}
	}
}
