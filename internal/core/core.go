package core
