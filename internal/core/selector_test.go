package core

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/util"
)

func drain(t *testing.T, s selector, m *Manager, remaining *util.Bitset) []int {
	t.Helper()
	var out []int
	for {
		p := s.nextLocked(m, remaining)
		if p < 0 {
			return out
		}
		if !remaining.Test(p) {
			t.Fatalf("selector returned page %d not in remaining set", p)
		}
		remaining.Clear(p)
		out = append(out, p)
	}
}

func TestAscendingSelectorOrder(t *testing.T) {
	m := &Manager{}
	remaining := util.NewBitset(16)
	for _, p := range []int{3, 1, 9, 14} {
		remaining.Set(p)
	}
	got := drain(t, &ascendingSelector{}, m, remaining)
	if fmt.Sprint(got) != fmt.Sprint([]int{1, 3, 9, 14}) {
		t.Errorf("order = %v", got)
	}
}

func TestAdaptiveSelectorClassOrder(t *testing.T) {
	const n = 10
	lastAT := make([]AccessType, n)
	lastIndex := make([]int32, n)
	// History: page 4 WAIT (idx 3), page 7 WAIT (idx 1), page 2 COW (idx 2),
	// page 0 AVOIDED (idx 5), page 1 AFTER (idx 6), page 3 untracked.
	lastAT[4], lastIndex[4] = Wait, 3
	lastAT[7], lastIndex[7] = Wait, 1
	lastAT[2], lastIndex[2] = Cow, 2
	lastAT[0], lastIndex[0] = Avoided, 5
	lastAT[1], lastIndex[1] = After, 6
	dirty := util.NewBitset(n)
	for _, p := range []int{0, 1, 2, 3, 4, 7} {
		dirty.Set(p)
	}
	sel := newAdaptiveSelector(dirty, lastAT, lastIndex)
	m := &Manager{}
	got := drain(t, sel, m, dirty.Clone())
	// WAIT by index: 7, 4; COW: 2; AVOIDED: 0; rest by (index, page): 3
	// (idx 0), 1 (idx 6).
	want := []int{7, 4, 2, 0, 3, 1}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}

func TestAdaptiveSelectorWaitedAndLiveCowPriority(t *testing.T) {
	const n = 8
	lastAT := make([]AccessType, n)
	lastIndex := make([]int32, n)
	dirty := util.NewBitset(n)
	for p := 0; p < n; p++ {
		dirty.Set(p)
	}
	sel := newAdaptiveSelector(dirty, lastAT, lastIndex)
	m := &Manager{liveCowQueue: []int{6, 2}}
	m.waited.push(5)
	remaining := dirty.Clone()
	got := drain(t, sel, m, remaining)
	// waited 5 first; live COW 6 then 2; then rest ascending.
	want := []int{5, 6, 2, 0, 1, 3, 4, 7}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}

func TestAdaptiveSelectorSkipsAlreadyCommitted(t *testing.T) {
	const n = 4
	lastAT := make([]AccessType, n)
	lastIndex := make([]int32, n)
	dirty := util.NewBitset(n)
	for p := 0; p < n; p++ {
		dirty.Set(p)
	}
	sel := newAdaptiveSelector(dirty, lastAT, lastIndex)
	m := &Manager{liveCowQueue: []int{1}}
	remaining := dirty.Clone()
	remaining.Clear(1) // already committed through another path
	got := drain(t, sel, m, remaining)
	if fmt.Sprint(got) != fmt.Sprint([]int{0, 2, 3}) {
		t.Errorf("order = %v", got)
	}
	if m.liveCowHead != len(m.liveCowQueue) {
		t.Errorf("stale live-COW entry not consumed: %v (head %d)", m.liveCowQueue, m.liveCowHead)
	}
}

// sortedReferenceClasses is the original comparison-sort construction of
// Algorithm 4's priority classes (sort.Slice by (LastIndex, page) within
// each class). The bucketed build must reproduce it exactly.
func sortedReferenceClasses(dirty *util.Bitset, lastAT []AccessType, lastIndex []int32) [4][]int32 {
	var classes [4][]int32
	for p := dirty.NextSet(0); p >= 0; p = dirty.NextSet(p + 1) {
		c := classOf(lastAT[p])
		classes[c] = append(classes[c], int32(p))
	}
	for c := range classes {
		cls := classes[c]
		sort.Slice(cls, func(i, j int) bool {
			a, b := cls[i], cls[j]
			if lastIndex[a] != lastIndex[b] {
				return lastIndex[a] < lastIndex[b]
			}
			return a < b
		})
	}
	return classes
}

// Property: the linear-bucketing selector build emits classes identical to
// the sorted reference implementation — for dense unique access ranks (what
// the manager produces) and for degenerate histories with duplicate and
// zero ranks (what defensive code may see). Flush order for a fixed history
// is therefore unchanged by the rewrite.
func TestBucketedBuildMatchesSortedReference(t *testing.T) {
	f := func(seed uint64, dense bool) bool {
		rng := util.NewRNG(seed)
		n := rng.Intn(200) + 1
		lastAT := make([]AccessType, n)
		lastIndex := make([]int32, n)
		dirty := util.NewBitset(n)
		var dirtyPages []int
		for p := 0; p < n; p++ {
			if rng.Intn(3) == 0 {
				continue
			}
			dirty.Set(p)
			dirtyPages = append(dirtyPages, p)
			lastAT[p] = AccessType(rng.Intn(5))
			lastIndex[p] = int32(rng.Intn(2 * n)) // duplicates and zeros allowed
		}
		if dense {
			// The manager's real histories: ranks are a dense permutation
			// of 1..len(dirty) in first-write order.
			perm := rng.Perm(len(dirtyPages))
			for i, p := range dirtyPages {
				lastIndex[p] = int32(perm[i]) + 1
			}
		}
		got := newAdaptiveSelector(dirty, lastAT, lastIndex)
		want := sortedReferenceClasses(dirty, lastAT, lastIndex)
		for c := range want {
			if fmt.Sprint(got.classes[c]) != fmt.Sprint(want[c]) {
				t.Logf("seed %d dense %v class %d: got %v want %v", seed, dense, c, got.classes[c], want[c])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestAllocGateSelectorBuildReuse: rebuilding the manager's
// embedded selector for a stable working set must not allocate once its
// scratch has grown to size.
func TestAllocGateSelectorBuildReuse(t *testing.T) {
	const n = 1024
	lastAT := make([]AccessType, n)
	lastIndex := make([]int32, n)
	dirty := util.NewBitset(n)
	rng := util.NewRNG(11)
	perm := rng.Perm(n)
	for p := 0; p < n; p++ {
		dirty.Set(p)
		lastAT[p] = AccessType(rng.Intn(5))
		lastIndex[p] = int32(perm[p]) + 1
	}
	var s adaptiveSelector
	s.build(dirty, lastAT, lastIndex) // grow scratch
	if allocs := testing.AllocsPerRun(50, func() { s.build(dirty, lastAT, lastIndex) }); allocs != 0 {
		t.Errorf("steady-state selector build allocated %.2f times per run, want 0", allocs)
	}
}

// Property: for any history, the adaptive selector emits every dirty page
// exactly once, WAIT-class pages before COW-class before AVOIDED-class
// before the rest, and within a class by ascending LastIndex.
func TestAdaptiveSelectorQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := util.NewRNG(seed)
		n := rng.Intn(64) + 1
		lastAT := make([]AccessType, n)
		lastIndex := make([]int32, n)
		dirty := util.NewBitset(n)
		for p := 0; p < n; p++ {
			if rng.Intn(2) == 0 {
				continue
			}
			dirty.Set(p)
			lastAT[p] = AccessType(rng.Intn(5))
			lastIndex[p] = int32(rng.Intn(100))
		}
		sel := newAdaptiveSelector(dirty, lastAT, lastIndex)
		m := &Manager{}
		remaining := dirty.Clone()
		var out []int
		for {
			p := sel.nextLocked(m, remaining)
			if p < 0 {
				break
			}
			if !remaining.Test(p) {
				return false
			}
			remaining.Clear(p)
			out = append(out, p)
		}
		if len(out) != dirty.Count() || remaining.Count() != 0 {
			return false
		}
		// Class monotonicity and intra-class index order.
		prevClass, prevIndex := -1, int32(-1)
		for _, p := range out {
			c := classOf(lastAT[p])
			if c < prevClass {
				return false
			}
			if c > prevClass {
				prevClass, prevIndex = c, -1
			}
			if lastIndex[p] < prevIndex {
				return false
			}
			prevIndex = lastIndex[p]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
