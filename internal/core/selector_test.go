package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/util"
)

func drain(t *testing.T, s selector, m *Manager, remaining *util.Bitset) []int {
	t.Helper()
	var out []int
	for {
		p := s.next(m, remaining)
		if p < 0 {
			return out
		}
		if !remaining.Test(p) {
			t.Fatalf("selector returned page %d not in remaining set", p)
		}
		remaining.Clear(p)
		out = append(out, p)
	}
}

func TestAscendingSelectorOrder(t *testing.T) {
	m := &Manager{}
	remaining := util.NewBitset(16)
	for _, p := range []int{3, 1, 9, 14} {
		remaining.Set(p)
	}
	got := drain(t, &ascendingSelector{}, m, remaining)
	if fmt.Sprint(got) != fmt.Sprint([]int{1, 3, 9, 14}) {
		t.Errorf("order = %v", got)
	}
}

func TestAdaptiveSelectorClassOrder(t *testing.T) {
	const n = 10
	lastAT := make([]AccessType, n)
	lastIndex := make([]int32, n)
	// History: page 4 WAIT (idx 3), page 7 WAIT (idx 1), page 2 COW (idx 2),
	// page 0 AVOIDED (idx 5), page 1 AFTER (idx 6), page 3 untracked.
	lastAT[4], lastIndex[4] = Wait, 3
	lastAT[7], lastIndex[7] = Wait, 1
	lastAT[2], lastIndex[2] = Cow, 2
	lastAT[0], lastIndex[0] = Avoided, 5
	lastAT[1], lastIndex[1] = After, 6
	dirty := util.NewBitset(n)
	for _, p := range []int{0, 1, 2, 3, 4, 7} {
		dirty.Set(p)
	}
	sel := newAdaptiveSelector(dirty, lastAT, lastIndex)
	m := &Manager{}
	got := drain(t, sel, m, dirty.Clone())
	// WAIT by index: 7, 4; COW: 2; AVOIDED: 0; rest by (index, page): 3
	// (idx 0), 1 (idx 6).
	want := []int{7, 4, 2, 0, 3, 1}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}

func TestAdaptiveSelectorWaitedAndLiveCowPriority(t *testing.T) {
	const n = 8
	lastAT := make([]AccessType, n)
	lastIndex := make([]int32, n)
	dirty := util.NewBitset(n)
	for p := 0; p < n; p++ {
		dirty.Set(p)
	}
	sel := newAdaptiveSelector(dirty, lastAT, lastIndex)
	m := &Manager{liveCowQueue: []int{6, 2}}
	m.waited.push(5)
	remaining := dirty.Clone()
	got := drain(t, sel, m, remaining)
	// waited 5 first; live COW 6 then 2; then rest ascending.
	want := []int{5, 6, 2, 0, 1, 3, 4, 7}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}

func TestAdaptiveSelectorSkipsAlreadyCommitted(t *testing.T) {
	const n = 4
	lastAT := make([]AccessType, n)
	lastIndex := make([]int32, n)
	dirty := util.NewBitset(n)
	for p := 0; p < n; p++ {
		dirty.Set(p)
	}
	sel := newAdaptiveSelector(dirty, lastAT, lastIndex)
	m := &Manager{liveCowQueue: []int{1}}
	remaining := dirty.Clone()
	remaining.Clear(1) // already committed through another path
	got := drain(t, sel, m, remaining)
	if fmt.Sprint(got) != fmt.Sprint([]int{0, 2, 3}) {
		t.Errorf("order = %v", got)
	}
	if len(m.liveCowQueue) != 0 {
		t.Errorf("stale live-COW entry not consumed: %v", m.liveCowQueue)
	}
}

// Property: for any history, the adaptive selector emits every dirty page
// exactly once, WAIT-class pages before COW-class before AVOIDED-class
// before the rest, and within a class by ascending LastIndex.
func TestAdaptiveSelectorQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := util.NewRNG(seed)
		n := rng.Intn(64) + 1
		lastAT := make([]AccessType, n)
		lastIndex := make([]int32, n)
		dirty := util.NewBitset(n)
		for p := 0; p < n; p++ {
			if rng.Intn(2) == 0 {
				continue
			}
			dirty.Set(p)
			lastAT[p] = AccessType(rng.Intn(5))
			lastIndex[p] = int32(rng.Intn(100))
		}
		sel := newAdaptiveSelector(dirty, lastAT, lastIndex)
		m := &Manager{}
		remaining := dirty.Clone()
		var out []int
		for {
			p := sel.next(m, remaining)
			if p < 0 {
				break
			}
			if !remaining.Test(p) {
				return false
			}
			remaining.Clear(p)
			out = append(out, p)
		}
		if len(out) != dirty.Count() || remaining.Count() != 0 {
			return false
		}
		// Class monotonicity and intra-class index order.
		prevClass, prevIndex := -1, int32(-1)
		for _, p := range out {
			c := classOf(lastAT[p])
			if c < prevClass {
				return false
			}
			if c > prevClass {
				prevClass, prevIndex = c, -1
			}
			if lastIndex[p] < prevIndex {
				return false
			}
			prevIndex = lastIndex[p]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
