package core

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/pagemem"
	"repro/internal/sim"
	"repro/internal/storage"
)

// TestScorecardVirtualDeterministic replays the deterministic access-type
// scenario of TestAccessTypesVirtualDeterministic with full
// instrumentation and asserts the exact selector scorecard: flush ranks,
// fault arrival indices, the footrule sum accumulated exactly once per
// flushed-and-faulted pair, the waited-queue peak and the heatmaps.
//
// Timeline (1 page per 100ms, adaptive, 1 COW slot, epoch-0 history is
// empty so the initial flush order is ascending after the dynamic
// classes): flush order 6 (waited), 7 (live COW), 0, 1, 2, 3, 4, 5.
//
//	rank:    6->1  7->2  0->3  1->4  2->5  3->6  4->7  5->8
//	arrival: 7->1 (COW)  6->2 (indexed after the wait)  0->3  5->4
//	footrule pairs: |2-1| + |1-2| + |3-3| + |8-4| = 6 over 4 pairs
func TestScorecardVirtualDeterministic(t *testing.T) {
	k := sim.NewKernel()
	met := obs.New(k.Now)
	met.Spans = obs.NewSpanLog(64)
	space := pagemem.NewSpace(testPageSize)
	link := netsim.NewLink(k, netsim.LinkConfig{Name: "disk", BytesPerSec: 10 * testPageSize})
	m := NewManager(Config{
		Env: k, Space: space, Store: storage.NewSimDisk(link),
		Strategy: Adaptive, CowSlots: 1, Name: "score", Metrics: met,
	})
	r := space.Alloc(8*testPageSize, true)
	k.Go("app", func() {
		for i := 0; i < 8; i++ {
			r.Touch(i)
		}
		m.Checkpoint() // epoch 1: 8 pages scheduled, flush takes 800ms
		r.Touch(7)     // t=0: slot free -> COW, arrival 1
		r.Touch(6)     // t=0: no slot -> WAIT until committed at 100ms, arrival 2
		k.Sleep(350 * time.Millisecond)
		r.Touch(0) // t=450ms: committed at 300ms, flush live -> AVOIDED, arrival 3
		m.WaitIdle()
		r.Touch(5)     // flush done -> AFTER, arrival 4
		m.Checkpoint() // epoch 2: rotation finalizes epoch 1's scorecard
		m.WaitIdle()
		m.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	stats := m.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats len = %d, want 2", len(stats))
	}
	ep := stats[0]
	if ep.Waits != 1 || ep.Cows != 1 || ep.Avoided != 1 || ep.After != 1 {
		t.Fatalf("classification = W%d C%d A%d F%d, want 1 each", ep.Waits, ep.Cows, ep.Avoided, ep.After)
	}
	if ep.PagesCommitted != 8 {
		t.Fatalf("PagesCommitted = %d, want 8", ep.PagesCommitted)
	}
	if ep.FaultArrivals != 4 {
		t.Fatalf("FaultArrivals = %d, want 4", ep.FaultArrivals)
	}
	if ep.RankPairs != 4 || ep.FootruleSum != 6 {
		t.Fatalf("rank pairs/footrule = %d/%d, want 4/6 (exactly-once per pair)", ep.RankPairs, ep.FootruleSum)
	}
	if ep.MaxWaitedDepth != 1 {
		t.Fatalf("MaxWaitedDepth = %d, want 1", ep.MaxWaitedDepth)
	}
	approx := func(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }
	if !approx(ep.HitRate(), 1.0/3.0) {
		t.Fatalf("HitRate = %v, want 1/3", ep.HitRate())
	}
	// scale = max(flushed 8, arrivals 4) = 8: corr = 1 - 3*6/(4*7).
	if !approx(ep.RankCorrelation(), 1-18.0/28.0) {
		t.Fatalf("RankCorrelation = %v, want %v", ep.RankCorrelation(), 1-18.0/28.0)
	}

	// 8 pages over 32 buckets: shift 0, bucket == page.
	cards := m.Scorecards()
	if len(cards) != 2 {
		t.Fatalf("scorecards len = %d, want 2", len(cards))
	}
	sc := cards[0]
	if sc.Epoch != 1 || sc.PagesFlushed != 8 || !approx(sc.HitRate, 1.0/3.0) {
		t.Fatalf("scorecard = %+v", sc)
	}
	wantFault := map[int]uint32{0: 1, 5: 1, 6: 1, 7: 1}
	for b, n := range sc.FaultHeat {
		if n != wantFault[b] {
			t.Fatalf("FaultHeat[%d] = %d, want %d", b, n, wantFault[b])
		}
	}
	for b, n := range sc.CowHeat {
		want := uint32(0)
		if b == 7 {
			want = 1
		}
		if n != want {
			t.Fatalf("CowHeat[%d] = %d, want %d", b, n, want)
		}
	}

	// Rotation observed the finalized scorecard into the histograms.
	if snap := met.SelectorHitRatePm.Snapshot(); snap.Count < 1 || snap.Max != 333 {
		t.Fatalf("hit-rate histogram = count %d max %d, want max 333 (1/3 in permille)", snap.Count, snap.Max)
	}
	if snap := met.WaitedQueuePeak.Snapshot(); snap.Max != 1 {
		t.Fatalf("waited-queue peak max = %d, want 1", snap.Max)
	}
	if snap := met.SelectorRankCorrPm.Snapshot(); snap.Max != 357 {
		t.Fatalf("rank-corr histogram max = %d, want 357 (5/14 in permille)", snap.Max)
	}

	// Lifecycle spans carry exact virtual timestamps: epoch 1's commit
	// spans [0, 800ms] and seals instantly at 800ms; epoch 2 re-flushes
	// the 4 re-dirtied pages over [800ms, 1200ms].
	spans := met.Spans.Snapshot()
	byEpoch := map[uint64]map[obs.SpanKind]obs.Span{}
	for _, s := range spans {
		if byEpoch[s.Epoch] == nil {
			byEpoch[s.Epoch] = map[obs.SpanKind]obs.Span{}
		}
		byEpoch[s.Epoch][s.Kind] = s
	}
	c1 := byEpoch[1][obs.SpanCommit]
	if c1.Start != 0 || c1.End != 800*time.Millisecond {
		t.Fatalf("epoch 1 commit span = [%v, %v], want [0, 800ms]", c1.Start, c1.End)
	}
	s1 := byEpoch[1][obs.SpanSeal]
	if s1.Start != 800*time.Millisecond || s1.End != 800*time.Millisecond {
		t.Fatalf("epoch 1 seal span = [%v, %v], want [800ms, 800ms]", s1.Start, s1.End)
	}
	c2 := byEpoch[2][obs.SpanCommit]
	if c2.Start != 800*time.Millisecond || c2.End != 1200*time.Millisecond {
		t.Fatalf("epoch 2 commit span = [%v, %v], want [800ms, 1200ms]", c2.Start, c2.End)
	}
}

// TestScorecardSyncPath covers the synchronous strategy: every dirty page
// is pulled in one blocking commit, so the scorecard records the flush
// ranks but no overlapping faults, and the commit/seal spans cover the
// blocking call exactly.
func TestScorecardSyncPath(t *testing.T) {
	k := sim.NewKernel()
	met := obs.New(k.Now)
	met.Spans = obs.NewSpanLog(16)
	space := pagemem.NewSpace(testPageSize)
	link := netsim.NewLink(k, netsim.LinkConfig{Name: "disk", BytesPerSec: 10 * testPageSize})
	m := NewManager(Config{
		Env: k, Space: space, Store: storage.NewSimDisk(link),
		Strategy: Sync, Name: "sync-score", Metrics: met,
	})
	r := space.Alloc(4*testPageSize, true)
	k.Go("app", func() {
		for i := 0; i < 4; i++ {
			r.Touch(i)
		}
		m.Checkpoint() // blocks 400ms
		m.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	ep := m.Stats()[0]
	if ep.FaultArrivals != 0 || ep.RankPairs != 0 || ep.FootruleSum != 0 {
		t.Fatalf("sync epoch saw phantom faults: %+v", ep)
	}
	if ep.HitRate() != 0 || ep.RankCorrelation() != 0 {
		t.Fatalf("sync scorecard must be neutral: hit %v corr %v", ep.HitRate(), ep.RankCorrelation())
	}
	spans := met.Spans.Snapshot()
	var commit *obs.Span
	for i := range spans {
		if spans[i].Kind == obs.SpanCommit && spans[i].Epoch == 1 {
			commit = &spans[i]
		}
	}
	if commit == nil {
		t.Fatal("sync path recorded no commit span")
	}
	if commit.Start != 0 || commit.End != 400*time.Millisecond {
		t.Fatalf("sync commit span = [%v, %v], want [0, 400ms]", commit.Start, commit.End)
	}
}
