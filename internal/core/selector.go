package core

import (
	"repro/internal/util"
)

// selector produces the next page to commit (SELECT_NEXT_PAGE, Algorithm 4).
// Selectors are consulted with the manager's mutex held — possibly by
// several committer workers in turn, each of which removes the page it was
// handed from the remaining set before releasing the lock.
//
// Construction happens off the application-blocking path: Checkpoint() only
// names the selector for the new epoch, and the first committer worker to
// enter the epoch builds it (see Manager.flushEpochLocked) with the manager
// lock *released*. That is safe because the build reads a locked snapshot
// of the previous epoch's structures: the *contents* of LastDirty, LastAT
// and LastIndex are frozen between rotation and the first page pull (the
// fault handler writes the *current* epoch's arrays, committer workers only
// clear LastDirty bits after pulling from a built selector, and rotation
// waits for the in-flight epoch to finish), but a fault on a page past the
// tracked range grows those containers, so the builder captures the slice
// headers and a bitset copy under the lock instead of chasing the live
// fields. Workers arriving while the build is in progress block until it
// completes, so no page is pulled from a half-built order.
type selector interface {
	// nextLocked returns the next page to commit, or -1 when the remaining set
	// is empty. remaining is the live LastDirty set: pages already pulled
	// by a worker or committed through other paths must be skipped.
	nextLocked(m *Manager, remaining *util.Bitset) int
}

// ascendingSelector flushes in ascending page order — the
// async-no-pattern baseline of §4.2 ("dirty pages are simply dumped in
// ascending order of their address"). A page the application is currently
// blocked on still jumps the queue: the baseline in the paper reports tens
// of thousands of waits per epoch that each resolve quickly, which is only
// possible if the committer serves waiters promptly; the baseline's
// ignorance is about the background order (no history classes, no live-COW
// slot recycling preference), not about starving blocked writers.
type ascendingSelector struct {
	cursor int
}

func (s *ascendingSelector) nextLocked(m *Manager, remaining *util.Bitset) int {
	for !m.cfg.NoWaitedHint {
		p, ok := m.waited.front()
		if !ok {
			break
		}
		if remaining.Test(p) {
			return p
		}
		// Already pulled or committed through another path; drop the hint.
		m.waited.remove(p)
	}
	p := remaining.NextSet(s.cursor)
	if p < 0 {
		// The cursor may have skipped pages committed out of band (waited
		// pages, COW copies); rescan from the start.
		p = remaining.NextSet(0)
	}
	if p >= 0 {
		s.cursor = p + 1
	}
	return p
}

// adaptiveSelector implements Algorithm 4:
//
//  1. the page the application is waiting on right now,
//  2. pages that triggered a copy-on-write in the current epoch (committing
//     them releases COW slots),
//  3. pages whose previous-epoch access type was WAIT, then COW, then
//     AVOIDED — each class ordered by earliest previous access (LastIndex),
//  4. any remaining pages (previous type AFTER, or no history), also by
//     earliest previous access, ties in ascending page order.
//
// The zero value is an empty selector; build fills it. Its slices are
// retained scratch: a Manager embeds one adaptiveSelector and rebuilds it
// in place every adaptive epoch, so the steady-state build allocates
// nothing once the scratch reaches the working-set size.
type adaptiveSelector struct {
	// classes[0..3]: WAIT, COW, AVOIDED, rest — page IDs ordered by
	// (LastIndex, page). Consumed front to back, skipping pages no longer
	// in the remaining set.
	classes [4][]int32
	heads   [4]int

	// build scratch, reused across epochs.
	count []int32 // per-LastIndex page counts, then placement offsets
	order []int32 // dirty pages sorted by (LastIndex, page)
}

// BuildAdaptiveSelectorForBench exposes adaptive-selector construction to
// the repository-level benchmark harness (the per-checkpoint setup cost of
// Algorithm 4); it has no other users.
func BuildAdaptiveSelectorForBench(dirty *util.Bitset, lastAT []AccessType, lastIndex []int32) {
	newAdaptiveSelector(dirty, lastAT, lastIndex)
}

// classOf maps a previous-epoch access type to its priority class.
func classOf(at AccessType) int {
	switch at {
	case Wait:
		return 0
	case Cow:
		return 1
	case Avoided:
		return 2
	default: // After, Untouched (no usable history)
		return 3
	}
}

// newAdaptiveSelector builds a fresh selector (tests and the build
// benchmark); the manager reuses its embedded selector via build instead.
func newAdaptiveSelector(dirty *util.Bitset, lastAT []AccessType, lastIndex []int32) *adaptiveSelector {
	s := &adaptiveSelector{}
	s.build(dirty, lastAT, lastIndex)
	return s
}

// build partitions the dirty set by previous-epoch access type, each class
// ordered by (LastIndex, page). lastAT and lastIndex are indexed by page ID.
//
// The order is produced by a counting sort over LastIndex, not a comparison
// sort: the manager assigns LastIndex as a dense access rank (1..n in first-
// write order), so bucketing pages by rank and reading the buckets back in
// rank order yields the class orders directly in O(dirty + maxRank) — the
// previous sort.Slice implementation spent O(n log n) with reflection-based
// swaps on an already-countable key. Equal ranks (which the manager never
// produces, but test histories may) tie-break by ascending page ID exactly
// like the comparison sort did, because pages are placed in ascending
// bitset order.
func (s *adaptiveSelector) build(dirty *util.Bitset, lastAT []AccessType, lastIndex []int32) {
	for c := range s.classes {
		s.classes[c] = s.classes[c][:0]
		s.heads[c] = 0
	}
	n, maxIdx := 0, int32(0)
	for p := dirty.NextSet(0); p >= 0; p = dirty.NextSet(p + 1) {
		n++
		if lastIndex[p] > maxIdx {
			maxIdx = lastIndex[p]
		}
	}
	if n == 0 {
		return
	}
	if cap(s.count) < int(maxIdx)+1 {
		s.count = make([]int32, maxIdx+1)
	}
	count := s.count[:maxIdx+1]
	clear(count)
	rank := func(p int) int32 {
		if idx := lastIndex[p]; idx > 0 {
			return idx
		}
		return 0
	}
	for p := dirty.NextSet(0); p >= 0; p = dirty.NextSet(p + 1) {
		count[rank(p)]++
	}
	var total int32
	for i := range count {
		c := count[i]
		count[i] = total
		total += c
	}
	if cap(s.order) < n {
		s.order = make([]int32, n)
	}
	order := s.order[:n]
	for p := dirty.NextSet(0); p >= 0; p = dirty.NextSet(p + 1) {
		r := rank(p)
		order[count[r]] = int32(p)
		count[r]++
	}
	for _, p := range order {
		c := classOf(lastAT[p])
		s.classes[c] = append(s.classes[c], p)
	}
}

func (s *adaptiveSelector) nextLocked(m *Manager, remaining *util.Bitset) int {
	// Priority 1: a page the application is blocked on right now.
	for !m.cfg.NoWaitedHint {
		p, ok := m.waited.front()
		if !ok {
			break
		}
		if remaining.Test(p) {
			return p
		}
		// Already pulled or committed through another path; drop the hint.
		m.waited.remove(p)
	}
	// Priority 2: current-epoch COW pages — free their slots ASAP. Consumed
	// entries advance a head index; the backing array is reused across
	// epochs (rotation resets both), so the queue never re-grows in steady
	// state.
	for !m.cfg.NoLiveCowPriority && m.liveCowHead < len(m.liveCowQueue) {
		p := m.liveCowQueue[m.liveCowHead]
		if remaining.Test(p) {
			return p
		}
		m.liveCowHead++
	}
	// Priority 3/4: previous-epoch interference classes.
	for c := 0; c < 4; c++ {
		for s.heads[c] < len(s.classes[c]) {
			p := int(s.classes[c][s.heads[c]])
			if remaining.Test(p) {
				return p
			}
			s.heads[c]++
		}
	}
	// Defensive fallback: anything left in the set.
	return remaining.NextSet(0)
}
