package core

import (
	"sort"

	"repro/internal/util"
)

// selector produces the next page to commit (SELECT_NEXT_PAGE, Algorithm 4).
// Selectors are rebuilt at every checkpoint from the previous epoch's
// statistics and consulted with the manager's mutex held — possibly by
// several committer workers in turn, each of which removes the page it was
// handed from the remaining set before releasing the lock.
type selector interface {
	// next returns the next page to commit, or -1 when the remaining set
	// is empty. remaining is the live LastDirty set: pages already pulled
	// by a worker or committed through other paths must be skipped.
	next(m *Manager, remaining *util.Bitset) int
}

// ascendingSelector flushes in ascending page order — the
// async-no-pattern baseline of §4.2 ("dirty pages are simply dumped in
// ascending order of their address"). A page the application is currently
// blocked on still jumps the queue: the baseline in the paper reports tens
// of thousands of waits per epoch that each resolve quickly, which is only
// possible if the committer serves waiters promptly; the baseline's
// ignorance is about the background order (no history classes, no live-COW
// slot recycling preference), not about starving blocked writers.
type ascendingSelector struct {
	cursor int
}

func (s *ascendingSelector) next(m *Manager, remaining *util.Bitset) int {
	for !m.cfg.NoWaitedHint {
		p, ok := m.waited.front()
		if !ok {
			break
		}
		if remaining.Test(p) {
			return p
		}
		// Already pulled or committed through another path; drop the hint.
		m.waited.remove(p)
	}
	p := remaining.NextSet(s.cursor)
	if p < 0 {
		// The cursor may have skipped pages committed out of band (waited
		// pages, COW copies); rescan from the start.
		p = remaining.NextSet(0)
	}
	if p >= 0 {
		s.cursor = p + 1
	}
	return p
}

// adaptiveSelector implements Algorithm 4:
//
//  1. the page the application is waiting on right now,
//  2. pages that triggered a copy-on-write in the current epoch (committing
//     them releases COW slots),
//  3. pages whose previous-epoch access type was WAIT, then COW, then
//     AVOIDED — each class ordered by earliest previous access (LastIndex),
//  4. any remaining pages (previous type AFTER, or no history), also by
//     earliest previous access, ties in ascending page order.
type adaptiveSelector struct {
	// classes[0..3]: WAIT, COW, AVOIDED, rest — page IDs sorted by
	// (LastIndex, page). Consumed front to back, skipping pages no longer
	// in the remaining set.
	classes [4][]int32
	heads   [4]int
}

// BuildAdaptiveSelectorForBench exposes adaptive-selector construction to
// the repository-level benchmark harness (the per-checkpoint setup cost of
// Algorithm 4); it has no other users.
func BuildAdaptiveSelectorForBench(dirty *util.Bitset, lastAT []AccessType, lastIndex []int32) {
	newAdaptiveSelector(dirty, lastAT, lastIndex)
}

// classOf maps a previous-epoch access type to its priority class.
func classOf(at AccessType) int {
	switch at {
	case Wait:
		return 0
	case Cow:
		return 1
	case Avoided:
		return 2
	default: // After, Untouched (no usable history)
		return 3
	}
}

// newAdaptiveSelector partitions the dirty set by previous-epoch access
// type. lastAT and lastIndex are indexed by page ID.
func newAdaptiveSelector(dirty *util.Bitset, lastAT []AccessType, lastIndex []int32) *adaptiveSelector {
	s := &adaptiveSelector{}
	for p := dirty.NextSet(0); p >= 0; p = dirty.NextSet(p + 1) {
		c := classOf(lastAT[p])
		s.classes[c] = append(s.classes[c], int32(p))
	}
	for c := range s.classes {
		cls := s.classes[c]
		sort.Slice(cls, func(i, j int) bool {
			a, b := cls[i], cls[j]
			if lastIndex[a] != lastIndex[b] {
				return lastIndex[a] < lastIndex[b]
			}
			return a < b
		})
	}
	return s
}

func (s *adaptiveSelector) next(m *Manager, remaining *util.Bitset) int {
	// Priority 1: a page the application is blocked on right now.
	for !m.cfg.NoWaitedHint {
		p, ok := m.waited.front()
		if !ok {
			break
		}
		if remaining.Test(p) {
			return p
		}
		// Already pulled or committed through another path; drop the hint.
		m.waited.remove(p)
	}
	// Priority 2: current-epoch COW pages — free their slots ASAP.
	for !m.cfg.NoLiveCowPriority && len(m.liveCowQueue) > 0 {
		p := m.liveCowQueue[0]
		if remaining.Test(p) {
			return p
		}
		m.liveCowQueue = m.liveCowQueue[1:]
	}
	// Priority 3/4: previous-epoch interference classes.
	for c := 0; c < 4; c++ {
		for s.heads[c] < len(s.classes[c]) {
			p := int(s.classes[c][s.heads[c]])
			if remaining.Test(p) {
				return p
			}
			s.heads[c]++
		}
	}
	// Defensive fallback: anything left in the set.
	return remaining.NextSet(0)
}
