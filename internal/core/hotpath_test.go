package core

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pagemem"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/util"
)

// gateStore blocks every WritePage until the test opens the gate, reporting
// the page that is about to block. It freezes the committer mid-epoch so
// the test can drive the fault handler against a known page state.
type gateStore struct {
	mu       sync.Mutex
	inflight chan int
	release  chan struct{}
	opened   bool
}

func newGateStore() *gateStore {
	g := &gateStore{inflight: make(chan int, 1024)}
	g.arm()
	return g
}

// arm re-closes the gate for the next epoch. Only call while no write is in
// flight.
func (g *gateStore) arm() {
	g.mu.Lock()
	g.release = make(chan struct{})
	g.opened = false
	g.mu.Unlock()
	for {
		select {
		case <-g.inflight:
			continue
		default:
			return
		}
	}
}

// open releases every blocked and future write until the next arm.
func (g *gateStore) open() {
	g.mu.Lock()
	if !g.opened {
		close(g.release)
		g.opened = true
	}
	g.mu.Unlock()
}

func (g *gateStore) gate() chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.release
}

func (g *gateStore) WritePage(epoch uint64, page int, data []byte, size int) error {
	g.inflight <- page
	<-g.gate()
	return nil
}

func (g *gateStore) EndEpoch(epoch uint64) error { return nil }

// TestAllocGateCowFaultPath drives two epochs of COW
// faults with the committer frozen mid-flush: the first epoch's faults may
// allocate page copies (the pool is cold), but once those copies are
// recycled the second epoch's COW faults must not touch the heap at all.
func TestAllocGateCowFaultPath(t *testing.T) {
	if util.RaceEnabled {
		t.Skip("race instrumentation skews exact allocation accounting")
	}
	const pages = 64
	const pageSize = 4096
	store := newGateStore()
	space := pagemem.NewSpace(pageSize)
	env := sim.NewRealEnv()
	// The gate holds with full instrumentation attached — tracing included:
	// the observability layer must not cost the warm COW fault path a single
	// allocation.
	met := obs.New(env.Now)
	met.Journal = obs.NewJournal(obs.DefaultJournalDepth)
	m := NewManager(Config{
		Env: env, Space: space, Store: store,
		Strategy: Adaptive, CowSlots: pages, CommitWorkers: 1, Name: "alloc-test",
		Metrics: met,
	})
	defer func() {
		store.open()
		m.Close()
	}()
	r := space.Alloc(pages*pageSize, false)
	for p := 0; p < pages; p++ {
		r.StoreByte(p*pageSize, byte(p))
	}

	// Epoch 1: freeze the committer on its first page, then fault every
	// other page into a COW slot — the pool is cold, so these allocate.
	cowEpoch := func(measure bool) uint64 {
		store.arm()
		m.Checkpoint()
		blocked := <-store.inflight // committer now InProgress on this page
		var before, after runtime.MemStats
		if measure {
			runtime.ReadMemStats(&before)
		}
		for p := 0; p < pages; p++ {
			if p == blocked {
				continue
			}
			r.StoreByte(p*pageSize, byte(p)^0xff)
		}
		if measure {
			runtime.ReadMemStats(&after)
		}
		store.open()
		m.WaitIdle()
		return after.Mallocs - before.Mallocs
	}
	cowEpoch(false) // warm the COW pool, the live-COW queue and the cow map
	if allocs := cowEpoch(true); allocs != 0 {
		t.Errorf("warm COW fault path allocated %d objects for %d faults, want 0", allocs, pages-1)
	}
	// The measured epoch schedules the 63 pages dirtied during epoch 1;
	// of the 63 pages written, the one the committer is frozen on was not
	// scheduled (AVOIDED) and the remaining 62 must all have taken COW
	// slots — otherwise the measurement drove the wrong handler path.
	stats := m.Stats()
	warm := stats[len(stats)-1]
	if warm.Cows != pages-2 {
		t.Fatalf("measured epoch took %d COW slots, want %d (test drove the wrong path)", warm.Cows, pages-2)
	}
	// The instrumentation must also have seen the faults it was attached
	// for: at least the measured epoch's COW faults, counted without having
	// allocated.
	if got := met.FaultsCow.Load(); got < uint64(pages-2) {
		t.Fatalf("metrics counted %d COW faults, want >= %d", got, pages-2)
	}
	if met.Journal.Len() == 0 {
		t.Fatal("trace journal recorded no events during the instrumented epochs")
	}
}

// TestSelectorBuildRacesRegionGrowth drives the off-critical-path selector
// build against concurrent metadata growth: right after every Checkpoint
// the application allocates a fresh region (larger than ensureLocked's 25%
// headroom) and faults into it, forcing the per-page arrays and the dirty
// bitsets to be reallocated while the first committer worker is bucketing
// the previous epoch off-lock. The builder must work from its locked
// snapshot — chasing the live slice headers here corrupts the flush order
// or races the growth (run under -race as part of the CI race suite).
func TestSelectorBuildRacesRegionGrowth(t *testing.T) {
	const pageSize = 4096
	const basePages = 16384
	space := pagemem.NewSpace(pageSize)
	m := NewManager(Config{
		Env: sim.NewRealEnv(), Space: space, Store: storage.NullStore{},
		Strategy: Adaptive, CowSlots: 64, CommitWorkers: 2, Name: "grow-race",
	})
	defer m.Close()
	base := space.Alloc(basePages*pageSize, true)
	for p := 0; p < basePages; p++ {
		base.Touch(p)
	}
	for e := 0; e < 6; e++ {
		m.Checkpoint()
		// Wait until a committer worker has actually claimed the build and
		// released the lock (white-box: this test lives in package core),
		// so the growth below lands while the bucketing runs off-lock. The
		// deadline covers the case where the build already finished.
		deadline := time.Now().Add(200 * time.Millisecond)
		for time.Now().Before(deadline) {
			m.mu.Lock()
			building := m.selBuilding
			m.mu.Unlock()
			if building {
				break
			}
			runtime.Gosched()
		}
		// Grow the tracked range by more than the 25% ensureLocked
		// headroom, highest page first: the very first fault lands beyond
		// the headroom and reallocates the per-page arrays and bitsets
		// mid-build.
		extraPages := space.NumPages() / 2
		extra := space.Alloc(extraPages*pageSize, true)
		_, count := extra.Pages()
		for i := count - 1; i >= 0; i-- {
			extra.Touch(i)
		}
		for p := 0; p < basePages; p++ {
			base.Touch(p) // keep the base dirty for the next epoch
		}
		m.WaitIdle()
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkCheckpointBlocked measures the time the application spends
// blocked inside Checkpoint() itself as the dirty set grows 8x over a
// fixed-size space. The adaptive selector build used to run O(d log d)
// under the manager lock on this path; it now runs on the first committer
// worker, so blocked time must stay flat in the dirty-page count.
func BenchmarkCheckpointBlocked(b *testing.B) {
	const totalPages = 32768
	const pageSize = 4096
	for _, dirty := range []int{totalPages / 8, totalPages / 2, totalPages} {
		b.Run(benchName(dirty), func(b *testing.B) {
			space := pagemem.NewSpace(pageSize)
			m := NewManager(Config{
				Env: sim.NewRealEnv(), Space: space, Store: storage.NullStore{},
				Strategy: Adaptive, CowSlots: totalPages, CommitWorkers: 1, Name: "blocked-bench",
			})
			defer m.Close()
			r := space.Alloc(totalPages*pageSize, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for p := 0; p < dirty; p++ {
					r.Touch(p)
				}
				m.WaitIdle() // blocked time below measures rotation only
				b.StartTimer()
				m.Checkpoint()
				b.StopTimer()
				m.WaitIdle()
				b.StartTimer()
			}
			stats := m.Stats()
			var blocked float64
			for _, s := range stats {
				blocked += float64(s.BlockedInCheckpoint.Nanoseconds())
			}
			if len(stats) > 0 {
				b.ReportMetric(blocked/float64(len(stats)), "blocked-ns/ckpt")
			}
		})
	}
}

func benchName(dirty int) string {
	switch {
	case dirty >= 1<<10:
		return "dirty" + itoa(dirty>>10) + "k"
	default:
		return "dirty" + itoa(dirty)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
