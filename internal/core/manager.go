package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/pagemem"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/util"
)

// Manager is the page manager of one application process (Figure 1 of the
// paper). It consists of the two concurrent modules of §3.3: the
// asynchronous committer (ASYNC_COMMIT) and the write-fault handler
// (PROTECTED_PAGE_HANDLER), which compete for the monitored pages and
// synchronize through the manager's mutex and condition variables.
//
// The committer is a pipeline of Config.CommitWorkers concurrent workers:
// each pulls the next page from the flush-order selector under the manager
// lock, then performs the storage write off-lock, so independent page
// writes overlap and the background flush approaches the aggregate
// bandwidth of the backend instead of a single stream's. An epoch-end
// barrier orders every page write before the single EndEpoch seal.
type Manager struct {
	cfg   Config
	env   sim.Env
	space *pagemem.Space
	store storage.Backend
	obs   *obs.Metrics // nil: observability disabled

	mu            sync.Locker
	committerKick sim.Cond // committer <- Checkpoint notifications
	pageDone      sim.Cond // handler <- committer page/slot notifications
	ckptDone      sim.Cond // Checkpoint/WaitIdle/worker barrier <- epoch seal
	exitDone      sim.Cond // Close <- committer exit

	epoch      uint64 //aickpt:guardedby mu
	inProgress bool   //aickpt:guardedby mu
	closed     bool   //aickpt:guardedby mu
	exited     bool   //aickpt:guardedby mu
	firstErr   error  //aickpt:guardedby mu

	workers       int  //aickpt:guardedby mu (committer workers spawned, 0 for Sync)
	exitedWorkers int  //aickpt:guardedby mu (workers that have returned)
	inflight      int  //aickpt:guardedby mu (pages pulled by a worker but not yet Processed)
	sealing       bool //aickpt:guardedby mu (a worker is inside EndEpoch for the current epoch)

	// Per-page metadata, indexed by global page ID (§3.3 data structures).
	npages    int
	state     []PageState
	at        []AccessType
	index     []int32
	lastAT    []AccessType
	lastIndex []int32
	dirty     *util.Bitset
	lastDirty *util.Bitset

	accessOrder int32
	liveRanges  [][2]int // rotation scratch: live [first, end) page ranges

	// Selector prediction scorecard state. flushRank records the pull
	// order of the current epoch's flush (1-based, 0 = not pulled);
	// together with index (the fault arrival order) it feeds the
	// footrule accumulated in m.cur. heatShift buckets a page id into
	// the per-epoch fault heatmaps: bucket = page >> heatShift, clamped.
	flushRank []int32
	flushSeq  int32
	heatShift uint

	cow          map[int][]byte //aickpt:guardedby mu (page -> pre-write copy; nil value: phantom)
	cowUsed      int            //aickpt:guardedby mu
	cowPool      [][]byte       //aickpt:guardedby mu (recycled COW page copies, bounded by CowSlots)
	waited       pageQueue      //aickpt:guardedby mu (pages the application is blocked on, WaitedPage)
	liveCowQueue []int          //aickpt:guardedby mu (pages that took a COW slot this epoch)
	liveCowHead  int            //aickpt:guardedby mu (consumed prefix of liveCowQueue)

	// The selectors are embedded and rebuilt in place each epoch, so the
	// steady-state epoch setup allocates nothing. The adaptive selector is
	// built lazily by the first committer worker to enter the epoch —
	// off the application-blocking path — guarded by selReady/selBuilding.
	sel         selector
	adaptive    adaptiveSelector
	ascend      ascendingSelector
	selReady    bool         //aickpt:guardedby mu (current epoch's selector is built)
	selBuilding bool         //aickpt:guardedby mu (a worker is building it with m.mu released)
	selDirty    *util.Bitset // builder's dirty-set snapshot (reused scratch)

	cur     EpochStats
	history []EpochStats
}

// NewManager builds a manager over cfg.Space, installs its fault handler and
// (for the asynchronous strategies) starts the committer workers.
func NewManager(cfg Config) *Manager {
	if cfg.Env == nil || cfg.Space == nil || cfg.Store == nil {
		panic("core: Config needs Env, Space and Store")
	}
	if cfg.CowSlots < 0 {
		panic("core: negative CowSlots")
	}
	if cfg.CommitWorkers < 0 {
		panic("core: negative CommitWorkers")
	}
	if cfg.CommitWorkers == 0 {
		cfg.CommitWorkers = 1
	}
	if cfg.Name == "" {
		cfg.Name = "aickpt"
	}
	m := &Manager{
		cfg:       cfg,
		env:       cfg.Env,
		space:     cfg.Space,
		store:     cfg.Store,
		obs:       cfg.Metrics,
		epoch:     cfg.FirstEpoch,
		cow:       map[int][]byte{},
		dirty:     util.NewBitset(0),
		lastDirty: util.NewBitset(0),
	}
	m.mu = m.env.NewMutex()
	m.committerKick = m.env.NewCond(m.mu)
	m.pageDone = m.env.NewCond(m.mu)
	m.ckptDone = m.env.NewCond(m.mu)
	m.exitDone = m.env.NewCond(m.mu)
	m.space.SetFaultHandler(m.handleFault)
	if cfg.Strategy == Sync {
		// Pre-publication: m is not shared until NewManager returns, so
		// these init writes need no lock.
		m.exited = true //aickpt:allow guardedby pre-publication init
	} else {
		m.workers = cfg.CommitWorkers //aickpt:allow guardedby pre-publication init
		//aickpt:allow guardedby pre-publication init
		for w := 0; w < m.workers; w++ {
			w := w
			m.env.Go(fmt.Sprintf("%s-committer-%d", cfg.Name, w), func() { m.committer(w) })
		}
	}
	return m
}

// Strategy returns the configured strategy.
func (m *Manager) Strategy() Strategy { return m.cfg.Strategy }

// Epoch returns the number of checkpoints requested so far.
func (m *Manager) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Err returns the first storage error encountered, if any.
func (m *Manager) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.firstErr
}

// ensureLocked grows the per-page metadata to cover at least n pages.
func (m *Manager) ensureLocked(n int) {
	if n <= m.npages {
		return
	}
	grow := n + n/4
	st := make([]PageState, grow)
	copy(st, m.state)
	m.state = st
	at := make([]AccessType, grow)
	copy(at, m.at)
	m.at = at
	idx := make([]int32, grow)
	copy(idx, m.index)
	m.index = idx
	lat := make([]AccessType, grow)
	copy(lat, m.lastAT)
	m.lastAT = lat
	lidx := make([]int32, grow)
	copy(lidx, m.lastIndex)
	m.lastIndex = lidx
	fr := make([]int32, grow)
	copy(fr, m.flushRank)
	m.flushRank = fr
	m.dirty.Grow(grow)
	m.lastDirty.Grow(grow)
	m.npages = grow
}

// Checkpoint initiates a checkpoint (the CHECKPOINT primitive). For the
// asynchronous strategies it implements Algorithm 1: wait for a previous
// checkpoint to complete, rotate the epoch bookkeeping, write-protect all
// pages and wake the committer; the application does not block during the
// flush itself. For the Sync strategy it commits the whole dirty set inline
// before returning.
func (m *Manager) Checkpoint() {
	start := m.env.Now()
	// Acquire the space's write gate before rotating, so no application
	// store that already passed its fault check is still copying into a
	// page we are about to schedule (lock order: writeGate, then m.mu —
	// the same order the fault handler uses).
	for {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			panic("core: Checkpoint on closed manager")
		}
		for m.inProgress {
			m.ckptDone.Wait()
		}
		m.mu.Unlock()
		m.space.LockWrites()
		m.mu.Lock()
		if !m.inProgress {
			break
		}
		// A concurrent Checkpoint rotated first; retry.
		m.mu.Unlock()
		m.space.UnlockWrites()
	}
	blocked := m.env.Now() - start
	m.rotateLocked(start, blocked)
	m.space.UnlockWrites()
	if m.cfg.Strategy == Sync {
		m.syncCommitLocked()
		if m.obs != nil {
			// The whole inline flush counts as app-blocked time.
			b := int64(m.cur.BlockedInCheckpoint)
			m.obs.CheckpointsTotal.Inc()
			m.obs.CheckpointBlockedNs.Observe(b)
			m.obs.Trace(obs.StageCheckpoint, m.epoch, -1, 0, b)
		}
		m.mu.Unlock()
		return
	}
	if m.obs != nil {
		m.obs.CheckpointsTotal.Inc()
		m.obs.CheckpointBlockedNs.Observe(int64(blocked))
		m.obs.Trace(obs.StageCheckpoint, m.epoch, -1, 0, int64(blocked))
	}
	m.inProgress = true
	switch m.cfg.Strategy {
	case Adaptive:
		// Only name the selector here: the O(dirty) class build runs on
		// the first committer worker to enter the epoch, after Checkpoint
		// has returned, so the application never blocks on it.
		m.sel = &m.adaptive
		m.selReady = false
	case NoPattern:
		m.ascend = ascendingSelector{}
		m.sel = &m.ascend
		m.selReady = true
	}
	m.committerKick.Broadcast()
	m.mu.Unlock()
}

// rotateLocked swaps the epoch data structures (Algorithm 1 lines 5-17) and
// finalizes the closing epoch's statistics.
func (m *Manager) rotateLocked(start, blocked time.Duration) {
	m.ensureLocked(m.space.NumPages())
	if m.epoch > m.cfg.FirstEpoch {
		m.finalizeScorecardLocked()
		m.history = append(m.history, m.cur)
	}
	m.epoch++
	// Swap current/previous epoch structures; the new current starts clean.
	m.dirty, m.lastDirty = m.lastDirty, m.dirty
	m.dirty.Reset()
	m.at, m.lastAT = m.lastAT, m.at
	m.index, m.lastIndex = m.lastIndex, m.index
	m.accessOrder = 0
	m.waited.reset()
	// Reset the live-COW queue to its backing array's start: the selector
	// consumes it through liveCowHead, so one array serves every epoch
	// instead of the pop-by-reslice re-growing it each time.
	m.liveCowQueue = m.liveCowQueue[:0]
	m.liveCowHead = 0
	// Re-protect every live page and reset its access record, one region
	// batch at a time (a per-page Protect loop would redo the region
	// lookup for every page while the application is blocked on the write
	// gate).
	m.liveRanges = m.liveRanges[:0]
	m.space.ProtectLiveRegions(func(first, count int) {
		clear(m.at[first : first+count])
		clear(m.index[first : first+count])
		clear(m.flushRank[first : first+count])
		m.liveRanges = append(m.liveRanges, [2]int{first, first + count})
	})
	m.flushSeq = 0
	// Size the heatmap buckets to the tracked page space; pages grown
	// into existence mid-epoch clamp into the last bucket.
	m.heatShift = 0
	for m.npages>>m.heatShift > obs.HeatBuckets {
		m.heatShift++
	}
	// Schedule the dirty pages of the closing epoch; drop freed pages. Both
	// the dirty set and the range list are ascending, so one merged scan
	// decides liveness without a per-page region lookup.
	committed := 0
	ri := 0
	for p := m.lastDirty.NextSet(0); p >= 0; p = m.lastDirty.NextSet(p + 1) {
		for ri < len(m.liveRanges) && p >= m.liveRanges[ri][1] {
			ri++
		}
		if ri == len(m.liveRanges) || p < m.liveRanges[ri][0] {
			m.lastDirty.Clear(p)
			continue
		}
		m.state[p] = Scheduled
		committed++
	}
	m.cur = EpochStats{
		Epoch:               m.epoch,
		PagesCommitted:      committed,
		BytesCommitted:      int64(committed) * int64(m.space.PageSize()),
		BlockedInCheckpoint: blocked,
		Start:               start,
	}
}

// finalizeScorecardLocked closes out the departing epoch's selector
// prediction scorecard (its fault window ends at this rotation) and
// publishes the once-per-epoch scorecard metric families. Runs at
// rotation, off the per-page hot path.
func (m *Manager) finalizeScorecardLocked() {
	m.cur.FaultArrivals = int(m.accessOrder)
	if m.obs != nil {
		m.obs.SelectorHitRatePm.Observe(int64(m.cur.HitRate() * 1000))
		m.obs.SelectorRankCorrPm.Observe(int64(m.cur.RankCorrelation() * 1000))
		m.obs.WaitedQueuePeak.Observe(int64(m.cur.MaxWaitedDepth))
	}
}

// notePullLocked records that page p was pulled for commit as the next
// page of the epoch's flush order, and accumulates the footrule pair if
// the page already faulted this epoch (the fault handler accumulates
// the pair for the opposite arrival order). A few integer ops under the
// lock already held — nothing allocates.
func (m *Manager) notePullLocked(p int) {
	m.flushSeq++
	m.flushRank[p] = m.flushSeq
	if fi := m.index[p]; fi != 0 {
		m.cur.FootruleSum += footrule(m.flushSeq, fi)
		m.cur.RankPairs++
	}
}

// footrule is |a - b| widened to int64.
func footrule(a, b int32) int64 {
	d := int64(a) - int64(b)
	if d < 0 {
		d = -d
	}
	return d
}

// heatBucketLocked maps a page id into the per-epoch heatmaps.
func (m *Manager) heatBucketLocked(page int) int {
	b := page >> m.heatShift
	if b >= obs.HeatBuckets {
		b = obs.HeatBuckets - 1
	}
	return b
}

// syncCommitLocked flushes the scheduled set inline in ascending page order
// with the application blocked — the sync baseline of §4.2.
func (m *Manager) syncCommitLocked() {
	epoch := m.epoch
	pageSize := m.space.PageSize()
	for p := m.lastDirty.NextSet(0); p >= 0; p = m.lastDirty.NextSet(p + 1) {
		m.notePullLocked(p)
		data := m.space.PageData(p)
		m.mu.Unlock()
		err := m.store.WritePage(epoch, p, data, pageSize)
		m.mu.Lock()
		m.noteErrLocked(err)
		m.state[p] = Processed
		m.lastDirty.Clear(p)
	}
	m.mu.Unlock()
	var sstart time.Duration
	if m.obs != nil {
		sstart = m.env.Now()
	}
	err := m.store.EndEpoch(epoch)
	m.mu.Lock()
	m.noteErrLocked(err)
	now := m.env.Now()
	d := now - m.cur.Start
	m.cur.Duration = d
	m.cur.BlockedInCheckpoint += d
	if m.obs != nil {
		m.obs.Span(obs.SpanCommit, epoch, 0, m.cur.Start, now)
		m.obs.Span(obs.SpanSeal, epoch, 0, sstart, now)
	}
}

// committer is one worker of the ASYNC_COMMIT module (Algorithm 3,
// parallelized): it drains the scheduled set together with its peers,
// committing the COW copy when one exists and otherwise locking the page,
// writing it and notifying any waiting writer.
func (m *Manager) committer(worker int) {
	m.mu.Lock()
	for {
		for !m.inProgress && !m.closed {
			m.committerKick.Wait()
		}
		if !m.inProgress {
			break
		}
		m.flushEpochLocked(worker)
	}
	m.exitedWorkers++
	if m.exitedWorkers == m.workers {
		m.exited = true
		m.exitDone.Broadcast()
	}
	m.mu.Unlock()
}

// flushEpochLocked is one worker's participation in the current epoch's
// flush. Pages are pulled from the selector under the lock — pulling clears
// the page from the remaining set, so no two workers ever commit the same
// page — and written to storage off-lock, concurrently with the other
// workers. When the selector runs dry the worker joins the epoch-end
// barrier: the worker that observes the last in-flight write retired seals
// the epoch with a single EndEpoch, the rest wait for the seal (or for the
// next epoch to start). Called and returns with m.mu held.
func (m *Manager) flushEpochLocked(worker int) {
	epoch := m.epoch
	pageSize := m.space.PageSize()
	// Build the epoch's selector if it is not ready yet: the first worker
	// in claims the build and runs it with the lock released, so a
	// fault-handler caller is never blocked behind the bucketing. The
	// inputs are snapshotted under the lock first: the *contents* of
	// LastDirty/LastAT/LastIndex are frozen between rotation and the first
	// page pull (no page is pulled before selReady), but a fault on a page
	// past the tracked range makes ensureLocked swap in grown arrays, so
	// the builder must not chase the live slice headers. The snapshot
	// headers stay valid because growth copies into fresh arrays and never
	// writes the old ones; the bitset is copied into a reusable scratch
	// because Grow mutates the bitset struct in place. Late workers wait.
	for !m.selReady && m.inProgress && m.epoch == epoch {
		if m.selBuilding {
			m.committerKick.Wait()
			continue
		}
		m.selBuilding = true
		if m.selDirty == nil || m.selDirty.Len() != m.lastDirty.Len() {
			m.selDirty = m.lastDirty.Clone()
		} else {
			m.selDirty.CopyFrom(m.lastDirty)
		}
		dirty, lastAT, lastIndex := m.selDirty, m.lastAT, m.lastIndex
		m.mu.Unlock()
		bstart := m.obs.Now()
		m.adaptive.build(dirty, lastAT, lastIndex)
		if m.obs != nil {
			bend := m.obs.Now()
			d := int64(bend - bstart)
			m.obs.SelectorBuildNs.Observe(d)
			m.obs.TraceAt(bend, obs.StageSelect, epoch, -1, 0, d)
		}
		m.mu.Lock()
		m.selBuilding = false
		m.selReady = true
		m.committerKick.Broadcast()
	}
	for m.inProgress && m.epoch == epoch {
		p := m.sel.nextLocked(m, m.lastDirty)
		if p < 0 {
			break
		}
		// Pull: from here on this worker owns the page. Clearing it from
		// the remaining set keeps the other workers (and the selector's
		// stale-entry skipping) away from it.
		m.lastDirty.Clear(p)
		m.notePullLocked(p)
		isCow := m.at[p] == Cow
		var data []byte
		if isCow {
			data = m.cow[p]
		} else {
			data = m.space.PageData(p)
		}
		m.state[p] = InProgress
		m.inflight++
		m.mu.Unlock()
		// Off-lock write. For a non-COW page the slice aliases live memory,
		// but any application write to it first faults and blocks until the
		// page is Processed, so the content cannot change underneath us.
		wstart := m.obs.Now()
		err := m.store.WritePage(epoch, p, data, pageSize)
		if m.obs != nil {
			wend := m.obs.Now()
			d := int64(wend - wstart)
			m.obs.CommitWriteNs.Observe(d)
			m.obs.CommitPages.Inc()
			m.obs.CommitBytes.Add(uint64(pageSize))
			m.obs.WorkerPages[obs.WorkerIndex(worker)].Inc()
			m.obs.TraceAt(wend, obs.StageWrite, epoch, int32(p), 0, d)
		}
		m.mu.Lock()
		m.noteErrLocked(err)
		if isCow {
			delete(m.cow, p)
			m.cowUsed--
			if m.obs != nil {
				m.obs.CowInUse.Add(-1)
			}
			// A slot was released: writers blocked for lack of slots
			// could proceed... but per Algorithm 2 they wait for their
			// page; waking them re-checks the predicate harmlessly.
			if data != nil {
				// Recycle the copy for the next COW fault: the store
				// contract makes data invalid past WritePage's return, so
				// nothing references it anymore. The pool never exceeds
				// CowSlots entries (at most that many copies exist at once).
				m.cowPool = append(m.cowPool, data)
			}
		}
		m.state[p] = Processed
		m.inflight--
		m.pageDone.Broadcast()
	}
	// Epoch-end barrier. The epoch is complete when the remaining set is
	// empty (the selector just ran dry and nothing re-enters it mid-epoch)
	// and no pulled page is still being written. Exactly one worker claims
	// the seal; the others wait on ckptDone, re-checking against the epoch
	// number in case they wake into an already-started next epoch (then
	// they return and re-enter through the committer loop).
	for m.inProgress && m.epoch == epoch {
		if m.inflight == 0 && !m.sealing {
			m.sealing = true
			if m.cowUsed != 0 || len(m.cow) != 0 {
				panic(fmt.Sprintf("core: %d COW slots leaked at end of epoch %d", m.cowUsed, epoch))
			}
			estart := m.cur.Start
			m.mu.Unlock()
			sstart := m.obs.Now()
			err := m.store.EndEpoch(epoch)
			if m.obs != nil {
				send := m.obs.Now()
				d := int64(send - sstart)
				m.obs.SealNs.Observe(d)
				m.obs.EpochsSealed.Inc()
				m.obs.TraceAt(send, obs.StageSeal, epoch, -1, 0, d)
				// Lifecycle spans, from the same clock reads: the commit
				// span covers the whole local phase with the seal as its
				// final child.
				m.obs.Span(obs.SpanCommit, epoch, 0, estart, send)
				m.obs.Span(obs.SpanSeal, epoch, 0, sstart, send)
			}
			m.mu.Lock()
			m.noteErrLocked(err)
			m.sealing = false
			m.inProgress = false
			m.cur.Duration = m.env.Now() - m.cur.Start
			m.ckptDone.Broadcast()
			return
		}
		m.ckptDone.Wait()
	}
}

// handleFault is the PROTECTED_PAGE_HANDLER module (Algorithm 2), invoked
// by the pagemem substrate on the first write to a protected page.
//
//aickpt:hotpath
func (m *Manager) handleFault(page int) {
	cost := m.cfg.FaultCost
	var fstart time.Duration
	if m.obs != nil {
		fstart = m.obs.Now()
	}
	m.mu.Lock()
	m.ensureLocked(page + 1)
	if !m.space.IsProtected(page) {
		// Another thread handled this page between the fault and the lock.
		m.mu.Unlock()
		return
	}
	switch {
	case m.state[page] == Scheduled && m.cowUsed < m.cfg.CowSlots:
		// Take a copy-on-write slot: the committer will flush the copy,
		// the application writes the original immediately. Copies come
		// from the recycle pool when one is free — the fault path then
		// allocates only while the pool warms up.
		var cp []byte
		if data := m.space.PageData(page); data != nil {
			if n := len(m.cowPool); n > 0 {
				cp = m.cowPool[n-1][:len(data)]
				m.cowPool[n-1] = nil
				m.cowPool = m.cowPool[:n-1]
			} else {
				cp = make([]byte, len(data))
			}
			copy(cp, data)
		}
		m.cow[page] = cp
		m.cowUsed++
		m.at[page] = Cow
		m.cur.Cows++
		m.liveCowQueue = append(m.liveCowQueue, page)
		cost += m.cfg.CowCopyCost
		if m.obs != nil {
			m.obs.FaultsCow.Inc()
			m.obs.CowInUse.Add(1)
			m.obs.Trace(obs.StageCow, m.epoch, int32(page), 0, int64(m.cowUsed))
		}
	case m.state[page] == Processed:
		if m.inProgress {
			m.at[page] = Avoided
			m.cur.Avoided++
			if m.obs != nil {
				m.obs.FaultsAvoided.Inc()
			}
		} else {
			m.at[page] = After
			m.cur.After++
			if m.obs != nil {
				m.obs.FaultsAfter.Inc()
			}
		}
	default:
		// Page in flight, or scheduled with no free COW slot: wait until
		// the committer processes it, hinting it via the waited queue so
		// the selectors maximize its priority. The queue dedups on enqueue,
		// so several threads blocking on one page share a single entry.
		m.waited.push(page)
		if d := m.waited.len(); d > m.cur.MaxWaitedDepth {
			m.cur.MaxWaitedDepth = d
		}
		waitStart := m.env.Now()
		for m.state[page] != Processed {
			m.pageDone.Wait()
		}
		m.waited.remove(page)
		m.at[page] = Wait
		m.cur.Waits++
		waited := m.env.Now() - waitStart
		m.cur.WaitTime += waited
		if m.obs != nil {
			m.obs.FaultsWait.Inc()
			m.obs.FaultWaitNs.Observe(int64(waited))
			m.obs.Trace(obs.StageWait, m.epoch, int32(page), 0, int64(waited))
		}
	}
	m.dirty.Set(page)
	m.accessOrder++
	m.index[page] = m.accessOrder
	// Scorecard: if the page was already pulled for commit this epoch we
	// now know both its predicted and actual rank (the pull site handles
	// the opposite order), and the fault lands in the heatmap. Plain
	// integer ops under the lock — the fault path stays allocation-free.
	if fr := m.flushRank[page]; fr != 0 {
		m.cur.FootruleSum += footrule(fr, m.accessOrder)
		m.cur.RankPairs++
	}
	hb := m.heatBucketLocked(page)
	m.cur.FaultHeat[hb]++
	if m.at[page] == Cow {
		m.cur.CowHeat[hb]++
	}
	epoch := m.epoch
	m.space.Unprotect(page)
	m.mu.Unlock()
	if m.obs != nil {
		fend := m.obs.Now()
		d := int64(fend - fstart)
		m.obs.FaultNs.Observe(d)
		m.obs.TraceAt(fend, obs.StageFault, epoch, int32(page), 0, d)
	}
	if cost > 0 {
		m.env.Sleep(cost)
	}
}

func (m *Manager) noteErrLocked(err error) {
	if err != nil && m.firstErr == nil {
		m.firstErr = err
	}
}

// WaitIdle blocks until no checkpoint is in progress.
func (m *Manager) WaitIdle() {
	m.mu.Lock()
	for m.inProgress {
		m.ckptDone.Wait()
	}
	m.mu.Unlock()
}

// Free releases a protected region through the manager: it waits for any
// in-flight checkpoint (whose committer may still need the region's pages),
// drops the pages from the dirty set and frees the region.
func (m *Manager) Free(r *pagemem.Region) {
	m.mu.Lock()
	for m.inProgress {
		m.ckptDone.Wait()
	}
	first, count := r.Pages()
	for p := first; p < first+count && p < m.npages; p++ {
		m.dirty.Clear(p)
	}
	m.mu.Unlock()
	r.Free()
}

// Close drains the in-flight checkpoint, stops the committer and detaches
// the fault handler. The manager must not be used afterwards.
func (m *Manager) Close() {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		m.committerKick.Broadcast()
	}
	for !m.exited {
		m.exitDone.Wait()
	}
	m.mu.Unlock()
	m.space.SetFaultHandler(nil)
}

// Stats returns per-checkpoint statistics: all finalized epochs plus the
// current one (whose access counters may still grow if the application
// keeps writing).
func (m *Manager) Stats() []EpochStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]EpochStats, 0, len(m.history)+1)
	out = append(out, m.history...)
	if m.epoch > m.cfg.FirstEpoch {
		cur := m.cur
		// The live epoch's fault window is still open; report the
		// arrivals so far (finalized for good at the next rotation).
		cur.FaultArrivals = int(m.accessOrder)
		out = append(out, cur)
	}
	return out
}

// Scorecards renders the selector prediction scorecard of every epoch
// reported by Stats, in the observability wire form.
func (m *Manager) Scorecards() []obs.Scorecard {
	stats := m.Stats()
	out := make([]obs.Scorecard, len(stats))
	for i, ep := range stats {
		out[i] = ep.Scorecard()
	}
	return out
}
