package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/pagemem"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/util"
)

// Exactly-once delivery under the parallel pipeline: for a spread of worker
// counts, with application goroutines interfering mid-flush, every page
// dirtied before a checkpoint is committed exactly once for that epoch and
// the COW buffer always drains back to zero. Run with -race.
func TestParallelCommitExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			const nPages = 64
			fs := &ckpt.MemFS{}
			trace := &storage.TracingStore{Next: ckpt.NewRepository(fs, testPageSize)}
			space := pagemem.NewSpace(testPageSize)
			m := NewManager(Config{
				Env:           sim.NewRealEnv(),
				Space:         space,
				Store:         trace,
				Strategy:      Adaptive,
				CowSlots:      4,
				CommitWorkers: workers,
				Name:          "par",
			})
			defer m.Close()
			r := space.Alloc(nPages*testPageSize, false)

			// Interferers keep rewriting the low half of the region while
			// checkpoints are in flight, exercising COW, WAIT and AVOIDED
			// paths against multiple committer workers.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := util.NewRNG(uint64(g + 1))
					for {
						select {
						case <-stop:
							return
						default:
						}
						p := rng.Intn(nPages / 2)
						r.StoreByte(p*testPageSize+g, byte(rng.Uint64()))
					}
				}(g)
			}

			mustDirty := map[uint64][]int{}
			for e := 1; e <= 4; e++ {
				// The main thread deterministically dirties the high half;
				// those pages must appear in the next epoch's commits.
				var known []int
				for p := nPages / 2; p < nPages; p++ {
					if (p+e)%3 != 0 {
						r.StoreByte(p*testPageSize, byte(e))
						known = append(known, p)
					}
				}
				m.Checkpoint()
				mustDirty[m.Epoch()] = known
			}
			m.WaitIdle()
			close(stop)
			wg.Wait()
			m.WaitIdle()
			if err := m.Err(); err != nil {
				t.Fatal(err)
			}

			// The COW buffer drained back to zero.
			m.mu.Lock()
			if m.cowUsed != 0 || len(m.cow) != 0 {
				t.Errorf("COW slots leaked: used=%d map=%d", m.cowUsed, len(m.cow))
			}
			m.mu.Unlock()

			perEpoch := map[uint64]map[int]int{}
			for _, c := range trace.Commits() {
				if perEpoch[c.Epoch] == nil {
					perEpoch[c.Epoch] = map[int]int{}
				}
				perEpoch[c.Epoch][c.Page]++
			}
			for epoch, pages := range perEpoch {
				for p, n := range pages {
					if n != 1 {
						t.Fatalf("epoch %d page %d committed %d times", epoch, p, n)
					}
				}
			}
			for epoch, known := range mustDirty {
				for _, p := range known {
					if perEpoch[epoch][p] != 1 {
						t.Fatalf("epoch %d: dirtied page %d not committed (workers=%d)", epoch, p, workers)
					}
				}
			}
			// Every epoch sealed exactly once, in order.
			if got := trace.Sealed(); len(got) != 4 {
				t.Fatalf("sealed epochs = %v, want 4", got)
			}
			// The chain restores cleanly.
			if _, err := ckpt.Restore(fs); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// countingFailStore fails every WritePage and counts seals.
type countingFailStore struct {
	err error

	mu     sync.Mutex
	writes int
	seals  []uint64
}

func (c *countingFailStore) WritePage(epoch uint64, page int, data []byte, size int) error {
	c.mu.Lock()
	c.writes++
	c.mu.Unlock()
	return c.err
}

func (c *countingFailStore) EndEpoch(epoch uint64) error {
	c.mu.Lock()
	c.seals = append(c.seals, epoch)
	c.mu.Unlock()
	return nil
}

// A failing backend under many workers: the epoch still completes (waiters
// must not hang), is sealed exactly once, and the first error is surfaced
// exactly once through Err.
func TestParallelCommitErrorFailsEpochOnce(t *testing.T) {
	store := &countingFailStore{err: errors.New("backend down")}
	space := pagemem.NewSpace(testPageSize)
	m := NewManager(Config{
		Env:           sim.NewRealEnv(),
		Space:         space,
		Store:         store,
		Strategy:      NoPattern,
		CommitWorkers: 4,
		Name:          "fail",
	})
	defer m.Close()
	r := space.Alloc(16*testPageSize, false)
	fill(r, 1)
	m.Checkpoint()
	m.WaitIdle()
	if !errors.Is(m.Err(), store.err) {
		t.Fatalf("Err() = %v, want %v", m.Err(), store.err)
	}
	fill(r, 2)
	m.Checkpoint() // the manager keeps operating after a failed epoch
	m.WaitIdle()
	store.mu.Lock()
	defer store.mu.Unlock()
	if fmt.Sprint(store.seals) != fmt.Sprint([]uint64{1, 2}) {
		t.Errorf("seals = %v, want each epoch sealed exactly once", store.seals)
	}
	if store.writes != 32 {
		t.Errorf("writes = %d, want 32 (every page attempted despite errors)", store.writes)
	}
}

// chainSignature reduces a repository chain to its logical content: for
// every sealed epoch, the set of (page, content-hash) pairs it recorded —
// physical records and dedup refs alike. Two chains with equal signatures
// restore identically at every epoch.
func chainSignature(t *testing.T, fs ckpt.FS) map[uint64]map[int]uint64 {
	t.Helper()
	ms, err := ckpt.ListSealed(fs)
	if err != nil {
		t.Fatal(err)
	}
	sig := map[uint64]map[int]uint64{}
	for _, m := range ms {
		entry := map[int]uint64{}
		if len(m.Hashes) != len(m.Pages) {
			t.Fatalf("epoch %d: %d hashes for %d pages", m.Epoch, len(m.Hashes), len(m.Pages))
		}
		for i, p := range m.Pages {
			entry[p] = m.Hashes[i]
		}
		for _, ref := range m.Refs {
			entry[ref.Page] = ref.Hash
		}
		sig[m.Epoch] = entry
	}
	return sig
}

// runScriptedWorkload runs a deterministic multi-epoch workload against a
// fresh manager with the given worker count and returns the backing FS.
// The script writes pages both between checkpoints and immediately after
// them (interfering with the in-flight flush), so parallel runs exercise
// COW/WAIT/AVOIDED races — yet the committed content of every epoch is the
// content at checkpoint-request time, a pure function of the script.
func runScriptedWorkload(t *testing.T, seed uint64, workers int) *ckpt.MemFS {
	t.Helper()
	const nPages = 48
	fs := &ckpt.MemFS{}
	space := pagemem.NewSpace(testPageSize)
	m := NewManager(Config{
		Env:           sim.NewRealEnv(),
		Space:         space,
		Store:         ckpt.NewRepository(fs, testPageSize),
		Strategy:      Adaptive,
		CowSlots:      3,
		CommitWorkers: workers,
		Name:          "script",
	})
	defer m.Close()
	r := space.Alloc(nPages*testPageSize, false)
	rng := util.NewRNG(seed)
	buf := make([]byte, testPageSize)
	writePage := func(p int, stamp byte) {
		for i := range buf {
			buf[i] = byte(p)*3 ^ stamp ^ byte(i%7)
		}
		r.Write(p*testPageSize, buf)
	}
	for e := 1; e <= 5; e++ {
		for i := 0; i < 30; i++ {
			writePage(rng.Intn(nPages), byte(rng.Uint64()))
		}
		m.Checkpoint()
		// Post-checkpoint interference: rewrite pages while the epoch is
		// still flushing. The epoch must commit the pre-write content.
		for i := 0; i < 12; i++ {
			writePage(rng.Intn(nPages), byte(rng.Uint64()))
		}
	}
	m.WaitIdle()
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	return fs
}

// Property: a parallel commit pipeline produces a chain logically identical
// to the serial committer's — same per-epoch page/content-hash sets, and a
// bit-identical restored image — for random workloads and worker counts.
func TestParallelSerialChainsEquivalent(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			serialFS := runScriptedWorkload(t, seed, 1)
			serialSig := chainSignature(t, serialFS)
			serialIm, err := ckpt.Restore(serialFS)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8} {
				parFS := runScriptedWorkload(t, seed, workers)
				parSig := chainSignature(t, parFS)
				if len(parSig) != len(serialSig) {
					t.Fatalf("workers=%d: %d sealed epochs, serial sealed %d", workers, len(parSig), len(serialSig))
				}
				for epoch, want := range serialSig {
					got := parSig[epoch]
					if len(got) != len(want) {
						t.Fatalf("workers=%d epoch %d: %d pages, serial committed %d", workers, epoch, len(got), len(want))
					}
					for p, h := range want {
						if got[p] != h {
							t.Fatalf("workers=%d epoch %d page %d: content hash %x, serial %x", workers, epoch, p, got[p], h)
						}
					}
				}
				parIm, err := ckpt.Restore(parFS)
				if err != nil {
					t.Fatal(err)
				}
				if parIm.Epoch != serialIm.Epoch || len(parIm.Pages) != len(serialIm.Pages) {
					t.Fatalf("workers=%d: restored (epoch %d, %d pages), serial (epoch %d, %d pages)",
						workers, parIm.Epoch, len(parIm.Pages), serialIm.Epoch, len(serialIm.Pages))
				}
				for p, data := range serialIm.Pages {
					if !bytes.Equal(parIm.Pages[p], data) {
						t.Fatalf("workers=%d: restored page %d differs from serial baseline", workers, p)
					}
				}
			}
		})
	}
}

// A waited page must still jump the flush queue when several application
// threads block on distinct pages at once: the dedup queue serves them in
// arrival order and each wait resolves in about one page-commit time, not
// a whole flush.
func TestParallelWaitedPagesResolve(t *testing.T) {
	const nPages = 32
	space := pagemem.NewSpace(testPageSize)
	slow := &slowStore{delay: time.Millisecond}
	m := NewManager(Config{
		Env:           sim.NewRealEnv(),
		Space:         space,
		Store:         slow,
		Strategy:      Adaptive,
		CowSlots:      0, // every in-flight touch must wait
		CommitWorkers: 4,
		Name:          "waiters",
	})
	defer m.Close()
	r := space.Alloc(nPages*testPageSize, false)
	fill(r, 1)
	m.Checkpoint()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Touch the tail pages, which the ascending-ish flush reaches
			// last: without the waited-page hint these waits would take
			// nearly the whole flush.
			r.StoreByte((nPages-1-g)*testPageSize, byte(g))
		}(g)
	}
	wg.Wait()
	m.WaitIdle()
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st[0].Waits == 0 {
		t.Skip("no waits drawn (flush finished before the touches)")
	}
	perWait := st[0].WaitTime / time.Duration(st[0].Waits)
	if perWait > time.Duration(nPages/2)*slow.delay {
		t.Errorf("average wait %v, want well under half the flush (%v)", perWait, time.Duration(nPages)*slow.delay)
	}
}

// slowStore sleeps per write, simulating a slow backend in real time.
type slowStore struct{ delay time.Duration }

func (s *slowStore) WritePage(uint64, int, []byte, int) error {
	time.Sleep(s.delay)
	return nil
}
func (s *slowStore) EndEpoch(uint64) error { return nil }

// pageQueue unit behavior: FIFO with dedup-on-enqueue and lazy removal.
func TestPageQueue(t *testing.T) {
	var q pageQueue
	q.push(3)
	q.push(7)
	q.push(3) // duplicate: single entry survives
	if q.len() != 2 {
		t.Fatalf("len = %d, want 2", q.len())
	}
	if p, ok := q.front(); !ok || p != 3 {
		t.Fatalf("front = %d,%v, want 3", p, ok)
	}
	q.remove(3)
	if p, ok := q.front(); !ok || p != 7 {
		t.Fatalf("front after remove = %d,%v, want 7", p, ok)
	}
	q.remove(7)
	if _, ok := q.front(); ok {
		t.Fatal("queue not empty after removing everything")
	}
	q.push(9)
	if p, ok := q.front(); !ok || p != 9 {
		t.Fatalf("front after reuse = %d,%v, want 9", p, ok)
	}
	q.reset()
	if q.len() != 0 {
		t.Fatal("reset left entries")
	}
	if _, ok := q.front(); ok {
		t.Fatal("reset queue has a front")
	}
}
