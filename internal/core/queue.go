package core

// pageQueue is a FIFO of page IDs with deduplication on enqueue and O(1)
// removal. It replaces the plain waited-page slice the selectors used to
// re-slice in place: that slice aliased the backing array the fault handler
// removed entries from by index, and several application threads blocking on
// the same page accumulated duplicate entries. The queue is manipulated only
// with the manager's mutex held; dedup makes it safe for any number of
// blocked writers and any number of committer workers consuming it.
type pageQueue struct {
	order  []int        // arrival order; may contain dead entries
	member map[int]bool // pages currently enqueued
	head   int          // first possibly-live index in order
}

// push enqueues a page unless it is already queued.
func (q *pageQueue) push(p int) {
	if q.member == nil {
		q.member = make(map[int]bool)
	}
	if q.member[p] {
		return
	}
	q.member[p] = true
	q.order = append(q.order, p)
}

// remove dequeues a page wherever it sits (lazy: the slot in order is
// skipped once the cursor reaches it).
func (q *pageQueue) remove(p int) {
	delete(q.member, p)
}

// front returns the oldest live entry without consuming it, or ok=false
// when the queue is empty. Dead slots in front are compacted away.
func (q *pageQueue) front() (p int, ok bool) {
	for q.head < len(q.order) {
		p = q.order[q.head]
		if q.member[p] {
			return p, true
		}
		q.head++
	}
	q.order = q.order[:0]
	q.head = 0
	return 0, false
}

// len returns the number of live entries.
func (q *pageQueue) len() int { return len(q.member) }

// reset clears the queue (epoch rotation).
func (q *pageQueue) reset() {
	q.order = q.order[:0]
	q.head = 0
	for p := range q.member {
		delete(q.member, p)
	}
}
