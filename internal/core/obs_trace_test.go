package core

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/pagemem"
	"repro/internal/sim"
	"repro/internal/storage"
)

// TestTraceJournalVirtualTime runs a checkpoint under the virtual-time
// kernel with full instrumentation: the trace journal must contain the
// commit lifecycle in order (fault before checkpoint before write before
// seal), and the event timestamps must be virtual — quantized to the
// simulated disk's 100ms-per-page service time, which no real clock
// produces.
func TestTraceJournalVirtualTime(t *testing.T) {
	const pages = 4
	k := sim.NewKernel()
	met := obs.New(k.Now)
	met.Journal = obs.NewJournal(256)
	space := pagemem.NewSpace(testPageSize)
	link := netsim.NewLink(k, netsim.LinkConfig{Name: "disk", BytesPerSec: 10 * testPageSize})
	m := NewManager(Config{
		Env: k, Space: space, Store: storage.NewSimDisk(link),
		Strategy: Adaptive, CowSlots: pages, Name: "vt-trace", Metrics: met,
	})
	r := space.Alloc(pages*testPageSize, true)
	k.Go("app", func() {
		for i := 0; i < pages; i++ {
			r.Touch(i)
		}
		m.Checkpoint()
		m.WaitIdle()
		m.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	events := met.Journal.Snapshot()
	if len(events) == 0 {
		t.Fatal("virtual-time run produced no trace events")
	}
	first := map[obs.Stage]int{}
	var writeAts []time.Duration
	for i, e := range events {
		if i > 0 && e.Seq <= events[i-1].Seq {
			t.Fatalf("journal out of order at %d: seq %d after %d", i, e.Seq, events[i-1].Seq)
		}
		if _, ok := first[e.Stage]; !ok {
			first[e.Stage] = i
		}
		if e.Stage == obs.StageWrite {
			writeAts = append(writeAts, e.At)
		}
	}
	for _, want := range []obs.Stage{obs.StageFault, obs.StageCheckpoint, obs.StageWrite, obs.StageSeal} {
		if _, ok := first[want]; !ok {
			t.Fatalf("no %v event in %d-event trace", want, len(events))
		}
	}
	if !(first[obs.StageFault] < first[obs.StageCheckpoint] &&
		first[obs.StageCheckpoint] < first[obs.StageWrite] &&
		first[obs.StageWrite] < first[obs.StageSeal]) {
		t.Fatalf("lifecycle out of order: fault@%d checkpoint@%d write@%d seal@%d",
			first[obs.StageFault], first[obs.StageCheckpoint], first[obs.StageWrite], first[obs.StageSeal])
	}
	if len(writeAts) != pages {
		t.Fatalf("traced %d page writes, want %d", len(writeAts), pages)
	}
	// Virtual timestamps: the simulated disk serves one page per 100ms, so
	// write k completes at exactly (k+1)*100ms of virtual time.
	for i, at := range writeAts {
		want := time.Duration(i+1) * 100 * time.Millisecond
		if at != want {
			t.Fatalf("write %d traced at %v, want virtual %v", i, at, want)
		}
	}
	// The latency histograms observed in virtual time too: each write took
	// exactly 100ms of virtual time.
	snap := met.CommitWriteNs.Snapshot()
	if snap.Count != pages {
		t.Fatalf("commit_write_ns count = %d, want %d", snap.Count, pages)
	}
	if snap.Max != uint64(100*time.Millisecond) {
		t.Fatalf("commit_write_ns max = %v, want 100ms of virtual time", time.Duration(snap.Max))
	}
}
