// Package netsim models network and I/O channels in virtual time for the
// AI-Ckpt evaluation harness. A Link serializes transfers at a configured
// bandwidth with a per-message latency and setup overhead, exactly the way a
// NIC or a disk head serializes requests: contention between the
// application's communication and the background checkpointing traffic
// emerges from FIFO queueing on the shared link.
package netsim

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/sim"
)

// LinkConfig describes a serial transfer channel.
type LinkConfig struct {
	// Name appears in diagnostics.
	Name string
	// BytesPerSec is the sustained bandwidth; must be > 0.
	BytesPerSec float64
	// Latency is the one-way propagation delay added to every transfer
	// (it does not occupy the link).
	Latency time.Duration
	// PerMessage is fixed channel occupancy per message regardless of
	// size (request setup, seek, small-write penalty). It occupies the
	// link and is the lever that reproduces the paper's observation that
	// many concurrent 4 KB writes overload PVFS servers.
	PerMessage time.Duration
}

// Link is a FIFO shared channel. Concurrent Transfer calls queue in strict
// arrival order: admission uses a ticket lock, so a caller that finishes a
// transfer and immediately starts another cannot starve earlier arrivals
// (a plain condition-variable guard would allow exactly that, because the
// releaser can re-acquire before a signaled waiter wakes).
type Link struct {
	env sim.Env
	cfg LinkConfig
	mu  sync.Locker

	cond    sim.Cond
	next    uint64 //aickpt:guardedby mu
	serving uint64 //aickpt:guardedby mu

	down bool //aickpt:guardedby mu (failure-injection state: link unreachable)

	// stats, guarded by mu
	messages  int64
	bytes     int64         //aickpt:guardedby mu
	busyTime  time.Duration //aickpt:guardedby mu
	queueTime time.Duration //aickpt:guardedby mu
}

// NewLink returns a link bound to env.
func NewLink(env sim.Env, cfg LinkConfig) *Link {
	if cfg.BytesPerSec <= 0 {
		panic(fmt.Sprintf("netsim: link %q has non-positive bandwidth", cfg.Name))
	}
	mu := env.NewMutex()
	return &Link{
		env:  env,
		cfg:  cfg,
		mu:   mu,
		cond: env.NewCond(mu),
	}
}

// Config returns the link's configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// serialize computes how long the link is occupied by a transfer of n bytes.
func (l *Link) serialize(n int64) time.Duration {
	secs := float64(n) / l.cfg.BytesPerSec
	return l.cfg.PerMessage + time.Duration(secs*float64(time.Second))
}

// Transfer moves n bytes across the link, blocking the calling process for
// queueing + serialization + propagation latency. It must be called from a
// process of the link's Env.
func (l *Link) Transfer(n int64) {
	if n < 0 {
		panic("netsim: negative transfer size")
	}
	enq := l.env.Now()
	l.mu.Lock()
	ticket := l.next
	l.next++
	for ticket != l.serving {
		l.cond.Wait()
	}
	start := l.env.Now()
	l.queueTime += start - enq
	l.mu.Unlock()

	occupied := l.serialize(n)
	l.env.Sleep(occupied)

	l.mu.Lock()
	l.serving++
	l.messages++
	l.bytes += n
	l.busyTime += occupied
	l.cond.Broadcast()
	l.mu.Unlock()

	if l.cfg.Latency > 0 {
		l.env.Sleep(l.cfg.Latency)
	}
}

// Fail marks the link unreachable: subsequent TryTransfer calls fail
// immediately without consuming virtual time, modeling a partitioned node
// or a dead storage path. Transfers already queued complete normally.
func (l *Link) Fail() {
	l.mu.Lock()
	l.down = true
	l.mu.Unlock()
}

// Heal reverses Fail.
func (l *Link) Heal() {
	l.mu.Lock()
	l.down = false
	l.mu.Unlock()
}

// Down reports whether the link is currently failed.
func (l *Link) Down() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down
}

// TryTransfer is Transfer with failure awareness: it returns false
// immediately — consuming no virtual time — when the link is down at
// admission, and otherwise performs the full transfer and returns true.
// Tier drains use it so a partitioned peer surfaces as a retryable store
// failure instead of a hang.
func (l *Link) TryTransfer(n int64) bool {
	if l.Down() {
		return false
	}
	l.Transfer(n)
	return true
}

// Stats is a snapshot of link usage counters.
type Stats struct {
	Messages  int64
	Bytes     int64
	BusyTime  time.Duration
	QueueTime time.Duration
}

// Stats returns a snapshot of the usage counters.
func (l *Link) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Messages: l.messages, Bytes: l.bytes, BusyTime: l.busyTime, QueueTime: l.queueTime}
}
