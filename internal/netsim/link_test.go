package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestLinkSerializationTime(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, LinkConfig{Name: "disk", BytesPerSec: 1 << 20}) // 1 MB/s
	var took time.Duration
	k.Go("p", func() {
		start := k.Now()
		l.Transfer(1 << 20)
		took = k.Now() - start
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if took != time.Second {
		t.Errorf("1MB over 1MB/s took %v, want 1s", took)
	}
}

func TestLinkLatencyAndOverhead(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, LinkConfig{
		Name:        "net",
		BytesPerSec: 1 << 20,
		Latency:     100 * time.Microsecond,
		PerMessage:  time.Millisecond,
	})
	var took time.Duration
	k.Go("p", func() {
		start := k.Now()
		l.Transfer(0)
		took = k.Now() - start
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := time.Millisecond + 100*time.Microsecond
	if took != want {
		t.Errorf("zero-byte transfer took %v, want %v", took, want)
	}
}

func TestLinkFIFOContention(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, LinkConfig{Name: "disk", BytesPerSec: 1 << 20})
	finish := make(map[string]time.Duration)
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Go(name, func() {
			l.Transfer(1 << 20) // 1s each
			finish[name] = k.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// FIFO: a at 1s, b at 2s, c at 3s.
	want := map[string]time.Duration{"a": time.Second, "b": 2 * time.Second, "c": 3 * time.Second}
	for n, w := range want {
		if finish[n] != w {
			t.Errorf("%s finished at %v, want %v", n, finish[n], w)
		}
	}
	st := l.Stats()
	if st.Messages != 3 || st.Bytes != 3<<20 {
		t.Errorf("stats = %+v", st)
	}
	if st.BusyTime != 3*time.Second {
		t.Errorf("busy = %v", st.BusyTime)
	}
	// b queued 1s, c queued 2s.
	if st.QueueTime != 3*time.Second {
		t.Errorf("queue time = %v, want 3s", st.QueueTime)
	}
}

func TestLinkLatencyDoesNotOccupyChannel(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, LinkConfig{Name: "net", BytesPerSec: 1 << 20, Latency: 500 * time.Millisecond})
	var second time.Duration
	k.Go("a", func() { l.Transfer(1 << 20) })
	k.Go("b", func() {
		l.Transfer(1 << 20)
		second = k.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// b serializes right after a's serialization (at 2s) and then pays
	// latency: 2.5s total. If latency occupied the link it would be 3s.
	if second != 2500*time.Millisecond {
		t.Errorf("b finished at %v, want 2.5s", second)
	}
}

func TestLinkRejectsBadConfig(t *testing.T) {
	k := sim.NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero bandwidth")
		}
	}()
	NewLink(k, LinkConfig{Name: "bad"})
}

func TestLinkFailHeal(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, LinkConfig{Name: "nic", BytesPerSec: 1 << 20})
	var downOK, upOK bool
	var downCost time.Duration
	k.Go("p", func() {
		l.Fail()
		start := k.Now()
		downOK = l.TryTransfer(1 << 20)
		downCost = k.Now() - start
		l.Heal()
		upOK = l.TryTransfer(1 << 20)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if downOK || downCost != 0 {
		t.Errorf("down link: ok=%v cost=%v, want immediate failure", downOK, downCost)
	}
	if !upOK {
		t.Error("healed link refused a transfer")
	}
	if s := l.Stats(); s.Messages != 1 || s.Bytes != 1<<20 {
		t.Errorf("stats after one failed and one real transfer: %+v", s)
	}
}
