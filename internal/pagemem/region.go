package pagemem

import (
	"fmt"
	"sync/atomic"
)

// Region is a page-aligned protected allocation. Application code reads and
// writes it through the methods below; writes to protected pages fault into
// the space's handler first, exactly like a store to an mprotect'ed page.
type Region struct {
	space     *Space
	id        int
	firstPage int
	numPages  int
	sizeBytes int
	data      []byte   // nil for phantom regions
	prot      []uint32 // atomic protection bitmap, one bit per page
	freed     atomic.Bool
}

// ID returns the region's unique identifier within its space.
func (r *Region) ID() int { return r.id }

// Size returns the requested allocation size in bytes.
func (r *Region) Size() int { return r.sizeBytes }

// Pages returns the global page range [first, first+count) of the region.
func (r *Region) Pages() (first, count int) { return r.firstPage, r.numPages }

// Phantom reports whether the region has no backing bytes.
func (r *Region) Phantom() bool { return r.data == nil }

// Freed reports whether the region has been freed.
func (r *Region) Freed() bool { return r.freed.Load() }

func (r *Region) protBit(i int) bool {
	return atomic.LoadUint32(&r.prot[i>>5])&(1<<uint(i&31)) != 0
}

func (r *Region) setProt(i int, on bool) {
	for {
		old := atomic.LoadUint32(&r.prot[i>>5])
		var next uint32
		if on {
			next = old | 1<<uint(i&31)
		} else {
			next = old &^ (1 << uint(i&31))
		}
		if old == next || atomic.CompareAndSwapUint32(&r.prot[i>>5], old, next) {
			return
		}
	}
}

// protectAll write-protects every page of the region, one bitmap word at a
// time (bits past numPages are set too, matching Alloc; they are never
// read). Concurrent faulting writers observe each word's flip atomically,
// and the caller (epoch rotation) holds the space's write gate, so no
// store that already passed its fault check is in flight.
func (r *Region) protectAll() {
	for i := range r.prot {
		atomic.StoreUint32(&r.prot[i], ^uint32(0))
	}
}

// fault runs the write-fault path for region page i if it is protected.
func (r *Region) fault(i int) {
	if !r.protBit(i) {
		return
	}
	if h := r.space.handler.Load(); h != nil {
		(*h)(r.firstPage + i)
		return
	}
	// No manager installed: behave like unprotected memory.
	r.setProt(i, false)
}

func (r *Region) checkLive(op string) {
	if r.freed.Load() {
		panic(fmt.Sprintf("pagemem: %s on freed region %d", op, r.id))
	}
}

// Touch simulates a store to region page i without transferring bytes; it
// triggers the fault path if the page is protected. Phantom workloads drive
// the checkpointing runtime entirely through Touch.
func (r *Region) Touch(i int) {
	r.checkLive("Touch")
	if i < 0 || i >= r.numPages {
		panic(fmt.Sprintf("pagemem: Touch page %d out of range [0,%d)", i, r.numPages))
	}
	r.space.writeGate.RLock()
	r.fault(i)
	r.space.writeGate.RUnlock()
}

// Write copies src into the region at byte offset off, faulting each
// covered protected page before its bytes are modified (so a copy-on-write
// taken in the handler captures the pre-write image). It panics on phantom
// regions and out-of-range accesses.
func (r *Region) Write(off int, src []byte) {
	r.checkLive("Write")
	if r.data == nil {
		panic("pagemem: Write on phantom region")
	}
	if off < 0 || off+len(src) > r.sizeBytes {
		panic(fmt.Sprintf("pagemem: Write [%d,%d) out of range [0,%d)", off, off+len(src), r.sizeBytes))
	}
	ps := r.space.pageSize
	for len(src) > 0 {
		page := off / ps
		chunk := (page+1)*ps - off
		if chunk > len(src) {
			chunk = len(src)
		}
		r.space.writeGate.RLock()
		r.fault(page)
		copy(r.data[off:off+chunk], src[:chunk])
		r.space.writeGate.RUnlock()
		off += chunk
		src = src[chunk:]
	}
}

// StoreByte stores a single byte at off (convenience for byte-granular
// benchmark loops).
func (r *Region) StoreByte(off int, b byte) {
	r.checkLive("StoreByte")
	if r.data == nil {
		panic("pagemem: StoreByte on phantom region")
	}
	if off < 0 || off >= r.sizeBytes {
		panic(fmt.Sprintf("pagemem: StoreByte offset %d out of range", off))
	}
	r.space.writeGate.RLock()
	r.fault(off / r.space.pageSize)
	r.data[off] = b
	r.space.writeGate.RUnlock()
}

// Read copies region bytes [off, off+len(dst)) into dst. Reads never fault
// (read access is always permitted, as in the paper).
func (r *Region) Read(off int, dst []byte) {
	r.checkLive("Read")
	if r.data == nil {
		panic("pagemem: Read on phantom region")
	}
	if off < 0 || off+len(dst) > r.sizeBytes {
		panic(fmt.Sprintf("pagemem: Read [%d,%d) out of range [0,%d)", off, off+len(dst), r.sizeBytes))
	}
	copy(dst, r.data[off:off+len(dst)])
}

// Bytes returns the region's backing store (nil for phantom regions). The
// slice aliases live memory; mutating it bypasses protection. It exists for
// checkpoint restore, which rebuilds memory images in place.
func (r *Region) Bytes() []byte { return r.data }

// Free releases the region: its pages leave the space and all further
// access panics. When the region is managed by a checkpoint manager, free
// it through the manager instead so in-flight commits complete first.
func (r *Region) Free() {
	if r.freed.Swap(true) {
		return
	}
	r.space.release(r)
}
