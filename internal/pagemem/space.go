// Package pagemem provides the protected-memory substrate of AI-Ckpt: paged
// regions whose first write after protection triggers a fault handler.
//
// The paper traps writes with mprotect+SIGSEGV. A Go runtime cannot safely
// interpose on its own segfault handler, so pagemem implements the same
// trap semantics in software: all application stores go through Region
// write methods, which check a per-page protection bit and synchronously
// invoke the registered handler before the store proceeds — exactly the
// sequence the kernel performs for a write-protected page. See DESIGN.md §2.
//
// Regions may be "phantom" (no backing bytes): the evaluation harness uses
// phantom regions to simulate hundreds of GB of aggregate protected memory
// while modeling only timing.
package pagemem

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// FaultHandler is called on the first write to a protected page, identified
// by its global page ID. The handler runs before the store proceeds and is
// responsible for clearing the page's protection (via Space.Unprotect); if
// it does not, every subsequent write faults again.
type FaultHandler func(page int)

// Space is an address space of protected regions sharing one page size and
// one fault handler. A Space is safe for concurrent use by multiple
// application threads in real-time mode; under the simulation kernel all
// accesses are naturally serialized.
type Space struct {
	pageSize int

	mu       sync.RWMutex
	regions  []*Region // sorted by firstPage, live only
	nextPage int
	nextID   int

	// writeGate orders page stores against epoch rotation: every store
	// holds it shared for the fault-check-plus-copy of one page, and the
	// checkpoint's protect-all holds it exclusively, so a store that
	// passed its fault check can never race a flush that begins
	// afterwards (which would let the committer capture a torn page).
	writeGate sync.RWMutex

	handler atomic.Pointer[FaultHandler]
}

// NewSpace returns an empty space with the given page size.
func NewSpace(pageSize int) *Space {
	if pageSize <= 0 {
		panic(fmt.Sprintf("pagemem: invalid page size %d", pageSize))
	}
	return &Space{pageSize: pageSize}
}

// PageSize returns the page size in bytes.
func (s *Space) PageSize() int { return s.pageSize }

// NumPages returns the high-water mark of allocated global page IDs
// (freed regions' IDs are not reused).
func (s *Space) NumPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextPage
}

// SetFaultHandler installs h as the write-fault handler.
func (s *Space) SetFaultHandler(h FaultHandler) {
	if h == nil {
		s.handler.Store(nil)
		return
	}
	s.handler.Store(&h)
}

// Alloc creates a protected region of n bytes (rounded up to whole pages).
// If phantom is true the region has no backing bytes and only its access
// metadata exists. New regions start fully write-protected, as required by
// the design ("initially, any new protected memory region is marked as
// read-only").
func (s *Space) Alloc(n int, phantom bool) *Region {
	if n <= 0 {
		panic(fmt.Sprintf("pagemem: invalid allocation size %d", n))
	}
	pages := (n + s.pageSize - 1) / s.pageSize
	r := &Region{
		space:     s,
		numPages:  pages,
		sizeBytes: n,
		prot:      make([]uint32, (pages+31)/32),
	}
	if !phantom {
		r.data = make([]byte, pages*s.pageSize)
	}
	for i := range r.prot {
		r.prot[i] = ^uint32(0)
	}
	s.mu.Lock()
	r.id = s.nextID
	s.nextID++
	r.firstPage = s.nextPage
	s.nextPage += pages
	s.regions = append(s.regions, r)
	s.mu.Unlock()
	return r
}

// lookup resolves a global page ID to its live region, or nil if the page
// belongs to no live region.
func (s *Space) lookup(page int) *Region {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := sort.Search(len(s.regions), func(i int) bool {
		return s.regions[i].firstPage+s.regions[i].numPages > page
	})
	if i < len(s.regions) && s.regions[i].firstPage <= page {
		return s.regions[i]
	}
	return nil
}

// Protect write-protects a page; the next write to it faults. Protecting a
// freed page is a no-op.
func (s *Space) Protect(page int) {
	if r := s.lookup(page); r != nil {
		r.setProt(page-r.firstPage, true)
	}
}

// Unprotect clears a page's write protection.
func (s *Space) Unprotect(page int) {
	if r := s.lookup(page); r != nil {
		r.setProt(page-r.firstPage, false)
	}
}

// IsProtected reports whether the page is currently write-protected.
func (s *Space) IsProtected(page int) bool {
	r := s.lookup(page)
	return r != nil && r.protBit(page-r.firstPage)
}

// PageData returns the backing bytes of a page, or nil for phantom or freed
// pages. The returned slice aliases the region's memory.
func (s *Space) PageData(page int) []byte {
	r := s.lookup(page)
	if r == nil || r.data == nil {
		return nil
	}
	off := (page - r.firstPage) * s.pageSize
	return r.data[off : off+s.pageSize]
}

// ProtectLiveRegions write-protects every live region in one pass, calling
// f with each region's global page range [first, first+count) after its
// pages are protected. CHECKPOINT uses it to re-protect the whole space at
// epoch rotation: protection is set a whole bitmap word at a time per
// region, and f lets the caller batch-reset its own per-page bookkeeping
// for the same range — where a per-page Protect loop would redo the
// region lookup (lock + binary search) for every single page while the
// application is blocked on the write gate. f may be nil.
func (s *Space) ProtectLiveRegions(f func(first, count int)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, r := range s.regions {
		r.protectAll()
		if f != nil {
			f(r.firstPage, r.numPages)
		}
	}
}

// ForEachLivePage calls f for every page of every live region, in global
// page order — a general iteration helper for tools and tests. CHECKPOINT's
// epoch rotation uses ProtectLiveRegions instead, which batches per region.
func (s *Space) ForEachLivePage(f func(page int)) {
	s.mu.RLock()
	regions := make([]*Region, len(s.regions))
	copy(regions, s.regions)
	s.mu.RUnlock()
	for _, r := range regions {
		for i := 0; i < r.numPages; i++ {
			f(r.firstPage + i)
		}
	}
}

// Live reports whether page belongs to a live (non-freed) region.
func (s *Space) Live(page int) bool { return s.lookup(page) != nil }

// LockWrites blocks until no page store is in flight and prevents new ones;
// the page manager holds it while re-protecting the space at a checkpoint.
func (s *Space) LockWrites() { s.writeGate.Lock() }

// UnlockWrites releases LockWrites.
func (s *Space) UnlockWrites() { s.writeGate.Unlock() }

// release removes a region from the space (called by Region.Free).
func (s *Space) release(r *Region) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, reg := range s.regions {
		if reg == r {
			s.regions = append(s.regions[:i], s.regions[i+1:]...)
			return
		}
	}
}
