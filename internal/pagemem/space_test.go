package pagemem

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/util"
)

func TestAllocStartsProtected(t *testing.T) {
	s := NewSpace(64)
	r := s.Alloc(200, false) // 4 pages
	first, count := r.Pages()
	if first != 0 || count != 4 {
		t.Fatalf("pages = %d,%d", first, count)
	}
	for i := 0; i < count; i++ {
		if !s.IsProtected(first + i) {
			t.Errorf("page %d not protected after alloc", i)
		}
	}
	if r.Size() != 200 {
		t.Errorf("size = %d", r.Size())
	}
}

func TestWriteFaultsOncePerPage(t *testing.T) {
	s := NewSpace(16)
	r := s.Alloc(64, false) // 4 pages
	var faults []int
	s.SetFaultHandler(func(page int) {
		faults = append(faults, page)
		s.Unprotect(page)
	})
	r.Write(0, make([]byte, 20)) // spans pages 0,1
	r.Write(4, []byte{1, 2})     // page 0 again: no fault
	r.StoreByte(50, 9)           // page 3
	if len(faults) != 3 || faults[0] != 0 || faults[1] != 1 || faults[2] != 3 {
		t.Errorf("faults = %v", faults)
	}
	// Re-protect and write again: faults again.
	s.Protect(0)
	r.StoreByte(3, 1)
	if len(faults) != 4 || faults[3] != 0 {
		t.Errorf("faults after re-protect = %v", faults)
	}
}

func TestFaultSeesPreWriteContent(t *testing.T) {
	s := NewSpace(8)
	r := s.Alloc(8, false)
	var snapshot []byte
	s.SetFaultHandler(func(page int) {
		snapshot = append([]byte(nil), s.PageData(page)...)
		s.Unprotect(page)
	})
	r.Write(0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if !bytes.Equal(snapshot, make([]byte, 8)) {
		t.Errorf("handler saw post-write content: %v", snapshot)
	}
	got := make([]byte, 8)
	r.Read(0, got)
	if !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Errorf("read back %v", got)
	}
}

func TestNoHandlerActsUnprotected(t *testing.T) {
	s := NewSpace(16)
	r := s.Alloc(16, false)
	r.Write(0, []byte{42}) // must not panic
	if s.IsProtected(0) {
		t.Error("page still protected after unhandled fault")
	}
}

func TestPhantomRegionTouch(t *testing.T) {
	s := NewSpace(4096)
	r := s.Alloc(3*4096, true)
	var faults int
	s.SetFaultHandler(func(page int) {
		faults++
		s.Unprotect(page)
	})
	for i := 0; i < 3; i++ {
		r.Touch(i)
		r.Touch(i)
	}
	if faults != 3 {
		t.Errorf("faults = %d, want 3", faults)
	}
	if s.PageData(0) != nil {
		t.Error("phantom region has page data")
	}
	defer func() {
		if recover() == nil {
			t.Error("Write on phantom region should panic")
		}
	}()
	r.Write(0, []byte{1})
}

func TestMultipleRegionsGlobalIDs(t *testing.T) {
	s := NewSpace(32)
	a := s.Alloc(64, false) // pages 0,1
	b := s.Alloc(32, false) // page 2
	af, ac := a.Pages()
	bf, bc := b.Pages()
	if af != 0 || ac != 2 || bf != 2 || bc != 1 {
		t.Fatalf("ranges: a=%d+%d b=%d+%d", af, ac, bf, bc)
	}
	if s.NumPages() != 3 {
		t.Errorf("NumPages = %d", s.NumPages())
	}
	var pages []int
	s.ForEachLivePage(func(p int) { pages = append(pages, p) })
	if len(pages) != 3 {
		t.Errorf("live pages = %v", pages)
	}
}

func TestFreeRemovesPages(t *testing.T) {
	s := NewSpace(32)
	a := s.Alloc(64, false)
	b := s.Alloc(64, false)
	a.Free()
	if s.Live(0) || !s.Live(2) {
		t.Error("liveness wrong after free")
	}
	if s.PageData(0) != nil {
		t.Error("freed page still has data")
	}
	var pages []int
	s.ForEachLivePage(func(p int) { pages = append(pages, p) })
	if len(pages) != 2 || pages[0] != 2 {
		t.Errorf("live pages after free = %v", pages)
	}
	// Page IDs are not reused.
	c := s.Alloc(32, false)
	cf, _ := c.Pages()
	if cf != 4 {
		t.Errorf("new region first page = %d, want 4", cf)
	}
	a.Free() // double free is a no-op
	b.Free()
	defer func() {
		if recover() == nil {
			t.Error("access to freed region should panic")
		}
	}()
	b.Touch(0)
}

func TestWriteBounds(t *testing.T) {
	s := NewSpace(16)
	r := s.Alloc(32, false)
	for _, f := range []func(){
		func() { r.Write(-1, []byte{1}) },
		func() { r.Write(30, []byte{1, 2, 3}) },
		func() { r.Read(33, make([]byte, 1)) },
		func() { r.StoreByte(32, 1) },
		func() { r.Touch(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected bounds panic")
				}
			}()
			f()
		}()
	}
}

// Property: writing an arbitrary pattern through Region.Write (with a
// handler that unprotects) and reading it back returns the same bytes, and
// the set of faulted pages is exactly the set of pages covered by writes.
func TestWriteReadQuick(t *testing.T) {
	type op struct {
		off  int
		data []byte
	}
	f := func(seed uint64) bool {
		rng := util.NewRNG(seed)
		const pageSize, size = 32, 512
		s := NewSpace(pageSize)
		r := s.Alloc(size, false)
		faulted := map[int]bool{}
		s.SetFaultHandler(func(p int) {
			faulted[p] = true
			s.Unprotect(p)
		})
		ref := make([]byte, size)
		covered := map[int]bool{}
		for i := 0; i < 20; i++ {
			off := rng.Intn(size)
			n := rng.Intn(size - off)
			data := make([]byte, n)
			for j := range data {
				data[j] = byte(rng.Uint64())
			}
			r.Write(off, data)
			copy(ref[off:], data)
			for p := off / pageSize; p <= (off+n-1)/pageSize && n > 0; p++ {
				covered[p] = true
			}
		}
		got := make([]byte, size)
		r.Read(0, got)
		if !bytes.Equal(got, ref) {
			return false
		}
		if len(faulted) != len(covered) {
			return false
		}
		for p := range covered {
			if !faulted[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProtectLiveRegionsBatches(t *testing.T) {
	s := NewSpace(64)
	a := s.Alloc(64*4, false) // pages 0-3
	b := s.Alloc(64*3, false) // pages 4-6
	c := s.Alloc(64*2, false) // pages 7-8
	for p := 0; p < 9; p++ {
		s.Unprotect(p)
	}
	b.Free()
	var ranges [][2]int
	s.ProtectLiveRegions(func(first, count int) {
		ranges = append(ranges, [2]int{first, count})
	})
	want := [][2]int{{0, 4}, {7, 2}}
	if len(ranges) != len(want) || ranges[0] != want[0] || ranges[1] != want[1] {
		t.Fatalf("ranges = %v, want %v", ranges, want)
	}
	for _, r := range []*Region{a, c} {
		first, count := r.Pages()
		for p := first; p < first+count; p++ {
			if !s.IsProtected(p) {
				t.Errorf("live page %d not protected", p)
			}
		}
	}
	// A batch protect is equivalent to per-page Protect: the next write to
	// every live page faults exactly once.
	faults := map[int]int{}
	s.SetFaultHandler(func(p int) {
		faults[p]++
		s.Unprotect(p)
	})
	for i := 0; i < 2; i++ {
		a.StoreByte(0, 1)  // page 0
		c.StoreByte(64, 2) // page 8
	}
	if faults[0] != 1 || faults[8] != 1 {
		t.Errorf("fault counts = %v, want one fault each for pages 0 and 8", faults)
	}
}

func TestProtectLiveRegionsNilCallback(t *testing.T) {
	s := NewSpace(64)
	r := s.Alloc(64*2, false)
	first, count := r.Pages()
	for p := first; p < first+count; p++ {
		s.Unprotect(p)
	}
	s.ProtectLiveRegions(nil)
	for p := first; p < first+count; p++ {
		if !s.IsProtected(p) {
			t.Errorf("page %d not protected", p)
		}
	}
}
