package aickpt

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// corruptFile flips one byte of a repository file on disk.
func corruptFile(t *testing.T, path string, off int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off >= len(data) {
		t.Fatalf("corrupt offset %d beyond %q (%d bytes)", off, path, len(data))
	}
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func checkpointPages(t *testing.T, rt *Runtime, r *Region, pages, version int) {
	t.Helper()
	buf := make([]byte, rt.PageSize())
	for p := 0; p < pages; p++ {
		for i := range buf {
			buf[i] = byte(p*13 + version*29 + i)
		}
		r.Write(p*rt.PageSize(), buf)
	}
	rt.Checkpoint()
	rt.WaitIdle()
}

// TestHierarchyScrubRepairsFromLowerTier drives the full public loop: a
// tiered runtime with a directory-backed L1, silent corruption of a sealed
// segment on disk, and a Scrub that detects it and rebuilds it from the
// lower tier.
func TestHierarchyScrubRepairsFromLowerTier(t *testing.T) {
	dir := t.TempDir()
	rt, err := New(Options{
		PageSize: 4096,
		Tiers: []TierSpec{
			{Kind: TierLocal, Dir: dir},
			{Kind: TierPFS}, // in-memory lower tier
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rt.MallocProtected(4 * 4096)
	checkpointPages(t, rt, r, 4, 1)
	checkpointPages(t, rt, r, 2, 2)
	rt.Hierarchy().WaitDrained()

	im, _, err := rt.Hierarchy().Restore()
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, 4)
	for p := range want {
		want[p] = append([]byte(nil), im.Page(p)...)
	}

	// Silent corruption in a sealed epoch's payload bytes.
	corruptFile(t, filepath.Join(dir, "epoch-00000001.pages"), 100)

	rep, err := rt.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 1 || rep.Repaired != 1 || rep.Unrepaired != 0 {
		t.Fatalf("report = %+v, want 1 corrupt / 1 repaired", rep)
	}
	if len(rep.Entries) == 0 || !strings.Contains(rep.Entries[0].Action, "repaired from pfs") {
		t.Fatalf("entries = %+v, want a repair from the pfs tier", rep.Entries)
	}
	// Clean after repair, and the image is unchanged.
	if health, err := Verify(dir); err != nil {
		t.Fatal(err)
	} else {
		for _, h := range health {
			if h.Damaged {
				t.Errorf("entry %s still damaged after scrub: %s", h.Manifest, h.Detail)
			}
		}
	}
	im2, _, err := rt.Hierarchy().Restore()
	if err != nil {
		t.Fatal(err)
	}
	for p := range want {
		if !bytes.Equal(im2.Page(p), want[p]) {
			t.Errorf("page %d differs after repair", p)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRuntimeScrubVerifyOnlyWithDir: without redundant tiers scrub
// detects and reports damage but repairs nothing.
func TestRuntimeScrubVerifyOnlyWithDir(t *testing.T) {
	dir := t.TempDir()
	rt, err := New(Options{PageSize: 4096, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	r := rt.MallocProtected(2 * 4096)
	checkpointPages(t, rt, r, 2, 1)
	checkpointPages(t, rt, r, 1, 2)

	if rep, err := rt.Scrub(); err != nil || rep.Corrupt != 0 || rep.Checked == 0 {
		t.Fatalf("clean scrub = %+v, %v", rep, err)
	}
	corruptFile(t, filepath.Join(dir, "epoch-00000001.pages"), 64)
	rep, err := rt.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 1 || rep.Unrepaired != 1 || rep.Repaired != 0 {
		t.Fatalf("report = %+v, want 1 corrupt / 1 unrepaired", rep)
	}
	// Standalone Verify sees the same damage.
	health, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	damaged := 0
	for _, h := range health {
		if h.Damaged {
			damaged++
			if h.Status != HealthSegmentCorrupt {
				t.Errorf("status = %q, want %q", h.Status, HealthSegmentCorrupt)
			}
		}
	}
	if damaged != 1 {
		t.Errorf("Verify found %d damaged entries, want 1", damaged)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestScrubEndpoint covers POST /scrub on the debug server: method
// enforcement, a clean scrub report, and the unsupported path for custom
// stores.
func TestScrubEndpoint(t *testing.T) {
	rt, err := New(Options{
		PageSize:  4096,
		Tiers:     []TierSpec{{Kind: TierLocal}, {Kind: TierPFS}},
		DebugAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rt.MallocProtected(2 * 4096)
	checkpointPages(t, rt, r, 2, 1)
	rt.Hierarchy().WaitDrained()
	client := &http.Client{Timeout: 10 * time.Second}
	url := "http://" + rt.DebugAddr() + "/scrub"

	if resp, err := client.Get(url); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /scrub = %s, want 405 (scrub mutates)", resp.Status)
		}
	}
	resp, err := client.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /scrub = %s: %s", resp.Status, body)
	}
	if !strings.Contains(string(body), `"checked"`) {
		t.Errorf("scrub response not a report: %s", body)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	// A custom Store has nothing to scrub.
	rt2, err := New(Options{PageSize: 4096, Store: sinkStore{}, DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := client.Post("http://"+rt2.DebugAddr()+"/scrub", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotImplemented {
		t.Errorf("POST /scrub with a custom store = %s, want 501", resp2.Status)
	}
	if _, err := rt2.Scrub(); err == nil {
		t.Error("Runtime.Scrub with a custom store should error")
	}
	if err := rt2.Close(); err != nil {
		t.Fatal(err)
	}
}
