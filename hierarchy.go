package aickpt

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/ckpt"
	"repro/internal/multilevel"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TierKind names the kinds of tiers a checkpoint hierarchy can stack.
type TierKind int

const (
	// TierLocal is fast node-local storage (L1): a directory, or memory
	// when Dir is empty. Checkpoints are acknowledged once sealed here.
	TierLocal TierKind = iota
	// TierPeer erasure-codes pages into DataShards+ParityShards shards
	// spread over Nodes in-process peer stores, tolerating up to
	// ParityShards simultaneous node losses.
	TierPeer
	// TierPFS is the slowest, most resilient level: a directory on a
	// parallel file system mount (or memory when Dir is empty).
	TierPFS
)

// TierSpec describes one level of a checkpoint hierarchy, fastest first.
type TierSpec struct {
	Kind TierKind
	// Dir backs TierLocal/TierPFS tiers with a real directory; empty means
	// in-memory (tests, demos).
	Dir string
	// Nodes is the peer count for TierPeer; it must be at least
	// DataShards+ParityShards. Zero selects exactly
	// DataShards+ParityShards nodes.
	Nodes int
	// DataShards (k) and ParityShards (m) are the Reed-Solomon parameters
	// of a TierPeer tier: any k of the k+m shards reconstruct a page.
	DataShards, ParityShards int
}

// DrainPolicy bounds the background promotion of sealed checkpoints to
// lower tiers. The zero value selects defaults (queue depth 4, one worker
// per tier, 4 attempts, 10ms initial backoff doubling up to a 1s cap).
type DrainPolicy struct {
	QueueDepth   int
	Workers      int
	MaxAttempts  int
	RetryBackoff time.Duration
	// MaxRetryBackoff caps the doubling retry delay; 0 selects 1s.
	MaxRetryBackoff time.Duration
}

// Hierarchy is a multi-level checkpoint store: pages are acknowledged at
// local-tier speed and drained in the background to more resilient tiers.
// It implements Store, so it can back a Runtime directly (or be built for
// you via Options.Tiers). Restore is tier-aware: each epoch is read from
// the fastest tier that still holds it, reconstructing from surviving
// erasure shards when faster copies are lost.
type Hierarchy struct {
	inner *multilevel.Hierarchy
	peers []*multilevel.PeerTier
}

// NewHierarchy assembles a hierarchy from tier specs, fastest first. The
// first spec must be TierLocal.
func NewHierarchy(pageSize int, specs []TierSpec, drain DrainPolicy) (*Hierarchy, error) {
	return newHierarchy(pageSize, specs, drain, nil)
}

// newHierarchy additionally attaches an observability metric set: the L1
// repository records its write-path families and the drain pipeline its
// queue/retry/promotion families. A runtime built with Options.Tiers
// passes its metrics through here; standalone NewHierarchy callers get an
// uninstrumented hierarchy.
func newHierarchy(pageSize int, specs []TierSpec, drain DrainPolicy, metrics *obs.Metrics) (*Hierarchy, error) {
	if pageSize <= 0 {
		pageSize = 4096
	}
	if len(specs) == 0 || specs[0].Kind != TierLocal {
		return nil, fmt.Errorf("aickpt: hierarchy needs a TierLocal first tier")
	}
	env := sim.NewRealEnv()
	h := &Hierarchy{}
	var local *multilevel.LocalTier
	var lower []multilevel.Tier
	// Tier names must be unique: manifests and restore steps identify
	// tiers by name. The first tier of each kind keeps the bare name.
	used := map[string]int{}
	uniqueName := func(base string) string {
		used[base]++
		if used[base] == 1 {
			return base
		}
		return fmt.Sprintf("%s%d", base, used[base])
	}
	for i, spec := range specs {
		switch spec.Kind {
		case TierLocal, TierPFS:
			base := "local"
			if spec.Kind == TierPFS {
				base = "pfs"
			}
			name := uniqueName(base)
			var fs ckpt.FS
			if spec.Dir != "" {
				osfs, err := ckpt.NewOSFS(spec.Dir)
				if err != nil {
					return nil, err
				}
				fs = osfs
			} else {
				fs = &ckpt.MemFS{}
			}
			t := multilevel.NewLocalTier(env, name, fs, pageSize, nil)
			if i == 0 {
				local = t
			} else {
				lower = append(lower, t)
			}
		case TierPeer:
			if i == 0 {
				return nil, fmt.Errorf("aickpt: TierPeer cannot be the first tier")
			}
			k, m := spec.DataShards, spec.ParityShards
			if k <= 0 {
				k = 2
			}
			if m <= 0 {
				m = 1
			}
			n := spec.Nodes
			if n == 0 {
				n = k + m
			}
			if n < k+m {
				return nil, fmt.Errorf("aickpt: TierPeer needs Nodes >= DataShards+ParityShards (%d), got %d", k+m, n)
			}
			name := uniqueName("peer")
			nodes := make([]*multilevel.PeerNode, n)
			for j := range nodes {
				nodes[j] = multilevel.NewPeerNode(fmt.Sprintf("%s-node%d", name, j), nil)
			}
			peer, err := multilevel.NewPeerTier(name, k, m, nodes, nil)
			if err != nil {
				return nil, err
			}
			h.peers = append(h.peers, peer)
			lower = append(lower, peer)
		default:
			return nil, fmt.Errorf("aickpt: unknown tier kind %d", spec.Kind)
		}
	}
	if metrics != nil {
		// L1 only: lower-tier stores re-write the same records and would
		// double-count the repository families.
		local.SetMetrics(metrics)
	}
	inner, err := multilevel.New(multilevel.Config{
		Env:      env,
		PageSize: pageSize,
		Local:    local,
		Lower:    lower,
		Drain: multilevel.DrainPolicy{
			QueueDepth:      drain.QueueDepth,
			Workers:         drain.Workers,
			MaxAttempts:     drain.MaxAttempts,
			RetryBackoff:    drain.RetryBackoff,
			MaxRetryBackoff: drain.MaxRetryBackoff,
		},
		Metrics: metrics,
	})
	if err != nil {
		return nil, err
	}
	h.inner = inner
	return h, nil
}

// WritePage implements Store.
func (h *Hierarchy) WritePage(epoch uint64, page int, data []byte, size int) error {
	return h.inner.WritePage(epoch, page, data, size)
}

// EndEpoch implements Store: the checkpoint is acknowledged once sealed on
// the local tier; lower tiers fill in asynchronously.
func (h *Hierarchy) EndEpoch(epoch uint64) error { return h.inner.EndEpoch(epoch) }

// WaitDrained blocks until every sealed checkpoint has reached (or
// definitively failed to reach) every tier.
func (h *Hierarchy) WaitDrained() { h.inner.WaitDrained() }

// Err returns the first background drain error, if any.
func (h *Hierarchy) Err() error { return h.inner.Err() }

// Close drains in-flight promotions and stops the drain workers.
func (h *Hierarchy) Close() error { return h.inner.Close() }

// Restore folds the checkpoint chain into a memory image, reading each
// epoch from the fastest surviving tier, and reports per-epoch sources.
// Tier loads for different epochs overlap across min(GOMAXPROCS, 8)
// loaders while the fold stays in strict chain order, so the image and the
// per-epoch sources match a serial restore exactly; use RestoreWorkers to
// pin the loader count (1 = serial).
func (h *Hierarchy) Restore() (*Image, []TierRestoreStep, error) {
	return h.RestoreWorkers(0)
}

// RestoreWorkers is Restore with an explicit epoch-loader count:
// 1 restores serially, 0 picks min(GOMAXPROCS, 8).
func (h *Hierarchy) RestoreWorkers(workers int) (*Image, []TierRestoreStep, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	im, steps, err := h.inner.RestoreWith(multilevel.RestoreOptions{Workers: workers})
	out := make([]TierRestoreStep, len(steps))
	for i, s := range steps {
		out[i] = TierRestoreStep{Epoch: s.Epoch, Tier: s.Tier, Detail: s.Detail}
	}
	if err != nil {
		return nil, out, err
	}
	return &Image{PageSize: im.PageSize, Epoch: im.Epoch, inner: im}, out, nil
}

// Manifests returns the per-epoch tier manifests: which tiers hold each
// epoch, in what state, and the erasure shard layout on sharding tiers.
func (h *Hierarchy) Manifests() []EpochTierManifest {
	return manifestsToPublic(h.inner.Manifests())
}

// FailPeerNode marks node index node of the first peer tier as failed:
// its shards become unreadable and new shards destined for it are dropped.
// It is the failure-injection hook for tests and demos.
func (h *Hierarchy) FailPeerNode(node int) error {
	if len(h.peers) == 0 {
		return fmt.Errorf("aickpt: hierarchy has no peer tier")
	}
	nodes := h.peers[0].Nodes()
	if node < 0 || node >= len(nodes) {
		return fmt.Errorf("aickpt: peer node %d out of range [0,%d)", node, len(nodes))
	}
	nodes[node].Fail()
	return nil
}

// WipeLocal deletes every file of the local tier, simulating total loss of
// the fast storage; Restore must then fall back to lower tiers.
func (h *Hierarchy) WipeLocal() error { return h.inner.Local().Wipe() }

// TierRestoreStep documents where one epoch came from during Restore.
type TierRestoreStep struct {
	Epoch uint64
	// Tier is the serving tier; empty when the epoch was unrecoverable.
	Tier string
	// Detail explains skipped faster tiers or the unrecoverable failure.
	Detail string
}

// EpochTierManifest records where one checkpoint epoch (or promoted
// compacted base) lives.
type EpochTierManifest struct {
	Epoch     uint64
	PageSize  int
	PageCount int
	Tiers     []TierCopyReport
	// IsBase marks the manifest of a compacted base segment covering
	// [BaseFrom, BaseTo], promoted through the hierarchy in place of the
	// epochs it folded.
	IsBase           bool
	BaseFrom, BaseTo uint64
}

// TierCopyReport is one tier's relationship to an epoch: "stored",
// "draining" or "failed", plus the shard layout on sharding tiers.
type TierCopyReport struct {
	Tier   string
	Level  int
	State  string
	Err    string
	Shards *ShardLayoutReport
}

// ShardLayoutReport describes the erasure layout of an epoch on a peer
// tier: k data + m parity shards, shard i on Nodes[i].
type ShardLayoutReport struct {
	Data, Parity, Start int
	Nodes               []string
}

func manifestsToPublic(ms []multilevel.EpochManifest) []EpochTierManifest {
	out := make([]EpochTierManifest, len(ms))
	for i, m := range ms {
		pm := EpochTierManifest{Epoch: m.Epoch, PageSize: m.PageSize, PageCount: m.PageCount}
		if m.Base != nil {
			pm.IsBase = true
			pm.BaseFrom, pm.BaseTo = m.Base.From, m.Base.To
		}
		for _, tc := range m.Tiers {
			rep := TierCopyReport{Tier: tc.Tier, Level: tc.Level, State: tc.State, Err: tc.Err}
			if tc.Shards != nil {
				rep.Shards = &ShardLayoutReport{
					Data:   tc.Shards.Data,
					Parity: tc.Shards.Parity,
					Start:  tc.Shards.Start,
					Nodes:  append([]string(nil), tc.Shards.Nodes...),
				}
			}
			pm.Tiers = append(pm.Tiers, rep)
		}
		out[i] = pm
	}
	return out
}

// InspectTiers reads the tier manifests mirrored into a checkpoint
// directory (the tiers-NNNNNNNN.json files written next to the epoch
// files) — the offline view of where each epoch lives; it backs the
// ckpt-inspect tool.
func InspectTiers(dir string) ([]EpochTierManifest, error) {
	fs, err := ckpt.NewOSFS(dir)
	if err != nil {
		return nil, err
	}
	ms, err := multilevel.ReadTierManifests(fs)
	if err != nil {
		return nil, err
	}
	return manifestsToPublic(ms), nil
}
