// Content-addressed dedup + background chain compaction: a long run seals
// many incremental epochs, dedup elides the pages that were dirtied but
// rewritten with identical content, and the background compactor folds old
// epochs into a consolidated base so restore reads a bounded number of
// segments and the folded storage is reclaimed.
//
//	go run ./examples/compaction
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	aickpt "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "aickpt-compaction-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Compaction keeps the live chain at most 6 segments deep; dedup is on
	// by default.
	rt, err := aickpt.New(aickpt.Options{
		Dir:        dir,
		PageSize:   4096,
		Compaction: aickpt.CompactionPolicy{MaxChainDepth: 6},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A long run: 30 checkpoints over a working set where each step
	// rewrites a window of pages — half of them with content identical to
	// what the chain already holds (the dedup target: "dirtied but not
	// really changed" pages).
	const pages, pageSize = 64, 4096
	state := rt.MallocProtected(pages * pageSize)
	buf := make([]byte, pageSize)
	for step := 1; step <= 30; step++ {
		for i := 0; i < pages/4; i++ {
			p := (step + i) % pages
			stamp := step
			if p%2 == 1 {
				stamp = 0 // same content every time it is written
			}
			for j := range buf {
				buf[j] = byte(p + stamp*13 + j%7)
			}
			state.Write(p*pageSize, buf)
		}
		rt.Checkpoint()
	}
	rt.WaitIdle()
	final := append([]byte(nil), state.Bytes()...)

	// A forced pass folds everything foldable before shutdown (the
	// background compactor has been running on its own all along).
	res, err := rt.CompactNow()
	if err != nil {
		log.Fatal(err)
	}
	st := rt.StorageStats()
	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("30 checkpoints sealed; live chain is %d segment(s)\n", res.LiveSegments)
	fmt.Printf("dedup:      %d page writes (%d B) elided as refs\n", st.PagesDeduped, st.BytesDeduped)
	fmt.Printf("compaction: %d pass(es) folded %d epochs, reclaimed %d B\n",
		st.Compactions, st.EpochsFolded, st.BytesReclaimed)

	// Restore reads the consolidated base plus the few live epochs — not
	// the 30-epoch history.
	im, err := aickpt.Restore(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restore:    epoch %d from %d segment(s)\n", im.Epoch, im.SegmentsRead())

	rt2, err := aickpt.New(aickpt.Options{Dir: dir, PageSize: pageSize})
	if err != nil {
		log.Fatal(err)
	}
	defer rt2.Close()
	state2 := rt2.MallocProtected(pages * pageSize)
	if err := rt2.LoadImage(im, state2); err != nil {
		log.Fatal(err)
	}
	if bytes.Equal(state2.Bytes(), final) {
		fmt.Println("restored image is bit-identical to the run's final checkpointed memory")
	} else {
		log.Fatal("restored image differs!")
	}
}
