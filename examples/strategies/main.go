// Strategies: run the same iterative workload under the three checkpointing
// approaches the paper compares — adaptive (AI-Ckpt), async-no-pattern and
// sync — against a deliberately slow storage backend, and print how long
// the application was blocked and how its first writes were classified.
// This is Figure 2 in miniature, on the real-time runtime.
//
//	go run ./examples/strategies
package main

import (
	"fmt"
	"log"
	"time"

	aickpt "repro"
)

// slowStore throttles page writes to make the asynchronous/synchronous
// trade-off visible in real time.
type slowStore struct{ perPage time.Duration }

func (s slowStore) WritePage(epoch uint64, page int, data []byte, size int) error {
	time.Sleep(s.perPage)
	return nil
}
func (s slowStore) EndEpoch(epoch uint64) error { return nil }

func main() {
	const (
		pageSize = 4096
		pages    = 512
		iters    = 6
		ckEvery  = 2
	)
	for _, strategy := range []aickpt.Strategy{aickpt.Adaptive, aickpt.NoPattern, aickpt.Sync} {
		rt, err := aickpt.New(aickpt.Options{
			Store:     slowStore{200 * time.Microsecond},
			PageSize:  pageSize,
			CowBuffer: 64 << 10, // 16 COW slots
			Strategy:  strategy,
		})
		if err != nil {
			log.Fatal(err)
		}
		region := rt.MallocProtected(pages * pageSize)
		buf := make([]byte, pageSize)

		start := time.Now()
		for it := 1; it <= iters; it++ {
			// Touch every page, descending: the order an address-ordered
			// flush predicts worst.
			for p := pages - 1; p >= 0; p-- {
				buf[0] = byte(it)
				region.Write(p*pageSize, buf)
			}
			if it%ckEvery == 0 {
				rt.Checkpoint()
			}
		}
		rt.WaitIdle()
		elapsed := time.Since(start)

		// The summary's scorecard columns show WHY a strategy wins: the
		// adaptive selector flushes in predicted fault order, so its rank
		// correlation stays high and more faults land on already-flushed
		// pages (hit rate) instead of blocking.
		sum := aickpt.Summarize(rt.Stats())
		if err := rt.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s runtime=%8v app-blocked=%8v WAIT=%4d COW=%4d AVOIDED=%4d hit=%5.2f corr=%5.2f\n",
			strategy, elapsed.Round(time.Millisecond), sum.AppBlocked.Round(time.Millisecond),
			sum.Waits, sum.CowAbsorbed, sum.Avoided, sum.HitRate, sum.RankCorrelation)
	}
	fmt.Println("\nlower app-blocked is better: the asynchronous strategies hide most")
	fmt.Println("of the flush behind the application, while sync blocks for all of it.")
	fmt.Println("The scorecard explains how each selector behaves: the adaptive flush")
	fmt.Println("order tracks the fault order of this descending workload (corr near 1)")
	fmt.Println("where the address-ordered flush shows no correlation at all.")
	fmt.Println("Real-time sleep granularity blurs the adaptive-vs-no-pattern gap here;")
	fmt.Println("run `go run ./cmd/experiments -fig 2` for the calibrated comparison.")
}
