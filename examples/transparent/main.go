// Transparent capture: the application allocates through the transparent
// allocator (the paper's preloaded-malloc mode) without naming what to
// protect; every allocation is checkpointed automatically. Mirrors how the
// paper runs CM1 (Fortran allocatables) and MILC unmodified.
//
//	go run ./examples/transparent
package main

import (
	"fmt"
	"log"
	"os"

	aickpt "repro"
)

// particle system: positions and velocities live in separate allocations,
// both captured transparently.
type system struct {
	pos, vel *aickpt.Region
	n        int
}

func newSystem(alloc *aickpt.Allocator, n int) *system {
	return &system{
		pos: alloc.Calloc(n, 8),
		vel: alloc.Calloc(n, 8),
		n:   n,
	}
}

func (s *system) step() {
	// A toy integrator: v += 1; x += v (fixed-point in int64 strides).
	buf := make([]byte, 8)
	for i := 0; i < s.n; i++ {
		s.vel.Read(i*8, buf)
		buf[0]++
		s.vel.Write(i*8, buf)
		s.pos.Read(i*8, buf)
		buf[1] += buf[0]
		s.pos.Write(i*8, buf)
	}
}

func main() {
	dir, err := os.MkdirTemp("", "aickpt-transparent-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	rt, err := aickpt.New(aickpt.Options{Dir: dir, PageSize: 4096})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	alloc := rt.TransparentAllocator()
	sys := newSystem(alloc, 4096)
	scratch := alloc.Alloc(32 << 10) // also captured, freed before the end

	for step := 1; step <= 6; step++ {
		sys.step()
		scratch.StoreByte(step, byte(step))
		if step%2 == 0 {
			rt.Checkpoint()
		}
	}
	// Free the scratch buffer through the allocator: it leaves the
	// checkpointed set safely even if a flush is in flight.
	alloc.Free(scratch)
	sys.step()
	rt.Checkpoint()
	rt.WaitIdle()

	fmt.Println("per-checkpoint page counts (transparent capture):")
	for _, s := range rt.Stats() {
		fmt.Printf("  checkpoint %d: %d pages, WAIT=%d COW=%d AVOIDED=%d AFTER=%d\n",
			s.Epoch, s.PagesCommitted, s.Waits, s.Cows, s.Avoided, s.After)
	}
	im, err := aickpt.Restore(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repository restores to epoch %d with %d pages\n", im.Epoch, len(im.PageIDs()))
}
