// Multi-level checkpointing: checkpoints land on a fast local tier, drain
// in the background to an erasure-coded peer tier and a parallel file
// system, and restore survives losing the local tier AND a peer node.
//
//	go run ./examples/multilevel
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	aickpt "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "aickpt-multilevel-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A three-level hierarchy, fastest first: L1 a local directory (in a
	// real deployment: ramdisk or node-local SSD), L2 five peer nodes
	// holding Reed-Solomon shards (k=3 data + m=2 parity — any 3 of the 5
	// shards rebuild a page, so two nodes may die), L3 an in-memory
	// stand-in for a parallel file system mount.
	rt, err := aickpt.New(aickpt.Options{
		PageSize: 4096,
		Tiers: []aickpt.TierSpec{
			{Kind: aickpt.TierLocal, Dir: dir},
			{Kind: aickpt.TierPeer, Nodes: 5, DataShards: 3, ParityShards: 2},
			{Kind: aickpt.TierPFS},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Iterate and checkpoint as usual: Checkpoint returns as soon as the
	// epoch is sealed on L1; the drainer promotes it to the peers and the
	// PFS while the loop keeps running.
	state := rt.MallocProtected(512 << 10) // 512 KB
	buf := make([]byte, 64<<10)
	for step := 1; step <= 9; step++ {
		for i := range buf {
			buf[i] = byte(i + step*17)
		}
		state.Write(((step*3)%8*64)<<10, buf)
		if step%3 == 0 {
			rt.Checkpoint()
		}
	}
	rt.WaitIdle()

	h := rt.Hierarchy()
	h.WaitDrained()
	final := append([]byte(nil), state.Bytes()...)

	fmt.Println("tier manifests after draining:")
	for _, m := range h.Manifests() {
		fmt.Printf("  epoch %d (%d pages):\n", m.Epoch, m.PageCount)
		for _, tc := range m.Tiers {
			extra := ""
			if tc.Shards != nil {
				extra = fmt.Sprintf("  [rs k=%d m=%d over %d nodes]", tc.Shards.Data, tc.Shards.Parity, len(tc.Shards.Nodes))
			}
			fmt.Printf("    L%d %-6s %s%s\n", tc.Level, tc.Tier, tc.State, extra)
		}
	}
	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}

	// Disaster: the node dies, taking its local checkpoint directory with
	// it — and one of the peers doesn't come back either.
	if err := h.WipeLocal(); err != nil {
		log.Fatal(err)
	}
	if err := h.FailPeerNode(2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlocal tier wiped, peer node 2 lost; restoring…")

	im, steps, err := h.Restore()
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range steps {
		fmt.Printf("  epoch %d restored from %s tier\n", s.Epoch, s.Tier)
	}

	// Load the image into a fresh runtime and verify every byte survived.
	rt2, err := aickpt.New(aickpt.Options{
		PageSize: 4096,
		Tiers:    []aickpt.TierSpec{{Kind: aickpt.TierLocal}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt2.Close()
	state2 := rt2.MallocProtected(512 << 10)
	if err := rt2.LoadImage(im, state2); err != nil {
		log.Fatal(err)
	}
	if bytes.Equal(state2.Bytes(), final) {
		fmt.Println("\nrestored image is bit-identical to the crashed run's memory")
	} else {
		log.Fatal("restored image differs!")
	}
}
