// Stencil-restart: a 2-D heat-diffusion solver that checkpoints its grid,
// "crashes" halfway (simulated), and restarts from the last completed
// checkpoint, finishing with the same result as an uninterrupted run.
//
//	go run ./examples/stencil-restart
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"os"

	aickpt "repro"
)

const (
	n       = 128 // grid side
	steps   = 60
	ckEvery = 20
)

// grid wraps a protected region holding an n x n float64 field plus one
// header page recording the last completed step (the application-level
// metadata a restartable solver needs).
type grid struct {
	rt     *aickpt.Runtime
	region *aickpt.Region
}

func newGrid(rt *aickpt.Runtime) *grid {
	return &grid{rt: rt, region: rt.MallocProtected(4096 + n*n*8)}
}

func (g *grid) setStep(s int) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(s))
	g.region.Write(0, b[:])
}

func (g *grid) step() int {
	var b [8]byte
	g.region.Read(0, b[:])
	return int(binary.LittleEndian.Uint64(b[:]))
}

func (g *grid) get(i, j int) float64 {
	var b [8]byte
	g.region.Read(4096+(i*n+j)*8, b[:])
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

func (g *grid) set(i, j int, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	g.region.Write(4096+(i*n+j)*8, b[:])
}

// relax performs one Jacobi sweep in place (Gauss-Seidel style ordering
// keeps it simple; physical fidelity is not the point here).
func (g *grid) relax() {
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			v := 0.25 * (g.get(i-1, j) + g.get(i+1, j) + g.get(i, j-1) + g.get(i, j+1))
			g.set(i, j, v)
		}
	}
}

func (g *grid) init() {
	for j := 0; j < n; j++ {
		g.set(0, j, 100) // hot top edge
	}
	g.setStep(0)
}

func (g *grid) checksum() float64 {
	var sum float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum += g.get(i, j) * float64(i+3*j+1)
		}
	}
	return sum
}

// run advances the solver from its recorded step to the target, crashing
// (returning early) at crashAt if crashAt > 0.
func run(g *grid, crashAt int) {
	for s := g.step() + 1; s <= steps; s++ {
		g.relax()
		g.setStep(s)
		if s%ckEvery == 0 {
			g.rt.Checkpoint()
		}
		if crashAt > 0 && s == crashAt {
			return // simulated crash: no cleanup, no final checkpoint
		}
	}
}

func solve(dir string, crashAt int) float64 {
	rt, err := aickpt.New(aickpt.Options{Dir: dir, CowBuffer: 256 << 10})
	if err != nil {
		log.Fatal(err)
	}
	g := newGrid(rt)
	if im, err := aickpt.Restore(dir); err == nil {
		if err := rt.LoadImage(im, g.region); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  restarted from epoch %d at step %d\n", im.Epoch, g.step())
	} else {
		g.init()
	}
	run(g, crashAt)
	rt.WaitIdle()
	sum := g.checksum()
	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}
	return sum
}

func main() {
	ref, err := os.MkdirTemp("", "stencil-ref-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ref)
	crash, err := os.MkdirTemp("", "stencil-crash-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(crash)

	fmt.Println("reference run (no crash):")
	want := solve(ref, 0)

	fmt.Println("crashing run (dies at step 33):")
	solve(crash, 33)
	fmt.Println("restarted run:")
	got := solve(crash, 0)

	fmt.Printf("reference checksum: %.6f\n", want)
	fmt.Printf("restarted checksum: %.6f\n", got)
	if math.Abs(want-got) > 1e-9 {
		log.Fatal("MISMATCH: restart diverged from the reference run")
	}
	fmt.Println("restart reproduced the uninterrupted result exactly")
}
