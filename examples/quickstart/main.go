// Quickstart: allocate protected memory, compute, checkpoint, and restore.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	aickpt "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "aickpt-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A runtime with a 64 KB copy-on-write buffer writing to dir.
	rt, err := aickpt.New(aickpt.Options{
		Dir:       dir,
		PageSize:  4096,
		CowBuffer: 64 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The application's checkpointed state: one protected region.
	state := rt.MallocProtected(1 << 20) // 1 MB

	// Iterate: each step rewrites part of the state; checkpoint every 4
	// steps. The runtime flushes dirty pages in the background while the
	// loop keeps running.
	buf := make([]byte, 64<<10)
	for step := 1; step <= 12; step++ {
		for i := range buf {
			buf[i] = byte(step)
		}
		state.Write((step%16)*(64<<10), buf)
		if step%4 == 0 {
			rt.Checkpoint()
			fmt.Printf("step %2d: checkpoint requested (runs in background)\n", step)
		}
	}
	rt.WaitIdle()
	for _, s := range rt.Stats() {
		fmt.Printf("checkpoint %d: %d pages (%d bytes), blocked %v, flush took %v\n",
			s.Epoch, s.PagesCommitted, s.BytesCommitted, s.BlockedInCheckpoint, s.Duration)
	}
	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}

	// Restore the repository and verify it matches the live state.
	im, err := aickpt.Restore(dir)
	if err != nil {
		log.Fatal(err)
	}
	first, count := state.Pages()
	var restored []byte
	for p := first; p < first+count; p++ {
		restored = append(restored, im.Page(p)...)
	}
	if bytes.Equal(restored[:state.Size()], state.Bytes()) {
		fmt.Printf("restore OK: epoch %d matches the live state (%d pages)\n", im.Epoch, len(im.PageIDs()))
	} else {
		log.Fatal("restore mismatch")
	}
}
