package aickpt_test

import (
	"bytes"
	"testing"

	aickpt "repro"
)

// TestTieredRuntimeRestoreSurvivesLocalLoss runs a runtime over a 3-tier
// hierarchy, then wipes the local tier and fails a peer node: restore must
// still produce the exact memory image from the surviving erasure shards.
func TestTieredRuntimeRestoreSurvivesLocalLoss(t *testing.T) {
	rt, err := aickpt.New(aickpt.Options{
		PageSize: 512,
		Tiers: []aickpt.TierSpec{
			{Kind: aickpt.TierLocal},
			{Kind: aickpt.TierPeer, Nodes: 5, DataShards: 3, ParityShards: 2},
			{Kind: aickpt.TierPFS},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Hierarchy()
	if h == nil {
		t.Fatal("runtime built from Tiers has no hierarchy")
	}

	const size = 16 * 512
	region := rt.MallocProtected(size)
	buf := make([]byte, size)
	for iter := 0; iter < 3; iter++ {
		for i := range buf {
			buf[i] = byte(i + iter*13)
		}
		region.Write(0, buf)
		rt.Checkpoint()
	}
	rt.WaitIdle()
	h.WaitDrained()
	want := append([]byte(nil), region.Bytes()...)

	mans := h.Manifests()
	if len(mans) != 3 {
		t.Fatalf("got %d epoch manifests, want 3", len(mans))
	}
	for _, m := range mans {
		for _, tc := range m.Tiers {
			if tc.State != "stored" {
				t.Errorf("epoch %d tier %s state %q", m.Epoch, tc.Tier, tc.State)
			}
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	if err := h.WipeLocal(); err != nil {
		t.Fatal(err)
	}
	if err := h.FailPeerNode(1); err != nil {
		t.Fatal(err)
	}
	im, steps, err := h.Restore()
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	for _, s := range steps {
		if s.Tier != "peer" {
			t.Errorf("epoch %d restored from %q, want peer", s.Epoch, s.Tier)
		}
	}
	rt2, err := aickpt.New(aickpt.Options{PageSize: 512, Tiers: []aickpt.TierSpec{{Kind: aickpt.TierLocal}}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	region2 := rt2.MallocProtected(size)
	if err := rt2.LoadImage(im, region2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(region2.Bytes(), want) {
		t.Error("restored region differs from the crashed run's memory")
	}
}

// TestTieredRuntimeResumesEpochChain restarts a Dir-backed tiered runtime
// and checks the new process extends the sealed chain instead of
// truncating epoch 1 over the old run's files.
func TestTieredRuntimeResumesEpochChain(t *testing.T) {
	dir := t.TempDir()
	tiers := []aickpt.TierSpec{{Kind: aickpt.TierLocal, Dir: dir}}
	const size = 8 * 512

	run := func(fill byte) {
		rt, err := aickpt.New(aickpt.Options{PageSize: 512, Tiers: tiers})
		if err != nil {
			t.Fatal(err)
		}
		region := rt.MallocProtected(size)
		region.Write(0, bytes.Repeat([]byte{fill}, size))
		rt.Checkpoint()
		rt.WaitIdle()
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
	}
	run(1)
	run(2)

	im, err := aickpt.Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if im.Epoch != 2 {
		t.Errorf("restart point epoch %d, want 2 (chain extended across restart)", im.Epoch)
	}
	if got := im.Page(0)[0]; got != 2 {
		t.Errorf("restored content %d, want the second run's 2", got)
	}
}

func TestOptionsRejectAmbiguousBackends(t *testing.T) {
	_, err := aickpt.New(aickpt.Options{Dir: t.TempDir(), Tiers: []aickpt.TierSpec{{Kind: aickpt.TierLocal}}})
	if err == nil {
		t.Error("Dir+Tiers should be rejected")
	}
	_, err = aickpt.New(aickpt.Options{})
	if err == nil {
		t.Error("no backend should be rejected")
	}
}

func TestTierManifestMirrorIsInspectable(t *testing.T) {
	dir := t.TempDir()
	rt, err := aickpt.New(aickpt.Options{
		PageSize: 512,
		Tiers: []aickpt.TierSpec{
			{Kind: aickpt.TierLocal, Dir: dir},
			{Kind: aickpt.TierPeer, Nodes: 3, DataShards: 2, ParityShards: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	region := rt.MallocProtected(4 * 512)
	region.Write(0, bytes.Repeat([]byte{7}, 4*512))
	rt.Checkpoint()
	rt.WaitIdle()
	rt.Hierarchy().WaitDrained()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	mans, err := aickpt.InspectTiers(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(mans) != 1 {
		t.Fatalf("got %d mirrored manifests, want 1", len(mans))
	}
	m := mans[0]
	if m.Epoch != 1 || m.PageCount != 4 || len(m.Tiers) != 2 {
		t.Errorf("manifest = %+v", m)
	}
	peer := m.Tiers[1]
	if peer.State != "stored" || peer.Shards == nil || peer.Shards.Data != 2 || peer.Shards.Parity != 1 {
		t.Errorf("peer copy = %+v", peer)
	}
}
