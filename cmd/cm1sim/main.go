// Command cm1sim runs the CM1 case study (§4.4): an atmospheric stencil
// model on a simulated Grid'5000 deployment checkpointing to a PVFS-like
// parallel file system on 10 storage nodes.
//
// Modes:
//
//	cm1sim -weak            weak-scalability sweep (Figures 3a and 3b)
//	cm1sim -cowsweep        COW-buffer sweep at 32 processes (Figure 4a)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	weak := flag.Bool("weak", false, "run the weak-scalability sweep (Figure 3)")
	cowsweep := flag.Bool("cowsweep", false, "run the COW-buffer sweep (Figure 4a)")
	scale := flag.Int("scale", 2*experiments.ScaleBench, "memory division factor (1 = paper scale)")
	maxProcs := flag.Int("procs", 32, "maximum process count")
	flag.Parse()

	if !*weak && !*cowsweep {
		fmt.Fprintln(os.Stderr, "choose -weak and/or -cowsweep")
		os.Exit(2)
	}
	if *weak {
		var procs []int
		for p := 1; p <= *maxProcs; p *= 2 {
			procs = append(procs, p)
		}
		if procs[len(procs)-1] != *maxProcs {
			procs = append(procs, *maxProcs)
		}
		experiments.RenderFig3(os.Stdout, experiments.Fig3(*scale, procs))
	}
	if *cowsweep {
		rows := experiments.Fig4a(*scale, *maxProcs, []int{0, 1, 4, 16, 64, 256})
		experiments.RenderFig4(os.Stdout, "Figure 4(a)", rows)
	}
}
