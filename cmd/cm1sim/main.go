// Command cm1sim runs the CM1 case study (§4.4): an atmospheric stencil
// model on a simulated Grid'5000 deployment checkpointing to a PVFS-like
// parallel file system on 10 storage nodes.
//
// Modes:
//
//	cm1sim -weak            weak-scalability sweep (Figures 3a and 3b)
//	cm1sim -cowsweep        COW-buffer sweep at 32 processes (Figure 4a)
//	cm1sim -debug-addr A    single instrumented run; serve the debug
//	                        endpoints on A, self-scrape /epochs and print
//	                        the flight-recorder JSON plus a summary line
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	weak := flag.Bool("weak", false, "run the weak-scalability sweep (Figure 3)")
	cowsweep := flag.Bool("cowsweep", false, "run the COW-buffer sweep (Figure 4a)")
	scale := flag.Int("scale", 2*experiments.ScaleBench, "memory division factor (1 = paper scale)")
	maxProcs := flag.Int("procs", 32, "maximum process count")
	debugAddr := flag.String("debug-addr", "", "run one instrumented CM1 simulation, serve the debug endpoints on this address and self-scrape /epochs")
	flag.Parse()

	if *debugAddr != "" {
		runInstrumented(*debugAddr, *scale, *maxProcs)
		return
	}
	if !*weak && !*cowsweep {
		fmt.Fprintln(os.Stderr, "choose -weak, -cowsweep and/or -debug-addr")
		os.Exit(2)
	}
	if *weak {
		var procs []int
		for p := 1; p <= *maxProcs; p *= 2 {
			procs = append(procs, p)
		}
		if procs[len(procs)-1] != *maxProcs {
			procs = append(procs, *maxProcs)
		}
		experiments.RenderFig3(os.Stdout, experiments.Fig3(*scale, procs))
	}
	if *cowsweep {
		rows := experiments.Fig4a(*scale, *maxProcs, []int{0, 1, 4, 16, 64, 256})
		experiments.RenderFig4(os.Stdout, "Figure 4(a)", rows)
	}
}

// runInstrumented is the observability smoke mode: one adaptive CM1 run
// with the epoch flight recorder attached to process 0, the debug server
// started on addr, and /epochs scraped back through HTTP — so a CI step
// can grep the span tree and the scorecard out of stdout.
func runInstrumented(addr string, scale, procs int) {
	cfg := experiments.NewCM1Config(scale, procs)
	var met *obs.Metrics
	cfg.Metrics = func(now func() time.Duration) *obs.Metrics {
		met = obs.New(now)
		met.Journal = obs.NewJournal(1024)
		met.Spans = obs.NewSpanLog(256)
		return met
	}
	run := experiments.RunCM1(cfg, core.Adaptive, true)

	srv, err := obs.StartServer(addr, met, func() []obs.EpochRecord { return run.Epochs }, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cm1sim: debug server:", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("debug endpoint http://%s (/metrics /snapshot /trace /epochs)\n", srv.Addr())

	resp, err := http.Get("http://" + srv.Addr() + "/epochs")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cm1sim: self-scrape:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fmt.Fprintln(os.Stderr, "cm1sim: self-scrape:", err)
		os.Exit(1)
	}
	fmt.Printf("summary: epochs=%d hit_rate=%.3f rank_corr=%.3f avg_ckpt=%s makespan=%s\n",
		len(run.Epochs), run.HitRate, run.RankCorrelation,
		run.AvgCkptTime.Round(time.Microsecond), run.Runtime.Round(time.Microsecond))
}
