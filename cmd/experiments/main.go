// Command experiments regenerates every figure of the paper's evaluation
// (Figures 2a-2c, 3a-3b, 4a, 4b and 5) using the virtual-time simulation of
// the Grid'5000 and Shamrock testbeds.
//
// Usage:
//
//	experiments [-fig all|2|3|4a|4b|5] [-scale N]
//
// scale divides every memory quantity of the paper's setup (region sizes,
// COW buffers) by N while preserving the ratios that drive the dynamics;
// scale=1 reproduces the full sizes but simulates tens of millions of
// events. The defaults complete in a few minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 2, 3, 4a, 4b, 5")
	scale := flag.Int("scale", experiments.ScaleBench, "memory division factor (1 = paper scale)")
	flag.Parse()

	run := func(name string, effScale int, f func()) {
		start := time.Now()
		fmt.Printf("--- %s (memory scale 1/%d) ---\n", name, effScale)
		f()
		fmt.Printf("(completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	any := false
	if *fig == "all" || *fig == "2" {
		any = true
		run("Figure 2: synthetic benchmark", *scale, func() {
			experiments.RenderFig2(os.Stdout, experiments.Fig2(*scale))
		})
	}
	if *fig == "all" || *fig == "3" {
		any = true
		run("Figure 3: CM1 weak scalability", 2**scale, func() {
			experiments.RenderFig3(os.Stdout, experiments.Fig3(2**scale, []int{1, 2, 4, 8, 16, 32}))
		})
	}
	if *fig == "all" || *fig == "4a" {
		any = true
		run("Figure 4(a): CM1 COW sweep, 32 processes", 2**scale, func() {
			rows := experiments.Fig4a(2**scale, 32, []int{0, 1, 4, 16, 64, 256})
			experiments.RenderFig4(os.Stdout, "Figure 4(a)", rows)
		})
	}
	if *fig == "all" || *fig == "5" {
		any = true
		run("Figure 5: MILC weak scalability", 8**scale, func() {
			experiments.RenderFig5(os.Stdout, experiments.Fig5(8**scale, []int{10, 40, 120, 280}))
		})
	}
	if *fig == "all" || *fig == "4b" {
		any = true
		run("Figure 4(b): MILC COW sweep, 280 processes", 8**scale, func() {
			rows := experiments.Fig4b(8**scale, 280, []int{0, 1, 4, 16, 64, 256})
			experiments.RenderFig4(os.Stdout, "Figure 4(b)", rows)
		})
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
