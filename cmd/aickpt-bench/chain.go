package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/ckpt"
	"repro/internal/compact"
)

// chainScenario measures how the incremental chain behaves as the run
// grows: a baseline repository (dedup off, no compaction) against a
// repository with content-addressed dedup and background-style compaction
// (depth-bounded). Both write the same epoch sequence — a rolling dirty
// window where a fraction of the pages are rewritten with identical
// content, the pattern hash-based differential checkpointing exploits —
// and both are then restored and compared bit for bit. With compaction the
// restore reads at most depth segments and the on-disk footprint stays
// flat regardless of how many epochs the run sealed.
func chainScenario(epochs, depth, pages int) {
	fmt.Printf("incremental chain growth: %d epochs, %d-page working set, compaction depth %d\n\n",
		epochs, pages, depth)
	base, err := runChainConfig(epochs, pages, 0, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chain baseline:", err)
		os.Exit(1)
	}
	comp, err := runChainConfig(epochs, pages, depth, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chain compacted:", err)
		os.Exit(1)
	}

	fmt.Printf("%-22s %-14s %-14s %-10s %-12s %s\n", "config", "write-time", "restore-time", "segments", "disk-bytes", "dedup")
	row := func(name string, r *chainResult) {
		fmt.Printf("%-22s %-14v %-14v %-10d %-12d %d pages / %d B elided\n",
			name, r.writeTime.Round(time.Microsecond), r.restoreTime.Round(time.Microsecond),
			r.segmentsRead, r.diskBytes, r.dedup.PagesDeduped, r.dedup.BytesDeduped)
	}
	row("baseline (full chain)", base)
	row(fmt.Sprintf("dedup+compact(d=%d)", depth), comp)

	identical := base.image.Epoch == comp.image.Epoch && len(base.image.Pages) == len(comp.image.Pages)
	if identical {
		for p, d := range base.image.Pages {
			if !bytes.Equal(comp.image.Pages[p], d) {
				identical = false
				break
			}
		}
	}
	verdict := "bit-identical"
	if !identical {
		verdict = "CORRUPT (images differ)"
	}
	fmt.Printf("\nrestored images: %s\n", verdict)
	fmt.Printf("segments read:   %d -> %d (bounded by depth %d)\n", base.segmentsRead, comp.segmentsRead, depth)
	fmt.Printf("on-disk bytes:   %d -> %d (%.1f%% of baseline)\n",
		base.diskBytes, comp.diskBytes, 100*float64(comp.diskBytes)/float64(base.diskBytes))
	fmt.Printf("restore time:    %v -> %v\n",
		base.restoreTime.Round(time.Microsecond), comp.restoreTime.Round(time.Microsecond))
	if !identical {
		os.Exit(1)
	}
	if comp.segmentsRead > depth {
		fmt.Fprintf(os.Stderr, "chain: compacted restore read %d segments, want <= %d\n", comp.segmentsRead, depth)
		os.Exit(1)
	}
}

type chainResult struct {
	writeTime    time.Duration
	restoreTime  time.Duration
	segmentsRead int
	diskBytes    int64
	image        *ckpt.Image
	dedup        ckpt.DedupStats
}

const chainPageSize = 4096

// runChainConfig seals the scenario's epoch sequence into a fresh
// directory-backed repository and restores it. depth > 0 enables
// depth-bounded compaction after every seal (the synchronous equivalent of
// the background compactor's kick, keeping the benchmark deterministic).
func runChainConfig(epochs, pages, depth int, disableDedup bool) (*chainResult, error) {
	dir, err := os.MkdirTemp("", "aickpt-chain-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	fs, err := ckpt.NewOSFS(dir)
	if err != nil {
		return nil, err
	}
	repo := ckpt.NewRepository(fs, chainPageSize)
	repo.SetDedup(!disableDedup)
	cfg := compact.Config{FS: fs, PageSize: chainPageSize, Policy: compact.Policy{MaxDepth: depth}}

	res := &chainResult{}
	buf := make([]byte, chainPageSize)
	start := time.Now()
	for e := 1; e <= epochs; e++ {
		// A rolling window dirties a quarter of the working set; half of
		// those writes rewrite the content the page already had (identical
		// content, the dedup target), the rest carry fresh epoch-stamped
		// content.
		window := pages / 4
		if window == 0 {
			window = 1
		}
		first := (e * window / 2) % pages
		for i := 0; i < window; i++ {
			p := (first + i) % pages
			stamp := e
			if p%2 == 1 {
				stamp = 0 // content independent of the epoch: a rewrite-identical page
			}
			for j := range buf {
				buf[j] = byte(p*31 + stamp*7 + j%13)
			}
			if err := repo.WritePage(uint64(e), p, buf, chainPageSize); err != nil {
				return nil, err
			}
		}
		if err := repo.EndEpoch(uint64(e)); err != nil {
			return nil, err
		}
		if depth > 0 {
			if _, err := compact.RunOnce(cfg, false); err != nil {
				return nil, err
			}
		}
	}
	res.writeTime = time.Since(start)
	res.dedup = repo.DedupStats()

	start = time.Now()
	im, err := ckpt.Restore(fs)
	if err != nil {
		return nil, err
	}
	res.restoreTime = time.Since(start)
	res.image = im
	res.segmentsRead = im.SegmentsRead
	res.diskBytes, err = dirBytes(dir)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func dirBytes(dir string) (int64, error) {
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total, err
}
