package main

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/multilevel"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/pagemem"
	"repro/internal/sim"
)

// tiersScenario compares 1-, 2- and 3-tier checkpoint hierarchies under
// failure: an application on node 0 of a simulated Grid'5000-like cluster
// checkpoints a real-content region; after the run the fast local tier is
// wiped and peerFailures peer nodes are killed, then a tier-aware restore
// attempts to rebuild the memory image. With one failure the erasure-coded
// peer tier (k=2, m=1) recovers every epoch; with two, only the 3-tier
// configuration survives, serving epochs from the parallel file system.
func tiersScenario(iterations, every, peerFailures int, jsonPath string) {
	fmt.Printf("multi-level hierarchy under failure: L1 wipe + %d peer node(s) lost\n", peerFailures)
	fmt.Printf("%-8s %-14s %-14s %-12s %s\n", "config", "app-runtime", "drain-done", "restore", "epoch sources")
	var recs []BenchRecord
	for tiers := 1; tiers <= 3; tiers++ {
		r := runTiersConfig(tiers, iterations, every, peerFailures)
		fmt.Printf("%-8s %-14v %-14v %-12s %s\n", fmt.Sprintf("%d-tier", tiers), r.appRuntime, r.drainDone, r.restore, r.sources)
		sc, cp := benchObservability(r.epochs)
		restored := 0.0
		if r.restore == "bit-identical" {
			restored = 1
		}
		recs = append(recs, BenchRecord{
			Scenario: "tiers",
			Case:     fmt.Sprintf("%d-tier", tiers),
			Config: map[string]any{
				"tiers": tiers, "iterations": iterations, "every": every,
				"peer_failures": peerFailures, "page_size": tiersPageSize,
				"restore": r.restore, "sources": r.sources,
			},
			Metrics: map[string]float64{
				"app_runtime_ns": float64(r.appRuntime.Nanoseconds()),
				"drain_done_ns":  float64(r.drainDone.Nanoseconds()),
				"restored":       restored,
			},
			Scorecard:    sc,
			CriticalPath: cp,
		})
	}
	writeBenchJSON(jsonPath, recs...)
}

type tiersResult struct {
	appRuntime time.Duration
	drainDone  time.Duration
	restore    string
	sources    string
	// epochs carries the flight recorder's view of the run: scorecards
	// from the page manager, lifecycle span trees (commit, seal,
	// per-tier drain-wait/promote, restore) from the hierarchy.
	epochs []obs.EpochRecord
}

const tiersPageSize = 4096

func runTiersConfig(tiers, iterations, every, peerFailures int) tiersResult {
	k := sim.NewKernel()
	d := cluster.NewDeployment(k, 4, cluster.NodeSpec{
		Procs: 1,
		NIC:   netsim.LinkConfig{BytesPerSec: cluster.GigabitBandwidth, Latency: cluster.GigabitLatency},
		Disk:  netsim.LinkConfig{BytesPerSec: cluster.RennesDiskBandwidth, PerMessage: 5 * time.Microsecond},
	}, &cluster.PFSSpec{Servers: 4, ServerBandwidth: 100e6, PerRequest: 50 * time.Microsecond})

	met := obs.New(k.Now)
	met.Spans = obs.NewSpanLog(256)

	local := multilevel.NewLocalTier(k, "local", &ckpt.MemFS{}, tiersPageSize, d.LocalBackend(0))
	var lower []multilevel.Tier
	var peer *multilevel.PeerTier
	if tiers >= 2 {
		var err error
		peer, err = multilevel.NewPeerTier("peer", 2, 1, d.PeerNodes(0), d.Nodes[0].NIC)
		if err != nil {
			panic(err)
		}
		lower = append(lower, peer)
	}
	if tiers >= 3 {
		lower = append(lower, multilevel.NewLocalTier(k, "pfs", &ckpt.MemFS{}, tiersPageSize, d.PFSBackend(0)))
	}
	h, err := multilevel.New(multilevel.Config{Env: k, PageSize: tiersPageSize, Local: local, Lower: lower, Metrics: met})
	if err != nil {
		panic(err)
	}

	space := pagemem.NewSpace(tiersPageSize)
	mgr := core.NewManager(core.Config{
		Env:      k,
		Space:    space,
		Store:    h,
		Strategy: core.Adaptive,
		CowSlots: 64,
		Name:     "app",
		Metrics:  met,
	})
	const pages = 512 // 2 MB of real page content
	region := space.Alloc(pages*tiersPageSize, false)

	var res tiersResult
	k.Go("app", func() {
		buf := make([]byte, tiersPageSize)
		checkpointed := true
		for iter := 0; iter < iterations; iter++ {
			// Touch a shrinking working set so later epochs are
			// incremental: all pages, then 1/2, then 1/4, ...
			span := pages >> uint(iter%3)
			for p := 0; p < span; p++ {
				for i := range buf {
					buf[i] = byte(p*31 + iter*7 + i)
				}
				region.Write(p*tiersPageSize, buf)
			}
			checkpointed = (iter+1)%every == 0
			if checkpointed {
				mgr.Checkpoint()
			}
		}
		// Cover trailing writes so the restored image is comparable to
		// the final memory snapshot.
		if !checkpointed {
			mgr.Checkpoint()
		}
		mgr.WaitIdle()
		res.appRuntime = k.Now()
		h.WaitDrained()
		res.drainDone = k.Now()
		snapshot := append([]byte(nil), region.Bytes()...)
		mgr.Close()
		if err := h.Close(); err != nil {
			res.restore = "drain-error"
			res.sources = err.Error()
			return
		}

		// Disaster strikes: the node's fast local storage is gone, and
		// some peers with it.
		if err := h.Local().Wipe(); err != nil {
			panic(err)
		}
		if peer != nil {
			for i := 0; i < peerFailures && i < len(peer.Nodes()); i++ {
				peer.Nodes()[i].Fail()
			}
		}
		im, steps, err := h.Restore()
		if err != nil {
			res.restore = "FAILED"
			res.sources = err.Error()
			return
		}
		identical := true
		for p := 0; p < pages; p++ {
			if !bytes.Equal(im.PageOr(p), snapshot[p*tiersPageSize:(p+1)*tiersPageSize]) {
				identical = false
				break
			}
		}
		if identical {
			res.restore = "bit-identical"
		} else {
			res.restore = "CORRUPT"
		}
		counts := map[string]int{}
		for _, s := range steps {
			counts[s.Tier]++
		}
		res.sources = ""
		for _, name := range []string{"local", "peer", "pfs"} {
			if counts[name] > 0 {
				if res.sources != "" {
					res.sources += " "
				}
				res.sources += fmt.Sprintf("%s:%d", name, counts[name])
			}
		}
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	res.epochs = obs.BuildEpochRecords(mgr.Scorecards(), met.Spans.Snapshot())
	return res
}
