package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/obs"
)

// BenchRecord is one machine-readable benchmark result. The -json flag
// appends records to a JSON-array file (BENCH_<n>.json by convention) so
// successive PRs can track a performance trajectory without re-parsing
// human-oriented output.
type BenchRecord struct {
	// Scenario names the aickpt-bench scenario that produced the record.
	Scenario string `json:"scenario"`
	// Case distinguishes sweep points within one scenario (e.g. a worker
	// count or a dirty-set size).
	Case string `json:"case,omitempty"`
	// Config echoes the scenario parameters the record was measured under.
	Config map[string]any `json:"config,omitempty"`
	// Metrics holds the measured quantities; keys are unit-suffixed
	// (pages_per_sec, mb_per_sec, ns, allocs_per_page, ...).
	Metrics map[string]float64 `json:"metrics"`
	// Quantiles embeds the run's final metric snapshot as histogram
	// quantiles (family name + _p50/_p99/_max suffix), so a record
	// carries latency distributions, not just means.
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
	// Scorecard aggregates the run's per-epoch selector prediction
	// scorecards (obs.Scorecard) into one view: did the flush order the
	// selector predicted match the fault order the application produced?
	// Nil when the run recorded no epochs.
	Scorecard *ScorecardAgg `json:"scorecard,omitempty"`
	// CriticalPath sums the per-epoch lifecycle critical path by stage
	// label, most expensive first, so a record says which stage bounded
	// checkpoint latency across the run. Nil without span recording.
	CriticalPath []CriticalStageAgg `json:"critical_path,omitempty"`
}

// ScorecardAgg is a run-level fold of per-epoch selector scorecards:
// counts summed, hit rate recomputed over the sums, rank correlation
// pair-weighted, waited-queue depth taken at its peak.
type ScorecardAgg struct {
	Epochs          int     `json:"epochs"`
	Waits           int     `json:"waits"`
	Cows            int     `json:"cows"`
	Avoided         int     `json:"avoided"`
	After           int     `json:"after"`
	MaxWaitedDepth  int     `json:"max_waited_depth"`
	HitRate         float64 `json:"hit_rate"`
	RankCorrelation float64 `json:"rank_corr"`
}

// CriticalStageAgg sums one lifecycle stage ("flush", "seal",
// "promote[1]", "restore[2]", ...) across every epoch of a run.
type CriticalStageAgg struct {
	Stage   string `json:"stage"`
	TotalNs int64  `json:"total_ns"`
	// Share is TotalNs over the summed lifecycle span of all epochs.
	Share float64 `json:"share"`
	// BoundedEpochs counts the epochs whose latency this stage bounded
	// (it was the epoch's longest stage).
	BoundedEpochs int `json:"bounded_epochs"`
}

// benchObservability folds per-epoch flight-recorder records into the
// record-level scorecard and critical-path aggregates.
func benchObservability(epochs []obs.EpochRecord) (*ScorecardAgg, []CriticalStageAgg) {
	var sc *ScorecardAgg
	var corrWeighted float64
	var pairs int
	stageTotal := map[string]int64{}
	stageBound := map[string]int{}
	var lifecycle int64
	for _, r := range epochs {
		if c := r.Scorecard; c != nil {
			if sc == nil {
				sc = &ScorecardAgg{}
			}
			sc.Epochs++
			sc.Waits += c.Waits
			sc.Cows += c.Cows
			sc.Avoided += c.Avoided
			sc.After += c.After
			if c.MaxWaitedDepth > sc.MaxWaitedDepth {
				sc.MaxWaitedDepth = c.MaxWaitedDepth
			}
			corrWeighted += c.RankCorrelation * float64(c.RankPairs)
			pairs += c.RankPairs
		}
		lifecycle += r.TotalNs
		for _, st := range r.Critical {
			stageTotal[stageLabel(st)] += st.DurNs
		}
		if r.Bounding != "" {
			stageBound[r.Bounding]++
		}
	}
	if sc != nil {
		sc.HitRate = obs.ScoreHitRate(sc.Waits, sc.Cows, sc.Avoided)
		if pairs > 0 {
			sc.RankCorrelation = corrWeighted / float64(pairs)
		}
	}
	var cp []CriticalStageAgg
	for stage, total := range stageTotal {
		share := 0.0
		if lifecycle > 0 {
			share = float64(total) / float64(lifecycle)
		}
		cp = append(cp, CriticalStageAgg{
			Stage: stage, TotalNs: total, Share: share, BoundedEpochs: stageBound[stage],
		})
	}
	sort.Slice(cp, func(a, b int) bool {
		if cp[a].TotalNs != cp[b].TotalNs {
			return cp[a].TotalNs > cp[b].TotalNs
		}
		return cp[a].Stage < cp[b].Stage
	})
	return sc, cp
}

// stageLabel renders a critical stage with its tier bracket, matching
// EpochRecord.Bounding ("promote[1]"; tier 0 stays bare).
func stageLabel(st obs.CriticalStage) string {
	if st.Tier == 0 {
		return st.Stage
	}
	return fmt.Sprintf("%s[%d]", st.Stage, st.Tier)
}

// appendBenchRecords appends recs to the JSON array in path, creating the
// file when absent.
func appendBenchRecords(path string, recs ...BenchRecord) error {
	var all []BenchRecord
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &all); err != nil {
			return fmt.Errorf("bench json %s exists but is not a record array: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	all = append(all, recs...)
	data, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeBenchJSON is the shared -json sink: a no-op when the flag is unset,
// fatal on write failure (a perf-tracking run with a vanished record is
// worse than a loud one).
func writeBenchJSON(path string, recs ...BenchRecord) {
	if path == "" {
		return
	}
	if err := appendBenchRecords(path, recs...); err != nil {
		fmt.Fprintln(os.Stderr, "bench json:", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %d record(s) to %s\n", len(recs), path)
}
