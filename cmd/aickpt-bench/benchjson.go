package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchRecord is one machine-readable benchmark result. The -json flag
// appends records to a JSON-array file (BENCH_<n>.json by convention) so
// successive PRs can track a performance trajectory without re-parsing
// human-oriented output.
type BenchRecord struct {
	// Scenario names the aickpt-bench scenario that produced the record.
	Scenario string `json:"scenario"`
	// Case distinguishes sweep points within one scenario (e.g. a worker
	// count or a dirty-set size).
	Case string `json:"case,omitempty"`
	// Config echoes the scenario parameters the record was measured under.
	Config map[string]any `json:"config,omitempty"`
	// Metrics holds the measured quantities; keys are unit-suffixed
	// (pages_per_sec, mb_per_sec, ns, allocs_per_page, ...).
	Metrics map[string]float64 `json:"metrics"`
	// Quantiles embeds the run's final metric snapshot as histogram
	// quantiles (family name + _p50/_p99/_max suffix), so a record
	// carries latency distributions, not just means.
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// appendBenchRecords appends recs to the JSON array in path, creating the
// file when absent.
func appendBenchRecords(path string, recs ...BenchRecord) error {
	var all []BenchRecord
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &all); err != nil {
			return fmt.Errorf("bench json %s exists but is not a record array: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	all = append(all, recs...)
	data, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeBenchJSON is the shared -json sink: a no-op when the flag is unset,
// fatal on write failure (a perf-tracking run with a vanished record is
// worse than a loud one).
func writeBenchJSON(path string, recs ...BenchRecord) {
	if path == "" {
		return
	}
	if err := appendBenchRecords(path, recs...); err != nil {
		fmt.Fprintln(os.Stderr, "bench json:", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %d record(s) to %s\n", len(recs), path)
}
