package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	aickpt "repro"
	"repro/internal/ckpt"
	"repro/internal/compress"
)

// hotpathScenario measures the real-time (not virtual-time) cost of the
// steady-state commit path: application pages are mutated, checkpointed
// through the full stack — fault handler, COW buffer, adaptive selector,
// content hash, DEFLATE codec, repository record framing — into an
// in-memory repository, and the scenario reports commit throughput, heap
// allocations per committed page, and how long Checkpoint() itself blocks
// the application as the dirty set grows 8x.
//
// The blocked-time sweep is the acceptance check for moving the selector
// build off the blocking path: blocked time must stay flat while the dirty
// set (and hence the old O(d log d) sort) grows 8x.
func hotpathScenario(pages, epochs, workers int, jsonPath string) {
	fmt.Printf("commit hot path: %d pages x 4 KB, %d epochs/point, %d commit workers, flate codec, in-memory store\n\n",
		pages, epochs, workers)

	type point struct {
		dirty int
		res   *hotpathResult
	}
	sweep := []int{pages / 8, pages / 4, pages / 2, pages}
	points := make([]point, 0, len(sweep))
	for _, d := range sweep {
		res, err := runHotpath(pages, d, epochs, workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hotpath:", err)
			os.Exit(1)
		}
		points = append(points, point{dirty: d, res: res})
	}

	fmt.Printf("%-12s %-14s %-14s %-16s %-14s %s\n",
		"dirty-pages", "throughput", "bandwidth", "blocked/ckpt", "flush/ckpt", "allocs/page")
	for _, pt := range points {
		r := pt.res
		fmt.Printf("%-12d %-14s %-14s %-16v %-14v %.2f\n",
			pt.dirty,
			fmt.Sprintf("%.0f pg/s", r.pagesPerSec),
			fmt.Sprintf("%.1f MB/s", r.mbPerSec),
			r.blockedPerCkpt.Round(time.Microsecond),
			r.flushPerCkpt.Round(time.Microsecond),
			r.allocsPerPage)
	}

	// Scaling check: with the selector build moved onto the committer, the
	// only dirty-dependent work left inside Checkpoint() is the O(d)
	// scheduling scan of the dirty bitset, so blocked time must grow no
	// faster than the dirty set itself (8x across the sweep; in practice
	// the fixed protect-all cost keeps the measured ratio well below
	// that). Superlinear growth means sorting crept back into the locked
	// section.
	small, large := points[0].res.blockedPerCkpt, points[len(points)-1].res.blockedPerCkpt
	if small > 0 && large > 8*small {
		fmt.Fprintf(os.Stderr, "hotpath: blocked time grew %.1fx while the dirty set grew 8x (want sublinear)\n",
			float64(large)/float64(small))
		os.Exit(1)
	}
	fmt.Printf("\nblocked-in-checkpoint growth over 8x dirty growth: %.2fx (sublinear; absolute cost %v -> %v)\n",
		float64(large)/float64(max(1, int64(small))), small.Round(time.Microsecond), large.Round(time.Microsecond))

	recs := make([]BenchRecord, 0, len(points))
	for _, pt := range points {
		r := pt.res
		recs = append(recs, BenchRecord{
			Scenario: "hotpath",
			Case:     fmt.Sprintf("dirty%d", pt.dirty),
			Config: map[string]any{
				"pages": pages, "dirty": pt.dirty, "epochs": epochs, "workers": workers,
				"page_size": hotpathPageSize, "codec": "flate",
			},
			Metrics: map[string]float64{
				"throughput_pages_per_sec": r.pagesPerSec,
				"bandwidth_mb_per_sec":     r.mbPerSec,
				"blocked_per_ckpt_ns":      float64(r.blockedPerCkpt.Nanoseconds()),
				"flush_per_ckpt_ns":        float64(r.flushPerCkpt.Nanoseconds()),
				"allocs_per_page":          r.allocsPerPage,
			},
		})
	}
	writeBenchJSON(jsonPath, recs...)
}

const hotpathPageSize = 4096

type hotpathResult struct {
	pagesPerSec    float64
	mbPerSec       float64
	blockedPerCkpt time.Duration
	flushPerCkpt   time.Duration
	allocsPerPage  float64
}

// newMemRepoStore builds the real checkpoint repository — content hashing,
// dedup index, DEFLATE codec, record framing — over an in-memory FS, so the
// scenario measures the commit path itself rather than OS file I/O. It is
// plugged in through aickpt's public Store hook.
func newMemRepoStore() *ckpt.Repository {
	repo := ckpt.NewRepository(&ckpt.MemFS{}, hotpathPageSize)
	repo.SetCodec(compress.Flate)
	return repo
}

// runHotpath runs `epochs` checkpoint rounds with `dirty` of `pages` pages
// rewritten per round, through the full public runtime with the repository
// backend replaced by an in-memory one.
func runHotpath(pages, dirty, epochs, workers int) (*hotpathResult, error) {
	store := newMemRepoStore()
	rt, err := aickpt.New(aickpt.Options{
		PageSize:      hotpathPageSize,
		Store:         store,
		CowBuffer:     int64(pages) * hotpathPageSize,
		CommitWorkers: workers,
	})
	if err != nil {
		return nil, err
	}
	region := rt.MallocProtected(pages * hotpathPageSize)
	buf := make([]byte, hotpathPageSize)
	fill := func(p, e int) {
		// Low-entropy content (a repeating short cycle keyed on page and
		// epoch): compresses under DEFLATE, differs every epoch so dedup
		// never elides it — each round pays the full encode+store cost.
		for j := range buf {
			buf[j] = byte(p*31 + e*7 + j%13)
		}
		region.Write(p*hotpathPageSize, buf)
	}
	// Warm-up round: fault in every page once and let the pools fill.
	for p := 0; p < pages; p++ {
		fill(p, 0)
	}
	rt.Checkpoint()
	rt.WaitIdle()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var ckptCalls time.Duration
	for e := 1; e <= epochs; e++ {
		for i := 0; i < dirty; i++ {
			fill(i, e)
		}
		// Time the Checkpoint() call itself: everything inside it runs
		// with the application stopped (the write gate is exclusive), so
		// this is the true application-blocking cost of requesting a
		// checkpoint — the quantity the off-critical-path selector build
		// is meant to keep flat.
		t0 := time.Now()
		rt.Checkpoint()
		ckptCalls += time.Since(t0)
		rt.WaitIdle()
	}
	runtime.ReadMemStats(&after)
	stats := rt.Stats()
	if err := rt.Close(); err != nil {
		return nil, err
	}
	res := &hotpathResult{}
	var flush time.Duration
	var committed int64
	measured := stats[1:] // drop the warm-up epoch
	for _, s := range measured {
		flush += s.Duration
		committed += int64(s.PagesCommitted)
	}
	if epochs > 0 {
		res.blockedPerCkpt = ckptCalls / time.Duration(epochs)
	}
	if len(measured) > 0 {
		res.flushPerCkpt = flush / time.Duration(len(measured))
	}
	if flush > 0 {
		res.pagesPerSec = float64(committed) / flush.Seconds()
		res.mbPerSec = float64(committed) * hotpathPageSize / flush.Seconds() / (1 << 20)
	}
	if committed > 0 {
		res.allocsPerPage = float64(after.Mallocs-before.Mallocs) / float64(committed)
	}
	return res, nil
}
