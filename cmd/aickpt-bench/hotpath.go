package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	aickpt "repro"
	"repro/internal/ckpt"
	"repro/internal/compress"
	"repro/internal/obs"
)

// hotpathScenario measures the real-time (not virtual-time) cost of the
// steady-state commit path: application pages are mutated, checkpointed
// through the full stack — fault handler, COW buffer, adaptive selector,
// content hash, DEFLATE codec, repository record framing — into an
// in-memory repository, and the scenario reports commit throughput, heap
// allocations per committed page, and how long Checkpoint() itself blocks
// the application as the dirty set grows 8x.
//
// The blocked-time sweep is the acceptance check for moving the selector
// build off the blocking path: blocked time must stay flat while the dirty
// set (and hence the old O(d log d) sort) grows 8x.
func hotpathScenario(pages, epochs, workers int, jsonPath, debugAddr string) {
	fmt.Printf("commit hot path: %d pages x 4 KB, %d epochs/point, %d commit workers, flate codec, in-memory store\n\n",
		pages, epochs, workers)

	type point struct {
		dirty int
		res   *hotpathResult
	}
	sweep := []int{pages / 8, pages / 4, pages / 2, pages}
	points := make([]point, 0, len(sweep))
	for _, d := range sweep {
		res, err := runHotpath(pages, d, epochs, workers, hotpathOpts{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hotpath:", err)
			os.Exit(1)
		}
		points = append(points, point{dirty: d, res: res})
	}

	if debugAddr != "" {
		// Exercise the live debug endpoint in a dedicated run (kept out of
		// the measured sweep so the HTTP server and the deep trace journal
		// don't skew its numbers): serve on debugAddr, scrape /metrics and
		// /trace mid-run, verify the families and the event ordering.
		if _, err := runHotpath(pages, pages, epochs, workers, hotpathOpts{debugAddr: debugAddr}); err != nil {
			fmt.Fprintln(os.Stderr, "hotpath:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("%-12s %-14s %-14s %-16s %-14s %s\n",
		"dirty-pages", "throughput", "bandwidth", "blocked/ckpt", "flush/ckpt", "allocs/page")
	for _, pt := range points {
		r := pt.res
		fmt.Printf("%-12d %-14s %-14s %-16v %-14v %.2f\n",
			pt.dirty,
			fmt.Sprintf("%.0f pg/s", r.pagesPerSec),
			fmt.Sprintf("%.1f MB/s", r.mbPerSec),
			r.blockedPerCkpt.Round(time.Microsecond),
			r.flushPerCkpt.Round(time.Microsecond),
			r.allocsPerPage)
	}

	// Scaling check: with the selector build moved onto the committer, the
	// only dirty-dependent work left inside Checkpoint() is the O(d)
	// scheduling scan of the dirty bitset, so blocked time must grow no
	// faster than the dirty set itself (8x across the sweep; in practice
	// the fixed protect-all cost keeps the measured ratio well below
	// that). Superlinear growth means sorting crept back into the locked
	// section.
	small, large := points[0].res.blockedPerCkpt, points[len(points)-1].res.blockedPerCkpt
	if small > 0 && large > 8*small {
		fmt.Fprintf(os.Stderr, "hotpath: blocked time grew %.1fx while the dirty set grew 8x (want sublinear)\n",
			float64(large)/float64(small))
		os.Exit(1)
	}
	fmt.Printf("\nblocked-in-checkpoint growth over 8x dirty growth: %.2fx (sublinear; absolute cost %v -> %v)\n",
		float64(large)/float64(max(1, int64(small))), small.Round(time.Microsecond), large.Round(time.Microsecond))

	// Ablation: price the instrumentation itself. Wall-clock throughput
	// drifts several percent between runs (CPU frequency, GC, neighbors),
	// far more than the handful of atomics per page under measurement, so
	// each metrics-off run is immediately paired with a metrics-on run —
	// drift cancels within a pair — and the reported overhead is the median
	// of the per-pair ratios. The acceptance bar is <2% commit throughput.
	largest := points[len(points)-1]
	const ablationPairs = 5
	var ratios []float64
	var on, off *hotpathResult
	for i := 0; i < ablationPairs; i++ {
		o, err := runHotpath(pages, largest.dirty, epochs, workers, hotpathOpts{disableMetrics: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hotpath (metrics off):", err)
			os.Exit(1)
		}
		n, err := runHotpath(pages, largest.dirty, epochs, workers, hotpathOpts{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hotpath:", err)
			os.Exit(1)
		}
		if o.pagesPerSec > 0 {
			ratios = append(ratios, (o.pagesPerSec-n.pagesPerSec)/o.pagesPerSec*100)
		}
		if off == nil || o.pagesPerSec > off.pagesPerSec {
			off = o
		}
		if on == nil || n.pagesPerSec > on.pagesPerSec {
			on = n
		}
	}
	sort.Float64s(ratios)
	overheadPct := ratios[len(ratios)/2]
	fmt.Printf("metrics overhead at dirty=%d: %.2f%% median of %d paired runs (per-pair: %s; best on %.0f pg/s, best off %.0f pg/s)\n",
		largest.dirty, overheadPct, ablationPairs, fmtRatios(ratios), on.pagesPerSec, off.pagesPerSec)

	// Deterministic bound: time the exact per-page metric op sequence (the
	// counters, latency observations and trace events one committed page
	// generates) and divide by the measured per-page commit cost. Unlike
	// the paired runs this is immune to run-to-run drift, so it is the
	// number to hold against the <2% bar when the ablation is noise-bound.
	perPageNs := measurePageMetricLoad()
	perPageCommitNs := float64(off.flushPerCkpt.Nanoseconds()) / float64(largest.dirty)
	boundPct := perPageNs / perPageCommitNs * 100
	fmt.Printf("metrics load per committed page: %.0f ns against a %.0f ns commit -> %.2f%% deterministic bound\n",
		perPageNs, perPageCommitNs, boundPct)

	recs := make([]BenchRecord, 0, len(points)+1)
	for _, pt := range points {
		r := pt.res
		sc, cp := benchObservability(r.epochs)
		recs = append(recs, BenchRecord{
			Scenario: "hotpath",
			Case:     fmt.Sprintf("dirty%d", pt.dirty),
			Config: map[string]any{
				"pages": pages, "dirty": pt.dirty, "epochs": epochs, "workers": workers,
				"page_size": hotpathPageSize, "codec": "flate",
			},
			Metrics: map[string]float64{
				"throughput_pages_per_sec": r.pagesPerSec,
				"bandwidth_mb_per_sec":     r.mbPerSec,
				"blocked_per_ckpt_ns":      float64(r.blockedPerCkpt.Nanoseconds()),
				"flush_per_ckpt_ns":        float64(r.flushPerCkpt.Nanoseconds()),
				"allocs_per_page":          r.allocsPerPage,
			},
			Quantiles:    hotpathQuantiles(r.snap),
			Scorecard:    sc,
			CriticalPath: cp,
		})
	}
	recs = append(recs, BenchRecord{
		Scenario: "hotpath",
		Case:     fmt.Sprintf("dirty%d-nometrics", largest.dirty),
		Config: map[string]any{
			"pages": pages, "dirty": largest.dirty, "epochs": epochs, "workers": workers,
			"page_size": hotpathPageSize, "codec": "flate", "metrics": "disabled",
			"paired_runs": ablationPairs,
		},
		Metrics: map[string]float64{
			"throughput_pages_per_sec":    off.pagesPerSec,
			"bandwidth_mb_per_sec":        off.mbPerSec,
			"blocked_per_ckpt_ns":         float64(off.blockedPerCkpt.Nanoseconds()),
			"flush_per_ckpt_ns":           float64(off.flushPerCkpt.Nanoseconds()),
			"allocs_per_page":             off.allocsPerPage,
			"metrics_overhead_pct":        overheadPct,
			"metrics_overhead_bound_pct":  boundPct,
			"metrics_load_per_page_ns":    perPageNs,
			"on_throughput_pages_per_sec": on.pagesPerSec,
		},
	})
	writeBenchJSON(jsonPath, recs...)
}

// measurePageMetricLoad times the metric operations one committed page
// triggers (mirroring internal/obs's BenchmarkInstrumentedPageEvents,
// with the real-clock time source the runtime uses) and returns ns per
// page.
func measurePageMetricLoad() float64 {
	m := obs.New(nil) // process-start-relative real clock, as in production
	m.Journal = obs.NewJournal(obs.DefaultJournalDepth)
	const iters = 200000
	var tick atomic.Uint64
	page := func(i int) {
		// Core committer worker: exact per page, one clock pair shared by
		// the latency observation and the trace timestamp (TraceAt).
		wstart := m.Now()
		wend := m.Now()
		d := int64(wend - wstart)
		m.CommitWriteNs.Observe(d)
		m.CommitPages.Inc()
		m.CommitBytes.Add(hotpathPageSize)
		m.WorkerPages[0].Inc()
		m.TraceAt(wend, obs.StageWrite, uint64(i), int32(i), 0, d)
		// Repository write path: byte counters exact, latency timer and
		// trace sampled 1-in-8 as in ckpt.Repository.WritePage.
		sampled := tick.Add(1)%8 == 0
		var rstart time.Duration
		if sampled {
			rstart = m.Now()
		}
		m.DedupMisses.Inc()
		m.RecordRawBytes.Add(hotpathPageSize)
		m.RecordCodedBytes.Add(hotpathPageSize / 2)
		if sampled {
			rend := m.Now()
			m.RecordWriteNs.Observe(int64(rend - rstart))
			m.TraceAt(rend, obs.StageCompress, uint64(i), int32(i), 0, hotpathPageSize/2)
		}
	}
	for i := 0; i < iters/10; i++ {
		page(i) // warm caches and branch predictors
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		page(i)
	}
	return float64(time.Since(t0).Nanoseconds()) / iters
}

func fmtRatios(rs []float64) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("%+.1f%%", r)
	}
	return strings.Join(parts, " ")
}

// hotpathQuantiles flattens the latency histograms a hotpath record should
// carry into family+suffix keys for the JSON record.
func hotpathQuantiles(snap aickpt.MetricsSnapshot) map[string]float64 {
	if snap.Histograms == nil {
		return nil
	}
	out := map[string]float64{}
	for _, fam := range []string{
		"aickpt_core_checkpoint_blocked_ns",
		"aickpt_core_fault_ns",
		"aickpt_core_commit_write_ns",
	} {
		h, ok := snap.Histograms[fam]
		if !ok || h.Count == 0 {
			continue
		}
		out[fam+"_p50"] = h.Quantile(0.5)
		out[fam+"_p99"] = h.Quantile(0.99)
		out[fam+"_max"] = float64(h.Max)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

const hotpathPageSize = 4096

type hotpathResult struct {
	pagesPerSec    float64
	mbPerSec       float64
	blockedPerCkpt time.Duration
	flushPerCkpt   time.Duration
	allocsPerPage  float64
	// snap is the run's final metric snapshot (zero-valued when the run
	// disabled metrics).
	snap aickpt.MetricsSnapshot
	// epochs is the flight recorder's per-epoch view: selector
	// scorecards plus lifecycle span trees (span trees absent when the
	// run disabled metrics).
	epochs []aickpt.EpochRecord
}

// hotpathOpts varies one hotpath run: serve the debug endpoint and
// self-scrape it mid-run, or disable metrics for the overhead ablation.
type hotpathOpts struct {
	debugAddr      string
	disableMetrics bool
}

// newMemRepoStore builds the real checkpoint repository — content hashing,
// dedup index, DEFLATE codec, record framing — over an in-memory FS, so the
// scenario measures the commit path itself rather than OS file I/O. It is
// plugged in through aickpt's public Store hook.
func newMemRepoStore() *ckpt.Repository {
	repo := ckpt.NewRepository(&ckpt.MemFS{}, hotpathPageSize)
	repo.SetCodec(compress.Flate)
	return repo
}

// runHotpath runs `epochs` checkpoint rounds with `dirty` of `pages` pages
// rewritten per round, through the full public runtime with the repository
// backend replaced by an in-memory one.
func runHotpath(pages, dirty, epochs, workers int, opt hotpathOpts) (*hotpathResult, error) {
	store := newMemRepoStore()
	traceDepth := 0
	if opt.debugAddr != "" {
		// The self-scrape checks the full fault->write->seal lifecycle, so
		// the ring must hold at least one whole epoch (a page contributes a
		// fault, a compress and a write event) plus slack; the 4096 default
		// wraps past the faults at large dirty sets.
		traceDepth = pages * 8
	}
	rt, err := aickpt.New(aickpt.Options{
		PageSize:       hotpathPageSize,
		Store:          store,
		CowBuffer:      int64(pages) * hotpathPageSize,
		CommitWorkers:  workers,
		DebugAddr:      opt.debugAddr,
		DisableMetrics: opt.disableMetrics,
		TraceDepth:     traceDepth,
	})
	if err != nil {
		return nil, err
	}
	region := rt.MallocProtected(pages * hotpathPageSize)
	buf := make([]byte, hotpathPageSize)
	fill := func(p, e int) {
		// Low-entropy content (a repeating short cycle keyed on page and
		// epoch): compresses under DEFLATE, differs every epoch so dedup
		// never elides it — each round pays the full encode+store cost.
		for j := range buf {
			buf[j] = byte(p*31 + e*7 + j%13)
		}
		region.Write(p*hotpathPageSize, buf)
	}
	// Warm-up round: fault in every page once and let the pools fill.
	for p := 0; p < pages; p++ {
		fill(p, 0)
	}
	rt.Checkpoint()
	rt.WaitIdle()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var ckptCalls time.Duration
	for e := 1; e <= epochs; e++ {
		for i := 0; i < dirty; i++ {
			fill(i, e)
		}
		// Time the Checkpoint() call itself: everything inside it runs
		// with the application stopped (the write gate is exclusive), so
		// this is the true application-blocking cost of requesting a
		// checkpoint — the quantity the off-critical-path selector build
		// is meant to keep flat.
		t0 := time.Now()
		rt.Checkpoint()
		ckptCalls += time.Since(t0)
		rt.WaitIdle()
	}
	runtime.ReadMemStats(&after)
	stats := rt.Stats()
	snap := rt.Metrics()
	epochRecs := rt.Epochs()
	if opt.debugAddr != "" {
		// Scrape while the runtime (and its debug server) is still live —
		// the endpoint check happens against a working pipeline, not a
		// drained one.
		if err := scrapeDebug(rt.DebugAddr()); err != nil {
			rt.Close()
			return nil, fmt.Errorf("debug scrape: %w", err)
		}
	}
	if err := rt.Close(); err != nil {
		return nil, err
	}
	res := &hotpathResult{snap: snap, epochs: epochRecs}
	var flush time.Duration
	var committed int64
	measured := stats[1:] // drop the warm-up epoch
	for _, s := range measured {
		flush += s.Duration
		committed += int64(s.PagesCommitted)
	}
	if epochs > 0 {
		res.blockedPerCkpt = ckptCalls / time.Duration(epochs)
	}
	if len(measured) > 0 {
		res.flushPerCkpt = flush / time.Duration(len(measured))
	}
	if flush > 0 {
		res.pagesPerSec = float64(committed) / flush.Seconds()
		res.mbPerSec = float64(committed) * hotpathPageSize / flush.Seconds() / (1 << 20)
	}
	if committed > 0 {
		res.allocsPerPage = float64(after.Mallocs-before.Mallocs) / float64(committed)
	}
	return res, nil
}

// scrapeDebug exercises the live debug endpoint over real HTTP: it pulls
// /metrics and /trace, prints the metric families found (one per line, so
// CI can grep required families out of bench stdout) and verifies the
// trace journal is sequence-ordered and covers the commit lifecycle.
func scrapeDebug(addr string) error {
	get := func(path string) ([]byte, error) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s", path, resp.Status)
		}
		return io.ReadAll(resp.Body)
	}

	expo, err := get("/metrics")
	if err != nil {
		return err
	}
	var families []string
	for _, line := range strings.Split(string(expo), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			families = append(families, strings.Fields(rest)[0])
		}
	}
	sort.Strings(families)
	fmt.Printf("\ndebug endpoint %s: %d metric families\n", addr, len(families))
	for _, f := range families {
		fmt.Println("family:", f)
	}

	raw, err := get("/trace")
	if err != nil {
		return err
	}
	var events []struct {
		Seq   uint64 `json:"seq"`
		AtNs  int64  `json:"at_ns"`
		Stage string `json:"stage"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(raw, &events); err != nil {
		return fmt.Errorf("/trace: %w", err)
	}
	firstSeen := map[string]int{}
	for i, e := range events {
		if i > 0 && e.Seq <= events[i-1].Seq {
			return fmt.Errorf("/trace: events out of order at index %d (seq %d after %d)", i, e.Seq, events[i-1].Seq)
		}
		if _, ok := firstSeen[e.Stage]; !ok {
			firstSeen[e.Stage] = i
		}
	}
	for _, stage := range []string{"fault", "write", "seal"} {
		if _, ok := firstSeen[stage]; !ok {
			return fmt.Errorf("/trace: no %q event in %d-event journal", stage, len(events))
		}
	}
	fmt.Printf("trace: %d ordered events, stages:", len(events))
	stages := make([]string, 0, len(firstSeen))
	for s := range firstSeen {
		stages = append(stages, s)
	}
	sort.Slice(stages, func(i, j int) bool { return firstSeen[stages[i]] < firstSeen[stages[j]] })
	for _, s := range stages {
		fmt.Printf(" %s", s)
	}
	fmt.Println()
	return nil
}
