package main

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/pagemem"
	"repro/internal/sim"
	"repro/internal/storage"
)

// parallelScenario sweeps commit-pipeline worker counts over a simulated
// striped parallel file system and reports how the background flush scales:
// throughput, speedup over the serial committer, and the application wait
// time caused by mid-flush writes. Every run commits real bytes into an
// in-memory repository alongside the virtual-time cost model, and each
// sweep point's restored image is compared bit for bit against the serial
// baseline — the parallel pipeline must change performance only, never the
// chain's content.
func parallelScenario(pages, epochs, servers, interfere int, workerList, jsonPath string) {
	workers, err := parseWorkerList(workerList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parallel:", err)
		os.Exit(2)
	}
	fmt.Printf("parallel commit pipeline: %d pages x %d epochs, %d PFS servers, %d mid-flush rewrites/epoch\n\n",
		pages, epochs, servers, interfere)

	results := make([]*parallelResult, 0, len(workers))
	for _, w := range workers {
		res, err := runParallelConfig(w, pages, epochs, servers, interfere)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parallel: workers=%d: %v\n", w, err)
			os.Exit(1)
		}
		results = append(results, res)
	}
	base := results[0]

	fmt.Printf("%-9s %-14s %-12s %-9s %-14s %-7s %s\n",
		"workers", "flush-time", "throughput", "speedup", "wait-time", "waits", "restore")
	allIdentical := true
	for _, r := range results {
		identical := imagesEqual(base.image, r.image)
		allIdentical = allIdentical && identical
		verdict := "bit-identical"
		if !identical {
			verdict = "CORRUPT (differs from serial)"
		}
		if r == base {
			verdict = "serial baseline"
		}
		fmt.Printf("%-9d %-14v %-12s %-9.2f %-14v %-7d %s\n",
			r.workers, r.flushTime.Round(time.Microsecond), throughput(r.flushBytes, r.flushTime),
			float64(base.flushTime)/float64(r.flushTime),
			r.waitTime.Round(time.Microsecond), r.waits, verdict)
	}

	if base.waitTime > 0 {
		fmt.Printf("\nwait-time delta vs serial: ")
		for _, r := range results[1:] {
			fmt.Printf("w%d %+.1f%%  ", r.workers, 100*(float64(r.waitTime)/float64(base.waitTime)-1))
		}
		fmt.Println()
	} else {
		fmt.Println("\nwait-time delta vs serial: n/a (serial baseline recorded no waits)")
	}
	if !allIdentical {
		fmt.Fprintln(os.Stderr, "parallel: restored images diverged from the serial baseline")
		os.Exit(1)
	}
	// With enough independent storage channels the pipeline must scale: the
	// first sweep point with >= 4 workers has to flush at least twice as
	// fast as the serial committer.
	if base.workers == 1 && servers >= 4 {
		for _, r := range results {
			if r.workers >= 4 {
				speedup := float64(base.flushTime) / float64(r.flushTime)
				if speedup < 2 {
					fmt.Fprintf(os.Stderr, "parallel: %d workers reached only %.2fx over serial, want >= 2x\n",
						r.workers, speedup)
					os.Exit(1)
				}
				break
			}
		}
	}

	recs := make([]BenchRecord, 0, len(results))
	for _, r := range results {
		rec := BenchRecord{
			Scenario: "parallel",
			Case:     fmt.Sprintf("workers%d", r.workers),
			Config: map[string]any{
				"pages": pages, "epochs": epochs, "servers": servers,
				"interfere": interfere, "workers": r.workers,
			},
			Metrics: map[string]float64{
				"flush_time_ns": float64(r.flushTime.Nanoseconds()),
				"flush_bytes":   float64(r.flushBytes),
				"wait_time_ns":  float64(r.waitTime.Nanoseconds()),
				"waits":         float64(r.waits),
			},
		}
		if base.workers == 1 {
			// Only meaningful when the sweep's first point is the serial
			// committer; an arbitrary first worker count is not "serial".
			rec.Metrics["speedup_over_serial"] = float64(base.flushTime) / float64(r.flushTime)
		}
		recs = append(recs, rec)
	}
	writeBenchJSON(jsonPath, recs...)
}

func parseWorkerList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty worker list")
	}
	return out, nil
}

func throughput(bytes int64, d time.Duration) string {
	if d <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1f MB/s", float64(bytes)/d.Seconds()/(1<<20))
}

func imagesEqual(a, b *ckpt.Image) bool {
	if a.Epoch != b.Epoch || len(a.Pages) != len(b.Pages) {
		return false
	}
	for p, d := range a.Pages {
		if !bytes.Equal(b.Pages[p], d) {
			return false
		}
	}
	return true
}

type parallelResult struct {
	workers    int
	flushBytes int64
	flushTime  time.Duration
	waitTime   time.Duration
	waits      int
	image      *ckpt.Image
}

// timedRepo charges each page to the virtual-time cost model, then persists
// the real bytes — the same composition the multilevel L1 tier uses.
type timedRepo struct {
	timing storage.Backend
	repo   *ckpt.Repository
}

func (t *timedRepo) WritePage(epoch uint64, page int, data []byte, size int) error {
	if err := t.timing.WritePage(epoch, page, nil, size); err != nil {
		return err
	}
	return t.repo.WritePage(epoch, page, data, size)
}

func (t *timedRepo) EndEpoch(epoch uint64) error {
	if err := t.timing.EndEpoch(epoch); err != nil {
		return err
	}
	return t.repo.EndEpoch(epoch)
}

const parallelPageSize = 4096

// runParallelConfig runs the scenario's deterministic workload under the
// virtual-time kernel with the given number of commit workers. Page writes
// are striped over `servers` independent PFS server links (100 MB/s each,
// 200us per-request overhead), so aggregate flush bandwidth is there for
// the taking — the question is whether the committer can drive it.
func runParallelConfig(workers, pages, epochs, servers, interfere int) (*parallelResult, error) {
	k := sim.NewKernel()
	fs := &ckpt.MemFS{}
	links := make([]*netsim.Link, servers)
	for i := range links {
		links[i] = netsim.NewLink(k, netsim.LinkConfig{
			Name:        fmt.Sprintf("pfs-server-%d", i),
			BytesPerSec: 100 << 20,
			PerMessage:  200 * time.Microsecond,
		})
	}
	backend := &timedRepo{
		timing: storage.NewSimPFS(nil, links),
		repo:   ckpt.NewRepository(fs, parallelPageSize),
	}
	space := pagemem.NewSpace(parallelPageSize)
	m := core.NewManager(core.Config{
		Env:           k,
		Space:         space,
		Store:         backend,
		Strategy:      core.Adaptive,
		CowSlots:      4,
		CommitWorkers: workers,
		Name:          fmt.Sprintf("w%d", workers),
	})
	r := space.Alloc(pages*parallelPageSize, false)
	buf := make([]byte, parallelPageSize)
	k.Go("app", func() {
		for e := 1; e <= epochs; e++ {
			for p := 0; p < pages; p++ {
				for j := range buf {
					buf[j] = byte(p*31 + e*7 + j%13)
				}
				r.Write(p*parallelPageSize, buf)
			}
			m.Checkpoint()
			// Rewrite the first pages while the flush is in flight: a few
			// take COW slots, the rest block and measure the wait time the
			// adaptive order and the worker pool are meant to shrink.
			for p := 0; p < interfere && p < pages; p++ {
				r.StoreByte(p*parallelPageSize, byte(e*13+p))
			}
			m.WaitIdle()
		}
		m.Close()
	})
	if err := k.Run(); err != nil {
		return nil, err
	}
	if err := m.Err(); err != nil {
		return nil, err
	}
	res := &parallelResult{workers: workers}
	for _, st := range m.Stats() {
		res.flushBytes += st.BytesCommitted
		res.flushTime += st.Duration
		res.waitTime += st.WaitTime
		res.waits += st.Waits
	}
	im, err := ckpt.Restore(fs)
	if err != nil {
		return nil, err
	}
	res.image = im
	return res, nil
}
