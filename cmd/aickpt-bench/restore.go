package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/ckpt"
	"repro/internal/erasure"
	"repro/internal/multilevel"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/storage"
)

const restorePageSize = 4096

// restoreScenario measures the parallel restore pipeline end to end: a wide
// checkpoint chain is sealed and drained through a multi-level hierarchy,
// the fast tier is destroyed, and the chain is restored at several
// epoch-loader counts. Two damage variants are swept — L1 wiped with the
// chain served by a striped parallel file system, and L1 wiped plus a peer
// node lost with every epoch rebuilt from erasure shards — and each sweep
// point's image is compared bit for bit against the serial restore.
// Restore time is virtual: tier reads are charged to the simulated links,
// so the speedup measures how well overlapping epoch loads aggregates
// server/NIC bandwidth, independent of host core count. The GF(256)
// multiply-accumulate kernel underneath erasure reconstruction is also
// measured in real time against the per-byte reference.
//
// Two hard gates protect the PR's perf claims: >= 3x virtual-time speedup
// at 8 loaders on the PFS variant, and >= 4x real-time GF kernel throughput
// when the vectorized path is available.
func restoreScenario(epochs, pages, servers int, workerList, jsonPath string) {
	workers, err := parseWorkerList(workerList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "restore:", err)
		os.Exit(2)
	}
	fmt.Printf("parallel restore pipeline: %d epochs x %d pages (%d KB/page), %d PFS servers\n\n",
		epochs, pages, restorePageSize/1024, servers)

	var recs []BenchRecord

	// Real-time GF(256) kernel measurement: the per-byte cost of erasure
	// reconstruction, independent of the virtual-time pipeline above it.
	tablePut, refPut := gfKernelThroughput()
	gfSpeedup := tablePut / refPut
	kernel := "portable-row"
	if erasure.AccelAvailable() {
		kernel = "ssse3-nibble"
	}
	fmt.Printf("gf(256) kernel (%s): %.2f GB/s vs reference %.2f GB/s = %.1fx\n\n",
		kernel, tablePut/1e9, refPut/1e9, gfSpeedup)
	recs = append(recs, BenchRecord{
		Scenario: "restore",
		Case:     "gf-kernel",
		Config:   map[string]any{"kernel": kernel, "buffer_bytes": gfKernelBuf},
		Metrics: map[string]float64{
			"table_bytes_per_sec": tablePut,
			"ref_bytes_per_sec":   refPut,
			"speedup_over_ref":    gfSpeedup,
		},
	})
	if erasure.AccelAvailable() && gfSpeedup < 4 {
		fmt.Fprintf(os.Stderr, "restore: gf kernel reached only %.2fx over the per-byte reference, want >= 4x\n", gfSpeedup)
		os.Exit(1)
	}

	for _, v := range []struct {
		name string
		gate float64
		run  func(workers []int) []restorePoint
	}{
		{"l1-wipe-pfs", 3, func(ws []int) []restorePoint { return runRestorePFS(epochs, pages, servers, ws) }},
		{"peer-loss", 2, func(ws []int) []restorePoint { return runRestorePeer(epochs, pages, ws) }},
	} {
		points := v.run(workers)
		base := points[0]
		fmt.Printf("%s: chain of %d epochs\n", v.name, epochs)
		fmt.Printf("%-9s %-16s %-9s %-14s %s\n", "workers", "restore-time", "speedup", "tier-busy", "restore")
		for _, p := range points {
			verdict := "bit-identical"
			if !p.identical {
				verdict = "CORRUPT (differs from serial)"
			}
			if p.workers == base.workers {
				verdict = "serial baseline"
			}
			fmt.Printf("%-9d %-16v %-9.2f %-14v %s\n",
				p.workers, p.elapsed.Round(time.Microsecond),
				float64(base.elapsed)/float64(p.elapsed),
				p.tierBusy.Round(time.Microsecond), verdict)
		}
		// Per-tier critical-path breakdown of the widest sweep point: the
		// SpanRestore spans say which tier the restore actually waited on.
		last := points[len(points)-1]
		fmt.Printf("critical path at %d workers:", last.workers)
		_, cp := benchObservability(obs.BuildEpochRecords(nil, last.spans))
		for _, st := range cp {
			fmt.Printf("  %s %v (%.0f%%)", st.Stage, time.Duration(st.TotalNs).Round(time.Microsecond), 100*st.Share)
		}
		fmt.Printf("\n\n")

		for _, p := range points {
			if !p.identical {
				fmt.Fprintf(os.Stderr, "restore: %s at %d workers diverged from the serial image\n", v.name, p.workers)
				os.Exit(1)
			}
			_, cp := benchObservability(obs.BuildEpochRecords(nil, p.spans))
			recs = append(recs, BenchRecord{
				Scenario: "restore",
				Case:     fmt.Sprintf("%s/workers%d", v.name, p.workers),
				Config: map[string]any{
					"variant": v.name, "epochs": epochs, "pages": pages,
					"servers": servers, "page_size": restorePageSize, "workers": p.workers,
				},
				Metrics: map[string]float64{
					"restore_virtual_ns":  float64(p.elapsed.Nanoseconds()),
					"tier_busy_ns":        float64(p.tierBusy.Nanoseconds()),
					"speedup_over_serial": float64(base.elapsed) / float64(p.elapsed),
					"epochs_folded":       float64(p.folded),
				},
				CriticalPath: cp,
			})
		}
		// The wide-chain scaling gate: with >= 32 independent epochs the
		// pipeline must overlap tier reads enough to beat serial clearly.
		if base.workers == 1 && epochs >= 32 {
			for _, p := range points {
				if p.workers >= 8 {
					speedup := float64(base.elapsed) / float64(p.elapsed)
					if speedup < v.gate {
						fmt.Fprintf(os.Stderr, "restore: %s reached only %.2fx at %d workers, want >= %.0fx\n",
							v.name, speedup, p.workers, v.gate)
						os.Exit(1)
					}
					break
				}
			}
		}
	}
	writeBenchJSON(jsonPath, recs...)
}

const gfKernelBuf = 64 << 10

// gfKernelThroughput measures the table-driven (possibly vectorized)
// multiply-accumulate against the per-byte reference, best of five passes
// each, in bytes per second of real time.
func gfKernelThroughput() (table, ref float64) {
	c := erasure.New(4, 2)
	src := make([]byte, gfKernelBuf)
	dst := make([]byte, gfKernelBuf)
	for i := range src {
		src[i] = byte(i*7 + 3)
	}
	measure := func(f func()) float64 {
		const rounds = 64
		best := time.Duration(1<<63 - 1)
		for pass := 0; pass < 5; pass++ {
			start := time.Now()
			for r := 0; r < rounds; r++ {
				f()
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return float64(gfKernelBuf) * rounds / best.Seconds()
	}
	table = measure(func() { c.MulAdd(dst, src, 0x8e) })
	ref = measure(func() { erasure.MulAddRef(dst, src, 0x8e) })
	return table, ref
}

// restorePoint is one sweep point of one damage variant.
type restorePoint struct {
	workers   int
	elapsed   time.Duration // virtual time of the whole restore
	tierBusy  time.Duration // summed SpanRestore durations (overlap > elapsed)
	folded    int
	identical bool
	spans     []obs.Span
}

// restoreFill is the deterministic page content: every epoch rewrites the
// full working set, so the chain is maximally wide and every epoch's read
// cost is equal.
func restoreFill(p, e int) []byte {
	buf := make([]byte, restorePageSize)
	for i := range buf {
		buf[i] = byte(p*31 + e*7 + i%251)
	}
	return buf
}

// sweepRestore seals the chain through h, applies the damage, and restores
// at every worker count, measuring virtual time per point. It runs inside
// its caller's kernel app process.
func sweepRestore(k *sim.Kernel, h *multilevel.Hierarchy, met *obs.Metrics, epochs, pages int, damage func(), workers []int) []restorePoint {
	points := make([]restorePoint, 0, len(workers))
	k.Go("app", func() {
		for e := 1; e <= epochs; e++ {
			for p := 0; p < pages; p++ {
				data := restoreFill(p, e)
				if err := h.WritePage(uint64(e), p, data, len(data)); err != nil {
					panic(err)
				}
			}
			if err := h.EndEpoch(uint64(e)); err != nil {
				panic(err)
			}
		}
		h.WaitDrained()
		if err := h.Close(); err != nil {
			panic(err)
		}
		damage()

		var baseIm *ckpt.Image
		for _, w := range workers {
			spanMark := len(met.Spans.Snapshot())
			start := k.Now()
			im, steps, err := h.RestoreWith(multilevel.RestoreOptions{Workers: w})
			if err != nil {
				fmt.Fprintf(os.Stderr, "restore: workers=%d: %v\n", w, err)
				os.Exit(1)
			}
			pt := restorePoint{workers: w, elapsed: k.Now() - start, folded: len(steps)}
			for _, s := range met.Spans.Snapshot()[spanMark:] {
				if s.Kind == obs.SpanRestore {
					pt.spans = append(pt.spans, s)
					pt.tierBusy += s.Dur()
				}
			}
			if baseIm == nil {
				baseIm = im
				pt.identical = true
			} else {
				pt.identical = imagesEqual(baseIm, im)
			}
			points = append(points, pt)
		}
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	return points
}

// runRestorePFS builds a 2-tier hierarchy (local + striped PFS), seals the
// chain, wipes L1 and sweeps restore workers: every epoch is read back from
// the parallel file system, whose per-request overhead and striping reward
// overlapping reads — the client NIC is left unmodeled, as at these page
// sizes the server request cost dominates.
func runRestorePFS(epochs, pages, servers int, workers []int) []restorePoint {
	k := sim.NewKernel()
	met := obs.New(k.Now)
	met.Spans = obs.NewSpanLog(4 * epochs * len(workers))
	links := make([]*netsim.Link, servers)
	for i := range links {
		links[i] = netsim.NewLink(k, netsim.LinkConfig{
			Name:        fmt.Sprintf("pfs-server-%d", i),
			BytesPerSec: 100 << 20,
			PerMessage:  200 * time.Microsecond,
		})
	}
	local := multilevel.NewLocalTier(k, "local", &ckpt.MemFS{}, restorePageSize, nil)
	pfs := multilevel.NewLocalTier(k, "pfs", &ckpt.MemFS{}, restorePageSize, storage.NewSimPFS(nil, links))
	h, err := multilevel.New(multilevel.Config{
		Env: k, PageSize: restorePageSize, Local: local,
		Lower: []multilevel.Tier{pfs}, Metrics: met,
	})
	if err != nil {
		panic(err)
	}
	return sweepRestore(k, h, met, epochs, pages, func() {
		// Bill restore-path reads to the simulated servers (write-side
		// drains are done, so enabling it now shifts no drain timestamps),
		// then destroy the fast tier.
		pfs.SetChargeReads(true)
		if err := local.Wipe(); err != nil {
			panic(err)
		}
	}, workers)
}

// runRestorePeer builds a 2-tier hierarchy (local + erasure-coded peers),
// seals the chain, wipes L1 and fails one peer node: every epoch is
// reconstructed from its surviving shards, fetched over the peers' NICs.
// Shard rotation staggers which nodes consecutive epochs occupy, so
// concurrent epoch loads spread over distinct NICs.
func runRestorePeer(epochs, pages int, workers []int) []restorePoint {
	const peerNodes = 8
	k := sim.NewKernel()
	met := obs.New(k.Now)
	met.Spans = obs.NewSpanLog(4 * epochs * len(workers))
	nodes := make([]*multilevel.PeerNode, peerNodes)
	for i := range nodes {
		nic := netsim.NewLink(k, netsim.LinkConfig{
			Name:        fmt.Sprintf("peer%d-nic", i),
			BytesPerSec: 117.5e6,
			PerMessage:  50 * time.Microsecond,
		})
		nodes[i] = multilevel.NewPeerNode(fmt.Sprintf("peer%d", i), nic)
	}
	peer, err := multilevel.NewPeerTier("peer", 2, 1, nodes, nil)
	if err != nil {
		panic(err)
	}
	local := multilevel.NewLocalTier(k, "local", &ckpt.MemFS{}, restorePageSize, nil)
	h, err := multilevel.New(multilevel.Config{
		Env: k, PageSize: restorePageSize, Local: local,
		Lower: []multilevel.Tier{peer}, Metrics: met,
	})
	if err != nil {
		panic(err)
	}
	return sweepRestore(k, h, met, epochs, pages, func() {
		if err := local.Wipe(); err != nil {
			panic(err)
		}
		nodes[0].Fail()
	}, workers)
}
