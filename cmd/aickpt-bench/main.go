// Command aickpt-bench runs checkpointing benchmarks in the virtual-time
// simulator.
//
// The default scenario ("synthetic") is the paper's §4.3 memory-intensive
// benchmark: a region touched fully per iteration in a configurable order,
// checkpointed periodically, under one of the three checkpointing
// approaches, on a simulated Grid'5000 node. It prints the execution-time
// overhead and the access-type statistics of Figures 2(a)-(c).
//
// The "tiers" scenario compares 1-, 2- and 3-tier multi-level checkpoint
// hierarchies (local disk, erasure-coded peers, parallel file system)
// under injected failures: the local tier is wiped and peer nodes are
// killed after the run, then a tier-aware restore rebuilds the memory
// image from whatever survives.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "synthetic", "scenario: synthetic (Fig 2 benchmark), tiers (multi-level hierarchy under failures), chain (dedup + compaction vs chain growth), parallel (commit-pipeline worker scaling), hotpath (real-time commit-path throughput and blocked time), restore (restore-pipeline worker scaling + GF kernel)")
	jsonPath := flag.String("json", "", "append machine-readable result records to this JSON file (hotpath, parallel, tiers and restore scenarios)")
	hotPages := flag.Int("hotpath-pages", 2048, "hotpath scenario: working-set pages (4 KB each)")
	hotEpochs := flag.Int("hotpath-epochs", 8, "hotpath scenario: measured checkpoints per sweep point")
	hotWorkers := flag.Int("hotpath-workers", 1, "hotpath scenario: commit workers")
	debugAddr := flag.String("debug-addr", "", "hotpath scenario: serve the live debug endpoint on this address during the largest sweep point and self-scrape /metrics and /trace (e.g. 127.0.0.1:0)")
	patternFlag := flag.String("pattern", "ascending", "access pattern: ascending, random, descending")
	strategyFlag := flag.String("strategy", "adaptive", "approach: adaptive, no-pattern, sync")
	scale := flag.Int("scale", experiments.ScaleBench, "memory division factor (1 = 256 MB region)")
	cowMB := flag.Int("cow", 16, "COW buffer size in MB before scaling")
	iterations := flag.Int("iterations", 39, "total iterations")
	every := flag.Int("every", 10, "checkpoint every N iterations")
	peerFailures := flag.Int("peer-failures", 1, "tiers scenario: peer nodes killed before restore")
	chainEpochs := flag.Int("chain-epochs", 128, "chain scenario: epochs sealed")
	chainDepth := flag.Int("chain-depth", 8, "chain scenario: compaction depth bound")
	chainPages := flag.Int("chain-pages", 256, "chain scenario: working-set pages")
	parPages := flag.Int("parallel-pages", 2048, "parallel scenario: working-set pages (4 KB each)")
	parEpochs := flag.Int("parallel-epochs", 4, "parallel scenario: checkpoints taken")
	parServers := flag.Int("parallel-servers", 8, "parallel scenario: simulated PFS servers")
	parInterfere := flag.Int("parallel-interfere", 32, "parallel scenario: pages rewritten mid-flush per epoch")
	parWorkers := flag.String("parallel-workers", "1,2,4,8", "parallel scenario: comma-separated commit worker counts (first is the baseline)")
	resEpochs := flag.Int("restore-epochs", 48, "restore scenario: chain width (sealed epochs)")
	resPages := flag.Int("restore-pages", 64, "restore scenario: pages rewritten per epoch (4 KB each)")
	resServers := flag.Int("restore-servers", 8, "restore scenario: simulated PFS servers")
	resWorkers := flag.String("restore-workers", "1,2,4,8", "restore scenario: comma-separated epoch-loader counts (first is the baseline)")
	flag.Parse()

	if *scenario == "restore" {
		restoreScenario(*resEpochs, *resPages, *resServers, *resWorkers, *jsonPath)
		return
	}

	if *scenario == "chain" {
		chainScenario(*chainEpochs, *chainDepth, *chainPages)
		return
	}

	if *scenario == "parallel" {
		parallelScenario(*parPages, *parEpochs, *parServers, *parInterfere, *parWorkers, *jsonPath)
		return
	}

	if *scenario == "hotpath" {
		hotpathScenario(*hotPages, *hotEpochs, *hotWorkers, *jsonPath, *debugAddr)
		return
	}

	if *scenario == "tiers" {
		// The -iterations/-every defaults are tuned for the synthetic
		// scenario; when the user did not set them explicitly, use a
		// tiers-sized default instead.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		it, ev := *iterations, *every
		if !explicit["iterations"] {
			it = 6
		}
		if !explicit["every"] {
			ev = 2
		}
		tiersScenario(it, ev, *peerFailures, *jsonPath)
		return
	}
	if *scenario != "synthetic" {
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	var pattern workload.Pattern
	switch *patternFlag {
	case "ascending":
		pattern = workload.Ascending
	case "random":
		pattern = workload.Random
	case "descending":
		pattern = workload.Descending
	default:
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", *patternFlag)
		os.Exit(2)
	}
	var strategy core.Strategy
	switch *strategyFlag {
	case "adaptive":
		strategy = core.Adaptive
	case "no-pattern":
		strategy = core.NoPattern
	case "sync":
		strategy = core.Sync
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategyFlag)
		os.Exit(2)
	}

	cfg := experiments.NewSyntheticConfig(*scale, pattern)
	cfg.Iterations = *iterations
	cfg.CkptEvery = *every
	cfg.CowSlots = *cowMB << 20 / experiments.PageSize / *scale

	base := experiments.SyntheticBaseline(cfg)
	run := experiments.RunSynthetic(cfg, strategy)
	run.Baseline = base

	fmt.Printf("pattern=%v strategy=%v pages=%d cow-slots=%d\n", pattern, strategy, cfg.Pages, cfg.CowSlots)
	fmt.Printf("baseline runtime:        %v\n", base)
	fmt.Printf("runtime with checkpoints: %v\n", run.Runtime)
	fmt.Printf("increase in execution time: %v\n", run.Overhead())
	fmt.Printf("avg checkpointing time:  %v\n", run.AvgCkptTime)
	fmt.Printf("access types per checkpoint: WAIT=%.1f COW=%.1f AVOIDED=%.1f AFTER=%.1f\n",
		run.AvgWaits, run.AvgCows, run.AvgAvoided, run.AvgAfter)
}
