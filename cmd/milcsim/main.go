// Command milcsim runs the MILC case study (§4.5): a lattice-QCD
// configuration-generation workload on a simulated Shamrock deployment (10
// processes per node, checkpoints on node-local disks).
//
// Modes:
//
//	milcsim -weak            weak-scalability sweep (Figure 5)
//	milcsim -cowsweep        COW-buffer sweep at 280 processes (Figure 4b)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	weak := flag.Bool("weak", false, "run the weak-scalability sweep (Figure 5)")
	cowsweep := flag.Bool("cowsweep", false, "run the COW-buffer sweep (Figure 4b)")
	scale := flag.Int("scale", 8*experiments.ScaleBench, "memory division factor (1 = paper scale)")
	maxProcs := flag.Int("procs", 280, "maximum process count (multiple of 10)")
	flag.Parse()

	if !*weak && !*cowsweep {
		fmt.Fprintln(os.Stderr, "choose -weak and/or -cowsweep")
		os.Exit(2)
	}
	if *weak {
		var procs []int
		for _, p := range []int{10, 40, 120, 280} {
			if p <= *maxProcs {
				procs = append(procs, p)
			}
		}
		experiments.RenderFig5(os.Stdout, experiments.Fig5(*scale, procs))
	}
	if *cowsweep {
		rows := experiments.Fig4b(*scale, *maxProcs, []int{0, 1, 4, 16, 64, 256})
		experiments.RenderFig4(os.Stdout, "Figure 4(b)", rows)
	}
}
