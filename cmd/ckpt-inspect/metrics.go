package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	aickpt "repro"
)

// runMetrics implements the `ckpt-inspect metrics <target>` mode: target is
// either the address of a live debug endpoint (Options.DebugAddr, scraped
// over HTTP at /snapshot and /trace) or the path of a snapshot JSON file
// (the /snapshot payload saved to disk). It renders the counters and per-
// stage latency histograms of the snapshot as tables, and — for a live
// target — the tail of the pipeline trace journal.
func runMetrics(target string) {
	var snap aickpt.MetricsSnapshot
	var trace []inspectTraceEvent
	if isLiveTarget(target) {
		base := target
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		base = strings.TrimSuffix(base, "/")
		if err := getJSON(base+"/snapshot", &snap); err != nil {
			fmt.Fprintln(os.Stderr, "ckpt-inspect metrics:", err)
			os.Exit(1)
		}
		if err := getJSON(base+"/trace", &trace); err != nil {
			fmt.Fprintln(os.Stderr, "ckpt-inspect metrics:", err)
			os.Exit(1)
		}
		fmt.Printf("live debug endpoint %s\n\n", target)
	} else {
		data, err := os.ReadFile(target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ckpt-inspect metrics:", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(data, &snap); err != nil {
			fmt.Fprintf(os.Stderr, "ckpt-inspect metrics: %s is not a snapshot JSON: %v\n", target, err)
			os.Exit(1)
		}
		fmt.Printf("snapshot file %s\n\n", target)
	}

	printCounters(snap)
	printHistograms(snap)
	printTrace(trace)
}

// isLiveTarget decides between the scrape and file forms of the argument: a
// URL scheme or a host:port that is not an existing file means live.
func isLiveTarget(target string) bool {
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		return true
	}
	if _, err := os.Stat(target); err == nil {
		return false
	}
	return strings.Contains(target, ":")
}

func getJSON(url string, v any) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// inspectTraceEvent mirrors the debug server's /trace wire format.
type inspectTraceEvent struct {
	Seq   uint64 `json:"seq"`
	AtNs  int64  `json:"at_ns"`
	Stage string `json:"stage"`
	Epoch uint64 `json:"epoch"`
	Page  int32  `json:"page"`
	Tier  int8   `json:"tier"`
	Value int64  `json:"value"`
}

func printCounters(snap aickpt.MetricsSnapshot) {
	names := make([]string, 0, len(snap.Counters)+len(snap.Gauges))
	for n := range snap.Counters {
		names = append(names, n)
	}
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%-48s %s\n", "counter/gauge", "value")
	for _, n := range names {
		if v, ok := snap.Counters[n]; ok {
			fmt.Printf("%-48s %d\n", n, v)
		} else {
			fmt.Printf("%-48s %d\n", n, snap.Gauges[n])
		}
	}
}

func printHistograms(snap aickpt.MetricsSnapshot) {
	names := make([]string, 0, len(snap.Histograms))
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("\n%-48s %-10s %-12s %-12s %-12s %-12s %s\n",
		"histogram", "count", "mean", "p50", "p90", "p99", "max")
	for _, n := range names {
		h := snap.Histograms[n]
		if h.Count == 0 {
			fmt.Printf("%-48s %-10d %-12s %-12s %-12s %-12s %s\n", n, 0, "-", "-", "-", "-", "-")
			continue
		}
		// The *_ns families are durations; render them humanely. Size and
		// ratio families stay plain numbers.
		render := func(v float64) string { return fmt.Sprintf("%.0f", v) }
		if strings.HasSuffix(strings.SplitN(n, "{", 2)[0], "_ns") {
			render = func(v float64) string {
				return time.Duration(int64(v)).Round(time.Microsecond).String()
			}
		}
		fmt.Printf("%-48s %-10d %-12s %-12s %-12s %-12s %s\n",
			n, h.Count, render(h.Mean()),
			render(h.Quantile(0.5)), render(h.Quantile(0.9)), render(h.Quantile(0.99)),
			render(float64(h.Max)))
	}
}

func printTrace(trace []inspectTraceEvent) {
	if len(trace) == 0 {
		return
	}
	const tail = 32
	start := 0
	if len(trace) > tail {
		start = len(trace) - tail
	}
	fmt.Printf("\ntrace journal: %d event(s), showing last %d\n", len(trace), len(trace)-start)
	fmt.Printf("%-10s %-14s %-12s %-8s %-8s %-6s %s\n", "seq", "at", "stage", "epoch", "page", "tier", "value")
	for _, e := range trace[start:] {
		page := "-"
		if e.Page >= 0 {
			page = fmt.Sprintf("%d", e.Page)
		}
		fmt.Printf("%-10d %-14s %-12s %-8d %-8s %-6d %d\n",
			e.Seq, time.Duration(e.AtNs).Round(time.Microsecond), e.Stage, e.Epoch, page, e.Tier, e.Value)
	}
}
