package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	aickpt "repro"
)

// loadEpochs fetches the flight-recorder payload: from a live debug
// endpoint's /epochs route, or from a file holding saved /epochs JSON.
func loadEpochs(target string) []aickpt.EpochRecord {
	var records []aickpt.EpochRecord
	if isLiveTarget(target) {
		base := target
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		base = strings.TrimSuffix(base, "/")
		if err := getJSON(base+"/epochs", &records); err != nil {
			fmt.Fprintln(os.Stderr, "ckpt-inspect:", err)
			os.Exit(1)
		}
		fmt.Printf("live debug endpoint %s\n\n", target)
	} else {
		data, err := os.ReadFile(target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ckpt-inspect:", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(data, &records); err != nil {
			fmt.Fprintf(os.Stderr, "ckpt-inspect: %s is not an /epochs JSON: %v\n", target, err)
			os.Exit(1)
		}
		fmt.Printf("epochs file %s\n\n", target)
	}
	return records
}

// runEpochs implements `ckpt-inspect epochs <target>`: the per-epoch
// lifecycle span tree with the critical-path breakdown.
func runEpochs(target string) {
	records := loadEpochs(target)
	if len(records) == 0 {
		fmt.Println("no epoch records")
		return
	}
	for _, r := range records {
		fmt.Printf("epoch %d", r.Epoch)
		if r.TotalNs > 0 {
			fmt.Printf("  total %s", time.Duration(r.TotalNs).Round(time.Microsecond))
		}
		if r.Bounding != "" {
			fmt.Printf("  bounded by %s", r.Bounding)
		}
		fmt.Println()
		if r.Spans != nil {
			printSpanNode(*r.Spans, 1)
		}
		if len(r.Critical) > 0 {
			fmt.Printf("  critical path:")
			for _, c := range r.Critical {
				stage := c.Stage
				if c.Tier != 0 {
					stage = fmt.Sprintf("%s[%d]", c.Stage, c.Tier)
				}
				fmt.Printf(" %s %s (%.0f%%)", stage,
					time.Duration(c.DurNs).Round(time.Microsecond), c.Share*100)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	printRestoreByTier(records)
}

// printRestoreByTier rolls the records' restore stages up per tier: how
// many epochs each tier served during the restore and how much of the
// restore's critical path it accounts for. Silent when the run recorded
// no restore spans.
func printRestoreByTier(records []aickpt.EpochRecord) {
	type agg struct {
		epochs int
		durNs  int64
	}
	byTier := map[int8]*agg{}
	var total int64
	for _, r := range records {
		for _, c := range r.Critical {
			if c.Stage != "restore" {
				continue
			}
			a := byTier[c.Tier]
			if a == nil {
				a = &agg{}
				byTier[c.Tier] = a
			}
			a.epochs++
			a.durNs += c.DurNs
			total += c.DurNs
		}
	}
	if total == 0 {
		return
	}
	tiers := make([]int, 0, len(byTier))
	for tier := range byTier {
		tiers = append(tiers, int(tier))
	}
	sort.Ints(tiers)
	fmt.Println("restore critical path by tier:")
	for _, tier := range tiers {
		a := byTier[int8(tier)]
		fmt.Printf("  tier %d  %3d epochs  %12s total  %12s avg  (%.0f%% of restore time)\n",
			tier, a.epochs,
			time.Duration(a.durNs).Round(time.Microsecond),
			time.Duration(a.durNs/int64(a.epochs)).Round(time.Microsecond),
			100*float64(a.durNs)/float64(total))
	}
}

func printSpanNode(n aickpt.SpanNode, depth int) {
	label := n.Kind
	if n.Tier != 0 {
		label = fmt.Sprintf("%s[%d]", n.Kind, n.Tier)
	}
	fmt.Printf("%s%-14s [%s, %s]  %s\n",
		strings.Repeat("  ", depth), label,
		time.Duration(n.StartNs).Round(time.Microsecond),
		time.Duration(n.EndNs).Round(time.Microsecond),
		time.Duration(n.DurNs).Round(time.Microsecond))
	for _, c := range n.Children {
		printSpanNode(c, depth+1)
	}
}

// runScorecard implements `ckpt-inspect scorecard <target>`: the selector
// prediction scorecard table plus per-region fault heatmaps.
func runScorecard(target string) {
	records := loadEpochs(target)
	fmt.Printf("%-8s %-8s %-9s %-6s %-6s %-8s %-6s %-7s %-9s %s\n",
		"epoch", "flushed", "arrivals", "waits", "cows", "avoided", "after", "waitq", "hit_rate", "rank_corr")
	n := 0
	for _, r := range records {
		sc := r.Scorecard
		if sc == nil {
			continue
		}
		n++
		fmt.Printf("%-8d %-8d %-9d %-6d %-6d %-8d %-6d %-7d %-9.3f %.3f\n",
			sc.Epoch, sc.PagesFlushed, sc.FaultArrivals,
			sc.Waits, sc.Cows, sc.Avoided, sc.After,
			sc.MaxWaitedDepth, sc.HitRate, sc.RankCorrelation)
	}
	if n == 0 {
		fmt.Println("(no scorecards recorded)")
		return
	}
	fmt.Printf("\nfault heat (all faults / COW-absorbed), %d buckets over the page space:\n", heatWidth(records))
	for _, r := range records {
		sc := r.Scorecard
		if sc == nil || len(sc.FaultHeat) == 0 {
			continue
		}
		fmt.Printf("%-8d %s\n", sc.Epoch, heatString(sc.FaultHeat))
		if len(sc.CowHeat) > 0 {
			fmt.Printf("%-8s %s\n", "", heatString(sc.CowHeat))
		}
	}
}

func heatWidth(records []aickpt.EpochRecord) int {
	for _, r := range records {
		if r.Scorecard != nil && len(r.Scorecard.FaultHeat) > 0 {
			return len(r.Scorecard.FaultHeat)
		}
	}
	return 0
}

// heatString renders a heatmap as one character per bucket, scaled to the
// row's own maximum.
func heatString(heat []uint32) string {
	const ramp = " .:-=+*#%@"
	var max uint32
	for _, v := range heat {
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	sb.WriteByte('|')
	for _, v := range heat {
		if max == 0 {
			sb.WriteByte(' ')
			continue
		}
		i := int(uint64(v) * uint64(len(ramp)-1) / uint64(max))
		sb.WriteByte(ramp[i])
	}
	sb.WriteByte('|')
	return sb.String()
}
