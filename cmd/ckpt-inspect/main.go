// Command ckpt-inspect examines an AI-Ckpt checkpoint repository: it lists
// every sealed epoch, verifies record integrity (per-page FNV-64a hashes)
// and reports the restart point. When the repository is the local tier of
// a multi-level hierarchy, it also prints each epoch's tier manifest:
// which tiers hold the epoch, in what state, and the erasure shard layout
// on the peer tier.
//
// Usage:
//
//	ckpt-inspect <repository-dir>
package main

import (
	"fmt"
	"os"
	"strings"

	aickpt "repro"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: ckpt-inspect <repository-dir>")
		os.Exit(2)
	}
	dir := os.Args[1]
	reports, err := aickpt.Inspect(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-inspect:", err)
		os.Exit(1)
	}
	if len(reports) == 0 {
		fmt.Println("no sealed epochs found")
		os.Exit(0)
	}
	fmt.Printf("%-8s %-10s %-8s %-12s %-8s %s\n", "epoch", "pagesize", "pages", "bytes", "healthy", "problem")
	healthy := true
	for _, r := range reports {
		status := "yes"
		if !r.Healthy {
			status = "NO"
			healthy = false
		}
		fmt.Printf("%-8d %-10d %-8d %-12d %-8s %s\n",
			r.Epoch, r.PageSize, r.PageCount, r.TotalBytes, status, r.Problem)
	}
	if tiers, err := aickpt.InspectTiers(dir); err != nil {
		fmt.Fprintf(os.Stderr, "ckpt-inspect: tier manifests unreadable: %v\n", err)
		healthy = false
	} else if len(tiers) > 0 {
		fmt.Printf("\ntier manifests:\n")
		fmt.Printf("%-8s %-10s %-8s %-10s %s\n", "epoch", "tier", "level", "state", "shards")
		for _, m := range tiers {
			for _, tc := range m.Tiers {
				layout := "-"
				if tc.Shards != nil {
					layout = fmt.Sprintf("rs(k=%d,m=%d) start=%d on %s",
						tc.Shards.Data, tc.Shards.Parity, tc.Shards.Start, strings.Join(tc.Shards.Nodes, ","))
				}
				state := tc.State
				if tc.Err != "" {
					state += " (" + tc.Err + ")"
				}
				fmt.Printf("%-8d %-10s %-8d %-10s %s\n", m.Epoch, tc.Tier, tc.Level, state, layout)
			}
		}
	}
	if im, err := aickpt.Restore(dir); err == nil {
		fmt.Printf("\nrestart point: epoch %d (%d distinct pages, %d B page size)\n",
			im.Epoch, len(im.PageIDs()), im.PageSize)
	} else {
		fmt.Printf("\nrestore would fail: %v\n", err)
	}
	if !healthy {
		os.Exit(1)
	}
}
