// Command ckpt-inspect examines an AI-Ckpt checkpoint repository: it lists
// every chain entry — consolidated bases and sealed epochs — verifies
// record integrity (per-page FNV-64a hashes), reports per-epoch dedup
// ratios, marks entries superseded by a compacted base, sums the bytes a
// garbage-collection pass could reclaim, and prints the restart point.
// When the repository is the local tier of a multi-level hierarchy, it
// also prints each epoch's tier manifest: which tiers hold the epoch, in
// what state, and the erasure shard layout on the peer tier.
//
// The metrics mode inspects a running (or finished) runtime instead of a
// repository: given the address of a live debug endpoint
// (Options.DebugAddr) it scrapes /snapshot and /trace; given a file it
// reads a saved snapshot JSON. Either way it renders the metric counters,
// the per-stage latency histograms (count, mean, p50/p90/p99, max) and —
// when live — the tail of the pipeline trace journal.
//
// The epochs and scorecard modes read the epoch flight recorder (the
// /epochs endpoint, live or saved to a file): `epochs` prints each
// epoch's lifecycle span tree with its critical-path breakdown and the
// stage that bounded its latency; `scorecard` prints the selector
// prediction scorecard — predicted flush order vs actual fault arrivals
// as hit rate and rank correlation — plus the per-region fault heatmaps.
//
// Usage:
//
// The verify mode runs the read-only integrity check (record hashes,
// manifest decode, torn-tail vs interior-corruption classification) over a
// repository directory, reporting for each damaged entry which lower tier
// a scrub could repair it from; pointed at a live debug address it POSTs
// /scrub instead, asking the running runtime to verify and self-heal.
//
// Usage:
//
//	ckpt-inspect <repository-dir>
//	ckpt-inspect verify <repository-dir | debug-addr>
//	ckpt-inspect metrics <debug-addr | snapshot.json>
//	ckpt-inspect epochs <debug-addr | epochs.json>
//	ckpt-inspect scorecard <debug-addr | epochs.json>
package main

import (
	"fmt"
	"os"
	"strings"

	aickpt "repro"
)

func main() {
	if len(os.Args) == 3 {
		switch os.Args[1] {
		case "metrics":
			runMetrics(os.Args[2])
			return
		case "epochs":
			runEpochs(os.Args[2])
			return
		case "scorecard":
			runScorecard(os.Args[2])
			return
		case "verify":
			runVerify(os.Args[2])
			return
		}
	}
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: ckpt-inspect <repository-dir>\n"+
			"       ckpt-inspect verify <repository-dir | debug-addr>\n"+
			"       ckpt-inspect metrics <debug-addr | snapshot.json>\n"+
			"       ckpt-inspect epochs <debug-addr | epochs.json>\n"+
			"       ckpt-inspect scorecard <debug-addr | epochs.json>")
		os.Exit(2)
	}
	dir := os.Args[1]
	reports, err := aickpt.Inspect(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-inspect:", err)
		os.Exit(1)
	}
	if len(reports) == 0 {
		fmt.Println("no sealed epochs found")
		os.Exit(0)
	}
	fmt.Printf("%-16s %-10s %-8s %-8s %-8s %-12s %-10s %-8s %s\n",
		"entry", "pagesize", "pages", "deduped", "dedup%", "bytes", "status", "healthy", "problem")
	healthy := true
	for _, r := range reports {
		entry := fmt.Sprintf("epoch %d", r.Epoch)
		if r.IsBase {
			entry = fmt.Sprintf("base [%d,%d]", r.BaseFrom, r.BaseTo)
		}
		status := "live"
		if r.Superseded {
			status = "superseded"
		}
		ok := "yes"
		if !r.Healthy {
			ok = "NO"
			healthy = false
		}
		fmt.Printf("%-16s %-10d %-8d %-8d %-8s %-12d %-10s %-8s %s\n",
			entry, r.PageSize, r.PageCount, r.Deduped,
			fmt.Sprintf("%.0f%%", r.DedupRatio*100), r.TotalBytes, status, ok, r.Problem)
	}
	if sum, err := aickpt.InspectChain(dir); err == nil {
		fmt.Printf("\nchain: %d live segment(s), %d B live", sum.LiveSegments, sum.LiveBytes)
		if sum.HasBase {
			fmt.Printf(", base covers epochs [%d,%d]", sum.BaseFrom, sum.BaseTo)
		}
		if sum.Deduped > 0 {
			fmt.Printf(", %d page write(s) deduplicated", sum.Deduped)
		}
		fmt.Printf("\nreclaimable by GC: %d B\n", sum.ReclaimableBytes)
	}
	if tiers, err := aickpt.InspectTiers(dir); err != nil {
		fmt.Fprintf(os.Stderr, "ckpt-inspect: tier manifests unreadable: %v\n", err)
		healthy = false
	} else if len(tiers) > 0 {
		fmt.Printf("\ntier manifests:\n")
		fmt.Printf("%-16s %-10s %-8s %-12s %s\n", "entry", "tier", "level", "state", "shards")
		for _, m := range tiers {
			entry := fmt.Sprintf("epoch %d", m.Epoch)
			if m.IsBase {
				entry = fmt.Sprintf("base [%d,%d]", m.BaseFrom, m.BaseTo)
			}
			for _, tc := range m.Tiers {
				layout := "-"
				if tc.Shards != nil {
					layout = fmt.Sprintf("rs(k=%d,m=%d) start=%d on %s",
						tc.Shards.Data, tc.Shards.Parity, tc.Shards.Start, strings.Join(tc.Shards.Nodes, ","))
				}
				state := tc.State
				if tc.Err != "" {
					state += " (" + tc.Err + ")"
				}
				fmt.Printf("%-16s %-10s %-8d %-12s %s\n", entry, tc.Tier, tc.Level, state, layout)
			}
		}
	}
	if im, err := aickpt.Restore(dir); err == nil {
		fmt.Printf("\nrestart point: epoch %d (%d distinct pages, %d B page size, %d segment(s) read)\n",
			im.Epoch, len(im.PageIDs()), im.PageSize, im.SegmentsRead())
	} else {
		fmt.Printf("\nrestore would fail: %v\n", err)
	}
	if !healthy {
		os.Exit(1)
	}
}
