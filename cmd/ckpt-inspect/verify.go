package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	aickpt "repro"
)

// runVerify implements `ckpt-inspect verify <dir|addr>`. Given a
// repository directory it runs the read-only integrity check and — when
// tier manifests are mirrored there — says which lower tier a scrub could
// repair each damaged entry from. Given a live debug address it POSTs to
// /scrub, asking the running runtime to verify AND repair, and prints the
// scrub report.
func runVerify(target string) {
	if isLiveTarget(target) {
		runVerifyLive(target)
		return
	}
	health, err := aickpt.Verify(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-inspect:", err)
		os.Exit(1)
	}
	if len(health) == 0 {
		fmt.Println("empty chain: nothing to verify")
		return
	}
	// Map each epoch to the lower tiers holding a usable copy, from the
	// mirrored tier manifests (absent for single-tier repositories).
	holders := map[uint64][]string{}
	if tiers, err := aickpt.InspectTiers(target); err == nil {
		for _, m := range tiers {
			for _, tc := range m.Tiers {
				if tc.Level > 0 && (tc.State == "stored" || tc.State == "degraded") {
					holders[m.Epoch] = append(holders[m.Epoch], tc.Tier)
				}
			}
		}
	}
	fmt.Printf("%-24s %-10s %-18s %-24s %s\n", "entry", "epoch", "status", "repairable-from", "detail")
	damaged := 0
	for _, h := range health {
		entry := h.Manifest
		repair := "-"
		if h.Damaged {
			damaged++
			repair = "nothing: no tier holds it"
			if hs := holders[h.Epoch]; len(hs) > 0 {
				repair = strings.Join(hs, ",")
			}
		}
		fmt.Printf("%-24s %-10d %-18s %-24s %s\n", entry, h.Epoch, h.Status, repair, h.Detail)
	}
	if damaged > 0 {
		fmt.Printf("\ndamaged entries: %d; run a scrub (POST /scrub on a live runtime) to repair\n", damaged)
		os.Exit(1)
	}
	fmt.Println("\nchain healthy")
}

func runVerifyLive(addr string) {
	url := addr
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		url = "http://" + url
	}
	client := &http.Client{Timeout: time.Minute}
	resp, err := client.Post(url+"/scrub", "application/json", nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-inspect:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-inspect:", err)
		os.Exit(1)
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "ckpt-inspect: POST %s/scrub: %s: %s\n", url, resp.Status, strings.TrimSpace(string(body)))
		os.Exit(1)
	}
	var rep aickpt.ScrubReport
	if err := json.Unmarshal(body, &rep); err != nil {
		fmt.Fprintln(os.Stderr, "ckpt-inspect:", err)
		os.Exit(1)
	}
	fmt.Printf("scrub: %d checked, %d corrupt, %d repaired, %d unrepaired, %d requeued\n",
		rep.Checked, rep.Corrupt, rep.Repaired, rep.Unrepaired, rep.Requeued)
	for _, e := range rep.Entries {
		entry := fmt.Sprintf("epoch %d", e.Epoch)
		if e.IsBase {
			entry = fmt.Sprintf("base ending at %d", e.Epoch)
		}
		action := e.Action
		if action == "" {
			action = "-"
		}
		fmt.Printf("  %-20s %-18s %-40s %s\n", entry, e.Status, action, e.Detail)
	}
	if rep.Unrepaired > 0 {
		os.Exit(1)
	}
}
