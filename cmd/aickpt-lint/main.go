// Command aickpt-lint runs the repository's static-analysis suite: the
// stdlib-only analyzers in internal/lint that machine-enforce the hot-path,
// locking, pooling and virtual-time invariants. It exits 0 when the tree is
// clean, 1 when any diagnostic fires (CI fails on that), 2 on load errors.
//
//	aickpt-lint ./...                  # whole module
//	aickpt-lint ./internal/core        # one package
//	aickpt-lint -run hotpath ./...     # one analyzer
//	aickpt-lint -json ./...            # machine-readable diagnostics
package main

import (
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
