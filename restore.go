package aickpt

import (
	"fmt"
	"sort"

	"repro/internal/ckpt"
)

// Image is a restored memory image: for every page ever checkpointed, the
// newest content from the last sealed epoch backwards. Pages absent from
// the image were never written before the restart point and hold zeros.
type Image struct {
	// PageSize is the page granularity the repository was written with.
	PageSize int
	// Epoch is the newest sealed checkpoint folded into the image.
	Epoch uint64
	inner *ckpt.Image
}

// Page returns the restored content of a global page ID (zeros if the page
// was never checkpointed). For never-checkpointed pages the returned slice
// is a shared read-only zero page: treat it as immutable and copy it
// before writing.
func (im *Image) Page(id int) []byte { return im.inner.PageOr(id) }

// SegmentsRead reports how many segments the restore parsed. With a
// compacted chain it is bounded by the compaction depth (the consolidated
// base plus the epochs after it) instead of growing with run length.
func (im *Image) SegmentsRead() int { return im.inner.SegmentsRead }

// PageIDs returns the sorted IDs of all pages present in the image.
func (im *Image) PageIDs() []int {
	ids := make([]int, 0, len(im.inner.Pages))
	for id := range im.inner.Pages {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Restore reads the checkpoint repository in dir and folds all sealed
// epochs into a memory image. Epochs interrupted by a crash before sealing
// are ignored: the restart point is the last completed checkpoint.
// Segments are parsed by min(GOMAXPROCS, 8) concurrent readers and folded
// in chain order, so the image is bit-identical to a serial restore; use
// RestoreWorkers to pin the worker count (1 = serial).
func Restore(dir string) (*Image, error) { return RestoreWorkers(dir, 0) }

// RestoreWorkers is Restore with an explicit segment-reader count:
// 1 restores serially, 0 picks min(GOMAXPROCS, 8).
func RestoreWorkers(dir string, workers int) (*Image, error) {
	fs, err := ckpt.NewOSFS(dir)
	if err != nil {
		return nil, err
	}
	im, err := ckpt.RestoreWith(fs, ckpt.RestoreOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	return &Image{PageSize: im.PageSize, Epoch: im.Epoch, inner: im}, nil
}

// LoadImage copies restored content into a region allocated by this
// runtime. The application must re-create its protected regions in the same
// order and with the same sizes as the crashed run (so page IDs line up),
// then load each. Loaded pages are clean: they re-enter checkpoints only
// when written again, which is correct because their content is already in
// the repository this runtime continues.
func (rt *Runtime) LoadImage(im *Image, r *Region) error {
	if im.PageSize != rt.opts.PageSize {
		return fmt.Errorf("aickpt: image page size %d != runtime page size %d", im.PageSize, rt.opts.PageSize)
	}
	buf := r.inner.Bytes()
	if buf == nil {
		return fmt.Errorf("aickpt: cannot load into phantom region")
	}
	first, count := r.inner.Pages()
	for i := 0; i < count; i++ {
		copy(buf[i*im.PageSize:(i+1)*im.PageSize], im.Page(first+i))
	}
	return nil
}

// Inspect verifies all sealed epochs in a repository directory and returns
// a health report per epoch; it backs the ckpt-inspect tool.
func Inspect(dir string) ([]EpochReport, error) {
	fs, err := ckpt.NewOSFS(dir)
	if err != nil {
		return nil, err
	}
	infos, err := ckpt.Inspect(fs)
	if err != nil {
		return nil, err
	}
	out := make([]EpochReport, len(infos))
	for i, in := range infos {
		out[i] = EpochReport{
			Epoch:      in.Epoch,
			PageSize:   in.PageSize,
			PageCount:  in.PageCount,
			TotalBytes: in.TotalBytes,
			Healthy:    in.SegmentOK,
			Problem:    in.Err,
			Deduped:    in.DedupCount(),
			DedupRatio: in.DedupRatio(),
			Superseded: in.Superseded,
		}
		if in.Base != nil {
			out[i].IsBase = true
			out[i].BaseFrom, out[i].BaseTo = in.Base.From, in.Base.To
		}
	}
	return out, nil
}

// EpochReport is the health summary of one chain entry: a sealed epoch or
// a consolidated base segment.
type EpochReport struct {
	Epoch      uint64
	PageSize   int
	PageCount  int
	TotalBytes int64
	Healthy    bool
	Problem    string
	// Deduped counts the epoch's pages elided by content-addressed dedup;
	// DedupRatio is Deduped over the epoch's total dirty pages.
	Deduped    int
	DedupRatio float64
	// Superseded entries are covered by a newer consolidated base: restore
	// ignores them and garbage collection will reclaim them.
	Superseded bool
	// IsBase marks a consolidated base segment covering [BaseFrom, BaseTo].
	IsBase           bool
	BaseFrom, BaseTo uint64
}

// ChainSummary condenses the repository chain: what restore will read, what
// compaction has folded, and what garbage collection could still reclaim.
type ChainSummary struct {
	PageSize int
	// LastEpoch is the restart point (through live epochs or the base).
	LastEpoch uint64
	// LiveSegments is the number of segments a restore reads.
	LiveSegments int
	// HasBase reports a committed consolidated base covering
	// [BaseFrom, BaseTo].
	HasBase          bool
	BaseFrom, BaseTo uint64
	// LiveBytes is the total segment size of the live chain; Deduped
	// counts page writes across it elided by dedup; ReclaimableBytes is
	// the garbage (superseded epochs, stale bases) still on disk.
	LiveBytes        int64
	Deduped          int
	ReclaimableBytes int64
}

// InspectChain summarizes the chain structure of a repository directory;
// it backs the ckpt-inspect tool's chain view.
func InspectChain(dir string) (ChainSummary, error) {
	fs, err := ckpt.NewOSFS(dir)
	if err != nil {
		return ChainSummary{}, err
	}
	ch, err := ckpt.LoadChain(fs)
	if err != nil {
		return ChainSummary{}, err
	}
	sum := ChainSummary{
		PageSize:         ch.PageSize,
		LiveSegments:     ch.LiveSegments(),
		ReclaimableBytes: ch.ReclaimableBytes(),
	}
	sum.LastEpoch, _ = ch.LastEpoch()
	if ch.Base != nil {
		sum.HasBase = true
		sum.BaseFrom, sum.BaseTo = ch.Base.Base.From, ch.Base.Base.To
		sum.LiveBytes += ch.Base.TotalBytes
	}
	for _, m := range ch.Epochs {
		sum.LiveBytes += m.TotalBytes
		sum.Deduped += m.DedupCount()
	}
	return sum, nil
}
