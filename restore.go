package aickpt

import (
	"fmt"
	"sort"

	"repro/internal/ckpt"
)

// Image is a restored memory image: for every page ever checkpointed, the
// newest content from the last sealed epoch backwards. Pages absent from
// the image were never written before the restart point and hold zeros.
type Image struct {
	// PageSize is the page granularity the repository was written with.
	PageSize int
	// Epoch is the newest sealed checkpoint folded into the image.
	Epoch uint64
	inner *ckpt.Image
}

// Page returns the restored content of a global page ID (zeros if the page
// was never checkpointed).
func (im *Image) Page(id int) []byte { return im.inner.PageOr(id) }

// PageIDs returns the sorted IDs of all pages present in the image.
func (im *Image) PageIDs() []int {
	ids := make([]int, 0, len(im.inner.Pages))
	for id := range im.inner.Pages {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Restore reads the checkpoint repository in dir and folds all sealed
// epochs into a memory image. Epochs interrupted by a crash before sealing
// are ignored: the restart point is the last completed checkpoint.
func Restore(dir string) (*Image, error) {
	fs, err := ckpt.NewOSFS(dir)
	if err != nil {
		return nil, err
	}
	im, err := ckpt.Restore(fs)
	if err != nil {
		return nil, err
	}
	return &Image{PageSize: im.PageSize, Epoch: im.Epoch, inner: im}, nil
}

// LoadImage copies restored content into a region allocated by this
// runtime. The application must re-create its protected regions in the same
// order and with the same sizes as the crashed run (so page IDs line up),
// then load each. Loaded pages are clean: they re-enter checkpoints only
// when written again, which is correct because their content is already in
// the repository this runtime continues.
func (rt *Runtime) LoadImage(im *Image, r *Region) error {
	if im.PageSize != rt.opts.PageSize {
		return fmt.Errorf("aickpt: image page size %d != runtime page size %d", im.PageSize, rt.opts.PageSize)
	}
	buf := r.inner.Bytes()
	if buf == nil {
		return fmt.Errorf("aickpt: cannot load into phantom region")
	}
	first, count := r.inner.Pages()
	for i := 0; i < count; i++ {
		copy(buf[i*im.PageSize:(i+1)*im.PageSize], im.Page(first+i))
	}
	return nil
}

// Inspect verifies all sealed epochs in a repository directory and returns
// a health report per epoch; it backs the ckpt-inspect tool.
func Inspect(dir string) ([]EpochReport, error) {
	fs, err := ckpt.NewOSFS(dir)
	if err != nil {
		return nil, err
	}
	infos, err := ckpt.Inspect(fs)
	if err != nil {
		return nil, err
	}
	out := make([]EpochReport, len(infos))
	for i, in := range infos {
		out[i] = EpochReport{
			Epoch:      in.Epoch,
			PageSize:   in.PageSize,
			PageCount:  in.PageCount,
			TotalBytes: in.TotalBytes,
			Healthy:    in.SegmentOK,
			Problem:    in.Err,
		}
	}
	return out, nil
}

// EpochReport is the health summary of one sealed epoch.
type EpochReport struct {
	Epoch      uint64
	PageSize   int
	PageCount  int
	TotalBytes int64
	Healthy    bool
	Problem    string
}
