package aickpt

import "repro/internal/pagemem"

// Region is a protected, checkpointed memory allocation. All mutation goes
// through its methods: the first write to each page after a checkpoint is
// trapped by the runtime exactly like a store to an mprotect'ed page (see
// DESIGN.md for why Go requires the software trap).
type Region struct {
	rt    *Runtime
	inner *pagemem.Region
}

// Size returns the allocation size in bytes.
func (r *Region) Size() int { return r.inner.Size() }

// Pages returns the global page range [first, first+count) backing the
// region; page IDs name pages in checkpoint images.
func (r *Region) Pages() (first, count int) { return r.inner.Pages() }

// Write copies src into the region at byte offset off.
func (r *Region) Write(off int, src []byte) { r.inner.Write(off, src) }

// StoreByte writes one byte at off.
func (r *Region) StoreByte(off int, b byte) { r.inner.StoreByte(off, b) }

// Read copies region bytes [off, off+len(dst)) into dst.
func (r *Region) Read(off int, dst []byte) { r.inner.Read(off, dst) }

// Bytes returns the region's live backing store. Mutating the returned
// slice bypasses write tracking — use it only for read-mostly access and
// restore; the checkpoint then cannot see those mutations until the pages
// are written through Write again.
func (r *Region) Bytes() []byte { return r.inner.Bytes() }
