package aickpt

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Figures 2a-2c, 3a/3b, 4a, 4b, 5), each reporting the figure's
// headline quantities as custom metrics, plus microbenchmarks of the
// runtime's hot paths and ablations of Algorithm 4's priority tiers.
//
// Figure benchmarks run the deterministic virtual-time simulation at a
// reduced scale (see internal/experiments); per-iteration wall time is the
// cost of simulating the experiment, while the reported custom metrics are
// the simulated results themselves. `go run ./cmd/experiments` prints the
// same numbers as tables.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/erasure"
	"repro/internal/experiments"
	"repro/internal/pagemem"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/util"
	"repro/internal/workload"
)

const benchScale = 64 // memory division factor for figure benchmarks

// BenchmarkFig2a reproduces Figure 2(a): increase in execution time of the
// synthetic benchmark for each (pattern, approach).
func BenchmarkFig2a(b *testing.B) {
	for _, pattern := range []workload.Pattern{workload.Ascending, workload.Random, workload.Descending} {
		for _, strategy := range experiments.Strategies {
			b.Run(fmt.Sprintf("%v/%v", pattern, strategy), func(b *testing.B) {
				cfg := experiments.NewSyntheticConfig(benchScale, pattern)
				base := experiments.SyntheticBaseline(cfg)
				var overhead float64
				for i := 0; i < b.N; i++ {
					run := experiments.RunSynthetic(cfg, strategy)
					overhead = (run.Runtime - base).Seconds()
				}
				b.ReportMetric(overhead, "overhead-s")
			})
		}
	}
}

// BenchmarkFig2b reproduces Figure 2(b): pages that triggered WAIT.
func BenchmarkFig2b(b *testing.B) {
	for _, pattern := range []workload.Pattern{workload.Ascending, workload.Random, workload.Descending} {
		for _, strategy := range []core.Strategy{core.Adaptive, core.NoPattern} {
			b.Run(fmt.Sprintf("%v/%v", pattern, strategy), func(b *testing.B) {
				cfg := experiments.NewSyntheticConfig(benchScale, pattern)
				var waits float64
				for i := 0; i < b.N; i++ {
					waits = experiments.RunSynthetic(cfg, strategy).AvgWaits
				}
				b.ReportMetric(waits, "waits/ckpt")
			})
		}
	}
}

// BenchmarkFig2c reproduces Figure 2(c): pages that triggered AVOIDED.
func BenchmarkFig2c(b *testing.B) {
	for _, pattern := range []workload.Pattern{workload.Ascending, workload.Random, workload.Descending} {
		for _, strategy := range []core.Strategy{core.Adaptive, core.NoPattern} {
			b.Run(fmt.Sprintf("%v/%v", pattern, strategy), func(b *testing.B) {
				cfg := experiments.NewSyntheticConfig(benchScale, pattern)
				var avoided float64
				for i := 0; i < b.N; i++ {
					avoided = experiments.RunSynthetic(cfg, strategy).AvgAvoided
				}
				b.ReportMetric(avoided, "avoided/ckpt")
			})
		}
	}
}

// BenchmarkFig3a reproduces Figure 3(a): CM1 average checkpointing time
// under weak scaling.
func BenchmarkFig3a(b *testing.B) {
	for _, procs := range []int{1, 8} {
		for _, strategy := range experiments.Strategies {
			b.Run(fmt.Sprintf("procs%d/%v", procs, strategy), func(b *testing.B) {
				cfg := experiments.NewCM1Config(2*benchScale, procs)
				var ckpt float64
				for i := 0; i < b.N; i++ {
					ckpt = experiments.RunCM1(cfg, strategy, true).AvgCkptTime.Seconds()
				}
				b.ReportMetric(ckpt, "ckpt-s")
			})
		}
	}
}

// BenchmarkFig3b reproduces Figure 3(b): CM1 increase in execution time
// under weak scaling.
func BenchmarkFig3b(b *testing.B) {
	for _, procs := range []int{1, 8} {
		for _, strategy := range experiments.Strategies {
			b.Run(fmt.Sprintf("procs%d/%v", procs, strategy), func(b *testing.B) {
				cfg := experiments.NewCM1Config(2*benchScale, procs)
				base := experiments.RunCM1(cfg, core.Sync, false).Runtime
				var overhead float64
				for i := 0; i < b.N; i++ {
					run := experiments.RunCM1(cfg, strategy, true)
					overhead = (run.Runtime - base).Seconds()
				}
				b.ReportMetric(overhead, "overhead-s")
			})
		}
	}
}

// BenchmarkFig4a reproduces Figure 4(a): CM1 reduction in checkpointing
// overhead vs sync as the COW buffer grows.
func BenchmarkFig4a(b *testing.B) {
	for _, mb := range []int{0, 16, 256} {
		b.Run(fmt.Sprintf("cow%dMB", mb), func(b *testing.B) {
			var ours, np float64
			for i := 0; i < b.N; i++ {
				rows := experiments.Fig4a(2*benchScale, 8, []int{mb})
				for _, r := range rows {
					if r.Strategy == core.Adaptive {
						ours = r.ReductionPct
					} else {
						np = r.ReductionPct
					}
				}
			}
			b.ReportMetric(ours, "ours-%")
			b.ReportMetric(np, "no-pattern-%")
		})
	}
}

// BenchmarkFig4b reproduces Figure 4(b): the MILC COW sweep.
func BenchmarkFig4b(b *testing.B) {
	for _, mb := range []int{0, 16, 256} {
		b.Run(fmt.Sprintf("cow%dMB", mb), func(b *testing.B) {
			var ours, np float64
			for i := 0; i < b.N; i++ {
				rows := experiments.Fig4b(8*benchScale, 20, []int{mb})
				for _, r := range rows {
					if r.Strategy == core.Adaptive {
						ours = r.ReductionPct
					} else {
						np = r.ReductionPct
					}
				}
			}
			b.ReportMetric(ours, "ours-%")
			b.ReportMetric(np, "no-pattern-%")
		})
	}
}

// BenchmarkFig5 reproduces Figure 5: MILC weak scaling, COW deactivated.
func BenchmarkFig5(b *testing.B) {
	for _, procs := range []int{10, 20} {
		for _, strategy := range experiments.Strategies {
			b.Run(fmt.Sprintf("procs%d/%v", procs, strategy), func(b *testing.B) {
				cfg := experiments.NewMILCConfig(8*benchScale, procs)
				base := experiments.RunMILC(cfg, core.Sync, false).Runtime
				var overhead float64
				for i := 0; i < b.N; i++ {
					run := experiments.RunMILC(cfg, strategy, true)
					overhead = (run.Runtime - base).Seconds()
				}
				b.ReportMetric(overhead, "overhead-s")
			})
		}
	}
}

// BenchmarkAblation measures the contribution of each priority tier of
// Algorithm 4 (DESIGN.md §6): the waited-page hint and the live-COW slot
// recycling preference, on the descending synthetic workload where ordering
// matters most.
func BenchmarkAblation(b *testing.B) {
	variants := []struct {
		name              string
		noWaited, noIveCw bool
	}{
		{"full", false, false},
		{"no-waited-hint", true, false},
		{"no-cow-priority", false, true},
		{"neither", true, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := experiments.NewSyntheticConfig(benchScale, workload.Descending)
			cfg.NoWaitedHint = v.noWaited
			cfg.NoLiveCowPriority = v.noIveCw
			base := experiments.SyntheticBaseline(cfg)
			var overhead float64
			for i := 0; i < b.N; i++ {
				run := experiments.RunSynthetic(cfg, core.Adaptive)
				overhead = (run.Runtime - base).Seconds()
			}
			b.ReportMetric(overhead, "overhead-s")
		})
	}
}

// --- microbenchmarks of the runtime hot paths ---

// BenchmarkFaultPath measures one trapped first write (fault -> handler ->
// classification -> unprotect) on the real-time runtime with an in-memory
// store.
func BenchmarkFaultPath(b *testing.B) {
	space := pagemem.NewSpace(4096)
	m := core.NewManager(core.Config{
		Env: sim.NewRealEnv(), Space: space, Store: storage.NullStore{},
		Strategy: core.Adaptive, CowSlots: 1 << 20, Name: "bench",
	})
	defer m.Close()
	r := space.Alloc(1<<30, true) // 256k pages
	_, count := r.Pages()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Touch(i % count)
	}
}

// BenchmarkUnprotectedWrite measures the write path once a page's
// protection has been lifted (the common case within an epoch).
func BenchmarkUnprotectedWrite(b *testing.B) {
	space := pagemem.NewSpace(4096)
	r := space.Alloc(1<<20, false)
	buf := make([]byte, 64)
	r.Write(0, buf) // lift protection (no handler installed)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Write(0, buf)
	}
}

// BenchmarkCheckpointCycle measures a full checkpoint round (rotate,
// re-protect, flush to a null store) for a 64 MB dirty set.
func BenchmarkCheckpointCycle(b *testing.B) {
	space := pagemem.NewSpace(4096)
	m := core.NewManager(core.Config{
		Env: sim.NewRealEnv(), Space: space, Store: storage.NullStore{},
		Strategy: core.Adaptive, CowSlots: 4096, Name: "bench",
	})
	defer m.Close()
	const pages = 16384
	r := space.Alloc(pages*4096, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < pages; p++ {
			r.Touch(p)
		}
		m.Checkpoint()
		m.WaitIdle()
	}
	b.ReportMetric(float64(pages), "pages/ckpt")
}

// BenchmarkAdaptiveSelectorBuild measures building the Algorithm 4 priority
// queues for a 65536-page dirty set (the per-checkpoint cost).
func BenchmarkAdaptiveSelectorBuild(b *testing.B) {
	const pages = 65536
	rng := util.NewRNG(1)
	lastAT := make([]core.AccessType, pages)
	lastIndex := make([]int32, pages)
	dirty := util.NewBitset(pages)
	for p := 0; p < pages; p++ {
		dirty.Set(p)
		lastAT[p] = core.AccessType(rng.Intn(5))
		lastIndex[p] = int32(rng.Intn(pages))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildAdaptiveSelectorForBench(dirty, lastAT, lastIndex)
	}
}

// BenchmarkCommitHotPath measures the full steady-state commit pipeline —
// fault trap, epoch rotation, off-critical-path selector build, inline
// content hash, pooled DEFLATE encode, record framing — through the public
// runtime into an in-memory repository. allocs/op (divided by pages/ckpt)
// is the headline: the per-page paths are pooled and must not allocate in
// steady state.
func BenchmarkCommitHotPath(b *testing.B) {
	repo := ckpt.NewRepository(&ckpt.MemFS{}, 4096)
	repo.SetCodec(compress.Flate)
	rt, err := New(Options{PageSize: 4096, Store: repo, CowBuffer: 1 << 24, CommitWorkers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	const pages = 512
	region := rt.MallocProtected(pages * 4096)
	buf := make([]byte, 4096)
	fill := func(p, e int) {
		for j := range buf {
			buf[j] = byte(p*31 + e*7 + j%13)
		}
		region.Write(p*4096, buf)
	}
	for p := 0; p < pages; p++ { // warm pools and bookkeeping
		fill(p, 0)
	}
	rt.Checkpoint()
	rt.WaitIdle()
	b.SetBytes(pages * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < pages; p++ {
			fill(p, i+1)
		}
		rt.Checkpoint()
		rt.WaitIdle()
	}
	b.ReportMetric(float64(pages), "pages/ckpt")
}

// BenchmarkRepositoryWrite measures the durable page-commit path (record
// framing + hashing + buffered write) into an in-memory FS.
func BenchmarkRepositoryWrite(b *testing.B) {
	fs := &ckpt.MemFS{}
	repo := ckpt.NewRepository(fs, 4096)
	page := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := repo.WritePage(1, i, page, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkErasureEncode measures Reed-Solomon encoding of a 4 KB page into
// 8+2 shards.
func BenchmarkErasureEncode(b *testing.B) {
	c := erasure.New(8, 2)
	rng := util.NewRNG(2)
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(rng.Uint64())
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(page)
	}
}

// BenchmarkCompressPage measures DEFLATE page compression of typical
// floating-point-like content through the pooled steady-state path
// (recycled writer state, caller-supplied output buffer).
func BenchmarkCompressPage(b *testing.B) {
	rng := util.NewRNG(3)
	page := make([]byte, 4096)
	for i := 0; i < len(page); i += 8 {
		v := rng.Uint64() & 0x000fffffffffffff // low entropy in high bytes
		for j := 0; j < 8; j++ {
			page[i+j] = byte(v >> (8 * j))
		}
	}
	dst := make([]byte, 0, 4096+128)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compress.EncodeInto(compress.Flate, page, dst)
	}
}

// BenchmarkKernelHandoff measures one virtual-time process dispatch
// (sleep -> schedule -> resume), the unit cost of every simulated event.
func BenchmarkKernelHandoff(b *testing.B) {
	k := sim.NewKernel()
	n := b.N
	k.Go("spinner", func() {
		for i := 0; i < n; i++ {
			k.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
