package aickpt_test

import (
	"fmt"
	"log"
	"os"

	aickpt "repro"
)

// The canonical session: allocate protected memory, iterate, checkpoint
// periodically, and inspect the per-checkpoint statistics.
func Example() {
	dir, err := os.MkdirTemp("", "aickpt-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	rt, err := aickpt.New(aickpt.Options{Dir: dir, PageSize: 4096})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	state := rt.MallocProtected(16 * 4096)
	for iter := 1; iter <= 4; iter++ {
		// Each iteration rewrites a quarter of the state.
		state.Write((iter-1)*4*4096, make([]byte, 4*4096))
		if iter%2 == 0 {
			rt.Checkpoint()
		}
	}
	rt.WaitIdle()
	for _, s := range rt.Stats() {
		fmt.Printf("checkpoint %d committed %d pages\n", s.Epoch, s.PagesCommitted)
	}
	// Output:
	// checkpoint 1 committed 8 pages
	// checkpoint 2 committed 8 pages
}

// Restart: restore the last completed checkpoint into a fresh runtime with
// the same region layout.
func ExampleRestore() {
	dir, err := os.MkdirTemp("", "aickpt-restore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// First life.
	rt, err := aickpt.New(aickpt.Options{Dir: dir, PageSize: 4096})
	if err != nil {
		log.Fatal(err)
	}
	region := rt.MallocProtected(4096)
	region.StoreByte(0, 42)
	rt.Checkpoint()
	rt.WaitIdle()
	rt.Close()

	// Second life: same allocation order, then load the image.
	rt2, err := aickpt.New(aickpt.Options{Dir: dir, PageSize: 4096})
	if err != nil {
		log.Fatal(err)
	}
	defer rt2.Close()
	region2 := rt2.MallocProtected(4096)
	im, err := aickpt.Restore(dir)
	if err != nil {
		log.Fatal(err)
	}
	if err := rt2.LoadImage(im, region2); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 1)
	region2.Read(0, buf)
	fmt.Printf("restored epoch %d, byte = %d\n", im.Epoch, buf[0])
	// Output:
	// restored epoch 1, byte = 42
}

// Custom storage backends plug in through the Store interface; epoch
// numbering and sealing arrive through it unchanged.
func ExampleOptions_customStore() {
	store := &countingStore{}
	rt, err := aickpt.New(aickpt.Options{Store: store, PageSize: 4096})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	r := rt.MallocProtected(2 * 4096)
	r.StoreByte(0, 1)
	r.StoreByte(4096, 1)
	rt.Checkpoint()
	rt.WaitIdle()
	fmt.Printf("pages=%d sealed=%d\n", store.pages, store.sealed)
	// Output:
	// pages=2 sealed=1
}

type countingStore struct {
	pages  int
	sealed int
}

func (c *countingStore) WritePage(epoch uint64, page int, data []byte, size int) error {
	c.pages++
	return nil
}

func (c *countingStore) EndEpoch(epoch uint64) error {
	c.sealed++
	return nil
}
