package aickpt

import (
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
)

// WriteStatsCSV renders per-checkpoint statistics as CSV, one row per
// checkpoint, for offline analysis of checkpointing behavior (the columns
// mirror the metrics of the paper's evaluation: dirty-set size, access-type
// classification, blocked time and checkpointing time).
func WriteStatsCSV(w io.Writer, stats []EpochStats) error {
	if _, err := fmt.Fprintln(w,
		"epoch,pages,bytes,waits,cows,avoided,after,wait_us,blocked_us,duration_us"); err != nil {
		return err
	}
	for _, s := range stats {
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			s.Epoch, s.PagesCommitted, s.BytesCommitted,
			s.Waits, s.Cows, s.Avoided, s.After,
			s.WaitTime.Microseconds(), s.BlockedInCheckpoint.Microseconds(),
			s.Duration.Microseconds())
		if err != nil {
			return err
		}
	}
	return nil
}

// Summary condenses a run's checkpointing behavior: totals across epochs
// plus the aggregate classification mix. It answers "how much did
// checkpointing cost this run" in one value.
type Summary struct {
	Checkpoints    int
	PagesCommitted int
	BytesCommitted int64
	Waits          int
	Cows           int
	Avoided        int
	After          int
	// AppBlocked is the total time the application spent blocked on
	// checkpointing: inside Checkpoint calls plus inside page waits.
	AppBlocked  time.Duration
	LongestCkpt time.Duration

	// Selector prediction scorecard aggregates.

	// HitRate is the run-wide flushed-before-faulted hit rate:
	// AVOIDED / (WAIT + COW + AVOIDED) over every epoch.
	HitRate float64
	// CowAbsorbed counts the first writes absorbed by the copy-on-write
	// buffer instead of blocking (the scorecard's "near miss" class;
	// identical to Cows, named for the scorecard column).
	CowAbsorbed int
	// RankPairs counts the flushed-and-faulted page pairs entering the
	// rank correlation; RankCorrelation is the per-epoch footrule rank
	// correlation weighted by each epoch's pairs (1 = the selector
	// flushed in exactly fault order, ~0 = random, negative =
	// anti-correlated).
	RankPairs       int
	RankCorrelation float64

	// Drain-side and restore-side totals, sourced from the runtime's
	// metric snapshot (see SummarizeWithMetrics); zero when summarizing
	// from per-epoch stats alone, which cannot see the background drain
	// pipeline or a restore.
	EpochsDrained uint64
	DrainRetries  uint64
	DrainFailures uint64
	RestoreEpochs uint64
	RestorePages  uint64
}

// Summarize folds per-epoch statistics into a Summary. The drain- and
// restore-side fields stay zero: per-epoch stats only describe the
// commit-side pipeline. Use SummarizeWithMetrics to fill them from a
// runtime metric snapshot.
func Summarize(stats []EpochStats) Summary {
	var s Summary
	var corrWeighted float64
	for _, ep := range stats {
		s.Checkpoints++
		s.PagesCommitted += ep.PagesCommitted
		s.BytesCommitted += ep.BytesCommitted
		s.Waits += ep.Waits
		s.Cows += ep.Cows
		s.Avoided += ep.Avoided
		s.After += ep.After
		s.AppBlocked += ep.BlockedInCheckpoint + ep.WaitTime
		if ep.Duration > s.LongestCkpt {
			s.LongestCkpt = ep.Duration
		}
		if ep.RankPairs > 0 {
			corrWeighted += ep.RankCorrelation() * float64(ep.RankPairs)
			s.RankPairs += ep.RankPairs
		}
	}
	s.CowAbsorbed = s.Cows
	s.HitRate = obs.ScoreHitRate(s.Waits, s.Cows, s.Avoided)
	if s.RankPairs > 0 {
		s.RankCorrelation = corrWeighted / float64(s.RankPairs)
	}
	return s
}

// SummarizeWithMetrics folds per-epoch statistics into a Summary and
// completes it with the drain-side and restore-side totals of a metric
// snapshot (Runtime.Metrics), which the per-epoch stats cannot observe.
func SummarizeWithMetrics(stats []EpochStats, snap MetricsSnapshot) Summary {
	s := Summarize(stats)
	s.EpochsDrained = snap.Counters["aickpt_multilevel_epochs_drained_total"]
	s.DrainRetries = snap.Counters["aickpt_multilevel_drain_retries_total"]
	s.DrainFailures = snap.Counters["aickpt_multilevel_drain_failures_total"]
	s.RestoreEpochs = snap.Counters["aickpt_multilevel_restore_epochs_total"]
	s.RestorePages = snap.Counters["aickpt_multilevel_restore_pages_total"]
	return s
}

// WriteSummaryCSV renders one run summary as a two-line CSV (header plus
// values), including the drain- and restore-side columns that
// WriteStatsCSV's per-epoch rows cannot carry.
func WriteSummaryCSV(w io.Writer, s Summary) error {
	if _, err := fmt.Fprintln(w,
		"checkpoints,pages,bytes,waits,cows,avoided,after,app_blocked_us,longest_ckpt_us,"+
			"epochs_drained,drain_retries,drain_failures,restore_epochs,restore_pages,"+
			"hit_rate,cow_absorbed,rank_corr"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.3f,%d,%.3f\n",
		s.Checkpoints, s.PagesCommitted, s.BytesCommitted,
		s.Waits, s.Cows, s.Avoided, s.After,
		s.AppBlocked.Microseconds(), s.LongestCkpt.Microseconds(),
		s.EpochsDrained, s.DrainRetries, s.DrainFailures,
		s.RestoreEpochs, s.RestorePages,
		s.HitRate, s.CowAbsorbed, s.RankCorrelation)
	return err
}
