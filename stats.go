package aickpt

import (
	"fmt"
	"io"
	"time"
)

// WriteStatsCSV renders per-checkpoint statistics as CSV, one row per
// checkpoint, for offline analysis of checkpointing behavior (the columns
// mirror the metrics of the paper's evaluation: dirty-set size, access-type
// classification, blocked time and checkpointing time).
func WriteStatsCSV(w io.Writer, stats []EpochStats) error {
	if _, err := fmt.Fprintln(w,
		"epoch,pages,bytes,waits,cows,avoided,after,wait_us,blocked_us,duration_us"); err != nil {
		return err
	}
	for _, s := range stats {
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			s.Epoch, s.PagesCommitted, s.BytesCommitted,
			s.Waits, s.Cows, s.Avoided, s.After,
			s.WaitTime.Microseconds(), s.BlockedInCheckpoint.Microseconds(),
			s.Duration.Microseconds())
		if err != nil {
			return err
		}
	}
	return nil
}

// Summary condenses a run's checkpointing behavior: totals across epochs
// plus the aggregate classification mix. It answers "how much did
// checkpointing cost this run" in one value.
type Summary struct {
	Checkpoints    int
	PagesCommitted int
	BytesCommitted int64
	Waits          int
	Cows           int
	Avoided        int
	After          int
	// AppBlocked is the total time the application spent blocked on
	// checkpointing: inside Checkpoint calls plus inside page waits.
	AppBlocked  time.Duration
	LongestCkpt time.Duration
}

// Summarize folds per-epoch statistics into a Summary.
func Summarize(stats []EpochStats) Summary {
	var s Summary
	for _, ep := range stats {
		s.Checkpoints++
		s.PagesCommitted += ep.PagesCommitted
		s.BytesCommitted += ep.BytesCommitted
		s.Waits += ep.Waits
		s.Cows += ep.Cows
		s.Avoided += ep.Avoided
		s.After += ep.After
		s.AppBlocked += ep.BlockedInCheckpoint + ep.WaitTime
		if ep.Duration > s.LongestCkpt {
			s.LongestCkpt = ep.Duration
		}
	}
	return s
}
