// Package aickpt is an adaptive asynchronous incremental checkpointing
// runtime for iterative applications, reproducing "AI-Ckpt: Leveraging
// Memory Access Patterns for Adaptive Asynchronous Incremental
// Checkpointing" (Nicolae & Cappello, HPDC 2013).
//
// Applications allocate protected memory through a Runtime, mutate it
// through Region accessors, and call Checkpoint at iteration boundaries.
// Checkpointing is incremental (only pages written since the previous
// checkpoint are saved) and asynchronous (a background committer flushes
// pages while the application keeps running). First writes to
// not-yet-flushed pages are absorbed by a bounded copy-on-write buffer, and
// the order in which pages are flushed adapts to the application's current
// and previous-epoch access pattern, minimizing the time the application
// spends blocked on in-flight pages.
//
// A minimal session:
//
//	rt, err := aickpt.New(aickpt.Options{Dir: "ckpt-data"})
//	if err != nil { ... }
//	defer rt.Close()
//	region := rt.MallocProtected(64 << 20)
//	for iter := 0; iter < n; iter++ {
//		step(region)
//		if iter%10 == 9 {
//			rt.Checkpoint()
//		}
//	}
//
// After a crash, Restore folds the sealed checkpoint chain back into a
// memory image (see Image and Runtime.LoadImage).
package aickpt

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/pagemem"
	"repro/internal/sim"
)

// Strategy selects how checkpoints are written.
type Strategy int

const (
	// Adaptive is asynchronous incremental checkpointing with
	// access-pattern-adapted flush ordering — the paper's contribution
	// and the default.
	Adaptive Strategy = iota
	// NoPattern is asynchronous incremental checkpointing that flushes
	// dirty pages in ascending address order.
	NoPattern
	// Sync blocks inside Checkpoint until all dirty pages are stored.
	Sync
)

// String implements fmt.Stringer.
func (s Strategy) String() string { return coreStrategy(s).String() }

func coreStrategy(s Strategy) core.Strategy {
	switch s {
	case Adaptive:
		return core.Adaptive
	case NoPattern:
		return core.NoPattern
	case Sync:
		return core.Sync
	default:
		panic(fmt.Sprintf("aickpt: unknown strategy %d", int(s)))
	}
}

// Store receives committed pages; implement it to plug in custom storage
// backends (the paper's page manager is modular in the same way: POSIX file
// systems, parallel file systems, cloud repositories). Epochs are sealed by
// EndEpoch after their last page.
type Store interface {
	WritePage(epoch uint64, page int, data []byte, size int) error
	EndEpoch(epoch uint64) error
}

// Options configures a Runtime.
type Options struct {
	// PageSize is the tracking granularity in bytes (default 4096, the
	// operating-system page size used throughout the paper).
	PageSize int
	// CowBuffer bounds the copy-on-write buffer in bytes (default 16 MB,
	// the paper's synthetic-benchmark setting). The number of slots is
	// CowBuffer / PageSize. Zero disables copy-on-write; writes to
	// not-yet-flushed pages then always wait.
	CowBuffer int64
	// DisableCow distinguishes "CowBuffer deliberately zero" from
	// "CowBuffer left at its default".
	DisableCow bool
	// Strategy selects the checkpointing approach (default Adaptive).
	Strategy Strategy
	// Dir is the checkpoint repository directory. Exactly one of Dir,
	// Store and Tiers must be set.
	Dir string
	// Store overrides the repository with a custom backend.
	Store Store
	// Tiers builds a multi-level checkpoint hierarchy (fastest tier
	// first): checkpoints are acknowledged once sealed on the first
	// (local) tier and drained asynchronously to the rest. The resulting
	// hierarchy is reachable through Runtime.Hierarchy for tier-aware
	// restore and inspection.
	Tiers []TierSpec
	// Drain bounds the hierarchy's background promotion pipeline (only
	// meaningful with Tiers); the zero value selects defaults.
	Drain DrainPolicy
	// Compression selects page compression for the durable repository
	// (only meaningful with Dir): CompressionNone, CompressionZero
	// (zero-page elimination) or CompressionFlate (DEFLATE). Restore
	// decodes transparently.
	Compression Compression
}

// Compression names a page codec for the durable repository.
type Compression int

const (
	// CompressionNone stores pages verbatim.
	CompressionNone Compression = iota
	// CompressionZero elides all-zero pages (one byte each).
	CompressionZero
	// CompressionFlate applies DEFLATE with zero-page elision, falling
	// back to verbatim storage for incompressible pages.
	CompressionFlate
)

// Runtime is the per-process checkpointing runtime: it owns the protected
// address space, the page manager and the storage backend.
type Runtime struct {
	opts    Options
	space   *pagemem.Space
	manager *core.Manager
	repo    *ckpt.Repository // nil when a custom Store is used
	fs      ckpt.FS          // nil when a custom Store is used
	hier    *Hierarchy       // non-nil when Options.Tiers built a hierarchy
	closed  bool
}

// New creates a runtime. With Options.Dir set, checkpoints are written to a
// durable repository in that directory; with Options.Store set, pages go to
// the custom backend.
func New(opts Options) (*Runtime, error) {
	if opts.PageSize == 0 {
		opts.PageSize = 4096
	}
	if opts.PageSize < 16 {
		return nil, fmt.Errorf("aickpt: page size %d too small", opts.PageSize)
	}
	if opts.CowBuffer == 0 && !opts.DisableCow {
		opts.CowBuffer = 16 << 20
	}
	if opts.CowBuffer < 0 {
		return nil, fmt.Errorf("aickpt: negative CowBuffer")
	}
	set := 0
	for _, on := range []bool{opts.Dir != "", opts.Store != nil, len(opts.Tiers) > 0} {
		if on {
			set++
		}
	}
	if set != 1 {
		return nil, errors.New("aickpt: exactly one of Options.Dir, Options.Store and Options.Tiers must be set")
	}
	rt := &Runtime{opts: opts, space: pagemem.NewSpace(opts.PageSize)}
	var backend Store
	var firstEpoch uint64
	if len(opts.Tiers) > 0 {
		h, err := NewHierarchy(opts.PageSize, opts.Tiers, opts.Drain)
		if err != nil {
			return nil, err
		}
		rt.hier = h
		backend = h
		// As with Dir, a restarted process extends the chain already on
		// the (durable, directory-backed) local tier. The hierarchy has
		// re-queued those epochs for draining, so lower tiers regain a
		// copy of the whole chain.
		if last, ok := h.inner.LastEpoch(); ok {
			firstEpoch = last
		}
	} else if opts.Store != nil {
		backend = opts.Store
	} else {
		fs, err := ckpt.NewOSFS(opts.Dir)
		if err != nil {
			return nil, err
		}
		rt.fs = fs
		rt.repo = ckpt.NewRepository(fs, opts.PageSize)
		switch opts.Compression {
		case CompressionNone:
		case CompressionZero:
			rt.repo.SetCodec(compress.Zero)
		case CompressionFlate:
			rt.repo.SetCodec(compress.Flate)
		default:
			return nil, fmt.Errorf("aickpt: unknown compression %d", opts.Compression)
		}
		backend = rt.repo
		// A restarted process extends the existing chain rather than
		// overwriting it.
		if last, ok, err := ckpt.LastSealedEpoch(fs); err != nil {
			return nil, err
		} else if ok {
			firstEpoch = last
		}
	}
	rt.manager = core.NewManager(core.Config{
		Env:        sim.NewRealEnv(),
		Space:      rt.space,
		Store:      storeAdapter{backend},
		Strategy:   coreStrategy(opts.Strategy),
		CowSlots:   int(opts.CowBuffer / int64(opts.PageSize)),
		FirstEpoch: firstEpoch,
		Name:       "aickpt",
	})
	return rt, nil
}

// storeAdapter bridges the public Store interface to the internal backend
// interface (they are structurally identical).
type storeAdapter struct{ s Store }

func (a storeAdapter) WritePage(epoch uint64, page int, data []byte, size int) error {
	return a.s.WritePage(epoch, page, data, size)
}
func (a storeAdapter) EndEpoch(epoch uint64) error { return a.s.EndEpoch(epoch) }

// PageSize returns the tracking granularity in bytes.
func (rt *Runtime) PageSize() int { return rt.opts.PageSize }

// MallocProtected allocates n bytes of checkpointed memory (the paper's
// malloc_protected). The region participates in every subsequent
// checkpoint.
func (rt *Runtime) MallocProtected(n int) *Region {
	return &Region{rt: rt, inner: rt.space.Alloc(n, false)}
}

// Free releases a protected region (free_protected), coordinating with any
// in-flight checkpoint.
func (rt *Runtime) Free(r *Region) {
	rt.manager.Free(r.inner)
}

// TransparentAllocator returns an allocator whose every allocation is
// protected, mirroring the paper's preloaded-malloc transparent mode for
// applications that cannot name their checkpointable state explicitly.
func (rt *Runtime) TransparentAllocator() *Allocator { return &Allocator{rt: rt} }

// Checkpoint requests a checkpoint (the CHECKPOINT primitive). Under the
// asynchronous strategies it returns as soon as the epoch is rotated; under
// Sync it blocks until all dirty pages are stored. If a previous checkpoint
// is still in flight, Checkpoint first waits for it to complete.
func (rt *Runtime) Checkpoint() { rt.manager.Checkpoint() }

// WaitIdle blocks until no checkpoint is in flight. Call it before reading
// checkpoint statistics or shutting down cleanly mid-epoch.
func (rt *Runtime) WaitIdle() { rt.manager.WaitIdle() }

// Err returns the first storage error encountered by the committer.
func (rt *Runtime) Err() error { return rt.manager.Err() }

// Hierarchy returns the multi-level checkpoint hierarchy built from
// Options.Tiers, or nil when the runtime uses a flat backend. Use it for
// tier-aware restore, drain synchronization, tier manifests and failure
// injection.
func (rt *Runtime) Hierarchy() *Hierarchy { return rt.hier }

// Close drains in-flight work (including background tier draining when a
// hierarchy is configured), stops the committer and releases the runtime.
// It returns the first storage error, if any.
func (rt *Runtime) Close() error {
	if rt.closed {
		return rt.manager.Err()
	}
	rt.closed = true
	rt.manager.Close()
	if err := rt.manager.Err(); err != nil {
		if rt.hier != nil {
			rt.hier.Close()
		}
		return err
	}
	if rt.hier != nil {
		return rt.hier.Close()
	}
	return nil
}

// Stats returns per-checkpoint statistics (one entry per Checkpoint call).
func (rt *Runtime) Stats() []EpochStats {
	internal := rt.manager.Stats()
	out := make([]EpochStats, len(internal))
	for i, s := range internal {
		out[i] = EpochStats{
			Epoch:               s.Epoch,
			PagesCommitted:      s.PagesCommitted,
			BytesCommitted:      s.BytesCommitted,
			Waits:               s.Waits,
			Cows:                s.Cows,
			Avoided:             s.Avoided,
			After:               s.After,
			WaitTime:            s.WaitTime,
			BlockedInCheckpoint: s.BlockedInCheckpoint,
			Duration:            s.Duration,
		}
	}
	return out
}

// EpochStats describes one checkpoint: the size of its dirty set, how the
// application's first writes were classified until the next checkpoint
// (COW / WAIT / AVOIDED / AFTER), and the timing metrics used throughout
// the paper's evaluation.
type EpochStats struct {
	Epoch               uint64
	PagesCommitted      int
	BytesCommitted      int64
	Waits               int
	Cows                int
	Avoided             int
	After               int
	WaitTime            time.Duration
	BlockedInCheckpoint time.Duration
	Duration            time.Duration
}

// Allocator is the transparent-capture allocator: all allocations made
// through it are protected and checkpointed.
type Allocator struct {
	rt *Runtime
}

// Alloc allocates n protected bytes.
func (a *Allocator) Alloc(n int) *Region { return a.rt.MallocProtected(n) }

// Calloc allocates count*size protected, zeroed bytes.
func (a *Allocator) Calloc(count, size int) *Region { return a.rt.MallocProtected(count * size) }

// Free releases a region through the runtime.
func (a *Allocator) Free(r *Region) { a.rt.Free(r) }
