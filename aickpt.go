// Package aickpt is an adaptive asynchronous incremental checkpointing
// runtime for iterative applications, reproducing "AI-Ckpt: Leveraging
// Memory Access Patterns for Adaptive Asynchronous Incremental
// Checkpointing" (Nicolae & Cappello, HPDC 2013).
//
// Applications allocate protected memory through a Runtime, mutate it
// through Region accessors, and call Checkpoint at iteration boundaries.
// Checkpointing is incremental (only pages written since the previous
// checkpoint are saved) and asynchronous (a background committer flushes
// pages while the application keeps running). First writes to
// not-yet-flushed pages are absorbed by a bounded copy-on-write buffer, and
// the order in which pages are flushed adapts to the application's current
// and previous-epoch access pattern, minimizing the time the application
// spends blocked on in-flight pages.
//
// A minimal session:
//
//	rt, err := aickpt.New(aickpt.Options{Dir: "ckpt-data"})
//	if err != nil { ... }
//	defer rt.Close()
//	region := rt.MallocProtected(64 << 20)
//	for iter := 0; iter < n; iter++ {
//		step(region)
//		if iter%10 == 9 {
//			rt.Checkpoint()
//		}
//	}
//
// After a crash, Restore folds the sealed checkpoint chain back into a
// memory image (see Image and Runtime.LoadImage).
package aickpt

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/ckpt"
	"repro/internal/compact"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pagemem"
	"repro/internal/sim"
)

// Strategy selects how checkpoints are written.
type Strategy int

const (
	// Adaptive is asynchronous incremental checkpointing with
	// access-pattern-adapted flush ordering — the paper's contribution
	// and the default.
	Adaptive Strategy = iota
	// NoPattern is asynchronous incremental checkpointing that flushes
	// dirty pages in ascending address order.
	NoPattern
	// Sync blocks inside Checkpoint until all dirty pages are stored.
	Sync
)

// String implements fmt.Stringer.
func (s Strategy) String() string { return coreStrategy(s).String() }

func coreStrategy(s Strategy) core.Strategy {
	switch s {
	case Adaptive:
		return core.Adaptive
	case NoPattern:
		return core.NoPattern
	case Sync:
		return core.Sync
	default:
		panic(fmt.Sprintf("aickpt: unknown strategy %d", int(s)))
	}
}

// Store receives committed pages; implement it to plug in custom storage
// backends (the paper's page manager is modular in the same way: POSIX file
// systems, parallel file systems, cloud repositories). Epochs are sealed by
// EndEpoch after their last page.
//
// With Options.CommitWorkers > 1 the commit pipeline calls WritePage
// concurrently for pages of the same epoch, so implementations must
// synchronize shared state. Each page is written at most once per epoch,
// EndEpoch is never concurrent with that epoch's WritePage calls, and the
// data slice is only valid until the call returns — the runtime recycles
// copy-on-write page buffers into a pool the moment WritePage returns, so
// a Store that retains data past its return will observe the buffer being
// overwritten by a later fault. Copy what you keep. Custom Store backends
// default to the serial committer; set CommitWorkers explicitly once the
// backend honors this contract.
type Store interface {
	WritePage(epoch uint64, page int, data []byte, size int) error
	EndEpoch(epoch uint64) error
}

// Options configures a Runtime.
type Options struct {
	// PageSize is the tracking granularity in bytes (default 4096, the
	// operating-system page size used throughout the paper).
	PageSize int
	// CowBuffer bounds the copy-on-write buffer in bytes (default 16 MB,
	// the paper's synthetic-benchmark setting). The number of slots is
	// CowBuffer / PageSize. Zero disables copy-on-write; writes to
	// not-yet-flushed pages then always wait.
	CowBuffer int64
	// DisableCow distinguishes "CowBuffer deliberately zero" from
	// "CowBuffer left at its default".
	DisableCow bool
	// CommitWorkers sizes the parallel commit pipeline: the number of
	// committer workers flushing dirty pages concurrently during an
	// asynchronous checkpoint. Each worker pulls the next page in the
	// adaptive flush order and performs the copy, hash, compression and
	// storage write in parallel with its peers, so the background flush
	// scales with the backend's aggregate bandwidth. 0 derives a default
	// from GOMAXPROCS (capped at 8) — except with a custom Store, which
	// defaults to 1 until the backend opts into the concurrency contract
	// (see Store). 1 selects the serial committer of the original design.
	// Ignored by the Sync strategy.
	CommitWorkers int
	// Strategy selects the checkpointing approach (default Adaptive).
	Strategy Strategy
	// Dir is the checkpoint repository directory. Exactly one of Dir,
	// Store and Tiers must be set.
	Dir string
	// Store overrides the repository with a custom backend.
	Store Store
	// Tiers builds a multi-level checkpoint hierarchy (fastest tier
	// first): checkpoints are acknowledged once sealed on the first
	// (local) tier and drained asynchronously to the rest. The resulting
	// hierarchy is reachable through Runtime.Hierarchy for tier-aware
	// restore and inspection.
	Tiers []TierSpec
	// Drain bounds the hierarchy's background promotion pipeline (only
	// meaningful with Tiers); the zero value selects defaults.
	Drain DrainPolicy
	// Compression selects page compression for the durable repository
	// (only meaningful with Dir): CompressionNone, CompressionZero
	// (zero-page elimination) or CompressionFlate (DEFLATE). Restore
	// decodes transparently.
	Compression Compression
	// Compaction bounds the incremental chain: when its thresholds are
	// exceeded, a background compactor folds old sealed epochs into a
	// consolidated base segment and reclaims their storage, so restore
	// time and disk footprint stay flat as the run grows. The zero value
	// disables background compaction (Runtime.CompactNow still works).
	// Meaningful with Dir and Tiers; rejected with a custom Store.
	Compaction CompactionPolicy
	// DisableDedup turns off content-addressed dedup in the repository.
	// Dedup is on by default: a committed page whose content is
	// bit-identical to the newest chain entry is recorded as a cheap
	// manifest reference instead of a segment record.
	DisableDedup bool
	// DebugAddr, when non-empty, starts an HTTP debug server on the given
	// address (e.g. "127.0.0.1:6060", or ":0" for an ephemeral port; the
	// bound address is available through Runtime.DebugAddr). It serves the
	// Prometheus text exposition at /metrics, the pipeline trace journal
	// at /trace, the machine-readable metric snapshot at /snapshot, the
	// epoch flight recorder (per-epoch selector scorecards + lifecycle
	// span trees with critical-path breakdowns) at /epochs, and the
	// standard pprof handlers under /debug/pprof/. Scrapes read the shared
	// metric set with atomic loads only and never block the checkpoint
	// pipeline.
	DebugAddr string
	// DisableMetrics turns the observability layer off entirely:
	// Runtime.Metrics returns an empty snapshot, Runtime.Trace returns
	// nil, and the instrumented hot paths skip their (single-branch,
	// allocation-free) recording. Metrics are on by default; the measured
	// commit-throughput cost is under 2%.
	DisableMetrics bool
	// TraceDepth sizes the bounded pipeline trace journal in events
	// (rounded up to a power of two). The journal is a flight recorder:
	// when it wraps, the oldest events are overwritten. 0 selects the
	// default depth (4096); negative disables tracing while keeping
	// metrics on.
	TraceDepth int
	// SpanDepth sizes the bounded epoch lifecycle span log (rounded up
	// to a power of two). Spans are recorded once per epoch and stage
	// (commit, seal, per-tier drain-wait and promote, compact, restore),
	// so the default depth (1024) covers hundreds of epochs. 0 selects
	// the default; negative disables span recording while keeping
	// metrics on (Runtime.Epochs then reports scorecards without span
	// trees).
	SpanDepth int
}

// CompactionPolicy decides when the checkpoint chain is compacted.
type CompactionPolicy struct {
	// MaxChainDepth triggers compaction when the live chain (consolidated
	// base + epochs after it) grows beyond this many segments; restore
	// then reads at most MaxChainDepth segments. <= 0 disables the depth
	// trigger.
	MaxChainDepth int
	// MaxAmplification triggers compaction when on-disk bytes exceed this
	// multiple of the live image size. <= 0 disables.
	MaxAmplification float64
	// KeepRecent epochs are never folded, so the base is rewritten every
	// ~KeepRecent checkpoints rather than on every seal. Defaults to
	// max(1, MaxChainDepth/2).
	KeepRecent int
}

func (p CompactionPolicy) enabled() bool {
	return p.MaxChainDepth > 0 || p.MaxAmplification > 0
}

func (p CompactionPolicy) internal() compact.Policy {
	return compact.Policy{
		MaxDepth:         p.MaxChainDepth,
		MaxAmplification: p.MaxAmplification,
		KeepRecent:       p.KeepRecent,
	}
}

// Compression names a page codec for the durable repository.
type Compression int

const (
	// CompressionNone stores pages verbatim.
	CompressionNone Compression = iota
	// CompressionZero elides all-zero pages (one byte each).
	CompressionZero
	// CompressionFlate applies DEFLATE with zero-page elision, falling
	// back to verbatim storage for incompressible pages.
	CompressionFlate
)

// Runtime is the per-process checkpointing runtime: it owns the protected
// address space, the page manager and the storage backend.
type Runtime struct {
	opts      Options
	space     *pagemem.Space
	manager   *core.Manager
	repo      *ckpt.Repository   // nil when a custom Store is used
	fs        ckpt.FS            // nil when a custom Store is used
	hier      *Hierarchy         // non-nil when Options.Tiers built a hierarchy
	compactor *compact.Compactor // non-nil when Options.Compaction is enabled
	// compactCfg is the one-shot compaction configuration used by
	// CompactNow when no background compactor runs; nil with a custom
	// Store (no repository to compact).
	compactCfg *compact.Config
	metrics    *obs.Metrics // nil when Options.DisableMetrics is set
	debug      *obs.Server  // non-nil when Options.DebugAddr started a server
	closed     bool
}

// New creates a runtime. With Options.Dir set, checkpoints are written to a
// durable repository in that directory; with Options.Store set, pages go to
// the custom backend.
func New(opts Options) (*Runtime, error) {
	if opts.PageSize == 0 {
		opts.PageSize = 4096
	}
	if opts.PageSize < 16 {
		return nil, fmt.Errorf("aickpt: page size %d too small", opts.PageSize)
	}
	if opts.CowBuffer == 0 && !opts.DisableCow {
		opts.CowBuffer = 16 << 20
	}
	if opts.CowBuffer < 0 {
		return nil, fmt.Errorf("aickpt: negative CowBuffer")
	}
	if opts.CommitWorkers < 0 {
		return nil, fmt.Errorf("aickpt: negative CommitWorkers")
	}
	if opts.CommitWorkers == 0 {
		if opts.Store != nil {
			// A user-supplied backend may predate the concurrency
			// contract; stay serial unless explicitly opted in.
			opts.CommitWorkers = 1
		} else {
			opts.CommitWorkers = runtime.GOMAXPROCS(0)
			if opts.CommitWorkers > 8 {
				opts.CommitWorkers = 8
			}
		}
	}
	set := 0
	for _, on := range []bool{opts.Dir != "", opts.Store != nil, len(opts.Tiers) > 0} {
		if on {
			set++
		}
	}
	if set != 1 {
		return nil, errors.New("aickpt: exactly one of Options.Dir, Options.Store and Options.Tiers must be set")
	}
	if opts.Store != nil && opts.Compaction.enabled() {
		return nil, errors.New("aickpt: Options.Compaction needs a repository (Dir or Tiers), not a custom Store")
	}
	rt := &Runtime{opts: opts, space: pagemem.NewSpace(opts.PageSize)}
	env := sim.NewRealEnv()
	if !opts.DisableMetrics {
		rt.metrics = obs.New(env.Now)
		if opts.TraceDepth >= 0 {
			depth := opts.TraceDepth
			if depth == 0 {
				depth = obs.DefaultJournalDepth
			}
			rt.metrics.Journal = obs.NewJournal(depth)
		}
		if opts.SpanDepth >= 0 {
			depth := opts.SpanDepth
			if depth == 0 {
				depth = obs.DefaultSpanDepth
			}
			rt.metrics.Spans = obs.NewSpanLog(depth)
		}
	}
	var backend Store
	var firstEpoch uint64
	if len(opts.Tiers) > 0 {
		h, err := newHierarchy(opts.PageSize, opts.Tiers, opts.Drain, rt.metrics)
		if err != nil {
			return nil, err
		}
		rt.hier = h
		backend = h
		h.inner.Local().SetDedup(!opts.DisableDedup)
		// Compaction works on the fast local tier; lower tiers keep their
		// per-epoch copies. Only epochs that have settled through the
		// drain pipeline may fold, so a base never strands content that
		// reached no lower tier; superseding is reflected in the tier
		// manifests.
		rt.compactCfg = &compact.Config{
			FS:          h.inner.Local().FS(),
			PageSize:    opts.PageSize,
			Policy:      opts.Compaction.internal(),
			CanFold:     h.inner.Settled,
			OnCompacted: func(base ckpt.Manifest, _ []uint64) { h.inner.MarkSuperseded(base) },
			Metrics:     rt.metrics,
		}
		// As with Dir, a restarted process extends the chain already on
		// the (durable, directory-backed) local tier. The hierarchy has
		// re-queued those epochs for draining, so lower tiers regain a
		// copy of the whole chain.
		if last, ok := h.inner.LastEpoch(); ok {
			firstEpoch = last
		}
	} else if opts.Store != nil {
		backend = opts.Store
		// A custom backend that understands the internal metric set (e.g.
		// a ckpt.Repository plugged in directly) opts into repository-side
		// instrumentation.
		if s, ok := backend.(interface{ SetMetrics(*obs.Metrics) }); ok && rt.metrics != nil {
			s.SetMetrics(rt.metrics)
		}
	} else {
		fs, err := ckpt.NewOSFS(opts.Dir)
		if err != nil {
			return nil, err
		}
		rt.fs = fs
		rt.repo = ckpt.NewRepository(fs, opts.PageSize)
		switch opts.Compression {
		case CompressionNone:
		case CompressionZero:
			rt.repo.SetCodec(compress.Zero)
		case CompressionFlate:
			rt.repo.SetCodec(compress.Flate)
		default:
			return nil, fmt.Errorf("aickpt: unknown compression %d", opts.Compression)
		}
		rt.repo.SetDedup(!opts.DisableDedup)
		rt.repo.SetMetrics(rt.metrics)
		backend = rt.repo
		rt.compactCfg = &compact.Config{
			FS:       fs,
			PageSize: opts.PageSize,
			Codec:    uint8(repoCodec(opts.Compression)),
			Policy:   opts.Compaction.internal(),
			Metrics:  rt.metrics,
		}
		// A restarted process extends the existing chain rather than
		// overwriting it (LastSealedEpoch sees through compacted bases, so
		// numbering continues even when every epoch file was folded away).
		if last, ok, err := ckpt.LastSealedEpoch(fs); err != nil {
			return nil, err
		} else if ok {
			firstEpoch = last
		}
	}
	if opts.Compaction.enabled() {
		rt.compactor = compact.NewCompactor(env, *rt.compactCfg)
		if rt.hier != nil {
			// Epochs become foldable when they settle through the drain
			// pipeline, which can be long after the seal that kicked the
			// compactor last.
			rt.hier.inner.SetOnSettled(func(uint64) { rt.compactor.Kick() })
		}
	}
	rt.manager = core.NewManager(core.Config{
		Env:           env,
		Space:         rt.space,
		Store:         storeAdapter{s: backend, compactor: rt.compactor},
		Strategy:      coreStrategy(opts.Strategy),
		CowSlots:      int(opts.CowBuffer / int64(opts.PageSize)),
		CommitWorkers: opts.CommitWorkers,
		FirstEpoch:    firstEpoch,
		Name:          "aickpt",
		Metrics:       rt.metrics,
	})
	if opts.DebugAddr != "" {
		// POST /scrub triggers an on-demand integrity scrub; custom Stores
		// have nothing to scrub, so the endpoint reports unsupported there.
		var scrub obs.ScrubFunc
		if rt.hier != nil || rt.fs != nil {
			scrub = func() (any, error) { return rt.Scrub() }
		}
		srv, err := obs.StartServer(opts.DebugAddr, rt.metrics, rt.Epochs, scrub)
		if err != nil {
			rt.Close()
			return nil, fmt.Errorf("aickpt: debug server: %w", err)
		}
		rt.debug = srv
	}
	return rt, nil
}

func repoCodec(c Compression) compress.Codec {
	switch c {
	case CompressionZero:
		return compress.Zero
	case CompressionFlate:
		return compress.Flate
	default:
		return compress.None
	}
}

// storeAdapter bridges the public Store interface to the internal backend
// interface (they are structurally identical) and kicks the background
// compactor after every seal.
type storeAdapter struct {
	s         Store
	compactor *compact.Compactor
}

func (a storeAdapter) WritePage(epoch uint64, page int, data []byte, size int) error {
	return a.s.WritePage(epoch, page, data, size)
}

func (a storeAdapter) EndEpoch(epoch uint64) error {
	if err := a.s.EndEpoch(epoch); err != nil {
		return err
	}
	if a.compactor != nil {
		a.compactor.Kick()
	}
	return nil
}

// PageSize returns the tracking granularity in bytes.
func (rt *Runtime) PageSize() int { return rt.opts.PageSize }

// MallocProtected allocates n bytes of checkpointed memory (the paper's
// malloc_protected). The region participates in every subsequent
// checkpoint.
func (rt *Runtime) MallocProtected(n int) *Region {
	return &Region{rt: rt, inner: rt.space.Alloc(n, false)}
}

// Free releases a protected region (free_protected), coordinating with any
// in-flight checkpoint.
func (rt *Runtime) Free(r *Region) {
	rt.manager.Free(r.inner)
}

// TransparentAllocator returns an allocator whose every allocation is
// protected, mirroring the paper's preloaded-malloc transparent mode for
// applications that cannot name their checkpointable state explicitly.
func (rt *Runtime) TransparentAllocator() *Allocator { return &Allocator{rt: rt} }

// Checkpoint requests a checkpoint (the CHECKPOINT primitive). Under the
// asynchronous strategies it returns as soon as the epoch is rotated; under
// Sync it blocks until all dirty pages are stored. If a previous checkpoint
// is still in flight, Checkpoint first waits for it to complete.
func (rt *Runtime) Checkpoint() { rt.manager.Checkpoint() }

// WaitIdle blocks until no checkpoint is in flight. Call it before reading
// checkpoint statistics or shutting down cleanly mid-epoch.
func (rt *Runtime) WaitIdle() { rt.manager.WaitIdle() }

// Err returns the first storage error encountered by the committer.
func (rt *Runtime) Err() error { return rt.manager.Err() }

// Hierarchy returns the multi-level checkpoint hierarchy built from
// Options.Tiers, or nil when the runtime uses a flat backend. Use it for
// tier-aware restore, drain synchronization, tier manifests and failure
// injection.
func (rt *Runtime) Hierarchy() *Hierarchy { return rt.hier }

// Metrics returns a point-in-time snapshot of every runtime metric —
// counters, gauges and latency/size histograms across the page manager,
// the repository, the tier drainer and the compactor, keyed by Prometheus
// family name. Taking a snapshot reads each metric with one atomic load
// and never blocks the checkpoint pipeline. With Options.DisableMetrics
// the snapshot is empty.
func (rt *Runtime) Metrics() MetricsSnapshot { return rt.metrics.TakeSnapshot() }

// Trace returns the pipeline trace journal's retained events in recording
// order: the newest TraceDepth events of the fault → COW → select →
// compress → write → seal → drain → promote → compact lifecycle. Nil when
// metrics or tracing are disabled.
func (rt *Runtime) Trace() []TraceEvent {
	if rt.metrics == nil || rt.metrics.Journal == nil {
		return nil
	}
	return rt.metrics.Journal.Snapshot()
}

// DebugAddr returns the debug HTTP server's bound address (useful with
// Options.DebugAddr ":0"), or "" when no debug server runs.
func (rt *Runtime) DebugAddr() string {
	if rt.debug == nil {
		return ""
	}
	return rt.debug.Addr()
}

// Spans returns the epoch lifecycle span log's retained spans in
// recording order: per-epoch commit, seal, per-tier drain-wait and
// promote, compact and restore intervals, stamped with the runtime's
// time source. Nil when metrics or span recording are disabled.
func (rt *Runtime) Spans() []Span {
	if rt.metrics == nil || rt.metrics.Spans == nil {
		return nil
	}
	return rt.metrics.Spans.Snapshot()
}

// Scorecards returns the selector prediction scorecard of every epoch:
// how well the adaptive flush order predicted the application's actual
// fault arrival order (hit rate, footrule rank correlation,
// waited-queue pressure, per-region fault/COW heatmaps). The last entry
// is the live epoch, whose fault window is still open.
func (rt *Runtime) Scorecards() []Scorecard { return rt.manager.Scorecards() }

// Epochs assembles the epoch flight recorder: one record per epoch
// merging its selector prediction scorecard with its lifecycle span
// tree and critical-path breakdown (which stage bounded the epoch's
// latency). This is what the debug server's /epochs endpoint serves as
// JSON. Assembly is a cold path and never blocks the pipeline (the
// span snapshot is lock-free).
func (rt *Runtime) Epochs() []EpochRecord {
	var spans []Span
	if rt.metrics != nil && rt.metrics.Spans != nil {
		spans = rt.metrics.Spans.Snapshot()
	}
	return obs.BuildEpochRecords(rt.manager.Scorecards(), spans)
}

// CompactNow runs one forced compaction pass synchronously: every foldable
// epoch is consolidated into a base segment regardless of the policy
// thresholds, and the superseded files are garbage-collected. It works with
// or without a background compactor configured (with Tiers, only epochs
// already drained to every lower tier fold). Call it at natural barriers —
// before a planned shutdown, or when reclaiming disk space matters more
// than the fold cost.
func (rt *Runtime) CompactNow() (CompactionResult, error) {
	if rt.compactor != nil {
		return publicResult(rt.compactor.CompactNow())
	}
	if rt.compactCfg == nil {
		return CompactionResult{}, errors.New("aickpt: compaction needs a repository (Dir or Tiers), not a custom Store")
	}
	return publicResult(compact.RunOnce(*rt.compactCfg, true))
}

// CompactionResult describes one compaction pass.
type CompactionResult struct {
	// Compacted is true when a new consolidated base was committed.
	Compacted bool
	// BaseFrom / BaseTo is the epoch range the committed base covers.
	BaseFrom, BaseTo uint64
	// EpochsFolded counts the epochs folded into the base this pass.
	EpochsFolded int
	// BytesWritten is the size of the new base segment.
	BytesWritten int64
	// BytesReclaimed / FilesRemoved count the storage garbage-collected.
	BytesReclaimed int64
	FilesRemoved   int
	// LiveSegments is the number of segments a restore reads after the
	// pass.
	LiveSegments int
}

func publicResult(r compact.Result, err error) (CompactionResult, error) {
	return CompactionResult{
		Compacted:      r.Compacted,
		BaseFrom:       r.BaseFrom,
		BaseTo:         r.BaseTo,
		EpochsFolded:   r.EpochsFolded,
		BytesWritten:   r.BytesWritten,
		BytesReclaimed: r.BytesReclaimed,
		FilesRemoved:   r.FilesRemoved,
		LiveSegments:   r.LiveSegments,
	}, err
}

// StorageStats reports the repository-side counters of the runtime:
// content-addressed dedup activity and background compaction totals. With
// a custom Store all counters are zero.
type StorageStats struct {
	// PagesStored / BytesStored count physical segment records written.
	PagesStored int
	BytesStored int64
	// PagesDeduped / BytesDeduped count page commits elided because the
	// content matched the newest chain entry.
	PagesDeduped int
	BytesDeduped int64
	// Compactions counts committed bases; EpochsFolded the epochs they
	// absorbed.
	Compactions  int
	EpochsFolded int
	// CompactionBytesWritten / BytesReclaimed are base bytes written and
	// garbage bytes collected over the runtime's life.
	CompactionBytesWritten int64
	BytesReclaimed         int64
	// LiveSegments is the chain length after the last compaction pass (0
	// until one runs).
	LiveSegments int
}

// StorageStats returns the runtime's dedup and compaction counters.
func (rt *Runtime) StorageStats() StorageStats {
	var out StorageStats
	var ds ckpt.DedupStats
	switch {
	case rt.repo != nil:
		ds = rt.repo.DedupStats()
	case rt.hier != nil:
		ds = rt.hier.inner.Local().DedupStats()
	}
	out.PagesStored, out.BytesStored = ds.PagesStored, ds.BytesStored
	out.PagesDeduped, out.BytesDeduped = ds.PagesDeduped, ds.BytesDeduped
	if rt.compactor != nil {
		cs := rt.compactor.Stats()
		out.Compactions = cs.Compactions
		out.EpochsFolded = cs.EpochsFolded
		out.CompactionBytesWritten = cs.BytesWritten
		out.BytesReclaimed = cs.BytesReclaimed
		out.LiveSegments = cs.LiveSegments
	}
	return out
}

// Close drains in-flight work (including background tier draining when a
// hierarchy is configured), stops the committer and the background
// compactor, and releases the runtime. It returns the first storage error,
// if any.
func (rt *Runtime) Close() error {
	if rt.closed {
		return rt.manager.Err()
	}
	rt.closed = true
	if rt.debug != nil {
		// The final state stays scrapeable until everything has drained.
		defer rt.debug.Close()
	}
	rt.manager.Close()
	if rt.compactor != nil {
		rt.compactor.Close()
	}
	if err := rt.manager.Err(); err != nil {
		if rt.hier != nil {
			rt.hier.Close()
		}
		return err
	}
	if rt.hier != nil {
		return rt.hier.Close()
	}
	return nil
}

// Stats returns per-checkpoint statistics (one entry per Checkpoint call).
func (rt *Runtime) Stats() []EpochStats {
	internal := rt.manager.Stats()
	out := make([]EpochStats, len(internal))
	for i, s := range internal {
		out[i] = EpochStats{
			Epoch:               s.Epoch,
			PagesCommitted:      s.PagesCommitted,
			BytesCommitted:      s.BytesCommitted,
			Waits:               s.Waits,
			Cows:                s.Cows,
			Avoided:             s.Avoided,
			After:               s.After,
			WaitTime:            s.WaitTime,
			BlockedInCheckpoint: s.BlockedInCheckpoint,
			Duration:            s.Duration,
			FaultArrivals:       s.FaultArrivals,
			RankPairs:           s.RankPairs,
			FootruleSum:         s.FootruleSum,
			MaxWaitedDepth:      s.MaxWaitedDepth,
		}
	}
	return out
}

// EpochStats describes one checkpoint: the size of its dirty set, how the
// application's first writes were classified until the next checkpoint
// (COW / WAIT / AVOIDED / AFTER), and the timing metrics used throughout
// the paper's evaluation.
type EpochStats struct {
	Epoch               uint64
	PagesCommitted      int
	BytesCommitted      int64
	Waits               int
	Cows                int
	Avoided             int
	After               int
	WaitTime            time.Duration
	BlockedInCheckpoint time.Duration
	Duration            time.Duration

	// Selector prediction scorecard scalars (full scorecards, including
	// the per-region heatmaps, come from Runtime.Scorecards).

	// FaultArrivals is the number of first-write faults during the
	// epoch's access window.
	FaultArrivals int
	// RankPairs / FootruleSum accumulate the Spearman footrule between
	// the selector's flush order and the fault arrival order over pages
	// both flushed and faulted.
	RankPairs   int
	FootruleSum int64
	// MaxWaitedDepth is the peak waited-queue depth during the epoch.
	MaxWaitedDepth int
}

// HitRate is the epoch's flushed-before-faulted hit rate:
// AVOIDED / (WAIT + COW + AVOIDED), 0 when no overlapping access
// happened.
func (e EpochStats) HitRate() float64 {
	return obs.ScoreHitRate(e.Waits, e.Cows, e.Avoided)
}

// RankCorrelation is the footrule rank correlation between the
// selector's flush order and the actual fault arrival order (1 =
// identical orders, ~0 = random, negative = anti-correlated).
func (e EpochStats) RankCorrelation() float64 {
	return obs.ScoreRankCorrelation(e.FootruleSum, e.RankPairs, e.PagesCommitted, e.FaultArrivals)
}

// Allocator is the transparent-capture allocator: all allocations made
// through it are protected and checkpointed.
type Allocator struct {
	rt *Runtime
}

// Alloc allocates n protected bytes.
func (a *Allocator) Alloc(n int) *Region { return a.rt.MallocProtected(n) }

// Calloc allocates count*size protected, zeroed bytes.
func (a *Allocator) Calloc(count, size int) *Region { return a.rt.MallocProtected(count * size) }

// Free releases a region through the runtime.
func (a *Allocator) Free(r *Region) { a.rt.Free(r) }
