package aickpt

import "repro/internal/obs"

// MetricsSnapshot is a point-in-time copy of every runtime metric, keyed
// by the Prometheus family name (labels included for labeled families).
// It is what Runtime.Metrics returns and what the debug server's
// /snapshot endpoint serves as JSON.
type MetricsSnapshot = obs.Snapshot

// HistogramSnapshot is an immutable copy of one latency or size
// histogram, with Mean and Quantile accessors. Buckets are base-2
// exponential: bucket boundaries are successive powers of two, so a
// quantile estimate is accurate to within a factor of two.
type HistogramSnapshot = obs.HistogramSnapshot

// TraceEvent is one entry of the pipeline trace journal: a pipeline stage
// (fault, cow, select, compress, write, seal, drain, promote, compact,
// restore, ...) stamped with the runtime's time source, the epoch, and
// the page/tier the event concerns. Runtime.Trace returns them in
// recording order.
type TraceEvent = obs.Event

// Span is one epoch lifecycle interval recorded by the flight recorder:
// a stage (commit, seal, drain-wait, promote, compact, restore) with
// its [Start, End) on the runtime's time source and the tier it
// concerns. Runtime.Spans returns them in recording order.
type Span = obs.Span

// SpanKind names a lifecycle stage of a Span.
type SpanKind = obs.SpanKind

// SpanKind values.
const (
	SpanCommit    = obs.SpanCommit
	SpanSeal      = obs.SpanSeal
	SpanDrainWait = obs.SpanDrainWait
	SpanPromote   = obs.SpanPromote
	SpanCompact   = obs.SpanCompact
	SpanRestore   = obs.SpanRestore
)

// Scorecard is one epoch's selector prediction scorecard: predicted
// flush order vs actual fault arrival order, summarized as the
// flushed-before-faulted hit rate, the footrule rank correlation,
// waited-queue pressure and per-region fault/COW heatmaps. Returned by
// Runtime.Scorecards and embedded in EpochRecord.
type Scorecard = obs.Scorecard

// EpochRecord is one epoch of the flight recorder: its Scorecard plus
// the lifecycle span tree and the critical-path breakdown (which stage
// bounded the epoch's latency and by how much). Returned by
// Runtime.Epochs and served by the debug server's /epochs endpoint.
type EpochRecord = obs.EpochRecord

// SpanNode is one node of an EpochRecord's span tree.
type SpanNode = obs.SpanNode

// CriticalStage is one entry of an EpochRecord's critical-path
// breakdown.
type CriticalStage = obs.CriticalStage
