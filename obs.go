package aickpt

import "repro/internal/obs"

// MetricsSnapshot is a point-in-time copy of every runtime metric, keyed
// by the Prometheus family name (labels included for labeled families).
// It is what Runtime.Metrics returns and what the debug server's
// /snapshot endpoint serves as JSON.
type MetricsSnapshot = obs.Snapshot

// HistogramSnapshot is an immutable copy of one latency or size
// histogram, with Mean and Quantile accessors. Buckets are base-2
// exponential: bucket boundaries are successive powers of two, so a
// quantile estimate is accurate to within a factor of two.
type HistogramSnapshot = obs.HistogramSnapshot

// TraceEvent is one entry of the pipeline trace journal: a pipeline stage
// (fault, cow, select, compress, write, seal, drain, promote, compact,
// restore, ...) stamped with the runtime's time source, the epoch, and
// the page/tier the event concerns. Runtime.Trace returns them in
// recording order.
type TraceEvent = obs.Event
