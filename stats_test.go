package aickpt

import (
	"strings"
	"testing"
	"time"
)

func sampleStats() []EpochStats {
	return []EpochStats{
		{
			Epoch: 1, PagesCommitted: 10, BytesCommitted: 40960,
			Waits: 2, Cows: 3, Avoided: 4, After: 1,
			// Perfectly predicted epoch: 9 rank pairs, zero displacement.
			FaultArrivals: 10, RankPairs: 9, FootruleSum: 0,
			WaitTime:            5 * time.Millisecond,
			BlockedInCheckpoint: 1 * time.Millisecond,
			Duration:            20 * time.Millisecond,
		},
		{
			Epoch: 2, PagesCommitted: 6, BytesCommitted: 24576,
			Waits: 1, Cows: 0, Avoided: 7, After: 0,
			// Anti-correlated epoch: scale = max(6,8) = 8, so
			// corr = 1 - 3*28/(8*7) = -0.5.
			FaultArrivals: 8, RankPairs: 8, FootruleSum: 28,
			WaitTime:            2 * time.Millisecond,
			BlockedInCheckpoint: 500 * time.Microsecond,
			Duration:            35 * time.Millisecond,
		},
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleStats())
	if s.Checkpoints != 2 {
		t.Fatalf("Checkpoints = %d, want 2", s.Checkpoints)
	}
	if s.PagesCommitted != 16 || s.BytesCommitted != 65536 {
		t.Fatalf("pages/bytes = %d/%d, want 16/65536", s.PagesCommitted, s.BytesCommitted)
	}
	if s.Waits != 3 || s.Cows != 3 || s.Avoided != 11 || s.After != 1 {
		t.Fatalf("classification = %d/%d/%d/%d, want 3/3/11/1", s.Waits, s.Cows, s.Avoided, s.After)
	}
	wantBlocked := 8*time.Millisecond + 500*time.Microsecond
	if s.AppBlocked != wantBlocked {
		t.Fatalf("AppBlocked = %v, want %v", s.AppBlocked, wantBlocked)
	}
	if s.LongestCkpt != 35*time.Millisecond {
		t.Fatalf("LongestCkpt = %v, want 35ms", s.LongestCkpt)
	}
	if s.EpochsDrained != 0 || s.RestorePages != 0 {
		t.Fatalf("drain/restore fields must be zero without a snapshot: %+v", s)
	}
}

func TestSummarizeScorecard(t *testing.T) {
	approx := func(got, want float64) bool {
		d := got - want
		return d < 1e-9 && d > -1e-9
	}
	s := Summarize(sampleStats())
	// Hit rate over the whole run: 11 avoided / (3 waits + 3 cows + 11 avoided).
	if want := 11.0 / 17.0; !approx(s.HitRate, want) {
		t.Fatalf("HitRate = %v, want %v", s.HitRate, want)
	}
	if s.CowAbsorbed != 3 {
		t.Fatalf("CowAbsorbed = %d, want 3", s.CowAbsorbed)
	}
	if s.RankPairs != 17 {
		t.Fatalf("RankPairs = %d, want 17", s.RankPairs)
	}
	// Pair-weighted blend of the per-epoch correlations:
	// (1.0*9 + (-0.5)*8) / 17 = 5/17.
	if want := 5.0 / 17.0; !approx(s.RankCorrelation, want) {
		t.Fatalf("RankCorrelation = %v, want %v", s.RankCorrelation, want)
	}

	// No faults at all: every scorecard aggregate stays zero.
	empty := Summarize([]EpochStats{{Epoch: 1, PagesCommitted: 4}})
	if empty.HitRate != 0 || empty.RankCorrelation != 0 || empty.RankPairs != 0 {
		t.Fatalf("scorecard of a fault-free run must be zero: %+v", empty)
	}
}

func TestSummarizeWithMetrics(t *testing.T) {
	snap := MetricsSnapshot{Counters: map[string]uint64{
		"aickpt_multilevel_epochs_drained_total": 2,
		"aickpt_multilevel_drain_retries_total":  5,
		"aickpt_multilevel_drain_failures_total": 1,
		"aickpt_multilevel_restore_epochs_total": 3,
		"aickpt_multilevel_restore_pages_total":  42,
	}}
	s := SummarizeWithMetrics(sampleStats(), snap)
	if s.Checkpoints != 2 {
		t.Fatalf("Checkpoints = %d, want 2", s.Checkpoints)
	}
	if s.EpochsDrained != 2 || s.DrainRetries != 5 || s.DrainFailures != 1 {
		t.Fatalf("drain fields = %d/%d/%d, want 2/5/1", s.EpochsDrained, s.DrainRetries, s.DrainFailures)
	}
	if s.RestoreEpochs != 3 || s.RestorePages != 42 {
		t.Fatalf("restore fields = %d/%d, want 3/42", s.RestoreEpochs, s.RestorePages)
	}
}

func TestWriteStatsCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteStatsCSV(&sb, sampleStats()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows:\n%s", len(lines), sb.String())
	}
	wantHeader := "epoch,pages,bytes,waits,cows,avoided,after,wait_us,blocked_us,duration_us"
	if lines[0] != wantHeader {
		t.Fatalf("header = %q, want %q", lines[0], wantHeader)
	}
	if cols := strings.Split(lines[1], ","); len(cols) != 10 {
		t.Fatalf("row has %d columns, header has 10: %q", len(cols), lines[1])
	}
	if lines[1] != "1,10,40960,2,3,4,1,5000,1000,20000" {
		t.Fatalf("row 1 = %q", lines[1])
	}
}

func TestWriteSummaryCSV(t *testing.T) {
	s := SummarizeWithMetrics(sampleStats(), MetricsSnapshot{Counters: map[string]uint64{
		"aickpt_multilevel_epochs_drained_total": 2,
		"aickpt_multilevel_restore_pages_total":  7,
	}})
	var sb strings.Builder
	if err := WriteSummaryCSV(&sb, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header + 1 row:\n%s", len(lines), sb.String())
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(row) {
		t.Fatalf("header has %d columns, row has %d", len(header), len(row))
	}
	want := map[string]string{
		"checkpoints":    "2",
		"epochs_drained": "2",
		"restore_pages":  "7",
		"drain_retries":  "0",
		"hit_rate":       "0.647",
		"cow_absorbed":   "3",
		"rank_corr":      "0.294",
	}
	for name := range want {
		found := false
		for _, h := range header {
			if h == name {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("header is missing column %s: %q", name, lines[0])
		}
	}
	for i, name := range header {
		if w, ok := want[name]; ok && row[i] != w {
			t.Fatalf("column %s = %s, want %s", name, row[i], w)
		}
	}
}
