package aickpt

import (
	"errors"

	"repro/internal/ckpt"
	"repro/internal/multilevel"
)

// Segment health statuses reported by Verify and in ScrubEntry.Status
// (mirrors of the internal ckpt statuses).
const (
	// HealthOK: manifest decoded and every segment record verified.
	HealthOK = ckpt.StatusOK
	// HealthTornTail: a manifest torn by a mid-crash write, newer than
	// every intact chain entry — the epoch never sealed, so this is a
	// harmless crash artifact, not damage.
	HealthTornTail = ckpt.StatusTornTail
	// HealthManifestCorrupt: an interior manifest failed to decode — the
	// epoch was provably sealed once, so this is real damage.
	HealthManifestCorrupt = ckpt.StatusManifestCorrupt
	// HealthSegmentMissing: a sealed manifest whose segment file is gone.
	HealthSegmentMissing = ckpt.StatusSegmentMissing
	// HealthSegmentCorrupt: a segment whose records fail verification
	// (bad magic, truncated tail, payload hash mismatch, record count).
	HealthSegmentCorrupt = ckpt.StatusSegmentCorrupt
)

// SegmentHealth is one Verify finding: the health of one chain entry.
type SegmentHealth struct {
	// Manifest / Segment are the entry's file names (Segment is empty for
	// epochs with no physical records or unreadable manifests).
	Manifest string `json:"manifest"`
	Segment  string `json:"segment,omitempty"`
	// Epoch is the entry's epoch (a base's covering range ends here).
	Epoch uint64 `json:"epoch"`
	// IsBase marks a consolidated base entry.
	IsBase bool `json:"is_base,omitempty"`
	// Status is one of the Health* constants.
	Status string `json:"status"`
	// Detail carries the verification error for non-ok statuses.
	Detail string `json:"detail,omitempty"`
	// Damaged reports whether the entry needs repair (torn tails do not:
	// they were never sealed).
	Damaged bool `json:"damaged,omitempty"`
}

// ScrubEntry is one scrub finding and what the pass did about it.
type ScrubEntry struct {
	Epoch  uint64 `json:"epoch"`
	IsBase bool   `json:"is_base,omitempty"`
	// Status is the health status that triggered the entry (or
	// "drain-failed" for requeued tier copies).
	Status string `json:"status"`
	// Action records the outcome: "repaired from <tier>", "requeued",
	// "unrepaired: <reason>", or "" for torn tails (nothing to do).
	Action string `json:"action,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	// Checked counts the chain entries verified.
	Checked int `json:"checked"`
	// Corrupt counts the damaged entries found (torn tails excluded).
	Corrupt int `json:"corrupt"`
	// Repaired / Unrepaired split Corrupt by outcome. Without redundant
	// tiers every damaged entry is Unrepaired (verify-only scrub).
	Repaired   int `json:"repaired"`
	Unrepaired int `json:"unrepaired"`
	// Requeued counts tier copies that had exhausted their drain retry
	// budget and were re-enqueued for promotion.
	Requeued int          `json:"requeued"`
	Entries  []ScrubEntry `json:"entries,omitempty"`
}

func scrubReportToPublic(rep multilevel.ScrubReport) ScrubReport {
	out := ScrubReport{
		Checked:    rep.Checked,
		Corrupt:    rep.Corrupt,
		Repaired:   rep.Repaired,
		Unrepaired: rep.Unrepaired,
		Requeued:   rep.Requeued,
	}
	for _, e := range rep.Entries {
		out.Entries = append(out.Entries, ScrubEntry{
			Epoch: e.Epoch, IsBase: e.IsBase, Status: e.Status, Action: e.Action, Detail: e.Detail,
		})
	}
	return out
}

func healthToPublic(hs []ckpt.SegmentHealth) []SegmentHealth {
	out := make([]SegmentHealth, len(hs))
	for i, h := range hs {
		out[i] = SegmentHealth{
			Manifest: h.Manifest, Segment: h.Segment, Epoch: h.Epoch, IsBase: h.IsBase,
			Status: h.Status, Detail: h.Detail, Damaged: h.Damaged(),
		}
	}
	return out
}

// Scrub verifies every chain entry on the hierarchy's local tier and
// self-heals what it can: damaged epochs are quarantined and rebuilt from
// the fastest lower tier still holding them, a damaged compacted base is
// re-folded from the per-epoch copies the lower tiers kept, and tier
// copies that exhausted their drain retry budget are re-enqueued for
// promotion (so a tier that recovered catches back up). It is safe to run
// concurrently with checkpoints and active drains.
func (h *Hierarchy) Scrub() (ScrubReport, error) {
	rep, err := h.inner.Scrub()
	return scrubReportToPublic(rep), err
}

// Scrub verifies the runtime's checkpoint chain and repairs what its
// store allows. With Options.Tiers it is the self-healing hierarchy scrub
// (see Hierarchy.Scrub); with Options.Dir there is no redundant tier to
// repair from, so damage is detected, reported and counted Unrepaired but
// files are left untouched. With a custom Store scrubbing is unsupported.
func (rt *Runtime) Scrub() (ScrubReport, error) {
	switch {
	case rt.hier != nil:
		return rt.hier.Scrub()
	case rt.fs != nil:
		health, err := ckpt.VerifyChain(rt.fs)
		if err != nil {
			return ScrubReport{}, err
		}
		rep := ScrubReport{Checked: len(health)}
		if rt.metrics != nil {
			rt.metrics.ScrubSegments.Add(uint64(len(health)))
		}
		for _, hs := range health {
			e := ScrubEntry{Epoch: hs.Epoch, IsBase: hs.IsBase, Status: hs.Status, Detail: hs.Detail}
			if hs.Damaged() {
				rep.Corrupt++
				rep.Unrepaired++
				e.Action = "unrepaired: no redundant tier to rebuild from"
				if rt.metrics != nil {
					rt.metrics.ScrubCorrupt.Inc()
					rt.metrics.ScrubUnrepaired.Inc()
				}
			} else if hs.Status == HealthOK {
				continue
			}
			rep.Entries = append(rep.Entries, e)
		}
		return rep, nil
	default:
		return ScrubReport{}, errors.New("aickpt: Scrub needs a repository store (Options.Dir or Options.Tiers)")
	}
}

// Verify runs a read-only integrity check over a checkpoint directory —
// no runtime needed, nothing is modified: every chain entry's manifest is
// decoded and every live segment's records are re-read and hash-verified.
// Corrupt manifests are classified as torn tails (crash artifacts, not
// damage) or interior corruption exactly as restore would classify them.
func Verify(dir string) ([]SegmentHealth, error) {
	fs, err := ckpt.NewOSFS(dir)
	if err != nil {
		return nil, err
	}
	health, err := ckpt.VerifyChain(fs)
	if err != nil {
		return nil, err
	}
	return healthToPublic(health), nil
}
