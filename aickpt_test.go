package aickpt

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRuntimeEndToEnd(t *testing.T) {
	for _, strategy := range []Strategy{Adaptive, NoPattern, Sync} {
		t.Run(strategy.String(), func(t *testing.T) {
			dir := t.TempDir()
			rt, err := New(Options{Dir: dir, PageSize: 256, Strategy: strategy})
			if err != nil {
				t.Fatal(err)
			}
			r := rt.MallocProtected(16 * 256)
			payload := bytes.Repeat([]byte{0xEE}, r.Size())
			r.Write(0, payload)
			rt.Checkpoint()
			// Mutate after the checkpoint; epoch 1 must keep the old image.
			r.StoreByte(0, 0x11)
			rt.WaitIdle()
			if err := rt.Close(); err != nil {
				t.Fatal(err)
			}

			im, err := Restore(dir)
			if err != nil {
				t.Fatal(err)
			}
			if im.Epoch != 1 {
				t.Fatalf("restored epoch = %d", im.Epoch)
			}
			first, count := r.Pages()
			var restored []byte
			for p := first; p < first+count; p++ {
				restored = append(restored, im.Page(p)...)
			}
			if !bytes.Equal(restored[:r.Size()], payload) {
				t.Error("restored image lost the pre-checkpoint content")
			}
		})
	}
}

func TestRuntimeRestartFlow(t *testing.T) {
	dir := t.TempDir()
	const size = 8 * 512

	// First life: run, checkpoint twice, "crash".
	rt, err := New(Options{Dir: dir, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	r := rt.MallocProtected(size)
	state := bytes.Repeat([]byte{1}, size)
	r.Write(0, state)
	rt.Checkpoint()
	rt.WaitIdle()
	for i := 0; i < size; i += 512 {
		r.StoreByte(i, 2)
		state[i] = 2
	}
	rt.Checkpoint()
	rt.WaitIdle()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: restore into an identically laid-out runtime.
	rt2, err := New(Options{Dir: dir, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	r2 := rt2.MallocProtected(size)
	im, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt2.LoadImage(im, r2); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	r2.Read(0, got)
	if !bytes.Equal(got, state) {
		t.Fatal("restart image differs from pre-crash state")
	}
	// Keep computing and checkpointing in the same repository.
	r2.StoreByte(7, 9)
	rt2.Checkpoint()
	rt2.WaitIdle()
	if err := rt2.Err(); err != nil {
		t.Fatal(err)
	}
	im2, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if im2.Epoch != 3 {
		t.Fatalf("epoch after restart checkpoint = %d, want 3", im2.Epoch)
	}
	if im2.Page(0)[7] != 9 {
		t.Error("post-restart write missing from repository")
	}
}

func TestRuntimeStatsAndIncrementality(t *testing.T) {
	dir := t.TempDir()
	rt, err := New(Options{Dir: dir, PageSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	r := rt.MallocProtected(10 * 128)
	r.Write(0, make([]byte, 10*128))
	rt.Checkpoint()
	rt.WaitIdle()
	r.StoreByte(5*128, 1)
	rt.Checkpoint()
	rt.WaitIdle()
	st := rt.Stats()
	if len(st) != 2 {
		t.Fatalf("stats = %d entries", len(st))
	}
	if st[0].PagesCommitted != 10 || st[1].PagesCommitted != 1 {
		t.Errorf("committed = %d,%d; want 10,1", st[0].PagesCommitted, st[1].PagesCommitted)
	}
	if st[1].BytesCommitted != 128 {
		t.Errorf("bytes = %d", st[1].BytesCommitted)
	}
}

func TestTransparentAllocator(t *testing.T) {
	dir := t.TempDir()
	rt, err := New(Options{Dir: dir, PageSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	alloc := rt.TransparentAllocator()
	a := alloc.Alloc(128)
	b := alloc.Calloc(2, 128)
	a.StoreByte(0, 1)
	b.StoreByte(0, 2)
	rt.Checkpoint()
	rt.WaitIdle()
	st := rt.Stats()
	if st[0].PagesCommitted != 2 {
		t.Errorf("committed = %d, want 2 (one touched page per allocation)", st[0].PagesCommitted)
	}
	alloc.Free(a)
	b.StoreByte(128, 3)
	rt.Checkpoint()
	rt.WaitIdle()
	st = rt.Stats()
	if st[1].PagesCommitted != 1 {
		t.Errorf("epoch2 committed = %d, want 1", st[1].PagesCommitted)
	}
}

func TestInspectReportsHealth(t *testing.T) {
	dir := t.TempDir()
	rt, err := New(Options{Dir: dir, PageSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	r := rt.MallocProtected(4 * 128)
	r.Write(0, bytes.Repeat([]byte{5}, 4*128))
	rt.Checkpoint()
	rt.WaitIdle()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	reports, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || !reports[0].Healthy || reports[0].PageCount != 4 {
		t.Fatalf("reports = %+v", reports)
	}
	// Corrupt the segment; Inspect must notice.
	seg := filepath.Join(dir, fmt.Sprintf("epoch-%08d.pages", 1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[30] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	reports, err = Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Healthy {
		t.Error("Inspect missed corruption")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("neither Dir nor Store rejected")
	}
	if _, err := New(Options{Dir: "x", Store: nullStore{}}); err == nil {
		t.Error("both Dir and Store rejected")
	}
	if _, err := New(Options{Dir: "x", PageSize: 4}); err == nil {
		t.Error("tiny page size accepted")
	}
	if _, err := New(Options{Dir: "x", CowBuffer: -1}); err == nil {
		t.Error("negative CowBuffer accepted")
	}
}

type nullStore struct{}

func (nullStore) WritePage(uint64, int, []byte, int) error { return nil }
func (nullStore) EndEpoch(uint64) error                    { return nil }

func TestCustomStoreAndDisabledCow(t *testing.T) {
	rt, err := New(Options{Store: nullStore{}, PageSize: 128, DisableCow: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	r := rt.MallocProtected(256)
	r.StoreByte(0, 1)
	rt.Checkpoint()
	rt.WaitIdle()
	if rt.Err() != nil {
		t.Fatal(rt.Err())
	}
	st := rt.Stats()
	if len(st) != 1 || st[0].PagesCommitted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWriteStatsCSVAndSummarize(t *testing.T) {
	stats := []EpochStats{
		{Epoch: 1, PagesCommitted: 10, BytesCommitted: 40960, Waits: 2, Cows: 3, Avoided: 4, After: 1},
		{Epoch: 2, PagesCommitted: 5, BytesCommitted: 20480, Waits: 1},
	}
	var sb strings.Builder
	if err := WriteStatsCSV(&sb, stats); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "1,10,40960,2,3,4,1,") {
		t.Errorf("row 1 = %q", lines[1])
	}
	sum := Summarize(stats)
	if sum.Checkpoints != 2 || sum.PagesCommitted != 15 || sum.Waits != 3 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.BytesCommitted != 61440 {
		t.Errorf("bytes = %d", sum.BytesCommitted)
	}
}

// TestConcurrentWriters exercises the real-time runtime with several
// application goroutines mutating disjoint regions while checkpoints run:
// the thread-safety contract of the fault path and the committer.
func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	rt, err := New(Options{Dir: dir, PageSize: 256, CowBuffer: 16 * 256})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	regions := make([]*Region, writers)
	for i := range regions {
		regions[i] = rt.MallocProtected(32 * 256)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i, r := range regions {
		wg.Add(1)
		go func(i int, r *Region) {
			defer wg.Done()
			buf := make([]byte, 64)
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				for j := range buf {
					buf[j] = byte(round + i)
				}
				r.Write((round%120)*64, buf)
			}
		}(i, r)
	}
	for c := 0; c < 5; c++ {
		time.Sleep(2 * time.Millisecond)
		rt.Checkpoint()
	}
	rt.WaitIdle()
	close(stop)
	wg.Wait()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	// The repository must hold a consistent restorable chain.
	if _, err := Restore(dir); err != nil {
		t.Fatal(err)
	}
}

// Options.CommitWorkers plumbs through to the commit pipeline: explicit
// worker counts (including the serial 1) produce restorable chains whose
// final image matches the serial baseline, a negative count is rejected,
// and the pipeline composes with a multi-level tier hierarchy.
func TestCommitWorkersOption(t *testing.T) {
	if _, err := New(Options{Dir: t.TempDir(), CommitWorkers: -1}); err == nil {
		t.Fatal("negative CommitWorkers accepted")
	}

	const pageSize, pages = 256, 24
	run := func(opts Options) *Image {
		t.Helper()
		opts.PageSize = pageSize
		rt, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		r := rt.MallocProtected(pages * pageSize)
		for e := byte(1); e <= 3; e++ {
			for p := 0; p < pages; p++ {
				if (p+int(e))%2 == 0 {
					r.StoreByte(p*pageSize, e*7+byte(p))
				}
			}
			rt.Checkpoint()
			// Interfere with the in-flight flush.
			r.StoreByte(0, 0xF0+e)
		}
		rt.WaitIdle()
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		var im *Image
		if rt.Hierarchy() != nil {
			hi, _, err := rt.Hierarchy().Restore()
			if err != nil {
				t.Fatal(err)
			}
			im = hi
		} else {
			var err error
			im, err = Restore(opts.Dir)
			if err != nil {
				t.Fatal(err)
			}
		}
		if im.Epoch != 3 {
			t.Fatalf("restored epoch %d, want 3", im.Epoch)
		}
		return im
	}
	baseline := run(Options{Dir: t.TempDir(), CommitWorkers: 1})
	for _, workers := range []int{2, 4} {
		im := run(Options{Dir: t.TempDir(), CommitWorkers: workers})
		for p := 0; p < pages; p++ {
			if !bytes.Equal(im.Page(p), baseline.Page(p)) {
				t.Fatalf("workers=%d: restored page %d differs from serial baseline", workers, p)
			}
		}
	}
	// Four workers streaming into a 2-tier hierarchy (L1 + erasure peers).
	im := run(Options{
		CommitWorkers: 4,
		Tiers: []TierSpec{
			{Kind: TierLocal},
			{Kind: TierPeer, DataShards: 2, ParityShards: 1},
		},
	})
	for p := 0; p < pages; p++ {
		if !bytes.Equal(im.Page(p), baseline.Page(p)) {
			t.Fatalf("tiers: restored page %d differs from serial baseline", p)
		}
	}
}

func TestCompressedRuntimeRoundTrip(t *testing.T) {
	for _, comp := range []Compression{CompressionZero, CompressionFlate} {
		dir := t.TempDir()
		rt, err := New(Options{Dir: dir, PageSize: 512, Compression: comp})
		if err != nil {
			t.Fatal(err)
		}
		r := rt.MallocProtected(8 * 512)
		// Half zero pages, half repetitive content.
		pattern := bytes.Repeat([]byte{0xAB, 0xCD}, 256)
		for p := 0; p < 4; p++ {
			r.Write(p*512, pattern)
		}
		r.StoreByte(5*512, 0) // dirty a zero page too
		rt.Checkpoint()
		rt.WaitIdle()
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		im, err := Restore(dir)
		if err != nil {
			t.Fatalf("compression %d: %v", comp, err)
		}
		if !bytes.Equal(im.Page(0), pattern) {
			t.Errorf("compression %d: content mismatch", comp)
		}
		if !bytes.Equal(im.Page(5), make([]byte, 512)) {
			t.Errorf("compression %d: zero page mismatch", comp)
		}
	}
}

// runChainWorkload drives a runtime through n checkpoints over a working
// set where half the dirtied pages are rewritten with identical content
// (the dedup target), and returns the final memory snapshot.
func runChainWorkload(t *testing.T, rt *Runtime, pages, pageSize, checkpoints int) []byte {
	t.Helper()
	state := rt.MallocProtected(pages * pageSize)
	buf := make([]byte, pageSize)
	for step := 1; step <= checkpoints; step++ {
		for i := 0; i < pages/2; i++ {
			p := (step + i) % pages
			stamp := step
			if p%2 == 1 {
				stamp = 0 // identical content on every rewrite
			}
			for j := range buf {
				buf[j] = byte(p*31 + stamp*7 + j%11)
			}
			state.Write(p*pageSize, buf)
		}
		rt.Checkpoint()
	}
	rt.WaitIdle()
	return append([]byte(nil), state.Bytes()...)
}

// TestCompactionEndToEnd proves the acceptance criterion on the public
// API: with compaction (depth d) a run of N >> d epochs restores by
// reading at most d segments, bit-identically to a compaction-off run of
// the same workload, and a pre-compaction (v1-style) chain still restores
// unchanged after a runtime with compaction opens it.
func TestCompactionEndToEnd(t *testing.T) {
	const pages, pageSize, checkpoints, depth = 16, 256, 24, 4

	run := func(opts Options) (string, []byte, StorageStats) {
		dir := t.TempDir()
		opts.Dir, opts.PageSize = dir, pageSize
		rt, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		snapshot := runChainWorkload(t, rt, pages, pageSize, checkpoints)
		if err := rt.Close(); err != nil { // Close drains the compactor's pending kick
			t.Fatal(err)
		}
		return dir, snapshot, rt.StorageStats()
	}

	plainDir, plainSnap, plainStats := run(Options{DisableDedup: true})
	compDir, compSnap, compStats := run(Options{Compaction: CompactionPolicy{MaxChainDepth: depth}})

	if !bytes.Equal(plainSnap, compSnap) {
		t.Fatal("workloads diverged")
	}
	if plainStats.PagesDeduped != 0 {
		t.Fatalf("dedup ran while disabled: %+v", plainStats)
	}
	if compStats.PagesDeduped == 0 {
		t.Fatalf("no dedup on identical rewrites: %+v", compStats)
	}
	if compStats.Compactions == 0 || compStats.EpochsFolded == 0 || compStats.BytesReclaimed == 0 {
		t.Fatalf("background compactor idle: %+v", compStats)
	}

	imPlain, err := Restore(plainDir)
	if err != nil {
		t.Fatal(err)
	}
	imComp, err := Restore(compDir)
	if err != nil {
		t.Fatal(err)
	}
	if imPlain.Epoch != uint64(checkpoints) || imComp.Epoch != imPlain.Epoch {
		t.Fatalf("restart points: plain %d, compacted %d", imPlain.Epoch, imComp.Epoch)
	}
	if imPlain.SegmentsRead() != checkpoints {
		t.Fatalf("baseline read %d segments, want %d", imPlain.SegmentsRead(), checkpoints)
	}
	if imComp.SegmentsRead() > depth {
		t.Fatalf("compacted restore read %d segments, want <= %d", imComp.SegmentsRead(), depth)
	}
	for _, p := range imPlain.PageIDs() {
		if !bytes.Equal(imPlain.Page(p), imComp.Page(p)) {
			t.Fatalf("page %d differs between compacted and uncompacted restore", p)
		}
	}

	// The pre-compaction chain keeps restoring unchanged when a runtime
	// with compaction enabled reopens and extends it.
	rt, err := New(Options{Dir: plainDir, PageSize: pageSize, Compaction: CompactionPolicy{MaxChainDepth: depth}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.CompactNow()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted || res.LiveSegments != 1 {
		t.Fatalf("CompactNow on v1-style chain: %+v", res)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	imAfter, err := Restore(plainDir)
	if err != nil {
		t.Fatal(err)
	}
	if imAfter.Epoch != imPlain.Epoch || imAfter.SegmentsRead() != 1 {
		t.Fatalf("post-compaction restore: epoch %d, segments %d", imAfter.Epoch, imAfter.SegmentsRead())
	}
	for _, p := range imPlain.PageIDs() {
		if !bytes.Equal(imPlain.Page(p), imAfter.Page(p)) {
			t.Fatalf("page %d changed after compacting the old chain", p)
		}
	}
}

// TestCompactionRestartContinuesNumbering restarts over a fully compacted
// repository: the new runtime must continue epoch numbering after the
// base, not restart below it.
func TestCompactionRestartContinuesNumbering(t *testing.T) {
	const pageSize = 256
	dir := t.TempDir()
	rt, err := New(Options{Dir: dir, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	runChainWorkload(t, rt, 8, pageSize, 5)
	if res, err := rt.CompactNow(); err != nil || !res.Compacted {
		t.Fatalf("CompactNow: %+v %v", res, err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	rt2, err := New(Options{Dir: dir, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	state := rt2.MallocProtected(8 * pageSize)
	state.StoreByte(0, 0x5A)
	rt2.Checkpoint()
	rt2.WaitIdle()
	if err := rt2.Close(); err != nil {
		t.Fatal(err)
	}
	im, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if im.Epoch != 6 {
		t.Fatalf("restart point = %d, want 6 (numbering continues past the base)", im.Epoch)
	}
	if im.Page(0)[0] != 0x5A {
		t.Fatal("post-restart write lost")
	}
}

func TestCompactionWithTiers(t *testing.T) {
	const pageSize = 256
	dir := t.TempDir()
	rt, err := New(Options{
		PageSize: pageSize,
		Tiers: []TierSpec{
			{Kind: TierLocal, Dir: dir},
			{Kind: TierPFS},
		},
		Compaction: CompactionPolicy{MaxChainDepth: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := runChainWorkload(t, rt, 8, pageSize, 12)
	rt.Hierarchy().WaitDrained()
	res, err := rt.CompactNow()
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveSegments != 1 {
		t.Fatalf("CompactNow: %+v", res)
	}
	// The tier manifests now show the base and the superseded epochs.
	var sawBase bool
	for _, m := range rt.Hierarchy().Manifests() {
		if m.IsBase {
			sawBase = true
		}
	}
	if !sawBase {
		t.Fatal("no base in tier manifests after compaction")
	}
	im, _, err := rt.Hierarchy().Restore()
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 8; p++ {
		if !bytes.Equal(im.Page(p), snapshot[p*pageSize:(p+1)*pageSize]) {
			t.Fatalf("page %d differs after tiered compaction", p)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactionRejectsCustomStore(t *testing.T) {
	_, err := New(Options{Store: nullStore{}, Compaction: CompactionPolicy{MaxChainDepth: 4}})
	if err == nil {
		t.Fatal("Compaction with a custom Store accepted")
	}
}
